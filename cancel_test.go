package privbayes

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// cancelData is a dataset big enough that a fit spans many pipeline
// units (greedy iterations, joints, sample chunks), so cancellation has
// somewhere to land mid-flight.
func cancelData(n, d int) *Dataset {
	attrs := make([]Attribute, d)
	for i := range attrs {
		attrs[i] = NewCategorical(string(rune('a'+i)), []string{"0", "1", "2", "3"})
	}
	ds := NewDataset(attrs)
	rec := make([]uint16, d)
	for r := 0; r < n; r++ {
		for c := range rec {
			rec[c] = uint16((r*(c+3) + c) % 4)
		}
		ds.Append(rec)
	}
	return ds
}

// waitGoroutines polls until the goroutine count drops back to at most
// base (plus slack for the runtime's own helpers).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d at baseline, %d now", base, runtime.NumGoroutine())
}

// TestFitCancelMidRun: cancelling mid-fit — from inside a progress
// callback, so cancellation demonstrably lands while the pipeline is
// running — returns context.Canceled promptly and leaks no goroutines.
func TestFitCancelMidRun(t *testing.T) {
	ds := cancelData(6000, 8)
	base := runtime.NumGoroutine()
	for _, par := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		events := 0
		start := time.Now()
		_, err := Fit(ctx, ds,
			WithEpsilon(1), WithSeed(1), WithParallelism(par),
			WithProgress(func(p Progress) {
				events++
				if events == 2 {
					cancel()
				}
			}))
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism %d: err = %v, want context.Canceled", par, err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Errorf("parallelism %d: cancellation took %v", par, elapsed)
		}
	}
	waitGoroutines(t, base)
}

// TestFitPreCancelled: an already-cancelled context fails before any
// work happens.
func TestFitPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Fit(ctx, cancelData(500, 4), WithEpsilon(1), WithSeed(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSynthesizeStreamCancelMidStream: cancelling between yielded rows
// surfaces context.Canceled through the iterator and tears the
// sampling pool down without leaks.
func TestSynthesizeStreamCancelMidStream(t *testing.T) {
	m, err := Fit(context.Background(), cancelData(3000, 6), WithEpsilon(1), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	rows, sawCancel := 0, false
	for _, err := range m.Synthesize(ctx, 10_000_000, SynthSeed(4)) {
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("stream error = %v, want context.Canceled", err)
			}
			sawCancel = true
			break
		}
		rows++
		if rows == 100 {
			cancel()
		}
	}
	cancel()
	if !sawCancel {
		t.Fatal("stream never surfaced the cancellation")
	}
	if rows >= 10_000_000 {
		t.Fatal("stream ran to completion despite cancel")
	}
	waitGoroutines(t, base)
}

// TestSynthesizeToCancel: the writer-side stream honours ctx too.
func TestSynthesizeToCancel(t *testing.T) {
	m, err := Fit(context.Background(), cancelData(3000, 6), WithEpsilon(1), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	w := &cancelAfterWriter{cancel: cancel, after: 3}
	err = m.SynthesizeTo(ctx, w, 10_000_000, FormatCSV, SynthSeed(6))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// cancelAfterWriter cancels its context after `after` writes — a stand-
// in for a client that disconnects mid-download.
type cancelAfterWriter struct {
	cancel context.CancelFunc
	after  int
	writes int
}

func (w *cancelAfterWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes >= w.after {
		w.cancel()
	}
	return len(p), nil
}

// TestSynthesizeMaterializedCancel covers the package-level Synthesize
// path (fit + sample in one call).
func TestSynthesizeMaterializedCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	events := 0
	_, err := Synthesize(ctx, cancelData(6000, 8),
		WithEpsilon(1), WithSeed(7),
		WithProgress(func(p Progress) {
			events++
			if p.Phase == PhaseSampling && events > 0 {
				cancel()
			}
		}))
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
