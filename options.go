package privbayes

import (
	"errors"
	"fmt"

	"privbayes/internal/core"
	"privbayes/internal/score"
)

// Default parameterization of the v2 API, from the paper's
// recommendations (Section 6.4). Unlike the v1 Options struct — which
// inferred "unset" from zero values — the v2 option set starts from
// these explicit defaults and every With* option overrides exactly one
// of them.
const (
	// DefaultBeta splits the budget between network learning (βε) and
	// distribution learning ((1−β)ε).
	DefaultBeta = 0.3
	// DefaultTheta is the θ-usefulness threshold steering model
	// capacity.
	DefaultTheta = 4.0
)

// ScoreFunction selects the exponential-mechanism score. The zero
// value ScoreAuto picks the paper's recommendation for the data: F for
// all-binary schemas, R otherwise.
type ScoreFunction int

const (
	// ScoreAuto selects F on all-binary data and R otherwise.
	ScoreAuto ScoreFunction = iota
	// ScoreMI is raw mutual information I (the baseline).
	ScoreMI
	// ScoreF is the binary-domain surrogate of Section 4.3.
	ScoreF
	// ScoreR is the general-domain surrogate of Section 5.3.
	ScoreR
)

// String names the function as in the paper.
func (f ScoreFunction) String() string {
	switch f {
	case ScoreAuto:
		return "auto"
	case ScoreMI:
		return "I"
	case ScoreF:
		return "F"
	case ScoreR:
		return "R"
	default:
		return fmt.Sprintf("ScoreFunction(%d)", int(f))
	}
}

// fn maps the facade enum onto the internal score function.
func (f ScoreFunction) fn() (score.Function, error) {
	switch f {
	case ScoreMI:
		return score.MI, nil
	case ScoreF:
		return score.F, nil
	case ScoreR:
		return score.R, nil
	default:
		return 0, fmt.Errorf("privbayes: invalid score function %v", f)
	}
}

// Source is a seed-based randomness source: an immutable value from
// which every run derives a fresh deterministic generator, replacing
// the shared-mutable *rand.Rand of the v1 API. Build one with
// NewSource for replayable runs or CryptoSource for a fresh
// cryptographic seed whose Seed() you can log; the zero Source means
// "draw a cryptographic seed for me".
type Source = core.Source

// NewSource returns a deterministic Source for the given seed.
func NewSource(seed int64) Source { return core.NewSource(seed) }

// CryptoSource returns a Source freshly seeded from the operating
// system's cryptographic randomness. Record Seed() to replay the run.
func CryptoSource() Source { return core.CryptoSource() }

// Progress is one pipeline progress event: Done of Total units of
// Phase have completed. Callbacks receive events serially and should
// return quickly.
type Progress = core.ProgressEvent

// Phase identifies a pipeline stage in a Progress event.
type Phase = core.Phase

// Pipeline phases reported through WithProgress.
const (
	PhaseNetwork   = core.PhaseNetwork
	PhaseMarginals = core.PhaseMarginals
	PhaseSampling  = core.PhaseSampling
)

// config is the resolved option set of one v2 run.
type config struct {
	epsilon     float64
	epsilonSet  bool
	beta        float64
	theta       float64
	score       ScoreFunction
	degree      int
	hierarchy   bool
	consistency bool
	parallelism int
	cacheSize   int
	source      Source
	progress    func(Progress)
}

func defaultConfig() config {
	return config{beta: DefaultBeta, theta: DefaultTheta, hierarchy: true}
}

// Option configures Fit, Synthesize, NewFitter and NewSession. Options
// apply left to right; later options override earlier ones.
type Option func(*config)

// WithEpsilon sets the total differential-privacy budget ε. Required
// by every fitting entry point.
func WithEpsilon(epsilon float64) Option {
	return func(c *config) { c.epsilon = epsilon; c.epsilonSet = true }
}

// WithBeta sets the budget split β between network learning (βε) and
// distribution learning ((1−β)ε). Default DefaultBeta.
func WithBeta(beta float64) Option {
	return func(c *config) { c.beta = beta }
}

// WithTheta sets the θ-usefulness threshold. Default DefaultTheta.
func WithTheta(theta float64) Option {
	return func(c *config) { c.theta = theta }
}

// WithScore pins the exponential-mechanism score function. Default
// ScoreAuto (F on all-binary data, R otherwise).
func WithScore(f ScoreFunction) Option {
	return func(c *config) { c.score = f }
}

// WithDegree forces the network degree k on all-binary data; <= 0 (the
// default) selects k by θ-usefulness. Ignored on non-binary schemas,
// where θ-usefulness caps domain sizes instead of a single k.
func WithDegree(k int) Option {
	return func(c *config) { c.degree = k }
}

// WithHierarchy toggles taxonomy-tree generalization of parents
// (Algorithm 6) on non-binary schemas whose attributes define
// hierarchies. Default true — the paper's "Hierarchical" encoding.
func WithHierarchy(enabled bool) Option {
	return func(c *config) { c.hierarchy = enabled }
}

// WithConsistency toggles the mutual-consistency post-processing of
// the noisy marginals (footnote 1 of the paper); costs no privacy.
// Default false.
func WithConsistency(enabled bool) Option {
	return func(c *config) { c.consistency = enabled }
}

// WithParallelism bounds the worker pool for candidate scoring,
// marginal counting and sampling. <= 0 (the default) uses all CPU
// cores; 1 forces the serial code paths. For a fixed seed, output is
// bit-identical at every parallelism other than 1, on any machine.
func WithParallelism(p int) Option {
	return func(c *config) { c.parallelism = p }
}

// WithScorerCache bounds the score memo built during fitting to at
// most size scored (X, Π) pairs, evicted least-recently-used. <= 0
// (the default) keeps the memo unbounded. Eviction never changes
// results, only recompute cost.
func WithScorerCache(size int) Option {
	return func(c *config) { c.cacheSize = size }
}

// WithSource sets the randomness source. The default (zero) Source
// draws a fresh cryptographic seed per run; pass NewSource(seed) — or
// a CryptoSource whose Seed() you logged — for deterministic replay.
func WithSource(src Source) Option {
	return func(c *config) { c.source = src }
}

// WithSeed is shorthand for WithSource(NewSource(seed)).
func WithSeed(seed int64) Option { return WithSource(NewSource(seed)) }

// WithProgress registers a callback observing pipeline progress:
// PhaseNetwork per greedy iteration, PhaseMarginals per materialized
// joint, PhaseSampling per generated chunk (Done/Total in rows).
// Events arrive serially — never from two goroutines at once.
func WithProgress(fn func(Progress)) Option {
	return func(c *config) { c.progress = fn }
}

// resolve folds opts over the defaults.
func resolve(opts []Option) config {
	c := defaultConfig()
	for _, o := range opts {
		if o != nil {
			o(&c)
		}
	}
	return c
}

// merge folds additional per-call opts over a fitter's resolved config.
func (c config) merge(opts []Option) config {
	for _, o := range opts {
		if o != nil {
			o(&c)
		}
	}
	return c
}

// validate rejects option sets that cannot parameterize any run.
// Dataset-dependent validation (mode selection, score compatibility)
// happens in toCore.
func (c config) validate() error {
	if !c.epsilonSet {
		return errors.New("privbayes: WithEpsilon is required")
	}
	if c.epsilon <= 0 {
		return fmt.Errorf("privbayes: epsilon must be positive, got %g", c.epsilon)
	}
	if c.beta <= 0 || c.beta >= 1 {
		return fmt.Errorf("privbayes: beta must be in (0,1), got %g", c.beta)
	}
	if c.theta <= 0 {
		return fmt.Errorf("privbayes: theta must be positive, got %g", c.theta)
	}
	if c.score < ScoreAuto || c.score > ScoreR {
		return fmt.Errorf("privbayes: invalid score function %v", c.score)
	}
	return nil
}

// toCore maps the resolved config onto internal pipeline options for
// one dataset. The returned options carry a fresh generator derived
// from the config's source (drawing a cryptographic seed if unset), so
// concurrent runs from one config never share RNG state.
func (c config) toCore(ds *Dataset) (core.Options, error) {
	return c.toCoreAttrs(ds.Attrs())
}

// toCoreAttrs is toCore from a schema alone — mode selection and score
// defaults depend only on attribute domains, never on rows, which is
// what lets the scanner entry points parameterize a fit before any
// data has been read.
func (c config) toCoreAttrs(attrs []Attribute) (core.Options, error) {
	if err := c.validate(); err != nil {
		return core.Options{}, err
	}
	src := c.source
	if src.IsZero() {
		src = CryptoSource()
	}
	opt := core.Options{
		Epsilon:         c.epsilon,
		Beta:            c.beta,
		Theta:           c.theta,
		K:               -1,
		Consistency:     c.consistency,
		Parallelism:     c.parallelism,
		ScorerCacheSize: c.cacheSize,
		Progress:        c.progress,
		Rand:            src.Rand(),
	}
	binary := true
	for i := range attrs {
		if attrs[i].Size() != 2 {
			binary = false
			break
		}
	}
	if binary {
		opt.Mode = core.ModeBinary
		opt.Score = score.F
		if c.degree > 0 {
			opt.K = c.degree
		}
	} else {
		opt.Mode = core.ModeGeneral
		opt.Score = score.R
		opt.UseHierarchy = c.hierarchy
	}
	if c.score != ScoreAuto {
		fn, err := c.score.fn()
		if err != nil {
			return core.Options{}, err
		}
		opt.Score = fn
	}
	return opt, nil
}
