# Single source of truth for build/test commands: CI (.github/workflows/
# ci.yml) and humans run the same targets.

GO ?= go

.PHONY: all build test race bench bench-json serve lint cover fmt \
	apicheck api-baseline examples quality fuzz crashsafety logcheck

# Minimum total statement coverage accepted by `make cover` (percent).
COVER_FLOOR ?= 70

# Per-target budget for `make fuzz`. CI smoke uses the default; the
# nightly workflow raises it.
FUZZTIME ?= 10s

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over every package; the parallel engine's
# correctness tests are written to be meaningful under -race.
race:
	$(GO) test -race ./...

# One-iteration benchmark smoke pass: catches benchmarks that no longer
# compile or crash, without paying for stable timings. Includes the
# shared-vs-legacy scoring benchmarks (BenchmarkScoreBatch*).
bench:
	$(GO) test -run NONE -bench . -benchtime 1x ./...

# Timed benchmarks, captured machine-readably. Scoring: runs
# BenchmarkScoreBatchShared vs BenchmarkScoreBatchLegacy over the
# (d, k) grid and writes per-benchmark ns/op plus shared-vs-legacy
# speedups to BENCH_scoring.json. Serving: runs BenchmarkServeSynthesize
# (end-to-end HTTP streaming synthesis at n∈{1e4,1e5} × parallelism) and
# writes rows/s per configuration to BENCH_serving.json.
# Each bench run lands in a temp file first so a benchmark failure fails
# the target instead of being masked by the pipe into the converter.
# bench-json also refreshes BENCH_quality.json, but without the
# threshold gate (-check=false): artifact generation must not fail on a
# quality regression — the dedicated `quality` target / CI job owns the
# gating.
bench-json:
	$(GO) run ./cmd/quality -check=false -out BENCH_quality.json
	$(GO) test -run NONE -bench 'BenchmarkScoreBatch(Shared|Legacy)$$' \
		-benchtime 1s ./internal/score > bench_scoring.out
	$(GO) test -run NONE -bench 'BenchmarkCount(Columnar|RowMajor)$$' \
		-benchtime 1s ./internal/marginal >> bench_scoring.out
	$(GO) run ./cmd/benchjson -in bench_scoring.out > BENCH_scoring.json
	@rm -f bench_scoring.out
	@cat BENCH_scoring.json
	$(GO) test -run NONE -bench 'BenchmarkServeSynthesize' \
		-benchtime 1s ./internal/server > bench_serving.out
	$(GO) run ./cmd/benchjson -in bench_serving.out > BENCH_serving.json
	@rm -f bench_serving.out
	@cat BENCH_serving.json
	$(GO) test -run NONE -bench '^(BenchmarkQuery|BenchmarkSynthesizeThenScan)$$' \
		-benchtime 1s . > bench_query.out
	$(GO) run ./cmd/benchjson -in bench_query.out > BENCH_query.json
	@rm -f bench_query.out
	@cat BENCH_query.json
	$(GO) test -run NONE -bench 'BenchmarkTelemetryOverhead|BenchmarkServeSynthesizeTelemetry' \
		-benchtime 1s ./internal/telemetry ./internal/server > bench_telemetry.out
	$(GO) run ./cmd/benchjson -in bench_telemetry.out > BENCH_telemetry.json
	@rm -f bench_telemetry.out
	@cat BENCH_telemetry.json
	$(GO) test -run NONE -bench 'BenchmarkCuratorIngest|BenchmarkFit(InMemory|Scanner)|BenchmarkRefit(Cold|Incremental)' \
		-benchtime 1s ./internal/curator > bench_curator.out
	$(GO) run ./cmd/benchjson -in bench_curator.out > BENCH_curator.json
	@rm -f bench_curator.out
	@cat BENCH_curator.json

# Statistical quality sweep and regression gate: fits every ground-truth
# scenario at ε ∈ {0.1, 1, 10}, writes BENCH_quality.json (2-way/3-way
# marginal TVD, SVM misclassification, structure recovery), and exits
# non-zero when a calibrated per-scenario threshold is violated. The
# sweep is seeded end to end: repeated runs emit identical JSON.
quality:
	$(GO) run ./cmd/quality -out BENCH_quality.json
	@cat BENCH_quality.json

# Native fuzzing smoke over the untrusted-input parsers — model
# artifacts (core.ReadModelJSON, behind LoadModel), CSV uploads
# (dataset.ReadCSV), JSONL row appends (dataset.ScanJSONL), the
# curator's on-disk row record codec — plus the differential counting
# fuzz pinning the popcount kernel to the legacy row-major counts.
# FUZZTIME bounds each target; the nightly workflow runs with a larger
# budget.
fuzz:
	$(GO) test -run NONE -fuzz 'FuzzReadModelJSON$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run NONE -fuzz 'FuzzReadCSV$$' -fuzztime $(FUZZTIME) ./internal/dataset
	$(GO) test -run NONE -fuzz 'FuzzScanJSONL$$' -fuzztime $(FUZZTIME) ./internal/dataset
	$(GO) test -run NONE -fuzz 'FuzzAppendRows$$' -fuzztime $(FUZZTIME) ./internal/curator
	$(GO) test -run NONE -fuzz 'FuzzColumnarCounts$$' -fuzztime $(FUZZTIME) ./internal/marginal

# Crash-loop harness over the real binary: kill -9 privbayesd at points
# spread across a curator fit and across the continuous-curation
# lifecycle (row appends + automatic refit), restart over the same
# state dir, and verify no acknowledged append or ε charge is lost,
# nothing double-spends or double-ingests, and the retried idempotent
# fit charges exactly once. Deterministic per-filesystem-op
# crash sweeps live in `go test ./internal/wal ./internal/accountant`;
# this target is the real-process tier-2 gate. CRASHSAFETY_DIR, when
# set, keeps every iteration's state directory for post-mortem.
crashsafety:
	PRIVBAYES_CRASHSAFETY=1 PRIVBAYES_CRASHSAFETY_DIR=$(CRASHSAFETY_DIR) \
		$(GO) test -run 'TestCrashLoop' -v -timeout 20m ./cmd/privbayesd

# Run the synthesis-serving daemon locally: loads models from ./models,
# meters curator fits in ./models/ledger.json.
serve:
	@mkdir -p models
	$(GO) run ./cmd/privbayesd -addr :8131 -models-dir models \
		-ledger models/ledger.json

# API-compatibility gate: the exported surface of the privbayes facade
# must match the checked-in golden file. Any API change — addition or
# break — fails CI until it is declared by regenerating the golden
# (make api-baseline) and committing it with the change.
apicheck:
	$(GO) run ./cmd/apicheck -dir . -golden api/privbayes.txt

api-baseline:
	$(GO) run ./cmd/apicheck -dir . -golden api/privbayes.txt -write

# Build every example as its own binary, so a facade change that breaks
# an example breaks CI even though examples carry no tests.
examples:
	@set -e; for d in examples/*/; do \
		echo "build $$d"; $(GO) build -o /dev/null ./$$d; done

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Log-hygiene gate: non-test code in internal/server must log through
# the injected slog seam (Config.Logger), never straight to
# stdout/stderr — bare prints bypass -log-format/-log-level and lose
# the request ID.
logcheck:
	@out=$$(grep -rnE '(fmt|log)\.Print' internal/server --include='*.go' \
		| grep -v '_test\.go' || true); \
	if [ -n "$$out" ]; then \
		echo "bare fmt.Print*/log.Print* in internal/server (use the slog seam):"; \
		echo "$$out"; exit 1; fi
	@echo "logcheck: internal/server is print-free"

# Coverage with a floor: fails when total statement coverage drops
# below COVER_FLOOR percent. The profile lands under build/ (ignored)
# instead of littering the repo root; CI uploads it as an artifact.
cover:
	@mkdir -p build
	$(GO) test -coverprofile=build/coverage.out ./...
	@total=$$($(GO) tool cover -func=build/coverage.out | tail -1 | \
		sed -E 's/.*[[:space:]]([0-9]+(\.[0-9]+)?)%$$/\1/'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	ok=$$(awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN{print (t+0 >= f+0) ? 1 : 0}'); \
	if [ "$$ok" != 1 ]; then \
		echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; fi

fmt:
	gofmt -w .
