# Single source of truth for build/test commands: CI (.github/workflows/
# ci.yml) and humans run the same targets.

GO ?= go

.PHONY: all build test race bench lint cover fmt

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over every package; the parallel engine's
# correctness tests are written to be meaningful under -race.
race:
	$(GO) test -race ./...

# One-iteration benchmark smoke pass: catches benchmarks that no longer
# compile or crash, without paying for stable timings.
bench:
	$(GO) test -run NONE -bench . -benchtime 1x ./...

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

fmt:
	gofmt -w .
