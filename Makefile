# Single source of truth for build/test commands: CI (.github/workflows/
# ci.yml) and humans run the same targets.

GO ?= go

.PHONY: all build test race bench bench-json lint cover fmt

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over every package; the parallel engine's
# correctness tests are written to be meaningful under -race.
race:
	$(GO) test -race ./...

# One-iteration benchmark smoke pass: catches benchmarks that no longer
# compile or crash, without paying for stable timings. Includes the
# shared-vs-legacy scoring benchmarks (BenchmarkScoreBatch*).
bench:
	$(GO) test -run NONE -bench . -benchtime 1x ./...

# Timed shared-scan scoring benchmarks, captured machine-readably: runs
# BenchmarkScoreBatchShared vs BenchmarkScoreBatchLegacy over the
# (d, k) grid and writes per-benchmark ns/op plus shared-vs-legacy
# speedups to BENCH_scoring.json.
# The bench run lands in a temp file first so a benchmark failure fails
# the target instead of being masked by the pipe into the converter.
bench-json:
	$(GO) test -run NONE -bench 'BenchmarkScoreBatch(Shared|Legacy)$$' \
		-benchtime 1s ./internal/score > bench_scoring.out
	$(GO) run ./cmd/benchjson < bench_scoring.out > BENCH_scoring.json
	@rm -f bench_scoring.out
	@cat BENCH_scoring.json

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

fmt:
	gofmt -w .
