// Package privbayes is a production-quality Go implementation of
// PrivBayes (Zhang, Cormode, Procopiuc, Srivastava, Xiao — SIGMOD 2014 /
// TODS 2017): differentially private release of high-dimensional tabular
// data via Bayesian networks.
//
// Given a sensitive dataset, PrivBayes (1) learns a low-degree Bayesian
// network with the exponential mechanism using low-sensitivity surrogate
// score functions, (2) perturbs the network's low-dimensional marginals
// with the Laplace mechanism, and (3) samples a synthetic dataset from
// the noisy model. The released data satisfies ε-differential privacy
// end to end and supports arbitrary downstream workloads.
//
// Quick start:
//
//	attrs := []privbayes.Attribute{
//		privbayes.NewCategorical("color", []string{"red", "green", "blue"}),
//		privbayes.NewContinuous("age", 0, 100, 16),
//	}
//	ds := privbayes.NewDataset(attrs)
//	// ... ds.Append(record) for each row ...
//	syn, err := privbayes.Synthesize(ds, privbayes.Options{
//		Epsilon: 1.0,
//		Rand:    rand.New(rand.NewSource(1)),
//	})
//
// The exported types alias the internal implementation packages, so the
// whole pipeline — datasets, taxonomy hierarchies, fitted models — is
// usable from this single import.
package privbayes

import (
	"errors"
	"io"
	"math/rand"

	"privbayes/internal/core"
	"privbayes/internal/dataset"
	"privbayes/internal/score"
)

// Dataset is a column-oriented table of encoded records.
type Dataset = dataset.Dataset

// Attribute describes one column: a categorical label set or a
// discretized continuous range, optionally with a taxonomy tree.
type Attribute = dataset.Attribute

// Hierarchy is a taxonomy tree over an attribute's values, enabling the
// hierarchical encoding of Section 5.1.
type Hierarchy = dataset.Hierarchy

// Kind classifies an attribute's original domain.
type Kind = dataset.Kind

// Attribute kinds.
const (
	Categorical = dataset.Categorical
	Continuous  = dataset.Continuous
)

// Model is a fitted PrivBayes model: the private Bayesian network plus
// its noisy conditional distributions. Sampling from a Model incurs no
// further privacy cost.
type Model = core.Model

// ModelInfo is a serializable summary of a fitted model — schema,
// network structure, degree, score function and size — as returned by
// Model.Info. Registries and inspection endpoints (see privbayesd's
// GET /models) expose it directly; everything in it derives from the
// ε-DP release, so surfacing it costs no privacy.
type ModelInfo = core.ModelInfo

// AttrInfo summarizes one schema attribute within a ModelInfo.
type AttrInfo = core.AttrInfo

// PairInfo renders one attribute-parent pair of the network by name.
type PairInfo = core.PairInfo

// ErrInvalidModel tags every rejection of a model artifact by
// LoadModel: malformed JSON, a missing or unsupported format version,
// or structural validation failure. Services accepting uploaded
// artifacts branch on errors.Is(err, ErrInvalidModel) to separate bad
// input from internal faults.
var ErrInvalidModel = core.ErrInvalidModel

// ScoreFunction selects the exponential-mechanism score.
type ScoreFunction = score.Function

// Score function choices. The paper recommends F for all-binary data
// and R otherwise; mutual information I is included as the baseline.
const (
	ScoreMI = score.MI
	ScoreF  = score.F
	ScoreR  = score.R
)

// NewDataset creates an empty dataset with the given schema.
func NewDataset(attrs []Attribute) *Dataset { return dataset.New(attrs) }

// NewCategorical constructs a categorical attribute.
func NewCategorical(name string, labels []string) Attribute {
	return dataset.NewCategorical(name, labels)
}

// NewContinuous constructs a continuous attribute discretized into
// equi-width bins.
func NewContinuous(name string, min, max float64, bins int) Attribute {
	return dataset.NewContinuous(name, min, max, bins)
}

// NewHierarchy builds a taxonomy tree from per-level generalization
// maps; see dataset.NewHierarchy.
func NewHierarchy(rawSize int, maps ...[]int) *Hierarchy {
	return dataset.NewHierarchy(rawSize, maps...)
}

// Options configures Fit and Synthesize. Only Epsilon and Rand are
// required; everything else defaults to the paper's recommendations
// (β = 0.3, θ = 4, score R with hierarchical generalization, or score F
// with the binary pipeline when every attribute is binary).
type Options struct {
	// Epsilon is the total differential-privacy budget.
	Epsilon float64
	// Beta splits the budget between network learning (βε) and
	// distribution learning ((1−β)ε). Default 0.3.
	Beta float64
	// Theta is the θ-usefulness threshold steering model capacity.
	// Default 4.
	Theta float64
	// Score overrides the automatic score-function choice.
	Score ScoreFunction
	// scoreSet tracks whether Score was set explicitly.
	ScoreSet bool
	// Degree forces the network degree k on all-binary data; negative
	// or zero selects k by θ-usefulness.
	Degree int
	// DisableHierarchy turns off taxonomy-tree generalization even when
	// attributes define hierarchies (the paper's "vanilla" encoding).
	DisableHierarchy bool
	// Consistency enables the mutual-consistency post-processing of the
	// noisy marginals (footnote 1 of the paper); costs no privacy.
	Consistency bool
	// Parallelism bounds the worker pool for candidate scoring, marginal
	// counting and sampling. <= 0 (the default) uses all CPU cores; 1
	// forces the serial code paths. For a fixed seed, Fit and
	// Synthesize output is bit-identical at every parallelism other
	// than 1, on any machine; 1 reproduces the pre-engine serial
	// implementation byte for byte.
	Parallelism int
	// ScorerCacheSize bounds the score memo built during Fit: at most
	// this many scored (X, Π) pairs are retained, evicted least-recently
	// used. <= 0 (the default) keeps the memo unbounded. Useful for
	// long-running services fitting many models, where an unbounded memo
	// would grow without limit; eviction never changes results.
	ScorerCacheSize int
	// Rand is the randomness source; required.
	Rand *rand.Rand
}

func (o Options) toCore(ds *Dataset) (core.Options, error) {
	if o.Rand == nil {
		return core.Options{}, errors.New("privbayes: Options.Rand is required")
	}
	opt := core.Options{
		Epsilon:         o.Epsilon,
		Beta:            o.Beta,
		Theta:           o.Theta,
		K:               -1,
		Consistency:     o.Consistency,
		Parallelism:     o.Parallelism,
		ScorerCacheSize: o.ScorerCacheSize,
		Rand:            o.Rand,
	}
	if opt.Beta == 0 {
		opt.Beta = 0.3
	}
	if opt.Theta == 0 {
		opt.Theta = 4
	}
	binary := true
	for i := 0; i < ds.D(); i++ {
		if ds.Attr(i).Size() != 2 {
			binary = false
			break
		}
	}
	if binary {
		opt.Mode = core.ModeBinary
		opt.Score = score.F
		if o.Degree > 0 {
			opt.K = o.Degree
		}
	} else {
		opt.Mode = core.ModeGeneral
		opt.Score = score.R
		opt.UseHierarchy = !o.DisableHierarchy
	}
	if o.ScoreSet {
		opt.Score = o.Score
	}
	return opt, nil
}

// Fit learns a PrivBayes model from the dataset under ε-differential
// privacy.
func Fit(ds *Dataset, o Options) (*Model, error) {
	opt, err := o.toCore(ds)
	if err != nil {
		return nil, err
	}
	return core.Fit(ds, opt)
}

// Synthesize fits a model and samples a synthetic dataset with the same
// number of rows as the input. The combined release satisfies
// ε-differential privacy (Theorem 3.2 of the paper). Both phases honour
// o.Parallelism.
func Synthesize(ds *Dataset, o Options) (*Dataset, error) {
	m, err := Fit(ds, o)
	if err != nil {
		return nil, err
	}
	return m.SampleP(ds.N(), o.Rand, o.Parallelism), nil
}

// SaveModel persists a fitted model as JSON. Only the noisy model is
// written — never the sensitive data — so the stored artifact carries
// exactly the ε-DP release. epsilon is recorded as metadata.
func SaveModel(w io.Writer, m *Model, epsilon float64) error {
	return m.WriteJSON(w, epsilon)
}

// LoadModel reads a model persisted by SaveModel and returns it with
// the recorded ε. The artifact is fully revalidated — format version,
// network structure, conditional-table dimensions and probability
// vectors — so it is safe to call on untrusted input: malformed
// documents return an error wrapping ErrInvalidModel, never a panic.
func LoadModel(r io.Reader) (*Model, float64, error) {
	return core.ReadModelJSON(r)
}
