// Package privbayes is a production-quality Go implementation of
// PrivBayes (Zhang, Cormode, Procopiuc, Srivastava, Xiao — SIGMOD 2014 /
// TODS 2017): differentially private release of high-dimensional tabular
// data via Bayesian networks.
//
// Given a sensitive dataset, PrivBayes (1) learns a low-degree Bayesian
// network with the exponential mechanism using low-sensitivity surrogate
// score functions, (2) perturbs the network's low-dimensional marginals
// with the Laplace mechanism, and (3) samples a synthetic dataset from
// the noisy model. The released data satisfies ε-differential privacy
// end to end and supports arbitrary downstream workloads.
//
// Quick start (the context-first v2 API):
//
//	attrs := []privbayes.Attribute{
//		privbayes.NewCategorical("color", []string{"red", "green", "blue"}),
//		privbayes.NewContinuous("age", 0, 100, 16),
//	}
//	ds := privbayes.NewDataset(attrs)
//	// ... ds.Append(record) for each row ...
//	model, err := privbayes.Fit(ctx, ds,
//		privbayes.WithEpsilon(1.0),
//		privbayes.WithSeed(1), // omit for a crypto-drawn seed
//	)
//	// Stream any number of synthetic rows; no further privacy cost.
//	for row, err := range model.Synthesize(ctx, 100_000, privbayes.SynthSeed(2)) {
//		...
//	}
//
// Every entry point takes a context.Context and cancels promptly;
// randomness comes from immutable seed-based Sources rather than a
// shared *rand.Rand; options are functional (WithEpsilon, WithBeta,
// WithScore, WithParallelism, WithProgress, ...). Fitter bundles
// options for reuse, and Session additionally shares score caches
// across repeated fits of one dataset. The v1 entry points survive as
// the deprecated FitV1/SynthesizeV1 shims with bit-identical output.
//
// The exported types alias the internal implementation packages, so the
// whole pipeline — datasets, taxonomy hierarchies, fitted models — is
// usable from this single import.
package privbayes

import (
	"io"

	"privbayes/internal/core"
	"privbayes/internal/dataset"
)

// Dataset is a column-oriented table of encoded records.
type Dataset = dataset.Dataset

// Attribute describes one column: a categorical label set or a
// discretized continuous range, optionally with a taxonomy tree.
type Attribute = dataset.Attribute

// Hierarchy is a taxonomy tree over an attribute's values, enabling the
// hierarchical encoding of Section 5.1.
type Hierarchy = dataset.Hierarchy

// Kind classifies an attribute's original domain.
type Kind = dataset.Kind

// Attribute kinds.
const (
	Categorical = dataset.Categorical
	Continuous  = dataset.Continuous
)

// Model is a fitted PrivBayes model: the private Bayesian network plus
// its noisy conditional distributions. Sampling from a Model incurs no
// further privacy cost, whether materialized (Sample, SampleP,
// SampleContext) or streamed (Synthesize, SynthesizeTo).
type Model = core.Model

// ModelInfo is a serializable summary of a fitted model — schema,
// network structure, degree, score function and size — as returned by
// Model.Info. Registries and inspection endpoints (see privbayesd's
// GET /models) expose it directly; everything in it derives from the
// ε-DP release, so surfacing it costs no privacy.
type ModelInfo = core.ModelInfo

// AttrInfo summarizes one schema attribute within a ModelInfo.
type AttrInfo = core.AttrInfo

// PairInfo renders one attribute-parent pair of the network by name.
type PairInfo = core.PairInfo

// ErrInvalidModel tags every rejection of a model artifact by
// LoadModel: malformed JSON, a missing or unsupported format version,
// or structural validation failure. Services accepting uploaded
// artifacts branch on errors.Is(err, ErrInvalidModel) to separate bad
// input from internal faults.
var ErrInvalidModel = core.ErrInvalidModel

// NewDataset creates an empty dataset with the given schema.
func NewDataset(attrs []Attribute) *Dataset { return dataset.New(attrs) }

// NewCategorical constructs a categorical attribute.
func NewCategorical(name string, labels []string) Attribute {
	return dataset.NewCategorical(name, labels)
}

// NewContinuous constructs a continuous attribute discretized into
// equi-width bins.
func NewContinuous(name string, min, max float64, bins int) Attribute {
	return dataset.NewContinuous(name, min, max, bins)
}

// NewHierarchy builds a taxonomy tree from per-level generalization
// maps; see dataset.NewHierarchy.
func NewHierarchy(rawSize int, maps ...[]int) *Hierarchy {
	return dataset.NewHierarchy(rawSize, maps...)
}

// SaveModel persists a fitted model as JSON. Only the noisy model is
// written — never the sensitive data — so the stored artifact carries
// exactly the ε-DP release. epsilon is recorded as metadata.
func SaveModel(w io.Writer, m *Model, epsilon float64) error {
	return m.WriteJSON(w, epsilon)
}

// LoadModel reads a model persisted by SaveModel and returns it with
// the recorded ε. The artifact is fully revalidated — format version,
// network structure, conditional-table dimensions and probability
// vectors — so it is safe to call on untrusted input: malformed
// documents return an error wrapping ErrInvalidModel, never a panic.
func LoadModel(r io.Reader) (*Model, float64, error) {
	return core.ReadModelJSON(r)
}
