package privbayes

import "privbayes/internal/core"

// Streaming synthesis: a fitted Model streams any number of synthetic
// rows in bounded memory, either as a Go iterator —
//
//	for row, err := range model.Synthesize(ctx, 1_000_000, privbayes.SynthSeed(7)) {
//		if err != nil { ... }
//		use(row) // row[i] is the code of attribute i
//	}
//
// — or encoded straight to a writer:
//
//	err := model.SynthesizeTo(ctx, w, 1_000_000, privbayes.FormatCSV, privbayes.SynthSeed(7))
//
// Rows are generated in bounded chunks through the same
// worker-count-independent scheme privbayesd serves with, so for a
// fixed (model, n, seed) a stream is byte-identical to one monolithic
// SampleP call — and to the daemon's /synthesize response.

// Row is one streamed synthetic record: one attribute code per column,
// in schema order. Decode with Model.AppendRowText or the Attribute
// accessors.
type Row = core.Row

// SynthOption configures Model.Synthesize and Model.SynthesizeTo.
type SynthOption = core.SynthOption

// Format selects the wire encoding of Model.SynthesizeTo.
type Format = core.Format

// Wire encodings.
const (
	// FormatCSV emits a header row then one decoded CSV row per record.
	FormatCSV = core.FormatCSV
	// FormatJSONL emits one JSON object per record, no header.
	FormatJSONL = core.FormatJSONL
)

// SynthSeed fixes the stream's seed for deterministic replay.
func SynthSeed(seed int64) SynthOption { return core.SynthSeed(seed) }

// SynthSource sets the stream's randomness source; the default draws a
// cryptographic seed.
func SynthSource(src Source) SynthOption { return core.SynthSource(src) }

// SynthParallelism bounds the sampling workers per generated chunk;
// the streamed bytes are identical at every setting.
func SynthParallelism(p int) SynthOption { return core.SynthParallelism(p) }

// SynthProgress registers a callback receiving PhaseSampling events
// (Done/Total in rows) as the stream advances.
func SynthProgress(fn func(Progress)) SynthOption { return core.SynthProgress(fn) }
