package privbayes

// Out-of-core fitting. FitScanner runs the identical two-phase
// pipeline as Fit with the rows left on disk: every greedy iteration
// re-reads the source once through a chunked scanner and reduces it to
// exact integer count tables (one table per candidate parent set, one
// column per child), and the distribution phase prefetches all chosen
// joints in one final pass. Peak memory is bounded by the chunk size
// plus the count tables — never by the row count — and the fitted
// model is byte-identical to Fit over the materialized rows for the
// same seed, at every parallelism setting.

import (
	"context"

	"privbayes/internal/core"
	"privbayes/internal/counts"
	"privbayes/internal/dataset"
)

// ScanSource is a chunked, re-scannable dataset source: a schema plus
// a way to open a fresh pass over the rows. Build one with CSVSource,
// JSONLSource or DatasetSource. The same source can back any number of
// FitScanner calls; each call re-opens it per greedy iteration.
type ScanSource = dataset.ChunkSource

// DefaultChunkRows is the chunk size the source constructors use when
// given chunkRows <= 0.
const DefaultChunkRows = dataset.DefaultChunkRows

// CSVSource describes a headered CSV file as a re-scannable source.
// chunkRows bounds the rows materialized at a time (<= 0 selects
// DefaultChunkRows). The file is not opened until fitting starts, and
// is re-read once per greedy iteration, so it must stay unchanged for
// the duration of a fit.
func CSVSource(path string, attrs []Attribute, chunkRows int) *ScanSource {
	return dataset.CSVFile(path, attrs, chunkRows)
}

// JSONLSource describes a JSON-lines file (one object per row, fields
// keyed by attribute name) as a re-scannable source. See CSVSource for
// the chunking and immutability contract.
func JSONLSource(path string, attrs []Attribute, chunkRows int) *ScanSource {
	return dataset.JSONLFile(path, attrs, chunkRows)
}

// DatasetSource adapts an in-memory dataset to the scanner interface —
// chunks are zero-copy views — so scanner-path code can be exercised
// (and its bit-identity to Fit verified) without touching disk.
func DatasetSource(ds *Dataset, chunkRows int) *ScanSource {
	return dataset.DatasetSource(ds, chunkRows)
}

// FitScanner learns a PrivBayes model from a chunked source under
// ε-differential privacy without ever materializing the full dataset:
// the out-of-core counterpart of Fit. The source is scanned once up
// front to count rows, once per greedy iteration, and once for the
// distribution phase. For a fixed seed the result is byte-identical to
// Fit over the same rows at every parallelism; the source must not
// change between scans (a changed row count fails the fit).
func FitScanner(ctx context.Context, src *ScanSource, opts ...Option) (*Model, error) {
	opt, err := resolve(opts).toCoreAttrs(src.Attrs)
	if err != nil {
		return nil, err
	}
	p, err := counts.NewProvider(ctx, src, opt.Parallelism)
	if err != nil {
		return nil, err
	}
	return core.FitCountsContext(ctx, src.Attrs, p, opt)
}
