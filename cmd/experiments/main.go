// Command experiments regenerates the paper's evaluation tables and
// figures. Each run prints CSV rows (figure,panel,series,x,value) to
// stdout; progress goes to stderr.
//
// Usage:
//
//	experiments -figure 4                 # Figure 4 with default settings
//	experiments -figure 12 -repeats 10    # more averaging
//	experiments -figure all -n 5000       # quick pass over everything
//	experiments -figure 13 -heavy         # enable MWEM on ACS
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"privbayes/internal/experiment"
)

func main() {
	var (
		figure   = flag.String("figure", "", "figure/table id to run (4..19, table4, table5, or 'all')")
		repeats  = flag.Int("repeats", 3, "runs averaged per point (the paper uses 100)")
		n        = flag.Int("n", 0, "cap dataset cardinality (0 = paper size)")
		seed     = flag.Int64("seed", 42, "base random seed")
		maxK     = flag.Int("maxk", 5, "cap on the binary-mode network degree (0 = uncapped)")
		subsets  = flag.Int("queries", 400, "evaluate at most this many Qα subsets (0 = all)")
		heavy    = flag.Bool("heavy", false, "enable full-domain baselines on ACS (slow)")
		par      = flag.Int("parallelism", 0, "worker pool size per run (0 = all cores, 1 = serial)")
		epsFlag  = flag.String("eps", "", "comma-separated ε grid override")
		listOnly = flag.Bool("list", false, "list runnable experiment ids and exit")
	)
	flag.Parse()

	if *listOnly {
		for _, id := range experiment.Figures() {
			fmt.Println(id)
		}
		return
	}
	if *figure == "" {
		fmt.Fprintln(os.Stderr, "experiments: -figure is required (try -list)")
		os.Exit(2)
	}

	cfg := experiment.DefaultConfig()
	cfg.Repeats = *repeats
	cfg.N = *n
	cfg.Seed = *seed
	cfg.MaxK = *maxK
	cfg.MaxQuerySubsets = *subsets
	cfg.Heavy = *heavy
	cfg.Parallelism = *par
	cfg.Out = os.Stdout
	if *epsFlag != "" {
		for _, tok := range strings.Split(*epsFlag, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: bad -eps value %q: %v\n", tok, err)
				os.Exit(2)
			}
			cfg.Eps = append(cfg.Eps, v)
		}
	}

	ids := []string{*figure}
	if *figure == "all" {
		ids = experiment.Figures()
	}
	fmt.Println("figure,panel,series,x,value")
	for _, id := range ids {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "== running %s ==\n", id)
		if _, err := experiment.Run(id, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "== %s done in %v ==\n", id, time.Since(start))
	}
}
