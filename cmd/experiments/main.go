// Command experiments regenerates the paper's evaluation tables and
// figures. Each run prints CSV rows (figure,panel,series,x,value) to
// stdout; progress goes to stderr.
//
// Usage:
//
//	experiments -figure 4                 # Figure 4 with default settings
//	experiments -figure 12 -repeats 10    # more averaging
//	experiments -figure all -n 5000       # quick pass over everything
//	experiments -figure 13 -heavy         # enable MWEM on ACS
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	"privbayes/internal/cliutil"
	"privbayes/internal/experiment"
	"privbayes/internal/profiling"
)

func main() {
	var (
		figure     = flag.String("figure", "", "figure/table id to run (4..19, table4, table5, or 'all')")
		repeats    = flag.Int("repeats", 3, "runs averaged per point (the paper uses 100)")
		n          = flag.Int("n", 0, "cap dataset cardinality (0 = paper size)")
		seed       = flag.Int64("seed", 42, "base random seed")
		maxK       = flag.Int("maxk", 5, "cap on the binary-mode network degree (0 = uncapped)")
		subsets    = flag.Int("queries", 400, "evaluate at most this many Qα subsets (0 = all)")
		heavy      = flag.Bool("heavy", false, "enable full-domain baselines on ACS (slow)")
		par        = flag.Int("parallelism", 0, "worker pool size per run (0 = all cores, 1 = serial)")
		epsFlag    = flag.String("eps", "", "comma-separated ε grid override")
		listOnly   = flag.Bool("list", false, "list runnable experiment ids and exit")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	cliutil.Parse("experiments", "regenerate the paper's evaluation figures and tables")

	if *listOnly {
		for _, id := range experiment.Figures() {
			fmt.Println(id)
		}
		return
	}
	if *figure == "" {
		fmt.Fprintln(os.Stderr, "experiments: -figure is required (try -list)")
		os.Exit(2)
	}

	// run is wrapped so the profile flush runs on failure exits too — a
	// failing run is exactly when the profiles are wanted.
	stop, err := profiling.Start(*cpuprofile, *memprofile,
		slog.New(slog.NewTextHandler(os.Stderr, nil)).With("prog", "experiments"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	code := run(*figure, *repeats, *n, *seed, *maxK, *subsets, *heavy, *par, *epsFlag)
	stop()
	os.Exit(code)
}

func run(figure string, repeats, n int, seed int64, maxK, subsets int, heavy bool, par int, epsFlag string) int {
	cfg := experiment.DefaultConfig()
	cfg.Repeats = repeats
	cfg.N = n
	cfg.Seed = seed
	cfg.MaxK = maxK
	cfg.MaxQuerySubsets = subsets
	cfg.Heavy = heavy
	cfg.Parallelism = par
	cfg.Out = os.Stdout
	if epsFlag != "" {
		for _, tok := range strings.Split(epsFlag, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: bad -eps value %q: %v\n", tok, err)
				return 2
			}
			cfg.Eps = append(cfg.Eps, v)
		}
	}

	ids := []string{figure}
	if figure == "all" {
		ids = experiment.Figures()
	}
	fmt.Println("figure,panel,series,x,value")
	for _, id := range ids {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "== running %s ==\n", id)
		if _, err := experiment.Run(id, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", id, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "== %s done in %v ==\n", id, time.Since(start))
	}
	return 0
}
