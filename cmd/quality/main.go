// Command quality runs the statistical quality sweep (internal/quality)
// and emits BENCH_quality.json: for every ground-truth scenario and
// every ε in the sweep it reports 2-way/3-way marginal TVD, SVM
// misclassification on a real holdout, and structure recovery against
// the known generative network, then gates the results on calibrated
// per-scenario thresholds.
//
// TVD metrics are computed by exact inference on the released model
// (Model.Query), so they measure model fidelity with no sampling error;
// -sample-tvd restores the empirical-marginal path over the synthetic
// sample.
//
// The sweep is seeded end to end and runs at pinned parallelism, so for
// fixed flags the emitted document is byte-identical across runs and
// machines — CI verifies this by running it twice and comparing.
// -check=false reports without gating. -sabotage deliberately breaks
// the sampler to prove the gate trips.
//
// Exit codes: 0 = gate passed, 1 = threshold violated (the quality
// regression gate), 2 = infrastructure or usage failure — so callers
// (CI's gate self-test) can tell a genuine gate trip from a broken run.
//
// Usage:
//
//	quality [-out BENCH_quality.json] [-scale 1] [-eps 0.1,1,10]
//	        [-check] [-sabotage] [-sample-tvd] [-parallelism 2]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"privbayes/internal/cliutil"
	"privbayes/internal/quality"
)

func main() {
	var (
		out       = flag.String("out", "", "write the JSON report to this file ('' = stdout)")
		scale     = flag.Int("scale", 1, "row-count multiplier (nightly runs use larger values)")
		epsFlag   = flag.String("eps", "", "comma-separated ε sweep override (default 0.1,1,10)")
		check     = flag.Bool("check", true, "exit 1 when any calibrated threshold is violated")
		sabotage  = flag.Bool("sabotage", false, "deliberately break the release (gate self-test; must fail)")
		par       = flag.Int("parallelism", 2, "worker bound; any value other than 1 is bit-identical across machines")
		sampleTVD = flag.Bool("sample-tvd", false, "compute TVD from the synthetic sample's empirical marginals instead of exact model inference")
	)
	cliutil.Parse("quality", "statistical quality sweep and regression gate over ground-truth scenarios")

	opt := quality.DefaultOptions(*scale)
	opt.Parallelism = *par
	opt.BreakSampler = *sabotage
	opt.SampleTVD = *sampleTVD
	if *epsFlag != "" {
		eps, err := parseEps(*epsFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "quality:", err)
			os.Exit(2)
		}
		opt.Eps = eps
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := quality.Run(ctx, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quality:", err)
		os.Exit(2) // infrastructure failure, distinct from a gate trip
	}

	var buf strings.Builder
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "quality:", err)
		os.Exit(2)
	}
	if *out == "" {
		fmt.Print(buf.String())
	} else if err := os.WriteFile(*out, []byte(buf.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "quality:", err)
		os.Exit(2)
	}

	for _, r := range rep.Results {
		status := "ok"
		if len(r.Failures) > 0 {
			status = "FAIL: " + strings.Join(r.Failures, "; ")
		}
		fmt.Fprintf(os.Stderr,
			"%-14s ε=%-5g tvd2=%.4f tvd3=%.4f svm=%.4f (real %.4f) edgeF1=%.2f  %s\n",
			r.Scenario, r.Epsilon, r.TVD2, r.TVD3, r.SVMError, r.SVMRealError, r.Structure.F1, status)
	}
	if *check {
		gated := 0
		for _, r := range rep.Results {
			if r.Gated {
				gated++
			}
		}
		if gated == 0 {
			// Every cell passed by omission (e.g. a custom -eps with no
			// calibrated row): that is a broken gate invocation, not a
			// pass.
			fmt.Fprintln(os.Stderr, "quality: -check is on but no calibrated threshold matched any (scenario, ε) cell; use -check=false for ungated sweeps")
			os.Exit(2)
		}
		if !rep.Pass {
			fmt.Fprintln(os.Stderr, "quality: gate FAILED — synthetic-data fidelity regressed past calibrated thresholds")
			os.Exit(1)
		}
	}
}

func parseEps(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	eps := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("invalid ε %q in -eps", p)
		}
		eps = append(eps, v)
	}
	return eps, nil
}
