// Command apicheck is the repository's API-compatibility gate: it
// extracts the exported surface of a Go package — every exported
// function, method, type (with unexported struct fields elided),
// constant and variable, one normalized line each — and compares it
// against a checked-in golden file.
//
// CI runs `apicheck -dir . -golden api/privbayes.txt`; any change to
// the facade's exported surface fails the build until the golden file
// is regenerated (`apicheck -write ...`) and committed alongside the
// change. The golden diff in the commit IS the declaration of the API
// change — additions and breaking changes alike are reviewable line by
// line, and nothing can slip through undeclared.
//
// Only the standard library is used (go/parser, go/printer), so the
// gate runs anywhere the toolchain does.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"regexp"
	"sort"
	"strings"
)

func main() {
	var (
		dir    = flag.String("dir", ".", "package directory to extract")
		golden = flag.String("golden", "", "golden surface file to compare against (required)")
		write  = flag.Bool("write", false, "regenerate the golden file instead of comparing")
	)
	flag.Parse()
	if *golden == "" {
		fmt.Fprintln(os.Stderr, "apicheck: -golden is required")
		os.Exit(2)
	}
	surface, err := extract(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apicheck:", err)
		os.Exit(1)
	}
	if *write {
		if err := os.WriteFile(*golden, []byte(surface), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "apicheck:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "apicheck: wrote %s\n", *golden)
		return
	}
	want, err := os.ReadFile(*golden)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apicheck:", err)
		os.Exit(1)
	}
	if string(want) == surface {
		fmt.Fprintf(os.Stderr, "apicheck: %s surface matches %s\n", *dir, *golden)
		return
	}
	fmt.Fprintf(os.Stderr, "apicheck: exported API surface of %s differs from %s\n", *dir, *golden)
	fmt.Fprintf(os.Stderr, "apicheck: if the change is intentional, declare it: go run ./cmd/apicheck -dir %s -golden %s -write\n\n", *dir, *golden)
	printDiff(os.Stderr, strings.Split(strings.TrimSuffix(string(want), "\n"), "\n"),
		strings.Split(strings.TrimSuffix(surface, "\n"), "\n"))
	os.Exit(1)
}

// printDiff reports lines present on only one side (set diff — enough
// to review a surface change; ordering churn cannot happen because
// extract sorts).
func printDiff(w *os.File, want, got []string) {
	wantSet := map[string]bool{}
	for _, l := range want {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range got {
		gotSet[l] = true
	}
	for _, l := range want {
		if !gotSet[l] {
			fmt.Fprintf(w, "- %s\n", l)
		}
	}
	for _, l := range got {
		if !wantSet[l] {
			fmt.Fprintf(w, "+ %s\n", l)
		}
	}
}

var spaces = regexp.MustCompile(`\s+`)

// extract renders the package's exported surface as sorted, normalized
// lines.
func extract(dir string) (string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return "", err
	}
	var lines []string
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") || name == "main" {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				lines = append(lines, declLines(fset, decl)...)
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n", nil
}

// declLines renders one top-level declaration's exported parts.
func declLines(fset *token.FileSet, decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !receiverExported(d) {
			return nil
		}
		fn := *d
		fn.Body = nil
		fn.Doc = nil
		return []string{render(fset, &fn)}
	case *ast.GenDecl:
		var lines []string
		for specIdx, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				ts := *s
				ts.Doc, ts.Comment = nil, nil
				ts.Type = elideUnexported(s.Type)
				lines = append(lines, "type "+render(fset, &ts))
			case *ast.ValueSpec:
				// Render one line per exported name so mixed spec lists
				// stay reviewable; values are included because constant
				// values (enum order!) are part of the contract. Specs
				// with implicit values carry their iota ordinal, so
				// silently reordering an enum block still changes the
				// surface.
				for i, name := range s.Names {
					if !name.IsExported() {
						continue
					}
					vs := &ast.ValueSpec{Names: []*ast.Ident{name}, Type: s.Type}
					line := ""
					if i < len(s.Values) {
						vs.Values = []ast.Expr{s.Values[i]}
					} else if d.Tok == token.CONST {
						line = fmt.Sprintf(" (iota=%d)", specIdx)
					}
					lines = append(lines, keyword(d.Tok)+" "+render(fset, vs)+line)
				}
			}
		}
		return lines
	default:
		return nil
	}
}

func keyword(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

// receiverExported reports whether a method's receiver type is
// exported (methods on unexported types are not public surface).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// elideUnexported strips unexported fields from struct types (they are
// not part of the public surface and would churn the golden file).
func elideUnexported(t ast.Expr) ast.Expr {
	st, ok := t.(*ast.StructType)
	if !ok {
		return t
	}
	out := &ast.StructType{Fields: &ast.FieldList{}}
	for _, f := range st.Fields.List {
		var names []*ast.Ident
		for _, n := range f.Names {
			if n.IsExported() {
				names = append(names, n)
			}
		}
		if len(f.Names) > 0 && len(names) == 0 {
			continue
		}
		nf := *f
		nf.Doc, nf.Comment = nil, nil
		nf.Names = names
		out.Fields.List = append(out.Fields.List, &nf)
	}
	return out
}

// render prints a node on one whitespace-normalized line, so gofmt
// styling never churns the golden file.
func render(fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.RawFormat}
	if err := cfg.Fprint(&buf, fset, node); err != nil {
		return fmt.Sprintf("<render error: %v>", err)
	}
	return spaces.ReplaceAllString(strings.TrimSpace(buf.String()), " ")
}
