// Crash-loop harness: kill -9 the real privbayesd binary at points
// spread across a curator fit's lifetime, restart it over the same
// state directory, and verify the privacy ledger's crash-safety
// contract at every point:
//
//   - no committed ε charge is ever lost (a fit the client saw
//     acknowledged stays spent after the crash);
//   - no charge is ever double-spent (retrying the interrupted fit with
//     its Idempotency-Key leaves the dataset at exactly one charge);
//   - the daemon always restarts cleanly — torn WAL tails from the kill
//     are recovered, never fatal — and always ends with exactly one
//     serving model.
//
// The sweep is real-process fault injection (SIGKILL, no cooperation
// from the victim), complementing the deterministic faultfs sweeps in
// internal/wal and internal/accountant which cover every filesystem
// operation in simulation. It is tier-2: opt in with
// PRIVBAYES_CRASHSAFETY=1 (CI runs it as the crashsafety job via
// `make crashsafety`). Set PRIVBAYES_CRASHSAFETY_DIR to keep each
// iteration's state directory for post-mortem upload.
package main

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"privbayes/internal/dataset"
	"privbayes/internal/server"
)

// crashPoints is the number of kill points in the sweep; the issue
// contract demands at least 20.
const crashPoints = 24

// launchDaemon starts the binary and hands back the process so the
// harness can SIGKILL it mid-request (unlike startDaemon's managed
// lifecycle).
func launchDaemon(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	listen := regexp.MustCompile(`listening on (\S+)`)
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := listen.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not announce its listen address")
		return nil, ""
	}
}

// kill9 delivers SIGKILL and reaps the process — the crash the WAL
// exists for: no shutdown hook, no flush, no goodbye.
func kill9(cmd *exec.Cmd) {
	cmd.Process.Kill()
	cmd.Wait()
}

// crashFitCSV is the fit payload: large enough that the fit spans a
// measurable window for kills to land in.
func crashFitCSV(t *testing.T, attrs []dataset.Attribute) []byte {
	t.Helper()
	const rows = 30_000
	ds := dataset.NewWithCapacity(attrs, rows)
	rec := make([]uint16, len(attrs))
	for i := 0; i < rows; i++ {
		for c := range rec {
			rec[c] = uint16((i*(c+3) + c*i/7 + i/11) % 2)
		}
		ds.Append(rec)
	}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCrashLoopLedgerNeverLosesOrDoubleSpends(t *testing.T) {
	if os.Getenv("PRIVBAYES_CRASHSAFETY") == "" {
		t.Skip("tier-2 crash-loop harness; set PRIVBAYES_CRASHSAFETY=1 (or run `make crashsafety`)")
	}
	bin := buildBinary(t)
	const eps = 0.7

	attrs := make([]dataset.Attribute, 10)
	for i := range attrs {
		attrs[i] = dataset.NewCategorical(fmt.Sprintf("a%d", i), []string{"0", "1"})
	}
	raw := crashFitCSV(t, attrs)
	schema := server.SpecsFromAttrs(attrs)
	seed := int64(5)

	// workdir returns the state directory for one iteration — kept for
	// post-mortem when PRIVBAYES_CRASHSAFETY_DIR is set.
	workdir := func(t *testing.T, point int) string {
		if root := os.Getenv("PRIVBAYES_CRASHSAFETY_DIR"); root != "" {
			dir := filepath.Join(root, fmt.Sprintf("point-%02d", point))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			return dir
		}
		return t.TempDir()
	}
	daemonArgs := func(dir string) []string {
		return []string{
			"-models-dir", filepath.Join(dir, "models"),
			"-ledger", filepath.Join(dir, "ledger.wal"),
			"-budget", "1.0",
		}
	}
	fit := func(ctx context.Context, base, key string) (server.ModelMeta, error) {
		c := server.NewClient(base)
		return c.Fit(ctx, server.FitRequest{
			DatasetID: "survey", Epsilon: eps, Seed: &seed,
			Schema: schema, Data: bytes.NewReader(raw),
			IdempotencyKey: key,
		})
	}

	// Calibrate: one uninterrupted fit sizes the kill window. The sweep
	// then spreads kill delays from 0 (before the request lands) to past
	// the fit's end (after the response), so every phase — parsing,
	// charge, fit, persist, respond — catches some kills.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Minute)
	defer cancel()
	calDir := workdir(t, 0)
	calCmd, calBase := launchDaemon(t, bin, daemonArgs(calDir)...)
	start := time.Now()
	if _, err := fit(ctx, calBase, "calibration"); err != nil {
		t.Fatalf("calibration fit: %v", err)
	}
	fitDur := time.Since(start)
	kill9(calCmd)
	t.Logf("calibration fit took %v; sweeping %d kill points", fitDur, crashPoints)

	for point := 1; point <= crashPoints; point++ {
		t.Run(fmt.Sprintf("kill-point-%02d", point), func(t *testing.T) {
			dir := workdir(t, point)
			cmd, base := launchDaemon(t, bin, daemonArgs(dir)...)

			// Fire the fit and kill -9 partway through it. The client
			// error (connection reset, EOF) is the ambiguous failure the
			// retry contract exists for — ignored here.
			fitDone := make(chan error, 1)
			go func() {
				_, err := fit(ctx, base, "crash-fit")
				fitDone <- err
			}()
			delay := time.Duration(int64(point-1) * int64(fitDur) * 12 / (10 * int64(crashPoints-1)))
			time.Sleep(delay)
			kill9(cmd)
			firstErr := <-fitDone

			// Restart over the crashed state. Startup must succeed: a
			// torn WAL tail from the kill is recoverable damage, not
			// corruption.
			cmd2, base2 := launchDaemon(t, bin, daemonArgs(dir)...)
			defer kill9(cmd2)
			c2 := server.NewClient(base2)

			// Invariant 1: the recovered spend is exactly 0 (charge never
			// made durable) or exactly eps (charge committed) — anything
			// else is lost or manufactured ε.
			budget, err := c2.Budget(ctx)
			if err != nil {
				t.Fatalf("budget after restart: %v", err)
			}
			spent := budget["survey"].Spent
			if !(spent == 0 || math.Abs(spent-eps) < 1e-9) {
				t.Fatalf("recovered spend %g, want exactly 0 or %g (first attempt err: %v)", spent, eps, firstErr)
			}
			// A successful first response means the charge MUST have
			// survived (durability of acknowledged writes).
			if firstErr == nil && spent == 0 {
				t.Fatalf("acknowledged fit lost its charge after kill -9")
			}

			// Invariant 2: retrying with the same Idempotency-Key
			// completes the fit with exactly one charge total.
			meta, err := fit(ctx, base2, "crash-fit")
			if err != nil {
				t.Fatalf("idempotent retry after crash: %v", err)
			}
			budget, err = c2.Budget(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if spent := budget["survey"].Spent; math.Abs(spent-eps) > 1e-9 {
				t.Fatalf("spend after idempotent retry = %g, want exactly %g", spent, eps)
			}

			// Invariant 3: exactly one model serves, and it works.
			models, err := c2.Models(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(models) != 1 || models[0].ID != meta.ID {
				t.Fatalf("models after retry = %+v, want exactly [%s]", models, meta.ID)
			}
			stream, err := c2.Synthesize(ctx, meta.ID, server.SynthesizeRequest{N: 50, Seed: &seed})
			if err != nil {
				t.Fatalf("synthesize from recovered model: %v", err)
			}
			sc := bufio.NewScanner(stream.Body)
			lines := 0
			for sc.Scan() {
				lines++
			}
			stream.Close()
			if lines != 51 { // header + 50 rows
				t.Fatalf("recovered model streamed %d lines, want 51", lines)
			}

			// A third restart proves the post-retry state is itself
			// durable (the retry's own WAL writes were fsynced).
			kill9(cmd2)
			_, base3 := launchDaemon(t, bin, daemonArgs(dir)...)
			c3 := server.NewClient(base3)
			budget, err = c3.Budget(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if spent := budget["survey"].Spent; math.Abs(spent-eps) > 1e-9 {
				t.Fatalf("spend after final restart = %g, want %g", spent, eps)
			}
			if strings.Contains(meta.ID, "/") {
				t.Fatalf("unsafe model id %q", meta.ID)
			}
		})
	}
}

// curatorBatchJSONL renders rows [lo, lo+n) of the deterministic crash
// corpus as a JSONL append payload over binary attributes.
func curatorBatchJSONL(attrs []dataset.Attribute, lo, n int) []byte {
	var buf bytes.Buffer
	for i := lo; i < lo+n; i++ {
		buf.WriteByte('{')
		for c := range attrs {
			if c > 0 {
				buf.WriteByte(',')
			}
			fmt.Fprintf(&buf, "%q:\"%d\"", attrs[c].Name, (i*(c+3)+c*i/7+i/11)%2)
		}
		buf.WriteString("}\n")
	}
	return buf.Bytes()
}

// TestCrashLoopCuratorIngestAndRefit sweeps kill -9 across the whole
// continuous-curation lifecycle — dataset create, a sequence of
// POST /datasets/{id}/rows appends, and the automatic budget-metered
// refit the final append triggers — and checks the curator's
// crash-safety contract at every point:
//
//   - acknowledged appends survive the crash (the recovered row count is
//     at least the last TotalRows the client saw acknowledged);
//   - unacknowledged appends never double-ingest: replaying every batch
//     key after restart lands on exactly the full corpus, never more;
//   - the refit's ε spend is exactly 0 or exactly ε at every crash
//     point — a kill between the ledger charge and the model publish
//     can neither lose the charge nor charge again on recovery;
//   - recovery converges: after restart (plus idempotent replays) the
//     dataset republishes its refit model and serves synthesis from it.
func TestCrashLoopCuratorIngestAndRefit(t *testing.T) {
	if os.Getenv("PRIVBAYES_CRASHSAFETY") == "" {
		t.Skip("tier-2 crash-loop harness; set PRIVBAYES_CRASHSAFETY=1 (or run `make crashsafety`)")
	}
	bin := buildBinary(t)
	const (
		eps         = 0.4
		batchRows   = 500
		batches     = 4
		totalRows   = batchRows * batches
		curatorKill = 16 // kill points swept across the lifecycle
	)

	attrs := make([]dataset.Attribute, 10)
	for i := range attrs {
		attrs[i] = dataset.NewCategorical(fmt.Sprintf("a%d", i), []string{"0", "1"})
	}
	schema := server.SpecsFromAttrs(attrs)
	payload := make([][]byte, batches)
	for b := range payload {
		payload[b] = curatorBatchJSONL(attrs, b*batchRows, batchRows)
	}
	wantModel := fmt.Sprintf("survey-refit-%d", totalRows)

	workdir := func(t *testing.T, point int) string {
		if root := os.Getenv("PRIVBAYES_CRASHSAFETY_DIR"); root != "" {
			dir := filepath.Join(root, fmt.Sprintf("curator-point-%02d", point))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			return dir
		}
		return t.TempDir()
	}
	daemonArgs := func(dir string) []string {
		return []string{
			"-models-dir", filepath.Join(dir, "models"),
			"-ledger", filepath.Join(dir, "ledger.wal"),
			"-curator-dir", filepath.Join(dir, "curator"),
			"-budget", "1.0",
			"-refit-epsilon", fmt.Sprintf("%g", eps),
			"-refit-rows", fmt.Sprintf("%d", totalRows),
		}
	}
	// ingest drives the full client side of the lifecycle; acked tracks
	// the highest TotalRows the server has acknowledged, the durability
	// watermark the crash must not roll back.
	ingest := func(ctx context.Context, base string, acked *int64) error {
		c := server.NewClient(base)
		if _, err := c.CreateDataset(ctx, "survey", schema); err != nil {
			var ae *server.APIError
			if !(errors.As(err, &ae) && ae.StatusCode == 409) {
				return err
			}
		}
		for b := 0; b < batches; b++ {
			res, err := c.AppendRows(ctx, "survey",
				fmt.Sprintf("batch-%02d", b), bytes.NewReader(payload[b]))
			if err != nil {
				return err
			}
			if acked != nil && res.TotalRows > *acked {
				*acked = res.TotalRows
			}
		}
		return nil
	}
	waitModel := func(ctx context.Context, c *server.Client) (server.ModelMeta, error) {
		deadline := time.Now().Add(2 * time.Minute)
		for time.Now().Before(deadline) {
			st, err := c.DatasetStatus(ctx, "survey")
			if err != nil {
				return server.ModelMeta{}, err
			}
			if st.ModelID == wantModel && !st.Refitting {
				return c.Model(ctx, wantModel)
			}
			time.Sleep(20 * time.Millisecond)
		}
		return server.ModelMeta{}, fmt.Errorf("timed out waiting for %s", wantModel)
	}

	// Calibrate an uninterrupted run: ingest + triggered refit to
	// publish. The sweep spreads kills over 1.2x that window so early
	// points land in appends and late points land mid-refit.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Minute)
	defer cancel()
	calDir := workdir(t, 0)
	calCmd, calBase := launchDaemon(t, bin, daemonArgs(calDir)...)
	start := time.Now()
	if err := ingest(ctx, calBase, nil); err != nil {
		t.Fatalf("calibration ingest: %v", err)
	}
	if _, err := waitModel(ctx, server.NewClient(calBase)); err != nil {
		t.Fatalf("calibration refit: %v", err)
	}
	lifecycle := time.Since(start)
	kill9(calCmd)
	t.Logf("calibration lifecycle took %v; sweeping %d kill points", lifecycle, curatorKill)

	for point := 1; point <= curatorKill; point++ {
		t.Run(fmt.Sprintf("curator-kill-point-%02d", point), func(t *testing.T) {
			dir := workdir(t, point)
			cmd, base := launchDaemon(t, bin, daemonArgs(dir)...)

			var acked int64
			ingestDone := make(chan error, 1)
			go func() { ingestDone <- ingest(ctx, base, &acked) }()
			delay := time.Duration(int64(point-1) * int64(lifecycle) * 12 / (10 * int64(curatorKill-1)))
			time.Sleep(delay)
			kill9(cmd)
			firstErr := <-ingestDone

			// Restart over the crashed state: torn row-log and ledger
			// tails must recover, never refuse startup.
			cmd2, base2 := launchDaemon(t, bin, daemonArgs(dir)...)
			defer kill9(cmd2)
			c2 := server.NewClient(base2)

			// Invariant 1: every acknowledged append survived, and the
			// log never holds more than the corpus.
			st, err := c2.DatasetStatus(ctx, "survey")
			if err != nil {
				var ae *server.APIError
				if !(errors.As(err, &ae) && ae.StatusCode == 404 && acked == 0) {
					t.Fatalf("status after restart: %v (acked=%d)", err, acked)
				}
			} else {
				if st.Rows < acked {
					t.Fatalf("recovered %d rows < %d acknowledged (first err: %v)", st.Rows, acked, firstErr)
				}
				if st.Rows > totalRows {
					t.Fatalf("recovered %d rows > %d ever sent", st.Rows, totalRows)
				}
			}

			// Invariant 2: the refit charge is exactly 0 or exactly ε.
			budget, err := c2.Budget(ctx)
			if err != nil {
				t.Fatalf("budget after restart: %v", err)
			}
			if spent := budget["survey"].Spent; !(spent == 0 || math.Abs(spent-eps) < 1e-9) {
				t.Fatalf("recovered spend %g, want exactly 0 or %g", spent, eps)
			}

			// Invariant 3: idempotent replays converge on exactly the
			// corpus — no batch ingests twice.
			if err := ingest(ctx, base2, nil); err != nil {
				t.Fatalf("idempotent replay after crash: %v", err)
			}
			st, err = c2.DatasetStatus(ctx, "survey")
			if err != nil {
				t.Fatal(err)
			}
			if st.Rows != totalRows {
				t.Fatalf("rows after replay = %d, want exactly %d", st.Rows, totalRows)
			}

			// Invariant 4: recovery republishes the refit model with
			// exactly one ε charge, and it serves.
			meta, err := waitModel(ctx, c2)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(meta.Epsilon-eps) > 1e-9 {
				t.Fatalf("refit model ε = %g, want %g", meta.Epsilon, eps)
			}
			budget, err = c2.Budget(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if spent := budget["survey"].Spent; math.Abs(spent-eps) > 1e-9 {
				t.Fatalf("spend after recovery = %g, want exactly %g", spent, eps)
			}
			seed := int64(9)
			stream, err := c2.Synthesize(ctx, wantModel, server.SynthesizeRequest{N: 50, Seed: &seed})
			if err != nil {
				t.Fatalf("synthesize from recovered refit: %v", err)
			}
			sc := bufio.NewScanner(stream.Body)
			lines := 0
			for sc.Scan() {
				lines++
			}
			stream.Close()
			if lines != 51 {
				t.Fatalf("recovered refit streamed %d lines, want 51", lines)
			}

			// A third restart proves the recovered state is durable.
			kill9(cmd2)
			_, base3 := launchDaemon(t, bin, daemonArgs(dir)...)
			c3 := server.NewClient(base3)
			st, err = c3.DatasetStatus(ctx, "survey")
			if err != nil {
				t.Fatal(err)
			}
			if st.Rows != totalRows || st.ModelID != wantModel {
				t.Fatalf("final restart status = %+v", st)
			}
			budget, err = c3.Budget(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if spent := budget["survey"].Spent; math.Abs(spent-eps) > 1e-9 {
				t.Fatalf("spend after final restart = %g, want %g", spent, eps)
			}
		})
	}
}
