// Crash-loop harness: kill -9 the real privbayesd binary at points
// spread across a curator fit's lifetime, restart it over the same
// state directory, and verify the privacy ledger's crash-safety
// contract at every point:
//
//   - no committed ε charge is ever lost (a fit the client saw
//     acknowledged stays spent after the crash);
//   - no charge is ever double-spent (retrying the interrupted fit with
//     its Idempotency-Key leaves the dataset at exactly one charge);
//   - the daemon always restarts cleanly — torn WAL tails from the kill
//     are recovered, never fatal — and always ends with exactly one
//     serving model.
//
// The sweep is real-process fault injection (SIGKILL, no cooperation
// from the victim), complementing the deterministic faultfs sweeps in
// internal/wal and internal/accountant which cover every filesystem
// operation in simulation. It is tier-2: opt in with
// PRIVBAYES_CRASHSAFETY=1 (CI runs it as the crashsafety job via
// `make crashsafety`). Set PRIVBAYES_CRASHSAFETY_DIR to keep each
// iteration's state directory for post-mortem upload.
package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"privbayes/internal/dataset"
	"privbayes/internal/server"
)

// crashPoints is the number of kill points in the sweep; the issue
// contract demands at least 20.
const crashPoints = 24

// launchDaemon starts the binary and hands back the process so the
// harness can SIGKILL it mid-request (unlike startDaemon's managed
// lifecycle).
func launchDaemon(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	listen := regexp.MustCompile(`listening on (\S+)`)
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := listen.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not announce its listen address")
		return nil, ""
	}
}

// kill9 delivers SIGKILL and reaps the process — the crash the WAL
// exists for: no shutdown hook, no flush, no goodbye.
func kill9(cmd *exec.Cmd) {
	cmd.Process.Kill()
	cmd.Wait()
}

// crashFitCSV is the fit payload: large enough that the fit spans a
// measurable window for kills to land in.
func crashFitCSV(t *testing.T, attrs []dataset.Attribute) []byte {
	t.Helper()
	const rows = 30_000
	ds := dataset.NewWithCapacity(attrs, rows)
	rec := make([]uint16, len(attrs))
	for i := 0; i < rows; i++ {
		for c := range rec {
			rec[c] = uint16((i*(c+3) + c*i/7 + i/11) % 2)
		}
		ds.Append(rec)
	}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCrashLoopLedgerNeverLosesOrDoubleSpends(t *testing.T) {
	if os.Getenv("PRIVBAYES_CRASHSAFETY") == "" {
		t.Skip("tier-2 crash-loop harness; set PRIVBAYES_CRASHSAFETY=1 (or run `make crashsafety`)")
	}
	bin := buildBinary(t)
	const eps = 0.7

	attrs := make([]dataset.Attribute, 10)
	for i := range attrs {
		attrs[i] = dataset.NewCategorical(fmt.Sprintf("a%d", i), []string{"0", "1"})
	}
	raw := crashFitCSV(t, attrs)
	schema := server.SpecsFromAttrs(attrs)
	seed := int64(5)

	// workdir returns the state directory for one iteration — kept for
	// post-mortem when PRIVBAYES_CRASHSAFETY_DIR is set.
	workdir := func(t *testing.T, point int) string {
		if root := os.Getenv("PRIVBAYES_CRASHSAFETY_DIR"); root != "" {
			dir := filepath.Join(root, fmt.Sprintf("point-%02d", point))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			return dir
		}
		return t.TempDir()
	}
	daemonArgs := func(dir string) []string {
		return []string{
			"-models-dir", filepath.Join(dir, "models"),
			"-ledger", filepath.Join(dir, "ledger.wal"),
			"-budget", "1.0",
		}
	}
	fit := func(ctx context.Context, base, key string) (server.ModelMeta, error) {
		c := server.NewClient(base)
		return c.Fit(ctx, server.FitRequest{
			DatasetID: "survey", Epsilon: eps, Seed: &seed,
			Schema: schema, Data: bytes.NewReader(raw),
			IdempotencyKey: key,
		})
	}

	// Calibrate: one uninterrupted fit sizes the kill window. The sweep
	// then spreads kill delays from 0 (before the request lands) to past
	// the fit's end (after the response), so every phase — parsing,
	// charge, fit, persist, respond — catches some kills.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Minute)
	defer cancel()
	calDir := workdir(t, 0)
	calCmd, calBase := launchDaemon(t, bin, daemonArgs(calDir)...)
	start := time.Now()
	if _, err := fit(ctx, calBase, "calibration"); err != nil {
		t.Fatalf("calibration fit: %v", err)
	}
	fitDur := time.Since(start)
	kill9(calCmd)
	t.Logf("calibration fit took %v; sweeping %d kill points", fitDur, crashPoints)

	for point := 1; point <= crashPoints; point++ {
		t.Run(fmt.Sprintf("kill-point-%02d", point), func(t *testing.T) {
			dir := workdir(t, point)
			cmd, base := launchDaemon(t, bin, daemonArgs(dir)...)

			// Fire the fit and kill -9 partway through it. The client
			// error (connection reset, EOF) is the ambiguous failure the
			// retry contract exists for — ignored here.
			fitDone := make(chan error, 1)
			go func() {
				_, err := fit(ctx, base, "crash-fit")
				fitDone <- err
			}()
			delay := time.Duration(int64(point-1) * int64(fitDur) * 12 / (10 * int64(crashPoints-1)))
			time.Sleep(delay)
			kill9(cmd)
			firstErr := <-fitDone

			// Restart over the crashed state. Startup must succeed: a
			// torn WAL tail from the kill is recoverable damage, not
			// corruption.
			cmd2, base2 := launchDaemon(t, bin, daemonArgs(dir)...)
			defer kill9(cmd2)
			c2 := server.NewClient(base2)

			// Invariant 1: the recovered spend is exactly 0 (charge never
			// made durable) or exactly eps (charge committed) — anything
			// else is lost or manufactured ε.
			budget, err := c2.Budget(ctx)
			if err != nil {
				t.Fatalf("budget after restart: %v", err)
			}
			spent := budget["survey"].Spent
			if !(spent == 0 || math.Abs(spent-eps) < 1e-9) {
				t.Fatalf("recovered spend %g, want exactly 0 or %g (first attempt err: %v)", spent, eps, firstErr)
			}
			// A successful first response means the charge MUST have
			// survived (durability of acknowledged writes).
			if firstErr == nil && spent == 0 {
				t.Fatalf("acknowledged fit lost its charge after kill -9")
			}

			// Invariant 2: retrying with the same Idempotency-Key
			// completes the fit with exactly one charge total.
			meta, err := fit(ctx, base2, "crash-fit")
			if err != nil {
				t.Fatalf("idempotent retry after crash: %v", err)
			}
			budget, err = c2.Budget(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if spent := budget["survey"].Spent; math.Abs(spent-eps) > 1e-9 {
				t.Fatalf("spend after idempotent retry = %g, want exactly %g", spent, eps)
			}

			// Invariant 3: exactly one model serves, and it works.
			models, err := c2.Models(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(models) != 1 || models[0].ID != meta.ID {
				t.Fatalf("models after retry = %+v, want exactly [%s]", models, meta.ID)
			}
			stream, err := c2.Synthesize(ctx, meta.ID, server.SynthesizeRequest{N: 50, Seed: &seed})
			if err != nil {
				t.Fatalf("synthesize from recovered model: %v", err)
			}
			sc := bufio.NewScanner(stream.Body)
			lines := 0
			for sc.Scan() {
				lines++
			}
			stream.Close()
			if lines != 51 { // header + 50 rows
				t.Fatalf("recovered model streamed %d lines, want 51", lines)
			}

			// A third restart proves the post-retry state is itself
			// durable (the retry's own WAL writes were fsynced).
			kill9(cmd2)
			_, base3 := launchDaemon(t, bin, daemonArgs(dir)...)
			c3 := server.NewClient(base3)
			budget, err = c3.Budget(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if spent := budget["survey"].Spent; math.Abs(spent-eps) > 1e-9 {
				t.Fatalf("spend after final restart = %g, want %g", spent, eps)
			}
			if strings.Contains(meta.ID, "/") {
				t.Fatalf("unsafe model id %q", meta.ID)
			}
		})
	}
}
