// End-to-end test of the real privbayesd binary: build it, start it on
// a random port, and drive the full serving lifecycle over the wire —
// curator fit, 100k-row streaming synthesis read with bounded memory, a
// marginal query, and a privacy-budget rejection. CI runs this through
// `go test ./...` (and under -race via make race).
package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"privbayes/internal/cliutil"
	"privbayes/internal/dataset"
	"privbayes/internal/server"
)

// buildBinary compiles privbayesd into a temp dir once per test run.
func buildBinary(t *testing.T) string {
	t.Helper()
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	bin := filepath.Join(t.TempDir(), "privbayesd")
	cmd := exec.Command(goTool, "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches the binary on a random port and returns its base
// URL once the listen line appears on stderr.
func startDaemon(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	listen := regexp.MustCompile(`listening on (\S+)`)
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := listen.FindStringSubmatch(sc.Text()); m != nil {
				addrCh <- m[1]
			}
			// Drain so the daemon never blocks on a full stderr pipe.
		}
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not announce its listen address")
		return ""
	}
}

// curatorCSV builds the upload: a small correlated dataset.
func curatorCSV(t *testing.T, attrs []dataset.Attribute, n int) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(4))
	ds := dataset.NewWithCapacity(attrs, n)
	rec := make([]uint16, len(attrs))
	for i := 0; i < n; i++ {
		rec[0] = uint16(rng.Intn(3))
		rec[1] = uint16(rng.Intn(8))
		if rec[1] > 3 {
			rec[2] = 1
		} else {
			rec[2] = uint16(rng.Intn(2))
		}
		ds.Append(rec)
	}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestPrivbayesdEndToEnd(t *testing.T) {
	bin := buildBinary(t)
	work := t.TempDir()
	base := startDaemon(t, bin,
		"-models-dir", filepath.Join(work, "models"),
		"-ledger", filepath.Join(work, "ledger.json"),
		"-budget", "1.0",
	)
	c := server.NewClient(base)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}

	attrs := []dataset.Attribute{
		dataset.NewCategorical("color", []string{"red", "green", "blue"}),
		dataset.NewContinuous("age", 0, 80, 8),
		dataset.NewCategorical("employed", []string{"no", "yes"}),
	}
	raw := curatorCSV(t, attrs, 3000)
	seed := int64(17)

	// Curator fit under the dataset's ε budget.
	meta, err := c.Fit(ctx, server.FitRequest{
		DatasetID: "survey", Epsilon: 0.7, ModelID: "survey-v1", Seed: &seed,
		Schema: server.SpecsFromAttrs(attrs), Data: bytes.NewReader(raw),
	})
	if err != nil {
		t.Fatal(err)
	}
	if meta.ID != "survey-v1" || len(meta.Attrs) != 3 {
		t.Fatalf("fit meta = %+v", meta)
	}

	// Stream 100k synthetic rows; count them line by line so the test
	// itself holds only one row at a time — mirroring how a real client
	// consumes the bounded-memory stream.
	const wantRows = 100_000
	stream, err := c.Synthesize(ctx, "survey-v1", server.SynthesizeRequest{N: wantRows, Seed: &seed})
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stream.Body)
	if !sc.Scan() {
		t.Fatal("empty synthesis stream")
	}
	if got := sc.Text(); got != "color,age,employed" {
		t.Fatalf("header = %q", got)
	}
	rows := 0
	for sc.Scan() {
		line := sc.Text()
		if rows == 0 && strings.Count(line, ",") != 2 {
			t.Fatalf("first row %q does not match schema", line)
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	stream.Close()
	if rows != wantRows {
		t.Fatalf("streamed %d rows, want %d", rows, wantRows)
	}

	// Marginal inference over the wire.
	marg, err := c.Marginal(ctx, "survey-v1", []string{"age", "employed"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(marg.P) != 16 {
		t.Fatalf("marginal has %d cells, want 16", len(marg.P))
	}
	var sum float64
	for _, p := range marg.P {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("marginal sums to %g", sum)
	}

	// A second fit on the same dataset would take the ledger to 1.4 >
	// 1.0: the daemon must refuse it and leave the ledger untouched.
	_, err = c.Fit(ctx, server.FitRequest{
		DatasetID: "survey", Epsilon: 0.7,
		Schema: server.SpecsFromAttrs(attrs), Data: bytes.NewReader(raw),
	})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("over-budget fit: %v", err)
	}
	budget, err := c.Budget(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if e := budget["survey"]; math.Abs(e.Spent-0.7) > 1e-12 || e.Budget != 1.0 {
		t.Errorf("ledger after rejection = %+v", e)
	}
}

// TestPrivbayesdRestartKeepsLedgerAndModels restarts the daemon over
// the same models dir + ledger file: the fitted model must still serve
// and the ε spend must still bind.
func TestPrivbayesdRestartKeepsLedgerAndModels(t *testing.T) {
	bin := buildBinary(t)
	work := t.TempDir()
	modelsDir := filepath.Join(work, "models")
	ledgerPath := filepath.Join(work, "ledger.json")
	args := []string{"-models-dir", modelsDir, "-ledger", ledgerPath, "-budget", "1.0"}

	attrs := []dataset.Attribute{
		dataset.NewCategorical("flag", []string{"no", "yes"}),
		dataset.NewContinuous("x", 0, 1, 4),
	}
	raw := curatorCSV2(t, attrs, 1500)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	base := startDaemon(t, bin, args...)
	c := server.NewClient(base)
	seed := int64(2)
	if _, err := c.Fit(ctx, server.FitRequest{
		DatasetID: "d", Epsilon: 0.8, ModelID: "d-v1", Seed: &seed,
		Schema: server.SpecsFromAttrs(attrs), Data: bytes.NewReader(raw),
	}); err != nil {
		t.Fatal(err)
	}

	base2 := startDaemon(t, bin, args...)
	c2 := server.NewClient(base2)
	models, err := c2.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || models[0].ID != "d-v1" {
		t.Fatalf("restarted daemon models = %+v", models)
	}
	stream, err := c2.Synthesize(ctx, "d-v1", server.SynthesizeRequest{N: 100, Seed: &seed})
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, stream.Body)
	stream.Close()
	// 0.8 already spent: another 0.8 must be refused by the reloaded ledger.
	if _, err := c2.Fit(ctx, server.FitRequest{
		DatasetID: "d", Epsilon: 0.8,
		Schema: server.SpecsFromAttrs(attrs), Data: bytes.NewReader(raw),
	}); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("restarted ledger did not bind: %v", err)
	}
}

// curatorCSV2 is curatorCSV for a two-attribute schema.
func curatorCSV2(t *testing.T, attrs []dataset.Attribute, n int) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	ds := dataset.NewWithCapacity(attrs, n)
	rec := make([]uint16, 2)
	for i := 0; i < n; i++ {
		rec[0] = uint16(rng.Intn(2))
		rec[1] = uint16(rng.Intn(4))
		ds.Append(rec)
	}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestPrivbayesdVersionFlag(t *testing.T) {
	bin := buildBinary(t)
	out, err := exec.Command(bin, "-version").CombinedOutput()
	if err != nil {
		t.Fatalf("-version: %v\n%s", err, out)
	}
	want := fmt.Sprintf("privbayesd %s", cliutil.Version)
	if !strings.Contains(string(out), want) {
		t.Errorf("-version output %q missing %q", out, want)
	}
	if _, err := os.Stat(bin); err != nil {
		t.Fatal(err)
	}
}
