// Command privbayesd is the PrivBayes synthesis-serving daemon: it
// hosts a registry of fitted models (loaded from -models-dir and via
// uploads), streams synthetic data and answers marginal queries from
// them, and — in curator mode — fits new models from CSV uploads under
// a persistent per-dataset privacy-budget ledger.
//
// Usage:
//
//	privbayesd -addr :8131 -models-dir models -ledger models/ledger.json
//
// Then:
//
//	curl localhost:8131/models
//	curl 'localhost:8131/models/adult-v1/synthesize?n=100000&seed=7' > syn.csv
//	curl -X POST localhost:8131/models/adult-v1/marginal \
//	     -d '{"attrs":["age","income"]}'
//
// The daemon prints "listening on <addr>" once the socket is bound, so
// -addr 127.0.0.1:0 works for tests and local experiments.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"privbayes/internal/accountant"
	"privbayes/internal/cliutil"
	"privbayes/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8131", "listen address (host:port; port 0 picks a free port)")
		modelsDir = flag.String("models-dir", "models", "directory of model artifacts loaded at startup and receiving new fits/uploads")
		ledger    = flag.String("ledger", "", "privacy-budget ledger file for curator mode (empty = in-memory ledger)")
		budget    = flag.Float64("budget", 2.0, "default per-dataset ε budget for curator-mode fits")
		workers   = flag.Int("max-workers", 0, "server-wide sampling/fitting worker budget (0 = all cores)")
		reqPar    = flag.Int("max-request-parallelism", 0, "max workers one request may claim (0 = whole budget)")
		maxRows   = flag.Int("max-rows", server.DefaultMaxSynthesisRows, "max synthetic rows per request")
		maxMB     = flag.Int64("max-upload-mb", 256, "max upload size (model artifacts and fit CSVs), in MiB")
	)
	cliutil.Parse("privbayesd", "serve synthesis, inference and budget-metered fitting of PrivBayes models over HTTP")
	if err := run(*addr, *modelsDir, *ledger, *budget, *workers, *reqPar, *maxRows, *maxMB); err != nil {
		fmt.Fprintln(os.Stderr, "privbayesd:", err)
		os.Exit(1)
	}
}

func run(addr, modelsDir, ledgerPath string, budget float64, workers, reqPar, maxRows int, maxMB int64) error {
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "privbayesd: "+format+"\n", args...)
	}
	var ledger *accountant.Ledger
	var err error
	if ledgerPath != "" {
		if ledger, err = accountant.Open(ledgerPath, budget); err != nil {
			return err
		}
	} else {
		ledger = accountant.New(budget)
		logf("no -ledger file: privacy budgets reset on restart")
	}
	srv, err := server.New(server.Config{
		ModelsDir:             modelsDir,
		Ledger:                ledger,
		MaxWorkers:            workers,
		MaxRequestParallelism: reqPar,
		MaxSynthesisRows:      maxRows,
		MaxUploadBytes:        maxMB << 20,
		Logf:                  logf,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// Announced after the bind so callers using port 0 can scrape the
	// resolved address (the e2e test and `make serve` both rely on it).
	logf("listening on %s (%d model(s) registered)", ln.Addr(), srv.Registry().Len())
	hs := &http.Server{
		Handler: srv,
		// Header and idle timeouts bound slow-loris and abandoned
		// keep-alive connections. No overall read/write timeout: fit
		// uploads and synthesis streams are legitimately long-lived,
		// and the worker budget already guards the compute path.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Graceful shutdown: SIGINT/SIGTERM stops accepting connections and
	// drains in-flight requests for a grace period, then force-closes
	// the stragglers — closing a connection cancels its request
	// context, which aborts the fit or stream it was driving and (for
	// fits) refunds the ledger charge.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		logf("shutting down")
		grace, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(grace); err != nil {
			hs.Close()
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
