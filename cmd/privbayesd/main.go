// Command privbayesd is the PrivBayes synthesis-serving daemon: it
// hosts a registry of fitted models (loaded from -models-dir and via
// uploads), streams synthetic data and answers marginal queries from
// them, and — in curator mode — fits new models from CSV uploads under
// a persistent per-dataset privacy-budget ledger.
//
// Usage:
//
//	privbayesd -addr :8131 -models-dir models -ledger models/ledger.wal
//
// Then:
//
//	curl localhost:8131/models
//	curl 'localhost:8131/models/adult-v1/synthesize?n=100000&seed=7' > syn.csv
//	curl -X POST localhost:8131/models/adult-v1/marginal \
//	     -d '{"attrs":["age","income"]}'
//
// The ledger is a crash-safe write-ahead log: every ε charge is fsynced
// before it is acknowledged, so kill -9 can neither lose a committed
// charge nor double-spend the budget. Legacy JSON ledger files are
// migrated in place on first open. A corrupt ledger refuses startup;
// -ledger-fsck truncates it at the first damaged record after the
// operator has decided the tail is expendable.
//
// The daemon prints "listening on <addr>" once the socket is bound, so
// -addr 127.0.0.1:0 works for tests and local experiments.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"privbayes/internal/accountant"
	"privbayes/internal/cliutil"
	"privbayes/internal/profiling"
	"privbayes/internal/server"
	"privbayes/internal/telemetry"
)

// options carries every flag from main to run.
type options struct {
	addr          string
	modelsDir     string
	ledgerPath    string
	ledgerFsck    bool
	budget        float64
	curatorDir    string
	refitEpsilon  float64
	refitRows     int64
	refitStale    time.Duration
	fitChunkRows  int
	workers       int
	reqPar        int
	maxRows       int
	maxMB         int64
	maxQueue      int
	maxFits       int
	readTimeout   time.Duration
	writeTimeout  time.Duration
	shutdownGrace time.Duration
	logFormat     string
	logLevel      string
	pprofAddr     string
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8131", "listen address (host:port; port 0 picks a free port)")
	flag.StringVar(&o.modelsDir, "models-dir", "models", "directory of model artifacts loaded at startup and receiving new fits/uploads")
	flag.StringVar(&o.ledgerPath, "ledger", "", "privacy-budget ledger WAL for curator mode (empty = in-memory ledger; legacy JSON ledgers migrate in place)")
	flag.BoolVar(&o.ledgerFsck, "ledger-fsck", false, "repair a corrupt ledger by truncating it at the first damaged record, then continue startup (records from the damage onward are lost)")
	flag.Float64Var(&o.budget, "budget", 2.0, "default per-dataset ε budget for curator-mode fits")
	flag.StringVar(&o.curatorDir, "curator-dir", "", "directory of crash-safe row logs for continuously curated datasets (empty = /datasets endpoints disabled)")
	flag.Float64Var(&o.refitEpsilon, "refit-epsilon", 0, "ε charged per automatic curator refit (0 = ingest only, no automatic refits)")
	flag.Int64Var(&o.refitRows, "refit-rows", 0, "refit a curated dataset once this many rows arrive since its last fit (0 = no row trigger)")
	flag.DurationVar(&o.refitStale, "refit-staleness", 0, "refit a curated dataset once unfitted rows are older than this (0 = no staleness trigger)")
	flag.IntVar(&o.fitChunkRows, "fit-chunk-rows", 0, "rows per chunk for out-of-core fit scans; bounds fit memory (0 = default 65536)")
	flag.IntVar(&o.workers, "max-workers", 0, "server-wide sampling/fitting worker budget (0 = all cores)")
	flag.IntVar(&o.reqPar, "max-request-parallelism", 0, "max workers one request may claim (0 = whole budget)")
	flag.IntVar(&o.maxRows, "max-rows", server.DefaultMaxSynthesisRows, "max synthetic rows per request")
	flag.Int64Var(&o.maxMB, "max-upload-mb", 256, "max upload size (model artifacts and fit CSVs), in MiB")
	flag.IntVar(&o.maxQueue, "max-queue-depth", server.DefaultMaxQueueDepth, "requests allowed to wait for workers before new arrivals get 503 + Retry-After")
	flag.IntVar(&o.maxFits, "max-fits-per-dataset", server.DefaultMaxFitsPerDataset, "concurrent fits per dataset id before new fits get 429 + Retry-After")
	flag.DurationVar(&o.readTimeout, "read-timeout", 10*time.Minute, "max duration for reading one request incl. body (0 = unlimited; bound fit-upload stalls)")
	flag.DurationVar(&o.writeTimeout, "write-timeout", 30*time.Minute, "max duration for writing one response (0 = unlimited; bounds abandoned synthesis streams)")
	flag.DurationVar(&o.shutdownGrace, "shutdown-grace", 10*time.Second, "drain period for in-flight requests on SIGINT/SIGTERM before force-close")
	flag.StringVar(&o.logFormat, "log-format", "text", "structured log encoding: text or json")
	flag.StringVar(&o.logLevel, "log-level", "info", "minimum log level: debug, info, warn or error")
	flag.StringVar(&o.pprofAddr, "pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = disabled)")
	cliutil.Parse("privbayesd", "serve synthesis, inference and budget-metered fitting of PrivBayes models over HTTP")
	if err := run(o); err != nil {
		// run may fail before (or because) -log-format/-log-level parsed,
		// so the fatal line uses a fixed text logger.
		slog.New(slog.NewTextHandler(os.Stderr, nil)).Error("privbayesd exiting", slog.String("error", err.Error()))
		os.Exit(1)
	}
}

func run(o options) error {
	// One injectable logger seam: every daemon diagnostic — startup,
	// ledger recovery, per-request lines, shutdown — flows through this
	// slog.Logger, so -log-format/-log-level govern all of it and tests
	// can capture it whole.
	log, err := telemetry.NewLogger(os.Stderr, o.logFormat, o.logLevel)
	if err != nil {
		return err
	}
	logf := func(format string, args ...any) {
		log.Info(fmt.Sprintf(format, args...))
	}
	var ledger *accountant.Ledger
	if o.ledgerPath != "" {
		ledger, err = accountant.OpenWAL(o.ledgerPath, o.budget,
			accountant.Options{Fsck: o.ledgerFsck, Logf: logf})
		if err != nil {
			var ce *accountant.CorruptError
			if errors.As(err, &ce) {
				// Refusing to serve beats silently mis-accounting ε. The
				// operator decides whether the damaged tail is expendable.
				return fmt.Errorf("ledger %s is corrupt at byte offset %d (%s).\n"+
					"privbayesd refuses to start on a damaged privacy ledger: charges after the damage may be unaccounted.\n"+
					"To repair by truncating at the damage (losing any records after it), rerun with -ledger-fsck.\n"+
					"To keep the file for inspection first, copy it elsewhere before repairing.",
					ce.Path, ce.Offset, ce.Reason)
			}
			return err
		}
		defer ledger.Close()
	} else {
		ledger = accountant.New(o.budget)
		logf("no -ledger file: privacy budgets reset on restart")
	}
	srv, err := server.New(server.Config{
		ModelsDir:             o.modelsDir,
		Ledger:                ledger,
		MaxWorkers:            o.workers,
		MaxRequestParallelism: o.reqPar,
		MaxSynthesisRows:      o.maxRows,
		MaxUploadBytes:        o.maxMB << 20,
		MaxQueueDepth:         o.maxQueue,
		MaxFitsPerDataset:     o.maxFits,
		CuratorDir:            o.curatorDir,
		RefitEpsilon:          o.refitEpsilon,
		RefitRows:             o.refitRows,
		RefitStaleness:        o.refitStale,
		FitChunkRows:          o.fitChunkRows,
		Logger:                log,
		Telemetry:             telemetry.NewRegistry(),
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	// Announced after the bind so callers using port 0 can scrape the
	// resolved address (the e2e test and `make serve` both rely on it).
	logf("listening on %s (%d model(s) registered)", ln.Addr(), srv.Registry().Len())

	// The pprof listener is separate from the API listener on purpose:
	// profiles expose internals and should normally bind loopback only.
	if o.pprofAddr != "" {
		pln, err := net.Listen("tcp", o.pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listen: %w", err)
		}
		log.Info("pprof listening", slog.String("addr", pln.Addr().String()))
		go func() {
			ps := &http.Server{Handler: profiling.Mux(), ReadHeaderTimeout: 10 * time.Second}
			if err := ps.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Error("pprof server", slog.String("error", err.Error()))
			}
		}()
	}
	hs := &http.Server{
		Handler: srv,
		// Header and idle timeouts bound slow-loris and abandoned
		// keep-alive connections; the read/write timeouts bound whole
		// requests, so a stalled fit upload or an abandoned synthesis
		// stream cannot hold its connection forever. Legitimately huge
		// transfers can lift them via the flags.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       o.readTimeout,
		WriteTimeout:      o.writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	// Graceful shutdown: SIGINT/SIGTERM stops accepting connections and
	// drains in-flight requests for a grace period, then force-closes
	// the stragglers — closing a connection cancels its request
	// context, which aborts the fit or stream it was driving and (for
	// fits) refunds the ledger charge.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		logf("shutting down")
		grace, cancel := context.WithTimeout(context.Background(), o.shutdownGrace)
		defer cancel()
		if err := hs.Shutdown(grace); err != nil {
			hs.Close()
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
