// Command benchjson converts `go test -bench` output on stdin into
// machine-readable JSON on stdout, so benchmark results can be captured
// as artifacts (see the Makefile's bench-json target, which writes
// BENCH_scoring.json) and diffed across commits without screen-scraping.
//
// Besides the per-benchmark table it pairs every ScoreBatchShared/<sub>
// result with its ScoreBatchLegacy/<sub> counterpart and reports the
// speedup, the headline number of the shared-scan scoring engine.
//
// Usage:
//
//	go test -run NONE -bench ScoreBatch ./internal/score | benchjson
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"privbayes/internal/cliutil"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Goos       string             `json:"goos,omitempty"`
	Goarch     string             `json:"goarch,omitempty"`
	Pkg        string             `json:"pkg,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Benchmarks []Benchmark        `json:"benchmarks"`
	Speedups   map[string]float64 `json:"speedups,omitempty"`
}

func main() {
	in := flag.String("in", "", "read bench output from this file instead of stdin")
	cliutil.Parse("benchjson", "convert `go test -bench` output (stdin or -in file) to machine-readable JSON")
	src := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
	}
	rep, err := parse(bufio.NewScanner(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rep.Speedups = speedups(rep.Benchmarks)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin")
	}
	return rep, nil
}

// parseBenchLine parses "BenchmarkX/sub-8  100  123 ns/op  4 B/op ...".
// Value/unit pairs beyond ns/op land in Metrics keyed by unit.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Trim the GOMAXPROCS suffix go test appends.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = map[string]float64{}
		}
		b.Metrics[unit] = v
	}
	return b, b.NsPerOp > 0
}

// speedupPairs are the fast-vs-baseline benchmark families whose
// matching sub-benchmarks are paired into headline speedups: the
// shared-scan scoring engine against the legacy scorer, and the exact
// query engine against synthesize-then-scan.
var speedupPairs = []struct{ fast, base, label string }{
	{"BenchmarkScoreBatchShared/", "BenchmarkScoreBatchLegacy/", "shared_vs_legacy/"},
	// Columnar popcount counting against the legacy row-major walk on
	// the same bit-packed dataset (internal/marginal, d ∈ {8,16,32}).
	{"BenchmarkCountColumnar/", "BenchmarkCountRowMajor/", "columnar_vs_rowmajor/"},
	{"BenchmarkQuery/", "BenchmarkSynthesizeThenScan/", "query_vs_scan/"},
	// Telemetry pairs invert the usual reading: fast is the no-op (off)
	// path, so the ratio is on_ns/off_ns — the relative cost of enabling
	// telemetry. 1.00 means free; the acceptance bar is <= 1.05 on the
	// end-to-end serving pair.
	{"BenchmarkTelemetryOverhead/off/", "BenchmarkTelemetryOverhead/on/", "telemetry_on_vs_off/"},
	{"BenchmarkServeSynthesizeTelemetry/off/", "BenchmarkServeSynthesizeTelemetry/on/", "serve_telemetry_on_vs_off/"},
	// Curator pairs: fit_outofcore_vs_inmemory is inverted like the
	// telemetry pairs — the ratio is scanner_ns/inmemory_ns, the
	// overhead of re-scanning a spooled log instead of fitting
	// materialized columns. refit_cold_vs_incremental reads the usual
	// way: how much faster an incremental refit over the maintained
	// count store is than a cold rescan of the row log.
	{"BenchmarkFitInMemory/", "BenchmarkFitScanner/", "fit_outofcore_vs_inmemory/"},
	{"BenchmarkRefitIncremental/", "BenchmarkRefitCold/", "refit_cold_vs_incremental/"},
}

// speedups pairs each family's <fast>/<sub> with <base>/<sub> and
// reports base_ns / fast_ns.
func speedups(benches []Benchmark) map[string]float64 {
	out := map[string]float64{}
	for _, pair := range speedupPairs {
		fastNs := map[string]float64{}
		baseNs := map[string]float64{}
		for _, b := range benches {
			if sub, ok := strings.CutPrefix(b.Name, pair.fast); ok {
				fastNs[sub] = b.NsPerOp
			}
			if sub, ok := strings.CutPrefix(b.Name, pair.base); ok {
				baseNs[sub] = b.NsPerOp
			}
		}
		for sub, f := range fastNs {
			if l, ok := baseNs[sub]; ok && f > 0 {
				out[pair.label+sub] = l / f
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
