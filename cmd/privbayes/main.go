// Command privbayes synthesizes a differentially private copy of a CSV
// dataset end to end: infer a schema (or accept one), fit a PrivBayes
// model, sample, and write the synthetic CSV.
//
// Usage:
//
//	privbayes -in data.csv -out synthetic.csv -epsilon 1.0
//	privbayes -in data.csv -out syn.csv -epsilon 0.2 -bins 16 -seed 7
//
// Schema inference: a column whose every value parses as a float and
// that has more distinct values than -bins is treated as continuous with
// -bins equi-width bins; every other column is categorical with its
// observed labels as the domain.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"syscall"

	"privbayes"
	"privbayes/internal/cliutil"
	"privbayes/internal/profiling"
)

func main() {
	var (
		in         = flag.String("in", "", "input CSV file with a header row (required)")
		out        = flag.String("out", "", "output CSV file (required)")
		epsilon    = flag.Float64("epsilon", 1.0, "total differential-privacy budget ε")
		beta       = flag.Float64("beta", 0.3, "budget fraction for network learning")
		theta      = flag.Float64("theta", 4, "θ-usefulness threshold")
		bins       = flag.Int("bins", 16, "bins for continuous attributes")
		rows       = flag.Int("rows", 0, "synthetic rows to emit (0 = same as input)")
		seed       = flag.Int64("seed", 1, "random seed")
		par        = flag.Int("parallelism", 0, "worker pool size (0 = all cores, 1 = serial)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	cliutil.Parse("privbayes", "synthesize a differentially private copy of a CSV dataset")
	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "privbayes: -in and -out are required")
		os.Exit(2)
	}
	stop, err := profiling.Start(*cpuprofile, *memprofile,
		slog.New(slog.NewTextHandler(os.Stderr, nil)).With("prog", "privbayes"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "privbayes:", err)
		os.Exit(1)
	}
	// Ctrl-C cancels the pipeline mid-fit or mid-stream: the v2 API
	// stops within one scoring batch or sample chunk and returns
	// context.Canceled, so profiles still flush and temp state is not
	// left behind by a killed process.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	err = run(ctx, *in, *out, *epsilon, *beta, *theta, *bins, *rows, *par, *seed)
	cancel()
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "privbayes:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, in, out string, epsilon, beta, theta float64, bins, rows, par int, seed int64) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	header, records, err := readAll(f)
	if err != nil {
		return err
	}
	if len(records) == 0 {
		return fmt.Errorf("%s has no data rows", in)
	}

	attrs := inferSchema(header, records, bins)
	ds := privbayes.NewDataset(attrs)
	rec := make([]uint16, len(attrs))
	for _, cells := range records {
		for c := range attrs {
			a := &attrs[c]
			if a.Kind == privbayes.Continuous {
				v, err := strconv.ParseFloat(cells[c], 64)
				if err != nil {
					return fmt.Errorf("column %s: %v", a.Name, err)
				}
				rec[c] = uint16(a.Bin(v))
			} else {
				rec[c] = uint16(a.Code(cells[c]))
			}
		}
		ds.Append(rec)
	}

	model, err := privbayes.Fit(ctx, ds,
		privbayes.WithEpsilon(epsilon),
		privbayes.WithBeta(beta),
		privbayes.WithTheta(theta),
		privbayes.WithParallelism(par),
		privbayes.WithSeed(seed),
	)
	if err != nil {
		return err
	}
	if rows <= 0 {
		rows = ds.N()
	}

	of, err := os.Create(out)
	if err != nil {
		return err
	}
	defer of.Close()
	// Stream straight to the file: memory stays bounded by the
	// generation chunk no matter how many rows are requested. The
	// sampling seed is derived from -seed so the whole run replays from
	// one flag.
	if err := model.SynthesizeTo(ctx, of, rows, privbayes.FormatCSV,
		privbayes.SynthSeed(seed+1), privbayes.SynthParallelism(par)); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d synthetic rows (%d attributes) to %s under ε=%g\n",
		rows, ds.D(), out, epsilon)
	return nil
}

func readAll(r io.Reader) (header []string, records [][]string, err error) {
	cr := csv.NewReader(r)
	header, err = cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("read header: %w", err)
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		records = append(records, rec)
	}
	return header, records, nil
}

func inferSchema(header []string, records [][]string, bins int) []privbayes.Attribute {
	attrs := make([]privbayes.Attribute, len(header))
	for c, name := range header {
		numeric := true
		min, max := 0.0, 0.0
		distinct := map[string]bool{}
		for i, rec := range records {
			distinct[rec[c]] = true
			v, err := strconv.ParseFloat(rec[c], 64)
			if err != nil {
				numeric = false
				continue
			}
			if i == 0 || v < min {
				min = v
			}
			if i == 0 || v > max {
				max = v
			}
		}
		if numeric && len(distinct) > bins {
			attrs[c] = privbayes.NewContinuous(name, min, max, bins)
			continue
		}
		labels := make([]string, 0, len(distinct))
		for l := range distinct {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		attrs[c] = privbayes.NewCategorical(name, labels)
	}
	return attrs
}
