package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeInput(t *testing.T, dir string) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("city,vip,amount\n")
	rng := rand.New(rand.NewSource(1))
	cities := []string{"paris", "tokyo", "lima"}
	for i := 0; i < 400; i++ {
		c := rng.Intn(3)
		vip := "no"
		if c == 0 && rng.Float64() < 0.6 {
			vip = "yes"
		}
		fmt.Fprintf(&sb, "%s,%s,%.2f\n", cities[c], vip, 10+rng.Float64()*1000)
	}
	in := filepath.Join(dir, "in.csv")
	if err := os.WriteFile(in, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return in
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := writeInput(t, dir)
	out := filepath.Join(dir, "out.csv")
	if err := run(context.Background(), in, out, 1.0, 0.3, 4, 16, 0, 0, 7); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "city,vip,amount" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 401 {
		t.Errorf("output rows = %d, want 400 + header", len(lines)-1)
	}
	for _, line := range lines[1:] {
		cells := strings.Split(line, ",")
		if cells[0] != "paris" && cells[0] != "tokyo" && cells[0] != "lima" {
			t.Fatalf("unknown city %q in output", cells[0])
		}
		if cells[1] != "yes" && cells[1] != "no" {
			t.Fatalf("unknown vip %q", cells[1])
		}
	}
}

func TestRunCustomRowCount(t *testing.T) {
	dir := t.TempDir()
	in := writeInput(t, dir)
	out := filepath.Join(dir, "out.csv")
	if err := run(context.Background(), in, out, 1.0, 0.3, 4, 16, 55, 0, 7); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out)
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 56 {
		t.Errorf("rows = %d, want 55 + header", len(lines)-1)
	}
}

func TestRunMissingInput(t *testing.T) {
	if err := run(context.Background(), "/does/not/exist.csv", "/tmp/x.csv", 1, 0.3, 4, 16, 0, 0, 1); err == nil {
		t.Fatal("missing input must error")
	}
}

func TestInferSchema(t *testing.T) {
	header := []string{"cat", "num"}
	records := [][]string{}
	for i := 0; i < 40; i++ {
		records = append(records, []string{"ab", fmt.Sprint(float64(i) * 1.5)})
	}
	attrs := inferSchema(header, records, 16)
	if attrs[0].Kind != 0 || attrs[0].Size() != 1 {
		t.Errorf("cat column: kind %v size %d", attrs[0].Kind, attrs[0].Size())
	}
	if attrs[1].Kind != 1 || attrs[1].Size() != 16 {
		t.Errorf("num column: kind %v size %d", attrs[1].Kind, attrs[1].Size())
	}
	// Few distinct numeric values stay categorical.
	small := [][]string{{"x", "1"}, {"y", "2"}, {"z", "1"}}
	attrs2 := inferSchema(header, small, 16)
	if attrs2[1].Kind != 0 {
		t.Error("low-cardinality numeric column should stay categorical")
	}
}
