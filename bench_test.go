// Benchmarks: one per evaluation table and figure of the paper. Each
// benchmark executes the corresponding experiment at reduced scale
// (smaller n, one repeat, a two-point ε grid, sampled query subsets) so
// the full battery completes in minutes, and reports the headline metric
// of the figure via b.ReportMetric so regressions in accuracy — not just
// speed — show up in benchmark diffs. The cmd/experiments tool runs the
// same experiments at paper scale.
package privbayes

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"privbayes/internal/core"
	"privbayes/internal/data"
	"privbayes/internal/experiment"
	"privbayes/internal/marginal"
	"privbayes/internal/score"
)

func benchConfig() experiment.Config {
	return experiment.Config{
		Repeats:         1,
		N:               2000,
		Eps:             []float64{0.1, 0.8},
		MaxQuerySubsets: 60,
		MaxK:            3,
		Seed:            42,
	}
}

// runFigure executes one experiment id per benchmark iteration and
// reports the mean value of the given series at the largest ε.
func runFigure(b *testing.B, id, series string) {
	b.Helper()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		var cnt int
		for _, p := range res.Points {
			if p.Series == series && p.X == 0.8 {
				sum += p.Value
				cnt++
			}
		}
		if cnt > 0 {
			b.ReportMetric(sum/float64(cnt), series+"@eps0.8")
		}
	}
}

func BenchmarkFigure4(b *testing.B)  { runFigure(b, "4", "F") }
func BenchmarkFigure5(b *testing.B)  { runFigure(b, "5", "Hierarchical-R") }
func BenchmarkFigure6(b *testing.B)  { runFigure(b, "6", "Hierarchical-R") }
func BenchmarkFigure7(b *testing.B)  { runFigure(b, "7", "Hierarchical-R") }
func BenchmarkFigure8(b *testing.B)  { runFigure(b, "8", "Hierarchical-R") }
func BenchmarkFigure11(b *testing.B) { runFigure(b, "11", "PrivBayes") }
func BenchmarkFigure12(b *testing.B) { runFigure(b, "12", "PrivBayes") }
func BenchmarkFigure13(b *testing.B) { runFigure(b, "13", "PrivBayes") }
func BenchmarkFigure14(b *testing.B) { runFigure(b, "14", "PrivBayes") }
func BenchmarkFigure15(b *testing.B) { runFigure(b, "15", "PrivBayes") }
func BenchmarkFigure16(b *testing.B) { runFigure(b, "16", "PrivBayes") }
func BenchmarkFigure17(b *testing.B) { runFigure(b, "17", "PrivBayes") }
func BenchmarkFigure18(b *testing.B) { runFigure(b, "18", "PrivBayes") }
func BenchmarkFigure19(b *testing.B) { runFigure(b, "19", "PrivBayes") }
func BenchmarkTable4(b *testing.B)   { runFigure(b, "table4", "S(R)") }
func BenchmarkTable5(b *testing.B)   { runFigure(b, "table5", "log2-domain") }

// Figures 9 and 10 sweep β and θ; report the value at the default
// parameter instead of an ε point.
func runSweep(b *testing.B, id string, x float64) {
	b.Helper()
	cfg := benchConfig()
	cfg.Eps = []float64{0.8}
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		var cnt int
		for _, p := range res.Points {
			if p.X == x {
				sum += p.Value
				cnt++
			}
		}
		if cnt > 0 {
			b.ReportMetric(sum/float64(cnt), fmt.Sprintf("mean@%g", x))
		}
	}
}

func BenchmarkFigure9(b *testing.B)  { runSweep(b, "9", 0.3) }
func BenchmarkFigure10(b *testing.B) { runSweep(b, "10", 4) }

// Micro-benchmarks of the pipeline's hot stages, useful for performance
// work independent of the figure harness.

func nltcsData(n int) *Dataset {
	spec, _ := data.ByName("NLTCS")
	return spec.GenerateN(n)
}

// BenchmarkScoreFunctions measures one uncached AP-pair evaluation (the
// inner loop of network learning) for each score function.
func BenchmarkScoreFunctions(b *testing.B) {
	ds := nltcsData(5000)
	parents := []marginal.Var{{Attr: 1}, {Attr: 2}, {Attr: 3}}
	for _, fn := range []score.Function{score.MI, score.F, score.R} {
		b.Run(fn.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sc := score.NewScorer(fn, ds) // fresh cache: measure computation
				_ = sc.Score(marginal.Var{Attr: 0}, parents)
			}
		})
	}
}

// BenchmarkFit measures the full two-phase pipeline (network +
// distribution learning) on NLTCS-shaped data.
func BenchmarkFit(b *testing.B) {
	ds := nltcsData(5000)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		_, err := core.Fit(ds, core.Options{
			Epsilon: 0.8, Beta: 0.3, Theta: 4, K: -1, MaxK: 3,
			Mode: core.ModeBinary, Score: score.F, Rand: rng,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSample measures ancestral sampling throughput.
func BenchmarkSample(b *testing.B) {
	ds := nltcsData(5000)
	rng := rand.New(rand.NewSource(2))
	m, err := core.Fit(ds, core.Options{
		Epsilon: 0.8, Beta: 0.3, Theta: 4, K: -1, MaxK: 3,
		Mode: core.ModeBinary, Score: score.F, Rand: rng,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Sample(1000, rng)
	}
}

// BenchmarkMaterialize measures marginal materialization, the hot loop
// shared by scoring, distribution learning and evaluation.
func BenchmarkMaterialize(b *testing.B) {
	ds := nltcsData(20000)
	vars := []marginal.Var{{Attr: 0}, {Attr: 1}, {Attr: 2}, {Attr: 3}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		marginal.Materialize(ds, vars)
	}
}

// Serial-vs-parallel benchmarks for the execution engine
// (internal/parallel). Each pair runs the same work at Parallelism 1
// (the legacy serial code paths) and at 4 workers; on a >= 4 core
// machine the parallel marginal-counting and sampling variants target
// >= 2x throughput, while output stays deterministic for a fixed seed
// (see TestFitBitIdenticalAcrossParallelism and friends in
// internal/core).

// binaryChainData generates an n-row all-binary dataset of width d with
// chained correlations, for parametric-dimension pipeline benchmarks.
func binaryChainData(n, d int, seed int64) *Dataset {
	attrs := make([]Attribute, d)
	for i := range attrs {
		attrs[i] = NewCategorical(fmt.Sprintf("a%d", i), []string{"0", "1"})
	}
	ds := NewDataset(attrs)
	rng := rand.New(rand.NewSource(seed))
	rec := make([]uint16, d)
	for r := 0; r < n; r++ {
		rec[0] = uint16(rng.Intn(2))
		for c := 1; c < d; c++ {
			rec[c] = rec[c-1]
			if rng.Float64() < 0.2 {
				rec[c] = 1 - rec[c]
			}
		}
		ds.Append(rec)
	}
	return ds
}

var parallelGrid = []int{1, 4}

// BenchmarkFitParallel compares serial and 4-worker Fit across network
// widths. The parallel win comes from fanning candidate scoring and
// marginal materialization out; the fitted model is bit-identical.
func BenchmarkFitParallel(b *testing.B) {
	for _, d := range []int{8, 16, 32} {
		ds := binaryChainData(2000, d, int64(d))
		for _, par := range parallelGrid {
			b.Run(fmt.Sprintf("d=%d/workers=%d", d, par), func(b *testing.B) {
				rng := rand.New(rand.NewSource(1))
				for i := 0; i < b.N; i++ {
					_, err := core.Fit(ds, core.Options{
						Epsilon: 0.8, Beta: 0.3, Theta: 4, K: 2,
						Mode: core.ModeBinary, Score: score.F,
						Parallelism: par, Rand: rng,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSynthesizeParallel compares the full fit-and-sample pipeline
// serial vs 4 workers across widths.
func BenchmarkSynthesizeParallel(b *testing.B) {
	for _, d := range []int{8, 16, 32} {
		ds := binaryChainData(2000, d, int64(d))
		for _, par := range parallelGrid {
			b.Run(fmt.Sprintf("d=%d/workers=%d", d, par), func(b *testing.B) {
				rng := rand.New(rand.NewSource(2))
				for i := 0; i < b.N; i++ {
					_, err := core.Synthesize(ds, core.Options{
						Epsilon: 0.8, Beta: 0.3, Theta: 4, K: 2,
						Mode: core.ModeBinary, Score: score.F,
						Parallelism: par, Rand: rng,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkMaterializeParallel measures chunked row-range marginal
// counting — the engine's hottest primitive — serial vs 4 workers on a
// 100k-row table.
func BenchmarkMaterializeParallel(b *testing.B) {
	ds := binaryChainData(100000, 8, 3)
	vars := []marginal.Var{{Attr: 0}, {Attr: 2}, {Attr: 4}, {Attr: 6}}
	for _, par := range parallelGrid {
		b.Run(fmt.Sprintf("workers=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				marginal.MaterializeP(ds, vars, par)
			}
		})
	}
}

// BenchmarkSampleParallelWorkers measures chunked synthetic-tuple
// generation serial vs 4 workers, 50k rows per iteration.
func BenchmarkSampleParallelWorkers(b *testing.B) {
	ds := binaryChainData(5000, 16, 4)
	rng := rand.New(rand.NewSource(5))
	m, err := core.Fit(ds, core.Options{
		Epsilon: 0.8, Beta: 0.3, Theta: 4, K: 2,
		Mode: core.ModeBinary, Score: score.F, Rand: rng,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, par := range parallelGrid {
		b.Run(fmt.Sprintf("workers=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.SampleP(50000, rng, par)
			}
		})
	}
}

// queryBenchDims is the dimension grid of the query-vs-scan pair; each
// width 1..4 marginal is benchmarked at every d.
var queryBenchDims = []int{8, 16, 32}

// queryScanRows is the synthetic-sample size of the scan baseline — the
// rows an analyst without the query engine would have to synthesize and
// scan to answer one marginal.
const queryScanRows = 10_000

// fitQueryBenchModel fits one chained binary model of width d for the
// query benchmarks (outside the timed loop).
func fitQueryBenchModel(b *testing.B, d int) *Model {
	b.Helper()
	ds := binaryChainData(4000, d, 7)
	rng := rand.New(rand.NewSource(9))
	m, err := core.Fit(ds, core.Options{
		Epsilon: 0.8, Beta: 0.3, Theta: 4, K: 2,
		Mode: core.ModeBinary, Score: score.F, Rand: rng,
	})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkQuery measures exact marginal queries through the v2 query
// engine (Model.Query → variable elimination) over d ∈ {8, 16, 32}
// attributes at marginal widths 1..4. Pairs with
// BenchmarkSynthesizeThenScan; benchjson reports the per-configuration
// speedup as query_vs_scan/<sub> in BENCH_query.json.
func BenchmarkQuery(b *testing.B) {
	ctx := context.Background()
	for _, d := range queryBenchDims {
		m := fitQueryBenchModel(b, d)
		for width := 1; width <= 4 && width <= d; width++ {
			names := make([]string, width)
			for i := range names {
				names[i] = fmt.Sprintf("a%d", i)
			}
			b.Run(fmt.Sprintf("d=%d/width=%d", d, width), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := m.Query(ctx, Marginal(names...)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSynthesizeThenScan is the baseline the query engine
// replaces: answer the same marginal by sampling a queryScanRows-row
// synthetic dataset from the model and scanning it. Same grid and
// sub-benchmark names as BenchmarkQuery, so benchjson pairs them.
func BenchmarkSynthesizeThenScan(b *testing.B) {
	for _, d := range queryBenchDims {
		m := fitQueryBenchModel(b, d)
		rng := rand.New(rand.NewSource(11))
		for width := 1; width <= 4 && width <= d; width++ {
			vars := make([]marginal.Var, width)
			for i := range vars {
				vars[i] = marginal.Var{Attr: i}
			}
			b.Run(fmt.Sprintf("d=%d/width=%d", d, width), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					syn := m.SampleP(queryScanRows, rng, 2)
					marginal.Materialize(syn, vars)
				}
			})
		}
	}
}

// BenchmarkAblationInferenceVsSampling quantifies the Section 7
// extension implemented in core.Model.InferMarginal: answering a
// 2-way marginal directly from the model removes the sampling error of
// the released dataset. Reported metrics are the TVD of each strategy
// against the sensitive data (lower is better).
func BenchmarkAblationInferenceVsSampling(b *testing.B) {
	ds := nltcsData(8000)
	rng := rand.New(rand.NewSource(5))
	m, err := core.Fit(ds, core.Options{
		Epsilon: 0.8, Beta: 0.3, Theta: 4, K: -1, MaxK: 3,
		Mode: core.ModeBinary, Score: score.F, Rand: rng,
	})
	if err != nil {
		b.Fatal(err)
	}
	vars := []marginal.Var{{Attr: 0}, {Attr: 1}}
	truth := marginal.Materialize(ds, vars)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		syn := m.Sample(ds.N(), rng)
		sampled := marginal.Materialize(syn, vars)
		inferred, err := m.InferMarginal([]int{0, 1}, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(marginal.TVD(truth, sampled), "tvd-sampled")
		b.ReportMetric(marginal.TVD(truth, inferred), "tvd-inferred")
	}
}
