package privbayes

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

func fitStreamModel(t *testing.T) *Model {
	t.Helper()
	m, err := Fit(context.Background(), toyData(4000, 90), WithEpsilon(1), WithSeed(91))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSynthesizeStreamMatchesSampleP: the acceptance contract — for a
// fixed (model, n, seed) the iterator's rows are byte-identical to one
// monolithic SampleP call, at any parallelism, including n that is not
// a multiple of the stream chunk.
func TestSynthesizeStreamMatchesSampleP(t *testing.T) {
	m := fitStreamModel(t)
	for _, n := range []int{0, 1, 2047, 2048, 5000, 40_000} {
		const seed = 92
		want := m.SampleP(n, rand.New(rand.NewSource(seed)), 2)
		for _, par := range []int{0, 1, 3} {
			got := 0
			for row, err := range m.Synthesize(context.Background(), n, SynthSeed(seed), SynthParallelism(par)) {
				if err != nil {
					t.Fatalf("n=%d par=%d row %d: %v", n, par, got, err)
				}
				for c := range row {
					if int(row[c]) != want.Value(got, c) {
						t.Fatalf("n=%d par=%d: row %d col %d = %d, want %d",
							n, par, got, c, row[c], want.Value(got, c))
					}
				}
				got++
			}
			if got != n {
				t.Fatalf("n=%d par=%d: streamed %d rows", n, par, got)
			}
		}
	}
}

// TestSynthesizeStreamEarlyBreak: breaking the iterator early is clean
// — no error, no further rows, and the next stream starts fresh.
func TestSynthesizeStreamEarlyBreak(t *testing.T) {
	m := fitStreamModel(t)
	seen := 0
	for _, err := range m.Synthesize(context.Background(), 100_000, SynthSeed(1)) {
		if err != nil {
			t.Fatal(err)
		}
		seen++
		if seen == 10 {
			break
		}
	}
	if seen != 10 {
		t.Fatalf("consumed %d rows", seen)
	}
}

// TestSynthesizeToCSVMatchesWriteCSV: SynthesizeTo's CSV bytes equal
// Dataset.WriteCSV of the equivalent SampleP call.
func TestSynthesizeToCSVMatchesWriteCSV(t *testing.T) {
	m := fitStreamModel(t)
	const n, seed = 20_000, 93
	var want bytes.Buffer
	if err := m.SampleP(n, rand.New(rand.NewSource(seed)), 2).WriteCSV(&want); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := m.SynthesizeTo(context.Background(), &got, n, FormatCSV, SynthSeed(seed)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("streamed CSV differs from materialized WriteCSV")
	}
}

// TestSynthesizeToJSONL: every line is a JSON object keyed by
// attribute name, and the stream replays byte-identically per seed.
func TestSynthesizeToJSONL(t *testing.T) {
	m := fitStreamModel(t)
	var a, b bytes.Buffer
	if err := m.SynthesizeTo(context.Background(), &a, 500, FormatJSONL, SynthSeed(5)); err != nil {
		t.Fatal(err)
	}
	if err := m.SynthesizeTo(context.Background(), &b, 500, FormatJSONL, SynthSeed(5)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed must replay the stream byte for byte")
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 500 {
		t.Fatalf("%d JSONL lines, want 500", len(lines))
	}
	var obj map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &obj); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	for _, key := range []string{"a", "b", "c"} {
		if _, ok := obj[key]; !ok {
			t.Errorf("line 0 missing attribute %q", key)
		}
	}
}

// TestAppendRowText decodes a streamed row exactly as CSV rendering
// does.
func TestAppendRowText(t *testing.T) {
	m := fitStreamModel(t)
	for row, err := range m.Synthesize(context.Background(), 1, SynthSeed(6)) {
		if err != nil {
			t.Fatal(err)
		}
		cells := m.AppendRowText(nil, row)
		if len(cells) != 3 {
			t.Fatalf("decoded %d cells", len(cells))
		}
		if cells[0] != "0" && cells[0] != "1" {
			t.Errorf("cell 0 = %q", cells[0])
		}
	}
}

// TestSynthesizeNegativeRows surfaces an error through the iterator
// instead of panicking.
func TestSynthesizeNegativeRows(t *testing.T) {
	m := fitStreamModel(t)
	sawErr := false
	for _, err := range m.Synthesize(context.Background(), -1) {
		if err == nil {
			t.Fatal("yielded a row for n = -1")
		}
		sawErr = true
	}
	if !sawErr {
		t.Fatal("no error yielded for n = -1")
	}
	if err := m.SynthesizeTo(context.Background(), &bytes.Buffer{}, -1, FormatCSV); err == nil {
		t.Fatal("SynthesizeTo accepted n = -1")
	}
}
