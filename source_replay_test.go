package privbayes

import (
	"bytes"
	"context"
	"testing"
)

// TestCryptoSourceSeedEchoAndReplay is the replayability contract of
// the v2 randomness design: a CryptoSource is just a seed-based Source
// whose freshly drawn seed is readable via Seed(), and any run made
// with it can be reproduced byte-identically from that echoed seed —
// across Fit, Synthesize, and streaming synthesis.
func TestCryptoSourceSeedEchoAndReplay(t *testing.T) {
	ds := toyData(800, 21)
	ctx := context.Background()

	src := CryptoSource()
	seed := src.Seed()
	if NewSource(seed).Seed() != seed {
		t.Fatal("NewSource does not echo its seed")
	}
	if src.IsZero() {
		t.Fatal("CryptoSource must not be the unset zero Source")
	}

	// Fit under the crypto source, then replay from the echoed seed;
	// the persisted artifacts must be byte-identical.
	m1, err := Fit(ctx, ds, WithEpsilon(1.0), WithSource(src))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Fit(ctx, ds, WithEpsilon(1.0), WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	var a1, a2 bytes.Buffer
	if err := SaveModel(&a1, m1, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := SaveModel(&a2, m2, 1.0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a1.Bytes(), a2.Bytes()) {
		t.Fatal("fit from echoed seed is not byte-identical to the crypto-source fit")
	}

	// The same holds for synthesis: a crypto source used for streaming
	// replays byte-identically from its echoed seed.
	synthSrc := CryptoSource()
	var s1, s2 bytes.Buffer
	if err := m1.SynthesizeTo(ctx, &s1, 5000, FormatCSV, SynthSource(synthSrc)); err != nil {
		t.Fatal(err)
	}
	if err := m1.SynthesizeTo(ctx, &s2, 5000, FormatCSV, SynthSeed(synthSrc.Seed())); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
		t.Fatal("synthesis from echoed seed is not byte-identical to the crypto-source stream")
	}

	// End-to-end Synthesize under one source replays as well.
	d1, err := Synthesize(ctx, ds, WithEpsilon(1.0), WithSource(src))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Synthesize(ctx, ds, WithEpsilon(1.0), WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	var c1, c2 bytes.Buffer
	if err := d1.WriteCSV(&c1); err != nil {
		t.Fatal(err)
	}
	if err := d2.WriteCSV(&c2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
		t.Fatal("Synthesize from echoed seed is not byte-identical")
	}

	// Two independent CryptoSources must draw distinct seeds — the
	// zero-value "draw for me" path must not be a fixed stream.
	if CryptoSource().Seed() == CryptoSource().Seed() {
		t.Fatal("independent CryptoSources drew the same seed")
	}
}
