package privbayes

import (
	"errors"
	"math/rand"

	"privbayes/internal/core"
)

// Options is the v1 configuration struct, retained for the deprecated
// FitV1/SynthesizeV1 shims. New code should use the context-first
// functional-options API (Fit, Synthesize, NewFitter, NewSession).
//
// Differences from earlier revisions: the ScoreSet bool hack is gone —
// Score's zero value is now ScoreAuto, which is what an unset Score
// always meant — and Rand remains required here (the v2 API replaces
// it with the seed-based Source).
//
// Deprecated: use Fit(ctx, ds, opts...) / Synthesize(ctx, ds, opts...).
type Options struct {
	// Epsilon is the total differential-privacy budget.
	Epsilon float64
	// Beta splits the budget between network learning (βε) and
	// distribution learning ((1−β)ε). 0 means DefaultBeta.
	Beta float64
	// Theta is the θ-usefulness threshold steering model capacity.
	// 0 means DefaultTheta.
	Theta float64
	// Score selects the score function; the zero value ScoreAuto picks
	// the paper's recommendation for the data.
	Score ScoreFunction
	// Degree forces the network degree k on all-binary data; <= 0
	// selects k by θ-usefulness.
	Degree int
	// DisableHierarchy turns off taxonomy-tree generalization even when
	// attributes define hierarchies (the paper's "vanilla" encoding).
	DisableHierarchy bool
	// Consistency enables the mutual-consistency post-processing of the
	// noisy marginals (footnote 1 of the paper); costs no privacy.
	Consistency bool
	// Parallelism bounds the worker pool; <= 0 uses all CPU cores, 1
	// forces the serial code paths (see WithParallelism).
	Parallelism int
	// ScorerCacheSize bounds the score memo built during Fit (see
	// WithScorerCache). <= 0 keeps it unbounded.
	ScorerCacheSize int
	// Rand is the randomness source; required.
	Rand *rand.Rand
}

// toConfig maps the v1 struct onto the v2 option set — the only place
// zero-value sniffing survives, as the shim's documented compatibility
// mapping (Beta/Theta 0 → the defaults, Score zero → auto).
func (o Options) toConfig() (config, error) {
	if o.Rand == nil {
		return config{}, errors.New("privbayes: Options.Rand is required")
	}
	c := defaultConfig()
	c.epsilon, c.epsilonSet = o.Epsilon, true
	if o.Beta != 0 {
		c.beta = o.Beta
	}
	if o.Theta != 0 {
		c.theta = o.Theta
	}
	c.score = o.Score
	c.degree = o.Degree
	c.hierarchy = !o.DisableHierarchy
	c.consistency = o.Consistency
	c.parallelism = o.Parallelism
	c.cacheSize = o.ScorerCacheSize
	return c, nil
}

// toCoreV1 resolves the v1 struct for ds, keeping o.Rand as the
// generator so shim output is byte-identical to the v1 releases.
func (o Options) toCoreV1(ds *Dataset) (core.Options, error) {
	c, err := o.toConfig()
	if err != nil {
		return core.Options{}, err
	}
	// A placeholder seed satisfies toCore's source resolution; the v1
	// generator then replaces it wholesale.
	c.source = NewSource(0)
	opt, err := c.toCore(ds)
	if err != nil {
		return core.Options{}, err
	}
	opt.Rand = o.Rand
	return opt, nil
}

// FitV1 is the v1 fitting entry point: no context, raw *rand.Rand,
// struct options. It is a thin shim over the v2 pipeline with
// bit-identical output for a fixed o.Rand state.
//
// Deprecated: use Fit(ctx, ds, opts...).
func FitV1(ds *Dataset, o Options) (*Model, error) {
	opt, err := o.toCoreV1(ds)
	if err != nil {
		return nil, err
	}
	return core.Fit(ds, opt)
}

// SynthesizeV1 is the v1 fit-and-sample entry point: it fits a model
// and samples a synthetic dataset with the same number of rows as the
// input, consuming o.Rand across both phases exactly as v1 did, so
// output is byte-identical for a fixed seed.
//
// Deprecated: use Synthesize(ctx, ds, opts...), or fit once and stream
// with Model.Synthesize / Model.SynthesizeTo.
func SynthesizeV1(ds *Dataset, o Options) (*Dataset, error) {
	m, err := FitV1(ds, o)
	if err != nil {
		return nil, err
	}
	return m.SampleP(ds.N(), o.Rand, o.Parallelism), nil
}
