package privbayes

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"testing"
)

func toyData(n int, seed int64) *Dataset {
	attrs := []Attribute{
		NewCategorical("a", []string{"0", "1"}),
		NewCategorical("b", []string{"0", "1"}),
		NewContinuous("c", 0, 8, 4),
	}
	ds := NewDataset(attrs)
	rng := rand.New(rand.NewSource(seed))
	rec := make([]uint16, 3)
	for i := 0; i < n; i++ {
		a := rng.Intn(2)
		b := a
		if rng.Float64() < 0.15 {
			b = 1 - a
		}
		rec[0], rec[1], rec[2] = uint16(a), uint16(b), uint16(rng.Intn(4))
		ds.Append(rec)
	}
	return ds
}

func TestSynthesizeRoundTrip(t *testing.T) {
	ds := toyData(5000, 1)
	syn, err := Synthesize(context.Background(), ds, WithEpsilon(1), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if syn.N() != ds.N() || syn.D() != ds.D() {
		t.Fatalf("synthetic shape %dx%d", syn.N(), syn.D())
	}
}

func TestSynthesizePreservesStrongCorrelation(t *testing.T) {
	ds := toyData(20000, 3)
	syn, err := Synthesize(context.Background(), ds, WithEpsilon(2), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	agree := func(d *Dataset) float64 {
		c := 0
		for r := 0; r < d.N(); r++ {
			if d.Value(r, 0) == d.Value(r, 1) {
				c++
			}
		}
		return float64(c) / float64(d.N())
	}
	real, got := agree(ds), agree(syn)
	if math.Abs(real-got) > 0.05 {
		t.Errorf("P(a=b): real %v, synthetic %v", real, got)
	}
}

func TestFitRequiresEpsilon(t *testing.T) {
	ds := toyData(100, 5)
	if _, err := Fit(context.Background(), ds, WithSeed(1)); err == nil {
		t.Fatal("missing WithEpsilon must error")
	}
}

func TestFitRejectsBadEpsilon(t *testing.T) {
	ds := toyData(100, 6)
	if _, err := Fit(context.Background(), ds, WithEpsilon(0), WithSeed(1)); err == nil {
		t.Fatal("zero epsilon must error")
	}
	if _, err := Fit(context.Background(), ds, WithEpsilon(-1), WithSeed(1)); err == nil {
		t.Fatal("negative epsilon must error")
	}
}

func TestFitRejectsBadOptions(t *testing.T) {
	ds := toyData(100, 6)
	cases := map[string][]Option{
		"beta 0":      {WithEpsilon(1), WithBeta(0)},
		"beta 1":      {WithEpsilon(1), WithBeta(1)},
		"theta 0":     {WithEpsilon(1), WithTheta(0)},
		"score junk":  {WithEpsilon(1), WithScore(ScoreFunction(42))},
		"score F gen": {WithEpsilon(1), WithScore(ScoreF)}, // non-binary data
	}
	for name, opts := range cases {
		if _, err := Fit(context.Background(), ds, opts...); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestExplicitScoreOverride(t *testing.T) {
	ds := toyData(500, 7)
	m, err := Fit(context.Background(), ds, WithEpsilon(1), WithScore(ScoreMI), WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	if ModelScore(m) != ScoreMI {
		t.Errorf("score = %v, want MI", ModelScore(m))
	}
}

func TestBinaryDataUsesFAutomatically(t *testing.T) {
	attrs := []Attribute{
		NewCategorical("a", []string{"0", "1"}),
		NewCategorical("b", []string{"0", "1"}),
	}
	ds := NewDataset(attrs)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		ds.Append([]uint16{uint16(rng.Intn(2)), uint16(rng.Intn(2))})
	}
	m, err := Fit(context.Background(), ds, WithEpsilon(1), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if ModelScore(m) != ScoreF {
		t.Errorf("all-binary data should default to score F, got %v", ModelScore(m))
	}
}

func TestGeneralDataUsesRAutomatically(t *testing.T) {
	ds := toyData(500, 10)
	m, err := Fit(context.Background(), ds, WithEpsilon(1), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if ModelScore(m) != ScoreR {
		t.Errorf("general data should default to score R, got %v", ModelScore(m))
	}
}

func TestModelSampleArbitrarySize(t *testing.T) {
	ds := toyData(2000, 12)
	m, err := Fit(context.Background(), ds, WithEpsilon(1), WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	syn := m.Sample(123, rand.New(rand.NewSource(13)))
	if syn.N() != 123 {
		t.Errorf("sample size %d, want 123", syn.N())
	}
}

func TestSaveLoadModel(t *testing.T) {
	ds := toyData(2000, 20)
	m, err := Fit(context.Background(), ds, WithEpsilon(1), WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveModel(&buf, m, 1.0); err != nil {
		t.Fatal(err)
	}
	back, eps, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if eps != 1.0 {
		t.Errorf("epsilon metadata = %v", eps)
	}
	syn := back.Sample(100, rand.New(rand.NewSource(22)))
	if syn.N() != 100 || syn.D() != ds.D() {
		t.Errorf("reloaded model sample shape %dx%d", syn.N(), syn.D())
	}
}

func TestConsistencyOptionRuns(t *testing.T) {
	ds := toyData(3000, 22)
	syn, err := Synthesize(context.Background(), ds,
		WithEpsilon(0.2), WithConsistency(true), WithSeed(23))
	if err != nil {
		t.Fatal(err)
	}
	if syn.N() != ds.N() {
		t.Error("consistency run lost rows")
	}
}

func TestCryptoDefaultSourceStillDeterministicPerRun(t *testing.T) {
	// Without a seed the run draws a cryptographic source; two runs
	// should (overwhelmingly) differ, while a captured CryptoSource
	// replays exactly.
	src := CryptoSource()
	ds := toyData(2000, 30)
	a, err := Fit(context.Background(), ds, WithEpsilon(1), WithSource(src))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(context.Background(), ds, WithEpsilon(1), WithSource(src))
	if err != nil {
		t.Fatal(err)
	}
	var ab, bb bytes.Buffer
	SaveModel(&ab, a, 1)
	SaveModel(&bb, b, 1)
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Error("same CryptoSource must replay to an identical model")
	}
	if NewSource(src.Seed()).Seed() != src.Seed() {
		t.Error("Seed round-trip")
	}
}

func TestFitterReuseAndOverrides(t *testing.T) {
	f, err := NewFitter(WithEpsilon(1), WithSeed(40))
	if err != nil {
		t.Fatal(err)
	}
	ds := toyData(2000, 41)
	a, err := f.Fit(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	// The per-call override changes only what it names.
	b, err := f.Fit(context.Background(), ds, WithSeed(40))
	if err != nil {
		t.Fatal(err)
	}
	var ab, bb bytes.Buffer
	SaveModel(&ab, a, 1)
	SaveModel(&bb, b, 1)
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Error("identical fitter options must reproduce the model")
	}
	if _, err := NewFitter(WithBeta(0.3)); err == nil {
		t.Error("NewFitter without WithEpsilon must error")
	}
}

func TestSessionSharesScoreCache(t *testing.T) {
	ds := toyData(4000, 50)
	s, err := NewSession(ds, WithEpsilon(1))
	if err != nil {
		t.Fatal(err)
	}
	if s.Dataset() != ds {
		t.Fatal("Dataset accessor")
	}
	// Two fits with different seeds share one scorer; results must
	// match independent fits with the same seeds exactly.
	for _, seed := range []int64{51, 52} {
		got, err := s.Fit(context.Background(), WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		want, err := Fit(context.Background(), ds, WithEpsilon(1), WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		var gb, wb bytes.Buffer
		SaveModel(&gb, got, 1)
		SaveModel(&wb, want, 1)
		if !bytes.Equal(gb.Bytes(), wb.Bytes()) {
			t.Errorf("seed %d: session fit differs from standalone fit", seed)
		}
	}
	syn, err := s.Synthesize(context.Background(), 500, WithSeed(53))
	if err != nil {
		t.Fatal(err)
	}
	if syn.N() != 500 {
		t.Errorf("session synthesize rows = %d", syn.N())
	}
}

func TestProgressEventsOrdered(t *testing.T) {
	ds := toyData(3000, 60)
	var events []Progress
	_, err := Synthesize(context.Background(), ds,
		WithEpsilon(1), WithSeed(61),
		WithProgress(func(p Progress) { events = append(events, p) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	phases := map[Phase]bool{}
	last := map[Phase]int{}
	for _, e := range events {
		phases[e.Phase] = true
		if e.Done < last[e.Phase] {
			t.Fatalf("phase %v: Done went backwards (%d after %d)", e.Phase, e.Done, last[e.Phase])
		}
		last[e.Phase] = e.Done
		if e.Done > e.Total {
			t.Fatalf("phase %v: Done %d > Total %d", e.Phase, e.Done, e.Total)
		}
	}
	for _, ph := range []Phase{PhaseNetwork, PhaseMarginals, PhaseSampling} {
		if !phases[ph] {
			t.Errorf("phase %v never reported", ph)
		}
		if last[ph] == 0 {
			t.Errorf("phase %v never completed a unit", ph)
		}
	}
	if last[PhaseSampling] != ds.N() {
		t.Errorf("sampling reported %d of %d rows", last[PhaseSampling], ds.N())
	}
}
