package privbayes

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func toyData(n int, seed int64) *Dataset {
	attrs := []Attribute{
		NewCategorical("a", []string{"0", "1"}),
		NewCategorical("b", []string{"0", "1"}),
		NewContinuous("c", 0, 8, 4),
	}
	ds := NewDataset(attrs)
	rng := rand.New(rand.NewSource(seed))
	rec := make([]uint16, 3)
	for i := 0; i < n; i++ {
		a := rng.Intn(2)
		b := a
		if rng.Float64() < 0.15 {
			b = 1 - a
		}
		rec[0], rec[1], rec[2] = uint16(a), uint16(b), uint16(rng.Intn(4))
		ds.Append(rec)
	}
	return ds
}

func TestSynthesizeRoundTrip(t *testing.T) {
	ds := toyData(5000, 1)
	rng := rand.New(rand.NewSource(2))
	syn, err := Synthesize(ds, Options{Epsilon: 1, Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	if syn.N() != ds.N() || syn.D() != ds.D() {
		t.Fatalf("synthetic shape %dx%d", syn.N(), syn.D())
	}
}

func TestSynthesizePreservesStrongCorrelation(t *testing.T) {
	ds := toyData(20000, 3)
	rng := rand.New(rand.NewSource(4))
	syn, err := Synthesize(ds, Options{Epsilon: 2, Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	agree := func(d *Dataset) float64 {
		c := 0
		for r := 0; r < d.N(); r++ {
			if d.Value(r, 0) == d.Value(r, 1) {
				c++
			}
		}
		return float64(c) / float64(d.N())
	}
	real, got := agree(ds), agree(syn)
	if math.Abs(real-got) > 0.05 {
		t.Errorf("P(a=b): real %v, synthetic %v", real, got)
	}
}

func TestFitRequiresRand(t *testing.T) {
	ds := toyData(100, 5)
	if _, err := Fit(ds, Options{Epsilon: 1}); err == nil {
		t.Fatal("missing Rand must error")
	}
}

func TestFitRejectsBadEpsilon(t *testing.T) {
	ds := toyData(100, 6)
	if _, err := Fit(ds, Options{Epsilon: 0, Rand: rand.New(rand.NewSource(1))}); err == nil {
		t.Fatal("zero epsilon must error")
	}
}

func TestExplicitScoreOverride(t *testing.T) {
	ds := toyData(500, 7)
	rng := rand.New(rand.NewSource(8))
	m, err := Fit(ds, Options{Epsilon: 1, Score: ScoreMI, ScoreSet: true, Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	if m.Score != ScoreMI {
		t.Errorf("score = %v, want MI", m.Score)
	}
}

func TestBinaryDataUsesFAutomatically(t *testing.T) {
	attrs := []Attribute{
		NewCategorical("a", []string{"0", "1"}),
		NewCategorical("b", []string{"0", "1"}),
	}
	ds := NewDataset(attrs)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		ds.Append([]uint16{uint16(rng.Intn(2)), uint16(rng.Intn(2))})
	}
	m, err := Fit(ds, Options{Epsilon: 1, Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	if m.Score != ScoreF {
		t.Errorf("all-binary data should default to score F, got %v", m.Score)
	}
}

func TestGeneralDataUsesRAutomatically(t *testing.T) {
	ds := toyData(500, 10)
	rng := rand.New(rand.NewSource(11))
	m, err := Fit(ds, Options{Epsilon: 1, Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	if m.Score != ScoreR {
		t.Errorf("general data should default to score R, got %v", m.Score)
	}
}

func TestModelSampleArbitrarySize(t *testing.T) {
	ds := toyData(2000, 12)
	rng := rand.New(rand.NewSource(13))
	m, err := Fit(ds, Options{Epsilon: 1, Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	syn := m.Sample(123, rng)
	if syn.N() != 123 {
		t.Errorf("sample size %d, want 123", syn.N())
	}
}

func TestSaveLoadModel(t *testing.T) {
	ds := toyData(2000, 20)
	rng := rand.New(rand.NewSource(21))
	m, err := Fit(ds, Options{Epsilon: 1, Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveModel(&buf, m, 1.0); err != nil {
		t.Fatal(err)
	}
	back, eps, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if eps != 1.0 {
		t.Errorf("epsilon metadata = %v", eps)
	}
	syn := back.Sample(100, rng)
	if syn.N() != 100 || syn.D() != ds.D() {
		t.Errorf("reloaded model sample shape %dx%d", syn.N(), syn.D())
	}
}

func TestConsistencyOptionRuns(t *testing.T) {
	ds := toyData(3000, 22)
	rng := rand.New(rand.NewSource(23))
	syn, err := Synthesize(ds, Options{Epsilon: 0.2, Consistency: true, Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	if syn.N() != ds.N() {
		t.Error("consistency run lost rows")
	}
}
