package privbayes

import (
	"privbayes/internal/core"
	"privbayes/internal/infer"
)

// The v2 query API: exact inference over a fitted model, no sampling.
// Build a Query with Marginal, Conditional, Prob or Count, refine it
// with AtLevel / Given, and answer it with Model.Query:
//
//	res, err := model.Query(ctx,
//		privbayes.Conditional([]string{"income"}, privbayes.Eq("education", "phd")),
//		privbayes.QueryMaxCells(1<<20),
//	)
//
// Answers are computed by variable elimination over the released
// conditional tables (internal/infer): exact under the model, free of
// sampling error, and — because the model is the ε-DP release — free of
// further privacy cost.

// Query is one exact inference request against a fitted model.
type Query = core.Query

// QueryKind discriminates the query AST.
type QueryKind = core.QueryKind

// Query kinds.
const (
	QueryMarginal    = core.QueryMarginal
	QueryConditional = core.QueryConditional
	QueryProb        = core.QueryProb
	QueryCount       = core.QueryCount
)

// AttrRef names one target axis of a query, optionally rolled up to a
// taxonomy level.
type AttrRef = core.AttrRef

// Predicate constrains one attribute to a set of values.
type Predicate = core.Predicate

// QueryResult is the answer to a Query: a dense distribution for
// marginal/conditional queries, a scalar for prob/count queries.
type QueryResult = core.QueryResult

// QueryOption configures Model.Query in the functional-option style of
// the v2 API.
type QueryOption = core.QueryOption

// ErrQueryTooLarge tags rejection of a query whose intermediate
// inference factor would exceed the cell cap (see QueryMaxCells);
// callers branch on errors.Is to fall back to sampling.
var ErrQueryTooLarge = infer.ErrTooLarge

// ErrImpossibleEvidence reports a conditional query whose evidence has
// zero probability under the model.
var ErrImpossibleEvidence = core.ErrImpossibleEvidence

// Marginal builds a marginal query P(attrs...).
func Marginal(attrs ...string) Query { return core.Marginal(attrs...) }

// Conditional builds a conditional query P(targets... | given...).
func Conditional(targets []string, given ...Predicate) Query {
	return core.Conditional(targets, given...)
}

// Prob builds a scalar probability query P(where...).
func Prob(where ...Predicate) Query { return core.Prob(where...) }

// Count builds an expected-count query n · P(where...).
func Count(n int, where ...Predicate) Query { return core.Count(n, where...) }

// Eq builds an equality predicate attr = value.
func Eq(attr, value string) Predicate { return core.Eq(attr, value) }

// In builds a set-membership predicate attr ∈ {values...}.
func In(attr string, values ...string) Predicate { return core.In(attr, values...) }

// QueryMaxCells caps the intermediate inference factor; <= 0 selects
// the default bound. Over-cap queries fail with an error wrapping
// ErrQueryTooLarge rather than allocating.
func QueryMaxCells(cells int) QueryOption { return core.QueryMaxCells(cells) }

// QueryParallelism bounds the workers fanning out large factor
// products; <= 0 uses all CPU cores. Every setting returns
// bit-identical answers.
func QueryParallelism(p int) QueryOption { return core.QueryParallelism(p) }
