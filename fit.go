package privbayes

import (
	"context"
	"fmt"
	"sync"

	"privbayes/internal/core"
	"privbayes/internal/score"
)

// Fit learns a PrivBayes model from the dataset under ε-differential
// privacy — the context-first v2 entry point.
//
// ctx cancels the fit: network learning stops within one scoring
// batch, marginal materialization within one joint, worker pools drain
// without leaking goroutines, and the call returns ctx.Err(). WithSeed
// (or WithSource) makes the run deterministically replayable; without
// it a fresh cryptographic seed is drawn.
//
//	model, err := privbayes.Fit(ctx, ds,
//		privbayes.WithEpsilon(1.0),
//		privbayes.WithSeed(7),
//	)
func Fit(ctx context.Context, ds *Dataset, opts ...Option) (*Model, error) {
	opt, err := resolve(opts).toCore(ds)
	if err != nil {
		return nil, err
	}
	return core.FitContext(ctx, ds, opt)
}

// Synthesize fits a model and materializes a synthetic dataset with
// the same number of rows as the input; the combined release satisfies
// ε-differential privacy (Theorem 3.2 of the paper). For unbounded row
// counts or bounded memory, fit once and stream from the model instead
// (Model.Synthesize / Model.SynthesizeTo).
func Synthesize(ctx context.Context, ds *Dataset, opts ...Option) (*Dataset, error) {
	opt, err := resolve(opts).toCore(ds)
	if err != nil {
		return nil, err
	}
	return core.SynthesizeContext(ctx, ds, opt)
}

// Fitter is a reusable, immutable bundle of fitting options — build it
// once, fit many datasets. A Fitter is safe for concurrent use: it
// holds no mutable state, and each Fit derives its own generator from
// the configured source.
type Fitter struct {
	cfg config
}

// NewFitter validates the options and returns a Fitter. Options that
// depend on the dataset (score/schema compatibility) are checked at
// Fit time.
func NewFitter(opts ...Option) (*Fitter, error) {
	cfg := resolve(opts)
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Fitter{cfg: cfg}, nil
}

// Fit learns a model from ds under the fitter's options; per-call
// opts override them (e.g. a per-run WithSeed or WithEpsilon).
func (f *Fitter) Fit(ctx context.Context, ds *Dataset, opts ...Option) (*Model, error) {
	opt, err := f.cfg.merge(opts).toCore(ds)
	if err != nil {
		return nil, err
	}
	return core.FitContext(ctx, ds, opt)
}

// Synthesize fits and samples ds.N() rows, like the package-level
// Synthesize, under the fitter's options plus per-call overrides.
func (f *Fitter) Synthesize(ctx context.Context, ds *Dataset, opts ...Option) (*Dataset, error) {
	opt, err := f.cfg.merge(opts).toCore(ds)
	if err != nil {
		return nil, err
	}
	return core.SynthesizeContext(ctx, ds, opt)
}

// Session binds a Fitter to one dataset for repeated fitting — the
// serving workload, where one sensitive table is fitted many times
// under different budgets, seeds or scores. The session shares one
// score cache per score function across all of its fits: scores are
// pure functions of the data, so every fit after the first skips the
// scan-heavy candidate evaluations the cache already holds (the
// shared-scan engine's parent-configuration indexes included).
//
// A Session is safe for concurrent use; cache sharing is internally
// synchronized and never changes results, only recompute cost.
func (f *Fitter) Session(ds *Dataset) *Session {
	return &Session{cfg: f.cfg, ds: ds, scorers: map[score.Function]*score.Scorer{}}
}

// NewSession is shorthand for NewFitter(opts...).Session(ds).
func NewSession(ds *Dataset, opts ...Option) (*Session, error) {
	f, err := NewFitter(opts...)
	if err != nil {
		return nil, err
	}
	return f.Session(ds), nil
}

// Session is a dataset-bound Fitter with shared score caches. See
// Fitter.Session.
type Session struct {
	cfg config
	ds  *Dataset

	mu      sync.Mutex
	scorers map[score.Function]*score.Scorer
}

// Dataset returns the sensitive dataset the session fits.
func (s *Session) Dataset() *Dataset { return s.ds }

// Fit learns a model from the session's dataset; per-call opts
// override the session options. Each call is an independent ε-DP
// release — budget accounting across calls is the caller's concern
// (privbayesd meters it with a persistent ledger).
func (s *Session) Fit(ctx context.Context, opts ...Option) (*Model, error) {
	opt, err := s.cfg.merge(opts).toCore(s.ds)
	if err != nil {
		return nil, err
	}
	opt.Scorer = s.scorer(opt.Score, opt.ScorerCacheSize)
	return core.FitContext(ctx, s.ds, opt)
}

// Synthesize fits and samples n rows (n <= 0 means the dataset's row
// count) in one call under the session's options plus overrides.
func (s *Session) Synthesize(ctx context.Context, n int, opts ...Option) (*Dataset, error) {
	cfg := s.cfg.merge(opts)
	opt, err := cfg.toCore(s.ds)
	if err != nil {
		return nil, err
	}
	opt.Scorer = s.scorer(opt.Score, opt.ScorerCacheSize)
	m, err := core.FitContext(ctx, s.ds, opt)
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		n = s.ds.N()
	}
	return m.SampleContextProgress(ctx, n, opt.Rand, opt.Parallelism, opt.Progress)
}

// scorer returns the session's shared scorer for fn, creating it on
// first use. The first caller's cache bound wins; later differing
// bounds only affect their own recompute cost, never results.
func (s *Session) scorer(fn score.Function, cacheSize int) *score.Scorer {
	s.mu.Lock()
	defer s.mu.Unlock()
	sc, ok := s.scorers[fn]
	if !ok {
		sc = score.NewScorerSized(fn, s.ds, cacheSize)
		s.scorers[fn] = sc
	}
	return sc
}

// ModelScore reports which score function selected the model's
// network, as a facade enum (never ScoreAuto).
func ModelScore(m *Model) ScoreFunction {
	switch m.Score {
	case score.MI:
		return ScoreMI
	case score.F:
		return ScoreF
	case score.R:
		return ScoreR
	default:
		panic(fmt.Sprintf("privbayes: model carries unknown score function %d", int(m.Score)))
	}
}
