// Quickstart: build a small dataset in code, release a differentially
// private synthetic copy with the top-level API, and compare a few
// statistics before and after.
package main

import (
	"context"
	"fmt"
	"math/rand"

	"privbayes"
)

func main() {
	// A toy HR table: four attributes, one of them continuous.
	attrs := []privbayes.Attribute{
		privbayes.NewCategorical("department", []string{"eng", "sales", "support", "hr"}),
		privbayes.NewCategorical("remote", []string{"no", "yes"}),
		privbayes.NewCategorical("senior", []string{"no", "yes"}),
		privbayes.NewContinuous("salary", 40_000, 200_000, 16),
	}
	ds := privbayes.NewDataset(attrs)

	// Populate with correlated records: engineering skews senior,
	// senior skews high salary, engineering skews remote.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20_000; i++ {
		dept := rng.Intn(4)
		senior := 0
		if rng.Float64() < 0.25+0.3*b2f(dept == 0) {
			senior = 1
		}
		remote := 0
		if rng.Float64() < 0.2+0.4*b2f(dept == 0) {
			remote = 1
		}
		salary := 50_000 + 40_000*float64(senior) + 20_000*b2f(dept == 0) + rng.Float64()*30_000
		ds.Append([]uint16{
			uint16(dept), uint16(remote), uint16(senior),
			uint16(attrs[3].Bin(salary)),
		})
	}

	// One call releases an ε-differentially-private synthetic copy.
	// The context cancels the pipeline (hook it to a signal or deadline
	// in real services); the seed makes the release replayable.
	syn, err := privbayes.Synthesize(context.Background(), ds,
		privbayes.WithEpsilon(1.0),
		privbayes.WithSeed(7),
	)
	if err != nil {
		panic(err)
	}

	fmt.Printf("input rows: %d, synthetic rows: %d (ε = 1.0)\n\n", ds.N(), syn.N())
	fmt.Println("statistic                     real    synthetic")
	show := func(name string, f func(*privbayes.Dataset) float64) {
		fmt.Printf("%-28s %6.3f    %6.3f\n", name, f(ds), f(syn))
	}
	show("P(remote)", func(d *privbayes.Dataset) float64 { return frac(d, 1, 1) })
	show("P(senior)", func(d *privbayes.Dataset) float64 { return frac(d, 2, 1) })
	show("P(senior | eng)", func(d *privbayes.Dataset) float64 { return condFrac(d, 2, 1, 0, 0) })
	show("P(senior | sales)", func(d *privbayes.Dataset) float64 { return condFrac(d, 2, 1, 0, 1) })
	show("P(salary top half)", func(d *privbayes.Dataset) float64 {
		c := 0
		for r := 0; r < d.N(); r++ {
			if d.Value(r, 3) >= 8 {
				c++
			}
		}
		return float64(c) / float64(d.N())
	})
	fmt.Println("\nThe conditional structure (seniority more likely in eng) survives")
	fmt.Println("the private release, which is exactly what PrivBayes is for.")
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func frac(d *privbayes.Dataset, col, val int) float64 {
	c := 0
	for r := 0; r < d.N(); r++ {
		if d.Value(r, col) == val {
			c++
		}
	}
	return float64(c) / float64(d.N())
}

func condFrac(d *privbayes.Dataset, col, val, givenCol, givenVal int) float64 {
	c, tot := 0, 0
	for r := 0; r < d.N(); r++ {
		if d.Value(r, givenCol) != givenVal {
			continue
		}
		tot++
		if d.Value(r, col) == val {
			c++
		}
	}
	if tot == 0 {
		return 0
	}
	return float64(c) / float64(tot)
}
