// Classification: train multiple SVM classifiers from one private
// release — the paper's second evaluation task (Section 6.6). Four
// classifiers are trained on a single synthetic dataset released from
// Adult-shaped census data, and compared against training on the real
// data with no privacy.
package main

import (
	"context"
	"fmt"
	"math/rand"

	"privbayes"
	"privbayes/internal/data"
	"privbayes/internal/svm"
	"privbayes/internal/workload"
)

func main() {
	spec, _ := data.ByName("Adult")
	ds := spec.GenerateN(20_000)
	rng := rand.New(rand.NewSource(3))
	train, test := ds.Split(0.8, rng)
	fmt.Printf("dataset: Adult-shaped, %d train / %d test rows\n", train.N(), test.N())

	// One private release serves all four downstream tasks — no extra
	// privacy cost per classifier.
	const eps = 0.8
	syn, err := privbayes.Synthesize(context.Background(), train,
		privbayes.WithEpsilon(eps), privbayes.WithSeed(4))
	if err != nil {
		panic(err)
	}
	fmt.Printf("released one synthetic dataset under ε = %g\n\n", eps)

	tasks, err := workload.Tasks("Adult")
	if err != nil {
		panic(err)
	}
	fmt.Println("task        synthetic-MCR   real-data-MCR")
	for _, task := range tasks {
		target, err := task.TargetIndex(train)
		if err != nil {
			panic(err)
		}
		testProb := svm.Featurize(test, target, task.Positive)

		synProb := svm.Featurize(syn, target, task.Positive)
		mSyn := svm.TrainHinge(synProb, 1, 3, rng)

		realProb := svm.Featurize(train, target, task.Positive)
		mReal := svm.TrainHinge(realProb, 1, 3, rng)

		fmt.Printf("%-12s %12.3f   %13.3f\n", task.Name,
			svm.MisclassificationRate(mSyn, testProb),
			svm.MisclassificationRate(mReal, testProb))
	}
	fmt.Println("\nAll four classifiers come from the same ε-DP release; methods that")
	fmt.Println("train classifiers directly must split ε across tasks.")
}
