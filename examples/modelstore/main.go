// Modelstore: fit once, persist the private model, reload it later and
// answer queries two ways — by resampling synthetic data and by exact
// inference on the model (the Section 7 extension). Demonstrates that
// the stored artifact is the ε-DP release itself: no sensitive data is
// ever written.
package main

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"

	"privbayes"
	"privbayes/internal/data"
	"privbayes/internal/marginal"
	"privbayes/internal/workload"
)

func main() {
	spec, _ := data.ByName("BR2000")
	ds := spec.GenerateN(15_000)
	rng := rand.New(rand.NewSource(17))

	const eps = 0.8
	model, err := privbayes.Fit(context.Background(), ds,
		privbayes.WithEpsilon(eps), privbayes.WithSeed(17))
	if err != nil {
		panic(err)
	}

	// Persist and reload — in a real deployment this buffer is a file
	// handed to the analyst; the curator's job ends here.
	var store bytes.Buffer
	if err := privbayes.SaveModel(&store, model, eps); err != nil {
		panic(err)
	}
	fmt.Printf("stored model: %d bytes of JSON (the ε = %g release itself)\n\n", store.Len(), eps)

	reloaded, storedEps, err := privbayes.LoadModel(&store)
	if err != nil {
		panic(err)
	}
	fmt.Printf("reloaded model fitted under ε = %g\n", storedEps)

	// Answer a 2-way marginal three ways.
	gender := ds.AttrIndex("gender")
	car := ds.AttrIndex("car")
	vars := []marginal.Var{{Attr: gender}, {Attr: car}}
	truth := marginal.Materialize(ds, vars)

	syn := reloaded.Sample(ds.N(), rng)
	sampled := marginal.Materialize(syn, vars)

	res, err := reloaded.Query(context.Background(), privbayes.Marginal("gender", "car"))
	if err != nil {
		panic(err)
	}
	inferred := res.Table()

	fmt.Printf("\nPr[gender, car]            sensitive   sampled   inferred\n")
	labels := []string{"F/no", "F/yes", "M/no", "M/yes"}
	for i, l := range labels {
		fmt.Printf("  %-22s %9.4f %9.4f %10.4f\n", l, truth.P[i], sampled.P[i], inferred.P[i])
	}
	fmt.Printf("\nTVD to sensitive data:  sampled %.4f, inferred %.4f\n",
		marginal.TVD(truth, sampled), marginal.TVD(truth, inferred))

	// Linear queries on the resampled release.
	queries := workload.NewLinearQueries(ds, 100, 3, rng)
	fmt.Printf("avg |error| over 100 random 3-attribute linear queries: %.4f\n",
		workload.AvgLinearQueryError(ds, syn, queries))
	fmt.Println("\nInference answers low-dimensional queries without sampling error;")
	fmt.Println("the stored model can be resampled for anything else.")
}
