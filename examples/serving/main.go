// Serving: the full privbayesd lifecycle in one process. A curator fits
// a model against a dataset's privacy budget, the daemon registers and
// persists it, and analysts stream synthetic data and run exact
// marginal queries over HTTP — then the budget runs dry and the ledger
// refuses the next fit.
//
// The example embeds the server (internal/server is exactly what
// cmd/privbayesd wraps) so it runs hermetically; point the client at a
// real `privbayesd -addr :8131` for the networked version.
package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"

	"privbayes/internal/accountant"
	"privbayes/internal/data"
	"privbayes/internal/server"
)

func main() {
	dir, err := os.MkdirTemp("", "privbayes-serving")
	check(err)
	defer os.RemoveAll(dir)

	// The daemon: model registry + worker budget + privacy ledger.
	ledger := accountant.New(1.0) // each dataset may spend ε ≤ 1 total
	srv, err := server.New(server.Config{
		ModelsDir: dir,
		Ledger:    ledger,
		Logf:      func(f string, a ...any) { fmt.Printf("  [daemon] "+f+"\n", a...) },
	})
	check(err)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go http.Serve(ln, srv)
	base := "http://" + ln.Addr().String()
	fmt.Printf("privbayesd serving on %s\n\n", base)

	c := server.NewClient(base)
	ctx := context.Background()

	// --- Curator: upload CSV + schema + ε, fit under the budget. ---
	spec, _ := data.ByName("BR2000")
	ds := spec.GenerateN(12_000)
	var csvBuf bytes.Buffer
	check(ds.WriteCSV(&csvBuf))
	seed := int64(17)
	meta, err := c.Fit(ctx, server.FitRequest{
		DatasetID: "br2000", Epsilon: 0.8, ModelID: "br2000-v1", Seed: &seed,
		Schema: server.SpecsFromAttrs(ds.Attrs()), Data: &csvBuf,
	})
	check(err)
	fmt.Printf("fitted %s under ε=%g: degree %d, score %s, %d conditional cells\n",
		meta.ID, meta.Epsilon, meta.Degree, meta.Score, meta.Cells)
	for _, p := range meta.Network[:3] {
		fmt.Printf("  %s <- %v\n", p.Child, p.Parents)
	}
	fmt.Println("  ...")

	// --- Analyst: stream synthetic rows (seeded => reproducible). ---
	stream, err := c.Synthesize(ctx, "br2000-v1", server.SynthesizeRequest{N: 50_000, Seed: &seed})
	check(err)
	sc := bufio.NewScanner(stream.Body)
	rows := -1 // header
	for sc.Scan() {
		rows++
	}
	check(sc.Err())
	stream.Close()
	fmt.Printf("\nstreamed %d synthetic rows (seed %d reproduces them byte for byte)\n", rows, stream.Seed)

	// --- Analyst: exact marginal inference, no sampling error. ---
	marg, err := c.Marginal(ctx, "br2000-v1", []string{"gender", "car"}, 0)
	check(err)
	fmt.Printf("\nPr[gender, car] by model inference:\n")
	labels := []string{"F/no", "F/yes", "M/no", "M/yes"}
	for i, l := range labels {
		fmt.Printf("  %-6s %.4f\n", l, marg.P[i])
	}

	// --- The ledger holds the line: br2000 has 0.2 of ε left. ---
	entries, err := c.Budget(ctx)
	check(err)
	e := entries["br2000"]
	fmt.Printf("\nledger: br2000 spent ε=%g of %g (%.1f remaining)\n", e.Spent, e.Budget, e.Remaining())
	var csvBuf2 bytes.Buffer
	check(ds.WriteCSV(&csvBuf2))
	_, err = c.Fit(ctx, server.FitRequest{
		DatasetID: "br2000", Epsilon: 0.8,
		Schema: server.SpecsFromAttrs(ds.Attrs()), Data: &csvBuf2,
	})
	fmt.Printf("second ε=0.8 fit refused: %v\n", err)
	fmt.Println("\nmodels and ledger persist in the models dir; a daemon restart serves the same release.")
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
