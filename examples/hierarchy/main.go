// Hierarchy: taxonomy trees and the hierarchical encoding (Section 5.1).
// Builds a dataset with a wide categorical attribute plus a taxonomy
// tree, and shows how PrivBayes picks generalized parents when the raw
// domain would violate θ-usefulness — and how accuracy compares to the
// vanilla (no-hierarchy) encoding at a small budget.
package main

import (
	"context"
	"fmt"
	"math/rand"

	"privbayes"
	"privbayes/internal/baseline"
	"privbayes/internal/workload"
)

func main() {
	// "city" has 16 values grouped into 4 regions and then 2 coasts;
	// "income" depends on the REGION, not the exact city — exactly the
	// structure a taxonomy tree lets PrivBayes exploit.
	cities := make([]string, 16)
	region := make([]int, 16)
	coast := make([]int, 16)
	for i := range cities {
		cities[i] = fmt.Sprintf("city-%02d", i)
		region[i] = i / 4
		coast[i] = i / 8
	}
	city := privbayes.NewCategorical("city", cities)
	city.Hierarchy = privbayes.NewHierarchy(16, region, coast)

	attrs := []privbayes.Attribute{
		city,
		privbayes.NewCategorical("income", []string{"low", "mid", "high"}),
		privbayes.NewCategorical("commuter", []string{"no", "yes"}),
	}

	gen := rand.New(rand.NewSource(5))
	ds := privbayes.NewDataset(attrs)
	for i := 0; i < 30_000; i++ {
		c := gen.Intn(16)
		r := c / 4
		// Income distribution varies by region; commuting by coast.
		inc := 0
		u := gen.Float64()
		switch {
		case u < 0.2+0.15*float64(r):
			inc = 2
		case u < 0.6:
			inc = 1
		}
		com := 0
		if gen.Float64() < 0.25+0.4*float64(c/8) {
			com = 1
		}
		ds.Append([]uint16{uint16(c), uint16(inc), uint16(com)})
	}

	const eps = 0.02
	eval := workload.NewEvaluator(ds, 2, 0, 0, nil)
	for _, disable := range []bool{false, true} {
		name := "hierarchical"
		if disable {
			name = "vanilla"
		}
		model, err := privbayes.Fit(context.Background(), ds,
			privbayes.WithEpsilon(eps),
			privbayes.WithHierarchy(!disable),
			privbayes.WithSeed(9),
		)
		if err != nil {
			panic(err)
		}
		syn := model.Sample(ds.N(), rand.New(rand.NewSource(10)))
		avd := eval.AVD(&baseline.Dataset{DS: syn})

		fmt.Printf("%s encoding (ε = %g):\n", name, eps)
		fmt.Printf("  learned network:\n")
		for _, pair := range model.Network.Pairs {
			x := attrs[pair.X.Attr].Name
			fmt.Printf("    %s <- ", x)
			if len(pair.Parents) == 0 {
				fmt.Print("(none)")
			}
			for _, p := range pair.Parents {
				fmt.Printf("%s(level %d) ", attrs[p.Attr].Name, p.Level)
			}
			fmt.Println()
		}
		fmt.Printf("  avg variation distance over all 2-way marginals: %.4f\n\n", avd)
	}
	fmt.Println("With the taxonomy tree, PrivBayes can keep a coarse version of the")
	fmt.Println("wide city attribute as a parent instead of dropping it entirely.")
}
