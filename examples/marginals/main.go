// Marginals: the paper's count-query workload on the NLTCS-shaped
// survey data. Releases a synthetic dataset at several privacy budgets
// and reports the average variation distance of all 3-way marginals,
// next to the naive Laplace baseline — a miniature of Figure 12(a).
package main

import (
	"context"
	"fmt"
	"math/rand"

	"privbayes"
	"privbayes/internal/baseline"
	"privbayes/internal/data"
	"privbayes/internal/workload"
)

func main() {
	spec, _ := data.ByName("NLTCS")
	ds := spec.GenerateN(10_000)
	fmt.Printf("dataset: %s-shaped, %d rows, %d binary attributes\n\n", spec.Name, ds.N(), ds.D())

	eval := workload.NewEvaluator(ds, 3, 0, 0, nil) // all C(16,3) = 560 subsets
	fmt.Println("epsilon   PrivBayes-AVD   Laplace-AVD   Uniform-AVD")
	uniform := eval.AVD(&baseline.Uniform{DS: ds})
	for _, eps := range []float64{0.1, 0.4, 1.6} {
		rng := rand.New(rand.NewSource(11))
		syn, err := privbayes.Synthesize(context.Background(), ds,
			privbayes.WithEpsilon(eps), privbayes.WithSeed(11))
		if err != nil {
			panic(err)
		}
		pb := eval.AVD(&baseline.Dataset{DS: syn})
		lap := eval.AVD(baseline.NewLaplace(ds, 3, eps, rng))
		fmt.Printf("%7.2f   %13.4f   %11.4f   %11.4f\n", eps, pb, lap, uniform)
	}
	fmt.Println("\nPrivBayes degrades gracefully as ε shrinks; Laplace noise drowns")
	fmt.Println("the 560-marginal workload long before that.")
}
