package privbayes

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"privbayes/internal/dataset"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestFitScannerMatchesFit is the out-of-core contract at the facade:
// a fit that only ever sees chunked scans of a CSV file produces the
// byte-identical model an in-memory fit produces from the same rows,
// for the same seed — across chunk sizes and parallelism settings,
// and for both the in-memory-source and on-disk-source paths.
func TestFitScannerMatchesFit(t *testing.T) {
	ds := toyData(8000, 17)
	path := filepath.Join(t.TempDir(), "rows.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	for _, par := range []int{1, 2} {
		want, err := Fit(context.Background(), ds, WithEpsilon(1), WithSeed(5), WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		wantB := modelBytes(t, want)
		for _, chunk := range []int{500, 4096, 0} {
			got, err := FitScanner(context.Background(), CSVSource(path, ds.Attrs(), chunk),
				WithEpsilon(1), WithSeed(5), WithParallelism(par))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(modelBytes(t, got), wantB) {
				t.Errorf("CSV scanner fit (chunk %d, parallelism %d) differs from in-memory fit", chunk, par)
			}
			got, err = FitScanner(context.Background(), DatasetSource(ds, chunk),
				WithEpsilon(1), WithSeed(5), WithParallelism(par))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(modelBytes(t, got), wantB) {
				t.Errorf("dataset scanner fit (chunk %d, parallelism %d) differs from in-memory fit", chunk, par)
			}
		}
	}
}

// TestFitScannerJSONLMatchesCSV: the two file formats feed the same
// pipeline, so they fit the same model from the same rows and seed.
func TestFitScannerJSONLMatchesCSV(t *testing.T) {
	ds := toyData(4000, 23)
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "rows.csv")
	jsonlPath := filepath.Join(dir, "rows.jsonl")
	cf, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteCSV(cf); err != nil {
		t.Fatal(err)
	}
	cf.Close()
	jf, err := os.Create(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	jw := dataset.NewJSONLWriter(jf, ds.Attrs())
	if err := jw.WriteRows(ds, 0, ds.N()); err != nil {
		t.Fatal(err)
	}
	jf.Close()

	a, err := FitScanner(context.Background(), CSVSource(csvPath, ds.Attrs(), 700), WithEpsilon(1), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitScanner(context.Background(), JSONLSource(jsonlPath, ds.Attrs(), 1300), WithEpsilon(1), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(modelBytes(t, a), modelBytes(t, b)) {
		t.Error("JSONL scanner fit differs from CSV scanner fit")
	}
}

// TestFitScannerErrors covers the facade failure paths: bad options,
// missing file, cancellation.
func TestFitScannerErrors(t *testing.T) {
	attrs := []Attribute{NewCategorical("a", []string{"0", "1"})}
	src := CSVSource(filepath.Join(t.TempDir(), "absent.csv"), attrs, 0)
	if _, err := FitScanner(context.Background(), src); err == nil {
		t.Error("missing WithEpsilon accepted")
	}
	if _, err := FitScanner(context.Background(), src, WithEpsilon(1)); err == nil {
		t.Error("missing file accepted")
	}
	ds := toyData(2000, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FitScanner(ctx, DatasetSource(ds, 100), WithEpsilon(1), WithSeed(1)); err == nil {
		t.Error("cancelled context accepted")
	}
}

// TestFitScannerMillionRowsBoundedMemory is the acceptance bound of the
// out-of-core path: fitting a 1M-row CSV keeps peak heap bounded by
// the chunk size (here 8192 rows ≈ 100 KiB materialized at a time),
// not the row count — materializing the file's columns alone would
// hold 12 MiB live, and ReadCSV's decode roughly doubles that. A
// watcher goroutine samples heap usage throughout the fit and the peak
// (including uncollected decode garbage) must stay under half of the
// materialized size.
func TestFitScannerMillionRowsBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-row fit in -short mode")
	}
	const n = 1_000_000
	attrs := make([]Attribute, 6)
	for i := range attrs {
		attrs[i] = NewCategorical(fmt.Sprintf("a%d", i), []string{"0", "1"})
	}
	path := filepath.Join(t.TempDir(), "big.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	fmt.Fprintln(w, "a0,a1,a2,a3,a4,a5")
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		a := rng.Intn(2)
		b := a
		if rng.Float64() < 0.1 {
			b = 1 - a
		}
		fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d\n", a, b, rng.Intn(2), rng.Intn(2), rng.Intn(2), rng.Intn(2))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	var peak atomic.Uint64
	done := make(chan struct{})
	go func() {
		var ms runtime.MemStats
		for {
			select {
			case <-done:
				return
			default:
			}
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak.Load() {
				peak.Store(ms.HeapAlloc)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	m, err := FitScanner(context.Background(), CSVSource(path, attrs, 8192),
		WithEpsilon(1), WithSeed(7), WithDegree(2), WithParallelism(2))
	close(done)
	if err != nil {
		t.Fatal(err)
	}
	if m.Network.Degree() > 2 || len(m.Network.Pairs) != len(attrs) {
		t.Fatalf("unexpected model shape: degree %d, %d pairs", m.Network.Degree(), len(m.Network.Pairs))
	}

	growth := int64(peak.Load()) - int64(base.HeapAlloc)
	const materialized = int64(n * 6 * 2) // 12 MiB of uint16 columns
	if growth > materialized/2 {
		t.Errorf("peak heap growth %d bytes; want <= %d (materializing the rows would take %d)",
			growth, materialized/2, materialized)
	}
	t.Logf("1M-row scanner fit: peak heap growth %.1f MiB (materialized rows would be %.1f MiB)",
		float64(growth)/(1<<20), float64(materialized)/(1<<20))
}
