package privbayes_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"

	"privbayes"
)

// exampleData builds a small deterministic dataset: three correlated
// categorical/continuous columns.
func exampleData() *privbayes.Dataset {
	attrs := []privbayes.Attribute{
		privbayes.NewCategorical("city", []string{"paris", "tokyo", "lima"}),
		privbayes.NewCategorical("vip", []string{"no", "yes"}),
		privbayes.NewContinuous("amount", 0, 100, 8),
	}
	ds := privbayes.NewDataset(attrs)
	rec := make([]uint16, 3)
	for i := 0; i < 5000; i++ {
		city := i % 3
		vip := 0
		if city == 0 && i%5 == 0 {
			vip = 1
		}
		rec[0], rec[1], rec[2] = uint16(city), uint16(vip), uint16((i*7)%8)
		ds.Append(rec)
	}
	return ds
}

// The v2 entry point: context first, functional options, seed-based
// randomness.
func ExampleFit() {
	ds := exampleData()
	model, err := privbayes.Fit(context.Background(), ds,
		privbayes.WithEpsilon(1.0),
		privbayes.WithSeed(7),
	)
	if err != nil {
		panic(err)
	}
	info := model.Info()
	fmt.Printf("attributes: %d, score: %s\n", len(info.Attrs), info.Score)
	// Output:
	// attributes: 3, score: R
}

// Fit-and-materialize in one call; the release satisfies ε-DP end to
// end.
func ExampleSynthesize() {
	ds := exampleData()
	syn, err := privbayes.Synthesize(context.Background(), ds,
		privbayes.WithEpsilon(1.0),
		privbayes.WithSeed(7),
	)
	if err != nil {
		panic(err)
	}
	fmt.Printf("synthetic rows: %d, columns: %d\n", syn.N(), syn.D())
	// Output:
	// synthetic rows: 5000, columns: 3
}

// Streaming synthesis: any number of rows in bounded memory, as a Go
// iterator. Sampling from a fitted model costs no further privacy.
func ExampleModel_Synthesize() {
	ds := exampleData()
	model, err := privbayes.Fit(context.Background(), ds,
		privbayes.WithEpsilon(1.0), privbayes.WithSeed(7))
	if err != nil {
		panic(err)
	}
	rows := 0
	for row, err := range model.Synthesize(context.Background(), 10_000, privbayes.SynthSeed(1)) {
		if err != nil {
			panic(err)
		}
		_ = row // row[i] is the code of attribute i
		rows++
	}
	fmt.Printf("streamed %d rows\n", rows)
	// Output:
	// streamed 10000 rows
}

// Write-side streaming: encode rows straight to any io.Writer.
func ExampleModel_SynthesizeTo() {
	ds := exampleData()
	model, err := privbayes.Fit(context.Background(), ds,
		privbayes.WithEpsilon(1.0), privbayes.WithSeed(7))
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := model.SynthesizeTo(context.Background(), &buf, 1000,
		privbayes.FormatCSV, privbayes.SynthSeed(1)); err != nil {
		panic(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	fmt.Printf("header: %s\n", lines[0])
	fmt.Printf("rows: %d\n", len(lines)-1)
	// Output:
	// header: city,vip,amount
	// rows: 1000
}

// Exact queries: marginals, conditionals and expected counts answered
// straight from the fitted model by variable elimination — no sampling
// error, no privacy cost beyond the fit.
func ExampleModel_Query() {
	ds := exampleData()
	model, err := privbayes.Fit(context.Background(), ds,
		privbayes.WithEpsilon(1.0), privbayes.WithSeed(7))
	if err != nil {
		panic(err)
	}
	ctx := context.Background()

	// A one-way marginal: the distribution of city.
	cities, err := model.Query(ctx, privbayes.Marginal("city"))
	if err != nil {
		panic(err)
	}
	fmt.Printf("cities: %d cells, mass %.0f\n", len(cities.P), sum(cities.P))

	// A conditional: P(vip | city = paris).
	vip, err := model.Query(ctx,
		privbayes.Conditional([]string{"vip"}, privbayes.Eq("city", "paris")))
	if err != nil {
		panic(err)
	}
	fmt.Printf("vip|paris: %d cells, mass %.0f\n", len(vip.P), sum(vip.P))

	// An expected count among 5000 synthetic rows.
	n, err := model.Query(ctx, privbayes.Count(5000,
		privbayes.Eq("vip", "yes"), privbayes.In("city", "paris", "tokyo")))
	if err != nil {
		panic(err)
	}
	fmt.Printf("expected vip rows in paris+tokyo: %d of 5000\n", int(n.Value+0.5))
	// Output:
	// cities: 3 cells, mass 1
	// vip|paris: 2 cells, mass 1
	// expected vip rows in paris+tokyo: 365 of 5000
}

func sum(p []float64) float64 {
	var s float64
	for _, v := range p {
		s += v
	}
	return s
}

// A Session binds options to one dataset and shares score caches
// across fits — the repeated-fitting (serving) workload.
func ExampleSession() {
	ds := exampleData()
	session, err := privbayes.NewSession(ds,
		privbayes.WithEpsilon(0.5),
		privbayes.WithParallelism(2),
	)
	if err != nil {
		panic(err)
	}
	// Each fit is its own ε-DP release; the second reuses the first's
	// candidate scores (scores are data-only, so sharing is free).
	for _, seed := range []int64{1, 2} {
		model, err := session.Fit(context.Background(), privbayes.WithSeed(seed))
		if err != nil {
			panic(err)
		}
		fmt.Printf("seed %d: degree %d\n", seed, model.Info().Degree)
	}
	// Output:
	// seed 1: degree 2
	// seed 2: degree 2
}

// Progress callbacks observe every pipeline phase; cancelling the
// context from one stops the run with context.Canceled.
func ExampleWithProgress() {
	ds := exampleData()
	completed := map[privbayes.Phase]bool{}
	_, err := privbayes.Synthesize(context.Background(), ds,
		privbayes.WithEpsilon(1.0),
		privbayes.WithSeed(7),
		privbayes.WithProgress(func(p privbayes.Progress) {
			if p.Done == p.Total {
				completed[p.Phase] = true
			}
		}),
	)
	if err != nil {
		panic(err)
	}
	for _, ph := range []privbayes.Phase{privbayes.PhaseNetwork, privbayes.PhaseMarginals, privbayes.PhaseSampling} {
		fmt.Printf("%s completed: %v\n", ph, completed[ph])
	}
	// Output:
	// network completed: true
	// marginals completed: true
	// sampling completed: true
}
