package privbayes

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
)

// modelBytes serializes a model for byte-for-byte comparison.
func modelBytes(t *testing.T, m *Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveModel(&buf, m, 1); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// datasetsEqual compares two datasets cell by cell.
func datasetsEqual(a, b *Dataset) bool {
	if a.N() != b.N() || a.D() != b.D() {
		return false
	}
	for c := 0; c < a.D(); c++ {
		for r := 0; r < a.N(); r++ {
			if a.Value(r, c) != b.Value(r, c) {
				return false
			}
		}
	}
	return true
}

// TestV1ShimFitEquivalence: the deprecated FitV1 shim and the v2 Fit
// produce byte-identical models for the same seed and options, on both
// the general and the all-binary pipeline — the legacy surface is a
// thin mapping, not a fork.
func TestV1ShimFitEquivalence(t *testing.T) {
	general := toyData(4000, 70)
	binary := NewDataset([]Attribute{
		NewCategorical("a", []string{"0", "1"}),
		NewCategorical("b", []string{"0", "1"}),
		NewCategorical("c", []string{"0", "1"}),
		NewCategorical("d", []string{"0", "1"}),
	})
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < 4000; i++ {
		a := rng.Intn(2)
		binary.Append([]uint16{uint16(a), uint16(rng.Intn(2)), uint16(a), uint16(rng.Intn(2))})
	}

	cases := []struct {
		name string
		ds   *Dataset
		v1   Options
		v2   []Option
	}{
		{
			"general defaults", general,
			Options{Epsilon: 1},
			[]Option{WithEpsilon(1)},
		},
		{
			"general tuned", general,
			Options{Epsilon: 0.5, Beta: 0.4, Theta: 3, Consistency: true, Parallelism: 2, ScorerCacheSize: 64},
			[]Option{WithEpsilon(0.5), WithBeta(0.4), WithTheta(3), WithConsistency(true), WithParallelism(2), WithScorerCache(64)},
		},
		{
			"general explicit MI", general,
			Options{Epsilon: 1, Score: ScoreMI},
			[]Option{WithEpsilon(1), WithScore(ScoreMI)},
		},
		{
			"general no hierarchy", general,
			Options{Epsilon: 1, DisableHierarchy: true},
			[]Option{WithEpsilon(1), WithHierarchy(false)},
		},
		{
			"binary defaults", binary,
			Options{Epsilon: 1},
			[]Option{WithEpsilon(1)},
		},
		{
			"binary forced degree", binary,
			Options{Epsilon: 1, Degree: 2},
			[]Option{WithEpsilon(1), WithDegree(2)},
		},
	}
	for _, tc := range cases {
		const seed = 77
		tc.v1.Rand = rand.New(rand.NewSource(seed))
		v1m, err := FitV1(tc.ds, tc.v1)
		if err != nil {
			t.Fatalf("%s: v1: %v", tc.name, err)
		}
		v2m, err := Fit(context.Background(), tc.ds, append(tc.v2, WithSeed(seed))...)
		if err != nil {
			t.Fatalf("%s: v2: %v", tc.name, err)
		}
		if !bytes.Equal(modelBytes(t, v1m), modelBytes(t, v2m)) {
			t.Errorf("%s: v1 and v2 models differ for seed %d", tc.name, seed)
		}
	}
}

// TestV1ShimSynthesizeEquivalence: SynthesizeV1 and the v2 Synthesize
// consume their generator identically across fit and sampling, so the
// released datasets match cell for cell — at the serial path
// (Parallelism 1) and the chunked path alike.
func TestV1ShimSynthesizeEquivalence(t *testing.T) {
	ds := toyData(5000, 80)
	for _, par := range []int{0, 1, 2} {
		const seed = 81
		v1, err := SynthesizeV1(ds, Options{Epsilon: 1, Parallelism: par, Rand: rand.New(rand.NewSource(seed))})
		if err != nil {
			t.Fatal(err)
		}
		v2, err := Synthesize(context.Background(), ds,
			WithEpsilon(1), WithParallelism(par), WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !datasetsEqual(v1, v2) {
			t.Errorf("parallelism %d: v1 and v2 synthetic datasets differ", par)
		}
	}
}

// TestV1ShimRequiresRand preserves the v1 contract.
func TestV1ShimRequiresRand(t *testing.T) {
	ds := toyData(100, 82)
	if _, err := FitV1(ds, Options{Epsilon: 1}); err == nil {
		t.Fatal("missing Rand must error")
	}
}

// TestV1ShimScoreZeroValueIsAuto: with ScoreSet gone, an unset Score
// means automatic selection — the behaviour unset always had.
func TestV1ShimScoreZeroValueIsAuto(t *testing.T) {
	ds := toyData(500, 83)
	m, err := FitV1(ds, Options{Epsilon: 1, Rand: rand.New(rand.NewSource(84))})
	if err != nil {
		t.Fatal(err)
	}
	if ModelScore(m) != ScoreR {
		t.Errorf("unset Score on general data = %v, want R", ModelScore(m))
	}
}
