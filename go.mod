module privbayes

go 1.24.0
