package encoding

import (
	"fmt"

	"privbayes/internal/dataset"
)

// Codec translates between an original schema and its binarized form,
// remembering which bit columns belong to which original attribute.
type Codec struct {
	kind  Kind
	attrs []dataset.Attribute // original schema
	bits  []int               // bits per original attribute
	start []int               // first bit column of each original attribute
	total int
}

// NewCodec prepares a Binary or Gray codec for the schema.
func NewCodec(kind Kind, attrs []dataset.Attribute) *Codec {
	if kind != Binary && kind != Gray {
		panic(fmt.Sprintf("encoding: NewCodec supports Binary and Gray, got %v", kind))
	}
	c := &Codec{kind: kind, attrs: append([]dataset.Attribute(nil), attrs...)}
	for i := range c.attrs {
		b := c.attrs[i].Bits()
		c.start = append(c.start, c.total)
		c.bits = append(c.bits, b)
		c.total += b
	}
	return c
}

// BinarySchema returns the schema of the encoded dataset: one binary
// attribute per bit, named after the source attribute and bit position
// (most significant bit first).
func (c *Codec) BinarySchema() []dataset.Attribute {
	out := make([]dataset.Attribute, 0, c.total)
	for i := range c.attrs {
		for b := 0; b < c.bits[i]; b++ {
			out = append(out, dataset.NewCategorical(
				fmt.Sprintf("%s:b%d", c.attrs[i].Name, b), []string{"0", "1"}))
		}
	}
	return out
}

// Encode rewrites a dataset over the original schema into the binary
// schema.
func (c *Codec) Encode(ds *dataset.Dataset) *dataset.Dataset {
	out := dataset.NewWithCapacity(c.BinarySchema(), ds.N())
	rec := make([]uint16, c.total)
	for r := 0; r < ds.N(); r++ {
		for a := range c.attrs {
			v := ds.Value(r, a)
			if c.kind == Gray {
				v = GrayEncode(v)
			}
			for b := 0; b < c.bits[a]; b++ {
				shift := uint(c.bits[a] - 1 - b)
				rec[c.start[a]+b] = uint16((v >> shift) & 1)
			}
		}
		out.Append(rec)
	}
	return out
}

// Decode rewrites a binary-schema dataset (typically synthetic) back to
// the original schema. Bit patterns beyond an attribute's domain —
// possible because ⌈log₂ ℓ⌉ bits cover up to 2^bits ≥ ℓ values and the
// noisy model can emit any pattern — clamp to the top code, keeping the
// output schema-valid.
func (c *Codec) Decode(ds *dataset.Dataset) *dataset.Dataset {
	if ds.D() != c.total {
		panic(fmt.Sprintf("encoding: dataset has %d columns, codec expects %d", ds.D(), c.total))
	}
	out := dataset.NewWithCapacity(c.attrs, ds.N())
	rec := make([]uint16, len(c.attrs))
	for r := 0; r < ds.N(); r++ {
		for a := range c.attrs {
			v := 0
			for b := 0; b < c.bits[a]; b++ {
				v = v<<1 | ds.Value(r, c.start[a]+b)
			}
			if c.kind == Gray {
				v = GrayDecode(v)
			}
			if max := c.attrs[a].Size() - 1; v > max {
				v = max
			}
			rec[a] = uint16(v)
		}
		out.Append(rec)
	}
	return out
}
