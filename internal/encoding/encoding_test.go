package encoding

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"privbayes/internal/dataset"
)

func TestGrayCodeRoundTrip(t *testing.T) {
	f := func(v uint16) bool {
		return GrayDecode(GrayEncode(int(v))) == int(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The defining property of Gray codes: successive values differ in
// exactly one bit.
func TestGrayAdjacentValuesDifferInOneBit(t *testing.T) {
	for v := 0; v < 1024; v++ {
		diff := GrayEncode(v) ^ GrayEncode(v+1)
		if bits.OnesCount(uint(diff)) != 1 {
			t.Fatalf("Gray(%d) and Gray(%d) differ in %d bits", v, v+1, bits.OnesCount(uint(diff)))
		}
	}
}

// Figure 2's example: the Gray sequence for 3 bits.
func TestGrayPaperFigure2Sequence(t *testing.T) {
	want := []int{0b000, 0b001, 0b011, 0b010, 0b110, 0b111, 0b101, 0b100}
	for v, w := range want {
		if got := GrayEncode(v); got != w {
			t.Errorf("Gray(%d) = %03b, want %03b", v, got, w)
		}
	}
}

func mixedSchema() []dataset.Attribute {
	return []dataset.Attribute{
		dataset.NewCategorical("w", []string{"a", "b", "c", "d", "e"}), // 5 values, 3 bits
		dataset.NewCategorical("x", []string{"0", "1"}),                // 1 bit
		dataset.NewContinuous("y", 0, 16, 8),                           // 3 bits
	}
}

func randomDataset(n int, seed int64) *dataset.Dataset {
	ds := dataset.New(mixedSchema())
	rng := rand.New(rand.NewSource(seed))
	rec := make([]uint16, 3)
	for i := 0; i < n; i++ {
		rec[0] = uint16(rng.Intn(5))
		rec[1] = uint16(rng.Intn(2))
		rec[2] = uint16(rng.Intn(8))
		ds.Append(rec)
	}
	return ds
}

func TestCodecSchema(t *testing.T) {
	c := NewCodec(Binary, mixedSchema())
	schema := c.BinarySchema()
	if len(schema) != 3+1+3 {
		t.Fatalf("binary schema has %d attributes, want 7", len(schema))
	}
	for _, a := range schema {
		if a.Size() != 2 {
			t.Fatalf("attribute %s not binary", a.Name)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, kind := range []Kind{Binary, Gray} {
		ds := randomDataset(300, 7)
		c := NewCodec(kind, ds.Attrs())
		enc := c.Encode(ds)
		if enc.N() != ds.N() {
			t.Fatalf("%v: encoded N = %d", kind, enc.N())
		}
		dec := c.Decode(enc)
		for r := 0; r < ds.N(); r++ {
			for col := 0; col < ds.D(); col++ {
				if dec.Value(r, col) != ds.Value(r, col) {
					t.Fatalf("%v: cell (%d,%d) round trip %d -> %d",
						kind, r, col, ds.Value(r, col), dec.Value(r, col))
				}
			}
		}
	}
}

// Decoding clamps bit patterns beyond an attribute's domain: the 5-value
// attribute uses 3 bits, so patterns 5-7 must clamp to code 4.
func TestDecodeClampsInvalidPatterns(t *testing.T) {
	orig := mixedSchema()
	c := NewCodec(Binary, orig)
	enc := dataset.New(c.BinarySchema())
	// w bits = 111 (7, invalid), x = 0, y bits = 000.
	enc.Append([]uint16{1, 1, 1, 0, 0, 0, 0})
	dec := c.Decode(enc)
	if got := dec.Value(0, 0); got != 4 {
		t.Errorf("invalid pattern decoded to %d, want clamp to 4", got)
	}
}

func TestNewCodecRejectsVanilla(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCodec(Vanilla, mixedSchema())
}

func TestDecodeWrongWidthPanics(t *testing.T) {
	c := NewCodec(Binary, mixedSchema())
	bad := dataset.New([]dataset.Attribute{dataset.NewCategorical("z", []string{"0", "1"})})
	bad.Append([]uint16{0})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Decode(bad)
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{Vanilla: "Vanilla", Binary: "Binary", Gray: "Gray", Hierarchical: "Hierarchical"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %s", int(k), k.String())
		}
	}
}
