// Package encoding implements the four attribute encodings of
// Section 5.1. Vanilla and Hierarchical operate on the original domains
// (Hierarchical additionally exposes taxonomy-tree levels to the
// network-learning phase, handled in internal/core); Binary and Gray
// rewrite every attribute into ⌈log₂ ℓ⌉ binary attributes so the
// SIGMOD'14 binary pipeline (score F, Algorithms 1-2) applies, and decode
// the synthetic output back to the original schema.
package encoding

import "fmt"

// Kind names an encoding scheme.
type Kind int

const (
	// Vanilla keeps attributes intact with indivisible domains.
	Vanilla Kind = iota
	// Binary splits each attribute into natural-binary bit attributes.
	Binary
	// Gray splits each attribute into reflected-Gray-code bit
	// attributes, so adjacent values differ in one bit.
	Gray
	// Hierarchical keeps attributes intact and lets the model
	// generalize parents through taxonomy trees.
	Hierarchical
)

// String names the encoding as in the paper's figures.
func (k Kind) String() string {
	switch k {
	case Vanilla:
		return "Vanilla"
	case Binary:
		return "Binary"
	case Gray:
		return "Gray"
	case Hierarchical:
		return "Hierarchical"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// GrayEncode maps a natural binary value to its reflected Gray code.
func GrayEncode(v int) int { return v ^ (v >> 1) }

// GrayDecode inverts GrayEncode.
func GrayDecode(g int) int {
	v := 0
	for g != 0 {
		v ^= g
		g >>= 1
	}
	return v
}
