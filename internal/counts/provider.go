package counts

// Provider is the scan-backed count source behind privbayes.FitScanner:
// it answers CountTables requests by chunked passes over a reopenable
// row source, holding only one chunk plus the requested tables in
// memory. The scoring engine prefetches each greedy iteration's whole
// candidate batch, so the provider pays one full scan per iteration —
// the out-of-core cost model — instead of one per parent set.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"privbayes/internal/dataset"
	"privbayes/internal/marginal"
)

// ErrSourceChanged reports that a re-scan saw a different number of
// rows than an earlier pass: the source mutated mid-fit, which would
// silently break both the privacy accounting (sensitivities are
// computed from n) and the determinism contract.
var ErrSourceChanged = errors.New("counts: source changed between scans")

// Provider implements marginal.CountSource and
// marginal.BatchCountSource over a reopenable chunked row source.
type Provider struct {
	src *dataset.ChunkSource
	ctx context.Context
	par int
	n   int

	mu     sync.Mutex
	tables map[string]*marginal.Table // finished tables, keyed by [parents..., child]
	err    error                      // sticky: a failed scan poisons the provider
	scans  int64
	rows   int64 // cumulative rows read across scans
}

// NewProvider counts the source's rows with one validating scan and
// returns a provider ready to serve count requests. parallelism bounds
// per-chunk counting workers (<= 0 selects GOMAXPROCS) and never
// affects the counts. The context governs every subsequent scan: when
// it ends, in-flight and future requests fail with its error.
func NewProvider(ctx context.Context, src *dataset.ChunkSource, parallelism int) (*Provider, error) {
	p := &Provider{src: src, ctx: ctx, par: parallelism, tables: map[string]*marginal.Table{}}
	n, err := p.scanRows(nil, nil)
	if err != nil {
		return nil, err
	}
	p.n = n
	return p, nil
}

// NewProviderWithRows skips the initial counting scan for callers that
// already know the exact row count (e.g. the curator's row log). A
// wrong count surfaces as ErrSourceChanged on the first scan.
func NewProviderWithRows(ctx context.Context, src *dataset.ChunkSource, rows, parallelism int) *Provider {
	return &Provider{src: src, ctx: ctx, par: parallelism, n: rows, tables: map[string]*marginal.Table{}}
}

// Rows implements marginal.CountSource.
func (p *Provider) Rows() int { return p.n }

// Err returns the sticky scan error, if any.
func (p *Provider) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Stats reports the number of full source scans performed and the
// cumulative rows read — the out-of-core cost counters surfaced by
// telemetry and asserted by the one-scan-per-iteration tests.
func (p *Provider) Stats() (scans, rowsRead int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.scans, p.rows
}

func tableKey(parents []marginal.Var, child marginal.Var) string {
	return varsKey(append(append([]marginal.Var(nil), parents...), child))
}

// Prefetch implements marginal.BatchCountSource: one scan satisfies
// every missing table of the batch, and the table cache is trimmed to
// exactly the batch's tables — the provider's resident set is bounded
// by one batch, one chunk, and the scan accumulators.
func (p *Provider) Prefetch(ctx context.Context, reqs []marginal.CountRequest) error {
	p.mu.Lock()
	if p.err != nil {
		p.mu.Unlock()
		return p.err
	}
	keep := map[string]*marginal.Table{}
	var missing []marginal.CountRequest
	for _, req := range reqs {
		var absent []marginal.Var
		for _, child := range req.Children {
			key := tableKey(req.Parents, child)
			if t, ok := keep[key]; ok && t != nil {
				continue
			}
			if t, ok := p.tables[key]; ok {
				keep[key] = t
				continue
			}
			keep[key] = nil
			absent = append(absent, child)
		}
		if len(absent) > 0 {
			missing = append(missing, marginal.CountRequest{Parents: req.Parents, Children: absent})
		}
	}
	p.mu.Unlock()

	if len(missing) > 0 {
		built, err := p.scanTables(ctx, missing)
		if err != nil {
			return err
		}
		for key, t := range built {
			keep[key] = t
		}
	}

	p.mu.Lock()
	if p.err == nil {
		p.tables = keep
	}
	err := p.err
	p.mu.Unlock()
	return err
}

// CountTables implements marginal.CountSource. Tables the last
// Prefetch covered are served from memory; anything else costs a scan.
// Returned tables are copies — callers may normalize or noise them.
func (p *Provider) CountTables(parents []marginal.Var, children []marginal.Var) ([]*marginal.Table, error) {
	p.mu.Lock()
	if p.err != nil {
		p.mu.Unlock()
		return nil, p.err
	}
	out := make([]*marginal.Table, len(children))
	var absent []marginal.Var
	for j, child := range children {
		if t, ok := p.tables[tableKey(parents, child)]; ok {
			out[j] = t.Clone()
		} else {
			absent = append(absent, child)
		}
	}
	p.mu.Unlock()
	if len(absent) == 0 {
		return out, nil
	}

	built, err := p.scanTables(p.ctx, []marginal.CountRequest{{Parents: parents, Children: absent}})
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	for key, t := range built {
		p.tables[key] = t
	}
	for j, child := range children {
		if out[j] == nil {
			out[j] = p.tables[tableKey(parents, child)].Clone()
		}
	}
	p.mu.Unlock()
	return out, nil
}

// scanTables performs one full scan accumulating every requested
// table. Accumulation is integer addition in float64 cells, exact for
// any chunking — the resulting tables are bit-identical to
// ParentIndex.CountChildren over the materialized dataset.
func (p *Provider) scanTables(ctx context.Context, reqs []marginal.CountRequest) (map[string]*marginal.Table, error) {
	vds := dataset.NewVirtual(p.src.Attrs, p.n)
	accs := make([][]*marginal.Table, len(reqs))
	for i, req := range reqs {
		if _, ok := marginal.ParentConfigs(vds, req.Parents); !ok {
			// The in-memory engine falls back to per-candidate row scans
			// here; out of core there are no rows to rescan. Unreachable
			// under θ-usefulness caps.
			return nil, p.fail(fmt.Errorf("counts: parent set %v overflows the code domain; not materializable out of core", req.Parents))
		}
		accs[i] = make([]*marginal.Table, len(req.Children))
		for j, child := range req.Children {
			accs[i][j] = marginal.NewTable(vds, append(append([]marginal.Var(nil), req.Parents...), child))
		}
	}

	rows, err := p.scanRows(ctx, func(chunk *dataset.Dataset) {
		for i, req := range reqs {
			ix := marginal.BuildParentIndex(chunk, req.Parents, p.par)
			ts := ix.CountChildren(chunk, req.Children, p.par)
			for j, t := range ts {
				dst := accs[i][j].P
				for c, v := range t.P {
					dst[c] += v
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if rows != p.n {
		return nil, p.fail(fmt.Errorf("%w: scan saw %d rows, expected %d", ErrSourceChanged, rows, p.n))
	}

	out := make(map[string]*marginal.Table, len(reqs))
	for i, req := range reqs {
		for j, child := range req.Children {
			out[tableKey(req.Parents, child)] = accs[i][j]
		}
	}
	return out, nil
}

// scanRows opens the source and walks every chunk through visit (nil
// visits just count), honoring both the provider's fit context and the
// per-call context. Errors are sticky.
func (p *Provider) scanRows(ctx context.Context, visit func(*dataset.Dataset)) (int, error) {
	sc, err := p.src.Open()
	if err != nil {
		return 0, p.fail(fmt.Errorf("counts: open source: %w", err))
	}
	defer sc.Close()
	rows := 0
	for {
		if err := p.ctxErr(ctx); err != nil {
			return rows, p.fail(err)
		}
		chunk, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return rows, p.fail(err)
		}
		if chunk.N() == 0 {
			continue
		}
		rows += chunk.N()
		if visit != nil {
			visit(chunk)
		}
	}
	p.mu.Lock()
	p.scans++
	p.rows += int64(rows)
	p.mu.Unlock()
	return rows, nil
}

func (p *Provider) ctxErr(ctx context.Context) error {
	if p.ctx != nil {
		if err := p.ctx.Err(); err != nil {
			return err
		}
	}
	if ctx != nil {
		return ctx.Err()
	}
	return nil
}

// fail records the first error as sticky and returns it (or the
// earlier one).
func (p *Provider) fail(err error) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err == nil {
		p.err = err
	}
	return p.err
}
