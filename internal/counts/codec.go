package counts

// Versioned binary serialization of a Store. The format is
// self-checking (magic, version, schema digest, trailing CRC32C) but
// not self-describing: the reader supplies the schema, and the digest
// plus recomputed table shapes reject any mismatch. Counts are written
// in registration order, so two equal stores serialize to equal bytes.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"

	"privbayes/internal/dataset"
	"privbayes/internal/marginal"
)

// storeMagic identifies a serialized Store; the final byte before the
// newline is the format version.
var storeMagic = []byte("PBCNTS\x01\n")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxStoredGroups bounds the group and per-group child counts a reader
// will accept, keeping corrupt or hostile headers from driving huge
// allocations before the CRC check can reject them.
const maxStoredGroups = 1 << 20

// SchemaDigest fingerprints a schema (names, kinds, domain sizes,
// hierarchy shapes) for serialization compatibility checks.
func SchemaDigest(attrs []dataset.Attribute) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for i := range attrs {
		a := &attrs[i]
		io.WriteString(h, a.Name)
		h.Write([]byte{0})
		word(uint64(a.Kind))
		word(uint64(a.Size()))
		word(uint64(a.Height()))
		for lvl := 1; lvl < a.Height(); lvl++ {
			word(uint64(a.SizeAt(lvl)))
		}
	}
	return h.Sum64()
}

// WriteTo serializes the store. The encoding is deterministic given
// registration order and counts.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	s.mu.Lock()
	body := make([]byte, 0, 64)
	u32 := func(v uint32) { body = binary.LittleEndian.AppendUint32(body, v) }
	u64 := func(v uint64) { body = binary.LittleEndian.AppendUint64(body, v) }
	u64(SchemaDigest(s.attrs))
	u64(uint64(s.rows))
	u32(uint32(len(s.groups)))
	for _, g := range s.groups {
		u32(uint32(len(g.parents)))
		for _, v := range g.parents {
			u32(uint32(v.Attr))
			u32(uint32(v.Level))
		}
		u32(uint32(len(g.children)))
		for j, child := range g.children {
			u32(uint32(child.Attr))
			u32(uint32(child.Level))
			t := g.tables[j]
			u64(uint64(len(t.Counts)))
			for _, c := range t.Counts {
				u64(uint64(c))
			}
		}
	}
	s.mu.Unlock()

	var total int64
	for _, part := range [][]byte{storeMagic, body} {
		n, err := w.Write(part)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(body, castagnoli))
	n, err := w.Write(crc[:])
	return total + int64(n), err
}

// storeReader walks the serialized body with bounds checks.
type storeReader struct {
	b   []byte
	off int
}

func (r *storeReader) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, fmt.Errorf("counts: truncated store at offset %d", r.off)
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *storeReader) u64() (uint64, error) {
	if r.off+8 > len(r.b) {
		return 0, fmt.Errorf("counts: truncated store at offset %d", r.off)
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *storeReader) vars(n int) ([]marginal.Var, error) {
	vars := make([]marginal.Var, n)
	for i := range vars {
		attr, err := r.u32()
		if err != nil {
			return nil, err
		}
		level, err := r.u32()
		if err != nil {
			return nil, err
		}
		vars[i] = marginal.Var{Attr: int(attr), Level: int(level)}
	}
	return vars, nil
}

// ReadStore deserializes a store written by WriteTo, validating the
// magic, version, CRC, schema digest and every table shape against the
// supplied schema. Counts must be non-negative and rows must not
// exceed the int64 range — corrupt inputs fail with an error, never a
// panic or an out-of-domain store.
func ReadStore(r io.Reader, attrs []dataset.Attribute) (*Store, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("counts: read store: %w", err)
	}
	if len(raw) < len(storeMagic)+4 {
		return nil, fmt.Errorf("counts: store too short (%d bytes)", len(raw))
	}
	if string(raw[:len(storeMagic)]) != string(storeMagic) {
		return nil, fmt.Errorf("counts: bad magic or unsupported version")
	}
	body := raw[len(storeMagic) : len(raw)-4]
	wantCRC := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.Checksum(body, castagnoli) != wantCRC {
		return nil, fmt.Errorf("counts: store CRC mismatch")
	}

	rd := &storeReader{b: body}
	digest, err := rd.u64()
	if err != nil {
		return nil, err
	}
	if digest != SchemaDigest(attrs) {
		return nil, fmt.Errorf("counts: store schema digest %x does not match supplied schema %x", digest, SchemaDigest(attrs))
	}
	rows, err := rd.u64()
	if err != nil {
		return nil, err
	}
	if rows > math.MaxInt64 {
		return nil, fmt.Errorf("counts: row count %d out of range", rows)
	}
	ngroups, err := rd.u32()
	if err != nil {
		return nil, err
	}
	if ngroups > maxStoredGroups {
		return nil, fmt.Errorf("counts: %d parent sets exceeds the limit", ngroups)
	}

	s := NewStore(attrs)
	s.rows = int64(rows)
	for gi := 0; gi < int(ngroups); gi++ {
		nparents, err := rd.u32()
		if err != nil {
			return nil, err
		}
		if nparents > uint32(len(attrs)) {
			return nil, fmt.Errorf("counts: parent set of %d variables exceeds schema", nparents)
		}
		parents, err := rd.vars(int(nparents))
		if err != nil {
			return nil, err
		}
		nchildren, err := rd.u32()
		if err != nil {
			return nil, err
		}
		if nchildren > maxStoredGroups {
			return nil, fmt.Errorf("counts: %d children exceeds the limit", nchildren)
		}
		for ci := 0; ci < int(nchildren); ci++ {
			child, err := rd.vars(1)
			if err != nil {
				return nil, err
			}
			ncells, err := rd.u64()
			if err != nil {
				return nil, err
			}
			// Register validates variables against the schema and
			// allocates the correctly shaped table; a cell-count
			// mismatch then proves corruption.
			if err := s.Register(parents, child); err != nil {
				return nil, err
			}
			t := s.byKey[varsKey(parents)].childTable(child[0])
			if uint64(len(t.Counts)) != ncells {
				return nil, fmt.Errorf("counts: table (%v | %v) has %d cells, schema implies %d", child[0], parents, ncells, len(t.Counts))
			}
			for i := range t.Counts {
				v, err := rd.u64()
				if err != nil {
					return nil, err
				}
				c := int64(v)
				if c < 0 {
					return nil, fmt.Errorf("counts: negative count in table (%v | %v)", child[0], parents)
				}
				t.Counts[i] = c
			}
		}
	}
	if rd.off != len(body) {
		return nil, fmt.Errorf("counts: %d trailing bytes after store body", len(body)-rd.off)
	}
	return s, nil
}
