// Package counts implements the mergeable sufficient-statistic layer of
// the out-of-core fit path: additive integer joint count tables keyed by
// the marginal.ParentIndex code encoding. All of PrivBayes' data access
// reduces to [parents..., child] count tables, and integer counts are
// exact under any chunking, sharding or accumulation order — so a Store
// accumulated chunk by chunk (or merged across shards) yields tables
// bit-identical to a single pass over the full dataset, and any fit
// driven from them is byte-identical to the in-memory fit.
package counts

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"privbayes/internal/dataset"
	"privbayes/internal/marginal"
)

// MaxTableCells bounds one registered table's cell count, protecting
// the store against registrations whose flattened domain would not fit
// in memory. θ-usefulness caps keep real PrivBayes tables far below it.
const MaxTableCells = 1 << 28

// ErrTableTooLarge reports a registration whose table would exceed
// MaxTableCells cells (or overflow the ParentIndex code domain).
var ErrTableTooLarge = errors.New("counts: table exceeds the cell budget")

// Table is one additive integer count table laid out [parents...,
// child], row-major with the child varying fastest — cell index
// parentCode·|dom(child)| + childCode, exactly the marginal.ParentIndex
// encoding.
type Table struct {
	Vars   []marginal.Var
	Dims   []int
	Counts []int64
}

// Marginal converts the integer table into a float64 count table of
// the shape ParentIndex.CountChildren produces.
func (t *Table) Marginal() *marginal.Table {
	p := make([]float64, len(t.Counts))
	for i, c := range t.Counts {
		p[i] = float64(c)
	}
	return &marginal.Table{
		Vars: append([]marginal.Var(nil), t.Vars...),
		Dims: append([]int(nil), t.Dims...),
		P:    p,
	}
}

// group is the per-parent-set unit of accumulation: all registered
// children of one ordered parent set share one ParentIndex scan.
type group struct {
	parents  []marginal.Var
	children []marginal.Var
	tables   []*Table
}

func (g *group) childTable(child marginal.Var) *Table {
	for j, c := range g.children {
		if c == child {
			return g.tables[j]
		}
	}
	return nil
}

// Store is a mergeable set of integer count tables over one schema.
// Tables are declared with Register and maintained by Accumulate;
// stores over disjoint row shards combine exactly with Merge. All
// methods are safe for concurrent use.
type Store struct {
	mu     sync.Mutex
	attrs  []dataset.Attribute
	vds    *dataset.Dataset // virtual: schema-only, for Var.Size lookups
	rows   int64
	groups []*group
	byKey  map[string]*group

	// Parallelism bounds the workers used per accumulated chunk (<= 0
	// selects GOMAXPROCS). Counting is integer-exact, so the setting
	// never changes the resulting counts.
	Parallelism int
}

// NewStore creates an empty store over the schema.
func NewStore(attrs []dataset.Attribute) *Store {
	return &Store{
		attrs: append([]dataset.Attribute(nil), attrs...),
		vds:   dataset.NewVirtual(attrs, 0),
		byKey: map[string]*group{},
	}
}

// Attrs returns the store's schema. The caller must not mutate it.
func (s *Store) Attrs() []dataset.Attribute { return s.attrs }

// varsKey builds an exact map key for an ordered variable list.
func varsKey(vars []marginal.Var) string {
	b := make([]byte, 0, len(vars)*8)
	for _, v := range vars {
		b = binary.LittleEndian.AppendUint32(b, uint32(v.Attr))
		b = binary.LittleEndian.AppendUint32(b, uint32(v.Level))
	}
	return string(b)
}

// Register declares the [parents..., child] tables for every child,
// allocating zeroed counts. Registering an existing table is a no-op;
// new children join the parent set's existing scan group. Tables
// registered after rows were accumulated count only subsequent rows —
// curators seed them with a cold scan first.
func (s *Store) Register(parents []marginal.Var, children []marginal.Var) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, v := range append(append([]marginal.Var(nil), parents...), children...) {
		if v.Attr < 0 || v.Attr >= len(s.attrs) {
			return fmt.Errorf("counts: variable %v outside schema of %d attributes", v, len(s.attrs))
		}
	}
	piDim, ok := marginal.ParentConfigs(s.vds, parents)
	if !ok {
		return fmt.Errorf("%w: parent set %v overflows the code domain", ErrTableTooLarge, parents)
	}
	key := varsKey(parents)
	g := s.byKey[key]
	if g == nil {
		g = &group{parents: append([]marginal.Var(nil), parents...)}
		s.byKey[key] = g
		s.groups = append(s.groups, g)
	}
	for _, child := range children {
		if g.childTable(child) != nil {
			continue
		}
		xdim := child.Size(s.vds)
		if int64(piDim)*int64(xdim) > MaxTableCells {
			return fmt.Errorf("%w: %v with child %v has %d cells", ErrTableTooLarge, parents, child, int64(piDim)*int64(xdim))
		}
		vars := append(append([]marginal.Var(nil), parents...), child)
		dims := make([]int, len(vars))
		for i, v := range vars {
			dims[i] = v.Size(s.vds)
		}
		g.children = append(g.children, child)
		g.tables = append(g.tables, &Table{Vars: vars, Dims: dims, Counts: make([]int64, piDim*xdim)})
	}
	return nil
}

// checkSchema verifies a chunk (or peer store) schema matches.
func (s *Store) checkSchema(attrs []dataset.Attribute) error {
	if len(attrs) != len(s.attrs) {
		return fmt.Errorf("counts: schema has %d attributes, store has %d", len(attrs), len(s.attrs))
	}
	for i := range attrs {
		if attrs[i].Name != s.attrs[i].Name || attrs[i].Size() != s.attrs[i].Size() {
			return fmt.Errorf("counts: attribute %d is %s(%d), store has %s(%d)",
				i, attrs[i].Name, attrs[i].Size(), s.attrs[i].Name, s.attrs[i].Size())
		}
	}
	return nil
}

// Accumulate adds every row of the chunk into all registered tables
// and advances the row count. Chunks may arrive in any order and size;
// the resulting counts equal a single pass over the concatenation.
// Counting rides the shared-scan engine: per parent set, bit-packed
// low-arity chunks count by bitmask+popcount without ever building
// per-row codes, and the rest share one fused row walk.
func (s *Store) Accumulate(chunk *dataset.Dataset) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkSchema(chunk.Attrs()); err != nil {
		return err
	}
	for _, g := range s.groups {
		ix := marginal.BuildParentIndex(chunk, g.parents, s.Parallelism)
		ts := ix.CountChildren(chunk, g.children, s.Parallelism)
		for j, t := range ts {
			dst := g.tables[j].Counts
			for i, v := range t.P {
				dst[i] += int64(v)
			}
		}
	}
	s.rows += int64(chunk.N())
	return nil
}

// Merge adds another store's counts into this one. Both stores must be
// over the same schema and register exactly the same tables — the
// shard-combining contract: shards that accumulated disjoint row
// ranges of one dataset merge into the single-pass result exactly.
func (s *Store) Merge(other *Store) error {
	if s == other {
		return errors.New("counts: cannot merge a store with itself")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	other.mu.Lock()
	defer other.mu.Unlock()
	if err := s.checkSchema(other.attrs); err != nil {
		return err
	}
	if len(other.groups) != len(s.groups) {
		return fmt.Errorf("counts: merge of stores with %d vs %d parent sets", len(other.groups), len(s.groups))
	}
	type pair struct{ dst, src *Table }
	var pairs []pair
	for key, g := range s.byKey {
		og := other.byKey[key]
		if og == nil {
			return fmt.Errorf("counts: peer store missing parent set %v", g.parents)
		}
		if len(og.children) != len(g.children) {
			return fmt.Errorf("counts: parent set %v has %d vs %d children", g.parents, len(og.children), len(g.children))
		}
		for j, child := range g.children {
			ot := og.childTable(child)
			if ot == nil {
				return fmt.Errorf("counts: peer store missing table (%v | %v)", child, g.parents)
			}
			pairs = append(pairs, pair{g.tables[j], ot})
		}
	}
	// All tables matched; apply only after full validation so a failed
	// merge never leaves partial sums.
	for _, p := range pairs {
		for i, v := range p.src.Counts {
			p.dst.Counts[i] += v
		}
	}
	s.rows += other.rows
	return nil
}

// Rows returns the number of accumulated rows.
func (s *Store) Rows() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rows
}

// Cells returns the total number of count cells across registered
// tables (the store's memory footprint is 8 bytes per cell), and the
// number of tables — the count-store size telemetry.
func (s *Store) Cells() (cells, tables int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, g := range s.groups {
		for _, t := range g.tables {
			cells += len(t.Counts)
			tables++
		}
	}
	return cells, tables
}

// CountTable returns a copy of the registered table for (parents...,
// child) as a float64 count table, or nil when not registered.
func (s *Store) CountTable(parents []marginal.Var, child marginal.Var) *marginal.Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.byKey[varsKey(parents)]
	if g == nil {
		return nil
	}
	t := g.childTable(child)
	if t == nil {
		return nil
	}
	return t.Marginal()
}

// StoreSource adapts a Store into the fit pipeline's count-source
// seam. Every table the fit will request must already be registered
// and fully accumulated: it serves purely from memory and never scans.
type StoreSource struct {
	s *Store
}

// Source returns a count source serving this store's tables.
func (s *Store) Source() *StoreSource { return &StoreSource{s: s} }

// Rows implements marginal.CountSource.
func (ss *StoreSource) Rows() int { return int(ss.s.Rows()) }

// CountTables implements marginal.CountSource, serving copies of the
// registered tables.
func (ss *StoreSource) CountTables(parents []marginal.Var, children []marginal.Var) ([]*marginal.Table, error) {
	out := make([]*marginal.Table, len(children))
	for j, child := range children {
		t := ss.s.CountTable(parents, child)
		if t == nil {
			return nil, fmt.Errorf("counts: table (%v | %v) not registered in store", child, parents)
		}
		out[j] = t
	}
	return out, nil
}
