package counts

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"privbayes/internal/dataset"
	"privbayes/internal/marginal"
)

func testSchema() []dataset.Attribute {
	return []dataset.Attribute{
		dataset.NewCategorical("a", []string{"x", "y", "z"}),
		dataset.NewCategorical("b", []string{"0", "1"}),
		dataset.NewContinuous("c", 0, 16, 4),
		dataset.NewCategorical("d", []string{"p", "q", "r", "s"}),
	}
}

func randomDataset(seed int64, n int, attrs []dataset.Attribute) *dataset.Dataset {
	ds := dataset.NewWithCapacity(attrs, n)
	rng := rand.New(rand.NewSource(seed))
	rec := make([]uint16, len(attrs))
	for i := 0; i < n; i++ {
		for c := range attrs {
			rec[c] = uint16(rng.Intn(attrs[c].Size()))
		}
		ds.Append(rec)
	}
	return ds
}

func registerAll(t *testing.T, s *Store) {
	t.Helper()
	v := func(a int) marginal.Var { return marginal.Var{Attr: a} }
	for _, reg := range []struct {
		parents  []marginal.Var
		children []marginal.Var
	}{
		{nil, []marginal.Var{v(0), v(1)}},
		{[]marginal.Var{v(0)}, []marginal.Var{v(1), v(2), v(3)}},
		{[]marginal.Var{v(1), v(2)}, []marginal.Var{v(0), v(3)}},
		{[]marginal.Var{v(3), v(0), v(1)}, []marginal.Var{v(2)}},
	} {
		if err := s.Register(reg.parents, reg.children); err != nil {
			t.Fatal(err)
		}
	}
}

func storesEqual(t *testing.T, a, b *Store) {
	t.Helper()
	if a.Rows() != b.Rows() {
		t.Fatalf("rows %d vs %d", a.Rows(), b.Rows())
	}
	if len(a.groups) != len(b.groups) {
		t.Fatalf("groups %d vs %d", len(a.groups), len(b.groups))
	}
	for _, g := range a.groups {
		for j, child := range g.children {
			bt := b.CountTable(g.parents, child)
			if bt == nil {
				t.Fatalf("table (%v | %v) missing", child, g.parents)
			}
			at := g.tables[j]
			for i, c := range at.Counts {
				if float64(c) != bt.P[i] {
					t.Fatalf("table (%v | %v) cell %d: %d vs %g", child, g.parents, i, c, bt.P[i])
				}
			}
		}
	}
}

// TestMergeEqualsSinglePass is the shard-combinability property: K
// random splits of the rows, accumulated into K stores and merged,
// must equal single-pass accumulation exactly — for any K, any split
// boundaries, and any per-shard chunking.
func TestMergeEqualsSinglePass(t *testing.T) {
	attrs := testSchema()
	ds := randomDataset(11, 5000, attrs)
	rng := rand.New(rand.NewSource(23))

	single := NewStore(attrs)
	registerAll(t, single)
	if err := single.Accumulate(ds); err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 5; trial++ {
		k := 1 + rng.Intn(7)
		// Random shard boundaries over the row range.
		cuts := []int{0}
		for i := 1; i < k; i++ {
			cuts = append(cuts, rng.Intn(ds.N()+1))
		}
		cuts = append(cuts, ds.N())
		for i := 1; i < len(cuts); i++ {
			for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
				cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
			}
		}

		merged := NewStore(attrs)
		registerAll(t, merged)
		for i := 0; i+1 < len(cuts); i++ {
			shard := NewStore(attrs)
			shard.Parallelism = 1 + rng.Intn(4)
			registerAll(t, shard)
			// Feed the shard its rows in random-sized chunks.
			lo := cuts[i]
			for lo < cuts[i+1] {
				hi := min(lo+1+rng.Intn(977), cuts[i+1])
				if err := shard.Accumulate(ds.Slice(lo, hi)); err != nil {
					t.Fatal(err)
				}
				lo = hi
			}
			if err := merged.Merge(shard); err != nil {
				t.Fatal(err)
			}
		}
		storesEqual(t, single, merged)
	}
}

func TestMergeRejectsMismatch(t *testing.T) {
	attrs := testSchema()
	a := NewStore(attrs)
	registerAll(t, a)
	b := NewStore(attrs)
	if err := a.Merge(b); err == nil {
		t.Fatal("merge with missing tables accepted")
	}
	other := NewStore(attrs[:2])
	if err := a.Merge(other); err == nil {
		t.Fatal("merge across schemas accepted")
	}
	if err := a.Merge(a); err == nil {
		t.Fatal("self-merge accepted")
	}
}

// TestSerializationRoundTrip: WriteTo → ReadStore is exact, and the
// encoding itself is deterministic.
func TestSerializationRoundTrip(t *testing.T) {
	attrs := testSchema()
	s := NewStore(attrs)
	registerAll(t, s)
	if err := s.Accumulate(randomDataset(5, 3000, attrs)); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStore(bytes.NewReader(buf.Bytes()), attrs)
	if err != nil {
		t.Fatal(err)
	}
	storesEqual(t, s, got)

	var buf2 bytes.Buffer
	if _, err := got.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("serialization is not deterministic across a round trip")
	}
}

func TestReadStoreRejectsCorruption(t *testing.T) {
	attrs := testSchema()
	s := NewStore(attrs)
	registerAll(t, s)
	if err := s.Accumulate(randomDataset(5, 200, attrs)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Flip one byte anywhere: the CRC (or magic check) must reject it.
	for _, off := range []int{0, 7, len(good) / 2, len(good) - 5, len(good) - 1} {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x40
		if _, err := ReadStore(bytes.NewReader(bad), attrs); err == nil {
			t.Fatalf("corruption at offset %d accepted", off)
		}
	}
	// Truncations must error, not panic.
	for cut := 0; cut < len(good); cut += 13 {
		if _, err := ReadStore(bytes.NewReader(good[:cut]), attrs); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Schema mismatch.
	wrong := testSchema()
	wrong[0] = dataset.NewCategorical("a", []string{"x", "y"})
	if _, err := ReadStore(bytes.NewReader(good), wrong); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}

func TestRegisterLimits(t *testing.T) {
	attrs := []dataset.Attribute{
		dataset.NewContinuous("big", 0, 1, 1<<14),
		dataset.NewContinuous("big2", 0, 1, 1<<14),
		dataset.NewContinuous("big3", 0, 1, 1<<14),
	}
	s := NewStore(attrs)
	v := func(a int) marginal.Var { return marginal.Var{Attr: a} }
	err := s.Register([]marginal.Var{v(0), v(1)}, []marginal.Var{v(2)})
	if !errors.Is(err, ErrTableTooLarge) {
		t.Fatalf("want ErrTableTooLarge, got %v", err)
	}
	if err := s.Register([]marginal.Var{v(9)}, []marginal.Var{v(0)}); err == nil {
		t.Fatal("out-of-schema variable accepted")
	}
}

// TestProviderMatchesDirectCounts: tables served by the scan-backed
// provider are bit-identical to ParentIndex.CountChildren over the
// materialized dataset, for any chunk size, and Prefetch batches all
// missing tables into one scan.
func TestProviderMatchesDirectCounts(t *testing.T) {
	attrs := testSchema()
	ds := randomDataset(3, 4000, attrs)
	v := func(a int) marginal.Var { return marginal.Var{Attr: a} }
	reqs := []marginal.CountRequest{
		{Parents: nil, Children: []marginal.Var{v(0)}},
		{Parents: []marginal.Var{v(0)}, Children: []marginal.Var{v(1), v(2)}},
		{Parents: []marginal.Var{v(2), v(3)}, Children: []marginal.Var{v(0), v(1)}},
	}

	for _, chunk := range []int{64, 999, 4000, 1 << 16} {
		p, err := NewProvider(context.Background(), dataset.DatasetSource(ds, chunk), 2)
		if err != nil {
			t.Fatal(err)
		}
		if p.Rows() != ds.N() {
			t.Fatalf("rows %d, want %d", p.Rows(), ds.N())
		}
		if err := p.Prefetch(context.Background(), reqs); err != nil {
			t.Fatal(err)
		}
		scans, _ := p.Stats()
		if scans != 2 { // counting scan + one prefetch scan
			t.Fatalf("chunk %d: %d scans, want 2", chunk, scans)
		}
		for _, req := range reqs {
			got, err := p.CountTables(req.Parents, req.Children)
			if err != nil {
				t.Fatal(err)
			}
			ix := marginal.BuildParentIndex(ds, req.Parents, 1)
			want := ix.CountChildren(ds, req.Children, 1)
			for j := range got {
				for i := range want[j].P {
					if got[j].P[i] != want[j].P[i] {
						t.Fatalf("chunk %d table %d cell %d: %g vs %g", chunk, j, i, got[j].P[i], want[j].P[i])
					}
				}
			}
		}
		// Serving prefetched tables must not have cost extra scans.
		if scans, _ := p.Stats(); scans != 2 {
			t.Fatalf("serving cached tables scanned (total %d)", scans)
		}
		// A fresh table after prefetch costs exactly one more scan.
		if _, err := p.CountTables([]marginal.Var{v(1)}, []marginal.Var{v(3)}); err != nil {
			t.Fatal(err)
		}
		if scans, _ := p.Stats(); scans != 3 {
			t.Fatalf("miss after prefetch: %d scans, want 3", scans)
		}
	}
}

func TestProviderReturnsCopies(t *testing.T) {
	attrs := testSchema()
	ds := randomDataset(9, 500, attrs)
	p, err := NewProvider(context.Background(), dataset.DatasetSource(ds, 100), 1)
	if err != nil {
		t.Fatal(err)
	}
	v0 := marginal.Var{Attr: 0}
	a, err := p.CountTables(nil, []marginal.Var{v0})
	if err != nil {
		t.Fatal(err)
	}
	a[0].P[0] = -1e9
	b, err := p.CountTables(nil, []marginal.Var{v0})
	if err != nil {
		t.Fatal(err)
	}
	if b[0].P[0] == -1e9 {
		t.Fatal("caller mutation leaked into the provider cache")
	}
}

func TestProviderContextCancel(t *testing.T) {
	attrs := testSchema()
	ds := randomDataset(9, 500, attrs)
	ctx, cancel := context.WithCancel(context.Background())
	p, err := NewProvider(ctx, dataset.DatasetSource(ds, 100), 1)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := p.CountTables(nil, []marginal.Var{{Attr: 0}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The cancellation is sticky.
	if err := p.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("sticky error lost: %v", err)
	}
}

func TestProviderDetectsSourceChange(t *testing.T) {
	attrs := testSchema()
	ds := randomDataset(9, 500, attrs)
	src := dataset.DatasetSource(ds, 100)
	p, err := NewProvider(context.Background(), src, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Grow the source behind the provider's back.
	ds.Append(make([]uint16, len(attrs)))
	if _, err := p.CountTables(nil, []marginal.Var{{Attr: 0}}); !errors.Is(err, ErrSourceChanged) {
		t.Fatalf("want ErrSourceChanged, got %v", err)
	}
}

func TestStoreSource(t *testing.T) {
	attrs := testSchema()
	ds := randomDataset(3, 1000, attrs)
	s := NewStore(attrs)
	registerAll(t, s)
	if err := s.Accumulate(ds); err != nil {
		t.Fatal(err)
	}
	ss := s.Source()
	if ss.Rows() != 1000 {
		t.Fatalf("rows %d", ss.Rows())
	}
	v := func(a int) marginal.Var { return marginal.Var{Attr: a} }
	got, err := ss.CountTables([]marginal.Var{v(0)}, []marginal.Var{v(1), v(2)})
	if err != nil {
		t.Fatal(err)
	}
	ix := marginal.BuildParentIndex(ds, []marginal.Var{v(0)}, 1)
	want := ix.CountChildren(ds, []marginal.Var{v(1), v(2)}, 1)
	for j := range got {
		for i := range want[j].P {
			if got[j].P[i] != want[j].P[i] {
				t.Fatalf("table %d cell %d: %g vs %g", j, i, got[j].P[i], want[j].P[i])
			}
		}
	}
	if _, err := ss.CountTables([]marginal.Var{v(2)}, []marginal.Var{v(0)}); err == nil {
		t.Fatal("unregistered table served")
	}
}
