package parallel

import (
	"context"
	"sync"
	"sync/atomic"
)

// Context-aware variants of the pool primitives. They run the same
// deterministic fan-out as For/Map — unit indexing and ordered
// reduction are identical, so for an uncancelled context the results
// are bit-identical to the ctx-free primitives —
// but stop claiming new units as soon as ctx is done and return
// ctx.Err().
//
// Teardown contract: every variant blocks until all of its worker
// goroutines have exited before returning, so a cancelled call never
// leaks goroutines and never leaves fn running concurrently with the
// caller's error handling. Units already started when cancellation
// fires run to completion (fn is not interrupted mid-unit); choose unit
// sizes so that a single unit is an acceptable cancellation latency.

// ForCtx runs fn(i) for every i in [0, n) on up to workers goroutines.
// When ctx ends early it stops dispatching further indices, waits for
// in-flight calls to finish, and returns ctx.Err(); otherwise it
// behaves exactly like For and returns nil.
func ForCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	done := ctx.Done()
	if workers <= 1 {
		for i := 0; i < n; i++ {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
			fn(i)
		}
		return nil
	}
	var next, completed atomic.Int64
	var wg sync.WaitGroup
	pc := panicCatcher{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer pc.catch()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
				completed.Add(1)
			}
		}()
	}
	wg.Wait()
	pc.repanic()
	// A cancellation that fires after the last unit already ran did not
	// lose any work; report success so callers keep complete results.
	if int(completed.Load()) == n {
		return nil
	}
	return ctx.Err()
}

// MapCtx runs fn across [0, n) like Map, stopping early when ctx ends.
// On cancellation the partial results are discarded and only ctx.Err()
// is returned; a nil error guarantees every slot was computed, in index
// order.
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) T) ([]T, error) {
	out := make([]T, n)
	if err := ForCtx(ctx, workers, n, func(i int) { out[i] = fn(i) }); err != nil {
		return nil, err
	}
	return out, nil
}
