package parallel

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestForCtxCompletes: an uncancelled ForCtx behaves exactly like For.
func TestForCtxCompletes(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		var sum atomic.Int64
		if err := ForCtx(context.Background(), workers, 100, func(i int) {
			sum.Add(int64(i))
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if sum.Load() != 4950 {
			t.Errorf("workers=%d: sum = %d, want 4950", workers, sum.Load())
		}
	}
}

// TestForCtxCancelStopsDispatch: cancelling mid-run stops new units and
// returns context.Canceled.
func TestForCtxCancelStopsDispatch(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := ForCtx(ctx, workers, 10_000, func(i int) {
			if ran.Add(1) == 5 {
				cancel()
			}
			time.Sleep(100 * time.Microsecond)
		})
		cancel()
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// At most the in-flight units (one per worker) run after cancel.
		if got := ran.Load(); got > int64(5+workers) {
			t.Errorf("workers=%d: %d units ran after cancellation point", workers, got)
		}
	}
}

// TestForCtxPreCancelled: a context cancelled before the call runs no
// units at all (parallel path) and at most zero (serial path).
func TestForCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForCtx(ctx, 4, 100, func(i int) { ran.Add(1) })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d units ran on a pre-cancelled context", ran.Load())
	}
}

// TestForCtxCompletionBeatsCancel: when every unit has run, the call
// reports success even if the context ends concurrently with the last
// unit — callers keep complete, usable results.
func TestForCtxCompletionBeatsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForCtx(ctx, 4, 50, func(i int) {
		if ran.Add(1) == 50 {
			cancel()
		}
	})
	cancel()
	if err != nil {
		t.Fatalf("all units ran, err = %v, want nil", err)
	}
}

// TestMapCtx: ordered reduction with and without cancellation.
func TestMapCtx(t *testing.T) {
	out, err := MapCtx(context.Background(), 3, 10, func(i int) int { return i * i })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MapCtx(ctx, 3, 10, func(i int) int { return i }); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCtxPoolLeaksNoGoroutines: cancelled pools tear down completely —
// the goroutine count returns to its baseline.
func TestCtxPoolLeaksNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	for round := 0; round < 20; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(time.Duration(round) * 50 * time.Microsecond)
			cancel()
		}()
		ForCtx(ctx, 8, 10_000, func(i int) { time.Sleep(20 * time.Microsecond) })
		cancel()
	}
	// The pool blocks until its workers exit, so only the timer
	// goroutines above may still be draining; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d at baseline, %d after cancelled pools", base, runtime.NumGoroutine())
}
