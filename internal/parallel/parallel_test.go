package parallel

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	for _, p := range []int{1, 2, 7} {
		if got := Workers(p); got != p {
			t.Errorf("Workers(%d) = %d", p, got)
		}
	}
}

// TestForCoversEveryIndexOnce checks the pool visits each index exactly
// once at several worker counts, including n = 0 and workers > n.
func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 100} {
		for _, n := range []int{0, 1, 7, 1000} {
			hits := make([]atomic.Int64, max(n, 1))
			For(workers, n, func(i int) { hits[i].Add(1) })
			for i := 0; i < n; i++ {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

// TestMapOrderedReduction checks results land in their own index slots
// regardless of scheduling.
func TestMapOrderedReduction(t *testing.T) {
	out := Map(8, 500, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestForChunksCoverage(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		for _, n := range []int{0, 1, 10, 1000, 1024} {
			var mu sync.Mutex
			seen := make([]bool, n)
			ForChunks(workers, n, 64, func(worker, lo, hi int) {
				if worker < 0 || worker >= workers {
					t.Errorf("worker id %d out of range [0,%d)", worker, workers)
				}
				if hi-lo > 64 || lo >= hi {
					t.Errorf("bad chunk [%d,%d)", lo, hi)
				}
				mu.Lock()
				for r := lo; r < hi; r++ {
					if seen[r] {
						t.Errorf("row %d covered twice", r)
					}
					seen[r] = true
				}
				mu.Unlock()
			})
			for r := 0; r < n; r++ {
				if !seen[r] {
					t.Fatalf("workers=%d n=%d: row %d never covered", workers, n, r)
				}
			}
		}
	}
}

func TestChunksGeometryIndependentOfWorkers(t *testing.T) {
	if got := Chunks(0, 64); got != 0 {
		t.Errorf("Chunks(0, 64) = %d", got)
	}
	if got := Chunks(65, 64); got != 2 {
		t.Errorf("Chunks(65, 64) = %d", got)
	}
	if got := Chunks(64, 64); got != 1 {
		t.Errorf("Chunks(64, 64) = %d", got)
	}
}

// TestSplitSeedsDeterministic checks the split-RNG scheme: the seed list
// depends only on the generator state, so two identically seeded
// generators yield identical streams.
func TestSplitSeedsDeterministic(t *testing.T) {
	a := SplitSeeds(rand.New(rand.NewSource(9)), 16)
	b := SplitSeeds(rand.New(rand.NewSource(9)), 16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed %d differs: %d vs %d", i, a[i], b[i])
		}
	}
	c := SplitSeeds(rand.New(rand.NewSource(10)), 16)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different master seeds produced identical streams")
	}
}

// TestForPanicPropagates checks a worker panic resurfaces on the caller,
// matching serial semantics.
func TestForPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic in worker was swallowed")
		}
	}()
	For(4, 100, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}
