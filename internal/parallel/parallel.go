// Package parallel is the execution engine for the PrivBayes pipeline's
// embarrassingly parallel hot paths: exponential-mechanism candidate
// scoring, marginal (contingency) counting over N rows, and synthetic
// tuple sampling.
//
// The engine provides three primitives — a bounded worker pool (For,
// Map), chunked row-range fan-out with stable worker identities
// (ForChunks), and split RNG streams (SplitSeeds) — designed around one
// contract: for a fixed seed, results never depend on the number of
// workers or on goroutine scheduling.
//
// Determinism rules callers rely on:
//
//   - Work units are indexed (task i, or chunk c covering rows
//     [c*chunk, (c+1)*chunk)). Chunk geometry depends only on the input
//     size, never on the worker count.
//   - Results are written to the slot of their unit index (ordered
//     reduction), so output order matches serial order.
//   - Randomized units draw from a per-unit rand.Rand seeded by
//     SplitSeeds, which consumes the caller's generator sequentially
//     before fan-out. Stream assignment is per unit, not per worker, so
//     any worker count produces the same draws.
//   - Commutative accumulation (integer-valued counts) may use
//     per-worker scratch via ForChunks; exact addition makes the merged
//     total independent of chunk-to-worker assignment.
package parallel

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a Parallelism knob: values <= 0 select
// runtime.GOMAXPROCS(0) (the "use the hardware" default), any positive
// value is taken literally. 1 means serial execution on the caller's
// goroutine.
func Workers(parallelism int) int {
	if parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// For runs fn(i) for every i in [0, n) on up to workers goroutines and
// blocks until all calls return. workers <= 1 (or n <= 1) runs inline in
// index order. Tasks are claimed dynamically, so fn must not depend on
// which goroutine runs which index. A panic in any fn is re-raised on
// the caller's goroutine after the pool drains.
func For(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	pc := panicCatcher{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer pc.catch()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	pc.repanic()
}

// Map runs fn across [0, n) on up to workers goroutines and returns the
// results in index order — the deterministic ordered reduction used by
// candidate scoring and marginal materialization.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	For(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// Chunks returns the number of fixed-size chunks covering [0, n). The
// count depends only on n and chunk — never on the worker count — so a
// chunk index is a deterministic unit of work.
func Chunks(n, chunk int) int {
	if n <= 0 {
		return 0
	}
	if chunk <= 0 {
		chunk = 1
	}
	return (n + chunk - 1) / chunk
}

// ForChunks fans the range [0, n) out as fixed-size chunks: fn(worker,
// lo, hi) is called once per chunk with 0 <= lo < hi <= n and hi-lo <=
// chunk. The worker id (in [0, workers)) is stable for the lifetime of
// the call, letting fn accumulate into per-worker scratch without locks.
// Chunk boundaries depend only on n and chunk; chunk-to-worker
// assignment is dynamic, so per-worker accumulation is deterministic
// only when merging is order-independent (e.g. exact integer sums).
func ForChunks(workers, n, chunk int, fn func(worker, lo, hi int)) {
	nc := Chunks(n, chunk)
	if nc == 0 {
		return
	}
	if chunk <= 0 {
		chunk = 1
	}
	if workers > nc {
		workers = nc
	}
	if workers <= 1 {
		for c := 0; c < nc; c++ {
			lo := c * chunk
			hi := min(lo+chunk, n)
			fn(0, lo, hi)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	pc := panicCatcher{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			defer pc.catch()
			for {
				c := int(next.Add(1)) - 1
				if c >= nc {
					return
				}
				lo := c * chunk
				hi := min(lo+chunk, n)
				fn(worker, lo, hi)
			}
		}(w)
	}
	wg.Wait()
	pc.repanic()
}

// SplitSeeds derives k child-stream seeds from the caller's generator by
// sequential draws — the split-RNG scheme. The seeds depend only on the
// generator's state and k, so randomized parallel stages stay
// deterministic at any worker count: unit i always samples from
// rand.New(rand.NewSource(seeds[i])).
func SplitSeeds(rng *rand.Rand, k int) []int64 {
	seeds := make([]int64, k)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	return seeds
}

// panicCatcher records the first panic raised in a pool and re-raises it
// on the caller's goroutine, preserving serial error semantics.
type panicCatcher struct {
	mu  sync.Mutex
	val any
	set bool
}

func (p *panicCatcher) catch() {
	if r := recover(); r != nil {
		p.mu.Lock()
		if !p.set {
			p.val, p.set = r, true
		}
		p.mu.Unlock()
	}
}

func (p *panicCatcher) repanic() {
	if p.set {
		panic(p.val)
	}
}
