// Package svm implements the linear classifiers the evaluation task
// needs: a hinge-loss C-SVM trained with Pegasos-style projected
// stochastic subgradient descent (used by PrivBayes, PrivGene and
// NoPrivacy), and a Huber-loss SVM trained with batch gradient descent
// (used by PrivateERM, which requires a differentiable loss).
package svm

import (
	"math"
	"math/rand"

	"privbayes/internal/dataset"
)

// Example is one featurized record: the indices of its active one-hot
// features (every feature has value featValue) and a ±1 label.
type Example struct {
	Features []int32
	Label    int8
}

// Problem is a featurized classification dataset.
type Problem struct {
	Examples  []Example
	Dim       int     // number of features, including the bias at index Dim-1
	FeatValue float64 // value of each active feature (1/√k keeps ‖x‖ = 1)
}

// Featurize one-hot encodes every attribute except the target into a
// sparse problem, with labels from positive(code) on the target
// attribute. Feature vectors are scaled to unit L2 norm, the
// normalization PrivateERM's privacy analysis requires; the same
// features feed all classifiers for comparability.
func Featurize(ds *dataset.Dataset, target int, positive func(code int) bool) *Problem {
	d := ds.D()
	offsets := make([]int, d)
	dim := 0
	for a := 0; a < d; a++ {
		if a == target {
			offsets[a] = -1
			continue
		}
		offsets[a] = dim
		dim += ds.Attr(a).Size()
	}
	bias := dim
	dim++
	active := d // d-1 attribute features + bias
	p := &Problem{Dim: dim, FeatValue: 1 / math.Sqrt(float64(active))}
	p.Examples = make([]Example, ds.N())
	for r := 0; r < ds.N(); r++ {
		feats := make([]int32, 0, active)
		for a := 0; a < d; a++ {
			if a == target {
				continue
			}
			feats = append(feats, int32(offsets[a]+ds.Value(r, a)))
		}
		feats = append(feats, int32(bias))
		label := int8(-1)
		if positive(ds.Value(r, target)) {
			label = 1
		}
		p.Examples[r] = Example{Features: feats, Label: label}
	}
	return p
}

// Model is a linear classifier over the featurized space.
type Model struct {
	W []float64
}

// Score returns w·x for an example.
func (m *Model) Score(p *Problem, e Example) float64 {
	var s float64
	for _, f := range e.Features {
		s += m.W[f]
	}
	return s * p.FeatValue
}

// Predict returns the ±1 prediction.
func (m *Model) Predict(p *Problem, e Example) int8 {
	if m.Score(p, e) >= 0 {
		return 1
	}
	return -1
}

// MisclassificationRate is the paper's classification error metric: the
// fraction of test examples predicted incorrectly.
func MisclassificationRate(m *Model, p *Problem) float64 {
	if len(p.Examples) == 0 {
		return 0
	}
	wrong := 0
	for _, e := range p.Examples {
		if m.Predict(p, e) != e.Label {
			wrong++
		}
	}
	return float64(wrong) / float64(len(p.Examples))
}

// TrainHinge trains a hinge-loss C-SVM (the paper's standard C-SVM with
// C = 1) by Pegasos: regularization λ = 1/(C·n), step 1/(λt), with the
// optional ball projection that gives Pegasos its convergence rate.
func TrainHinge(p *Problem, c float64, epochs int, rng *rand.Rand) *Model {
	n := len(p.Examples)
	m := &Model{W: make([]float64, p.Dim)}
	if n == 0 {
		return m
	}
	lambda := 1 / (c * float64(n))
	maxNorm := 1 / math.Sqrt(lambda)
	var norm2 float64
	scale := 1.0 // lazy multiplicative shrinkage: effective w = scale * W
	// Start at t = 2: at t = 1 the shrink factor 1 − ηλ is exactly zero,
	// which only resets a still-zero weight vector but destroys the
	// numerical conditioning of the lazy scale.
	t := 2
	for ep := 0; ep < epochs; ep++ {
		for it := 0; it < n; it++ {
			e := p.Examples[rng.Intn(n)]
			eta := 1 / (lambda * float64(t))
			var s float64
			for _, f := range e.Features {
				s += m.W[f]
			}
			s *= scale * p.FeatValue
			// Shrink: w ← (1 − ηλ)w.
			shrink := 1 - eta*lambda
			if shrink < 1e-12 {
				shrink = 1e-12
			}
			scale *= shrink
			norm2 *= shrink * shrink
			if float64(e.Label)*s < 1 {
				g := eta * float64(e.Label) * p.FeatValue / scale
				for _, f := range e.Features {
					old := m.W[f]
					m.W[f] = old + g
					norm2 += scale * scale * (2*old*g + g*g)
				}
			}
			if norm2 > maxNorm*maxNorm {
				proj := maxNorm / math.Sqrt(norm2)
				scale *= proj
				norm2 = maxNorm * maxNorm
			}
			t++
		}
	}
	for i := range m.W {
		m.W[i] *= scale
	}
	return m
}

// HuberLoss evaluates the Huber-smoothed hinge loss of Chaudhuri et al.
// (2011) at margin z = y·w·x with smoothing parameter h.
func HuberLoss(z, h float64) float64 {
	switch {
	case z > 1+h:
		return 0
	case z < 1-h:
		return 1 - z
	default:
		d := 1 + h - z
		return d * d / (4 * h)
	}
}

// HuberLossDeriv is dℓ/dz for HuberLoss.
func HuberLossDeriv(z, h float64) float64 {
	switch {
	case z > 1+h:
		return 0
	case z < 1-h:
		return -1
	default:
		return -(1 + h - z) / (2 * h)
	}
}

// TrainHuber minimizes (1/n)Σ ℓ_huber(y·w·x) + (λ/2)‖w‖² + b·w/n by
// batch gradient descent. The linear perturbation vector b implements
// PrivateERM's objective perturbation; pass nil for the non-private
// regularized SVM.
func TrainHuber(p *Problem, lambda, h float64, b []float64, iters int) *Model {
	n := float64(len(p.Examples))
	m := &Model{W: make([]float64, p.Dim)}
	if n == 0 {
		return m
	}
	grad := make([]float64, p.Dim)
	// Lipschitz bound of the gradient: 1/(2h) from the loss (times
	// ‖x‖² = 1) plus λ from the regularizer.
	step := 1 / (1/(2*h) + lambda)
	for it := 0; it < iters; it++ {
		for i := range grad {
			grad[i] = lambda * m.W[i]
			if b != nil {
				grad[i] += b[i] / n
			}
		}
		for _, e := range p.Examples {
			var s float64
			for _, f := range e.Features {
				s += m.W[f]
			}
			s *= p.FeatValue
			g := HuberLossDeriv(float64(e.Label)*s, h) * float64(e.Label) * p.FeatValue / n
			if g != 0 {
				for _, f := range e.Features {
					grad[f] += g
				}
			}
		}
		for i := range m.W {
			m.W[i] -= step * grad[i]
		}
	}
	return m
}
