package svm

import (
	"math"
	"math/rand"
	"testing"

	"privbayes/internal/dataset"
)

// separableData builds a dataset where the label is a deterministic
// function of two features — linearly separable in one-hot space.
func separableData(n int, noise float64, seed int64) *dataset.Dataset {
	attrs := []dataset.Attribute{
		dataset.NewCategorical("f1", []string{"0", "1", "2"}),
		dataset.NewCategorical("f2", []string{"0", "1"}),
		dataset.NewCategorical("junk", []string{"0", "1", "2", "3"}),
		dataset.NewCategorical("label", []string{"neg", "pos"}),
	}
	ds := dataset.New(attrs)
	rng := rand.New(rand.NewSource(seed))
	rec := make([]uint16, 4)
	for i := 0; i < n; i++ {
		f1 := rng.Intn(3)
		f2 := rng.Intn(2)
		y := 0
		if f1 == 2 || f2 == 1 {
			y = 1
		}
		if rng.Float64() < noise {
			y = 1 - y
		}
		rec[0], rec[1], rec[2], rec[3] = uint16(f1), uint16(f2), uint16(rng.Intn(4)), uint16(y)
		ds.Append(rec)
	}
	return ds
}

func TestFeaturizeShape(t *testing.T) {
	ds := separableData(100, 0, 1)
	p := Featurize(ds, 3, func(c int) bool { return c == 1 })
	// Features: 3 + 2 + 4 one-hot + 1 bias = 10.
	if p.Dim != 10 {
		t.Fatalf("dim = %d, want 10", p.Dim)
	}
	if len(p.Examples) != 100 {
		t.Fatalf("examples = %d", len(p.Examples))
	}
	// Each example: 3 attribute features + bias.
	for _, e := range p.Examples {
		if len(e.Features) != 4 {
			t.Fatalf("active features = %d, want 4", len(e.Features))
		}
		if e.Label != 1 && e.Label != -1 {
			t.Fatalf("label = %d", e.Label)
		}
	}
	// Unit norm: 4 active features scaled by 1/sqrt(4).
	if math.Abs(p.FeatValue-0.5) > 1e-12 {
		t.Errorf("FeatValue = %v, want 0.5", p.FeatValue)
	}
}

func TestTrainHingeSeparable(t *testing.T) {
	train := separableData(4000, 0, 2)
	test := separableData(1000, 0, 3)
	pos := func(c int) bool { return c == 1 }
	m := TrainHinge(Featurize(train, 3, pos), 1, 5, rand.New(rand.NewSource(4)))
	mcr := MisclassificationRate(m, Featurize(test, 3, pos))
	if mcr > 0.02 {
		t.Errorf("separable MCR = %v, want ≈ 0", mcr)
	}
}

func TestTrainHingeNoisyStillLearns(t *testing.T) {
	train := separableData(4000, 0.1, 5)
	test := separableData(1000, 0, 6)
	pos := func(c int) bool { return c == 1 }
	m := TrainHinge(Featurize(train, 3, pos), 1, 5, rand.New(rand.NewSource(7)))
	mcr := MisclassificationRate(m, Featurize(test, 3, pos))
	if mcr > 0.1 {
		t.Errorf("10%%-noise MCR = %v, want < 0.1", mcr)
	}
}

func TestTrainHingeEmptyProblem(t *testing.T) {
	p := &Problem{Dim: 3, FeatValue: 1}
	m := TrainHinge(p, 1, 3, rand.New(rand.NewSource(8)))
	if len(m.W) != 3 {
		t.Error("empty problem should return zero model of right dim")
	}
}

func TestHuberLossShape(t *testing.T) {
	const h = 0.5
	// Piecewise values.
	if HuberLoss(2, h) != 0 {
		t.Error("loss beyond 1+h must be 0")
	}
	if got := HuberLoss(0, h); math.Abs(got-1) > 1e-12 {
		t.Errorf("loss at 0 = %v, want 1 (linear region)", got)
	}
	// Continuity at the knots.
	for _, z := range []float64{1 - h, 1 + h} {
		lo := HuberLoss(z-1e-9, h)
		hi := HuberLoss(z+1e-9, h)
		if math.Abs(lo-hi) > 1e-6 {
			t.Errorf("loss discontinuous at %v: %v vs %v", z, lo, hi)
		}
		dlo := HuberLossDeriv(z-1e-9, h)
		dhi := HuberLossDeriv(z+1e-9, h)
		if math.Abs(dlo-dhi) > 1e-6 {
			t.Errorf("derivative discontinuous at %v", z)
		}
	}
	// Derivative matches finite differences in the quadratic region.
	z := 1.1
	fd := (HuberLoss(z+1e-6, h) - HuberLoss(z-1e-6, h)) / 2e-6
	if math.Abs(fd-HuberLossDeriv(z, h)) > 1e-5 {
		t.Errorf("derivative %v vs finite difference %v", HuberLossDeriv(z, h), fd)
	}
}

func TestTrainHuberSeparable(t *testing.T) {
	train := separableData(3000, 0, 9)
	test := separableData(800, 0, 10)
	pos := func(c int) bool { return c == 1 }
	m := TrainHuber(Featurize(train, 3, pos), 1e-3, 0.5, nil, 200)
	mcr := MisclassificationRate(m, Featurize(test, 3, pos))
	if mcr > 0.02 {
		t.Errorf("Huber separable MCR = %v", mcr)
	}
}

func TestTrainHuberObjectiveDecreases(t *testing.T) {
	train := separableData(1000, 0.05, 11)
	pos := func(c int) bool { return c == 1 }
	p := Featurize(train, 3, pos)
	obj := func(m *Model) float64 {
		var loss float64
		for _, e := range p.Examples {
			loss += HuberLoss(float64(e.Label)*m.Score(p, e), 0.5)
		}
		loss /= float64(len(p.Examples))
		var reg float64
		for _, w := range m.W {
			reg += w * w
		}
		return loss + 0.5e-3*reg
	}
	m10 := TrainHuber(p, 1e-3, 0.5, nil, 10)
	m200 := TrainHuber(p, 1e-3, 0.5, nil, 200)
	if obj(m200) > obj(m10)+1e-9 {
		t.Errorf("objective increased with more iterations: %v -> %v", obj(m10), obj(m200))
	}
}

func TestMisclassificationRateBounds(t *testing.T) {
	ds := separableData(200, 0, 12)
	pos := func(c int) bool { return c == 1 }
	p := Featurize(ds, 3, pos)
	zero := &Model{W: make([]float64, p.Dim)}
	mcr := MisclassificationRate(zero, p)
	if mcr < 0 || mcr > 1 {
		t.Errorf("MCR = %v out of [0,1]", mcr)
	}
	if MisclassificationRate(zero, &Problem{Dim: p.Dim}) != 0 {
		t.Error("empty test set should give 0")
	}
}
