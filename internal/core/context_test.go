package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// TestSampleContextMatchesSampleP: for an uncancelled context,
// SampleContext is byte-identical to SampleP at every parallelism —
// including 1, where both consume the caller's generator serially.
func TestSampleContextMatchesSampleP(t *testing.T) {
	ds := chainData(3000, 1)
	m, err := Fit(ds, DefaultOptions(1, rand.New(rand.NewSource(2))))
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 2, 4} {
		for _, n := range []int{0, 1, 2047, 2048, 5000} {
			want := m.SampleP(n, rand.New(rand.NewSource(3)), par)
			got, err := m.SampleContext(context.Background(), n, rand.New(rand.NewSource(3)), par)
			if err != nil {
				t.Fatalf("par=%d n=%d: %v", par, n, err)
			}
			for c := 0; c < want.D(); c++ {
				for r := 0; r < n; r++ {
					if want.Value(r, c) != got.Value(r, c) {
						t.Fatalf("par=%d n=%d: cell (%d,%d) differs", par, n, r, c)
					}
				}
			}
		}
	}
}

// TestSampleContextCancelled: a cancelled context aborts sampling with
// context.Canceled and no partial dataset.
func TestSampleContextCancelled(t *testing.T) {
	ds := chainData(2000, 4)
	m, err := Fit(ds, DefaultOptions(1, rand.New(rand.NewSource(5))))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, par := range []int{1, 3} {
		out, err := m.SampleContext(ctx, 100_000, rand.New(rand.NewSource(6)), par)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("par=%d: err = %v, want context.Canceled", par, err)
		}
		if out != nil {
			t.Fatalf("par=%d: partial dataset returned", par)
		}
	}
}

// TestFitContextCancelled: FitContext on a cancelled context returns
// context.Canceled in both pipeline modes, never a partial model.
func TestFitContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, mode := range []Mode{ModeBinary, ModeGeneral} {
		ds := chainData(1500, 7)
		opt := DefaultOptions(1, rand.New(rand.NewSource(8)))
		opt.Mode = mode
		if mode == ModeBinary {
			opt.Score, opt.K = 1, 2 // score.F
		}
		m, err := FitContext(ctx, ds, opt)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mode %d: err = %v, want context.Canceled", mode, err)
		}
		if m != nil {
			t.Fatalf("mode %d: partial model returned", mode)
		}
	}
}

// TestFitContextProgressPhases: the progress sink reports both fitting
// phases, with monotone Done counts reaching Total.
func TestFitContextProgressPhases(t *testing.T) {
	ds := mixedData(2500, 9)
	opt := DefaultOptions(1, rand.New(rand.NewSource(10)))
	last := map[Phase]ProgressEvent{}
	opt.Progress = func(e ProgressEvent) {
		if prev, ok := last[e.Phase]; ok && e.Done < prev.Done {
			t.Fatalf("phase %v: Done regressed %d -> %d", e.Phase, prev.Done, e.Done)
		}
		last[e.Phase] = e
	}
	if _, err := FitContext(context.Background(), ds, opt); err != nil {
		t.Fatal(err)
	}
	for _, ph := range []Phase{PhaseNetwork, PhaseMarginals} {
		e, ok := last[ph]
		if !ok {
			t.Fatalf("phase %v never reported", ph)
		}
		if e.Done != e.Total || e.Total == 0 {
			t.Fatalf("phase %v ended at %d/%d", ph, e.Done, e.Total)
		}
	}
}
