package core

import (
	"context"
	"fmt"
	"math/rand"

	"privbayes/internal/dataset"
	"privbayes/internal/infer"
	"privbayes/internal/marginal"
	"privbayes/internal/parallel"
)

// Sample draws n synthetic tuples by ancestral sampling (Section 3,
// "Generation of synthetic data"): attributes are sampled in network
// order, so every parent is available — suitably generalized — before
// its children. The serial path; SampleP fans the same loop out over
// row chunks.
func (m *Model) Sample(n int, rng *rand.Rand) *dataset.Dataset {
	out := dataset.NewWithLen(m.Attrs, n)
	m.sampleRange(out, 0, n, rng)
	return out
}

// sampleChunk is the row granularity of parallel sampling. The chunk
// geometry depends only on n, so the chunk index — and with it the
// chunk's RNG stream — is independent of the worker count.
const sampleChunk = 2048

// SampleP draws n synthetic tuples with chunked row-range fan-out
// across up to `parallelism` workers (<= 0 selects GOMAXPROCS; see
// parallel.Workers). Each fixed-size row chunk samples from its own
// rand.Rand seeded by sequential draws from rng (the split-RNG scheme).
// Chunk geometry and seeds depend only on (n, seed) — never on the
// worker count — so for a fixed seed the output is bit-identical at
// every parallelism other than 1, on any machine: the default 0 gives
// the same tuples on one core as on sixty-four. Parallelism 1 — and
// only 1 — takes the serial Sample path, which consumes rng directly
// and reproduces the pre-parallel engine byte for byte; its tuple
// stream therefore differs from (but is distributed identically to)
// the chunked one.
func (m *Model) SampleP(n int, rng *rand.Rand, parallelism int) *dataset.Dataset {
	if parallelism == 1 {
		return m.Sample(n, rng)
	}
	workers := parallel.Workers(parallelism)
	chunks := parallel.Chunks(n, sampleChunk)
	seeds := parallel.SplitSeeds(rng, chunks)
	out := dataset.NewWithLen(m.Attrs, n)
	parallel.For(workers, chunks, func(c int) {
		lo := c * sampleChunk
		hi := min(lo+sampleChunk, n)
		m.sampleRange(out, lo, hi, rand.New(rand.NewSource(seeds[c])))
	})
	return out
}

// SampleContext is SampleP with cancellation: ctx is checked at every
// sample-chunk boundary (2048 rows), so a cancelled call stops within
// one chunk, drains its workers, and returns ctx.Err(). For an
// uncancelled context the output is byte-identical to SampleP at the
// same (n, rng state, parallelism) — including the parallelism 1
// legacy-serial stream, which here runs chunk by chunk on the caller's
// generator exactly as Sample consumes it.
func (m *Model) SampleContext(ctx context.Context, n int, rng *rand.Rand, parallelism int) (*dataset.Dataset, error) {
	return m.sampleContext(ctx, n, rng, parallelism, nil)
}

// SampleContextProgress is SampleContext with a progress callback:
// progress (optional) receives PhaseSampling events with Done/Total in
// rows, delivered serially.
func (m *Model) SampleContextProgress(ctx context.Context, n int, rng *rand.Rand, parallelism int, progress func(ProgressEvent)) (*dataset.Dataset, error) {
	return m.sampleContext(ctx, n, rng, parallelism, newProgressSink(progress))
}

func (m *Model) sampleContext(ctx context.Context, n int, rng *rand.Rand, parallelism int, progress *progressSink) (*dataset.Dataset, error) {
	progress.start(PhaseSampling, n)
	if parallelism == 1 {
		out := dataset.NewWithLen(m.Attrs, n)
		for lo := 0; lo < n; lo += sampleChunk {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			hi := min(lo+sampleChunk, n)
			m.sampleRange(out, lo, hi, rng)
			progress.add(PhaseSampling, hi-lo, n)
		}
		return out, nil
	}
	workers := parallel.Workers(parallelism)
	chunks := parallel.Chunks(n, sampleChunk)
	seeds := parallel.SplitSeeds(rng, chunks)
	out := dataset.NewWithLen(m.Attrs, n)
	if err := parallel.ForCtx(ctx, workers, chunks, func(c int) {
		lo := c * sampleChunk
		hi := min(lo+sampleChunk, n)
		m.sampleRange(out, lo, hi, rand.New(rand.NewSource(seeds[c])))
		progress.add(PhaseSampling, hi-lo, n)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// sampleRange fills rows [lo, hi) of out by ancestral sampling from rng.
// Distinct ranges touch disjoint row slots, so concurrent calls on one
// dataset are race-free.
func (m *Model) sampleRange(out *dataset.Dataset, lo, hi int, rng *rand.Rand) {
	d := len(m.Attrs)
	rec := make([]uint16, d)
	raw := make([]int, d) // raw sampled code per attribute
	var parentCodes []int
	for r := lo; r < hi; r++ {
		for i, pair := range m.Network.Pairs {
			cond := m.Conds[i]
			parentCodes = parentCodes[:0]
			for _, p := range pair.Parents {
				code := raw[p.Attr]
				if p.Level > 0 {
					code = m.Attrs[p.Attr].Generalize(p.Level, code)
				}
				parentCodes = append(parentCodes, code)
			}
			x := cond.SampleX(parentCodes, rng)
			raw[pair.X.Attr] = x
		}
		for a := 0; a < d; a++ {
			rec[a] = uint16(raw[a])
		}
		out.SetRecord(r, rec)
	}
}

// InferMarginal answers a marginal query directly from the fitted model
// instead of via random sampling — the direction Section 7 of the paper
// flags as future work ("whether certain questions could be answered
// directly from the materialized model and its parameters, rather than
// via random sampling"). It performs exact forward inference over the
// Bayesian network through the variable-elimination engine of
// internal/infer; the answer carries no sampling error, so model-direct
// answers are strictly more accurate for low-dimensional queries (see
// BenchmarkAblationInferenceVsSampling).
//
// Deprecated: InferMarginal is the positional-maxCells v1 form, kept as
// a byte-identical shim over the query engine. Use the v2 query API —
//
//	m.Query(ctx, core.Marginal(names...), core.QueryMaxCells(n))
//
// — which takes a context, names attributes instead of indexing them,
// replaces the positional maxCells with the QueryMaxCells option, and
// additionally answers conditional, probability and count queries with
// predicates and taxonomy-level rollup. For a fixed query class
// (marginal over raw-level attributes) the two return bit-identical
// tables.
func (m *Model) InferMarginal(attrs []int, maxCells int) (*marginal.Table, error) {
	targets := make([]infer.Target, len(attrs))
	for i, a := range attrs {
		if a < 0 || a >= len(m.Attrs) {
			return nil, fmt.Errorf("core: attribute %d out of range", a)
		}
		targets[i] = infer.Target{Attr: a}
	}
	// Parallelism 1 keeps the shim allocation-lean on the tiny factors
	// typical of marginal queries; any setting returns the same bits.
	return m.engine().Joint(context.Background(), targets, nil,
		infer.Options{MaxCells: maxCells, Parallelism: 1})
}

// engine wraps the model's CPTs as an inference engine. Construction is
// O(d) slice wrapping, so per-query construction costs nanoseconds and
// keeps Model free of caching state (models are plain serializable
// values).
func (m *Model) engine() *infer.Engine {
	cpts := make([]infer.CPT, len(m.Network.Pairs))
	for i, pair := range m.Network.Pairs {
		parents := make([]infer.Parent, len(pair.Parents))
		for j, par := range pair.Parents {
			parents[j] = infer.Parent{Attr: par.Attr, Level: par.Level}
		}
		cpts[i] = infer.CPT{X: pair.X.Attr, Parents: parents, Cond: m.Conds[i]}
	}
	return infer.NewEngine(m.Attrs, cpts)
}

// DefaultInferenceCells caps the intermediate inference factor when no
// explicit bound is given (it equals infer.DefaultMaxCells).
const DefaultInferenceCells = infer.DefaultMaxCells
