package core

import (
	"context"
	"fmt"
	"math/rand"

	"privbayes/internal/dataset"
	"privbayes/internal/marginal"
	"privbayes/internal/parallel"
)

// Sample draws n synthetic tuples by ancestral sampling (Section 3,
// "Generation of synthetic data"): attributes are sampled in network
// order, so every parent is available — suitably generalized — before
// its children. The serial path; SampleP fans the same loop out over
// row chunks.
func (m *Model) Sample(n int, rng *rand.Rand) *dataset.Dataset {
	out := dataset.NewWithLen(m.Attrs, n)
	m.sampleRange(out, 0, n, rng)
	return out
}

// sampleChunk is the row granularity of parallel sampling. The chunk
// geometry depends only on n, so the chunk index — and with it the
// chunk's RNG stream — is independent of the worker count.
const sampleChunk = 2048

// SampleP draws n synthetic tuples with chunked row-range fan-out
// across up to `parallelism` workers (<= 0 selects GOMAXPROCS; see
// parallel.Workers). Each fixed-size row chunk samples from its own
// rand.Rand seeded by sequential draws from rng (the split-RNG scheme).
// Chunk geometry and seeds depend only on (n, seed) — never on the
// worker count — so for a fixed seed the output is bit-identical at
// every parallelism other than 1, on any machine: the default 0 gives
// the same tuples on one core as on sixty-four. Parallelism 1 — and
// only 1 — takes the serial Sample path, which consumes rng directly
// and reproduces the pre-parallel engine byte for byte; its tuple
// stream therefore differs from (but is distributed identically to)
// the chunked one.
func (m *Model) SampleP(n int, rng *rand.Rand, parallelism int) *dataset.Dataset {
	if parallelism == 1 {
		return m.Sample(n, rng)
	}
	workers := parallel.Workers(parallelism)
	chunks := parallel.Chunks(n, sampleChunk)
	seeds := parallel.SplitSeeds(rng, chunks)
	out := dataset.NewWithLen(m.Attrs, n)
	parallel.For(workers, chunks, func(c int) {
		lo := c * sampleChunk
		hi := min(lo+sampleChunk, n)
		m.sampleRange(out, lo, hi, rand.New(rand.NewSource(seeds[c])))
	})
	return out
}

// SampleContext is SampleP with cancellation: ctx is checked at every
// sample-chunk boundary (2048 rows), so a cancelled call stops within
// one chunk, drains its workers, and returns ctx.Err(). For an
// uncancelled context the output is byte-identical to SampleP at the
// same (n, rng state, parallelism) — including the parallelism 1
// legacy-serial stream, which here runs chunk by chunk on the caller's
// generator exactly as Sample consumes it.
func (m *Model) SampleContext(ctx context.Context, n int, rng *rand.Rand, parallelism int) (*dataset.Dataset, error) {
	return m.sampleContext(ctx, n, rng, parallelism, nil)
}

// SampleContextProgress is SampleContext with a progress callback:
// progress (optional) receives PhaseSampling events with Done/Total in
// rows, delivered serially.
func (m *Model) SampleContextProgress(ctx context.Context, n int, rng *rand.Rand, parallelism int, progress func(ProgressEvent)) (*dataset.Dataset, error) {
	return m.sampleContext(ctx, n, rng, parallelism, newProgressSink(progress))
}

func (m *Model) sampleContext(ctx context.Context, n int, rng *rand.Rand, parallelism int, progress *progressSink) (*dataset.Dataset, error) {
	progress.start(PhaseSampling, n)
	if parallelism == 1 {
		out := dataset.NewWithLen(m.Attrs, n)
		for lo := 0; lo < n; lo += sampleChunk {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			hi := min(lo+sampleChunk, n)
			m.sampleRange(out, lo, hi, rng)
			progress.add(PhaseSampling, hi-lo, n)
		}
		return out, nil
	}
	workers := parallel.Workers(parallelism)
	chunks := parallel.Chunks(n, sampleChunk)
	seeds := parallel.SplitSeeds(rng, chunks)
	out := dataset.NewWithLen(m.Attrs, n)
	if err := parallel.ForCtx(ctx, workers, chunks, func(c int) {
		lo := c * sampleChunk
		hi := min(lo+sampleChunk, n)
		m.sampleRange(out, lo, hi, rand.New(rand.NewSource(seeds[c])))
		progress.add(PhaseSampling, hi-lo, n)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// sampleRange fills rows [lo, hi) of out by ancestral sampling from rng.
// Distinct ranges touch disjoint row slots, so concurrent calls on one
// dataset are race-free.
func (m *Model) sampleRange(out *dataset.Dataset, lo, hi int, rng *rand.Rand) {
	d := len(m.Attrs)
	rec := make([]uint16, d)
	raw := make([]int, d) // raw sampled code per attribute
	var parentCodes []int
	for r := lo; r < hi; r++ {
		for i, pair := range m.Network.Pairs {
			cond := m.Conds[i]
			parentCodes = parentCodes[:0]
			for _, p := range pair.Parents {
				code := raw[p.Attr]
				if p.Level > 0 {
					code = m.Attrs[p.Attr].Generalize(p.Level, code)
				}
				parentCodes = append(parentCodes, code)
			}
			x := cond.SampleX(parentCodes, rng)
			raw[pair.X.Attr] = x
		}
		for a := 0; a < d; a++ {
			rec[a] = uint16(raw[a])
		}
		out.SetRecord(r, rec)
	}
}

// InferMarginal answers a marginal query directly from the fitted model
// instead of via random sampling — the direction Section 7 of the paper
// flags as future work ("whether certain questions could be answered
// directly from the materialized model and its parameters, rather than
// via random sampling"). It performs exact forward inference over the
// Bayesian network: AP pairs are processed in topological order,
// multiplying each relevant conditional into a running joint and summing
// out attributes as soon as no later factor or query needs them.
//
// The intermediate joint can grow beyond the network's treewidth-bounded
// ideal for unlucky queries; maxCells bounds it (0 means the
// DefaultInferenceCells cap) and an error reports when the bound would
// be exceeded, in which case the caller should fall back to sampling.
// Eliminating sampling error makes model-direct answers strictly more
// accurate for low-dimensional queries (see BenchmarkInferenceVsSampling).
func (m *Model) InferMarginal(attrs []int, maxCells int) (*marginal.Table, error) {
	if maxCells <= 0 {
		maxCells = DefaultInferenceCells
	}
	want := make(map[int]bool, len(attrs))
	for _, a := range attrs {
		if a < 0 || a >= len(m.Attrs) {
			return nil, fmt.Errorf("core: attribute %d out of range", a)
		}
		want[a] = true
	}

	// Relevance: only ancestors of the query influence its marginal.
	relevant := make(map[int]bool, len(m.Attrs))
	for i := len(m.Network.Pairs) - 1; i >= 0; i-- {
		p := m.Network.Pairs[i]
		if want[p.X.Attr] || relevant[p.X.Attr] {
			relevant[p.X.Attr] = true
			for _, par := range p.Parents {
				relevant[par.Attr] = true
			}
		}
	}
	// lastUse[a] = index of the last relevant pair whose parent set
	// mentions attribute a; after that factor, a can be summed out
	// unless queried.
	lastUse := make(map[int]int, len(relevant))
	for i, p := range m.Network.Pairs {
		if !relevant[p.X.Attr] {
			continue
		}
		for _, par := range p.Parents {
			lastUse[par.Attr] = i
		}
	}

	// Running joint over raw attribute codes; starts as the scalar 1.
	joint := &factor{attrs: nil, dims: nil, p: []float64{1}}
	for i, pair := range m.Network.Pairs {
		if !relevant[pair.X.Attr] {
			continue
		}
		var err error
		joint, err = joint.multiplyConditional(m, pair, m.Conds[i], maxCells)
		if err != nil {
			return nil, err
		}
		// Sum out finished attributes.
		for _, a := range joint.attrs {
			if !want[a] && lastUse[a] <= i {
				joint = joint.sumOut(a)
			}
		}
	}
	// Order the result as requested.
	out := &marginal.Table{Vars: make([]marginal.Var, len(attrs)), Dims: make([]int, len(attrs))}
	size := 1
	for i, a := range attrs {
		out.Vars[i] = marginal.Var{Attr: a}
		out.Dims[i] = m.Attrs[a].Size()
		size *= out.Dims[i]
	}
	out.P = make([]float64, size)
	pos := make([]int, len(attrs))
	for i, a := range attrs {
		pos[i] = -1
		for j, fa := range joint.attrs {
			if fa == a {
				pos[i] = j
				break
			}
		}
		if pos[i] < 0 {
			return nil, fmt.Errorf("core: attribute %d lost during inference", a)
		}
	}
	codes := make([]int, len(joint.attrs))
	for idx, p := range joint.p {
		rem := idx
		for j := len(joint.attrs) - 1; j >= 0; j-- {
			codes[j] = rem % joint.dims[j]
			rem /= joint.dims[j]
		}
		o := 0
		for i := range attrs {
			o = o*out.Dims[i] + codes[pos[i]]
		}
		out.P[o] += p
	}
	return out, nil
}

// DefaultInferenceCells caps the intermediate joint of InferMarginal.
const DefaultInferenceCells = 1 << 22

// factor is an intermediate joint distribution over raw attribute codes,
// row-major with the last attribute fastest.
type factor struct {
	attrs []int
	dims  []int
	p     []float64
}

func (f *factor) indexOf(attr int) int {
	for i, a := range f.attrs {
		if a == attr {
			return i
		}
	}
	return -1
}

// multiplyConditional extends the factor with pair.X by multiplying in
// Pr*[X | Π]. Parents are already in the factor (guaranteed by network
// topological order); generalized parent levels are applied on the fly.
func (f *factor) multiplyConditional(m *Model, pair APPair, cond *marginal.Conditional, maxCells int) (*factor, error) {
	x := pair.X.Attr
	xDim := m.Attrs[x].Size()
	if len(f.p)*xDim > maxCells {
		return nil, fmt.Errorf("core: inference joint would exceed %d cells; fall back to sampling", maxCells)
	}
	parentPos := make([]int, len(pair.Parents))
	for i, par := range pair.Parents {
		parentPos[i] = f.indexOf(par.Attr)
		if parentPos[i] < 0 {
			return nil, fmt.Errorf("core: parent %d not in factor (network order violated)", par.Attr)
		}
	}
	out := &factor{
		attrs: append(append([]int(nil), f.attrs...), x),
		dims:  append(append([]int(nil), f.dims...), xDim),
		p:     make([]float64, len(f.p)*xDim),
	}
	codes := make([]int, len(f.attrs))
	parentCodes := make([]int, len(pair.Parents))
	for idx, base := range f.p {
		rem := idx
		for j := len(f.attrs) - 1; j >= 0; j-- {
			codes[j] = rem % f.dims[j]
			rem /= f.dims[j]
		}
		for i, par := range pair.Parents {
			c := codes[parentPos[i]]
			if par.Level > 0 {
				c = m.Attrs[par.Attr].Generalize(par.Level, c)
			}
			parentCodes[i] = c
		}
		off := cond.BlockIndex(parentCodes)
		for v := 0; v < xDim; v++ {
			out.p[idx*xDim+v] = base * cond.P[off+v]
		}
	}
	return out, nil
}

// sumOut marginalizes one attribute away.
func (f *factor) sumOut(attr int) *factor {
	pos := f.indexOf(attr)
	if pos < 0 {
		return f
	}
	outAttrs := make([]int, 0, len(f.attrs)-1)
	outDims := make([]int, 0, len(f.dims)-1)
	for i, a := range f.attrs {
		if i == pos {
			continue
		}
		outAttrs = append(outAttrs, a)
		outDims = append(outDims, f.dims[i])
	}
	size := 1
	for _, d := range outDims {
		size *= d
	}
	out := &factor{attrs: outAttrs, dims: outDims, p: make([]float64, size)}
	codes := make([]int, len(f.attrs))
	for idx, p := range f.p {
		rem := idx
		for j := len(f.attrs) - 1; j >= 0; j-- {
			codes[j] = rem % f.dims[j]
			rem /= f.dims[j]
		}
		o := 0
		for i := range f.attrs {
			if i == pos {
				continue
			}
			oi := codes[i]
			o = o*f.dims[i] + oi
		}
		out.p[o] += p
	}
	return out
}
