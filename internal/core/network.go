// Package core implements the PrivBayes pipeline itself: differentially
// private Bayesian network construction (Algorithms 2 and 4), noisy
// conditional generation (Algorithms 1 and 3), θ-usefulness degree
// selection (Section 4.5), and synthetic data sampling (Section 3).
package core

import (
	"fmt"
	"strings"

	"privbayes/internal/dataset"
	"privbayes/internal/infotheory"
	"privbayes/internal/marginal"
	"privbayes/internal/score"
)

// APPair is one attribute-parent pair (Xᵢ, Πᵢ) of a Bayesian network.
// The child X is always at raw generalization level; parents may be
// generalized when hierarchical encoding is in use.
type APPair struct {
	X       marginal.Var
	Parents []marginal.Var
}

// Vars returns the joint layout [Parents..., X] used for marginal
// materialization, so conditional blocks over X are contiguous.
func (p APPair) Vars() []marginal.Var {
	return append(append([]marginal.Var(nil), p.Parents...), p.X)
}

// Network is a Bayesian network N over the attributes of a dataset,
// as an ordered list of AP pairs: pair i may only use attributes of
// pairs j < i as parents, which makes N a DAG by construction.
type Network struct {
	Pairs []APPair
}

// Degree returns the maximum parent-set size (the paper's k).
func (n *Network) Degree() int {
	k := 0
	for _, p := range n.Pairs {
		if len(p.Parents) > k {
			k = len(p.Parents)
		}
	}
	return k
}

// SumMI returns Σᵢ I(Xᵢ, Πᵢ) measured on the dataset — the network
// quality metric of Figure 4.
func (n *Network) SumMI(ds *dataset.Dataset) float64 {
	var sum float64
	for _, p := range n.Pairs {
		joint := marginal.Materialize(ds, p.Vars())
		sum += infotheory.MutualInformationSplit(joint)
	}
	return sum
}

// Validate checks the structural invariants from Section 2.2: every
// attribute appears exactly once as a child, and every parent refers to
// an earlier child.
func (n *Network) Validate(d int) error {
	if len(n.Pairs) != d {
		return fmt.Errorf("core: network has %d pairs, dataset has %d attributes", len(n.Pairs), d)
	}
	seen := make(map[int]int) // attribute -> position
	for i, p := range n.Pairs {
		if _, dup := seen[p.X.Attr]; dup {
			return fmt.Errorf("core: attribute %d is the child of two AP pairs", p.X.Attr)
		}
		if p.X.Level != 0 {
			return fmt.Errorf("core: child attribute %d modeled at generalized level %d", p.X.Attr, p.X.Level)
		}
		seen[p.X.Attr] = i
		for _, par := range p.Parents {
			j, ok := seen[par.Attr]
			if !ok || j >= i {
				return fmt.Errorf("core: pair %d uses parent %d before it is modeled", i, par.Attr)
			}
		}
	}
	return nil
}

// String renders the network like Table 1 of the paper.
func (n *Network) String() string {
	var b strings.Builder
	for i, p := range n.Pairs {
		fmt.Fprintf(&b, "%d: X=%v Π=%v\n", i+1, p.X, p.Parents)
	}
	return b.String()
}

// Model is a fitted PrivBayes model: the network plus one noisy
// conditional distribution per AP pair, sufficient to sample synthetic
// data without touching the original dataset again.
type Model struct {
	Network Network
	Conds   []*marginal.Conditional
	Attrs   []dataset.Attribute
	// K is the degree used (binary mode) or -1 in general mode where
	// θ-usefulness caps domain sizes instead of a single k.
	K int
	// Score records which score function selected the AP pairs.
	Score score.Function
}
