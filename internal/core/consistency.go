package core

import "privbayes/internal/marginal"

// EnforceConsistency post-processes a set of noisy AP-pair joints so
// that they agree on every shared variable — the optimization footnote 1
// of the paper points at ("we could apply additional post-processing of
// distributions, in the spirit of [2, 17, 27], to reflect the fact that
// lower degree distributions should be consistent").
//
// Independent Laplace noise leaves two joints that share an attribute
// with different implied 1-way marginals for it. For each variable that
// appears in at least two joints, the implied marginals are averaged —
// averaging independent noisy estimates reduces their variance — and
// each joint is rescaled (one iterative-proportional-fitting step per
// variable) to match the consensus. A few sweeps propagate the
// adjustments; each table remains a normalized distribution throughout.
//
// This costs no privacy budget: it only reads the already-noised joints.
func EnforceConsistency(joints []*marginal.Table, sweeps int) {
	if sweeps <= 0 {
		sweeps = 3
	}
	// Collect the variables appearing in multiple joints.
	type occurrence struct {
		table int
		pos   int
	}
	occs := make(map[marginal.Var][]occurrence)
	for ti, t := range joints {
		for pi, v := range t.Vars {
			occs[v] = append(occs[v], occurrence{table: ti, pos: pi})
		}
	}
	type sharedVar struct {
		v    marginal.Var
		list []occurrence
	}
	var shared []sharedVar
	for v, list := range occs {
		if len(list) > 1 {
			shared = append(shared, sharedVar{v, list})
		}
	}
	// Deterministic sweep order (map iteration is randomized).
	for i := 1; i < len(shared); i++ {
		for j := i; j > 0 && less(shared[j].v, shared[j-1].v); j-- {
			shared[j], shared[j-1] = shared[j-1], shared[j]
		}
	}

	for s := 0; s < sweeps; s++ {
		for _, sv := range shared {
			dim := dimOf(joints[sv.list[0].table], sv.list[0].pos)
			consensus := make([]float64, dim)
			margs := make([][]float64, len(sv.list))
			for i, oc := range sv.list {
				m := projectVar(joints[oc.table], oc.pos)
				margs[i] = m
				for c, p := range m {
					consensus[c] += p
				}
			}
			inv := 1 / float64(len(sv.list))
			for c := range consensus {
				consensus[c] *= inv
			}
			for i, oc := range sv.list {
				scaleVar(joints[oc.table], oc.pos, margs[i], consensus)
			}
		}
	}
}

func less(a, b marginal.Var) bool {
	if a.Attr != b.Attr {
		return a.Attr < b.Attr
	}
	return a.Level < b.Level
}

func dimOf(t *marginal.Table, pos int) int { return t.Dims[pos] }

// projectVar computes the 1-way marginal of the variable at pos.
func projectVar(t *marginal.Table, pos int) []float64 {
	dim := t.Dims[pos]
	stride := 1
	for i := len(t.Dims) - 1; i > pos; i-- {
		stride *= t.Dims[i]
	}
	out := make([]float64, dim)
	for idx, p := range t.P {
		out[idx/stride%dim] += p
	}
	return out
}

// scaleVar rescales each slice of the variable at pos so its marginal
// moves from current to target. Zero-mass slices receive the target mass
// spread uniformly, so no probability is silently dropped.
func scaleVar(t *marginal.Table, pos int, current, target []float64) {
	dim := t.Dims[pos]
	stride := 1
	for i := len(t.Dims) - 1; i > pos; i-- {
		stride *= t.Dims[i]
	}
	sliceCells := len(t.P) / dim
	for idx := range t.P {
		c := idx / stride % dim
		if current[c] > 0 {
			t.P[idx] *= target[c] / current[c]
		} else {
			t.P[idx] = target[c] / float64(sliceCells)
		}
	}
}
