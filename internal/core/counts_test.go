package core

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"privbayes/internal/counts"
	"privbayes/internal/dataset"
	"privbayes/internal/marginal"
	"privbayes/internal/score"
)

// countsFitJSON fits through FitCountsContext over a scan-backed count
// provider re-reading ds in chunks of chunkRows, and returns the
// serialized model bytes.
func countsFitJSON(t *testing.T, ds *dataset.Dataset, opt Options, chunkRows, parallelism int) []byte {
	t.Helper()
	src := dataset.DatasetSource(ds, chunkRows)
	p, err := counts.NewProvider(context.Background(), src, parallelism)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FitCountsContext(context.Background(), ds.Attrs(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf, opt.Epsilon); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFitCountsBitIdenticalToInMemory is the out-of-core contract: a fit
// whose every data access goes through chunked count tables produces
// the byte-identical model an in-memory fit produces from the same rows
// — for both algorithm families, at every parallelism including the
// legacy serial path, and regardless of chunk geometry.
func TestFitCountsBitIdenticalToInMemory(t *testing.T) {
	cases := []struct {
		name string
		ds   *dataset.Dataset
		opt  Options
	}{
		{"binary", chainData(3000, 7), Options{Epsilon: 0.8, Beta: 0.3, Theta: 4, K: 2,
			Mode: ModeBinary, Score: score.F}},
		{"general", mixedData(3000, 8), Options{Epsilon: 0.8, Beta: 0.3, Theta: 4,
			Mode: ModeGeneral, Score: score.R, UseHierarchy: true}},
	}
	for _, tc := range cases {
		for _, par := range []int{1, 2, 4} {
			opt := tc.opt
			opt.Parallelism = par
			opt.Rand = rand.New(rand.NewSource(11))
			m, err := Fit(tc.ds, opt)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := m.WriteJSON(&buf, opt.Epsilon); err != nil {
				t.Fatal(err)
			}
			want := buf.Bytes()
			for _, chunk := range []int{100, 999, 1 << 16} {
				opt.Rand = rand.New(rand.NewSource(11))
				got := countsFitJSON(t, tc.ds, opt, chunk, par)
				if !bytes.Equal(got, want) {
					t.Errorf("%s: counts fit (chunk %d, parallelism %d) differs from in-memory fit", tc.name, chunk, par)
				}
			}
		}
	}
}

// TestFitCountsScanBudget checks the one-scan-per-iteration promise: an
// out-of-core fit's scan count is bounded by the number of greedy
// iterations plus the initial row-counting pass and the conditional
// materialization pass — not by the number of candidates scored.
func TestFitCountsScanBudget(t *testing.T) {
	ds := chainData(2000, 3)
	src := dataset.DatasetSource(ds, 512)
	p, err := counts.NewProvider(context.Background(), src, 2)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Epsilon: 0.8, Beta: 0.3, Theta: 4, K: 2, Mode: ModeBinary,
		Score: score.F, Parallelism: 2, Rand: rand.New(rand.NewSource(1))}
	if _, err := FitCountsContext(context.Background(), ds.Attrs(), p, opt); err != nil {
		t.Fatal(err)
	}
	scans, _ := p.Stats()
	// d-1 greedy iterations + counting scan + conditionals prefetch,
	// with slack for memo-hit iterations that still prefetch.
	maxScans := int64(ds.D() + 2)
	if scans > maxScans {
		t.Errorf("fit used %d scans, want <= %d (one per greedy iteration)", scans, maxScans)
	}
}

// TestRefitCountsMatchesConditionals: an incremental refit over a
// maintained count store reproduces — byte for byte — the noisy
// conditionals a full-data materialization draws with the same seed and
// network, at both the serial and parallel settings.
func TestRefitCountsMatchesConditionals(t *testing.T) {
	ds := chainData(3000, 7)
	opt := Options{Epsilon: 0.8, Beta: 0.3, Theta: 4, K: 2, Mode: ModeBinary,
		Score: score.F, Parallelism: 2, Rand: rand.New(rand.NewSource(21))}
	m, err := Fit(ds, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Maintain a count store the way the curator does: register the
	// network's AP pairs, accumulate chunks as rows arrive.
	st := counts.NewStore(ds.Attrs())
	for _, pair := range m.Network.Pairs {
		if err := st.Register(pair.Parents, []marginal.Var{pair.X}); err != nil {
			t.Fatal(err)
		}
	}
	for lo := 0; lo < ds.N(); lo += 700 {
		hi := lo + 700
		if hi > ds.N() {
			hi = ds.N()
		}
		if err := st.Accumulate(ds.Slice(lo, hi)); err != nil {
			t.Fatal(err)
		}
	}

	for _, par := range []int{1, 2} {
		refitOpt := Options{Epsilon: 0.56, Mode: ModeBinary, Score: score.F,
			Parallelism: par, Rand: rand.New(rand.NewSource(33))}
		got, err := RefitCountsContext(context.Background(), ds.Attrs(), st.Source(), m.Network, m.K, refitOpt)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(33))
		wantConds, err := NoisyConditionalsBinary(ds, m.Network, m.K, 0.56, false, false, par, rng)
		if err != nil {
			t.Fatal(err)
		}
		var gotBuf, wantBuf bytes.Buffer
		if err := got.WriteJSON(&gotBuf, 0.56); err != nil {
			t.Fatal(err)
		}
		want := &Model{Attrs: m.Attrs, Score: m.Score, K: m.K, Network: m.Network, Conds: wantConds}
		if err := want.WriteJSON(&wantBuf, 0.56); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotBuf.Bytes(), wantBuf.Bytes()) {
			t.Errorf("parallelism %d: incremental refit differs from full-data conditionals", par)
		}
	}
}

// TestRefitCountsGeneralMode exercises the general-mode branch and the
// sampling path of a refit model end to end.
func TestRefitCountsGeneralMode(t *testing.T) {
	ds := mixedData(2000, 5)
	opt := Options{Epsilon: 1, Beta: 0.3, Theta: 4, Mode: ModeGeneral,
		Score: score.R, UseHierarchy: true, Parallelism: 2, Rand: rand.New(rand.NewSource(9))}
	m, err := Fit(ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	st := counts.NewStore(ds.Attrs())
	for _, pair := range m.Network.Pairs {
		if err := st.Register(pair.Parents, []marginal.Var{pair.X}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Accumulate(ds); err != nil {
		t.Fatal(err)
	}
	refit, err := RefitCountsContext(context.Background(), ds.Attrs(), st.Source(), m.Network, -1,
		Options{Epsilon: 0.7, Mode: ModeGeneral, Score: score.R, Parallelism: 2, Rand: rand.New(rand.NewSource(10))})
	if err != nil {
		t.Fatal(err)
	}
	out := refit.SampleP(500, rand.New(rand.NewSource(11)), 2)
	if out.N() != 500 || out.D() != ds.D() {
		t.Fatalf("refit sample shape %dx%d, want 500x%d", out.N(), out.D(), ds.D())
	}
}

// TestRefitCountsValidation covers the error paths: nil rng, bad
// epsilon, empty source, invalid network, bad anchor degree.
func TestRefitCountsValidation(t *testing.T) {
	ds := chainData(200, 1)
	st := counts.NewStore(ds.Attrs())
	if err := st.Accumulate(ds); err != nil {
		t.Fatal(err)
	}
	src := st.Source()
	net := Network{Pairs: []APPair{
		{X: marginal.Var{Attr: 0}}, {X: marginal.Var{Attr: 1}, Parents: []marginal.Var{{Attr: 0}}}}}
	good := Options{Epsilon: 1, Mode: ModeBinary, Score: score.F, Rand: rand.New(rand.NewSource(1))}

	if _, err := RefitCountsContext(context.Background(), ds.Attrs(), src, net, 1, Options{Epsilon: 1, Mode: ModeBinary}); err == nil {
		t.Error("nil rng accepted")
	}
	bad := good
	bad.Rand = rand.New(rand.NewSource(1))
	bad.Epsilon = 0
	if _, err := RefitCountsContext(context.Background(), ds.Attrs(), src, net, 1, bad); err == nil {
		t.Error("zero epsilon accepted")
	}
	empty := counts.NewStore(ds.Attrs())
	if _, err := RefitCountsContext(context.Background(), ds.Attrs(), empty.Source(), net, 1, good); err == nil {
		t.Error("empty source accepted")
	}
	if _, err := RefitCountsContext(context.Background(), ds.Attrs(), src, net, 99, good); err == nil {
		t.Error("out-of-range anchor degree accepted")
	}
	badNet := Network{Pairs: []APPair{{X: marginal.Var{Attr: 42}}}}
	if _, err := RefitCountsContext(context.Background(), ds.Attrs(), src, badNet, 0, good); err == nil {
		t.Error("invalid network accepted")
	}
}
