package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"privbayes/internal/dataset"
	"privbayes/internal/score"
)

// fuzzModelArtifact builds one small valid SaveModel document to anchor
// the seed corpus.
func fuzzModelArtifact(tb testing.TB) []byte {
	tb.Helper()
	attrs := []dataset.Attribute{
		dataset.NewCategorical("a", []string{"x", "y"}),
		dataset.NewCategorical("b", []string{"x", "y", "z"}),
		dataset.NewContinuous("c", 0, 10, 4),
	}
	rng := rand.New(rand.NewSource(3))
	ds := dataset.NewWithCapacity(attrs, 400)
	rec := make([]uint16, 3)
	for i := 0; i < 400; i++ {
		rec[0] = uint16(rng.Intn(2))
		rec[1] = uint16((int(rec[0]) + rng.Intn(2)) % 3)
		rec[2] = uint16(rng.Intn(4))
		ds.Append(rec)
	}
	opt := DefaultOptions(1.0, rng)
	opt.Score = score.R
	m, err := Fit(ds, opt)
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf, 1.0); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadModelJSON hammers the untrusted-artifact loader (the path
// behind privbayes.LoadModel and privbayesd's POST /models): any input
// must either be rejected with an error wrapping ErrInvalidModel-style
// validation, or produce a model that is internally consistent enough
// to re-validate, re-serialize and sample — and must never panic.
func FuzzReadModelJSON(f *testing.F) {
	valid := fuzzModelArtifact(f)
	f.Add(valid)
	// Crafted corruptions of the valid artifact: truncations, version
	// games, structural damage, dimension lies, and hostile sizes.
	for cut := 1; cut < len(valid); cut += len(valid) / 7 {
		f.Add(valid[:cut])
	}
	s := string(valid)
	f.Add([]byte(strings.Replace(s, `"version":1`, `"version":2`, 1)))
	f.Add([]byte(strings.Replace(s, `"version":1`, `"epsilon":0`, 1)))
	f.Add([]byte(strings.Replace(s, `"Attrs"`, `"Nope"`, 1)))
	f.Add([]byte(strings.ReplaceAll(s, `"P":[`, `"P":[1e308,`)))
	f.Add([]byte(strings.ReplaceAll(s, `"Dims":[`, `"Dims":[65999,`)))
	f.Add([]byte(strings.Replace(s, `"K":`, `"K":99,"old":`, 1)))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":1,"model":{}}`))
	f.Add([]byte(`{"version":1,"model":{"Attrs":[{"Name":"a","Kind":0,"Labels":["x","y"]}],"Network":{"Pairs":[{"X":{"Attr":0}}]},"Conds":[],"K":-1}}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, _, err := ReadModelJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted models must uphold every invariant the sampler and
		// re-serialization rely on.
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted model fails Validate: %v", err)
		}
		var buf bytes.Buffer
		if err := m.WriteJSON(&buf, 0); err != nil {
			t.Fatalf("accepted model fails to re-serialize: %v", err)
		}
		if _, _, err := ReadModelJSON(&buf); err != nil {
			t.Fatalf("round-tripped model rejected: %v", err)
		}
		// Sampling must not panic on any accepted model; keep it cheap
		// by skipping pathologically wide ones.
		if len(m.Attrs) <= 64 {
			m.Sample(16, rand.New(rand.NewSource(1)))
		}
	})
}
