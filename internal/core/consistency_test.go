package core

import (
	"math"
	"math/rand"
	"testing"

	"privbayes/internal/marginal"
	"privbayes/internal/score"
)

func noisyJoints(t *testing.T, seed int64) ([]*marginal.Table, Network) {
	t.Helper()
	ds := chainData(4000, seed)
	sc := score.NewScorer(score.F, ds)
	rng := rand.New(rand.NewSource(seed + 1))
	net := GreedyBayesBinary(ds, 2, math.Inf(1), sc, 1, rng)
	var joints []*marginal.Table
	for _, pair := range net.Pairs {
		j := marginal.Materialize(ds, pair.Vars())
		j.AddLaplace(rng, 0.02)
		j.ClampNormalize()
		joints = append(joints, j)
	}
	return joints, net
}

// After enforcement, every pair of joints sharing a variable must imply
// (nearly) the same 1-way marginal for it.
func TestEnforceConsistencyAgreement(t *testing.T) {
	joints, _ := noisyJoints(t, 41)
	EnforceConsistency(joints, 8)
	type seen struct {
		table int
		pos   int
	}
	byVar := map[marginal.Var][]seen{}
	for ti, j := range joints {
		for pi, v := range j.Vars {
			byVar[v] = append(byVar[v], seen{ti, pi})
		}
	}
	for v, list := range byVar {
		if len(list) < 2 {
			continue
		}
		ref := projectVar(joints[list[0].table], list[0].pos)
		for _, s := range list[1:] {
			got := projectVar(joints[s.table], s.pos)
			for c := range ref {
				if math.Abs(ref[c]-got[c]) > 0.02 {
					t.Errorf("variable %v: marginals disagree after enforcement: %v vs %v", v, ref, got)
				}
			}
		}
	}
}

func TestEnforceConsistencyPreservesMass(t *testing.T) {
	joints, _ := noisyJoints(t, 42)
	EnforceConsistency(joints, 3)
	for i, j := range joints {
		if math.Abs(j.Sum()-1) > 1e-9 {
			t.Errorf("joint %d mass = %v after enforcement", i, j.Sum())
		}
		for _, p := range j.P {
			if p < -1e-12 {
				t.Fatalf("joint %d has negative cell %v", i, p)
			}
		}
	}
}

// Averaging independent noisy estimates reduces variance: with
// consistency on, the implied 1-way marginals should on average be
// closer to the truth.
func TestConsistencyImprovesSharedMarginals(t *testing.T) {
	ds := chainData(4000, 43)
	var errOn, errOff float64
	const reps = 5
	for r := 0; r < reps; r++ {
		for _, consistent := range []bool{false, true} {
			rng := rand.New(rand.NewSource(int64(100 + r)))
			m, err := Fit(ds, Options{
				Epsilon: 0.05, Beta: 0.3, Theta: 4, K: 2,
				Mode: ModeBinary, Score: score.F, Rand: rng,
				Consistency: consistent,
			})
			if err != nil {
				t.Fatal(err)
			}
			syn := m.Sample(20000, rng)
			var e float64
			for a := 0; a < ds.D(); a++ {
				vars := []marginal.Var{{Attr: a}}
				e += marginal.TVD(marginal.Materialize(ds, vars), marginal.Materialize(syn, vars))
			}
			if consistent {
				errOn += e
			} else {
				errOff += e
			}
		}
	}
	if errOn > errOff*1.1 {
		t.Errorf("consistency post-processing degraded 1-way marginals: on=%v off=%v", errOn/reps, errOff/reps)
	}
}

func TestEnforceConsistencyNoSharedVars(t *testing.T) {
	a := &marginal.Table{Vars: []marginal.Var{{Attr: 0}}, Dims: []int{2}, P: []float64{0.4, 0.6}}
	b := &marginal.Table{Vars: []marginal.Var{{Attr: 1}}, Dims: []int{2}, P: []float64{0.7, 0.3}}
	EnforceConsistency([]*marginal.Table{a, b}, 3)
	if a.P[0] != 0.4 || b.P[0] != 0.7 {
		t.Error("disjoint tables must be untouched")
	}
}

func TestEnforceConsistencyGeneralizedVarsDistinct(t *testing.T) {
	// The same attribute at different levels is NOT the same variable;
	// enforcement must not try to reconcile domains of different sizes.
	a := &marginal.Table{Vars: []marginal.Var{{Attr: 0, Level: 0}}, Dims: []int{4}, P: []float64{0.25, 0.25, 0.25, 0.25}}
	b := &marginal.Table{Vars: []marginal.Var{{Attr: 0, Level: 1}}, Dims: []int{2}, P: []float64{0.5, 0.5}}
	EnforceConsistency([]*marginal.Table{a, b}, 3) // must not panic
}
