package core

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"iter"

	"privbayes/internal/dataset"
	"privbayes/internal/parallel"
)

// StreamChunkRows is the row granularity of streaming synthesis:
// Synthesize and SynthesizeTo generate this many rows at a time, so
// per-call memory is bounded by the chunk no matter how many rows are
// requested. It must be a multiple of the sampler's internal 2048-row
// chunk: each burst then draws exactly the split-RNG seeds one
// monolithic SampleP call would draw for those rows, which is what
// makes a stream byte-identical to SampleP for a fixed (model, n,
// seed). privbayesd's streaming endpoint uses the same granularity.
const StreamChunkRows = 16_384

// Row is one synthetic record: the encoded value (attribute code) per
// attribute, in schema order. Rows yielded by Synthesize are fresh
// slices owned by the consumer. Decode codes with Model.AppendRowText
// or the dataset.Attribute accessors.
type Row []uint16

// Format selects the wire encoding of SynthesizeTo.
type Format int

const (
	// FormatCSV emits a header row then one decoded CSV row per record.
	FormatCSV Format = iota
	// FormatJSONL emits one JSON object per record, keys in schema
	// order, no header.
	FormatJSONL
)

// String names the format as used in privbayesd query parameters.
func (f Format) String() string {
	switch f {
	case FormatCSV:
		return "csv"
	case FormatJSONL:
		return "jsonl"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// synthConfig is the resolved option set of one streaming-synthesis
// call.
type synthConfig struct {
	source      Source
	parallelism int
	progress    *progressSink
}

// SynthOption configures Model.Synthesize and Model.SynthesizeTo.
type SynthOption func(*synthConfig)

// SynthSource sets the randomness source of the stream. Unset (or a
// zero Source) draws a cryptographic seed; fix the seed for replay.
func SynthSource(src Source) SynthOption {
	return func(c *synthConfig) { c.source = src }
}

// SynthSeed is shorthand for SynthSource(NewSource(seed)).
func SynthSeed(seed int64) SynthOption { return SynthSource(NewSource(seed)) }

// SynthParallelism bounds the sampling worker pool per generated chunk;
// <= 0 (the default) uses all CPU cores. Streaming always runs the
// chunked worker-count-independent sampling scheme, so the emitted rows
// are byte-identical at every setting — parallelism only changes how
// fast chunks are produced.
func SynthParallelism(p int) SynthOption {
	return func(c *synthConfig) { c.parallelism = p }
}

// SynthProgress registers a callback receiving PhaseSampling events
// (Done/Total in rows) as chunks are generated. Events are delivered
// serially.
func SynthProgress(fn func(ProgressEvent)) SynthOption {
	return func(c *synthConfig) { c.progress = newProgressSink(fn) }
}

func resolveSynth(opts []SynthOption) synthConfig {
	var c synthConfig
	for _, o := range opts {
		o(&c)
	}
	c.source = c.source.orCrypto()
	return c
}

// streamParallelism pins the effective sampling parallelism to the
// chunked (worker-count-independent) scheme: parallelism 1 would select
// the sampler's serial legacy RNG stream, which draws different tuples,
// so the floor keeps a stream's bytes independent of the machine and
// of the caller's worker setting.
func streamParallelism(p int) int {
	return max(parallel.Workers(p), 2)
}

// Synthesize streams n synthetic rows as a Go iterator. Rows are
// generated in StreamChunkRows bursts through the chunked parallel
// sampler and yielded one at a time, so memory stays bounded by the
// chunk regardless of n; for a fixed (model, n, seed) the yielded rows
// are byte-identical to one monolithic SampleP call at any
// parallelism, so a stream can be validated against — or replaced by —
// batch synthesis at will.
//
// The iterator yields (row, nil) for each record; if ctx ends
// mid-stream it yields one final (nil, ctx.Err()) and stops. Breaking
// out of the loop early is always safe and leaks nothing — generation
// happens on the consumer's goroutine. Sampling from a fitted model
// incurs no further privacy cost, so n is unbounded.
//
//	for row, err := range model.Synthesize(ctx, 1_000_000, core.SynthSeed(7)) {
//		if err != nil { ... }
//		use(row)
//	}
func (m *Model) Synthesize(ctx context.Context, n int, opts ...SynthOption) iter.Seq2[Row, error] {
	cfg := resolveSynth(opts)
	return func(yield func(Row, error) bool) {
		if n < 0 {
			yield(nil, fmt.Errorf("core: negative row count %d", n))
			return
		}
		rng := cfg.source.Rand()
		eff := streamParallelism(cfg.parallelism)
		cfg.progress.start(PhaseSampling, n)
		for lo := 0; lo < n; lo += StreamChunkRows {
			rows := min(StreamChunkRows, n-lo)
			chunk, err := m.SampleContext(ctx, rows, rng, eff)
			if err != nil {
				yield(nil, err)
				return
			}
			for r := 0; r < rows; r++ {
				if err := ctx.Err(); err != nil {
					yield(nil, err)
					return
				}
				if !yield(Row(chunk.Record(r, nil)), nil) {
					return
				}
			}
			cfg.progress.add(PhaseSampling, rows, n)
		}
	}
}

// SynthesizeTo streams n synthetic rows to w in the given format —
// the write-side twin of Synthesize, generating and encoding one
// StreamChunkRows burst at a time. CSV output carries a header row and
// matches Dataset.WriteCSV of the equivalent SampleP call byte for
// byte; JSONL matches privbayesd's synthesize endpoint. A cancelled
// ctx stops between bursts (and mid-burst inside the sampler) and
// returns ctx.Err(); write failures return the writer's error.
func (m *Model) SynthesizeTo(ctx context.Context, w io.Writer, n int, format Format, opts ...SynthOption) error {
	if n < 0 {
		return fmt.Errorf("core: negative row count %d", n)
	}
	cfg := resolveSynth(opts)
	rng := cfg.source.Rand()
	eff := streamParallelism(cfg.parallelism)

	var cw *csv.Writer
	var jw *dataset.JSONLWriter
	switch format {
	case FormatCSV:
		cw = csv.NewWriter(w)
		if err := cw.Write(dataset.New(m.Attrs).CSVHeader()); err != nil {
			return err
		}
	case FormatJSONL:
		jw = dataset.NewJSONLWriter(w, m.Attrs)
	default:
		return fmt.Errorf("core: unknown format %v", format)
	}

	cfg.progress.start(PhaseSampling, n)
	for lo := 0; lo < n; lo += StreamChunkRows {
		rows := min(StreamChunkRows, n-lo)
		chunk, err := m.SampleContext(ctx, rows, rng, eff)
		if err != nil {
			return err
		}
		if cw != nil {
			if err := chunk.WriteCSVRows(cw, 0, rows); err != nil {
				return err
			}
			cw.Flush()
			if err := cw.Error(); err != nil {
				return err
			}
		} else {
			if err := jw.WriteRows(chunk, 0, rows); err != nil {
				return err
			}
		}
		cfg.progress.add(PhaseSampling, rows, n)
	}
	return nil
}

// AppendRowText appends the decoded text of each cell of row to dst —
// the categorical label or the formatted bin center, exactly as CSV
// output renders it — and returns the extended slice.
func (m *Model) AppendRowText(dst []string, row Row) []string {
	for c, code := range row {
		a := &m.Attrs[c]
		if a.Kind == dataset.Continuous {
			dst = append(dst, fmt.Sprintf("%g", a.BinCenter(int(code))))
		} else {
			dst = append(dst, a.Label(int(code)))
		}
	}
	return dst
}
