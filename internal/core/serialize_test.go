package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"privbayes/internal/marginal"
	"privbayes/internal/score"
)

func TestModelJSONRoundTrip(t *testing.T) {
	ds := mixedData(3000, 31)
	rng := rand.New(rand.NewSource(32))
	m, err := Fit(ds, Options{
		Epsilon: 0.5, Beta: 0.3, Theta: 4,
		Mode: ModeGeneral, Score: score.R, UseHierarchy: true, Rand: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf, 0.5); err != nil {
		t.Fatal(err)
	}
	back, eps, err := ReadModelJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if eps != 0.5 {
		t.Errorf("epsilon metadata = %v", eps)
	}
	// The reloaded model must sample the identical stream given the
	// same RNG state.
	a := m.Sample(500, rand.New(rand.NewSource(7)))
	b := back.Sample(500, rand.New(rand.NewSource(7)))
	for r := 0; r < a.N(); r++ {
		for c := 0; c < a.D(); c++ {
			if a.Value(r, c) != b.Value(r, c) {
				t.Fatalf("reloaded model diverges at (%d,%d)", r, c)
			}
		}
	}
	// Hierarchies must survive (needed for generalized parents).
	if back.Attrs[1].Hierarchy == nil {
		t.Error("hierarchy lost in round trip")
	}
	if back.Attrs[1].SizeAt(1) != m.Attrs[1].SizeAt(1) {
		t.Error("hierarchy level sizes changed")
	}
}

func TestReadModelJSONRejectsGarbage(t *testing.T) {
	for name, doc := range map[string]string{
		"truncated JSON":  "{",
		"unknown version": `{"version":99,"model":null}`,
		"null model":      `{"version":1,"model":null}`,
		"missing version": `{"model":{}}`,
		"empty document":  `{}`,
		"non-object":      `[1,2,3]`,
	} {
		_, _, err := ReadModelJSON(strings.NewReader(doc))
		if err == nil {
			t.Errorf("%s must error", name)
			continue
		}
		if !errors.Is(err, ErrInvalidModel) {
			t.Errorf("%s: error %v does not wrap ErrInvalidModel", name, err)
		}
	}
}

// validArtifactOnce caches the marshaled fixture: the fit is
// deterministic (seed 42), so every corruption case can re-decode the
// same bytes instead of paying a fresh Fit.
var validArtifactOnce struct {
	sync.Once
	raw []byte
	err error
}

// validArtifact fits a small hierarchical model (once) and returns its
// JSON document decoded into a fresh generic tree, ready for targeted
// corruption.
func validArtifact(t *testing.T) map[string]any {
	t.Helper()
	validArtifactOnce.Do(func() {
		ds := mixedData(800, 41)
		m, err := Fit(ds, Options{
			Epsilon: 1, Beta: 0.3, Theta: 4,
			Mode: ModeGeneral, Score: score.R, UseHierarchy: true,
			Rand: rand.New(rand.NewSource(42)),
		})
		if err != nil {
			validArtifactOnce.err = err
			return
		}
		var buf bytes.Buffer
		if err := m.WriteJSON(&buf, 1); err != nil {
			validArtifactOnce.err = err
			return
		}
		validArtifactOnce.raw = buf.Bytes()
	})
	if validArtifactOnce.err != nil {
		t.Fatal(validArtifactOnce.err)
	}
	var doc map[string]any
	if err := json.Unmarshal(validArtifactOnce.raw, &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestReadModelJSONRejectsMalformed corrupts a valid artifact one field
// at a time, the way a buggy or adversarial uploader would, and requires
// a typed rejection — never a panic — for each.
func TestReadModelJSONRejectsMalformed(t *testing.T) {
	model := func(doc map[string]any) map[string]any { return doc["model"].(map[string]any) }
	conds := func(doc map[string]any) []any { return model(doc)["Conds"].([]any) }
	cond0 := func(doc map[string]any) map[string]any { return conds(doc)[0].(map[string]any) }
	attrs := func(doc map[string]any) []any { return model(doc)["Attrs"].([]any) }
	attr0 := func(doc map[string]any) map[string]any { return attrs(doc)[0].(map[string]any) }
	pairs := func(doc map[string]any) []any {
		return model(doc)["Network"].(map[string]any)["Pairs"].([]any)
	}

	cases := []struct {
		name    string
		corrupt func(doc map[string]any)
	}{
		{"no attributes", func(doc map[string]any) { model(doc)["Attrs"] = []any{} }},
		{"empty attribute name", func(doc map[string]any) { attr0(doc)["Name"] = "" }},
		{"unknown attribute kind", func(doc map[string]any) { attr0(doc)["Kind"] = 7 }},
		{"empty attribute domain", func(doc map[string]any) { attr0(doc)["Labels"] = []any{} }},
		{"inverted continuous range", func(doc map[string]any) {
			for _, a := range attrs(doc) {
				if a.(map[string]any)["Kind"].(float64) == 1 {
					a.(map[string]any)["Min"] = 10.0
					a.(map[string]any)["Max"] = -10.0
				}
			}
		}},
		{"degree out of range", func(doc map[string]any) { model(doc)["K"] = 99 }},
		{"unknown score function", func(doc map[string]any) { model(doc)["Score"] = 42 }},
		{"child attr out of range", func(doc map[string]any) {
			pairs(doc)[0].(map[string]any)["X"] = map[string]any{"Attr": 99, "Level": 0}
		}},
		{"negative parent attr", func(doc map[string]any) {
			pairs(doc)[1].(map[string]any)["Parents"] = []any{map[string]any{"Attr": -1, "Level": 0}}
		}},
		{"parent level too deep", func(doc map[string]any) {
			pairs(doc)[1].(map[string]any)["Parents"] = []any{map[string]any{"Attr": 0, "Level": 30}}
		}},
		{"duplicate child", func(doc map[string]any) {
			p := pairs(doc)
			p[1].(map[string]any)["X"] = p[0].(map[string]any)["X"]
		}},
		{"missing pair", func(doc map[string]any) {
			net := model(doc)["Network"].(map[string]any)
			net["Pairs"] = pairs(doc)[:len(pairs(doc))-1]
		}},
		{"missing conditional", func(doc map[string]any) { model(doc)["Conds"] = conds(doc)[:1] }},
		{"null conditional", func(doc map[string]any) { conds(doc)[0] = nil }},
		{"conditional child mismatch", func(doc map[string]any) {
			child := pairs(doc)[0].(map[string]any)["X"].(map[string]any)
			other := (int(child["Attr"].(float64)) + 1) % len(attrs(doc))
			cond0(doc)["X"] = map[string]any{"Attr": other, "Level": 0}
		}},
		{"wrong XDim", func(doc map[string]any) { cond0(doc)["XDim"] = 3 }},
		{"truncated probability vector", func(doc map[string]any) {
			p := cond0(doc)["P"].([]any)
			cond0(doc)["P"] = p[:len(p)-1]
		}},
		{"negative probability", func(doc map[string]any) {
			p := cond0(doc)["P"].([]any)
			p[0] = -0.25
		}},
		{"block does not sum to 1", func(doc map[string]any) {
			p := cond0(doc)["P"].([]any)
			p[0] = p[0].(float64) + 0.5
		}},
		{"oversized parent dim", func(doc map[string]any) {
			// Find a conditional with parents and inflate its PDims.
			for _, c := range conds(doc) {
				cm := c.(map[string]any)
				if dims, ok := cm["PDims"].([]any); ok && len(dims) > 0 {
					dims[0] = 1 << 20
					return
				}
			}
			t.Skip("no conditional with parents in this fit")
		}},
		{"hierarchy raw size mismatch", func(doc map[string]any) {
			for _, a := range attrs(doc) {
				am := a.(map[string]any)
				if h, ok := am["Hierarchy"].(map[string]any); ok && h != nil {
					h["raw_size"] = 3
					maps := h["maps"].([]any)
					for i := range maps {
						maps[i] = []any{0, 0, 1}
					}
					return
				}
			}
			t.Skip("no hierarchy in this fit")
		}},
		{"hierarchy raw size huge", func(doc map[string]any) {
			for _, a := range attrs(doc) {
				am := a.(map[string]any)
				if h, ok := am["Hierarchy"].(map[string]any); ok && h != nil {
					h["raw_size"] = 1 << 40
					return
				}
			}
			t.Skip("no hierarchy in this fit")
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			doc := validArtifact(t)
			tc.corrupt(doc)
			raw, err := json.Marshal(doc)
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ReadModelJSON panicked: %v", r)
				}
			}()
			_, _, err = ReadModelJSON(bytes.NewReader(raw))
			if err == nil {
				t.Fatal("corrupted artifact must be rejected")
			}
			if !errors.Is(err, ErrInvalidModel) && !strings.Contains(err.Error(), "hierarchy") {
				t.Errorf("error %v does not wrap ErrInvalidModel", err)
			}
		})
	}
}

// TestReadModelJSONTruncationsNeverPanic feeds every prefix (sampled)
// of a valid artifact to the loader: each must error or load cleanly,
// never panic — the minimal fuzz contract for a network-facing parser.
func TestReadModelJSONTruncationsNeverPanic(t *testing.T) {
	doc := validArtifact(t)
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	step := len(raw)/97 + 1
	for cut := 0; cut < len(raw); cut += step {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at prefix length %d: %v", cut, r)
				}
			}()
			if _, _, err := ReadModelJSON(bytes.NewReader(raw[:cut])); err == nil {
				t.Errorf("truncation at %d of %d accepted", cut, len(raw))
			}
		}()
	}
}

func TestReadModelJSONValidatesStructure(t *testing.T) {
	ds := chainData(500, 33)
	rng := rand.New(rand.NewSource(34))
	m, err := Fit(ds, Options{
		Epsilon: 1, Beta: 0.3, Theta: 4, K: 1,
		Mode: ModeBinary, Score: score.F, Rand: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a conditional's child.
	m.Conds[1] = &marginal.Conditional{X: marginal.Var{Attr: 99}, XDim: 2, P: []float64{1, 0}}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadModelJSON(&buf); err == nil {
		t.Error("mismatched conditional must be rejected on load")
	}
}
