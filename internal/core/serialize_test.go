package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"privbayes/internal/marginal"
	"privbayes/internal/score"
)

func TestModelJSONRoundTrip(t *testing.T) {
	ds := mixedData(3000, 31)
	rng := rand.New(rand.NewSource(32))
	m, err := Fit(ds, Options{
		Epsilon: 0.5, Beta: 0.3, Theta: 4,
		Mode: ModeGeneral, Score: score.R, UseHierarchy: true, Rand: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf, 0.5); err != nil {
		t.Fatal(err)
	}
	back, eps, err := ReadModelJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if eps != 0.5 {
		t.Errorf("epsilon metadata = %v", eps)
	}
	// The reloaded model must sample the identical stream given the
	// same RNG state.
	a := m.Sample(500, rand.New(rand.NewSource(7)))
	b := back.Sample(500, rand.New(rand.NewSource(7)))
	for r := 0; r < a.N(); r++ {
		for c := 0; c < a.D(); c++ {
			if a.Value(r, c) != b.Value(r, c) {
				t.Fatalf("reloaded model diverges at (%d,%d)", r, c)
			}
		}
	}
	// Hierarchies must survive (needed for generalized parents).
	if back.Attrs[1].Hierarchy == nil {
		t.Error("hierarchy lost in round trip")
	}
	if back.Attrs[1].SizeAt(1) != m.Attrs[1].SizeAt(1) {
		t.Error("hierarchy level sizes changed")
	}
}

func TestReadModelJSONRejectsGarbage(t *testing.T) {
	if _, _, err := ReadModelJSON(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON must error")
	}
	if _, _, err := ReadModelJSON(strings.NewReader(`{"version":99,"model":null}`)); err == nil {
		t.Error("unknown version must error")
	}
	if _, _, err := ReadModelJSON(strings.NewReader(`{"version":1,"model":null}`)); err == nil {
		t.Error("null model must error")
	}
}

func TestReadModelJSONValidatesStructure(t *testing.T) {
	ds := chainData(500, 33)
	rng := rand.New(rand.NewSource(34))
	m, err := Fit(ds, Options{
		Epsilon: 1, Beta: 0.3, Theta: 4, K: 1,
		Mode: ModeBinary, Score: score.F, Rand: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a conditional's child.
	m.Conds[1] = &marginal.Conditional{X: marginal.Var{Attr: 99}, XDim: 2, P: []float64{1, 0}}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadModelJSON(&buf); err == nil {
		t.Error("mismatched conditional must be rejected on load")
	}
}
