package core

import (
	"fmt"
	"sync"
)

// Phase identifies one of the pipeline's three stages.
type Phase int

const (
	// PhaseNetwork is private network learning (Algorithms 2/4): one
	// iteration per attribute after the first.
	PhaseNetwork Phase = iota
	// PhaseMarginals is private distribution learning (Algorithms 1/3):
	// one unit per materialized AP-pair joint.
	PhaseMarginals
	// PhaseSampling is synthetic data generation: Done/Total count rows.
	PhaseSampling
)

// String names the phase for logs and progress bars.
func (p Phase) String() string {
	switch p {
	case PhaseNetwork:
		return "network"
	case PhaseMarginals:
		return "marginals"
	case PhaseSampling:
		return "sampling"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// ProgressEvent reports pipeline progress: Done of Total units of the
// given phase have finished. Total is fixed within a phase; an event
// with Done == Total closes the phase.
type ProgressEvent struct {
	Phase Phase
	Done  int
	Total int
}

// progressSink serializes progress emission: pipeline stages that
// complete units concurrently (marginal materialization, sampling)
// still invoke the caller's callback one event at a time, and Done
// counts are monotone per phase — the counter is advanced under the
// same mutex that delivers the event, so two workers can never publish
// their increments out of order — so callbacks need no locking of
// their own.
type progressSink struct {
	fn   func(ProgressEvent)
	mu   sync.Mutex
	done int
}

// newProgressSink wraps fn; a nil fn yields a nil sink, and every
// method on a nil sink is a no-op, so call sites need no guards.
func newProgressSink(fn func(ProgressEvent)) *progressSink {
	if fn == nil {
		return nil
	}
	return &progressSink{fn: fn}
}

// emit reports one event as-is (single-goroutine stages).
func (p *progressSink) emit(phase Phase, done, total int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.fn(ProgressEvent{Phase: phase, Done: done, Total: total})
	p.mu.Unlock()
}

// start opens a phase with Done = 0 and resets the shared counter.
func (p *progressSink) start(phase Phase, total int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.done = 0
	p.fn(ProgressEvent{Phase: phase, Done: 0, Total: total})
	p.mu.Unlock()
}

// unit records one concurrently completed unit of the phase.
func (p *progressSink) unit(phase Phase, total int) {
	p.add(phase, 1, total)
}

// add records delta concurrently completed units (e.g. sampled rows).
func (p *progressSink) add(phase Phase, delta, total int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.done += delta
	p.fn(ProgressEvent{Phase: phase, Done: p.done, Total: total})
	p.mu.Unlock()
}
