package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"privbayes/internal/dataset"
	"privbayes/internal/score"
)

// modelJSON is the on-disk representation of a fitted model. Only the
// noisy model is persisted — never the sensitive data — so a stored
// model carries exactly the ε-DP release and can be resampled freely.
type modelJSON struct {
	Version int     `json:"version"`
	Model   *Model  `json:"model"`
	Epsilon float64 `json:"epsilon,omitempty"`
}

// modelDoc is the read-side counterpart: Version is a pointer so a
// document that omits the format-version field entirely is
// distinguishable from version 0 and rejected explicitly.
type modelDoc struct {
	Version *int    `json:"version"`
	Model   *Model  `json:"model"`
	Epsilon float64 `json:"epsilon,omitempty"`
}

// modelVersion guards the serialization format.
const modelVersion = 1

// ErrInvalidModel tags every rejection of a persisted-model artifact —
// malformed JSON, missing or unsupported format version, or structural
// validation failure. Model documents now arrive over the network
// (privbayesd's POST /models), so callers branch on errors.Is(err,
// ErrInvalidModel) to map bad input to a client error rather than a
// server fault.
var ErrInvalidModel = errors.New("invalid model artifact")

func invalidModelf(format string, args ...any) error {
	return fmt.Errorf("core: %w: %s", ErrInvalidModel, fmt.Sprintf(format, args...))
}

// Adversarial-input bounds. A syntactically valid document can still
// describe a model whose materialization would exhaust memory or whose
// codes overflow the dataset layer's uint16 encoding; both are rejected
// up front.
const (
	// maxModelAttrs caps the attribute count of a loaded model.
	maxModelAttrs = 1 << 12
	// maxAttrDomain mirrors the dataset layer's uint16 code space.
	maxAttrDomain = 1 << 16
	// maxModelCells caps the summed conditional-table size (~0.5 GiB of
	// float64) of a loaded model.
	maxModelCells = 1 << 26
	// probSumTol is the per-block tolerance for Σ Pr[X|Π=π] = 1;
	// ConditionalFromJoint normalizes exactly, so a round-tripped block
	// is off by float summation error only.
	probSumTol = 1e-6
)

// WriteJSON persists the model. The optional epsilon records the budget
// the model was fitted under, purely as metadata for downstream users.
func (m *Model) WriteJSON(w io.Writer, epsilon float64) error {
	enc := json.NewEncoder(w)
	return enc.Encode(modelJSON{Version: modelVersion, Model: m, Epsilon: epsilon})
}

// ReadModelJSON loads a model persisted by WriteJSON, fully revalidating
// it before returning: the format version must be present and supported,
// and the model must pass Validate. Every rejection wraps
// ErrInvalidModel; a malformed document never panics.
func ReadModelJSON(r io.Reader) (*Model, float64, error) {
	var in modelDoc
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		// The read error stays in the chain (%w) so transport-level
		// causes — e.g. http.MaxBytesError from a capped upload — remain
		// matchable by callers alongside ErrInvalidModel.
		return nil, 0, fmt.Errorf("core: %w: decode: %w", ErrInvalidModel, err)
	}
	if in.Version == nil {
		return nil, 0, invalidModelf("missing format version")
	}
	if *in.Version != modelVersion {
		return nil, 0, invalidModelf("unsupported format version %d (want %d)", *in.Version, modelVersion)
	}
	m := in.Model
	if m == nil {
		return nil, 0, invalidModelf("empty model document")
	}
	if err := m.Validate(); err != nil {
		return nil, 0, err
	}
	return m, in.Epsilon, nil
}

// Validate checks every structural invariant a fitted model relies on
// at sampling and inference time: schema sanity, network shape, and
// conditional-table dimensions and probability vectors. It exists so
// models loaded from untrusted input (network uploads) fail with a
// typed error here instead of panicking deep inside the sampler. Every
// failure wraps ErrInvalidModel.
func (m *Model) Validate() error {
	d := len(m.Attrs)
	if d == 0 {
		return invalidModelf("model has no attributes")
	}
	if d > maxModelAttrs {
		return invalidModelf("model has %d attributes, limit %d", d, maxModelAttrs)
	}
	for i := range m.Attrs {
		if err := validateAttr(&m.Attrs[i]); err != nil {
			return fmt.Errorf("%w (attribute %d)", err, i)
		}
	}
	if m.K < -1 || m.K >= d {
		return invalidModelf("degree K=%d out of range [-1, %d)", m.K, d)
	}
	switch m.Score {
	case score.MI, score.F, score.R:
	default:
		return invalidModelf("unknown score function %d", int(m.Score))
	}

	// Network shape: bounds first — Network.Validate assumes in-range
	// attribute indices — then the DAG invariants.
	for i, p := range m.Network.Pairs {
		if p.X.Attr < 0 || p.X.Attr >= d {
			return invalidModelf("pair %d: child attribute %d out of range [0, %d)", i, p.X.Attr, d)
		}
		for _, par := range p.Parents {
			if par.Attr < 0 || par.Attr >= d {
				return invalidModelf("pair %d: parent attribute %d out of range [0, %d)", i, par.Attr, d)
			}
			if par.Level < 0 || par.Level >= m.Attrs[par.Attr].Height() {
				return invalidModelf("pair %d: parent %d level %d out of range [0, %d)",
					i, par.Attr, par.Level, m.Attrs[par.Attr].Height())
			}
		}
	}
	if err := m.Network.Validate(d); err != nil {
		return invalidModelf("%v", err)
	}

	// Conditionals: one per pair, dimensioned by the schema, with valid
	// probability vectors.
	if len(m.Conds) != len(m.Network.Pairs) {
		return invalidModelf("%d conditionals for %d pairs", len(m.Conds), len(m.Network.Pairs))
	}
	totalCells := 0
	for i, c := range m.Conds {
		if c == nil {
			return invalidModelf("conditional %d is null", i)
		}
		pair := m.Network.Pairs[i]
		if c.X != pair.X {
			return invalidModelf("conditional %d is for %v, pair expects %v", i, c.X, pair.X)
		}
		if len(c.Parents) != len(pair.Parents) {
			return invalidModelf("conditional %d has %d parents, pair has %d", i, len(c.Parents), len(pair.Parents))
		}
		for j, par := range c.Parents {
			if par != pair.Parents[j] {
				return invalidModelf("conditional %d parent %d is %v, pair expects %v", i, j, par, pair.Parents[j])
			}
		}
		if want := m.Attrs[pair.X.Attr].Size(); c.XDim != want {
			return invalidModelf("conditional %d has XDim %d, attribute domain is %d", i, c.XDim, want)
		}
		if len(c.PDims) != len(pair.Parents) {
			return invalidModelf("conditional %d has %d parent dims for %d parents", i, len(c.PDims), len(pair.Parents))
		}
		blocks := 1
		for j, dim := range c.PDims {
			par := pair.Parents[j]
			if want := m.Attrs[par.Attr].SizeAt(par.Level); dim != want {
				return invalidModelf("conditional %d parent dim %d is %d, schema says %d", i, j, dim, want)
			}
			blocks *= dim
			if blocks > maxModelCells {
				return invalidModelf("conditional %d exceeds %d cells", i, maxModelCells)
			}
		}
		if blocks*c.XDim != len(c.P) {
			return invalidModelf("conditional %d has %d cells, want %d", i, len(c.P), blocks*c.XDim)
		}
		totalCells += len(c.P)
		if totalCells > maxModelCells {
			return invalidModelf("model exceeds %d total conditional cells", maxModelCells)
		}
		for off := 0; off < len(c.P); off += c.XDim {
			var sum float64
			for _, p := range c.P[off : off+c.XDim] {
				if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
					return invalidModelf("conditional %d has invalid probability %v", i, p)
				}
				sum += p
			}
			if math.Abs(sum-1) > probSumTol {
				return invalidModelf("conditional %d block at %d sums to %v, want 1", i, off, sum)
			}
		}
	}
	return nil
}

// validateAttr checks one schema entry of a loaded model.
func validateAttr(a *dataset.Attribute) error {
	if a.Name == "" {
		return invalidModelf("attribute has empty name")
	}
	switch a.Kind {
	case dataset.Categorical, dataset.Continuous:
	default:
		return invalidModelf("attribute %s has unknown kind %d", a.Name, int(a.Kind))
	}
	n := a.Size()
	if n < 1 {
		return invalidModelf("attribute %s has empty domain", a.Name)
	}
	if n > maxAttrDomain {
		return invalidModelf("attribute %s domain size %d exceeds %d", a.Name, n, maxAttrDomain)
	}
	if a.Kind == dataset.Continuous {
		if math.IsNaN(a.Min) || math.IsNaN(a.Max) || math.IsInf(a.Min, 0) || math.IsInf(a.Max, 0) || a.Min >= a.Max {
			return invalidModelf("attribute %s has invalid range [%g, %g]", a.Name, a.Min, a.Max)
		}
	}
	if h := a.Hierarchy; h != nil && h.SizeAt(0) != n {
		return invalidModelf("attribute %s hierarchy covers %d codes, domain has %d", a.Name, h.SizeAt(0), n)
	}
	return nil
}
