package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// modelJSON is the on-disk representation of a fitted model. Only the
// noisy model is persisted — never the sensitive data — so a stored
// model carries exactly the ε-DP release and can be resampled freely.
type modelJSON struct {
	Version int     `json:"version"`
	Model   *Model  `json:"model"`
	Epsilon float64 `json:"epsilon,omitempty"`
}

// modelVersion guards the serialization format.
const modelVersion = 1

// WriteJSON persists the model. The optional epsilon records the budget
// the model was fitted under, purely as metadata for downstream users.
func (m *Model) WriteJSON(w io.Writer, epsilon float64) error {
	enc := json.NewEncoder(w)
	return enc.Encode(modelJSON{Version: modelVersion, Model: m, Epsilon: epsilon})
}

// ReadModelJSON loads a model persisted by WriteJSON and revalidates its
// structural invariants before returning it.
func ReadModelJSON(r io.Reader) (*Model, float64, error) {
	var in modelJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, 0, fmt.Errorf("core: decode model: %w", err)
	}
	if in.Version != modelVersion {
		return nil, 0, fmt.Errorf("core: unsupported model version %d", in.Version)
	}
	m := in.Model
	if m == nil {
		return nil, 0, fmt.Errorf("core: empty model document")
	}
	if err := m.Network.Validate(len(m.Attrs)); err != nil {
		return nil, 0, fmt.Errorf("core: persisted network invalid: %w", err)
	}
	if len(m.Conds) != len(m.Network.Pairs) {
		return nil, 0, fmt.Errorf("core: %d conditionals for %d pairs", len(m.Conds), len(m.Network.Pairs))
	}
	for i, c := range m.Conds {
		pair := m.Network.Pairs[i]
		if c.X != pair.X {
			return nil, 0, fmt.Errorf("core: conditional %d is for %v, pair expects %v", i, c.X, pair.X)
		}
		want := m.Attrs[pair.X.Attr].Size()
		if c.XDim != want {
			return nil, 0, fmt.Errorf("core: conditional %d has XDim %d, attribute domain is %d", i, c.XDim, want)
		}
		blocks := 1
		for _, d := range c.PDims {
			blocks *= d
		}
		if blocks*c.XDim != len(c.P) {
			return nil, 0, fmt.Errorf("core: conditional %d has %d cells, want %d", i, len(c.P), blocks*c.XDim)
		}
	}
	return m, in.Epsilon, nil
}
