package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"privbayes/internal/dataset"
	"privbayes/internal/marginal"
	"privbayes/internal/score"
)

// randomSchemaData builds a random mixed schema (2-6 attributes, domain
// sizes 2-6, occasional hierarchies) and a random correlated dataset.
func randomSchemaData(seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := 2 + rng.Intn(5)
	attrs := make([]dataset.Attribute, d)
	for i := range attrs {
		size := 2 + rng.Intn(5)
		labels := make([]string, size)
		for j := range labels {
			labels[j] = string(rune('a' + j))
		}
		attrs[i] = dataset.NewCategorical(string(rune('A'+i)), labels)
		if size == 4 && rng.Intn(2) == 0 {
			attrs[i].Hierarchy = dataset.NewHierarchy(4, []int{0, 0, 1, 1})
		}
	}
	ds := dataset.New(attrs)
	n := 300 + rng.Intn(700)
	rec := make([]uint16, d)
	for r := 0; r < n; r++ {
		prev := 0
		for c := 0; c < d; c++ {
			size := attrs[c].Size()
			// Correlate with the previous attribute half the time.
			if c > 0 && rng.Float64() < 0.5 {
				rec[c] = uint16(prev % size)
			} else {
				rec[c] = uint16(rng.Intn(size))
			}
			prev = int(rec[c])
		}
		ds.Append(rec)
	}
	return ds
}

// Property: for ANY schema, Synthesize produces a schema-valid dataset
// of the requested cardinality, for both small and large ε, with and
// without hierarchy/consistency.
func TestSynthesizeAlwaysSchemaValid(t *testing.T) {
	f := func(seed int64, smallEps, useHier, consistent bool) bool {
		ds := randomSchemaData(seed)
		eps := 1.0
		if smallEps {
			eps = 0.05
		}
		rng := rand.New(rand.NewSource(seed + 7))
		syn, err := Synthesize(ds, Options{
			Epsilon: eps, Beta: 0.3, Theta: 4,
			Mode: ModeGeneral, Score: score.R,
			UseHierarchy: useHier, Consistency: consistent, Rand: rng,
		})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if syn.N() != ds.N() || syn.D() != ds.D() {
			return false
		}
		for r := 0; r < syn.N(); r++ {
			for c := 0; c < syn.D(); c++ {
				if syn.Value(r, c) >= syn.Attr(c).Size() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: every fitted network validates and every conditional block
// is a probability distribution, for any schema.
func TestFitInvariants(t *testing.T) {
	f := func(seed int64) bool {
		ds := randomSchemaData(seed)
		rng := rand.New(rand.NewSource(seed + 13))
		m, err := Fit(ds, Options{
			Epsilon: 0.4, Beta: 0.3, Theta: 4,
			Mode: ModeGeneral, Score: score.R, UseHierarchy: true, Rand: rng,
		})
		if err != nil {
			return false
		}
		if m.Network.Validate(ds.D()) != nil {
			return false
		}
		for _, c := range m.Conds {
			blocks := len(c.P) / c.XDim
			for b := 0; b < blocks; b++ {
				var s float64
				for x := 0; x < c.XDim; x++ {
					p := c.P[b*c.XDim+x]
					if p < 0 || p > 1+1e-9 {
						return false
					}
					s += p
				}
				if math.Abs(s-1) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: EnforceConsistency preserves mass and non-negativity on
// arbitrary noisy table collections.
func TestEnforceConsistencyInvariants(t *testing.T) {
	f := func(seed int64) bool {
		ds := randomSchemaData(seed)
		rng := rand.New(rand.NewSource(seed + 29))
		var joints []*marginal.Table
		for i := 0; i < ds.D(); i++ {
			vars := []marginal.Var{{Attr: i}}
			if j := (i + 1) % ds.D(); j != i {
				vars = append([]marginal.Var{{Attr: j}}, vars...)
			}
			tab := marginal.Materialize(ds, vars)
			tab.AddLaplace(rng, 0.05)
			tab.ClampNormalize()
			joints = append(joints, tab)
		}
		EnforceConsistency(joints, 4)
		for _, j := range joints {
			if math.Abs(j.Sum()-1) > 1e-6 {
				return false
			}
			for _, p := range j.P {
				if p < -1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
