package core

import (
	"fmt"
	"math/rand"

	"privbayes/internal/dataset"
	"privbayes/internal/marginal"
)

// NoisyConditionalsBinary implements Algorithm 1: for pairs i ∈ [k+1, d]
// (0-indexed [k, d)) it materializes the (k+1)-dimensional joint
// Pr[Xᵢ, Πᵢ], perturbs it with Laplace(2(d−k)/(n·ε₂)) noise, clamps and
// normalizes, and derives the conditional. The first k conditionals are
// derived from the noisy joint of pair k+1 at no extra privacy cost,
// relying on the chain structure GreedyBayesBinary guarantees
// (Xᵢ ∈ Π_{k+1} and Πᵢ ⊂ Π_{k+1} for i ≤ k).
//
// noNoise skips the Laplace step, which the harness uses for the
// BestMarginal reference of Figure 11. consistent additionally applies
// the mutual-consistency post-processing of EnforceConsistency to the
// noised joints before deriving conditionals (footnote 1 of the paper).
func NoisyConditionalsBinary(ds *dataset.Dataset, net Network, k int, eps2 float64, noNoise, consistent bool, rng *rand.Rand) ([]*marginal.Conditional, error) {
	d := len(net.Pairs)
	conds := make([]*marginal.Conditional, d)
	if d == 0 {
		return conds, nil
	}
	if k >= d {
		k = d - 1
	}
	n := float64(ds.N())
	scale := 2 * float64(d-k) / (n * eps2)

	joints := make([]*marginal.Table, 0, d-k)
	for i := k; i < d; i++ {
		pair := net.Pairs[i]
		joint := marginal.Materialize(ds, pair.Vars())
		if !noNoise {
			joint.AddLaplace(rng, scale)
		}
		joint.ClampNormalize()
		joints = append(joints, joint)
	}
	if consistent && !noNoise {
		EnforceConsistency(joints, 0)
	}
	// The noisy joint of pair k+1 (index k) anchors the derivation of
	// the head conditionals.
	anchor := joints[0]
	for i := k; i < d; i++ {
		conds[i] = marginal.ConditionalFromJoint(joints[i-k])
	}
	for i := 0; i < k; i++ {
		pair := net.Pairs[i]
		sub, err := projectOnto(anchor, pair)
		if err != nil {
			return nil, err
		}
		conds[i] = marginal.ConditionalFromJoint(sub)
	}
	return conds, nil
}

// projectOnto marginalizes the anchor joint onto [pair.Parents...,
// pair.X], verifying the containment property Algorithm 1 relies on.
func projectOnto(anchor *marginal.Table, pair APPair) (*marginal.Table, error) {
	want := pair.Vars()
	for _, v := range want {
		found := false
		for _, av := range anchor.Vars {
			if av == v {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("core: pair (%v | %v) not derivable from anchor marginal %v", pair.X, pair.Parents, anchor.Vars)
		}
	}
	return anchor.MarginalizeOnto(want), nil
}

// NoisyConditionalsGeneral implements Algorithm 3: every one of the d
// AP-pair joints is materialized and perturbed with Laplace(2d/(n·ε₂))
// noise, then clamped, normalized and conditioned.
func NoisyConditionalsGeneral(ds *dataset.Dataset, net Network, eps2 float64, noNoise, consistent bool, rng *rand.Rand) []*marginal.Conditional {
	d := len(net.Pairs)
	conds := make([]*marginal.Conditional, d)
	n := float64(ds.N())
	scale := 2 * float64(d) / (n * eps2)
	joints := make([]*marginal.Table, d)
	for i, pair := range net.Pairs {
		joint := marginal.Materialize(ds, pair.Vars())
		if !noNoise {
			joint.AddLaplace(rng, scale)
		}
		joint.ClampNormalize()
		joints[i] = joint
	}
	if consistent && !noNoise {
		EnforceConsistency(joints, 0)
	}
	for i, joint := range joints {
		conds[i] = marginal.ConditionalFromJoint(joint)
	}
	return conds
}

// Sample draws n synthetic tuples by ancestral sampling (Section 3,
// "Generation of synthetic data"): attributes are sampled in network
// order, so every parent is available — suitably generalized — before
// its children.
func (m *Model) Sample(n int, rng *rand.Rand) *dataset.Dataset {
	out := dataset.NewWithCapacity(m.Attrs, n)
	d := len(m.Attrs)
	rec := make([]uint16, d)
	raw := make([]int, d) // raw sampled code per attribute
	var parentCodes []int
	for r := 0; r < n; r++ {
		for i, pair := range m.Network.Pairs {
			cond := m.Conds[i]
			parentCodes = parentCodes[:0]
			for _, p := range pair.Parents {
				code := raw[p.Attr]
				if p.Level > 0 {
					code = m.Attrs[p.Attr].Generalize(p.Level, code)
				}
				parentCodes = append(parentCodes, code)
			}
			x := cond.SampleX(parentCodes, rng)
			raw[pair.X.Attr] = x
		}
		for a := 0; a < d; a++ {
			rec[a] = uint16(raw[a])
		}
		out.Append(rec)
	}
	return out
}
