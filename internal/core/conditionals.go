package core

import (
	"context"
	"fmt"
	"math/rand"

	"privbayes/internal/dataset"
	"privbayes/internal/marginal"
	"privbayes/internal/parallel"
)

// NoisyConditionalsBinary implements Algorithm 1: for pairs i ∈ [k+1, d]
// (0-indexed [k, d)) it materializes the (k+1)-dimensional joint
// Pr[Xᵢ, Πᵢ], perturbs it with Laplace(2(d−k)/(n·ε₂)) noise, clamps and
// normalizes, and derives the conditional. The first k conditionals are
// derived from the noisy joint of pair k+1 at no extra privacy cost,
// relying on the chain structure GreedyBayesBinary guarantees
// (Xᵢ ∈ Π_{k+1} and Πᵢ ⊂ Π_{k+1} for i ≤ k).
//
// noNoise skips the Laplace step, which the harness uses for the
// BestMarginal reference of Figure 11. consistent additionally applies
// the mutual-consistency post-processing of EnforceConsistency to the
// noised joints before deriving conditionals (footnote 1 of the paper).
//
// The d−k joint materializations — each a full pass over the n rows —
// fan out across up to `parallelism` workers, both across tables and
// across row chunks within each table (marginal.MaterializeP); Laplace
// noise is then injected serially in pair order from rng. The result
// is bit-identical at every parallelism other than 1 for a fixed seed
// (exact-count merging makes the joints worker-count independent);
// parallelism 1 reproduces the pre-engine serial accumulation byte for
// byte.
//
// NoisyConditionalsBinary materializes each joint from scratch; the Fit
// pipeline instead routes through the cached variant so the chosen
// pairs' joints come from the parent-configuration indexes the final
// greedy iterations already built (see materializeJoint).
func NoisyConditionalsBinary(ds *dataset.Dataset, net Network, k int, eps2 float64, noNoise, consistent bool, parallelism int, rng *rand.Rand) ([]*marginal.Conditional, error) {
	return noisyConditionalsBinary(context.Background(), ds, net, k, eps2, noNoise, consistent, parallelism, rng, nil, nil, nil)
}

func noisyConditionalsBinary(ctx context.Context, ds *dataset.Dataset, net Network, k int, eps2 float64, noNoise, consistent bool, parallelism int, rng *rand.Rand, cache *marginal.IndexCache, cs marginal.CountSource, progress *progressSink) ([]*marginal.Conditional, error) {
	d := len(net.Pairs)
	conds := make([]*marginal.Conditional, d)
	if d == 0 {
		return conds, nil
	}
	if k >= d {
		k = d - 1
	}
	n := float64(ds.N())
	scale := 2 * float64(d-k) / (n * eps2)

	if err := prefetchPairCounts(ctx, cs, net.Pairs[k:]); err != nil {
		return nil, err
	}
	progress.start(PhaseMarginals, d-k)
	jointErrs := make([]error, d-k)
	joints, err := parallel.MapCtx(ctx, parallel.Workers(parallelism), d-k, func(j int) *marginal.Table {
		t, err := materializeJoint(ds, net.Pairs[k+j], parallelism, cache, cs)
		if err != nil {
			jointErrs[j] = err
			return nil
		}
		progress.unit(PhaseMarginals, d-k)
		return t
	})
	if err != nil {
		return nil, err
	}
	for _, err := range jointErrs {
		if err != nil {
			return nil, err
		}
	}
	for _, joint := range joints {
		if !noNoise {
			joint.AddLaplace(rng, scale)
		}
		joint.ClampNormalize()
	}
	if consistent && !noNoise {
		EnforceConsistency(joints, 0)
	}
	// The noisy joint of pair k+1 (index k) anchors the derivation of
	// the head conditionals.
	anchor := joints[0]
	for i := k; i < d; i++ {
		conds[i] = marginal.ConditionalFromJoint(joints[i-k])
	}
	for i := 0; i < k; i++ {
		pair := net.Pairs[i]
		sub, err := projectOnto(anchor, pair)
		if err != nil {
			return nil, err
		}
		conds[i] = marginal.ConditionalFromJoint(sub)
	}
	return conds, nil
}

// materializeJoint produces the empirical joint Pr[Π, X] of one AP pair.
// With a parent-configuration index cache (the scorer's, inside Fit) the
// parent scan the final greedy iterations already paid is reused and
// only the child column is walked; without one it falls back to
// marginal.MaterializeP. Both routes are bit-identical at every
// parallelism: counts merge exactly, parallelism != 1 normalizes by one
// 1/n scale exactly like MaterializeP, and parallelism 1 normalizes
// through marginal.Ladder, which reproduces the serial Materialize
// accumulation byte for byte.
func materializeJoint(ds *dataset.Dataset, pair APPair, parallelism int, cache *marginal.IndexCache, cs marginal.CountSource) (*marginal.Table, error) {
	n := ds.N()
	if cs != nil {
		// Counts mode: the joint's integer counts come from the source;
		// normalization mirrors the row-mode contract exactly —
		// parallelism 1 through the Ladder (serial byte-identity), any
		// other through one exact 1/n scale.
		ts, err := cs.CountTables(pair.Parents, []marginal.Var{pair.X})
		if err != nil {
			return nil, err
		}
		t := ts[0]
		if parallelism == 1 && cache != nil {
			cache.Ladder(n).Apply(t)
		} else {
			t.Scale(1 / float64(n))
		}
		return t, nil
	}
	if cache == nil || n == 0 {
		return marginal.MaterializeP(ds, pair.Vars(), parallelism), nil
	}
	if _, ok := marginal.ParentConfigs(ds, pair.Parents); !ok {
		return marginal.MaterializeP(ds, pair.Vars(), parallelism), nil
	}
	ix := cache.Get(ds, pair.Parents, parallelism)
	t := ix.CountChildren(ds, []marginal.Var{pair.X}, parallelism)[0]
	if parallelism == 1 {
		cache.Ladder(n).Apply(t)
	} else {
		t.Scale(1 / float64(n))
	}
	return t, nil
}

// prefetchPairCounts batches the AP pairs' joints into one count-source
// pass when the source supports it — one scan covers the whole
// distribution-learning phase of an out-of-core fit.
func prefetchPairCounts(ctx context.Context, cs marginal.CountSource, pairs []APPair) error {
	bcs, ok := cs.(marginal.BatchCountSource)
	if !ok {
		return nil
	}
	reqs := make([]marginal.CountRequest, len(pairs))
	for i, pair := range pairs {
		reqs[i] = marginal.CountRequest{Parents: pair.Parents, Children: []marginal.Var{pair.X}}
	}
	return bcs.Prefetch(ctx, reqs)
}

// projectOnto marginalizes the anchor joint onto [pair.Parents...,
// pair.X], verifying the containment property Algorithm 1 relies on.
func projectOnto(anchor *marginal.Table, pair APPair) (*marginal.Table, error) {
	want := pair.Vars()
	for _, v := range want {
		found := false
		for _, av := range anchor.Vars {
			if av == v {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("core: pair (%v | %v) not derivable from anchor marginal %v", pair.X, pair.Parents, anchor.Vars)
		}
	}
	return anchor.MarginalizeOnto(want), nil
}

// NoisyConditionalsGeneral implements Algorithm 3: every one of the d
// AP-pair joints is materialized and perturbed with Laplace(2d/(n·ε₂))
// noise, then clamped, normalized and conditioned. Materialization fans
// out across up to `parallelism` workers, across tables and across row
// chunks within each table; the noise draws stay serial in pair order,
// keeping the output bit-identical at every parallelism other than 1
// (see NoisyConditionalsBinary for the contract).
func NoisyConditionalsGeneral(ds *dataset.Dataset, net Network, eps2 float64, noNoise, consistent bool, parallelism int, rng *rand.Rand) []*marginal.Conditional {
	conds, err := noisyConditionalsGeneral(context.Background(), ds, net, eps2, noNoise, consistent, parallelism, rng, nil, nil, nil)
	if err != nil {
		// Unreachable: the background context never ends.
		panic(err)
	}
	return conds
}

func noisyConditionalsGeneral(ctx context.Context, ds *dataset.Dataset, net Network, eps2 float64, noNoise, consistent bool, parallelism int, rng *rand.Rand, cache *marginal.IndexCache, cs marginal.CountSource, progress *progressSink) ([]*marginal.Conditional, error) {
	d := len(net.Pairs)
	conds := make([]*marginal.Conditional, d)
	n := float64(ds.N())
	scale := 2 * float64(d) / (n * eps2)
	if err := prefetchPairCounts(ctx, cs, net.Pairs); err != nil {
		return nil, err
	}
	progress.start(PhaseMarginals, d)
	jointErrs := make([]error, d)
	joints, err := parallel.MapCtx(ctx, parallel.Workers(parallelism), d, func(i int) *marginal.Table {
		t, err := materializeJoint(ds, net.Pairs[i], parallelism, cache, cs)
		if err != nil {
			jointErrs[i] = err
			return nil
		}
		progress.unit(PhaseMarginals, d)
		return t
	})
	if err != nil {
		return nil, err
	}
	for _, err := range jointErrs {
		if err != nil {
			return nil, err
		}
	}
	for _, joint := range joints {
		if !noNoise {
			joint.AddLaplace(rng, scale)
		}
		joint.ClampNormalize()
	}
	if consistent && !noNoise {
		EnforceConsistency(joints, 0)
	}
	for i, joint := range joints {
		conds[i] = marginal.ConditionalFromJoint(joint)
	}
	return conds, nil
}
