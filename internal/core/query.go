package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"

	"privbayes/internal/dataset"
	"privbayes/internal/infer"
	"privbayes/internal/marginal"
)

// The v2 query API: arbitrary conjunctive count/marginal/conditional
// queries answered exactly from a fitted model's conditional tables by
// variable elimination (internal/infer), never by sampling. Queries are
// small AST values built with Marginal, Conditional, Prob and Count;
// predicates select attribute values by equality (Eq) or set
// membership (In); marginal axes roll up through taxonomy hierarchies
// with AtLevel. Answers carry no sampling error and touch no raw data,
// so querying a model costs no privacy budget.

// QueryKind discriminates the query AST.
type QueryKind int

const (
	// QueryMarginal asks for the joint distribution of the target
	// attributes: P(targets...).
	QueryMarginal QueryKind = iota
	// QueryConditional asks for the distribution of the targets given
	// the evidence predicates: P(targets... | where...).
	QueryConditional
	// QueryProb asks for the scalar probability of the conjunction of
	// the predicates: P(where...).
	QueryProb
	// QueryCount asks for the expected number of rows matching the
	// predicates among N synthetic rows: N · P(where...).
	QueryCount
)

// String names the kind as used on the privbayesd wire.
func (k QueryKind) String() string {
	switch k {
	case QueryMarginal:
		return "marginal"
	case QueryConditional:
		return "conditional"
	case QueryProb:
		return "prob"
	case QueryCount:
		return "count"
	default:
		return fmt.Sprintf("QueryKind(%d)", int(k))
	}
}

// AttrRef names one target axis of a query, optionally rolled up to a
// taxonomy level > 0 (level 0 is the raw domain).
type AttrRef struct {
	Name  string `json:"name"`
	Level int    `json:"level,omitempty"`
}

// Predicate constrains one attribute to a set of values: one value is
// an equality test, several are set membership. Values are written as
// the attribute's labels; continuous attributes additionally accept a
// plain number, which selects the bin containing it.
type Predicate struct {
	Attr   string   `json:"attr"`
	Values []string `json:"values"`
}

// Eq builds an equality predicate attr = value.
func Eq(attr, value string) Predicate {
	return Predicate{Attr: attr, Values: []string{value}}
}

// In builds a set-membership predicate attr ∈ {values...}.
func In(attr string, values ...string) Predicate {
	return Predicate{Attr: attr, Values: values}
}

// Query is one exact inference request against a fitted model. Build it
// with the constructors (Marginal, Conditional, Prob, Count) and refine
// it with AtLevel / Given; the zero value is not a valid query.
type Query struct {
	Kind  QueryKind   `json:"kind"`
	Attrs []AttrRef   `json:"attrs,omitempty"`
	Where []Predicate `json:"where,omitempty"`
	// N scales a QueryCount answer: the expected count among N rows.
	N int `json:"n,omitempty"`
}

// Marginal builds a marginal query over the named attributes, in result
// order: P(attrs...).
func Marginal(attrs ...string) Query {
	q := Query{Kind: QueryMarginal, Attrs: make([]AttrRef, len(attrs))}
	for i, a := range attrs {
		q.Attrs[i] = AttrRef{Name: a}
	}
	return q
}

// Conditional builds a conditional query: the distribution of targets
// given the evidence predicates, P(targets... | given...).
func Conditional(targets []string, given ...Predicate) Query {
	q := Marginal(targets...)
	q.Kind = QueryConditional
	q.Where = given
	return q
}

// Prob builds a scalar probability query P(where...).
func Prob(where ...Predicate) Query {
	return Query{Kind: QueryProb, Where: where}
}

// Count builds an expected-count query: the number of rows matching the
// predicates among n synthetic rows, n · P(where...).
func Count(n int, where ...Predicate) Query {
	return Query{Kind: QueryCount, Where: where, N: n}
}

// AtLevel returns a copy of the query with the named target attribute
// rolled up to the given taxonomy level. Unknown names are caught at
// execution time.
func (q Query) AtLevel(attr string, level int) Query {
	attrs := append([]AttrRef(nil), q.Attrs...)
	for i := range attrs {
		if attrs[i].Name == attr {
			attrs[i].Level = level
		}
	}
	q.Attrs = attrs
	return q
}

// Given returns a copy of the query conditioned on additional evidence
// predicates; a marginal query becomes a conditional one.
func (q Query) Given(preds ...Predicate) Query {
	q.Where = append(append([]Predicate(nil), q.Where...), preds...)
	if q.Kind == QueryMarginal {
		q.Kind = QueryConditional
	}
	return q
}

// QueryResult is the answer to a Query. Table-valued queries (marginal,
// conditional) fill Attrs/Levels/Dims/P — a dense distribution in
// row-major order with the last attribute varying fastest, exactly the
// layout of marginal.Table. Scalar queries (prob, count) fill Value and
// leave the table fields empty.
type QueryResult struct {
	Kind   string    `json:"kind"`
	Attrs  []string  `json:"attrs,omitempty"`
	Levels []int     `json:"levels,omitempty"`
	Dims   []int     `json:"dims,omitempty"`
	P      []float64 `json:"p,omitempty"`
	Value  float64   `json:"value,omitempty"`
}

// Table re-materializes a table-valued result as a marginal.Table (nil
// for scalar results). The queried attribute indices are not
// recoverable from names alone, so each Var's Attr is the axis
// position, not the schema index.
func (r *QueryResult) Table() *marginal.Table {
	if len(r.Dims) == 0 {
		return nil
	}
	vars := make([]marginal.Var, len(r.Dims))
	for i := range vars {
		vars[i] = marginal.Var{Attr: i, Level: r.Levels[i]}
	}
	return &marginal.Table{Vars: vars, Dims: append([]int(nil), r.Dims...), P: append([]float64(nil), r.P...)}
}

// ErrImpossibleEvidence reports a conditional query whose evidence has
// zero probability under the model: the conditional distribution is
// undefined.
var ErrImpossibleEvidence = errors.New("evidence has probability zero under the model")

// queryConfig is the resolved option set of one Query call.
type queryConfig struct {
	maxCells    int
	parallelism int
	stats       *infer.Stats
}

// QueryOption configures Model.Query, in the functional-option style of
// the v2 API (it replaces the positional maxCells of InferMarginal).
type QueryOption func(*queryConfig)

// QueryMaxCells caps the intermediate inference factor at cells; <= 0
// (the default) selects DefaultInferenceCells. A query that would
// exceed the cap fails with an error wrapping infer.ErrTooLarge rather
// than allocating, in which case callers fall back to sampling.
func QueryMaxCells(cells int) QueryOption {
	return func(c *queryConfig) { c.maxCells = cells }
}

// QueryParallelism bounds the workers fanning out large factor
// products; <= 0 (the default) uses all CPU cores. Every setting
// returns bit-identical answers — cell products are independent writes
// — so parallelism only changes latency on very large factors.
func QueryParallelism(p int) QueryOption {
	return func(c *queryConfig) { c.parallelism = p }
}

// QueryStats directs the engine's work counters (factor products, peak
// cells) into s, for telemetry at the serving layer. Observational
// only: filling s cannot change the answer.
func QueryStats(s *infer.Stats) QueryOption {
	return func(c *queryConfig) { c.stats = s }
}

// Query answers q by exact variable-elimination inference over the
// model's conditional tables — no sampling, no privacy cost, and
// microsecond latency for low-dimensional queries (see BenchmarkQuery
// vs BenchmarkSynthesizeThenScan). ctx cancels a long-running query
// between factor operations. A Model is immutable after fitting, so
// concurrent Query calls are safe.
func (m *Model) Query(ctx context.Context, q Query, opts ...QueryOption) (*QueryResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var cfg queryConfig
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}

	targets, evidence, err := m.compileQuery(q)
	if err != nil {
		return nil, err
	}
	opt := infer.Options{MaxCells: cfg.maxCells, Parallelism: cfg.parallelism, Stats: cfg.stats}

	table, err := m.engine().Joint(ctx, targets, evidence, opt)
	if err != nil {
		return nil, err
	}
	res := &QueryResult{Kind: q.Kind.String()}
	switch q.Kind {
	case QueryMarginal, QueryConditional:
		if q.Kind == QueryConditional {
			mass := table.Sum()
			if mass <= 0 {
				return nil, fmt.Errorf("core: conditional %v: %w", q.Attrs, ErrImpossibleEvidence)
			}
			table.Scale(1 / mass)
		}
		res.Attrs = make([]string, len(q.Attrs))
		res.Levels = make([]int, len(q.Attrs))
		for i, a := range q.Attrs {
			res.Attrs[i] = a.Name
			res.Levels[i] = a.Level
		}
		res.Dims = table.Dims
		res.P = table.P
	case QueryProb:
		res.Value = table.P[0]
	case QueryCount:
		res.Value = float64(q.N) * table.P[0]
	}
	return res, nil
}

// compileQuery resolves the AST's attribute names and value labels
// against the model's schema into engine targets and evidence masks.
func (m *Model) compileQuery(q Query) ([]infer.Target, []infer.Evidence, error) {
	switch q.Kind {
	case QueryMarginal, QueryConditional:
		if len(q.Attrs) == 0 {
			return nil, nil, fmt.Errorf("core: %v query names no attributes", q.Kind)
		}
	case QueryProb, QueryCount:
		if len(q.Attrs) != 0 {
			return nil, nil, fmt.Errorf("core: %v query cannot have target attributes (use predicates)", q.Kind)
		}
		if len(q.Where) == 0 {
			return nil, nil, fmt.Errorf("core: %v query needs at least one predicate", q.Kind)
		}
		if q.Kind == QueryCount && q.N < 0 {
			return nil, nil, fmt.Errorf("core: count query has negative n %d", q.N)
		}
	default:
		return nil, nil, fmt.Errorf("core: unknown query kind %v", q.Kind)
	}

	targets := make([]infer.Target, len(q.Attrs))
	for i, ref := range q.Attrs {
		a, err := m.attrIndex(ref.Name)
		if err != nil {
			return nil, nil, err
		}
		if ref.Level < 0 || ref.Level >= m.Attrs[a].Height() {
			return nil, nil, fmt.Errorf("core: attribute %q has no taxonomy level %d (heights 0..%d)",
				ref.Name, ref.Level, m.Attrs[a].Height()-1)
		}
		targets[i] = infer.Target{Attr: a, Level: ref.Level}
	}

	evidence := make([]infer.Evidence, 0, len(q.Where))
	masks := make(map[int][]bool, len(q.Where))
	for _, pred := range q.Where {
		a, err := m.attrIndex(pred.Attr)
		if err != nil {
			return nil, nil, err
		}
		if len(pred.Values) == 0 {
			return nil, nil, fmt.Errorf("core: predicate on %q has no values", pred.Attr)
		}
		mask := masks[a]
		if mask == nil {
			mask = make([]bool, m.Attrs[a].Size())
			masks[a] = mask
			evidence = append(evidence, infer.Evidence{Attr: a, Allowed: mask})
		}
		for _, v := range pred.Values {
			code, err := resolveValue(&m.Attrs[a], v)
			if err != nil {
				return nil, nil, err
			}
			mask[code] = true
		}
	}
	for _, t := range targets {
		if masks[t.Attr] != nil {
			return nil, nil, fmt.Errorf("core: attribute %q is both a query target and a predicate", m.Attrs[t.Attr].Name)
		}
	}
	return targets, evidence, nil
}

// attrIndex resolves an attribute name against the schema.
func (m *Model) attrIndex(name string) (int, error) {
	for i := range m.Attrs {
		if m.Attrs[i].Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("core: unknown attribute %q", name)
}

// resolveValue maps a predicate value to a raw code: the attribute's
// label, or — for continuous attributes — a plain number selecting the
// bin containing it.
func resolveValue(a *dataset.Attribute, v string) (int, error) {
	if code := a.Code(v); code >= 0 {
		return code, nil
	}
	if a.Kind == dataset.Continuous {
		if x, err := strconv.ParseFloat(v, 64); err == nil {
			return a.Bin(x), nil
		}
	}
	return 0, fmt.Errorf("core: attribute %q has no value %q", a.Name, v)
}
