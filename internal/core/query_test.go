package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"privbayes/internal/dataset"
	"privbayes/internal/infer"
	"privbayes/internal/score"
)

// jointWalk enumerates the model's full joint and calls visit with every
// raw code assignment and its probability — the brute-force reference
// all Query answers are checked against.
func jointWalk(m *Model, visit func(codes []int, p float64)) {
	d := len(m.Attrs)
	codes := make([]int, d)
	var walk func(step int, w float64)
	walk = func(step int, w float64) {
		if step == len(m.Network.Pairs) {
			visit(codes, w)
			return
		}
		pair := m.Network.Pairs[step]
		cond := m.Conds[step]
		parentCodes := make([]int, len(pair.Parents))
		for j, par := range pair.Parents {
			c := codes[par.Attr]
			if par.Level > 0 {
				c = m.Attrs[par.Attr].Generalize(par.Level, c)
			}
			parentCodes[j] = c
		}
		x := pair.X.Attr
		for v := 0; v < m.Attrs[x].Size(); v++ {
			codes[x] = v
			walk(step+1, w*cond.Prob(parentCodes, v))
		}
	}
	walk(0, 1)
	if d == 0 {
		visit(codes, 1)
	}
}

// bruteQuery answers a compiled query class by full-joint enumeration:
// the marginal over attrs (at the given levels) restricted to the
// allowed sets in masks (nil mask = unconstrained).
func bruteQuery(m *Model, attrs []int, levels []int, masks map[int][]bool) []float64 {
	dims := make([]int, len(attrs))
	size := 1
	for i, a := range attrs {
		dims[i] = m.Attrs[a].SizeAt(levels[i])
		size *= dims[i]
	}
	out := make([]float64, size)
	jointWalk(m, func(codes []int, p float64) {
		for a, mask := range masks {
			if !mask[codes[a]] {
				return
			}
		}
		o := 0
		for i, a := range attrs {
			c := codes[a]
			if levels[i] > 0 {
				c = m.Attrs[a].Generalize(levels[i], c)
			}
			o = o*dims[i] + c
		}
		out[o] += p
	})
	return out
}

// TestQueryMarginalBitIdenticalToInferMarginal: on InferMarginal's query
// class — raw-level marginals, no evidence — the v2 API must return the
// very same bits, at every parallelism setting.
func TestQueryMarginalBitIdenticalToInferMarginal(t *testing.T) {
	m, _ := noiselessModel(t, 31)
	names := []string{"a", "b", "c", "d", "e", "f"}
	for _, attrs := range [][]int{{0}, {3}, {1, 4}, {5, 0, 2}, {2, 1, 0, 3}} {
		legacy, err := m.InferMarginal(attrs, 0)
		if err != nil {
			t.Fatal(err)
		}
		qNames := make([]string, len(attrs))
		for i, a := range attrs {
			qNames[i] = names[a]
		}
		for _, par := range []int{0, 1, 2, 4} {
			res, err := m.Query(context.Background(), Marginal(qNames...), QueryParallelism(par))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.P) != len(legacy.P) {
				t.Fatalf("attrs %v: %d cells, legacy %d", attrs, len(res.P), len(legacy.P))
			}
			for i := range legacy.P {
				if res.P[i] != legacy.P[i] {
					t.Fatalf("attrs %v parallelism %d cell %d: Query %v, InferMarginal %v (bit-identity)",
						attrs, par, i, res.P[i], legacy.P[i])
				}
			}
		}
	}
}

// TestQueryMarginalMatchesBruteForce: marginals agree with full-joint
// enumeration.
func TestQueryMarginalMatchesBruteForce(t *testing.T) {
	m, _ := noiselessModel(t, 32)
	for _, names := range [][]string{{"a"}, {"c", "f"}, {"e", "b", "a"}} {
		res, err := m.Query(context.Background(), Marginal(names...))
		if err != nil {
			t.Fatal(err)
		}
		attrs := make([]int, len(names))
		levels := make([]int, len(names))
		for i, nm := range names {
			attrs[i], err = m.attrIndex(nm)
			if err != nil {
				t.Fatal(err)
			}
		}
		want := bruteQuery(m, attrs, levels, nil)
		for i := range want {
			if math.Abs(res.P[i]-want[i]) > 1e-12 {
				t.Fatalf("marginal %v cell %d: got %v, want %v", names, i, res.P[i], want[i])
			}
		}
	}
}

// TestQueryConditionalMatchesBruteForce: conditionals with equality and
// set-membership evidence agree with the normalized brute-force answer,
// and merging several predicates on one attribute unions the sets.
func TestQueryConditionalMatchesBruteForce(t *testing.T) {
	m, _ := noiselessModel(t, 33)
	cases := []struct {
		q     Query
		attrs []int
		masks map[int][]bool
	}{
		{
			Conditional([]string{"b"}, Eq("a", "1")),
			[]int{1},
			map[int][]bool{0: {false, true}},
		},
		{
			Conditional([]string{"d", "f"}, In("a", "0", "1"), Eq("c", "0")),
			[]int{3, 5},
			map[int][]bool{0: {true, true}, 2: {true, false}},
		},
		{
			// Two predicates on one attribute merge into one union mask.
			Marginal("e").Given(Eq("b", "0"), Eq("b", "1")),
			[]int{4},
			map[int][]bool{1: {true, true}},
		},
	}
	for _, tc := range cases {
		res, err := m.Query(context.Background(), tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Kind != "conditional" {
			t.Fatalf("kind = %q, want conditional", res.Kind)
		}
		levels := make([]int, len(tc.attrs))
		want := bruteQuery(m, tc.attrs, levels, tc.masks)
		var mass float64
		for _, p := range want {
			mass += p
		}
		for i := range want {
			if math.Abs(res.P[i]-want[i]/mass) > 1e-12 {
				t.Fatalf("%+v cell %d: got %v, want %v", tc.q, i, res.P[i], want[i]/mass)
			}
		}
		if s := sum(res.P); math.Abs(s-1) > 1e-12 {
			t.Fatalf("conditional mass %v, want 1", s)
		}
	}
}

func sum(p []float64) float64 {
	var s float64
	for _, v := range p {
		s += v
	}
	return s
}

// TestQueryProbAndCount: scalar queries match brute force, and Count is
// N times Prob.
func TestQueryProbAndCount(t *testing.T) {
	m, _ := noiselessModel(t, 34)
	masks := map[int][]bool{0: {false, true}, 3: {true, false}}
	want := sum(bruteQuery(m, nil, nil, masks))

	prob, err := m.Query(context.Background(), Prob(Eq("a", "1"), Eq("d", "0")))
	if err != nil {
		t.Fatal(err)
	}
	if prob.Kind != "prob" || len(prob.P) != 0 {
		t.Fatalf("prob result = %+v, want scalar", prob)
	}
	if math.Abs(prob.Value-want) > 1e-12 {
		t.Fatalf("Prob = %v, want %v", prob.Value, want)
	}

	count, err := m.Query(context.Background(), Count(10000, Eq("a", "1"), Eq("d", "0")))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(count.Value-10000*want) > 1e-7 {
		t.Fatalf("Count = %v, want %v", count.Value, 10000*want)
	}
}

// TestQueryAtLevel: rolled-up marginals aggregate the raw marginal
// through the taxonomy tree.
func TestQueryAtLevel(t *testing.T) {
	ds := mixedData(4000, 35)
	rng := rand.New(rand.NewSource(36))
	m, err := Fit(ds, Options{
		Epsilon: 0.05, Beta: 0.3, Theta: 4,
		Mode: ModeGeneral, Score: score.R, UseHierarchy: true, Rand: rng,
		InfiniteMarginalBudget: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := m.Query(context.Background(), Marginal("city"))
	if err != nil {
		t.Fatal(err)
	}
	ci, _ := m.attrIndex("city")
	rolled, err := m.Query(context.Background(), Marginal("city").AtLevel("city", 1))
	if err != nil {
		t.Fatal(err)
	}
	if rolled.Levels[0] != 1 || rolled.Dims[0] != m.Attrs[ci].SizeAt(1) {
		t.Fatalf("rolled result = %+v", rolled)
	}
	want := make([]float64, rolled.Dims[0])
	for c, p := range raw.P {
		want[m.Attrs[ci].Generalize(1, c)] += p
	}
	for i := range want {
		if math.Abs(rolled.P[i]-want[i]) > 1e-12 {
			t.Fatalf("level-1 cell %d: got %v, want %v", i, rolled.P[i], want[i])
		}
	}
}

// TestQueryContinuousValueSelectsBin: a plain number as a predicate
// value on a continuous attribute selects the bin containing it.
func TestQueryContinuousValueSelectsBin(t *testing.T) {
	ds := mixedData(4000, 37)
	rng := rand.New(rand.NewSource(38))
	m, err := Fit(ds, Options{
		Epsilon: 0.05, Beta: 0.3, Theta: 4,
		Mode: ModeGeneral, Score: score.R, UseHierarchy: true, Rand: rng,
		InfiniteMarginalBudget: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	vi, _ := m.attrIndex("v")
	bin := m.Attrs[vi].Bin(2.5)
	marg, err := m.Query(context.Background(), Marginal("v"))
	if err != nil {
		t.Fatal(err)
	}
	prob, err := m.Query(context.Background(), Prob(Eq("v", "2.5")))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(prob.Value-marg.P[bin]) > 1e-12 {
		t.Fatalf("Prob(v=2.5) = %v, want bin %d mass %v", prob.Value, bin, marg.P[bin])
	}
}

// TestQueryImpossibleEvidence: conditioning on evidence the model gives
// zero mass fails with ErrImpossibleEvidence.
func TestQueryImpossibleEvidence(t *testing.T) {
	// "a" is constant in the data, so the noiseless model puts zero mass
	// on a=1.
	attrs := []dataset.Attribute{
		dataset.NewCategorical("a", []string{"0", "1"}),
		dataset.NewCategorical("b", []string{"0", "1"}),
	}
	ds := dataset.New(attrs)
	rng := rand.New(rand.NewSource(39))
	for i := 0; i < 2000; i++ {
		ds.Append([]uint16{0, uint16(rng.Intn(2))})
	}
	m, err := Fit(ds, Options{
		Epsilon: 1, Beta: 0.3, Theta: 4, K: 1,
		Mode: ModeBinary, Score: score.F, Rand: rng,
		InfiniteNetworkBudget: true, InfiniteMarginalBudget: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Query(context.Background(), Conditional([]string{"b"}, Eq("a", "1")))
	if !errors.Is(err, ErrImpossibleEvidence) {
		t.Fatalf("err = %v, want ErrImpossibleEvidence", err)
	}
}

// TestQueryErrors: every malformed query is rejected at compile time
// with a descriptive error, never a panic.
func TestQueryErrors(t *testing.T) {
	m, _ := noiselessModel(t, 41)
	cases := []struct {
		name string
		q    Query
	}{
		{"unknown attribute", Marginal("nope")},
		{"empty marginal", Marginal()},
		{"bad level", Marginal("a").AtLevel("a", 9)},
		{"negative level", Marginal("a").AtLevel("a", -1)},
		{"prob with targets", Query{Kind: QueryProb, Attrs: []AttrRef{{Name: "a"}}, Where: []Predicate{Eq("b", "0")}}},
		{"prob without predicates", Prob()},
		{"count without predicates", Count(10)},
		{"negative count n", Count(-1, Eq("a", "0"))},
		{"unknown kind", Query{Kind: QueryKind(99)}},
		{"unknown value", Prob(Eq("a", "2"))},
		{"empty predicate", Prob(Predicate{Attr: "a"})},
		{"unknown predicate attribute", Prob(Eq("nope", "0"))},
		{"target is also evidence", Marginal("a").Given(Eq("a", "0"))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := m.Query(context.Background(), tc.q); err == nil {
				t.Fatal("expected an error")
			}
		})
	}
}

// TestQueryMaxCells: the QueryMaxCells option caps the intermediate
// factor with an error wrapping infer.ErrTooLarge.
func TestQueryMaxCells(t *testing.T) {
	m, _ := noiselessModel(t, 42)
	_, err := m.Query(context.Background(), Marginal("a", "b", "c", "d", "e", "f"), QueryMaxCells(4))
	if !errors.Is(err, infer.ErrTooLarge) {
		t.Fatalf("err = %v, want infer.ErrTooLarge", err)
	}
}

// TestQueryNilContext: a nil context is accepted (treated as
// context.Background) for ergonomic call sites.
func TestQueryNilContext(t *testing.T) {
	m, _ := noiselessModel(t, 43)
	if _, err := m.Query(nil, Marginal("a")); err != nil { //nolint:staticcheck
		t.Fatal(err)
	}
}

// TestQueryCancelled: a cancelled context aborts the query.
func TestQueryCancelled(t *testing.T) {
	m, _ := noiselessModel(t, 44)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Query(ctx, Marginal("a", "b")); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestQueryConcurrent: a fitted model is immutable, so concurrent
// queries of every kind must be race-free and agree with the serial
// answers (run under -race in CI).
func TestQueryConcurrent(t *testing.T) {
	m, _ := noiselessModel(t, 45)
	serial, err := m.Query(context.Background(), Marginal("b", "d"))
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{
		Marginal("b", "d"),
		Conditional([]string{"c"}, Eq("a", "0")),
		Prob(Eq("e", "1")),
		Count(500, Eq("f", "0")),
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 8; it++ {
				q := queries[(g+it)%len(queries)]
				res, err := m.Query(context.Background(), q, QueryParallelism(1+g%4))
				if err != nil {
					errs <- err
					return
				}
				if q.Kind == QueryMarginal {
					for i := range serial.P {
						if res.P[i] != serial.P[i] {
							errs <- errors.New("concurrent marginal diverged from serial answer")
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestQueryKindString: wire names are stable — the server protocol
// depends on them.
func TestQueryKindString(t *testing.T) {
	want := map[QueryKind]string{
		QueryMarginal:    "marginal",
		QueryConditional: "conditional",
		QueryProb:        "prob",
		QueryCount:       "count",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

// TestQueryResultTable: table-valued results round-trip into
// marginal.Table; scalar results yield nil.
func TestQueryResultTable(t *testing.T) {
	m, _ := noiselessModel(t, 46)
	res, err := m.Query(context.Background(), Marginal("a", "c"))
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Table()
	if tab == nil || len(tab.P) != len(res.P) {
		t.Fatalf("Table() = %+v", tab)
	}
	if got := tab.P[tab.Index([]int{1, 0})]; got != res.P[1*res.Dims[1]+0] {
		t.Fatalf("Table index mismatch: %v", got)
	}
	scalar, err := m.Query(context.Background(), Prob(Eq("a", "0")))
	if err != nil {
		t.Fatal(err)
	}
	if scalar.Table() != nil {
		t.Fatal("scalar result should have no table")
	}
}
