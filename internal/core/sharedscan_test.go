package core

// Tests pinning the shared-scan integration: the cached joint
// materialization inside NoisyConditionals* must be bit-identical to the
// uncached MaterializeP route at every parallelism (including the
// Parallelism=1 legacy-serial contract), and bounding the scorer memo
// must never change a fitted model.

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"privbayes/internal/marginal"
	"privbayes/internal/score"
)

// TestMaterializeJointCachedBitIdentical checks the index-cache route
// against marginal.MaterializeP for serial and parallel normalization.
func TestMaterializeJointCachedBitIdentical(t *testing.T) {
	ds := chainData(2999, 31) // odd n: 1/n inexact, normalization drift would show
	pair := APPair{
		X:       marginal.Var{Attr: 3},
		Parents: []marginal.Var{{Attr: 0}, {Attr: 2}},
	}
	for _, par := range []int{1, 2, 4} {
		cache := marginal.NewIndexCache(0)
		want := marginal.MaterializeP(ds, pair.Vars(), par)
		got, err := materializeJoint(ds, pair, par, cache, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.P {
			if got.P[i] != want.P[i] {
				t.Fatalf("parallelism %d cell %d: cached %v, uncached %v", par, i, got.P[i], want.P[i])
			}
		}
		// Second call hits the cached parent index; still identical.
		again, err := materializeJoint(ds, pair, par, cache, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.P {
			if again.P[i] != want.P[i] {
				t.Fatalf("parallelism %d cell %d differs on cache hit", par, i)
			}
		}
	}
}

// TestNoisyConditionalsCachedBitIdentical runs the full conditional
// stage with and without a warmed index cache under identical noise
// streams; every conditional block must match byte for byte.
func TestNoisyConditionalsCachedBitIdentical(t *testing.T) {
	ds := chainData(2500, 32)
	sc := score.NewScorer(score.F, ds)
	net := GreedyBayesBinary(ds, 2, 0.5, sc, 2, rand.New(rand.NewSource(9)))
	for _, par := range []int{1, 2, 4} {
		want, err := noisyConditionalsBinary(context.Background(), ds, net, 2, 1.0, false, false, par, rand.New(rand.NewSource(10)), nil, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := noisyConditionalsBinary(context.Background(), ds, net, 2, 1.0, false, false, par, rand.New(rand.NewSource(10)), sc.Indexes(), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			for j := range want[i].P {
				if got[i].P[j] != want[i].P[j] {
					t.Fatalf("parallelism %d: conditional %d cell %d = %v, want %v", par, i, j, got[i].P[j], want[i].P[j])
				}
			}
		}
	}
}

// TestFitBoundedScorerCacheBitIdentical checks ScorerCacheSize is purely
// a memory bound: the fitted model is byte-equal to the unbounded run.
func TestFitBoundedScorerCacheBitIdentical(t *testing.T) {
	for _, mode := range []Mode{ModeBinary, ModeGeneral} {
		fit := func(cacheSize int) []byte {
			var opt Options
			if mode == ModeBinary {
				opt = Options{Epsilon: 0.8, Beta: 0.3, Theta: 4, K: 2, Mode: ModeBinary,
					Score: score.F, Parallelism: 2, ScorerCacheSize: cacheSize,
					Rand: rand.New(rand.NewSource(11))}
			} else {
				opt = Options{Epsilon: 0.8, Beta: 0.3, Theta: 4, Mode: ModeGeneral,
					Score: score.R, UseHierarchy: true, Parallelism: 2, ScorerCacheSize: cacheSize,
					Rand: rand.New(rand.NewSource(11))}
			}
			var ds = chainData(2000, 33)
			if mode == ModeGeneral {
				ds = mixedData(2000, 33)
			}
			m, err := Fit(ds, opt)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := m.WriteJSON(&buf, 0.8); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
		if !bytes.Equal(fit(0), fit(3)) {
			t.Errorf("mode %v: bounded scorer cache changed the fitted model", mode)
		}
	}
}
