package core

import "math"

// Usefulness returns the θ-usefulness of the noisy (k+1)-dimensional
// binary marginals produced by Algorithm 1 (Lemma 4.8):
//
//	θ = n·ε₂ / ((d−k) · 2^(k+2))
//
// the ratio of average per-cell information mass to average Laplace
// noise magnitude.
func Usefulness(n, d, k int, eps2 float64) float64 {
	return float64(n) * eps2 / (float64(d-k) * math.Pow(2, float64(k+2)))
}

// ChooseK picks the largest degree k ∈ [0, d−1] whose noisy marginals
// remain θ-useful (Section 4.5). When even k = 0 fails the criterion the
// minimum value 0 is used, modeling all attributes as (nearly)
// independent.
func ChooseK(n, d int, eps2, theta float64) int {
	best := 0
	for k := d - 1; k >= 1; k-- {
		if Usefulness(n, d, k, eps2) >= theta {
			best = k
			break
		}
	}
	return best
}

// GeneralDomainCap returns the θ-usefulness cap on the number of cells of
// an AP-pair marginal in general-domain mode (Section 5.2): Pr[X, Π] is
// θ-useful only if its cell count m satisfies m ≤ n·ε₂/(2dθ). The
// eligible parent sets for child X are therefore those with domain size
// at most n·ε₂/(2dθ|dom(X)|).
func GeneralDomainCap(n, d int, eps2, theta float64) float64 {
	return float64(n) * eps2 / (2 * float64(d) * theta)
}
