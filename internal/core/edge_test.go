package core

import (
	"math/rand"
	"testing"

	"privbayes/internal/dataset"
	"privbayes/internal/score"
)

// Degenerate shapes: single attribute, two attributes, k = d-1.
func TestFitDegenerateShapes(t *testing.T) {
	one := dataset.New([]dataset.Attribute{dataset.NewCategorical("a", []string{"0", "1"})})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		one.Append([]uint16{uint16(rng.Intn(2))})
	}
	m, err := Fit(one, Options{Epsilon: 1, Beta: 0.3, Theta: 4, K: -1, Mode: ModeBinary, Score: score.F, Rand: rng})
	if err != nil {
		t.Fatalf("d=1: %v", err)
	}
	if syn := m.Sample(10, rng); syn.N() != 10 {
		t.Fatal("d=1 sampling failed")
	}

	two := chainData(200, 2)
	sub := two.Subset([]int{0, 1, 2, 3, 4})
	m2, err := Fit(sub, Options{Epsilon: 1, Beta: 0.3, Theta: 4, K: 5, Mode: ModeBinary, Score: score.F, Rand: rng})
	if err != nil {
		t.Fatalf("k > d-1 should clamp: %v", err)
	}
	if m2.K != sub.D()-1 {
		t.Errorf("k clamped to %d, want %d", m2.K, sub.D()-1)
	}
}
