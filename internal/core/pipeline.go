package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"privbayes/internal/dataset"
	"privbayes/internal/dp"
	"privbayes/internal/marginal"
	"privbayes/internal/score"
)

// Mode selects which pair of algorithms the pipeline runs.
type Mode int

const (
	// ModeBinary is the SIGMOD'14 variant: Algorithm 2 for network
	// learning over all-binary attributes with a single degree k chosen
	// by θ-usefulness, Algorithm 1 for distribution learning.
	ModeBinary Mode = iota
	// ModeGeneral is the TODS'17 variant: Algorithm 4 with
	// θ-usefulness domain-size caps and Algorithm 3 materializing all d
	// marginals. Required for non-binary attributes.
	ModeGeneral
)

// Options configures a PrivBayes run. Zero values select the paper's
// defaults where they exist (β = 0.3, θ = 4).
type Options struct {
	// Epsilon is the total privacy budget ε = ε₁ + ε₂ (Theorem 3.2).
	Epsilon float64
	// Beta splits the budget: ε₁ = βε for network learning, ε₂ = (1−β)ε
	// for distribution learning (Section 3). Default 0.3 (Section 6.4).
	Beta float64
	// Theta is the usefulness threshold of Definition 4.7. Default 4.
	Theta float64
	// K forces the network degree in ModeBinary; K < 0 (the default,
	// via DefaultOptions) selects k automatically by θ-usefulness.
	K int
	// MaxK, when positive, caps the automatically chosen degree in
	// ModeBinary. The paper reports multi-hour runs at k ≥ 6; the
	// experiment harness caps k to keep reproduction runs tractable
	// (see DESIGN.md, Substitutions) while the library default is
	// uncapped.
	MaxK int
	// Score selects the exponential-mechanism score function. The
	// paper's recommendation: F in ModeBinary, R in ModeGeneral.
	Score score.Function
	// Mode selects the algorithm family.
	Mode Mode
	// UseHierarchy enables Algorithm 6 (taxonomy-tree generalization of
	// parents) in ModeGeneral — the paper's "Hierarchical" encoding.
	UseHierarchy bool
	// Scorer optionally supplies a pre-built (possibly shared) score
	// cache; it must wrap the same dataset and score function.
	Scorer *score.Scorer
	// ScorerCacheSize bounds the score memo of the scorer Fit builds
	// when Scorer is nil: at most this many scored pairs are retained,
	// evicted least-recently-used. <= 0 (the default) keeps the memo
	// unbounded. Long-running services that fit many models against one
	// dataset set a bound so the memo cannot grow without limit;
	// eviction never changes results, only recompute cost.
	ScorerCacheSize int
	// InfiniteNetworkBudget removes the noise from network learning
	// (ε₁ = ∞, exponential mechanism becomes argmax): the BestNetwork
	// reference of Figure 11. Distribution learning still uses ε₂.
	InfiniteNetworkBudget bool
	// InfiniteMarginalBudget removes the Laplace noise from distribution
	// learning: the BestMarginal reference of Figure 11. Degree / cap
	// selection still uses the finite ε₂, so only the injected noise
	// differs.
	InfiniteMarginalBudget bool
	// Consistency applies the mutual-consistency post-processing of
	// footnote 1 (EnforceConsistency) to the noisy marginals before
	// conditionals are derived. Free of privacy cost; off by default to
	// match the paper's presented algorithm.
	Consistency bool
	// Parallelism bounds the worker pool used by candidate scoring,
	// marginal counting and synthetic sampling. <= 0 (the default)
	// selects GOMAXPROCS; 1 forces the serial code paths, reproducing
	// the pre-parallel engine byte for byte. For a fixed seed, Fit and
	// Synthesize output is bit-identical at every parallelism other
	// than 1, on any machine — work units and RNG streams are indexed
	// by data position, never by worker (see Model.SampleP and
	// marginal.MaterializeP). The learned network structure is
	// additionally identical between the serial and parallel paths.
	Parallelism int
	// Progress, when set, receives one ProgressEvent per completed
	// pipeline unit (greedy iteration, materialized marginal). Events
	// are delivered serially — never from two goroutines at once — so
	// the callback needs no locking; it should return quickly.
	Progress func(ProgressEvent)
	// Rand is the randomness source; required.
	Rand *rand.Rand
}

// DefaultOptions returns the paper's default parameterization.
func DefaultOptions(epsilon float64, rng *rand.Rand) Options {
	return Options{Epsilon: epsilon, Beta: 0.3, Theta: 4, K: -1, Mode: ModeGeneral, Score: score.R, UseHierarchy: true, Rand: rng}
}

func (o *Options) validate(ds *dataset.Dataset) error {
	if o.Rand == nil {
		return errors.New("core: Options.Rand is required")
	}
	if o.Epsilon <= 0 && !(o.InfiniteNetworkBudget && o.InfiniteMarginalBudget) {
		return fmt.Errorf("core: epsilon must be positive, got %g", o.Epsilon)
	}
	if o.Beta <= 0 || o.Beta >= 1 {
		return fmt.Errorf("core: beta must be in (0,1), got %g", o.Beta)
	}
	if o.Theta <= 0 {
		return fmt.Errorf("core: theta must be positive, got %g", o.Theta)
	}
	if o.Mode == ModeBinary {
		for i := 0; i < ds.D(); i++ {
			if ds.Attr(i).Size() != 2 {
				return fmt.Errorf("core: ModeBinary requires binary attributes; %s has %d values", ds.Attr(i).Name, ds.Attr(i).Size())
			}
		}
	}
	if o.Mode == ModeGeneral && o.Score == score.F {
		return errors.New("core: score F is not computable on general domains (Theorem 5.1); use R or MI")
	}
	return nil
}

// Fit runs the first two phases of PrivBayes — private network learning
// and private distribution learning — and returns a model from which any
// number of synthetic tuples can be sampled without further privacy
// cost.
func Fit(ds *dataset.Dataset, opt Options) (*Model, error) {
	return FitContext(context.Background(), ds, opt)
}

// FitContext is Fit with cancellation: ctx is threaded through network
// learning (checked every greedy iteration and between candidate
// parent-set groups), marginal materialization (between AP-pair
// joints) and the worker pools underneath, so a cancelled fit stops
// promptly — within one scoring batch or one joint — releases its
// workers, and returns ctx.Err(). Cancellation never produces a
// partial model: the result is either complete or nil.
func FitContext(ctx context.Context, ds *dataset.Dataset, opt Options) (*Model, error) {
	return fitModel(ctx, ds, nil, opt)
}

// FitCountsContext runs the same two-phase pipeline as FitContext with
// every data access routed through a count source: structure search,
// sensitivities and table shapes need only the schema and row count
// (carried by a virtual dataset), and every joint the scorer or the
// conditional materialization needs is requested from cs as an exact
// integer count table. Because integer counts are chunking-invariant
// and the remaining float arithmetic is the very same code the
// in-memory path runs, the returned model is byte-identical to
// FitContext over the materialized rows, for any seed and parallelism.
func FitCountsContext(ctx context.Context, attrs []dataset.Attribute, cs marginal.CountSource, opt Options) (*Model, error) {
	return fitModel(ctx, dataset.NewVirtual(attrs, cs.Rows()), cs, opt)
}

func fitModel(ctx context.Context, ds *dataset.Dataset, cs marginal.CountSource, opt Options) (*Model, error) {
	if err := opt.validate(ds); err != nil {
		return nil, err
	}
	if ds.N() == 0 {
		return nil, errors.New("core: empty dataset")
	}
	eps1 := opt.Beta * opt.Epsilon
	eps2 := (1 - opt.Beta) * opt.Epsilon

	var acct *dp.Accountant
	if !opt.InfiniteNetworkBudget || !opt.InfiniteMarginalBudget {
		acct = dp.NewAccountant(opt.Epsilon)
	}
	if opt.InfiniteNetworkBudget {
		eps1 = math.Inf(1)
	} else if err := acct.Spend(opt.Beta * opt.Epsilon); err != nil {
		return nil, err
	}
	if !opt.InfiniteMarginalBudget && acct != nil {
		if err := acct.Spend((1 - opt.Beta) * opt.Epsilon); err != nil {
			return nil, err
		}
	}

	sc := opt.Scorer
	if sc == nil {
		if cs != nil {
			sc = score.NewScorerCounts(opt.Score, ds.Attrs(), cs, opt.ScorerCacheSize)
		} else {
			sc = score.NewScorerSized(opt.Score, ds, opt.ScorerCacheSize)
		}
	} else if sc.Fn != opt.Score {
		return nil, fmt.Errorf("core: supplied scorer computes %v, options ask for %v", sc.Fn, opt.Score)
	} else if sc.CountSource() != cs {
		return nil, errors.New("core: supplied scorer reads a different source than this fit")
	}

	progress := newProgressSink(opt.Progress)
	m := &Model{Attrs: append([]dataset.Attribute(nil), ds.Attrs()...), Score: opt.Score, K: -1}
	switch opt.Mode {
	case ModeBinary:
		k := opt.K
		if k < 0 {
			k = ChooseK(ds.N(), ds.D(), (1-opt.Beta)*opt.Epsilon, opt.Theta)
			if opt.MaxK > 0 && k > opt.MaxK {
				k = opt.MaxK
			}
		}
		if k > ds.D()-1 {
			k = ds.D() - 1
		}
		m.K = k
		// With only one possible network (k = 0 still leaves parent
		// choice trivial only when d = 1), the paper resets β when no
		// choice exists; we keep the split, which matches footnote 6's
		// observation without changing behaviour materially.
		net, err := GreedyBayesBinaryContext(ctx, ds, k, eps1, sc, opt.Parallelism, opt.Rand, progress)
		if err != nil {
			return nil, err
		}
		m.Network = net
		// Reuse the parent-configuration indexes the greedy iterations
		// built: the chosen pairs' joints need only a child-column pass.
		conds, err := noisyConditionalsBinary(ctx, ds, m.Network, k, eps2, opt.InfiniteMarginalBudget, opt.Consistency, opt.Parallelism, opt.Rand, sc.Indexes(), cs, progress)
		if err != nil {
			return nil, err
		}
		m.Conds = conds
	case ModeGeneral:
		net, err := GreedyBayesGeneralContext(ctx, ds, opt.Theta, eps1, eps2, opt.UseHierarchy, sc, opt.Parallelism, opt.Rand, progress)
		if err != nil {
			return nil, err
		}
		m.Network = net
		conds, err := noisyConditionalsGeneral(ctx, ds, m.Network, eps2, opt.InfiniteMarginalBudget, opt.Consistency, opt.Parallelism, opt.Rand, sc.Indexes(), cs, progress)
		if err != nil {
			return nil, err
		}
		m.Conds = conds
	default:
		return nil, fmt.Errorf("core: unknown mode %d", opt.Mode)
	}
	if err := m.Network.Validate(ds.D()); err != nil {
		return nil, err
	}
	return m, nil
}

// RefitCountsContext re-learns only the distribution phase: it keeps
// the supplied network structure and materializes fresh noisy
// conditionals from the count source, spending the whole opt.Epsilon
// on distribution learning (there is no structure-learning charge, so
// Beta is ignored). This is the curator's incremental refit — with a
// StoreSource whose tables were maintained on ingest, no row is
// re-read at all. k is the binary-mode anchor degree the network was
// learned with; it is ignored in ModeGeneral.
func RefitCountsContext(ctx context.Context, attrs []dataset.Attribute, cs marginal.CountSource, net Network, k int, opt Options) (*Model, error) {
	if opt.Rand == nil {
		return nil, errors.New("core: Options.Rand is required")
	}
	if opt.Epsilon <= 0 && !opt.InfiniteMarginalBudget {
		return nil, fmt.Errorf("core: epsilon must be positive, got %g", opt.Epsilon)
	}
	n := cs.Rows()
	if n == 0 {
		return nil, errors.New("core: empty dataset")
	}
	ds := dataset.NewVirtual(attrs, n)
	if err := net.Validate(ds.D()); err != nil {
		return nil, err
	}
	progress := newProgressSink(opt.Progress)
	// The index cache is empty in counts mode; it only carries the
	// shared Ladder that keeps Parallelism=1 refits byte-identical to
	// the serial in-memory path.
	cache := marginal.NewIndexCache(0)
	m := &Model{Attrs: append([]dataset.Attribute(nil), attrs...), Score: opt.Score, K: -1, Network: net}
	switch opt.Mode {
	case ModeBinary:
		if k < 0 || k > ds.D()-1 {
			return nil, fmt.Errorf("core: refit anchor degree %d outside [0, %d]", k, ds.D()-1)
		}
		m.K = k
		conds, err := noisyConditionalsBinary(ctx, ds, net, k, opt.Epsilon, opt.InfiniteMarginalBudget, opt.Consistency, opt.Parallelism, opt.Rand, cache, cs, progress)
		if err != nil {
			return nil, err
		}
		m.Conds = conds
	case ModeGeneral:
		conds, err := noisyConditionalsGeneral(ctx, ds, net, opt.Epsilon, opt.InfiniteMarginalBudget, opt.Consistency, opt.Parallelism, opt.Rand, cache, cs, progress)
		if err != nil {
			return nil, err
		}
		m.Conds = conds
	default:
		return nil, fmt.Errorf("core: unknown mode %d", opt.Mode)
	}
	return m, nil
}

// Synthesize runs the full three-phase pipeline and returns a synthetic
// dataset of the same cardinality as the input (Section 3). Sampling
// honours opt.Parallelism (see Model.SampleP).
func Synthesize(ds *dataset.Dataset, opt Options) (*dataset.Dataset, error) {
	return SynthesizeContext(context.Background(), ds, opt)
}

// SynthesizeContext is Synthesize with cancellation (see FitContext and
// Model.SampleContext) and sampling progress.
func SynthesizeContext(ctx context.Context, ds *dataset.Dataset, opt Options) (*dataset.Dataset, error) {
	m, err := FitContext(ctx, ds, opt)
	if err != nil {
		return nil, err
	}
	return m.sampleContext(ctx, ds.N(), opt.Rand, opt.Parallelism, newProgressSink(opt.Progress))
}
