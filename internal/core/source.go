package core

import (
	crand "crypto/rand"
	"encoding/binary"
	"math/rand"
)

// Source is a seed-based randomness source: an immutable value that
// derives a fresh deterministic generator per use. It replaces the raw
// *rand.Rand of the v1 API at every public entry point, for two
// reasons:
//
//   - *rand.Rand is mutable and not concurrency-safe, so sharing one
//     across requests (the serving workload) is a data race; a Source
//     is a value — copying it is free and every use is independent.
//   - A Source records the seed it was built from (Seed), so any run
//     can be replayed exactly: fitting or synthesizing twice from the
//     same Source yields bit-identical output.
//
// The zero Source is "unset"; entry points treat it as "draw a fresh
// cryptographic seed" (CryptoSource) for that run. A seed drawn this
// way is internal to the run — callers that want to replay a run after
// the fact should pre-draw src := CryptoSource(), log src.Seed(), and
// pass the source explicitly (privbayesd does exactly this and echoes
// the seed in X-Privbayes-Seed).
type Source struct {
	seed int64
	set  bool
}

// NewSource returns a deterministic Source for the given seed.
// Equivalent v1 randomness: rand.New(rand.NewSource(seed)).
func NewSource(seed int64) Source { return Source{seed: seed, set: true} }

// CryptoSource returns a Source whose seed was drawn from the
// operating system's cryptographic randomness — the default for
// callers that did not ask for a specific seed. The result is still a
// plain seed-based Source: read Seed to log or replay the run.
func CryptoSource() Source {
	var b [8]byte
	// crypto/rand.Read never fails on supported platforms (it panics
	// irrecoverably if the kernel source is unavailable).
	crand.Read(b[:])
	return NewSource(int64(binary.LittleEndian.Uint64(b[:])))
}

// Seed returns the seed this source replays from.
func (s Source) Seed() int64 { return s.seed }

// IsZero reports whether the source is the unset zero value.
func (s Source) IsZero() bool { return !s.set }

// Rand derives a fresh generator positioned at the start of the
// source's stream. Every call returns an independent *rand.Rand with
// identical output, so concurrent users never share mutable state.
func (s Source) Rand() *rand.Rand { return rand.New(rand.NewSource(s.seed)) }

// orCrypto resolves an unset source to a fresh cryptographic one.
func (s Source) orCrypto() Source {
	if s.IsZero() {
		return CryptoSource()
	}
	return s
}
