package core

import (
	"math"
	"math/rand"
	"testing"

	"privbayes/internal/dataset"
	"privbayes/internal/marginal"
	"privbayes/internal/score"
)

// chainData builds a binary dataset with a known dependency chain
// a0 -> a1 -> a2 -> a3 (each attribute copies its predecessor with 10%
// flips), plus two independent attributes.
func chainData(n int, seed int64) *dataset.Dataset {
	const d = 6
	attrs := make([]dataset.Attribute, d)
	for i := range attrs {
		attrs[i] = dataset.NewCategorical(string(rune('a'+i)), []string{"0", "1"})
	}
	ds := dataset.New(attrs)
	rng := rand.New(rand.NewSource(seed))
	rec := make([]uint16, d)
	for i := 0; i < n; i++ {
		rec[0] = uint16(rng.Intn(2))
		for j := 1; j < 4; j++ {
			rec[j] = rec[j-1]
			if rng.Float64() < 0.1 {
				rec[j] = 1 - rec[j]
			}
		}
		rec[4] = uint16(rng.Intn(2))
		rec[5] = uint16(rng.Intn(2))
		ds.Append(rec)
	}
	return ds
}

func mixedData(n int, seed int64) *dataset.Dataset {
	h := dataset.NewCategorical("city", []string{"a", "b", "c", "d"})
	h.Hierarchy = dataset.NewHierarchy(4, []int{0, 0, 1, 1})
	attrs := []dataset.Attribute{
		dataset.NewCategorical("x", []string{"0", "1"}),
		h,
		dataset.NewContinuous("v", 0, 8, 4),
	}
	ds := dataset.New(attrs)
	rng := rand.New(rand.NewSource(seed))
	rec := make([]uint16, 3)
	for i := 0; i < n; i++ {
		city := rng.Intn(4)
		x := 0
		if city >= 2 && rng.Float64() < 0.8 {
			x = 1
		}
		rec[0], rec[1], rec[2] = uint16(x), uint16(city), uint16(rng.Intn(4))
		ds.Append(rec)
	}
	return ds
}

func TestUsefulnessLemma48(t *testing.T) {
	// Directly check the formula n·ε₂/((d−k)·2^(k+2)).
	got := Usefulness(21574, 16, 3, 0.14)
	want := 21574.0 * 0.14 / (13 * 32)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Usefulness = %v, want %v", got, want)
	}
}

func TestChooseK(t *testing.T) {
	// Usefulness decreases in k, so ChooseK returns the largest k
	// meeting θ; tiny budgets fall back to k = 0.
	if k := ChooseK(21574, 16, 1.12, 4); k < 4 {
		t.Errorf("large budget chose k = %d, want >= 4", k)
	}
	if k := ChooseK(1000, 16, 0.01, 4); k != 0 {
		t.Errorf("tiny budget chose k = %d, want 0", k)
	}
	// The chosen k must itself satisfy θ (or be 0).
	for _, eps2 := range []float64{0.05, 0.2, 1.0} {
		k := ChooseK(20000, 12, eps2, 4)
		if k > 0 && Usefulness(20000, 12, k, eps2) < 4 {
			t.Errorf("eps2=%v: chosen k=%d violates θ-usefulness", eps2, k)
		}
		if k+1 <= 11 && Usefulness(20000, 12, k+1, eps2) >= 4 {
			t.Errorf("eps2=%v: k=%d not maximal", eps2, k)
		}
	}
}

func TestGreedyBayesBinaryStructure(t *testing.T) {
	ds := chainData(3000, 1)
	sc := score.NewScorer(score.F, ds)
	rng := rand.New(rand.NewSource(2))
	for _, k := range []int{1, 2, 3} {
		net := GreedyBayesBinary(ds, k, math.Inf(1), sc, 1, rng)
		if err := net.Validate(ds.D()); err != nil {
			t.Fatalf("k=%d: invalid network: %v", k, err)
		}
		if net.Degree() > k {
			t.Errorf("k=%d: degree %d exceeds k", k, net.Degree())
		}
		// Chain property required by Algorithm 1: the first min(k,i)
		// pairs have FULL parent sets over all previous attributes.
		for i := 1; i <= k && i < len(net.Pairs); i++ {
			if len(net.Pairs[i].Parents) != i {
				t.Errorf("k=%d: pair %d has %d parents, want %d (full set)",
					k, i, len(net.Pairs[i].Parents), i)
			}
		}
		// Pair k+1 must have exactly k parents.
		if len(net.Pairs) > k && len(net.Pairs[k].Parents) != k {
			t.Errorf("k=%d: anchor pair has %d parents", k, len(net.Pairs[k].Parents))
		}
	}
}

func TestGreedyBayesBinaryFindsChain(t *testing.T) {
	ds := chainData(8000, 3)
	sc := score.NewScorer(score.MI, ds)
	net := GreedyBayesBinary(ds, 1, math.Inf(1), sc, 1, rand.New(rand.NewSource(4)))
	// The non-private greedy Chow-Liu tree must recover the strong
	// chain edges: each of a1..a3 should have its chain neighbor as the
	// parent (whichever side was added first).
	sum := net.SumMI(ds)
	if sum < 1.2 {
		t.Errorf("non-private k=1 network sumMI = %v, want > 1.2 (three strong edges)", sum)
	}
}

func TestGreedyBayesGeneralRespectsCap(t *testing.T) {
	ds := mixedData(5000, 5)
	sc := score.NewScorer(score.R, ds)
	eps2 := 0.07
	net := GreedyBayesGeneral(ds, 4, math.Inf(1), eps2, true, sc, 1, rand.New(rand.NewSource(6)))
	if err := net.Validate(ds.D()); err != nil {
		t.Fatal(err)
	}
	cap0 := GeneralDomainCap(ds.N(), ds.D(), eps2, 4)
	for _, p := range net.Pairs {
		size := float64(ds.Attr(p.X.Attr).Size())
		for _, par := range p.Parents {
			size *= float64(par.Size(ds))
		}
		if size > cap0+1e-9 {
			t.Errorf("pair (%v|%v) marginal has %v cells, cap %v", p.X, p.Parents, size, cap0)
		}
	}
}

func TestNetworkValidateCatchesCycles(t *testing.T) {
	bad := Network{Pairs: []APPair{
		{X: marginal.Var{Attr: 0}, Parents: []marginal.Var{{Attr: 1}}},
		{X: marginal.Var{Attr: 1}},
	}}
	if err := bad.Validate(2); err == nil {
		t.Error("forward-referencing parent must fail validation")
	}
	dup := Network{Pairs: []APPair{
		{X: marginal.Var{Attr: 0}},
		{X: marginal.Var{Attr: 0}},
	}}
	if err := dup.Validate(2); err == nil {
		t.Error("duplicate child must fail validation")
	}
}

// Table 1 of the paper: the N1 network is a valid degree-2 network.
func TestPaperTable1NetworkShape(t *testing.T) {
	// age=0, education=1, workclass=2, title=3, income=4.
	n1 := Network{Pairs: []APPair{
		{X: marginal.Var{Attr: 0}},
		{X: marginal.Var{Attr: 1}, Parents: []marginal.Var{{Attr: 0}}},
		{X: marginal.Var{Attr: 2}, Parents: []marginal.Var{{Attr: 0}, {Attr: 1}}},
		{X: marginal.Var{Attr: 3}, Parents: []marginal.Var{{Attr: 0}, {Attr: 2}}},
		{X: marginal.Var{Attr: 4}, Parents: []marginal.Var{{Attr: 2}, {Attr: 3}}},
	}}
	if err := n1.Validate(5); err != nil {
		t.Fatalf("N1 must validate: %v", err)
	}
	if n1.Degree() != 2 {
		t.Errorf("N1 degree = %d, want 2", n1.Degree())
	}
}

func TestNoisyConditionalsBinaryDerivation(t *testing.T) {
	ds := chainData(4000, 7)
	sc := score.NewScorer(score.F, ds)
	rng := rand.New(rand.NewSource(8))
	k := 2
	net := GreedyBayesBinary(ds, k, math.Inf(1), sc, 1, rng)
	// Without noise, derived head conditionals must equal direct
	// materialization.
	conds, err := NoisyConditionalsBinary(ds, net, k, 1.0, true, false, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(conds) != ds.D() {
		t.Fatalf("got %d conditionals", len(conds))
	}
	for i := 0; i < k; i++ {
		pair := net.Pairs[i]
		direct := marginal.ConditionalFromJoint(marginal.Materialize(ds, pair.Vars()))
		for j := range direct.P {
			if math.Abs(direct.P[j]-conds[i].P[j]) > 1e-9 {
				t.Fatalf("pair %d: derived conditional differs from direct at %d: %v vs %v",
					i, j, conds[i].P[j], direct.P[j])
			}
		}
	}
}

func TestNoisyConditionalsGeneralShapes(t *testing.T) {
	ds := mixedData(3000, 9)
	sc := score.NewScorer(score.R, ds)
	rng := rand.New(rand.NewSource(10))
	net := GreedyBayesGeneral(ds, 4, math.Inf(1), 0.5, true, sc, 1, rng)
	conds := NoisyConditionalsGeneral(ds, net, 0.5, false, false, 1, rng)
	for i, c := range conds {
		if c.X != net.Pairs[i].X {
			t.Fatalf("conditional %d child mismatch", i)
		}
		blocks := len(c.P) / c.XDim
		for b := 0; b < blocks; b++ {
			var s float64
			for x := 0; x < c.XDim; x++ {
				s += c.P[b*c.XDim+x]
			}
			if math.Abs(s-1) > 1e-9 {
				t.Fatalf("conditional %d block %d sums to %v", i, b, s)
			}
		}
	}
}

func TestSampleMatchesModelDistribution(t *testing.T) {
	ds := chainData(8000, 11)
	rng := rand.New(rand.NewSource(12))
	m, err := Fit(ds, Options{
		Epsilon: 100, Beta: 0.3, Theta: 4, K: 2,
		Mode: ModeBinary, Score: score.F, Rand: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	syn := m.Sample(40000, rng)
	// With a huge budget the synthetic pairwise marginal of the chain
	// edge (a0, a1) must be close to the real one.
	vars := []marginal.Var{{Attr: 0}, {Attr: 1}}
	realM := marginal.Materialize(ds, vars)
	synM := marginal.Materialize(syn, vars)
	if tvd := marginal.TVD(realM, synM); tvd > 0.03 {
		t.Errorf("synthetic (a0,a1) marginal TVD = %v, want < 0.03 at ε=100", tvd)
	}
}

func TestSampleWithGeneralizedParents(t *testing.T) {
	ds := mixedData(5000, 13)
	rng := rand.New(rand.NewSource(14))
	m, err := Fit(ds, Options{
		Epsilon: 0.1, Beta: 0.3, Theta: 4,
		Mode: ModeGeneral, Score: score.R, UseHierarchy: true, Rand: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	syn := m.Sample(1000, rng)
	if syn.N() != 1000 || syn.D() != ds.D() {
		t.Fatalf("synthetic shape %dx%d", syn.N(), syn.D())
	}
	// Every sampled code must be in the raw domain.
	for r := 0; r < syn.N(); r++ {
		for c := 0; c < syn.D(); c++ {
			if syn.Value(r, c) >= syn.Attr(c).Size() {
				t.Fatalf("out-of-domain code at (%d,%d)", r, c)
			}
		}
	}
}
