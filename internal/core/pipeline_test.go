package core

import (
	"math/rand"
	"testing"

	"privbayes/internal/dataset"
	"privbayes/internal/marginal"
	"privbayes/internal/score"
)

func TestFitValidation(t *testing.T) {
	ds := chainData(100, 1)
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		opt  Options
	}{
		{"missing rand", Options{Epsilon: 1, Beta: 0.3, Theta: 4, Mode: ModeBinary, Score: score.F}},
		{"bad epsilon", Options{Epsilon: -1, Beta: 0.3, Theta: 4, Mode: ModeBinary, Score: score.F, Rand: rng}},
		{"bad beta", Options{Epsilon: 1, Beta: 1.5, Theta: 4, Mode: ModeBinary, Score: score.F, Rand: rng}},
		{"bad theta", Options{Epsilon: 1, Beta: 0.3, Theta: -2, Mode: ModeBinary, Score: score.F, Rand: rng}},
		{"F on general domains", Options{Epsilon: 1, Beta: 0.3, Theta: 4, Mode: ModeGeneral, Score: score.F, Rand: rng}},
	}
	for _, c := range cases {
		if _, err := Fit(ds, c.opt); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestFitRejectsBinaryModeOnGeneralDomains(t *testing.T) {
	ds := mixedData(100, 2)
	_, err := Fit(ds, Options{
		Epsilon: 1, Beta: 0.3, Theta: 4, Mode: ModeBinary,
		Score: score.F, Rand: rand.New(rand.NewSource(1)),
	})
	if err == nil {
		t.Fatal("ModeBinary must reject non-binary attributes")
	}
}

func TestFitRejectsEmptyDataset(t *testing.T) {
	ds := dataset.New([]dataset.Attribute{dataset.NewCategorical("a", []string{"0", "1"})})
	_, err := Fit(ds, Options{
		Epsilon: 1, Beta: 0.3, Theta: 4, Mode: ModeBinary,
		Score: score.F, Rand: rand.New(rand.NewSource(1)),
	})
	if err == nil {
		t.Fatal("empty dataset must error")
	}
}

func TestFitRejectsMismatchedScorer(t *testing.T) {
	ds := chainData(100, 3)
	sc := score.NewScorer(score.MI, ds)
	_, err := Fit(ds, Options{
		Epsilon: 1, Beta: 0.3, Theta: 4, Mode: ModeBinary,
		Score: score.F, Scorer: sc, Rand: rand.New(rand.NewSource(1)),
	})
	if err == nil {
		t.Fatal("scorer/function mismatch must error")
	}
}

func TestFitDeterministicGivenSeed(t *testing.T) {
	ds := chainData(1000, 4)
	run := func() *dataset.Dataset {
		rng := rand.New(rand.NewSource(99))
		syn, err := Synthesize(ds, Options{
			Epsilon: 0.5, Beta: 0.3, Theta: 4, K: -1,
			Mode: ModeBinary, Score: score.F, Rand: rng,
		})
		if err != nil {
			t.Fatal(err)
		}
		return syn
	}
	a, b := run(), run()
	if a.N() != b.N() {
		t.Fatal("different sizes")
	}
	for r := 0; r < a.N(); r++ {
		for c := 0; c < a.D(); c++ {
			if a.Value(r, c) != b.Value(r, c) {
				t.Fatalf("runs diverge at (%d,%d)", r, c)
			}
		}
	}
}

func TestFitMaxKCap(t *testing.T) {
	ds := chainData(20000, 5)
	rng := rand.New(rand.NewSource(6))
	m, err := Fit(ds, Options{
		Epsilon: 10, Beta: 0.3, Theta: 4, K: -1, MaxK: 1,
		Mode: ModeBinary, Score: score.F, Rand: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.K != 1 {
		t.Errorf("MaxK=1 but fitted K = %d", m.K)
	}
}

func TestFitForcedK(t *testing.T) {
	ds := chainData(2000, 7)
	rng := rand.New(rand.NewSource(8))
	m, err := Fit(ds, Options{
		Epsilon: 1, Beta: 0.3, Theta: 4, K: 3,
		Mode: ModeBinary, Score: score.F, Rand: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.K != 3 {
		t.Errorf("forced K = 3 but got %d", m.K)
	}
}

// More budget must (statistically) mean better synthetic marginals.
func TestAccuracyImprovesWithEpsilon(t *testing.T) {
	ds := chainData(8000, 9)
	avd := func(eps float64) float64 {
		var total float64
		const reps = 3
		for r := 0; r < reps; r++ {
			rng := rand.New(rand.NewSource(int64(100 + r)))
			syn, err := Synthesize(ds, Options{
				Epsilon: eps, Beta: 0.3, Theta: 4, K: -1,
				Mode: ModeBinary, Score: score.F, Rand: rng,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Average TVD over all 2-way marginals.
			var sum float64
			cnt := 0
			for i := 0; i < ds.D(); i++ {
				for j := i + 1; j < ds.D(); j++ {
					vars := []marginal.Var{{Attr: i}, {Attr: j}}
					sum += marginal.TVD(marginal.Materialize(ds, vars), marginal.Materialize(syn, vars))
					cnt++
				}
			}
			total += sum / float64(cnt)
		}
		return total / reps
	}
	low, high := avd(0.05), avd(2.0)
	if high >= low {
		t.Errorf("AVD at ε=2 (%v) should beat ε=0.05 (%v)", high, low)
	}
}

// Figure 11's premise: removing marginal noise (BestMarginal) must not
// hurt, and at small ε should clearly help count queries.
func TestInfiniteMarginalBudgetHelps(t *testing.T) {
	ds := chainData(5000, 10)
	run := func(infMarg bool) float64 {
		var total float64
		const reps = 3
		for r := 0; r < reps; r++ {
			rng := rand.New(rand.NewSource(int64(200 + r)))
			syn, err := Synthesize(ds, Options{
				Epsilon: 0.05, Beta: 0.3, Theta: 4, K: -1,
				Mode: ModeBinary, Score: score.F, Rand: rng,
				InfiniteMarginalBudget: infMarg,
			})
			if err != nil {
				t.Fatal(err)
			}
			vars := []marginal.Var{{Attr: 0}, {Attr: 1}}
			total += marginal.TVD(marginal.Materialize(ds, vars), marginal.Materialize(syn, vars))
		}
		return total / reps
	}
	noisy, clean := run(false), run(true)
	if clean >= noisy {
		t.Errorf("BestMarginal TVD (%v) should beat PrivBayes (%v) at ε=0.05", clean, noisy)
	}
}

func TestSynthesizeSameCardinality(t *testing.T) {
	ds := mixedData(1234, 11)
	rng := rand.New(rand.NewSource(12))
	syn, err := Synthesize(ds, DefaultOptions(1.0, rng))
	if err != nil {
		t.Fatal(err)
	}
	if syn.N() != ds.N() {
		t.Errorf("synthetic N = %d, want %d", syn.N(), ds.N())
	}
}

func TestModelSampleZeroRows(t *testing.T) {
	ds := chainData(500, 13)
	rng := rand.New(rand.NewSource(14))
	m, err := Fit(ds, Options{
		Epsilon: 1, Beta: 0.3, Theta: 4, K: 1,
		Mode: ModeBinary, Score: score.F, Rand: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if syn := m.Sample(0, rng); syn.N() != 0 {
		t.Error("zero-row sample should be empty")
	}
}
