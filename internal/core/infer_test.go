package core

import (
	"math"
	"math/rand"
	"testing"

	"privbayes/internal/marginal"
	"privbayes/internal/score"
)

func noiselessModel(t *testing.T, seed int64) (*Model, *rand.Rand) {
	t.Helper()
	ds := chainData(6000, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	m, err := Fit(ds, Options{
		Epsilon: 1, Beta: 0.3, Theta: 4, K: 2,
		Mode: ModeBinary, Score: score.F, Rand: rng,
		InfiniteNetworkBudget: true, InfiniteMarginalBudget: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, rng
}

// With a noise-free model, InferMarginal of an AP pair's own variables
// must reproduce the empirical joint exactly.
func TestInferMarginalExactOnModelPairs(t *testing.T) {
	ds := chainData(6000, 21)
	rng := rand.New(rand.NewSource(22))
	m, err := Fit(ds, Options{
		Epsilon: 1, Beta: 0.3, Theta: 4, K: 2,
		Mode: ModeBinary, Score: score.F, Rand: rng,
		InfiniteNetworkBudget: true, InfiniteMarginalBudget: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range m.Network.Pairs {
		attrs := []int{pair.X.Attr}
		for _, p := range pair.Parents {
			attrs = append(attrs, p.Attr)
		}
		got, err := m.InferMarginal(attrs, 0)
		if err != nil {
			t.Fatal(err)
		}
		vars := make([]marginal.Var, len(attrs))
		for i, a := range attrs {
			vars[i] = marginal.Var{Attr: a}
		}
		want := marginal.Materialize(ds, vars)
		if tvd := marginal.TVD(want, got); tvd > 1e-9 {
			t.Errorf("pair over %v: inferred marginal TVD = %v", attrs, tvd)
		}
	}
}

// Inference must agree with a large sample from the same model, but
// without the sampling error — the motivation in Section 7.
func TestInferMarginalMatchesSampling(t *testing.T) {
	m, rng := noiselessModel(t, 23)
	syn := m.Sample(60000, rng)
	attrs := []int{0, 2}
	inferred, err := m.InferMarginal(attrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	vars := []marginal.Var{{Attr: 0}, {Attr: 2}}
	sampled := marginal.Materialize(syn, vars)
	if tvd := marginal.TVD(inferred, sampled); tvd > 0.01 {
		t.Errorf("inferred vs sampled TVD = %v", tvd)
	}
}

func TestInferMarginalSumsToOne(t *testing.T) {
	m, _ := noiselessModel(t, 24)
	for _, attrs := range [][]int{{0}, {1, 3}, {5, 0, 2}} {
		got, err := m.InferMarginal(attrs, 0)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, p := range got.P {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("marginal over %v sums to %v", attrs, sum)
		}
	}
}

func TestInferMarginalRespectsOrder(t *testing.T) {
	m, _ := noiselessModel(t, 25)
	ab, err := m.InferMarginal([]int{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := m.InferMarginal([]int{1, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Pr[a=1, b=0] must appear transposed.
	if math.Abs(ab.P[ab.Index([]int{1, 0})]-ba.P[ba.Index([]int{0, 1})]) > 1e-12 {
		t.Error("inferred marginals not consistent under reordering")
	}
}

func TestInferMarginalCellCap(t *testing.T) {
	m, _ := noiselessModel(t, 26)
	if _, err := m.InferMarginal([]int{0, 1, 2, 3, 4, 5}, 4); err == nil {
		t.Error("tiny cell cap should force an error")
	}
}

func TestInferMarginalBadAttr(t *testing.T) {
	m, _ := noiselessModel(t, 27)
	if _, err := m.InferMarginal([]int{99}, 0); err == nil {
		t.Error("out-of-range attribute should error")
	}
}

// Inference through generalized parents must agree with sampling as
// well (exercises the Generalize path of multiplyConditional).
func TestInferMarginalGeneralizedParents(t *testing.T) {
	ds := mixedData(6000, 28)
	rng := rand.New(rand.NewSource(29))
	m, err := Fit(ds, Options{
		Epsilon: 0.05, Beta: 0.3, Theta: 4,
		Mode: ModeGeneral, Score: score.R, UseHierarchy: true, Rand: rng,
		InfiniteMarginalBudget: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	syn := m.Sample(80000, rng)
	inferred, err := m.InferMarginal([]int{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	sampled := marginal.Materialize(syn, []marginal.Var{{Attr: 0}, {Attr: 1}})
	if tvd := marginal.TVD(inferred, sampled); tvd > 0.01 {
		t.Errorf("generalized-parent inference vs sampling TVD = %v", tvd)
	}
}
