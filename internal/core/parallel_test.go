package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"privbayes/internal/dataset"
	"privbayes/internal/score"
)

// fitJSON runs Fit with the given parallelism and a fresh seed-1
// generator and returns the serialized model, the byte-comparable
// fingerprint of network + conditionals.
func fitJSON(t *testing.T, parallelism int, mode Mode) []byte {
	t.Helper()
	var opt Options
	var m *Model
	var err error
	if mode == ModeBinary {
		ds := chainData(3000, 7)
		opt = Options{Epsilon: 0.8, Beta: 0.3, Theta: 4, K: 2, Mode: ModeBinary,
			Score: score.F, Parallelism: parallelism, Rand: rand.New(rand.NewSource(1))}
		m, err = Fit(ds, opt)
	} else {
		ds := mixedData(3000, 8)
		opt = Options{Epsilon: 0.8, Beta: 0.3, Theta: 4, Mode: ModeGeneral,
			Score: score.R, UseHierarchy: true, Parallelism: parallelism, Rand: rand.New(rand.NewSource(1))}
		m, err = Fit(ds, opt)
	}
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf, 0.8); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFitBitIdenticalAcrossParallelism checks the engine's central
// guarantee: Fit consumes randomness only on the caller's generator
// (exponential-mechanism draws, Laplace noise), every parallel stage is
// a pure ordered reduction, and marginal counting merges exact integer
// partials — so the fitted model is bit-identical at every parallelism
// other than 1 (including the GOMAXPROCS default 0), on any machine,
// for a fixed seed. Parallelism 1 is the legacy serial path, whose
// float accumulation order may differ in the last ULP.
func TestFitBitIdenticalAcrossParallelism(t *testing.T) {
	for _, mode := range []Mode{ModeBinary, ModeGeneral} {
		want := fitJSON(t, 2, mode)
		for _, par := range []int{0, 3, 4, 8} {
			if got := fitJSON(t, par, mode); !bytes.Equal(got, want) {
				t.Errorf("mode %v: Fit at parallelism %d differs from parallelism 2", mode, par)
			}
		}
	}
}

// TestNetworkIdenticalSerialVsParallel checks the learned structure —
// which consumes the privacy budget's exponential-mechanism draws — is
// identical even between the legacy serial path and the parallel
// engine: candidate scores are computed by the same serial per-pair
// code either way, only fanned out.
func TestNetworkIdenticalSerialVsParallel(t *testing.T) {
	ds := chainData(3000, 7)
	fit := func(par int) Network {
		m, err := Fit(ds, Options{Epsilon: 0.8, Beta: 0.3, Theta: 4, K: 2, Mode: ModeBinary,
			Score: score.F, Parallelism: par, Rand: rand.New(rand.NewSource(1))})
		if err != nil {
			t.Fatal(err)
		}
		return m.Network
	}
	serial, par4 := fit(1), fit(4)
	if !reflect.DeepEqual(serial, par4) {
		t.Errorf("network differs between serial and parallel: %v vs %v", serial, par4)
	}
}

// TestSamplePDeterministicAcrossParallelism checks the split-RNG scheme:
// chunk geometry and chunk seeds depend only on (n, seed), so sampled
// output is bit-identical at every parallelism other than 1 — including
// the GOMAXPROCS default 0, whatever the machine resolves it to.
func TestSamplePDeterministicAcrossParallelism(t *testing.T) {
	ds := chainData(3000, 7)
	m, err := Fit(ds, Options{Epsilon: 0.8, Beta: 0.3, Theta: 4, K: 2, Mode: ModeBinary,
		Score: score.F, Rand: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000 // spans multiple sample chunks
	want := m.SampleP(n, rand.New(rand.NewSource(3)), 2)
	for _, par := range []int{0, 3, 4, 16} {
		got := m.SampleP(n, rand.New(rand.NewSource(3)), par)
		for c := 0; c < got.D(); c++ {
			a, b := got.ColumnCodes(c), want.ColumnCodes(c)
			for r := range a {
				if a[r] != b[r] {
					t.Fatalf("parallelism %d: row %d col %d = %d, want %d", par, r, c, a[r], b[r])
				}
			}
		}
	}
}

// TestSamplePSerialPathIsLegacy checks parallelism 1 reproduces the
// pre-engine serial sampler byte for byte: same draws from the caller's
// generator, same tuples.
func TestSamplePSerialPathIsLegacy(t *testing.T) {
	ds := chainData(2000, 7)
	m, err := Fit(ds, Options{Epsilon: 0.8, Beta: 0.3, Theta: 4, K: 2, Mode: ModeBinary,
		Score: score.F, Rand: rand.New(rand.NewSource(4))})
	if err != nil {
		t.Fatal(err)
	}
	want := m.Sample(3000, rand.New(rand.NewSource(5)))
	got := m.SampleP(3000, rand.New(rand.NewSource(5)), 1)
	for c := 0; c < got.D(); c++ {
		a, b := got.ColumnCodes(c), want.ColumnCodes(c)
		for r := range a {
			if a[r] != b[r] {
				t.Fatalf("row %d col %d = %d, want %d", r, c, a[r], b[r])
			}
		}
	}
}

// TestConcurrentFitSharedScorer stresses concurrent Fit calls sharing
// one Scorer cache, each internally parallel (run with -race). Every
// call must still produce the model its own seed dictates.
func TestConcurrentFitSharedScorer(t *testing.T) {
	ds := chainData(2000, 9)
	sc := score.NewScorer(score.F, ds)
	want := fitSharedScorer(t, ds, sc)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := fitSharedScorer(t, ds, sc)
			if !bytes.Equal(got, want) {
				t.Error("concurrent Fit with shared scorer diverged")
			}
		}()
	}
	wg.Wait()
}

func fitSharedScorer(t *testing.T, ds *dataset.Dataset, sc *score.Scorer) []byte {
	t.Helper()
	m, err := Fit(ds, Options{Epsilon: 0.8, Beta: 0.3, Theta: 4, K: 2,
		Mode: ModeBinary, Score: score.F, Scorer: sc, Parallelism: 4,
		Rand: rand.New(rand.NewSource(6))})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf, 0.8); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
