package core

import "fmt"

// ModelInfo is a serializable summary of a fitted model — the metadata
// a registry or inspection endpoint exposes without shipping the
// conditional tables themselves. Everything here is derived from the
// ε-DP release, so surfacing it costs no additional privacy.
type ModelInfo struct {
	// Attrs is the model's schema, one entry per attribute.
	Attrs []AttrInfo `json:"attrs"`
	// Network lists the AP pairs in topological (sampling) order.
	Network []PairInfo `json:"network"`
	// Degree is the maximum parent-set size (the paper's k).
	Degree int `json:"degree"`
	// Score names the score function that selected the network (I/F/R).
	Score string `json:"score"`
	// Cells is the total size of the conditional tables — the model's
	// in-memory footprint in float64 cells.
	Cells int `json:"cells"`
}

// AttrInfo summarizes one schema attribute.
type AttrInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Size is the raw (level-0) domain size.
	Size int `json:"size"`
	// Levels is the number of generalization levels, including raw.
	Levels int `json:"levels"`
}

// PairInfo renders one AP pair by attribute name; generalized parents
// carry an "@L<level>" suffix.
type PairInfo struct {
	Child   string   `json:"child"`
	Parents []string `json:"parents"`
}

// Info summarizes the model for registries and inspection endpoints.
func (m *Model) Info() ModelInfo {
	info := ModelInfo{
		Attrs:   make([]AttrInfo, len(m.Attrs)),
		Network: make([]PairInfo, len(m.Network.Pairs)),
		Degree:  m.Network.Degree(),
		Score:   m.Score.String(),
	}
	for i := range m.Attrs {
		a := &m.Attrs[i]
		info.Attrs[i] = AttrInfo{Name: a.Name, Kind: a.Kind.String(), Size: a.Size(), Levels: a.Height()}
	}
	for i, p := range m.Network.Pairs {
		pi := PairInfo{Child: m.Attrs[p.X.Attr].Name, Parents: make([]string, len(p.Parents))}
		for j, par := range p.Parents {
			name := m.Attrs[par.Attr].Name
			if par.Level > 0 {
				name = fmt.Sprintf("%s@L%d", name, par.Level)
			}
			pi.Parents[j] = name
		}
		info.Network[i] = pi
	}
	for _, c := range m.Conds {
		info.Cells += len(c.P)
	}
	return info
}
