package infotheory

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"privbayes/internal/marginal"
)

func TestEntropyKnownValues(t *testing.T) {
	cases := []struct {
		p    []float64
		want float64
	}{
		{[]float64{0.5, 0.5}, 1},
		{[]float64{1, 0}, 0},
		{[]float64{0.25, 0.25, 0.25, 0.25}, 2},
	}
	for _, c := range cases {
		if got := Entropy(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Entropy(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestEntropyNonNegative(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		var sum float64
		p := make([]float64, len(raw))
		for i, v := range raw {
			p[i] = math.Abs(v)
			sum += p[i]
		}
		if sum == 0 {
			return true
		}
		for i := range p {
			p[i] /= sum
		}
		return Entropy(p) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// table builds a [Π, X] joint from a 2D matrix rows = π values, cols = x.
func table(p [][]float64) *marginal.Table {
	rows, cols := len(p), len(p[0])
	flat := make([]float64, 0, rows*cols)
	for _, r := range p {
		flat = append(flat, r...)
	}
	return &marginal.Table{
		Vars: []marginal.Var{{Attr: 1}, {Attr: 0}},
		Dims: []int{rows, cols},
		P:    flat,
	}
}

func TestMutualInformationIndependent(t *testing.T) {
	joint := table([][]float64{{0.25, 0.25}, {0.25, 0.25}})
	if got := MutualInformationSplit(joint); got != 0 {
		t.Errorf("MI of independent uniform = %v, want 0", got)
	}
}

func TestMutualInformationPerfectlyCorrelated(t *testing.T) {
	joint := table([][]float64{{0.5, 0}, {0, 0.5}})
	if got := MutualInformationSplit(joint); math.Abs(got-1) > 1e-12 {
		t.Errorf("MI of identity coupling = %v, want 1", got)
	}
}

// Example 4.4 of the paper: both distributions are maximum joint
// distributions with I(X, Π) = 1 for binary X and |dom(Π)| = 3.
func TestMutualInformationPaperExample44(t *testing.T) {
	// Layout [Π, X]: rows are π ∈ {a,b,c}, columns x ∈ {0,1}.
	first := table([][]float64{{0.5, 0}, {0, 0.5}, {0, 0}})
	second := table([][]float64{{0, 0.5}, {0.2, 0}, {0.3, 0}})
	for i, j := range []*marginal.Table{first, second} {
		if got := MutualInformationSplit(j); math.Abs(got-1) > 1e-12 {
			t.Errorf("example 4.4 distribution %d: I = %v, want 1", i+1, got)
		}
	}
}

func TestMutualInformationNoParents(t *testing.T) {
	joint := &marginal.Table{Vars: []marginal.Var{{Attr: 0}}, Dims: []int{2}, P: []float64{0.3, 0.7}}
	if MutualInformationSplit(joint) != 0 {
		t.Error("MI with empty parent set must be 0")
	}
}

// I(X, Π) = H(X) + H(Π) − H(X, Π) (Equation 12 of the appendix).
func TestMutualInformationEntropyIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		rows, cols := 2+rng.Intn(3), 2+rng.Intn(3)
		p := make([][]float64, rows)
		var sum float64
		for i := range p {
			p[i] = make([]float64, cols)
			for j := range p[i] {
				p[i][j] = rng.Float64()
				sum += p[i][j]
			}
		}
		flatX := make([]float64, cols)
		flatPi := make([]float64, rows)
		var flat []float64
		for i := range p {
			for j := range p[i] {
				p[i][j] /= sum
				flatX[j] += p[i][j]
				flatPi[i] += p[i][j]
				flat = append(flat, p[i][j])
			}
		}
		joint := table(p)
		want := Entropy(flatX) + Entropy(flatPi) - Entropy(flat)
		got := MutualInformationSplit(joint)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: MI = %v, entropy identity gives %v", trial, got, want)
		}
	}
}

func TestKLDivergence(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.25, 0.75}
	want := 0.5*math.Log2(2) + 0.5*math.Log2(0.5/0.75)
	if got := KLDivergence(p, q); math.Abs(got-want) > 1e-12 {
		t.Errorf("KL = %v, want %v", got, want)
	}
	if KLDivergence(p, p) != 0 {
		t.Error("KL(p||p) must be 0")
	}
	if !math.IsInf(KLDivergence([]float64{1, 0}, []float64{0, 1}), 1) {
		t.Error("KL with disjoint support must be +Inf")
	}
}

func TestIndependentProductPreservesMarginals(t *testing.T) {
	joint := table([][]float64{{0.4, 0.1}, {0.2, 0.3}})
	ind := IndependentProduct(joint)
	// Same X marginal.
	if math.Abs((ind.P[0]+ind.P[2])-(0.4+0.2)) > 1e-12 {
		t.Error("X marginal changed")
	}
	// Same Π marginal.
	if math.Abs((ind.P[0]+ind.P[1])-0.5) > 1e-12 {
		t.Error("Π marginal changed")
	}
	// Product has zero MI.
	if got := MutualInformationSplit(ind); got > 1e-12 {
		t.Errorf("independent product has MI %v", got)
	}
	if math.Abs(ind.P[0]-0.6*0.5) > 1e-12 {
		t.Errorf("cell (0,0) = %v, want 0.30", ind.P[0])
	}
}
