// Package infotheory provides the entropy, mutual information and
// KL-divergence primitives used by PrivBayes' network quality measures.
// All logarithms are base 2, matching the paper.
package infotheory

import (
	"math"

	"privbayes/internal/marginal"
)

// Entropy returns H(P) = -Σ p log2 p for a probability vector. Zero
// cells contribute nothing (lim p→0 of p log p).
func Entropy(p []float64) float64 {
	var h float64
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log2(v)
		}
	}
	return h
}

// MutualInformationSplit computes I(X, Π) from a joint table laid out as
// [Π..., X]: the last variable is X and all earlier variables jointly
// form Π (Equation 5). With no parents the mutual information is zero.
func MutualInformationSplit(joint *marginal.Table) float64 {
	k := len(joint.Vars)
	if k <= 1 {
		return 0
	}
	xDim := joint.Dims[k-1]
	piDim := len(joint.P) / xDim
	px := make([]float64, xDim)
	ppi := make([]float64, piDim)
	for i, p := range joint.P {
		px[i%xDim] += p
		ppi[i/xDim] += p
	}
	var mi float64
	for i, p := range joint.P {
		if p <= 0 {
			continue
		}
		den := px[i%xDim] * ppi[i/xDim]
		if den > 0 {
			mi += p * math.Log2(p/den)
		}
	}
	if mi < 0 {
		mi = 0 // guard tiny negative rounding
	}
	return mi
}

// KLDivergence returns D_KL(P || Q) in bits over two equal-length
// probability vectors. Cells where p > 0 and q == 0 yield +Inf.
func KLDivergence(p, q []float64) float64 {
	var d float64
	for i := range p {
		if p[i] <= 0 {
			continue
		}
		if q[i] <= 0 {
			return math.Inf(1)
		}
		d += p[i] * math.Log2(p[i]/q[i])
	}
	if d < 0 {
		d = 0
	}
	return d
}

// IndependentProduct returns the product distribution Pr[X]·Pr[Π] with
// the same [Π..., X] layout as the joint — the distribution Pr̄ that
// minimizes mutual information (Lemma 5.2), used by the R score.
func IndependentProduct(joint *marginal.Table) *marginal.Table {
	k := len(joint.Vars)
	out := joint.Clone()
	if k <= 1 {
		return out
	}
	xDim := joint.Dims[k-1]
	piDim := len(joint.P) / xDim
	px := make([]float64, xDim)
	ppi := make([]float64, piDim)
	for i, p := range joint.P {
		px[i%xDim] += p
		ppi[i/xDim] += p
	}
	for i := range out.P {
		out.P[i] = px[i%xDim] * ppi[i/xDim]
	}
	return out
}
