package quality

import (
	"math/rand"

	"privbayes/internal/core"
	"privbayes/internal/dataset"
	"privbayes/internal/experiment"
	"privbayes/internal/workload"
)

// MarginalTVD returns the mean total-variation distance over the full
// α-way marginal query set Qα between the real and synthetic datasets —
// the paper's "average variation distance" on synthetic data. The full
// query set is evaluated (no sampling), so the result is deterministic.
// parallelism bounds ground-truth materialization only; it never
// changes the value.
func MarginalTVD(real, synth *dataset.Dataset, alpha, parallelism int) float64 {
	return workload.NewEvaluator(real, alpha, 0, parallelism, nil).AVDDataset(synth)
}

// SVMError trains the paper's hinge-loss C-SVM (C = 1) for the task on
// trainData and returns its misclassification rate on the holdout,
// through the same harness the figure reproductions use
// (experiment.TrainAndScore). Seeded: a fixed seed gives a fixed rate.
func SVMError(trainData, test *dataset.Dataset, task workload.Task, seed int64) (float64, error) {
	return experiment.TrainAndScore(trainData, test, task, rand.New(rand.NewSource(seed)))
}

// Recovery is the structure-recovery score of a learned network against
// the known ground truth, over undirected edges (a Bayesian network's
// structure is identifiable only up to edge orientation, so skeleton
// recovery is the standard comparison).
type Recovery struct {
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	// TruthEdges and LearnedEdges count the undirected edge sets.
	TruthEdges   int `json:"truth_edges"`
	LearnedEdges int `json:"learned_edges"`
}

// edgeKey normalizes an undirected edge between attribute indices.
func edgeKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// StructureRecovery scores the learned network's undirected edge set
// against the ground truth's directed edges (orientation discarded).
// Precision and recall are defined as 1 when their denominator is
// empty; F1 is 0 when both are 0.
func StructureRecovery(truth [][2]int, net *core.Network) Recovery {
	truthSet := make(map[[2]int]bool, len(truth))
	for _, e := range truth {
		truthSet[edgeKey(e[0], e[1])] = true
	}
	learnedSet := make(map[[2]int]bool)
	for _, p := range net.Pairs {
		for _, par := range p.Parents {
			learnedSet[edgeKey(p.X.Attr, par.Attr)] = true
		}
	}
	tp := 0
	for e := range learnedSet {
		if truthSet[e] {
			tp++
		}
	}
	r := Recovery{TruthEdges: len(truthSet), LearnedEdges: len(learnedSet), Precision: 1, Recall: 1}
	if len(learnedSet) > 0 {
		r.Precision = float64(tp) / float64(len(learnedSet))
	}
	if len(truthSet) > 0 {
		r.Recall = float64(tp) / float64(len(truthSet))
	}
	if r.Precision+r.Recall > 0 {
		r.F1 = 2 * r.Precision * r.Recall / (r.Precision + r.Recall)
	}
	return r
}
