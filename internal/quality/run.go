package quality

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"

	"privbayes"
	"privbayes/internal/dataset"
	"privbayes/internal/marginal"
	"privbayes/internal/workload"
)

// alphas is the marginal-query workload of the gate: all 2-way and
// 3-way marginals, the paper's Qα at α ∈ {2, 3}. Fixed — the pair maps
// one-to-one onto Result.TVD2/TVD3 and the calibrated thresholds.
var alphas = [2]int{2, 3}

// DefaultEps is the gate's privacy-budget sweep.
var DefaultEps = []float64{0.1, 1.0, 10}

// Options configures a quality sweep. The zero value is not usable;
// start from DefaultOptions.
type Options struct {
	// Scenarios to evaluate, in report order.
	Scenarios []Scenario
	// Eps is the privacy-budget sweep.
	Eps []float64
	// TrainRows / TestRows / SynthRows size the source sample, the SVM
	// holdout and the synthetic release.
	TrainRows, TestRows, SynthRows int
	// Parallelism is pinned to 2 by DefaultOptions: any value other
	// than 1 is bit-identical on every machine (the repo's determinism
	// contract), and 2 never silently degrades to the distinct serial
	// stream on single-core runners.
	Parallelism int
	// Thresholds gates results per scenario name; nil disables gating.
	Thresholds map[string][]Limits
	// SampleTVD computes the TVD metrics from the empirical marginals of
	// the synthetic sample instead of the exact model marginals (the
	// pre-query-engine behavior). The default (false) answers every
	// workload marginal by exact inference (Model.Query), so the metric
	// measures model fidelity alone, with no sampling error mixed in.
	SampleTVD bool
	// BreakSampler deliberately sabotages the release: the synthetic
	// sample is resampled independently and uniformly per attribute, and
	// the model's conditional tables are flattened to uniform (so the
	// exact-inference TVD path is sabotaged too, not just the sample
	// path). It exists to prove the gate trips: a run with BreakSampler
	// must fail its thresholds.
	BreakSampler bool
}

// DefaultOptions is the calibrated CI configuration. scale >= 1
// multiplies the row counts (the nightly sweep runs larger n); scale
// <= 1 keeps the defaults.
func DefaultOptions(scale int) Options {
	if scale < 1 {
		scale = 1
	}
	return Options{
		Scenarios:   DefaultScenarios(),
		Eps:         DefaultEps,
		TrainRows:   4000 * scale,
		TestRows:    2000 * scale,
		SynthRows:   4000 * scale,
		Parallelism: 2,
		Thresholds:  DefaultThresholds(),
	}
}

// Result is one (scenario, ε) evaluation.
type Result struct {
	Scenario string  `json:"scenario"`
	Epsilon  float64 `json:"epsilon"`
	// TVD2/TVD3 are the mean total-variation distances over all 2-way
	// and 3-way marginals between source and synthetic data.
	TVD2 float64 `json:"tvd_2way"`
	TVD3 float64 `json:"tvd_3way"`
	// SVMError is the misclassification rate of an SVM trained on the
	// synthetic release and tested on a real holdout; SVMRealError is
	// the same SVM trained on the real data — the no-privacy baseline
	// the paper compares against.
	SVMError     float64 `json:"svm_error"`
	SVMRealError float64 `json:"svm_error_real"`
	// Structure scores learned-network edge recovery against the known
	// ground truth.
	Structure Recovery `json:"structure"`
	// Gated reports whether any calibrated Limits row matched this
	// cell's ε — false means the cell passed by omission, not by
	// meeting a threshold. cmd/quality refuses a -check run in which
	// no cell at all was gated.
	Gated bool `json:"gated"`
	// Failures lists threshold violations; empty means the gate passed
	// (or no thresholds were configured for the scenario).
	Failures []string `json:"failures,omitempty"`
}

// Report is the emitted BENCH_quality.json document. It contains no
// timestamps or environment data: for a fixed Options it is
// byte-identical across runs and machines.
type Report struct {
	Schema    string `json:"schema"`
	TrainRows int    `json:"train_rows"`
	TestRows  int    `json:"test_rows"`
	SynthRows int    `json:"synth_rows"`
	// TVDSource records how the TVD metrics were computed: "exact"
	// (model marginals by variable elimination, the default) or
	// "sampled" (empirical marginals of the synthetic sample).
	TVDSource string    `json:"tvd_source"`
	Eps       []float64 `json:"eps"`
	Results   []Result  `json:"results"`
	Pass      bool      `json:"pass"`
}

// seedFor derives a stable per-use seed from labels, so every stage of
// every (scenario, ε) cell draws from its own fixed stream.
func seedFor(labels ...any) int64 {
	h := fnv.New64a()
	for _, l := range labels {
		fmt.Fprintf(h, "%v|", l)
	}
	return int64(h.Sum64())
}

// Run executes the sweep and applies thresholds. It returns an error
// only for infrastructure failures (a fit that errors, a missing task
// attribute); quality regressions are reported via Result.Failures and
// Report.Pass, which the caller (cmd/quality) turns into an exit code.
func Run(ctx context.Context, opt Options) (*Report, error) {
	rep := &Report{
		Schema:    "privbayes-quality/v2",
		TrainRows: opt.TrainRows,
		TestRows:  opt.TestRows,
		SynthRows: opt.SynthRows,
		TVDSource: "exact",
		Eps:       opt.Eps,
		Pass:      true,
	}
	if opt.SampleTVD {
		rep.TVDSource = "sampled"
	}
	for si := range opt.Scenarios {
		sc := &opt.Scenarios[si]
		train, test := sc.Generate(opt.TrainRows, opt.TestRows)
		// Ground-truth marginals depend only on the training sample:
		// build each α's evaluator once and reuse it across the sweep.
		var evals [2]*workload.Evaluator
		for i, alpha := range alphas {
			evals[i] = workload.NewEvaluator(train, alpha, 0, opt.Parallelism, nil)
		}
		// The no-privacy SVM baseline depends only on the scenario's
		// data, not on ε: train it once per scenario so the reported
		// baseline is a single stable number across the sweep.
		realErr, err := SVMError(train, test, sc.Task, seedFor(sc.Name, "svm-real"))
		if err != nil {
			return nil, fmt.Errorf("quality: %s: svm on real: %w", sc.Name, err)
		}
		for _, eps := range opt.Eps {
			res, err := runCell(ctx, sc, train, test, evals, eps, opt)
			if err != nil {
				return nil, fmt.Errorf("quality: %s ε=%g: %w", sc.Name, eps, err)
			}
			res.SVMRealError = realErr
			ls := limitSet(opt.Thresholds[sc.Name])
			res.Gated = ls.covers(eps)
			res.Failures = ls.check(res)
			if len(res.Failures) > 0 {
				rep.Pass = false
			}
			rep.Results = append(rep.Results, res)
		}
	}
	return rep, nil
}

// runCell evaluates one (scenario, ε) cell: fit, synthesize, score.
func runCell(ctx context.Context, sc *Scenario, train, test *dataset.Dataset, evals [2]*workload.Evaluator, eps float64, opt Options) (Result, error) {
	res := Result{Scenario: sc.Name, Epsilon: eps}

	model, err := privbayes.Fit(ctx, train,
		privbayes.WithEpsilon(eps),
		privbayes.WithSeed(seedFor(sc.Name, eps, "fit")),
		privbayes.WithParallelism(opt.Parallelism),
	)
	if err != nil {
		return res, fmt.Errorf("fit: %w", err)
	}
	res.Structure = StructureRecovery(sc.Truth.Edges(), &model.Network)

	synthRng := rand.New(rand.NewSource(seedFor(sc.Name, eps, "synth")))
	synth, err := model.SampleContext(ctx, opt.SynthRows, synthRng, opt.Parallelism)
	if err != nil {
		return res, fmt.Errorf("synthesize: %w", err)
	}
	if opt.BreakSampler {
		synth = uniformResample(synth, seedFor(sc.Name, eps, "sabotage"))
	}

	if opt.SampleTVD {
		res.TVD2 = evals[0].AVDDataset(synth)
		res.TVD3 = evals[1].AVDDataset(synth)
	} else {
		// Exact path: every workload marginal is answered by variable
		// elimination on the released model — no sampling error. Under
		// BreakSampler the queried model is flattened to uniform
		// conditionals, so the sabotaged release fails this path exactly
		// as the resampled dataset fails the sampled one.
		queried := model
		if opt.BreakSampler {
			queried = uniformizeModel(model)
		}
		answer := func(attrs []int) (*marginal.Table, error) {
			names := make([]string, len(attrs))
			for j, a := range attrs {
				names[j] = queried.Attrs[a].Name
			}
			qres, err := queried.Query(ctx, privbayes.Marginal(names...),
				privbayes.QueryParallelism(opt.Parallelism))
			if err != nil {
				return nil, err
			}
			return qres.Table(), nil
		}
		if res.TVD2, err = evals[0].AVDExact(answer); err != nil {
			return res, fmt.Errorf("exact 2-way TVD: %w", err)
		}
		if res.TVD3, err = evals[1].AVDExact(answer); err != nil {
			return res, fmt.Errorf("exact 3-way TVD: %w", err)
		}
	}

	res.SVMError, err = SVMError(synth, test, sc.Task, seedFor(sc.Name, eps, "svm"))
	if err != nil {
		return res, fmt.Errorf("svm on synthetic: %w", err)
	}
	return res, nil
}

// uniformizeModel returns a copy of the model with every conditional
// table flattened to the uniform distribution — the exact-inference
// counterpart of uniformResample: the broken release preserves neither
// correlations nor marginal shapes, so the exact TVD path must trip the
// gate on it just as the sampled path trips on the resampled dataset.
func uniformizeModel(m *privbayes.Model) *privbayes.Model {
	conds := make([]*marginal.Conditional, len(m.Conds))
	for i, c := range m.Conds {
		cc := *c
		cc.P = make([]float64, len(c.P))
		u := 1 / float64(c.XDim)
		for j := range cc.P {
			cc.P[j] = u
		}
		conds[i] = &cc
	}
	mm := *m
	mm.Conds = conds
	return &mm
}

// uniformResample is the deliberately broken sampler: every attribute
// is drawn independently and uniformly over its domain, so the result
// preserves neither correlations nor one-way marginal shapes. Used only
// under Options.BreakSampler to demonstrate the gate trips.
func uniformResample(ds *dataset.Dataset, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	attrs := ds.Attrs()
	out := dataset.NewWithCapacity(attrs, ds.N())
	rec := make([]uint16, len(attrs))
	for r := 0; r < ds.N(); r++ {
		for a := range attrs {
			rec[a] = uint16(rng.Intn(attrs[a].Size()))
		}
		out.Append(rec)
	}
	return out
}
