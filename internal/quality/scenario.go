// Package quality is the statistical quality and regression subsystem:
// it measures how faithful PrivBayes' synthetic data is to its source —
// the paper's actual headline claims — and gates CI on it.
//
// The paper (conf_sigmod_ZhangCPSX14, Section 6) evaluates two
// workloads: all α-way marginal queries scored by average total
// variation distance, and SVM classification scored by
// misclassification rate on a holdout. This package adds a third metric
// real data cannot provide: because every evaluation scenario is
// sampled from a seeded ground-truth Bayesian network with *known*
// structure, the learned network's edges can be scored for
// precision/recall against the truth.
//
// Everything is seeded and runs at a pinned parallelism, so a full
// sweep (cmd/quality, `make quality`) is bit-deterministic: repeated
// runs emit identical BENCH_quality.json documents, and CI compares a
// run against calibrated per-scenario thresholds to catch silent
// fidelity regressions from future performance work.
package quality

import (
	"math/rand"

	"privbayes/internal/data"
	"privbayes/internal/dataset"
	"privbayes/internal/workload"
)

// Scenario is one ground-truth evaluation setting: a seeded generative
// Bayesian network with known structure, plus the classification task
// the SVM metric trains on.
type Scenario struct {
	// Name identifies the scenario in reports and thresholds.
	Name string
	// Truth is the generative network; its structure is the reference
	// for edge recovery and its samples are the "sensitive" source.
	Truth *data.GroundTruth
	// Task is the binary classification task for the SVM metric.
	Task workload.Task
	// SampleSeed seeds source-data sampling (train and holdout draw
	// from one stream, so they are disjoint).
	SampleSeed int64
}

// Generate draws train and holdout datasets from the ground truth.
// Both come from a single seeded stream, so for fixed sizes the draw is
// deterministic and the holdout is independent of the training rows.
func (s *Scenario) Generate(trainRows, testRows int) (train, test *dataset.Dataset) {
	rng := rand.New(rand.NewSource(s.SampleSeed))
	return s.Truth.Sample(trainRows, rng), s.Truth.Sample(testRows, rng)
}

// RandomScenario builds a scenario around a fresh random ground-truth
// network: d attributes whose arities cycle through the given list,
// degree-`degree` structure, Dirichlet(alpha) conditionals. The first
// binary attribute is the classification target; when the cycled
// arities yield none, the last attribute is made binary so a target
// always exists. Everything derives from seed.
func RandomScenario(name string, d int, arities []int, degree int, alpha float64, seed int64) Scenario {
	if len(arities) == 0 {
		arities = []int{2}
	}
	attrs := make([]dataset.Attribute, d)
	target := -1
	mk := func(i, size int) {
		labels := make([]string, size)
		for v := range labels {
			labels[v] = string(rune('a' + v))
		}
		attrs[i] = dataset.NewCategorical(attrName("x", i), labels)
		if size == 2 && target < 0 {
			target = i
		}
	}
	for i := 0; i < d; i++ {
		mk(i, arities[i%len(arities)])
	}
	if target < 0 {
		// No binary arity landed in the first d cycled positions; the
		// classification task needs one, so the last attribute becomes
		// binary.
		mk(d-1, 2)
	}
	rng := rand.New(rand.NewSource(seed))
	return Scenario{
		Name:  name,
		Truth: data.NewGroundTruth(attrs, degree, alpha, rng),
		Task: workload.Task{
			Dataset:  name,
			Name:     attrs[target].Name,
			Attr:     attrs[target].Name,
			Positive: func(c int) bool { return c == 1 },
		},
		SampleSeed: seed + 1,
	}
}

func attrName(prefix string, i int) string {
	return prefix + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// AdultLikeScenario is a small mixed-type scenario in the shape of the
// UCI Adult extract: continuous attributes discretized into equi-width
// bins (carrying their automatic binary taxonomies) alongside
// categorical ones, with a binary "salary" classification target — the
// paper's Adult/"salary" task in miniature.
func AdultLikeScenario() Scenario {
	attrs := []dataset.Attribute{
		dataset.NewContinuous("age", 17, 90, 8),
		dataset.NewCategorical("workclass", []string{"private", "government", "self", "none"}),
		dataset.NewCategorical("education", []string{"dropout", "hs", "college", "degree", "advanced"}),
		dataset.NewCategorical("marital", []string{"never", "married", "divorced", "widowed"}),
		dataset.NewContinuous("hours", 0, 100, 8),
		dataset.NewCategorical("sex", []string{"female", "male"}),
		dataset.NewCategorical("salary", []string{"<=50K", ">50K"}),
	}
	rng := rand.New(rand.NewSource(2101))
	return Scenario{
		Name:  "adult-like",
		Truth: data.NewGroundTruth(attrs, 2, 0.25, rng),
		Task: workload.Task{
			Dataset:  "adult-like",
			Name:     "salary",
			Attr:     "salary",
			Positive: func(c int) bool { return c == 1 },
		},
		SampleSeed: 2102,
	}
}

// NLTCSLikeScenario is an all-binary scenario in the shape of the NLTCS
// disability survey: 10 binary indicators with degree-2 ground truth,
// exercising the SIGMOD'14 binary pipeline (ModeBinary, score F). The
// "outside" indicator is the classification target, as in Section 6.1.
func NLTCSLikeScenario() Scenario {
	names := []string{
		"outside", "money", "bathing", "traveling", "dressing",
		"eating", "grooming", "inside", "cooking", "shopping",
	}
	attrs := make([]dataset.Attribute, len(names))
	for i, n := range names {
		attrs[i] = dataset.NewCategorical(n, []string{"able", "unable"})
	}
	rng := rand.New(rand.NewSource(2201))
	return Scenario{
		Name:  "nltcs-like",
		Truth: data.NewGroundTruth(attrs, 2, 0.3, rng),
		Task: workload.Task{
			Dataset:  "nltcs-like",
			Name:     "outside",
			Attr:     "outside",
			Positive: func(c int) bool { return c == 1 },
		},
		SampleSeed: 2202,
	}
}

// DefaultScenarios is the gate's scenario corpus: a random mixed-arity
// network, the Adult-like mixed-type scenario, and the NLTCS-like
// binary scenario. Order is the report order.
func DefaultScenarios() []Scenario {
	return []Scenario{
		RandomScenario("random-mixed", 9, []int{2, 3, 4}, 2, 0.3, 2001),
		AdultLikeScenario(),
		NLTCSLikeScenario(),
	}
}
