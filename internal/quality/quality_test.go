package quality

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"privbayes/internal/core"
	"privbayes/internal/dataset"
	"privbayes/internal/marginal"
)

// smallOptions is a fast sweep for tests: one scenario, two budgets,
// few rows.
func smallOptions() Options {
	return Options{
		Scenarios:   []Scenario{RandomScenario("t-rand", 6, []int{2, 3}, 2, 0.3, 99)},
		Eps:         []float64{0.5, 5},
		TrainRows:   600,
		TestRows:    300,
		SynthRows:   600,
		Parallelism: 2,
	}
}

// TestRunDeterministic is the gate's own contract: two runs of the same
// options must serialize to byte-identical reports.
func TestRunDeterministic(t *testing.T) {
	var docs [][]byte
	for i := 0; i < 2; i++ {
		rep, err := Run(context.Background(), smallOptions())
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, b)
	}
	if !bytes.Equal(docs[0], docs[1]) {
		t.Fatalf("reports differ across identical runs:\n%s\n%s", docs[0], docs[1])
	}
}

// TestRunParallelismInvariant: the determinism contract says any
// parallelism other than 1 is bit-identical, so the quality report must
// not depend on the worker bound.
func TestRunParallelismInvariant(t *testing.T) {
	opt2 := smallOptions()
	opt4 := smallOptions()
	opt4.Parallelism = 4
	r2, err := Run(context.Background(), opt2)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(context.Background(), opt4)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := json.Marshal(r2.Results)
	b4, _ := json.Marshal(r4.Results)
	if !bytes.Equal(b2, b4) {
		t.Fatalf("results differ between parallelism 2 and 4:\n%s\n%s", b2, b4)
	}
}

// TestGateTripsOnBrokenSampler: a deliberately broken sampler must fail
// the calibrated thresholds — the acceptance test of the CI gate.
func TestGateTripsOnBrokenSampler(t *testing.T) {
	opt := smallOptions()
	opt.BreakSampler = true
	opt.Thresholds = map[string][]Limits{
		// Limits far looser than the healthy sampler achieves, so only
		// genuine breakage trips them.
		"t-rand": {
			{Eps: 0.5, MaxTVD2: 0.25},
			{Eps: 5, MaxTVD2: 0.25},
		},
	}
	rep, err := Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("broken sampler passed the gate")
	}
	for _, r := range rep.Results {
		if len(r.Failures) == 0 {
			t.Errorf("%s ε=%g: broken sampler produced no failures", r.Scenario, r.Epsilon)
		}
	}

	// The identical options with an intact sampler must pass.
	opt.BreakSampler = false
	rep, err = Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		b, _ := json.MarshalIndent(rep.Results, "", " ")
		t.Fatalf("healthy sampler failed the gate:\n%s", b)
	}
}

// TestTVDSourcePaths: the default sweep answers TVD by exact inference
// and records it; -sample-tvd restores the empirical path, which also
// gates (and also trips under sabotage). The exact metric never exceeds
// the sampled one by more than the sampling error it removes.
func TestTVDSourcePaths(t *testing.T) {
	exact, err := Run(context.Background(), smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if exact.TVDSource != "exact" {
		t.Fatalf("default TVD source = %q, want exact", exact.TVDSource)
	}
	optS := smallOptions()
	optS.SampleTVD = true
	sampled, err := Run(context.Background(), optS)
	if err != nil {
		t.Fatal(err)
	}
	if sampled.TVDSource != "sampled" {
		t.Fatalf("sampled TVD source = %q, want sampled", sampled.TVDSource)
	}
	for i := range exact.Results {
		e, s := exact.Results[i], sampled.Results[i]
		// Same fits, same models: the two paths measure the same release,
		// so they must be close; exact removes only the sampling error.
		if diff := e.TVD2 - s.TVD2; diff > 0.1 || diff < -0.1 {
			t.Errorf("%s ε=%g: exact TVD2 %.4f vs sampled %.4f", e.Scenario, e.Epsilon, e.TVD2, s.TVD2)
		}
		// SVM and structure are unaffected by the TVD source.
		if e.SVMError != s.SVMError || e.Structure != s.Structure {
			t.Errorf("%s ε=%g: non-TVD metrics changed with the TVD source", e.Scenario, e.Epsilon)
		}
	}

	// The sampled path's sabotage self-test must trip as well.
	optS.BreakSampler = true
	optS.Thresholds = map[string][]Limits{
		"t-rand": {{Eps: 0.5, MaxTVD2: 0.25}, {Eps: 5, MaxTVD2: 0.25}},
	}
	rep, err := Run(context.Background(), optS)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("sampled-path sabotage passed the gate")
	}
}

// TestDefaultThresholdsCoverSweep: every default scenario carries a
// limit row for every swept ε — a typo'd scenario name or ε would
// silently disable the gate.
func TestDefaultThresholdsCoverSweep(t *testing.T) {
	th := DefaultThresholds()
	for _, sc := range DefaultScenarios() {
		rows, ok := th[sc.Name]
		if !ok {
			t.Errorf("scenario %q has no thresholds", sc.Name)
			continue
		}
		for _, eps := range DefaultEps {
			found := false
			for _, l := range rows {
				if l.Eps == eps {
					found = true
				}
			}
			if !found {
				t.Errorf("scenario %q has no limits at ε=%g", sc.Name, eps)
			}
		}
	}
}

// TestMarginalTVDIdentity: a dataset against itself has zero distance,
// and the broken sampler's output has a large one.
func TestMarginalTVDIdentity(t *testing.T) {
	sc := NLTCSLikeScenario()
	train, _ := sc.Generate(500, 1)
	if tvd := MarginalTVD(train, train, 2, 2); tvd != 0 {
		t.Fatalf("TVD(ds, ds) = %g, want 0", tvd)
	}
	broken := uniformResample(train, 7)
	if tvd := MarginalTVD(train, broken, 2, 2); tvd < 0.1 {
		t.Fatalf("TVD against uniform resample = %g, want substantial", tvd)
	}
}

// TestScenarioGenerateDeterministic: same sizes, same bytes; train and
// holdout must differ (disjoint stream positions).
func TestScenarioGenerateDeterministic(t *testing.T) {
	sc := AdultLikeScenario()
	tr1, te1 := sc.Generate(200, 100)
	tr2, te2 := sc.Generate(200, 100)
	if !sameData(tr1, tr2) || !sameData(te1, te2) {
		t.Fatal("repeated Generate differs")
	}
	if tr1.N() != 200 || te1.N() != 100 {
		t.Fatalf("sizes %d/%d, want 200/100", tr1.N(), te1.N())
	}
}

func TestStructureRecovery(t *testing.T) {
	net := func(edges ...[2]int) *core.Network {
		// Build a network whose pair list carries exactly these
		// (parent -> child) edges.
		children := map[int][]marginal.Var{}
		order := []int{}
		seen := map[int]bool{}
		add := func(a int) {
			if !seen[a] {
				seen[a] = true
				order = append(order, a)
			}
		}
		for _, e := range edges {
			add(e[0])
			add(e[1])
			children[e[1]] = append(children[e[1]], marginal.Var{Attr: e[0]})
		}
		n := &core.Network{}
		for _, a := range order {
			n.Pairs = append(n.Pairs, core.APPair{X: marginal.Var{Attr: a}, Parents: children[a]})
		}
		return n
	}
	cases := []struct {
		name          string
		truth         [][2]int
		learned       *core.Network
		prec, rec, f1 float64
	}{
		{"exact", [][2]int{{0, 1}, {1, 2}}, net([2]int{0, 1}, [2]int{1, 2}), 1, 1, 1},
		{"reversed edges count", [][2]int{{0, 1}}, net([2]int{1, 0}), 1, 1, 1},
		{"half recalled", [][2]int{{0, 1}, {1, 2}}, net([2]int{0, 1}), 1, 0.5, 2.0 / 3},
		{"spurious edge", [][2]int{{0, 1}}, net([2]int{0, 1}, [2]int{0, 2}), 0.5, 1, 2.0 / 3},
		{"empty truth", nil, net([2]int{0, 1}), 0, 1, 0},
	}
	for _, tc := range cases {
		r := StructureRecovery(tc.truth, tc.learned)
		if r.Precision != tc.prec || r.Recall != tc.rec || !approxEq(r.F1, tc.f1) {
			t.Errorf("%s: got p=%g r=%g f1=%g, want p=%g r=%g f1=%g",
				tc.name, r.Precision, r.Recall, r.F1, tc.prec, tc.rec, tc.f1)
		}
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}

// sameData compares two datasets cell by cell.
func sameData(a, b *dataset.Dataset) bool {
	if a.N() != b.N() || a.D() != b.D() {
		return false
	}
	for r := 0; r < a.N(); r++ {
		for c := 0; c < a.D(); c++ {
			if a.Value(r, c) != b.Value(r, c) {
				return false
			}
		}
	}
	return true
}

// TestLimitsCheck exercises every gated metric plus the unenforced-zero
// convention.
func TestLimitsCheck(t *testing.T) {
	ls := limitSet{{Eps: 1, MaxTVD2: 0.1, MaxTVD3: 0.2, MaxSVMError: 0.3, MinEdgeF1: 0.5}}
	bad := Result{Epsilon: 1, TVD2: 0.2, TVD3: 0.3, SVMError: 0.4, Structure: Recovery{F1: 0.1}}
	if got := ls.check(bad); len(got) != 4 {
		t.Fatalf("want 4 violations, got %v", got)
	}
	good := Result{Epsilon: 1, TVD2: 0.05, TVD3: 0.1, SVMError: 0.2, Structure: Recovery{F1: 0.9}}
	if got := ls.check(good); len(got) != 0 {
		t.Fatalf("want clean, got %v", got)
	}
	otherEps := Result{Epsilon: 2, TVD2: 0.9}
	if got := ls.check(otherEps); len(got) != 0 {
		t.Fatalf("unconfigured ε must pass, got %v", got)
	}
	unenforced := limitSet{{Eps: 1}}
	if got := unenforced.check(bad); len(got) != 0 {
		t.Fatalf("zero limits must not gate, got %v", got)
	}
	if !ls.covers(1) || ls.covers(2) || limitSet(nil).covers(1) {
		t.Fatal("covers must report exactly the configured ε rows")
	}
}

// TestRandomScenarioGuaranteesBinaryTarget: arities without 2 still
// produce a binary classification target — including when d is too
// small for the cycled arities to ever reach one (regression: this
// used to panic with index out of range [-1]).
func TestRandomScenarioGuaranteesBinaryTarget(t *testing.T) {
	cases := []struct {
		d       int
		arities []int
	}{
		{5, []int{3, 4}},
		{3, []int{3, 4, 5}}, // d <= len(arities), no 2 anywhere
		{1, []int{7}},
		{4, nil},
	}
	for _, tc := range cases {
		sc := RandomScenario("odd", tc.d, tc.arities, 2, 0.3, 5)
		idx := -1
		attrs := sc.Truth.Attrs()
		for i := range attrs {
			if attrs[i].Name == sc.Task.Attr {
				idx = i
			}
		}
		if idx < 0 {
			t.Fatalf("d=%d arities=%v: task attribute %q not in schema", tc.d, tc.arities, sc.Task.Attr)
		}
		if attrs[idx].Size() != 2 {
			t.Fatalf("d=%d arities=%v: target arity %d, want 2", tc.d, tc.arities, attrs[idx].Size())
		}
	}
}
