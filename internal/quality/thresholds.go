package quality

import "fmt"

// Limits is one calibrated gate row: the quality floor a scenario must
// meet at one ε. Zero-valued fields are not enforced, so scenarios can
// gate only the metrics that are stable at that budget (e.g. structure
// recovery is noise at ε = 0.1 and is only gated at larger budgets).
type Limits struct {
	Eps float64
	// MaxTVD2/MaxTVD3 cap the mean 2-way/3-way marginal TVD.
	MaxTVD2, MaxTVD3 float64
	// MaxSVMError caps the synthetic-trained misclassification rate.
	MaxSVMError float64
	// MinEdgeF1 floors undirected edge-recovery F1.
	MinEdgeF1 float64
}

// limitSet is the per-scenario gate: one Limits row per swept ε.
type limitSet []Limits

// covers reports whether the set has a limit row for ε — i.e. whether
// a result at that budget is actually gated rather than passing by
// omission.
func (ls limitSet) covers(eps float64) bool {
	for _, l := range ls {
		if l.Eps == eps {
			return true
		}
	}
	return false
}

// check compares a result against the scenario's limits for its ε and
// returns human-readable violations. An ε with no configured row passes
// unconditionally.
func (ls limitSet) check(r Result) []string {
	var fails []string
	for _, l := range ls {
		if l.Eps != r.Epsilon {
			continue
		}
		if l.MaxTVD2 > 0 && r.TVD2 > l.MaxTVD2 {
			fails = append(fails, fmt.Sprintf("2-way TVD %.4f exceeds limit %.4f", r.TVD2, l.MaxTVD2))
		}
		if l.MaxTVD3 > 0 && r.TVD3 > l.MaxTVD3 {
			fails = append(fails, fmt.Sprintf("3-way TVD %.4f exceeds limit %.4f", r.TVD3, l.MaxTVD3))
		}
		if l.MaxSVMError > 0 && r.SVMError > l.MaxSVMError {
			fails = append(fails, fmt.Sprintf("SVM error %.4f exceeds limit %.4f", r.SVMError, l.MaxSVMError))
		}
		if l.MinEdgeF1 > 0 && r.Structure.F1 < l.MinEdgeF1 {
			fails = append(fails, fmt.Sprintf("edge-recovery F1 %.4f below floor %.4f", r.Structure.F1, l.MinEdgeF1))
		}
	}
	return fails
}

// DefaultThresholds is the calibrated CI gate, keyed by scenario name.
//
// Calibration: every value was set from the observed deterministic
// metric of the seeded default sweep (scale 1) with ~40-60% headroom —
// wide enough that a legitimate algorithmic change can be absorbed by
// recalibrating in the same PR, tight enough that a broken release or a
// fidelity-destroying "optimization" trips it immediately (a uniform
// model pushes 2-way TVD above 0.4 on every scenario). The TVD rows are
// calibrated against the exact-inference metric (model marginals via
// Model.Query, the default since the query engine) — strictly tighter
// than the old sampled metric, whose ~1/√n sampling error the exact
// path removes. θ-usefulness keeps low-ε networks thin, so structure
// recovery is only gated where the budget makes it meaningful.
func DefaultThresholds() map[string][]Limits {
	return map[string][]Limits{
		// Observed at scale 1 (exact TVD): ε=0.1 → tvd2 .256, tvd3 .437,
		// svm .480; ε=1 → .051/.080/.010, F1 .59; ε=10 → .016/.025/.010,
		// F1 .55.
		"random-mixed": {
			{Eps: 0.1, MaxTVD2: 0.38, MaxTVD3: 0.60, MaxSVMError: 0.60},
			{Eps: 1.0, MaxTVD2: 0.08, MaxTVD3: 0.12, MaxSVMError: 0.10, MinEdgeF1: 0.35},
			{Eps: 10, MaxTVD2: 0.03, MaxTVD3: 0.04, MaxSVMError: 0.10, MinEdgeF1: 0.35},
		},
		// Observed (exact TVD): ε=0.1 → .327/.505/.264; ε=1 →
		// .072/.122/.058, F1 .60; ε=10 → .027/.045/.061, F1 .69.
		"adult-like": {
			{Eps: 0.1, MaxTVD2: 0.45, MaxTVD3: 0.68, MaxSVMError: 0.45},
			{Eps: 1.0, MaxTVD2: 0.11, MaxTVD3: 0.18, MaxSVMError: 0.15, MinEdgeF1: 0.35},
			{Eps: 10, MaxTVD2: 0.05, MaxTVD3: 0.07, MaxSVMError: 0.15, MinEdgeF1: 0.40},
		},
		// Observed (exact TVD): ε=0.1 → .156/.254/.388; ε=1 →
		// .045/.061/.020, F1 .54; ε=10 → .014/.019/.020, F1 .55.
		"nltcs-like": {
			{Eps: 0.1, MaxTVD2: 0.25, MaxTVD3: 0.38, MaxSVMError: 0.55},
			{Eps: 1.0, MaxTVD2: 0.07, MaxTVD3: 0.10, MaxSVMError: 0.10, MinEdgeF1: 0.30},
			{Eps: 10, MaxTVD2: 0.025, MaxTVD3: 0.03, MaxSVMError: 0.10, MinEdgeF1: 0.30},
		},
	}
}
