package dataset

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func scanTestSchema() []Attribute {
	return []Attribute{
		NewCategorical("color", []string{"red", "green", "blue"}),
		NewContinuous("age", 0, 80, 8),
		NewCategorical("flag", []string{"no", "yes"}),
	}
}

func scanTestDataset(t *testing.T, n int) *Dataset {
	t.Helper()
	attrs := scanTestSchema()
	d := NewWithCapacity(attrs, n)
	rng := rand.New(rand.NewSource(7))
	rec := make([]uint16, len(attrs))
	for i := 0; i < n; i++ {
		for c := range attrs {
			rec[c] = uint16(rng.Intn(attrs[c].Size()))
		}
		d.Append(rec)
	}
	return d
}

// drain collects every chunk of a scanner into one dataset.
func drain(t *testing.T, sc Scanner) *Dataset {
	t.Helper()
	var out *Dataset
	rec := []uint16(nil)
	for {
		chunk, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if out == nil {
			out = New(chunk.Attrs())
		}
		for r := 0; r < chunk.N(); r++ {
			rec = chunk.Record(r, rec)
			out.Append(rec)
		}
	}
	if err := sc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if out == nil {
		out = New(scanTestSchema())
	}
	return out
}

func sameRows(t *testing.T, a, b *Dataset) {
	t.Helper()
	if a.N() != b.N() || a.D() != b.D() {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", a.N(), a.D(), b.N(), b.D())
	}
	for r := 0; r < a.N(); r++ {
		for c := 0; c < a.D(); c++ {
			if a.Value(r, c) != b.Value(r, c) {
				t.Fatalf("row %d col %d: %d vs %d", r, c, a.Value(r, c), b.Value(r, c))
			}
		}
	}
}

func TestScanCSVMatchesReadCSV(t *testing.T) {
	want := scanTestDataset(t, 1000)
	var buf bytes.Buffer
	if err := want.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	doc := buf.Bytes()
	for _, chunk := range []int{1, 7, 256, 1000, 5000} {
		sc, err := ScanCSV(bytes.NewReader(doc), want.Attrs(), chunk)
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		sameRows(t, want, drain(t, sc))
	}
}

func TestScanCSVChunkShapes(t *testing.T) {
	want := scanTestDataset(t, 100)
	var buf bytes.Buffer
	if err := want.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err := ScanCSV(bytes.NewReader(buf.Bytes()), want.Attrs(), 30)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	sizes := []int{}
	for {
		c, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, c.N())
	}
	wantSizes := []int{30, 30, 30, 10}
	if len(sizes) != len(wantSizes) {
		t.Fatalf("chunk sizes %v, want %v", sizes, wantSizes)
	}
	for i := range sizes {
		if sizes[i] != wantSizes[i] {
			t.Fatalf("chunk sizes %v, want %v", sizes, wantSizes)
		}
	}
	// EOF is sticky.
	if _, err := sc.Next(); err != io.EOF {
		t.Fatalf("after EOF: %v", err)
	}
}

func TestScanCSVErrors(t *testing.T) {
	attrs := scanTestSchema()
	if _, err := ScanCSV(strings.NewReader("bogus,header,x\n"), attrs, 10); err == nil {
		t.Fatal("bad header accepted")
	}
	sc, err := ScanCSV(strings.NewReader("color,age,flag\nred,10,yes\nmauve,10,yes\n"), attrs, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if _, err := sc.Next(); err == nil || !strings.Contains(err.Error(), "unknown label") {
		t.Fatalf("want unknown-label error, got %v", err)
	}
	// Errors are sticky.
	if _, err := sc.Next(); err == nil || err == io.EOF {
		t.Fatalf("error not sticky: %v", err)
	}
}

func TestScanJSONLRoundTrip(t *testing.T) {
	want := scanTestDataset(t, 500)
	var buf bytes.Buffer
	jw := NewJSONLWriter(&buf, want.Attrs())
	if err := jw.WriteRows(want, 0, want.N()); err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 64, 500, 1 << 20} {
		got := drain(t, ScanJSONL(bytes.NewReader(buf.Bytes()), want.Attrs(), chunk))
		if got.N() != want.N() {
			t.Fatalf("chunk %d: %d rows, want %d", chunk, got.N(), want.N())
		}
		// Continuous codes survive a label round-trip because the writer
		// emits bin centers, which re-bin to the same code.
		sameRows(t, want, got)
	}
}

func TestScanJSONLFieldOrderAndBlanks(t *testing.T) {
	attrs := scanTestSchema()
	doc := "\n{\"flag\":\"yes\",\"age\":12.5,\"color\":\"blue\"}\n\n  \n{\"color\":\"red\",\"age\":0,\"flag\":\"no\"}\n"
	got := drain(t, ScanJSONL(strings.NewReader(doc), attrs, 10))
	if got.N() != 2 {
		t.Fatalf("got %d rows, want 2", got.N())
	}
	if got.Value(0, 0) != 2 || got.Value(0, 2) != 1 {
		t.Fatalf("row 0 decoded wrong: %v %v", got.Value(0, 0), got.Value(0, 2))
	}
}

func TestScanJSONLErrors(t *testing.T) {
	attrs := scanTestSchema()
	cases := map[string]string{
		"not json":      "{",
		"missing field": `{"color":"red","age":1}`,
		"extra field":   `{"color":"red","age":1,"flag":"no","zz":1}`,
		"bad label":     `{"color":"mauve","age":1,"flag":"no"}`,
		"bad number":    `{"color":"red","age":"x","flag":"no"}`,
		"bad type":      `{"color":1,"age":1,"flag":"no"}`,
	}
	for name, doc := range cases {
		sc := ScanJSONL(strings.NewReader(doc), attrs, 10)
		if _, err := sc.Next(); err == nil || err == io.EOF {
			t.Errorf("%s: accepted (%v)", name, err)
		}
		sc.Close()
	}
}

func TestChunkSourceFilesRescan(t *testing.T) {
	want := scanTestDataset(t, 300)
	dir := t.TempDir()

	csvPath := filepath.Join(dir, "rows.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := want.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	jsonlPath := filepath.Join(dir, "rows.jsonl")
	g, err := os.Create(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	jw := NewJSONLWriter(g, want.Attrs())
	if err := jw.WriteRows(want, 0, want.N()); err != nil {
		t.Fatal(err)
	}
	g.Close()

	for _, src := range []*ChunkSource{
		CSVFile(csvPath, want.Attrs(), 64),
		JSONLFile(jsonlPath, want.Attrs(), 64),
	} {
		// Two scans over the same source must yield identical rows: the
		// re-scan contract of the out-of-core fit path.
		for pass := 0; pass < 2; pass++ {
			sc, err := src.Open()
			if err != nil {
				t.Fatal(err)
			}
			sameRows(t, want, drain(t, sc))
		}
	}

	missing := CSVFile(filepath.Join(dir, "nope.csv"), want.Attrs(), 64)
	if _, err := missing.Open(); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: %v", err)
	}
}

func TestScanDataset(t *testing.T) {
	want := scanTestDataset(t, 257)
	sameRows(t, want, drain(t, ScanDataset(want, 64)))
	src := DatasetSource(want, 64)
	if src.Rows() != 64 {
		t.Fatalf("Rows() = %d", src.Rows())
	}
	sc, err := src.Open()
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, want, drain(t, sc))
}

func TestNewVirtual(t *testing.T) {
	attrs := scanTestSchema()
	v := NewVirtual(attrs, 12345)
	if v.N() != 12345 || v.D() != 3 {
		t.Fatalf("virtual shape %dx%d", v.N(), v.D())
	}
	if v.Attr(1).Name != "age" {
		t.Fatalf("virtual schema lost: %q", v.Attr(1).Name)
	}
}

func TestSliceView(t *testing.T) {
	d := scanTestDataset(t, 50)
	s := d.Slice(10, 20)
	if s.N() != 10 {
		t.Fatalf("slice N = %d", s.N())
	}
	for r := 0; r < 10; r++ {
		for c := 0; c < d.D(); c++ {
			if s.Value(r, c) != d.Value(r+10, c) {
				t.Fatalf("slice row %d col %d mismatch", r, c)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Slice did not panic")
		}
	}()
	d.Slice(40, 60)
}
