package dataset

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// FuzzReadCSV hammers the CSV decoder that backs privbayesd's curator
// uploads: any byte stream must either fail with an error or decode
// into a dataset whose every cell is a valid code for its attribute —
// and must never panic.
func FuzzReadCSV(f *testing.F) {
	// Seed corpus: a valid document and crafted corruptions — wrong
	// header, ragged rows, unknown labels, non-finite and overflowing
	// floats, quoting damage, embedded NULs and BOM.
	f.Add("color,age\nred,10\nblue,55.5\ngreen,79\n")
	f.Add("color,age\nred,10\n")
	f.Add("age,color\n10,red\n")
	f.Add("color\nred\n")
	f.Add("color,age\nred\n")
	f.Add("color,age\nred,10,extra\n")
	f.Add("color,age\nmauve,10\n")
	f.Add("color,age\nred,NaN\n")
	f.Add("color,age\nred,+Inf\n")
	f.Add("color,age\nred,-inf\n")
	f.Add("color,age\nred,1e999\n")
	f.Add("color,age\nred,\n")
	f.Add("color,age\n\"red,10\n")
	f.Add("color,age\r\nred,10\r\n")
	f.Add("\xef\xbb\xbfcolor,age\nred,10\n")
	f.Add("color,age\nred,10\x00\n")
	f.Add("")
	f.Add("\n\n\n")

	attrs := []Attribute{
		NewCategorical("color", []string{"red", "green", "blue"}),
		NewContinuous("age", 0, 80, 8),
	}

	f.Fuzz(func(t *testing.T, s string) {
		ds, err := ReadCSV(strings.NewReader(s), attrs)
		if err != nil {
			return
		}
		// The chunked scanner shares the CSV decoder, so every document
		// ReadCSV accepts must scan to the same rows — and vice versa.
		sc, err := ScanCSV(strings.NewReader(s), attrs, 3)
		if err != nil {
			t.Fatalf("ReadCSV accepted but ScanCSV rejected: %v", err)
		}
		total := 0
		for {
			chunk, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("ReadCSV accepted but chunk scan failed: %v", err)
			}
			total += chunk.N()
		}
		sc.Close()
		if total != ds.N() {
			t.Fatalf("scanner decoded %d rows, ReadCSV %d", total, ds.N())
		}
		// Accepted datasets must be fully in-range and re-encodable.
		for r := 0; r < ds.N(); r++ {
			for c := 0; c < ds.D(); c++ {
				if v := ds.Value(r, c); v < 0 || v >= ds.Attr(c).Size() {
					t.Fatalf("row %d col %d: code %d outside domain [0, %d)", r, c, v, ds.Attr(c).Size())
				}
			}
		}
		var buf bytes.Buffer
		if err := ds.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted dataset fails to re-serialize: %v", err)
		}
		// A re-read of our own output must succeed: the writer emits
		// labels/bin centers that the reader defines as valid.
		if _, err := ReadCSV(&buf, attrs); err != nil {
			t.Fatalf("round-trip rejected: %v", err)
		}
	})
}

// FuzzScanJSONL hammers the JSONL row decoder behind the curator's
// append path: any byte stream must either fail with an error or
// decode into chunks whose every cell is a valid code for its
// attribute — and must never panic.
func FuzzScanJSONL(f *testing.F) {
	// Seed corpus: valid rows plus crafted corruptions — reordered and
	// missing fields, wrong types, unknown labels, non-finite numbers,
	// duplicate keys, nesting, blank lines, truncated JSON.
	f.Add("{\"color\":\"red\",\"age\":10,\"flag\":\"no\"}\n")
	f.Add("{\"flag\":\"yes\",\"age\":55.5,\"color\":\"blue\"}\n{\"color\":\"green\",\"age\":79,\"flag\":\"no\"}\n")
	f.Add("{\"color\":\"red\",\"age\":10}\n")
	f.Add("{\"color\":\"red\",\"age\":10,\"flag\":\"no\",\"extra\":1}\n")
	f.Add("{\"color\":\"mauve\",\"age\":10,\"flag\":\"no\"}\n")
	f.Add("{\"color\":1,\"age\":10,\"flag\":\"no\"}\n")
	f.Add("{\"color\":\"red\",\"age\":\"ten\",\"flag\":\"no\"}\n")
	f.Add("{\"color\":\"red\",\"age\":1e999,\"flag\":\"no\"}\n")
	f.Add("{\"color\":\"red\",\"age\":-1000,\"flag\":\"no\"}\n")
	f.Add("{\"color\":\"red\",\"color\":\"blue\",\"age\":1,\"flag\":\"no\"}\n")
	f.Add("{\"color\":{\"x\":1},\"age\":1,\"flag\":\"no\"}\n")
	f.Add("{\"color\":null,\"age\":1,\"flag\":\"no\"}\n")
	f.Add("{\n")
	f.Add("[]\n")
	f.Add("\n\n\n")
	f.Add("")
	f.Add("{\"color\":\"red\",\"age\":10,\"flag\":\"no\"}")

	attrs := []Attribute{
		NewCategorical("color", []string{"red", "green", "blue"}),
		NewContinuous("age", 0, 80, 8),
		NewCategorical("flag", []string{"no", "yes"}),
	}

	f.Fuzz(func(t *testing.T, s string) {
		sc := ScanJSONL(strings.NewReader(s), attrs, 4)
		defer sc.Close()
		for {
			chunk, err := sc.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				// Errors must be sticky: a failed scanner stays failed.
				if _, err2 := sc.Next(); err2 == nil || err2 == io.EOF {
					t.Fatalf("error %v not sticky (second Next: %v)", err, err2)
				}
				return
			}
			// Accepted rows must be fully in-domain.
			for r := 0; r < chunk.N(); r++ {
				for c := 0; c < chunk.D(); c++ {
					if v := chunk.Value(r, c); v < 0 || v >= chunk.Attr(c).Size() {
						t.Fatalf("row %d col %d: code %d outside domain [0, %d)", r, c, v, chunk.Attr(c).Size())
					}
				}
			}
		}
	})
}
