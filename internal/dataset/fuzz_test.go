package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV hammers the CSV decoder that backs privbayesd's curator
// uploads: any byte stream must either fail with an error or decode
// into a dataset whose every cell is a valid code for its attribute —
// and must never panic.
func FuzzReadCSV(f *testing.F) {
	// Seed corpus: a valid document and crafted corruptions — wrong
	// header, ragged rows, unknown labels, non-finite and overflowing
	// floats, quoting damage, embedded NULs and BOM.
	f.Add("color,age\nred,10\nblue,55.5\ngreen,79\n")
	f.Add("color,age\nred,10\n")
	f.Add("age,color\n10,red\n")
	f.Add("color\nred\n")
	f.Add("color,age\nred\n")
	f.Add("color,age\nred,10,extra\n")
	f.Add("color,age\nmauve,10\n")
	f.Add("color,age\nred,NaN\n")
	f.Add("color,age\nred,+Inf\n")
	f.Add("color,age\nred,-inf\n")
	f.Add("color,age\nred,1e999\n")
	f.Add("color,age\nred,\n")
	f.Add("color,age\n\"red,10\n")
	f.Add("color,age\r\nred,10\r\n")
	f.Add("\xef\xbb\xbfcolor,age\nred,10\n")
	f.Add("color,age\nred,10\x00\n")
	f.Add("")
	f.Add("\n\n\n")

	attrs := []Attribute{
		NewCategorical("color", []string{"red", "green", "blue"}),
		NewContinuous("age", 0, 80, 8),
	}

	f.Fuzz(func(t *testing.T, s string) {
		ds, err := ReadCSV(strings.NewReader(s), attrs)
		if err != nil {
			return
		}
		// Accepted datasets must be fully in-range and re-encodable.
		for r := 0; r < ds.N(); r++ {
			for c := 0; c < ds.D(); c++ {
				if v := ds.Value(r, c); v < 0 || v >= ds.Attr(c).Size() {
					t.Fatalf("row %d col %d: code %d outside domain [0, %d)", r, c, v, ds.Attr(c).Size())
				}
			}
		}
		var buf bytes.Buffer
		if err := ds.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted dataset fails to re-serialize: %v", err)
		}
		// A re-read of our own output must succeed: the writer emits
		// labels/bin centers that the reader defines as valid.
		if _, err := ReadCSV(&buf, attrs); err != nil {
			t.Fatalf("round-trip rejected: %v", err)
		}
	})
}
