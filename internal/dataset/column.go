package dataset

// Columnar, dictionary-encoded storage. Every attribute's codes live in
// a Column whose physical width is chosen from the domain size: 1 or 2
// bits per code for the low-arity attributes that dominate PrivBayes
// workloads (binary NLTCS-style attributes, small categoricals), byte
// codes up to 256 values, and short codes above that. Bit-packed
// columns are stored as bit planes — plane j holds bit j of every row's
// code — so the per-value row bitmask any relational selection needs is
// one or two word operations per 64 rows, and low-arity marginal
// counting becomes bitmask intersection plus popcount (see
// internal/marginal's popcount kernel) instead of a row walk.

import "fmt"

// MaxDomain bounds an attribute's raw domain size: codes must fit the
// widest physical representation (uint16).
const MaxDomain = 1 << 16

// Column is one attribute's dictionary-encoded code vector.
type Column struct {
	size  int // domain size; codes are in [0, size)
	width int // bits per code: 1, 2, 8 or 16
	n     int
	off   int // bit offset of logical row 0 within planes (packed views)

	planes [][]uint64 // width <= 2: one plane per code bit
	b8     []uint8    // width 8
	b16    []uint16   // width 16
}

// widthFor picks the physical code width for a domain size. Writable
// columns — filled by row index, like the parallel sampler's disjoint
// row ranges — use byte-addressable widths so concurrent writes to
// distinct rows never share a memory word.
func widthFor(size int, writable bool) int {
	switch {
	case !writable && size <= 2:
		return 1
	case !writable && size <= 4:
		return 2
	case size <= 256:
		return 8
	default:
		return 16
	}
}

// newColumn creates an empty column for a domain of the given size,
// preallocating capRows rows of storage.
func newColumn(size, capRows int, writable bool) *Column {
	if size > MaxDomain {
		panic(fmt.Sprintf("dataset: attribute domain size %d exceeds %d (uint16 codes)", size, MaxDomain))
	}
	c := &Column{size: size, width: widthFor(size, writable)}
	switch c.width {
	case 8:
		c.b8 = make([]uint8, 0, capRows)
	case 16:
		c.b16 = make([]uint16, 0, capRows)
	default:
		c.planes = make([][]uint64, c.width)
		for p := range c.planes {
			c.planes[p] = make([]uint64, 0, (capRows+63)/64)
		}
	}
	return c
}

// newColumnLen creates a writable column with n zero-filled rows, for
// fill-by-index callers.
func newColumnLen(size, n int) *Column {
	c := newColumn(size, 0, true)
	switch c.width {
	case 8:
		c.b8 = make([]uint8, n)
	default:
		c.b16 = make([]uint16, n)
	}
	c.n = n
	return c
}

// Len returns the number of rows.
func (c *Column) Len() int { return c.n }

// Size returns the domain size the column encodes.
func (c *Column) Size() int { return c.size }

// Width returns the physical code width in bits (1, 2, 8 or 16).
func (c *Column) Width() int { return c.width }

// Maskable reports whether the column is bit-packed (width <= 2), i.e.
// whether per-value row bitmasks derive from its planes in O(n/64) word
// operations — the eligibility test of the popcount counting kernels.
func (c *Column) Maskable() bool { return c.width <= 2 }

// Get returns the code at row i.
func (c *Column) Get(i int) uint16 {
	switch c.width {
	case 16:
		return c.b16[i]
	case 8:
		return uint16(c.b8[i])
	case 1:
		idx := c.off + i
		return uint16(c.planes[0][idx>>6]>>(uint(idx)&63)) & 1
	default: // 2
		idx := c.off + i
		w, b := idx>>6, uint(idx)&63
		return uint16(c.planes[0][w]>>b)&1 | uint16(c.planes[1][w]>>b)&1<<1
	}
}

// Set overwrites row i. Only byte-addressable (writable) columns
// support it: bit-packed rows share words, so an index write there
// would race with neighbouring rows.
func (c *Column) Set(i int, v uint16) {
	switch c.width {
	case 16:
		c.b16[i] = v
	case 8:
		c.b8[i] = uint8(v)
	default:
		panic("dataset: Set on a bit-packed column")
	}
}

// Append adds one code. The caller validates v < Size().
func (c *Column) Append(v uint16) {
	switch c.width {
	case 16:
		c.b16 = append(c.b16, v)
	case 8:
		c.b8 = append(c.b8, uint8(v))
	default:
		c.appendPacked(v)
	}
	c.n++
}

func (c *Column) appendPacked(v uint16) {
	idx := c.off + c.n
	w, b := idx>>6, uint(idx)&63
	for p := 0; p < c.width; p++ {
		for len(c.planes[p]) <= w {
			c.planes[p] = append(c.planes[p], 0)
		}
		c.planes[p][w] |= uint64(v>>p&1) << b
	}
}

// AppendBlock bulk-appends a block of codes, packing bit-packed columns
// word-at-a-time (64 codes per plane word) instead of row by row. It is
// the columnar-fill primitive behind Dataset.AppendColumns and the
// chunk scanners. The caller validates the codes.
func (c *Column) AppendBlock(vals []uint16) {
	switch c.width {
	case 16:
		c.b16 = append(c.b16, vals...)
		c.n += len(vals)
	case 8:
		for _, v := range vals {
			c.b8 = append(c.b8, uint8(v))
		}
		c.n += len(vals)
	default:
		i := 0
		for i < len(vals) && (c.off+c.n)&63 != 0 {
			c.appendPacked(vals[i])
			c.n++
			i++
		}
		if c.width == 1 {
			for ; i+64 <= len(vals); i += 64 {
				var w0 uint64
				for b, v := range vals[i : i+64] {
					w0 |= uint64(v&1) << uint(b)
				}
				c.planes[0] = append(c.planes[0], w0)
				c.n += 64
			}
		} else {
			for ; i+64 <= len(vals); i += 64 {
				var w0, w1 uint64
				for b, v := range vals[i : i+64] {
					w0 |= uint64(v&1) << uint(b)
					w1 |= uint64(v>>1&1) << uint(b)
				}
				c.planes[0] = append(c.planes[0], w0)
				c.planes[1] = append(c.planes[1], w1)
				c.n += 64
			}
		}
		for ; i < len(vals); i++ {
			c.appendPacked(vals[i])
			c.n++
		}
	}
}

// DecodeRange returns the codes of rows [lo, hi). Short-code columns
// return their underlying storage zero-copy; packed columns decode into
// buf (allocating when buf is short). The caller must not mutate the
// result, and must treat it as invalid after the next DecodeRange with
// the same buf.
func (c *Column) DecodeRange(lo, hi int, buf []uint16) []uint16 {
	m := hi - lo
	switch c.width {
	case 16:
		return c.b16[lo:hi:hi]
	case 8:
		buf = growU16(buf, m)
		for i, v := range c.b8[lo:hi] {
			buf[i] = uint16(v)
		}
		return buf
	case 1:
		buf = growU16(buf, m)
		p0 := c.planes[0]
		idx := c.off + lo
		for i := 0; i < m; {
			w, b := idx>>6, int(uint(idx)&63)
			bits0 := p0[w] >> uint(b)
			take := 64 - b
			if take > m-i {
				take = m - i
			}
			for j := 0; j < take; j++ {
				buf[i+j] = uint16(bits0>>uint(j)) & 1
			}
			i += take
			idx += take
		}
		return buf
	default: // 2
		buf = growU16(buf, m)
		p0, p1 := c.planes[0], c.planes[1]
		idx := c.off + lo
		for i := 0; i < m; {
			w, b := idx>>6, int(uint(idx)&63)
			bits0, bits1 := p0[w]>>uint(b), p1[w]>>uint(b)
			take := 64 - b
			if take > m-i {
				take = m - i
			}
			for j := 0; j < take; j++ {
				buf[i+j] = uint16(bits0>>uint(j))&1 | uint16(bits1>>uint(j))&1<<1
			}
			i += take
			idx += take
		}
		return buf
	}
}

func growU16(buf []uint16, n int) []uint16 {
	if cap(buf) < n {
		return make([]uint16, n)
	}
	return buf[:n]
}

// MaskWords returns the word count of a row bitmask over the column.
func (c *Column) MaskWords() int { return (c.n + 63) / 64 }

// FillValueMask fills dst[:MaskWords()] with the selection bitmask of
// code v: bit r is set iff Get(r) == v. Bits at and beyond Len() are
// zero. Only Maskable columns support it. For word-aligned columns the
// mask derives from the bit planes at one or two word operations per 64
// rows; unaligned views (rare — only non-word-aligned Slice chunks)
// fall back to a row loop.
func (c *Column) FillValueMask(v int, dst []uint64) {
	if !c.Maskable() {
		panic("dataset: FillValueMask on a non-bit-packed column")
	}
	nw := c.MaskWords()
	dst = dst[:nw]
	if c.off&63 != 0 {
		for w := range dst {
			dst[w] = 0
		}
		for r := 0; r < c.n; r++ {
			if int(c.Get(r)) == v {
				dst[r>>6] |= 1 << (uint(r) & 63)
			}
		}
		return
	}
	base := c.off >> 6
	p0 := c.planes[0][base:]
	if c.width == 1 {
		if v == 1 {
			copy(dst, p0[:nw])
		} else {
			for w := range dst {
				dst[w] = ^p0[w]
			}
		}
	} else {
		p1 := c.planes[1][base:]
		switch v {
		case 0:
			for w := range dst {
				dst[w] = ^p0[w] & ^p1[w]
			}
		case 1:
			for w := range dst {
				dst[w] = p0[w] & ^p1[w]
			}
		case 2:
			for w := range dst {
				dst[w] = ^p0[w] & p1[w]
			}
		default:
			for w := range dst {
				dst[w] = p0[w] & p1[w]
			}
		}
	}
	if tail := uint(c.n) & 63; tail != 0 {
		dst[nw-1] &= 1<<tail - 1
	}
}

// view returns a zero-copy view of rows [lo, hi): storage is shared
// with the receiver. Packed views keep a bit offset when lo is not
// word-aligned.
func (c *Column) view(lo, hi int) *Column {
	v := &Column{size: c.size, width: c.width, n: hi - lo}
	switch c.width {
	case 16:
		v.b16 = c.b16[lo:hi:hi]
	case 8:
		v.b8 = c.b8[lo:hi:hi]
	default:
		start := c.off + lo
		end := (c.off + hi + 63) >> 6
		v.off = start & 63
		v.planes = make([][]uint64, c.width)
		for p := range v.planes {
			v.planes[p] = c.planes[p][start>>6 : end : end]
		}
	}
	return v
}

// clone returns a deep copy.
func (c *Column) clone() *Column {
	d := &Column{size: c.size, width: c.width, n: c.n, off: c.off}
	if c.planes != nil {
		d.planes = make([][]uint64, len(c.planes))
		for p := range c.planes {
			d.planes[p] = append([]uint64(nil), c.planes[p]...)
		}
	}
	d.b8 = append([]uint8(nil), c.b8...)
	d.b16 = append([]uint16(nil), c.b16...)
	return d
}
