package dataset

import (
	"encoding/json"
	"fmt"
)

// hierarchyJSON is the serialized form of a Hierarchy: the per-level
// generalization maps above the implicit identity level.
type hierarchyJSON struct {
	RawSize int     `json:"raw_size"`
	Maps    [][]int `json:"maps"`
}

// MarshalJSON serializes the taxonomy tree so fitted models can be
// persisted and reloaded.
func (h *Hierarchy) MarshalJSON() ([]byte, error) {
	out := hierarchyJSON{RawSize: h.sizes[0]}
	for _, lvl := range h.levels[1:] {
		out.Maps = append(out.Maps, lvl)
	}
	return json.Marshal(out)
}

// maxHierarchyRawSize bounds the raw domain a deserialized hierarchy
// may declare. Codes are uint16 throughout the dataset layer, and the
// bound keeps an adversarial document from forcing a huge allocation
// before model validation runs.
const maxHierarchyRawSize = 1 << 16

// UnmarshalJSON rebuilds the hierarchy, revalidating level consistency.
func (h *Hierarchy) UnmarshalJSON(data []byte) (err error) {
	var in hierarchyJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if in.RawSize < 1 || in.RawSize > maxHierarchyRawSize {
		return fmt.Errorf("dataset: invalid hierarchy: raw size %d out of range [1, %d]", in.RawSize, maxHierarchyRawSize)
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("dataset: invalid hierarchy: %v", r)
		}
	}()
	*h = *NewHierarchy(in.RawSize, in.Maps...)
	return nil
}
