package dataset

import (
	"encoding/json"
	"fmt"
)

// hierarchyJSON is the serialized form of a Hierarchy: the per-level
// generalization maps above the implicit identity level.
type hierarchyJSON struct {
	RawSize int     `json:"raw_size"`
	Maps    [][]int `json:"maps"`
}

// MarshalJSON serializes the taxonomy tree so fitted models can be
// persisted and reloaded.
func (h *Hierarchy) MarshalJSON() ([]byte, error) {
	out := hierarchyJSON{RawSize: h.sizes[0]}
	for _, lvl := range h.levels[1:] {
		out.Maps = append(out.Maps, lvl)
	}
	return json.Marshal(out)
}

// UnmarshalJSON rebuilds the hierarchy, revalidating level consistency.
func (h *Hierarchy) UnmarshalJSON(data []byte) (err error) {
	var in hierarchyJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("dataset: invalid hierarchy: %v", r)
		}
	}()
	*h = *NewHierarchy(in.RawSize, in.Maps...)
	return nil
}
