// Package dataset provides the column-oriented tabular data model used
// throughout the PrivBayes implementation: attributes with categorical or
// discretized-continuous domains, optional taxonomy trees (generalization
// hierarchies), and compact column storage of encoded records.
package dataset

import (
	"fmt"
	"math"
	"strconv"
)

// Kind classifies an attribute's original domain.
type Kind int

const (
	// Categorical attributes take one of a finite set of labels.
	Categorical Kind = iota
	// Continuous attributes are real-valued and are discretized into
	// equi-width bins before modeling (Section 5.1 of the paper).
	Continuous
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case Categorical:
		return "categorical"
	case Continuous:
		return "continuous"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attribute describes one column of a dataset. Values are stored as codes
// in [0, Size()). For continuous attributes the codes index equi-width
// bins over [Min, Max].
type Attribute struct {
	Name   string
	Kind   Kind
	Labels []string // one label per code; for continuous attributes, bin descriptions

	// Min and Max bound the original domain of a continuous attribute.
	Min, Max float64

	// Hierarchy is an optional taxonomy tree over the codes. Nil means
	// the attribute has no generalization levels beyond the raw domain.
	Hierarchy *Hierarchy
}

// NewCategorical constructs a categorical attribute with the given labels.
func NewCategorical(name string, labels []string) Attribute {
	return Attribute{Name: name, Kind: Categorical, Labels: append([]string(nil), labels...)}
}

// NewContinuous constructs a continuous attribute discretized into bins
// equi-width bins over [min, max]. A binary taxonomy tree over the bins is
// attached automatically when bins is a power of two greater than one,
// mirroring the paper's treatment of continuous attributes (Figure 2).
func NewContinuous(name string, min, max float64, bins int) Attribute {
	if bins < 1 {
		panic("dataset: continuous attribute needs at least one bin")
	}
	labels := make([]string, bins)
	width := (max - min) / float64(bins)
	for i := range labels {
		lo := min + float64(i)*width
		hi := lo + width
		labels[i] = fmt.Sprintf("(%g, %g]", lo, hi)
	}
	a := Attribute{Name: name, Kind: Continuous, Labels: labels, Min: min, Max: max}
	if bins > 1 && bins&(bins-1) == 0 {
		a.Hierarchy = BinaryHierarchy(bins)
	}
	return a
}

// Size returns the number of codes in the raw (level-0) domain.
func (a *Attribute) Size() int { return len(a.Labels) }

// Bits returns ceil(log2(Size())), the number of binary attributes needed
// to encode this attribute (Section 5.1, binary and Gray encodings).
func (a *Attribute) Bits() int {
	if a.Size() <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(a.Size()))))
}

// Bin maps a raw continuous value into its bin code, clamping to the
// domain bounds.
func (a *Attribute) Bin(v float64) int {
	if a.Kind != Continuous {
		panic("dataset: Bin on non-continuous attribute " + a.Name)
	}
	bins := a.Size()
	if v <= a.Min {
		return 0
	}
	if v >= a.Max {
		return bins - 1
	}
	i := int((v - a.Min) / (a.Max - a.Min) * float64(bins))
	if i >= bins {
		i = bins - 1
	}
	return i
}

// BinCenter returns a representative value for a bin code, used when
// decoding synthetic records back into raw values.
func (a *Attribute) BinCenter(code int) float64 {
	if a.Kind != Continuous {
		panic("dataset: BinCenter on non-continuous attribute " + a.Name)
	}
	width := (a.Max - a.Min) / float64(a.Size())
	return a.Min + (float64(code)+0.5)*width
}

// Label returns the label for a code, or a numeric fallback when the code
// is out of range.
func (a *Attribute) Label(code int) string {
	if code >= 0 && code < len(a.Labels) {
		return a.Labels[code]
	}
	return strconv.Itoa(code)
}

// Code returns the code for a label, or -1 when the label is unknown.
func (a *Attribute) Code(label string) int {
	for i, l := range a.Labels {
		if l == label {
			return i
		}
	}
	return -1
}

// Height returns the number of generalization levels available for the
// attribute: 1 when it has no hierarchy (only the raw level), otherwise
// the hierarchy height.
func (a *Attribute) Height() int {
	if a.Hierarchy == nil {
		return 1
	}
	return a.Hierarchy.Height()
}

// SizeAt returns the domain size of the attribute generalized to the
// given level. Level 0 is the raw domain.
func (a *Attribute) SizeAt(level int) int {
	if level == 0 || a.Hierarchy == nil {
		return a.Size()
	}
	return a.Hierarchy.SizeAt(level)
}

// Generalize maps a raw code to its generalized code at the given level.
func (a *Attribute) Generalize(level, code int) int {
	if level == 0 || a.Hierarchy == nil {
		return code
	}
	return a.Hierarchy.Generalize(level, code)
}
