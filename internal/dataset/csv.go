package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSVHeader returns the header row for the dataset's schema.
func (d *Dataset) CSVHeader() []string {
	header := make([]string, d.D())
	for i := range header {
		header[i] = d.attrs[i].Name
	}
	return header
}

// WriteCSVRows writes rows [lo, hi) — no header — through cw, decoding
// each code back to its label (categorical) or bin center (continuous).
// It is the streaming building block of WriteCSV: the synthesis server
// emits a large response as a sequence of small chunk datasets, writing
// each chunk's rows through one long-lived csv.Writer.
func (d *Dataset) WriteCSVRows(cw *csv.Writer, lo, hi int) error {
	if lo < 0 || hi > d.n || lo > hi {
		return fmt.Errorf("dataset: row range [%d, %d) outside [0, %d)", lo, hi, d.n)
	}
	rec := make([]string, d.D())
	for r := lo; r < hi; r++ {
		for c := 0; c < d.D(); c++ {
			a := &d.attrs[c]
			code := d.Value(r, c)
			if a.Kind == Continuous {
				rec[c] = strconv.FormatFloat(a.BinCenter(code), 'g', -1, 64)
			} else {
				rec[c] = a.Label(code)
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: write row %d: %w", r+1, err)
		}
	}
	return nil
}

// WriteCSV writes the dataset with a header row, decoding each code back
// to its label (categorical) or bin center (continuous).
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(d.CSVHeader()); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	if err := d.WriteCSVRows(cw, 0, d.n); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads records that match the given schema from CSV with a
// header row. Categorical cells must be known labels; continuous cells
// are parsed as finite floats and binned.
//
// Rows are decoded one at a time straight off the reader — the whole
// file is never held in memory beyond the 2-bytes-per-cell encoded
// dataset — so it is safe to point at a large upload stream. Errors
// report the 1-based data row and column of the offending cell.
func ReadCSV(r io.Reader, attrs []Attribute) (*Dataset, error) {
	cr := csv.NewReader(r)
	// Rows are encoded immediately, so the csv.Reader may reuse its
	// record buffer between rows instead of allocating per row.
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	if len(header) != len(attrs) {
		return nil, fmt.Errorf("dataset: header has %d columns, schema has %d", len(header), len(attrs))
	}
	for i, h := range header {
		if h != attrs[i].Name {
			return nil, fmt.Errorf("dataset: column %d is %q, schema expects %q", i+1, h, attrs[i].Name)
		}
	}
	d := New(attrs)
	rec := make([]uint16, len(attrs))
	// Rows are staged column-major in blocks and bulk-packed, so
	// bit-packed columns fill 64 codes per word (see AppendColumns).
	const block = 4096
	stage := newStage(len(attrs))
	row := 0 // 1-based data row (header excluded) once inside the loop
	for {
		cells, err := cr.Read()
		if err == io.EOF {
			break
		}
		row++
		if err != nil {
			// csv.ParseError already carries the file line; add the
			// data-row number, which is what schema-level callers count.
			return nil, fmt.Errorf("dataset: row %d: %w", row, err)
		}
		if err := decodeCSVRow(attrs, cells, rec, row); err != nil {
			return nil, err
		}
		for c, v := range rec {
			stage[c] = append(stage[c], v)
		}
		if len(attrs) > 0 && len(stage[0]) >= block {
			d.AppendColumns(stage)
			resetStage(stage)
		}
	}
	d.AppendColumns(stage)
	return d, nil
}
