package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the dataset with a header row, decoding each code back
// to its label (categorical) or bin center (continuous).
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, d.D())
	for i := range header {
		header[i] = d.attrs[i].Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	rec := make([]string, d.D())
	for r := 0; r < d.n; r++ {
		for c := 0; c < d.D(); c++ {
			a := &d.attrs[c]
			code := d.Value(r, c)
			if a.Kind == Continuous {
				rec[c] = strconv.FormatFloat(a.BinCenter(code), 'g', -1, 64)
			} else {
				rec[c] = a.Label(code)
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: write row %d: %w", r, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads records that match the given schema from CSV with a
// header row. Categorical cells must be known labels; continuous cells
// are parsed as floats and binned.
func ReadCSV(r io.Reader, attrs []Attribute) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	if len(header) != len(attrs) {
		return nil, fmt.Errorf("dataset: header has %d columns, schema has %d", len(header), len(attrs))
	}
	for i, h := range header {
		if h != attrs[i].Name {
			return nil, fmt.Errorf("dataset: column %d is %q, schema expects %q", i, h, attrs[i].Name)
		}
	}
	d := New(attrs)
	rec := make([]uint16, len(attrs))
	row := 0
	for {
		cells, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read row %d: %w", row, err)
		}
		for c, cell := range cells {
			a := &attrs[c]
			if a.Kind == Continuous {
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: row %d, attribute %s: %w", row, a.Name, err)
				}
				rec[c] = uint16(a.Bin(v))
			} else {
				code := a.Code(cell)
				if code < 0 {
					return nil, fmt.Errorf("dataset: row %d, attribute %s: unknown label %q", row, a.Name, cell)
				}
				rec[c] = uint16(code)
			}
		}
		d.Append(rec)
		row++
	}
	return d, nil
}
