package dataset

// Chunked row scanners: the out-of-core counterpart of ReadCSV. A
// Scanner yields the rows of a source as a sequence of small Dataset
// chunks, so sufficient statistics can be accumulated over datasets far
// larger than RAM (the continuous-curator path); a ChunkSource makes a
// scanner reopenable, which is what lets the greedy fit re-scan the
// source once per iteration instead of materializing the rows.

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
)

// DefaultChunkRows is the chunk size scanners use when the caller does
// not choose one. A chunk costs at most 128 KiB × D(attributes) of
// resident memory (2 bytes per cell for wide columns; bit-packed
// low-arity columns cost 1/8 to 1/16 of that).
const DefaultChunkRows = 1 << 16

// MaxJSONLLine bounds one JSONL row's encoded length, mirroring
// csv.Reader's protection against unbounded single-record growth on
// untrusted streams.
const MaxJSONLLine = 1 << 20

// Scanner yields the rows of a source as bounded Dataset chunks. Next
// returns io.EOF after the final chunk; any other error is sticky.
// Close releases the underlying source (a no-op for in-memory
// scanners) and must be called even after an error.
type Scanner interface {
	Next() (*Dataset, error)
	Close() error
}

// ChunkSource is a reopenable chunked row source: Open starts a fresh
// scan from the first row. Re-scanning is the contract the out-of-core
// fit path relies on — one full scan per greedy iteration — so Open
// must yield the same rows in the same order every time.
type ChunkSource struct {
	// Attrs is the schema every scan decodes against.
	Attrs []Attribute
	// ChunkRows bounds the rows per chunk (<= 0 selects
	// DefaultChunkRows).
	ChunkRows int
	// Open starts a fresh scan over the source.
	Open func() (Scanner, error)
}

// Rows returns the effective chunk size.
func (s *ChunkSource) Rows() int {
	if s.ChunkRows <= 0 {
		return DefaultChunkRows
	}
	return s.ChunkRows
}

// CSVFile returns a re-scannable source over a headered CSV file.
func CSVFile(path string, attrs []Attribute, chunkRows int) *ChunkSource {
	return &ChunkSource{Attrs: attrs, ChunkRows: chunkRows, Open: func() (Scanner, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		sc, err := ScanCSV(f, attrs, chunkRows)
		if err != nil {
			f.Close()
			return nil, err
		}
		sc.(*csvScanner).closer = f
		return sc, nil
	}}
}

// JSONLFile returns a re-scannable source over a JSONL file (one
// row object per line).
func JSONLFile(path string, attrs []Attribute, chunkRows int) *ChunkSource {
	return &ChunkSource{Attrs: attrs, ChunkRows: chunkRows, Open: func() (Scanner, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		sc := ScanJSONL(f, attrs, chunkRows).(*jsonlScanner)
		sc.closer = f
		return sc, nil
	}}
}

// DatasetSource wraps an in-memory dataset as a re-scannable source;
// chunks are zero-copy column views. It is how the in-memory and
// out-of-core fit paths are compared like for like.
func DatasetSource(d *Dataset, chunkRows int) *ChunkSource {
	return &ChunkSource{Attrs: d.Attrs(), ChunkRows: chunkRows, Open: func() (Scanner, error) {
		return ScanDataset(d, chunkRows), nil
	}}
}

// ScanCSV returns a scanner over headered CSV that decodes rows
// against the schema exactly as ReadCSV does, chunkRows rows at a
// time. The header is read and validated immediately.
func ScanCSV(r io.Reader, attrs []Attribute, chunkRows int) (Scanner, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	if len(header) != len(attrs) {
		return nil, fmt.Errorf("dataset: header has %d columns, schema has %d", len(header), len(attrs))
	}
	for i, h := range header {
		if h != attrs[i].Name {
			return nil, fmt.Errorf("dataset: column %d is %q, schema expects %q", i+1, h, attrs[i].Name)
		}
	}
	if chunkRows <= 0 {
		chunkRows = DefaultChunkRows
	}
	return &csvScanner{cr: cr, attrs: attrs, chunk: chunkRows,
		rec: make([]uint16, len(attrs)), stage: newStage(len(attrs))}, nil
}

// newStage allocates the per-attribute staging buffers a scanner
// decodes rows into before bulk-packing them into a columnar chunk.
// Staging column-major lets bit-packed columns fill 64 codes per word
// (Dataset.AppendColumns) instead of paying per-row bit surgery, and
// the buffers are reused across chunks.
func newStage(d int) [][]uint16 {
	return make([][]uint16, d)
}

func resetStage(stage [][]uint16) {
	for c := range stage {
		stage[c] = stage[c][:0]
	}
}

type csvScanner struct {
	cr     *csv.Reader
	attrs  []Attribute
	chunk  int
	rec    []uint16
	stage  [][]uint16 // per-attribute chunk staging, reused across Next
	row    int        // 1-based data row, for error reporting
	err    error
	closer io.Closer
}

func (s *csvScanner) Next() (*Dataset, error) {
	if s.err != nil {
		return nil, s.err
	}
	resetStage(s.stage)
	rows := 0
	for rows < s.chunk {
		cells, err := s.cr.Read()
		if err == io.EOF {
			if rows == 0 {
				s.err = io.EOF
				return nil, io.EOF
			}
			break
		}
		s.row++
		if err != nil {
			s.err = fmt.Errorf("dataset: row %d: %w", s.row, err)
			return nil, s.err
		}
		if err := decodeCSVRow(s.attrs, cells, s.rec, s.row); err != nil {
			s.err = err
			return nil, s.err
		}
		for c, v := range s.rec {
			s.stage[c] = append(s.stage[c], v)
		}
		rows++
	}
	d := NewWithCapacity(s.attrs, rows)
	d.AppendColumns(s.stage)
	return d, nil
}

func (s *csvScanner) Close() error {
	if s.closer != nil {
		c := s.closer
		s.closer = nil
		return c.Close()
	}
	return nil
}

// decodeCSVRow encodes one row of raw cells against the schema. row is
// the 1-based data row for error reporting; the messages match
// ReadCSV's, which shares this helper.
func decodeCSVRow(attrs []Attribute, cells []string, rec []uint16, row int) error {
	for c, cell := range cells {
		a := &attrs[c]
		if a.Kind == Continuous {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return fmt.Errorf("dataset: row %d, column %d (%s): %w", row, c+1, a.Name, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("dataset: row %d, column %d (%s): non-finite value %q", row, c+1, a.Name, cell)
			}
			rec[c] = uint16(a.Bin(v))
		} else {
			code := a.Code(cell)
			if code < 0 {
				return fmt.Errorf("dataset: row %d, column %d (%s): unknown label %q", row, c+1, a.Name, cell)
			}
			rec[c] = uint16(code)
		}
	}
	return nil
}

// ScanJSONL returns a scanner over newline-delimited JSON rows — the
// format JSONLWriter emits: one object per line, categorical values as
// label strings, continuous values as numbers (binned on decode).
// Fields may appear in any order; every schema attribute must be
// present and no others. Blank lines are skipped.
func ScanJSONL(r io.Reader, attrs []Attribute, chunkRows int) Scanner {
	if chunkRows <= 0 {
		chunkRows = DefaultChunkRows
	}
	br := bufio.NewScanner(r)
	br.Buffer(make([]byte, 0, 64<<10), MaxJSONLLine)
	return &jsonlScanner{br: br, attrs: attrs, chunk: chunkRows,
		rec: make([]uint16, len(attrs)), stage: newStage(len(attrs))}
}

type jsonlScanner struct {
	br     *bufio.Scanner
	attrs  []Attribute
	chunk  int
	rec    []uint16
	stage  [][]uint16 // per-attribute chunk staging, reused across Next
	row    int        // 1-based non-blank row, for error reporting
	err    error
	closer io.Closer
}

func (s *jsonlScanner) Next() (*Dataset, error) {
	if s.err != nil {
		return nil, s.err
	}
	resetStage(s.stage)
	rows := 0
	for rows < s.chunk {
		if !s.br.Scan() {
			if err := s.br.Err(); err != nil {
				s.err = fmt.Errorf("dataset: jsonl row %d: %w", s.row+1, err)
				return nil, s.err
			}
			if rows == 0 {
				s.err = io.EOF
				return nil, io.EOF
			}
			break
		}
		line := bytes.TrimSpace(s.br.Bytes())
		if len(line) == 0 {
			continue
		}
		s.row++
		if err := decodeJSONLRow(s.attrs, line, s.rec, s.row); err != nil {
			s.err = err
			return nil, s.err
		}
		for c, v := range s.rec {
			s.stage[c] = append(s.stage[c], v)
		}
		rows++
	}
	d := NewWithCapacity(s.attrs, rows)
	d.AppendColumns(s.stage)
	return d, nil
}

func (s *jsonlScanner) Close() error {
	if s.closer != nil {
		c := s.closer
		s.closer = nil
		return c.Close()
	}
	return nil
}

// decodeJSONLRow encodes one JSONL object against the schema. Accepted
// rows are always in-domain: every code it writes is < the attribute's
// Size, so Append cannot panic.
func decodeJSONLRow(attrs []Attribute, line []byte, rec []uint16, row int) error {
	var obj map[string]json.RawMessage
	if err := json.Unmarshal(line, &obj); err != nil {
		return fmt.Errorf("dataset: jsonl row %d: %w", row, err)
	}
	if len(obj) != len(attrs) {
		return fmt.Errorf("dataset: jsonl row %d: %d fields, schema has %d", row, len(obj), len(attrs))
	}
	for c := range attrs {
		a := &attrs[c]
		raw, ok := obj[a.Name]
		if !ok {
			return fmt.Errorf("dataset: jsonl row %d: missing field %q", row, a.Name)
		}
		if a.Kind == Continuous {
			var v float64
			if err := json.Unmarshal(raw, &v); err != nil {
				return fmt.Errorf("dataset: jsonl row %d, field %q: %w", row, a.Name, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("dataset: jsonl row %d, field %q: non-finite value", row, a.Name)
			}
			rec[c] = uint16(a.Bin(v))
		} else {
			var label string
			if err := json.Unmarshal(raw, &label); err != nil {
				return fmt.Errorf("dataset: jsonl row %d, field %q: %w", row, a.Name, err)
			}
			code := a.Code(label)
			if code < 0 {
				return fmt.Errorf("dataset: jsonl row %d, field %q: unknown label %q", row, a.Name, label)
			}
			rec[c] = uint16(code)
		}
	}
	return nil
}

// ScanDataset yields an in-memory dataset as zero-copy chunk views.
func ScanDataset(d *Dataset, chunkRows int) Scanner {
	if chunkRows <= 0 {
		chunkRows = DefaultChunkRows
	}
	return &sliceScanner{d: d, chunk: chunkRows}
}

type sliceScanner struct {
	d     *Dataset
	chunk int
	lo    int
}

func (s *sliceScanner) Next() (*Dataset, error) {
	if s.lo >= s.d.N() {
		return nil, io.EOF
	}
	hi := min(s.lo+s.chunk, s.d.N())
	c := s.d.Slice(s.lo, hi)
	s.lo = hi
	return c, nil
}

func (s *sliceScanner) Close() error { return nil }
