package dataset

import (
	"math/rand"
	"testing"
)

// TestColumnWidthSelection pins the width ladder: bit-packed for
// low-arity read-only columns, byte-addressable when writable or wide.
func TestColumnWidthSelection(t *testing.T) {
	cases := []struct {
		size     int
		writable bool
		want     int
	}{
		{2, false, 1},
		{3, false, 2},
		{4, false, 2},
		{5, false, 8},
		{256, false, 8},
		{257, false, 16},
		{1 << 16, false, 16},
		{2, true, 8},
		{4, true, 8},
		{257, true, 16},
	}
	for _, c := range cases {
		if got := widthFor(c.size, c.writable); got != c.want {
			t.Errorf("widthFor(%d, %v) = %d, want %d", c.size, c.writable, got, c.want)
		}
	}
	if !newColumn(2, 0, false).Maskable() {
		t.Error("size-2 read-only column should be maskable")
	}
	if newColumn(2, 0, true).Maskable() {
		t.Error("writable column must not be bit-packed (Set would race)")
	}
}

// randCodes draws n codes uniform over the domain.
func randCodes(n, size int, rng *rand.Rand) []uint16 {
	out := make([]uint16, n)
	for i := range out {
		out[i] = uint16(rng.Intn(size))
	}
	return out
}

// TestColumnRoundTrip checks Append/AppendBlock/Get/DecodeRange agree
// with the plain slice for every width, including word-boundary
// straddling lengths.
func TestColumnRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, size := range []int{2, 3, 4, 7, 300} {
		for _, n := range []int{0, 1, 63, 64, 65, 129, 1000} {
			want := randCodes(n, size, rng)

			// Row-at-a-time fill.
			byRow := newColumn(size, 0, false)
			for _, v := range want {
				byRow.Append(v)
			}
			// Bulk fill, split at an odd point so AppendBlock exercises
			// both the unaligned prologue and the word-aligned body.
			bulk := newColumn(size, n, false)
			cut := n / 3
			bulk.AppendBlock(want[:cut])
			bulk.AppendBlock(want[cut:])

			for name, c := range map[string]*Column{"row": byRow, "bulk": bulk} {
				if c.Len() != n {
					t.Fatalf("size %d n %d %s: Len = %d", size, n, name, c.Len())
				}
				for i, w := range want {
					if got := c.Get(i); got != w {
						t.Fatalf("size %d n %d %s: Get(%d) = %d, want %d", size, n, name, i, got, w)
					}
				}
				lo, hi := 0, n
				if n > 10 {
					lo, hi = 3, n-2
				}
				dec := c.DecodeRange(lo, hi, nil)
				for i, w := range want[lo:hi] {
					if dec[i] != w {
						t.Fatalf("size %d n %d %s: DecodeRange[%d] = %d, want %d", size, n, name, i, dec[i], w)
					}
				}
			}
		}
	}
}

// TestColumnValueMask checks FillValueMask against a per-row Get scan,
// on aligned columns and on unaligned views.
func TestColumnValueMask(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, size := range []int{2, 3, 4} {
		n := 517
		want := randCodes(n, size, rng)
		c := newColumn(size, n, false)
		c.AppendBlock(want)

		check := func(name string, col *Column) {
			t.Helper()
			mask := make([]uint64, col.MaskWords())
			for v := 0; v < size; v++ {
				col.FillValueMask(v, mask)
				for r := 0; r < col.Len(); r++ {
					got := mask[r>>6]>>(uint(r)&63)&1 == 1
					if got != (int(col.Get(r)) == v) {
						t.Fatalf("size %d %s value %d row %d: mask bit %v", size, name, v, r, got)
					}
				}
				for r := col.Len(); r < 64*col.MaskWords(); r++ {
					if mask[r>>6]>>(uint(r)&63)&1 == 1 {
						t.Fatalf("size %d %s value %d: tail bit %d set", size, name, v, r)
					}
				}
			}
		}
		check("full", c)
		check("aligned-view", c.view(64, 384))
		check("unaligned-view", c.view(7, 422))
	}
}

// TestColumnViewClone checks zero-copy views and deep clones read back
// the same codes, and that a clone is independent of its source.
func TestColumnViewClone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, size := range []int{2, 4, 9, 400} {
		n := 300
		want := randCodes(n, size, rng)
		c := newColumn(size, n, false)
		c.AppendBlock(want)

		v := c.view(17, 203)
		if v.Len() != 203-17 {
			t.Fatalf("view len %d", v.Len())
		}
		for i := 0; i < v.Len(); i++ {
			if v.Get(i) != want[17+i] {
				t.Fatalf("size %d view Get(%d) = %d, want %d", size, i, v.Get(i), want[17+i])
			}
		}
		// Views of views compose.
		vv := v.view(5, 100)
		for i := 0; i < vv.Len(); i++ {
			if vv.Get(i) != want[22+i] {
				t.Fatalf("size %d nested view Get(%d) = %d, want %d", size, i, vv.Get(i), want[22+i])
			}
		}

		cl := c.clone()
		cl.Append(uint16(0))
		if cl.Len() != n+1 || c.Len() != n {
			t.Fatalf("clone length leak: %d / %d", cl.Len(), c.Len())
		}
		for i := range want {
			if cl.Get(i) != want[i] {
				t.Fatalf("size %d clone Get(%d) mismatch", size, i)
			}
		}
	}
}

// TestWritableColumnSet checks NewWithLen datasets take SetRecord
// writes and that their columns never select a bit-packed width.
func TestWritableColumnSet(t *testing.T) {
	attrs := []Attribute{
		NewCategorical("a", []string{"0", "1"}),
		NewCategorical("b", []string{"x", "y", "z"}),
	}
	d := NewWithLen(attrs, 100)
	for c := 0; c < d.D(); c++ {
		if d.Col(c).Maskable() {
			t.Fatalf("NewWithLen column %d is bit-packed; SetRecord would race", c)
		}
	}
	for i := 0; i < 100; i++ {
		d.SetRecord(i, []uint16{uint16(i % 2), uint16(i % 3)})
	}
	for i := 0; i < 100; i++ {
		if d.Value(i, 0) != i%2 || d.Value(i, 1) != i%3 {
			t.Fatalf("row %d = (%d, %d)", i, d.Value(i, 0), d.Value(i, 1))
		}
	}
}
