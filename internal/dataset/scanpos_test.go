package dataset

import (
	"io"
	"strings"
	"testing"
)

// Differential error-position tests: ScanCSV must report exactly the
// same 1-based row/column positions (and messages) as the in-memory
// ReadCSV for identical malformed input, at every chunk size — the
// positions are part of the user-facing contract and drift easily once
// chunked columnar fill owns the decode loop. ScanJSONL is pinned the
// same way across chunk sizes against expected messages.

// scanAllErr drains a scanner and returns the first non-EOF error (nil
// when the input scans clean).
func scanAllErr(sc Scanner) error {
	defer sc.Close()
	for {
		_, err := sc.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

func TestScanCSVErrorPositionsMatchReadCSV(t *testing.T) {
	attrs := []Attribute{
		NewCategorical("color", []string{"red", "green"}),
		NewContinuous("weight", 0, 1, 4),
		NewCategorical("flag", []string{"yes", "no"}),
	}
	header := "color,weight,flag\n"
	good := "red,0.5,yes\n"

	cases := []struct {
		name  string
		input string
	}{
		{"unknown label row 1", header + "blue,0.5,yes\n"},
		{"unknown label row 3 col 3", header + good + good + "red,0.5,maybe\n"},
		{"bad float row 2 col 2", header + good + "green,abc,no\n"},
		{"non-finite row 4 col 2", header + good + good + good + "red,+Inf,no\n"},
		{"ragged row 2", header + good + "red,0.5\n"},
		{"bare quote row 3", header + good + good + "red,\"0.5,yes\n"},
		// Malformed cells landing just past a chunk boundary: with
		// chunkRows 2 the bad cell is the first row of chunk 2; with 3
		// it is mid-chunk.
		{"unknown label row 5", header + strings.Repeat(good, 4) + "red,0.5,nope\n"},
		{"bad float row 7", header + strings.Repeat(good, 6) + "red,NaN,yes\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, refErr := ReadCSV(strings.NewReader(tc.input), attrs)
			if refErr == nil {
				t.Fatalf("ReadCSV accepted malformed input")
			}
			for _, chunkRows := range []int{1, 2, 3, 5, DefaultChunkRows} {
				sc, err := ScanCSV(strings.NewReader(tc.input), attrs, chunkRows)
				if err != nil {
					t.Fatalf("chunkRows %d: header: %v", chunkRows, err)
				}
				scanErr := scanAllErr(sc)
				if scanErr == nil {
					t.Fatalf("chunkRows %d: scanner accepted malformed input", chunkRows)
				}
				if scanErr.Error() != refErr.Error() {
					t.Errorf("chunkRows %d:\n scan: %s\n read: %s", chunkRows, scanErr, refErr)
				}
			}
		})
	}
}

func TestScanJSONLErrorPositionsStableAcrossChunkSizes(t *testing.T) {
	attrs := []Attribute{
		NewCategorical("color", []string{"red", "green"}),
		NewCategorical("flag", []string{"yes", "no"}),
	}
	good := `{"color":"red","flag":"yes"}` + "\n"

	cases := []struct {
		name    string
		input   string
		wantSub string
	}{
		{"unknown label row 1", `{"color":"blue","flag":"yes"}` + "\n",
			`jsonl row 1, field "color": unknown label "blue"`},
		{"missing field row 3", good + good + `{"color":"red"}` + "\n",
			"jsonl row 3: 1 fields, schema has 2"},
		{"bad json row 2", good + "{not json}\n",
			"jsonl row 2:"},
		// Blank lines don't advance the reported row number.
		{"blanks before bad row 2", good + "\n\n" + `{"color":"red","flag":"maybe"}` + "\n",
			`jsonl row 2, field "flag": unknown label "maybe"`},
		{"bad row 5 across chunks", strings.Repeat(good, 4) + `{"flag":"yes","color":"nope"}` + "\n",
			`jsonl row 5, field "color": unknown label "nope"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var first string
			for _, chunkRows := range []int{1, 2, 3, DefaultChunkRows} {
				err := scanAllErr(ScanJSONL(strings.NewReader(tc.input), attrs, chunkRows))
				if err == nil {
					t.Fatalf("chunkRows %d: scanner accepted malformed input", chunkRows)
				}
				if !strings.Contains(err.Error(), tc.wantSub) {
					t.Errorf("chunkRows %d: error %q does not contain %q", chunkRows, err, tc.wantSub)
				}
				if first == "" {
					first = err.Error()
				} else if err.Error() != first {
					t.Errorf("chunkRows %d: error %q differs from chunkRows 1's %q", chunkRows, err, first)
				}
			}
		})
	}
}
