package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// Dataset is a columnar table of encoded records: one dictionary-encoded
// Column per attribute, bit-packed down to 1–2 bits per value for
// low-arity attributes (see column.go). Columnar storage keeps marginal
// materialization — the hot loop of PrivBayes — cache-friendly, and the
// bit-packed layout is what the popcount counting kernels in
// internal/marginal select on.
type Dataset struct {
	attrs []Attribute
	cols  []*Column
	n     int
}

// New creates an empty dataset with the given schema.
func New(attrs []Attribute) *Dataset {
	return NewWithCapacity(attrs, 0)
}

// NewWithCapacity creates an empty dataset preallocating room for n rows.
func NewWithCapacity(attrs []Attribute, n int) *Dataset {
	d := &Dataset{attrs: append([]Attribute(nil), attrs...)}
	d.cols = make([]*Column, len(attrs))
	for i := range d.attrs {
		d.cols[i] = newColumn(d.attrs[i].Size(), n, false)
	}
	return d
}

// NewWithLen creates a dataset with n zero-filled rows, for callers
// that fill rows by index — e.g. the parallel sampler, whose workers
// write disjoint row ranges of one shared dataset. Its columns use
// byte-addressable code widths (never bit-packed) so those concurrent
// disjoint-row writes cannot share a memory word.
func NewWithLen(attrs []Attribute, n int) *Dataset {
	d := &Dataset{attrs: append([]Attribute(nil), attrs...), n: n}
	d.cols = make([]*Column, len(attrs))
	for i := range d.attrs {
		d.cols[i] = newColumnLen(d.attrs[i].Size(), n)
	}
	return d
}

// NewVirtual creates a dataset that carries only the schema and a row
// count — no column storage. It is the seam that lets schema+N-driven
// code (structure search, sensitivity, table shaping) run in the
// out-of-core fit path, where the rows live behind a Scanner instead
// of in memory. Row accessors (Value, Record, Col, Append) must not
// be used on a virtual dataset; Col returns nil.
func NewVirtual(attrs []Attribute, n int) *Dataset {
	return &Dataset{attrs: append([]Attribute(nil), attrs...), n: n}
}

// Slice returns a zero-copy view of rows [lo, hi): the chunk shares
// the receiver's column storage. Mutating either dataset's shared rows
// is visible in both.
func (d *Dataset) Slice(lo, hi int) *Dataset {
	if lo < 0 || hi > d.n || lo > hi {
		panic(fmt.Sprintf("dataset: slice [%d, %d) outside [0, %d)", lo, hi, d.n))
	}
	s := &Dataset{attrs: d.attrs, n: hi - lo}
	if d.cols != nil {
		s.cols = make([]*Column, len(d.cols))
		for i := range d.cols {
			s.cols[i] = d.cols[i].view(lo, hi)
		}
	}
	return s
}

// SetRecord overwrites row i with one code per attribute. Concurrent
// calls for distinct rows are race-free on datasets built with
// NewWithLen.
func (d *Dataset) SetRecord(i int, rec []uint16) {
	if len(rec) != len(d.attrs) {
		panic(fmt.Sprintf("dataset: record has %d values, want %d", len(rec), len(d.attrs)))
	}
	for c, v := range rec {
		if int(v) >= d.attrs[c].Size() {
			panic(fmt.Sprintf("dataset: code %d out of range for attribute %s (size %d)", v, d.attrs[c].Name, d.attrs[c].Size()))
		}
		d.cols[c].Set(i, v)
	}
}

// N returns the number of rows.
func (d *Dataset) N() int { return d.n }

// D returns the number of attributes (the paper's d).
func (d *Dataset) D() int { return len(d.attrs) }

// Attr returns the schema of column i.
func (d *Dataset) Attr(i int) *Attribute { return &d.attrs[i] }

// Attrs returns the full schema. The caller must not mutate it.
func (d *Dataset) Attrs() []Attribute { return d.attrs }

// AttrIndex returns the column index of the attribute with the given
// name, or -1 if absent.
func (d *Dataset) AttrIndex(name string) int {
	for i := range d.attrs {
		if d.attrs[i].Name == name {
			return i
		}
	}
	return -1
}

// Col returns the column of attribute i, or nil on a virtual dataset.
func (d *Dataset) Col(i int) *Column {
	if d.cols == nil {
		return nil
	}
	return d.cols[i]
}

// ColumnCodes returns the codes of attribute i as a widened []uint16,
// decoding bit-packed columns (zero-copy only for 16-bit columns). The
// caller must not mutate the result. Counting paths should prefer
// Col's DecodeRange or FillValueMask; this is the convenience accessor
// for cold full-column consumers.
func (d *Dataset) ColumnCodes(i int) []uint16 {
	if d.cols == nil || d.n == 0 {
		return nil
	}
	return d.cols[i].DecodeRange(0, d.n, nil)
}

// Value returns the code at (row, col).
func (d *Dataset) Value(row, col int) int { return int(d.cols[col].Get(row)) }

// Append adds a record given as one code per attribute.
func (d *Dataset) Append(rec []uint16) {
	if len(rec) != len(d.attrs) {
		panic(fmt.Sprintf("dataset: record has %d values, want %d", len(rec), len(d.attrs)))
	}
	for i, v := range rec {
		if int(v) >= d.attrs[i].Size() {
			panic(fmt.Sprintf("dataset: code %d out of range for attribute %s (size %d)", v, d.attrs[i].Name, d.attrs[i].Size()))
		}
		d.cols[i].Append(v)
	}
	d.n++
}

// AppendColumns bulk-appends a block of rows given column-major: cols
// holds one code slice per attribute, all the same length. It is the
// columnar fill path the chunk scanners use — bit-packed columns pack
// 64 codes per word instead of paying per-row bit surgery.
func (d *Dataset) AppendColumns(cols [][]uint16) {
	if len(cols) != len(d.attrs) {
		panic(fmt.Sprintf("dataset: block has %d columns, want %d", len(cols), len(d.attrs)))
	}
	if len(cols) == 0 {
		return
	}
	rows := len(cols[0])
	for i, col := range cols {
		if len(col) != rows {
			panic(fmt.Sprintf("dataset: block column %d has %d rows, column 0 has %d", i, len(col), rows))
		}
		size := d.attrs[i].Size()
		for _, v := range col {
			if int(v) >= size {
				panic(fmt.Sprintf("dataset: code %d out of range for attribute %s (size %d)", v, d.attrs[i].Name, size))
			}
		}
	}
	for i, col := range cols {
		d.cols[i].AppendBlock(col)
	}
	d.n += rows
}

// Record copies row i into dst (allocating when dst is short) and
// returns it.
func (d *Dataset) Record(i int, dst []uint16) []uint16 {
	if cap(dst) < len(d.attrs) {
		dst = make([]uint16, len(d.attrs))
	}
	dst = dst[:len(d.attrs)]
	for c := range d.cols {
		dst[c] = d.cols[c].Get(i)
	}
	return dst
}

// Clone returns a deep copy.
func (d *Dataset) Clone() *Dataset {
	c := &Dataset{attrs: d.attrs, n: d.n}
	if d.cols != nil {
		c.cols = make([]*Column, len(d.cols))
		for i := range d.cols {
			c.cols[i] = d.cols[i].clone()
		}
	}
	return c
}

// Subset returns a new dataset containing only the given rows, in order.
func (d *Dataset) Subset(rows []int) *Dataset {
	s := NewWithCapacity(d.attrs, len(rows))
	for i := range d.cols {
		src, dst := d.cols[i], s.cols[i]
		for _, r := range rows {
			dst.Append(src.Get(r))
		}
	}
	s.n = len(rows)
	return s
}

// Sample returns a uniform random subsample of m rows without
// replacement (m is clamped to N).
func (d *Dataset) Sample(m int, rng *rand.Rand) *Dataset {
	if m >= d.n {
		return d.Clone()
	}
	perm := rng.Perm(d.n)[:m]
	return d.Subset(perm)
}

// Split partitions the rows into a training set with the given fraction
// and a test set with the remainder, after a seeded shuffle. The paper
// uses an 80/20 split for the classification task.
func (d *Dataset) Split(trainFrac float64, rng *rand.Rand) (train, test *Dataset) {
	perm := rng.Perm(d.n)
	cut := int(trainFrac * float64(d.n))
	return d.Subset(perm[:cut]), d.Subset(perm[cut:])
}

// TotalDomainLog2 returns log2 of the product of attribute domain sizes
// (the paper's "domain size" column of Table 5).
func (d *Dataset) TotalDomainLog2() float64 {
	var bits float64
	for i := range d.attrs {
		bits += math.Log2(float64(d.attrs[i].Size()))
	}
	return bits
}
