package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// Dataset is a column-oriented table of encoded records. Each column
// stores the code of the corresponding attribute for every row. Column
// storage keeps marginal materialization (the hot loop of PrivBayes)
// cache-friendly.
type Dataset struct {
	attrs []Attribute
	cols  [][]uint16
	n     int
}

// New creates an empty dataset with the given schema.
func New(attrs []Attribute) *Dataset {
	d := &Dataset{attrs: append([]Attribute(nil), attrs...)}
	d.cols = make([][]uint16, len(attrs))
	for i, a := range attrs {
		if a.Size() > 1<<16 {
			panic(fmt.Sprintf("dataset: attribute %s domain too large for uint16 codes", a.Name))
		}
		d.cols[i] = nil
	}
	return d
}

// NewWithCapacity creates an empty dataset preallocating room for n rows.
func NewWithCapacity(attrs []Attribute, n int) *Dataset {
	d := New(attrs)
	for i := range d.cols {
		d.cols[i] = make([]uint16, 0, n)
	}
	return d
}

// NewWithLen creates a dataset with n zero-filled rows, for callers
// that fill rows by index — e.g. the parallel sampler, whose workers
// write disjoint row ranges of one shared dataset.
func NewWithLen(attrs []Attribute, n int) *Dataset {
	d := New(attrs)
	for i := range d.cols {
		d.cols[i] = make([]uint16, n)
	}
	d.n = n
	return d
}

// NewVirtual creates a dataset that carries only the schema and a row
// count — no column storage. It is the seam that lets schema+N-driven
// code (structure search, sensitivity, table shaping) run in the
// out-of-core fit path, where the rows live behind a Scanner instead
// of in memory. Row accessors (Value, Record, Column, Append) must not
// be used on a virtual dataset.
func NewVirtual(attrs []Attribute, n int) *Dataset {
	d := New(attrs)
	d.n = n
	return d
}

// Slice returns a zero-copy view of rows [lo, hi): the chunk shares
// the receiver's column storage. Mutating either dataset's shared rows
// is visible in both.
func (d *Dataset) Slice(lo, hi int) *Dataset {
	if lo < 0 || hi > d.n || lo > hi {
		panic(fmt.Sprintf("dataset: slice [%d, %d) outside [0, %d)", lo, hi, d.n))
	}
	s := &Dataset{attrs: d.attrs, cols: make([][]uint16, len(d.cols)), n: hi - lo}
	for i := range d.cols {
		s.cols[i] = d.cols[i][lo:hi:hi]
	}
	return s
}

// SetRecord overwrites row i with one code per attribute. Concurrent
// calls for distinct rows are race-free.
func (d *Dataset) SetRecord(i int, rec []uint16) {
	if len(rec) != len(d.attrs) {
		panic(fmt.Sprintf("dataset: record has %d values, want %d", len(rec), len(d.attrs)))
	}
	for c, v := range rec {
		if int(v) >= d.attrs[c].Size() {
			panic(fmt.Sprintf("dataset: code %d out of range for attribute %s (size %d)", v, d.attrs[c].Name, d.attrs[c].Size()))
		}
		d.cols[c][i] = v
	}
}

// N returns the number of rows.
func (d *Dataset) N() int { return d.n }

// D returns the number of attributes (the paper's d).
func (d *Dataset) D() int { return len(d.attrs) }

// Attr returns the schema of column i.
func (d *Dataset) Attr(i int) *Attribute { return &d.attrs[i] }

// Attrs returns the full schema. The caller must not mutate it.
func (d *Dataset) Attrs() []Attribute { return d.attrs }

// AttrIndex returns the column index of the attribute with the given
// name, or -1 if absent.
func (d *Dataset) AttrIndex(name string) int {
	for i := range d.attrs {
		if d.attrs[i].Name == name {
			return i
		}
	}
	return -1
}

// Column returns the raw code column for attribute i. The caller must
// not mutate it.
func (d *Dataset) Column(i int) []uint16 { return d.cols[i] }

// Value returns the code at (row, col).
func (d *Dataset) Value(row, col int) int { return int(d.cols[col][row]) }

// Append adds a record given as one code per attribute.
func (d *Dataset) Append(rec []uint16) {
	if len(rec) != len(d.attrs) {
		panic(fmt.Sprintf("dataset: record has %d values, want %d", len(rec), len(d.attrs)))
	}
	for i, v := range rec {
		if int(v) >= d.attrs[i].Size() {
			panic(fmt.Sprintf("dataset: code %d out of range for attribute %s (size %d)", v, d.attrs[i].Name, d.attrs[i].Size()))
		}
		d.cols[i] = append(d.cols[i], v)
	}
	d.n++
}

// Record copies row i into dst (allocating when dst is short) and
// returns it.
func (d *Dataset) Record(i int, dst []uint16) []uint16 {
	if cap(dst) < len(d.attrs) {
		dst = make([]uint16, len(d.attrs))
	}
	dst = dst[:len(d.attrs)]
	for c := range d.cols {
		dst[c] = d.cols[c][i]
	}
	return dst
}

// Clone returns a deep copy.
func (d *Dataset) Clone() *Dataset {
	c := New(d.attrs)
	c.n = d.n
	for i := range d.cols {
		c.cols[i] = append([]uint16(nil), d.cols[i]...)
	}
	return c
}

// Subset returns a new dataset containing only the given rows, in order.
func (d *Dataset) Subset(rows []int) *Dataset {
	s := NewWithCapacity(d.attrs, len(rows))
	for i := range d.cols {
		col := d.cols[i]
		dst := s.cols[i][:0]
		for _, r := range rows {
			dst = append(dst, col[r])
		}
		s.cols[i] = dst
	}
	s.n = len(rows)
	return s
}

// Sample returns a uniform random subsample of m rows without
// replacement (m is clamped to N).
func (d *Dataset) Sample(m int, rng *rand.Rand) *Dataset {
	if m >= d.n {
		return d.Clone()
	}
	perm := rng.Perm(d.n)[:m]
	return d.Subset(perm)
}

// Split partitions the rows into a training set with the given fraction
// and a test set with the remainder, after a seeded shuffle. The paper
// uses an 80/20 split for the classification task.
func (d *Dataset) Split(trainFrac float64, rng *rand.Rand) (train, test *Dataset) {
	perm := rng.Perm(d.n)
	cut := int(trainFrac * float64(d.n))
	return d.Subset(perm[:cut]), d.Subset(perm[cut:])
}

// TotalDomainLog2 returns log2 of the product of attribute domain sizes
// (the paper's "domain size" column of Table 5).
func (d *Dataset) TotalDomainLog2() float64 {
	var bits float64
	for i := range d.attrs {
		bits += math.Log2(float64(d.attrs[i].Size()))
	}
	return bits
}
