package dataset

import (
	"testing"
	"testing/quick"
)

func TestBinaryHierarchyStructure(t *testing.T) {
	h := BinaryHierarchy(8)
	if h.Height() != 3 {
		t.Fatalf("height = %d, want 3", h.Height())
	}
	if h.SizeAt(0) != 8 || h.SizeAt(1) != 4 || h.SizeAt(2) != 2 {
		t.Errorf("sizes = %d,%d,%d", h.SizeAt(0), h.SizeAt(1), h.SizeAt(2))
	}
	// Level 1 merges pairs, level 2 merges quadruples.
	for c := 0; c < 8; c++ {
		if h.Generalize(1, c) != c/2 {
			t.Errorf("level 1: Generalize(%d) = %d", c, h.Generalize(1, c))
		}
		if h.Generalize(2, c) != c/4 {
			t.Errorf("level 2: Generalize(%d) = %d", c, h.Generalize(2, c))
		}
	}
}

func TestBinaryHierarchyRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two")
		}
	}()
	BinaryHierarchy(6)
}

func TestNewHierarchyConsistencyCheck(t *testing.T) {
	// Level 2 splits level-1 group {0,1}: must panic.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inconsistent levels")
		}
	}()
	NewHierarchy(4,
		[]int{0, 0, 1, 1},
		[]int{0, 1, 1, 1}, // codes 0 and 1 were together at level 1
	)
}

func TestNewHierarchyIdentityLevel(t *testing.T) {
	h := NewHierarchy(5)
	if h.Height() != 1 {
		t.Fatalf("height = %d, want 1", h.Height())
	}
	for c := 0; c < 5; c++ {
		if h.Generalize(0, c) != c {
			t.Error("level 0 must be identity")
		}
	}
}

func TestNewHierarchyWrongMapLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong map length")
		}
	}()
	NewHierarchy(4, []int{0, 0, 1})
}

// Generalization must be monotone: codes equal at a level stay equal at
// every higher level.
func TestGeneralizationMonotone(t *testing.T) {
	h := NewHierarchy(6,
		[]int{0, 0, 1, 1, 2, 2},
		[]int{0, 0, 0, 0, 1, 1},
	)
	f := func(a, b uint8) bool {
		x, y := int(a)%6, int(b)%6
		for lvl := 0; lvl < h.Height()-1; lvl++ {
			if h.Generalize(lvl, x) == h.Generalize(lvl, y) &&
				h.Generalize(lvl+1, x) != h.Generalize(lvl+1, y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSizeAtCountsDistinctGroups(t *testing.T) {
	h := NewHierarchy(6,
		[]int{0, 0, 1, 1, 2, 2},
		[]int{0, 0, 0, 0, 1, 1},
	)
	if h.SizeAt(1) != 3 || h.SizeAt(2) != 2 {
		t.Errorf("sizes = %d, %d; want 3, 2", h.SizeAt(1), h.SizeAt(2))
	}
}
