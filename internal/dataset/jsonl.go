package dataset

import (
	"bytes"
	"encoding/json"
	"io"
	"strconv"
)

// JSONLWriter streams rows as newline-delimited JSON objects, one per
// row, keys in schema order. Attribute names and categorical labels are
// JSON-escaped once up front, so the per-row loop only copies bytes;
// continuous attributes decode to their bin centers as JSON numbers.
// It is the JSONL counterpart of WriteCSVRows: both the synthesis
// server and Model.SynthesizeTo emit large responses as a sequence of
// small chunk datasets through one long-lived writer.
type JSONLWriter struct {
	w       io.Writer
	attrs   []Attribute
	names   [][]byte   // `"name":` per attribute
	labels  [][][]byte // escaped label per categorical code; nil for continuous
	buf     bytes.Buffer
	scratch []byte // float-formatting scratch, reused across cells
}

// NewJSONLWriter prepares a writer for the given schema.
func NewJSONLWriter(w io.Writer, attrs []Attribute) *JSONLWriter {
	jw := &JSONLWriter{w: w, attrs: attrs, names: make([][]byte, len(attrs)), labels: make([][][]byte, len(attrs))}
	for i := range attrs {
		a := &attrs[i]
		name, _ := json.Marshal(a.Name)
		jw.names[i] = append(name, ':')
		if a.Kind == Categorical {
			codes := make([][]byte, a.Size())
			for c := range codes {
				codes[c], _ = json.Marshal(a.Label(c))
			}
			jw.labels[i] = codes
		}
	}
	return jw
}

// WriteRows renders rows [lo, hi) of d and flushes them to the
// underlying writer in one Write, so each chunk is one syscall-sized
// burst to the client.
func (jw *JSONLWriter) WriteRows(d *Dataset, lo, hi int) error {
	jw.buf.Reset()
	for r := lo; r < hi; r++ {
		jw.buf.WriteByte('{')
		for c := range jw.attrs {
			if c > 0 {
				jw.buf.WriteByte(',')
			}
			jw.buf.Write(jw.names[c])
			code := d.Value(r, c)
			if jw.labels[c] != nil {
				jw.buf.Write(jw.labels[c][code])
			} else {
				jw.scratch = strconv.AppendFloat(jw.scratch[:0], jw.attrs[c].BinCenter(code), 'g', -1, 64)
				jw.buf.Write(jw.scratch)
			}
		}
		jw.buf.WriteString("}\n")
	}
	_, err := jw.w.Write(jw.buf.Bytes())
	return err
}
