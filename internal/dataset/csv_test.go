package dataset

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestReadCSVErrorsReportRowAndColumn(t *testing.T) {
	attrs := []Attribute{
		NewCategorical("color", []string{"red", "green"}),
		NewContinuous("age", 0, 100, 4),
	}
	cases := []struct {
		name string
		in   string
		want []string // substrings of the error
	}{
		{
			"unknown label",
			"color,age\nred,10\nblue,20\n",
			[]string{"row 2", "column 1", "color", `"blue"`},
		},
		{
			"bad float",
			"color,age\nred,ten\n",
			[]string{"row 1", "column 2", "age"},
		},
		{
			"non-finite float",
			"color,age\nred,NaN\n",
			[]string{"row 1", "column 2", "non-finite"},
		},
		{
			"ragged row",
			"color,age\nred,10\ngreen\n",
			[]string{"row 2"},
		},
		{
			"wrong header name",
			"color,height\nred,10\n",
			[]string{"column 2", `"height"`, `"age"`},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadCSV(strings.NewReader(tc.in), attrs)
			if err == nil {
				t.Fatal("want error")
			}
			for _, sub := range tc.want {
				if !strings.Contains(err.Error(), sub) {
					t.Errorf("error %q missing %q", err, sub)
				}
			}
		})
	}
}

func TestReadCSVStreamsLargeInput(t *testing.T) {
	// Build a biggish CSV incrementally and check the round trip; the
	// reader must cope row-by-row (ReuseRecord) without schema drift.
	attrs := []Attribute{
		NewCategorical("flag", []string{"no", "yes"}),
		NewContinuous("x", 0, 1, 8),
	}
	var buf bytes.Buffer
	buf.WriteString("flag,x\n")
	for i := 0; i < 5000; i++ {
		if i%3 == 0 {
			buf.WriteString("yes,0.9\n")
		} else {
			buf.WriteString("no,0.1\n")
		}
	}
	d, err := ReadCSV(&buf, attrs)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 5000 {
		t.Fatalf("read %d rows, want 5000", d.N())
	}
	yes := 0
	for r := 0; r < d.N(); r++ {
		if d.Value(r, 0) == 1 {
			yes++
		}
	}
	if yes != 1667 {
		t.Errorf("yes count = %d, want 1667", yes)
	}
}

func TestWriteCSVRowsChunksMatchWholeFile(t *testing.T) {
	attrs := []Attribute{
		NewCategorical("c", []string{"a", "b", "z"}),
		NewContinuous("v", 0, 10, 4),
	}
	d := New(attrs)
	for i := 0; i < 10; i++ {
		d.Append([]uint16{uint16(i % 3), uint16(i % 4)})
	}

	var whole bytes.Buffer
	if err := d.WriteCSV(&whole); err != nil {
		t.Fatal(err)
	}

	// Header + rows written in uneven chunks through one csv.Writer
	// must byte-match WriteCSV — the contract the streaming synthesis
	// endpoint relies on.
	var chunked bytes.Buffer
	cw := csv.NewWriter(&chunked)
	if err := cw.Write(d.CSVHeader()); err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{0, 3}, {3, 4}, {4, 10}} {
		if err := d.WriteCSVRows(cw, r[0], r[1]); err != nil {
			t.Fatal(err)
		}
	}
	cw.Flush()
	if cw.Error() != nil {
		t.Fatal(cw.Error())
	}
	if whole.String() != chunked.String() {
		t.Errorf("chunked output differs:\nwhole:\n%schunked:\n%s", whole.String(), chunked.String())
	}

	if err := d.WriteCSVRows(cw, 5, 99); err == nil {
		t.Error("out-of-range row range must error")
	}
}
