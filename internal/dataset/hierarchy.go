package dataset

import "fmt"

// Hierarchy is a taxonomy tree over an attribute's codes (Section 5.1,
// hierarchical encoding). Level 0 is the raw domain; each higher level
// merges codes into coarser groups. Levels are stored as explicit maps
// from raw code to generalized code, which supports arbitrary (not just
// binary) trees such as workclass -> {self-employed, government, ...}.
type Hierarchy struct {
	levels [][]int // levels[l][rawCode] = code at level l; levels[0] is the identity
	sizes  []int   // sizes[l] = number of distinct codes at level l
}

// NewHierarchy builds a hierarchy from per-level generalization maps.
// maps[0] corresponds to level 1 (the first generalization above raw);
// the identity level 0 is implicit. Each map must assign every raw code
// a group id in [0, number of groups at that level), and groups must be
// consistent with the previous level (codes in the same group at level l
// stay together at level l+1).
func NewHierarchy(rawSize int, maps ...[]int) *Hierarchy {
	h := &Hierarchy{}
	identity := make([]int, rawSize)
	for i := range identity {
		identity[i] = i
	}
	h.levels = [][]int{identity}
	h.sizes = []int{rawSize}
	prev := identity
	for li, m := range maps {
		if len(m) != rawSize {
			panic(fmt.Sprintf("dataset: hierarchy level %d map has %d entries, want %d", li+1, len(m), rawSize))
		}
		size := 0
		groupOf := make(map[int]int) // previous-level group -> this-level group
		for raw, g := range m {
			if g < 0 {
				panic("dataset: negative group id in hierarchy")
			}
			if g+1 > size {
				size = g + 1
			}
			if got, ok := groupOf[prev[raw]]; ok && got != g {
				panic(fmt.Sprintf("dataset: hierarchy level %d splits group %d of level %d", li+1, prev[raw], li))
			}
			groupOf[prev[raw]] = g
		}
		h.levels = append(h.levels, append([]int(nil), m...))
		h.sizes = append(h.sizes, size)
		prev = m
	}
	return h
}

// BinaryHierarchy builds the paper's binary tree over b equi-width bins
// (b must be a power of two): level l merges runs of 2^l consecutive bins.
func BinaryHierarchy(b int) *Hierarchy {
	if b < 2 || b&(b-1) != 0 {
		panic("dataset: BinaryHierarchy requires a power-of-two bin count >= 2")
	}
	var maps [][]int
	for w := 2; w < b; w *= 2 {
		m := make([]int, b)
		for i := range m {
			m[i] = i / w
		}
		maps = append(maps, m)
	}
	return NewHierarchy(b, maps...)
}

// Height returns the number of levels, including the raw level 0. An
// attribute with height h can be generalized to levels 0..h-1; the paper
// writes this as i in [0, height(X)).
func (h *Hierarchy) Height() int { return len(h.levels) }

// SizeAt returns the number of distinct codes at a level.
func (h *Hierarchy) SizeAt(level int) int {
	if level < 0 || level >= len(h.sizes) {
		panic(fmt.Sprintf("dataset: hierarchy level %d out of range [0,%d)", level, len(h.sizes)))
	}
	return h.sizes[level]
}

// Generalize maps a raw code to its code at the given level.
func (h *Hierarchy) Generalize(level, code int) int {
	if level < 0 || level >= len(h.levels) {
		panic(fmt.Sprintf("dataset: hierarchy level %d out of range [0,%d)", level, len(h.levels)))
	}
	return h.levels[level][code]
}
