package dataset

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema() []Attribute {
	return []Attribute{
		NewCategorical("color", []string{"red", "green", "blue"}),
		NewContinuous("age", 0, 100, 16),
		NewCategorical("flag", []string{"no", "yes"}),
	}
}

func fill(t *testing.T, d *Dataset, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rec := make([]uint16, d.D())
	for i := 0; i < n; i++ {
		for c := 0; c < d.D(); c++ {
			rec[c] = uint16(rng.Intn(d.Attr(c).Size()))
		}
		d.Append(rec)
	}
}

func TestAppendAndAccess(t *testing.T) {
	d := New(testSchema())
	d.Append([]uint16{2, 5, 1})
	d.Append([]uint16{0, 15, 0})
	if d.N() != 2 || d.D() != 3 {
		t.Fatalf("got N=%d D=%d, want 2, 3", d.N(), d.D())
	}
	if d.Value(0, 0) != 2 || d.Value(1, 1) != 15 {
		t.Errorf("unexpected values: %d, %d", d.Value(0, 0), d.Value(1, 1))
	}
	rec := d.Record(1, nil)
	if rec[0] != 0 || rec[1] != 15 || rec[2] != 0 {
		t.Errorf("Record(1) = %v", rec)
	}
}

func TestAppendRejectsOutOfRangeCode(t *testing.T) {
	d := New(testSchema())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range code")
		}
	}()
	d.Append([]uint16{3, 0, 0}) // color has only 3 codes
}

func TestAppendRejectsWrongArity(t *testing.T) {
	d := New(testSchema())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong record length")
		}
	}()
	d.Append([]uint16{0, 0})
}

func TestCloneIsDeep(t *testing.T) {
	d := New(testSchema())
	fill(t, d, 10, 1)
	c := d.Clone()
	c.Append([]uint16{0, 0, 0})
	if d.N() == c.N() {
		t.Error("clone shares row count with original")
	}
	if d.Value(0, 0) != c.Value(0, 0) {
		t.Error("clone lost data")
	}
}

func TestSubsetPreservesOrder(t *testing.T) {
	d := New(testSchema())
	fill(t, d, 20, 2)
	s := d.Subset([]int{5, 0, 19})
	if s.N() != 3 {
		t.Fatalf("subset N = %d", s.N())
	}
	for c := 0; c < d.D(); c++ {
		if s.Value(0, c) != d.Value(5, c) || s.Value(2, c) != d.Value(19, c) {
			t.Fatalf("subset column %d mismatch", c)
		}
	}
}

func TestSplitPartition(t *testing.T) {
	d := New(testSchema())
	fill(t, d, 100, 3)
	train, test := d.Split(0.8, rand.New(rand.NewSource(4)))
	if train.N() != 80 || test.N() != 20 {
		t.Fatalf("split sizes: %d/%d", train.N(), test.N())
	}
}

func TestSampleClamps(t *testing.T) {
	d := New(testSchema())
	fill(t, d, 10, 5)
	s := d.Sample(50, rand.New(rand.NewSource(6)))
	if s.N() != 10 {
		t.Errorf("oversized sample should clamp to N, got %d", s.N())
	}
	s2 := d.Sample(4, rand.New(rand.NewSource(7)))
	if s2.N() != 4 {
		t.Errorf("sample size = %d, want 4", s2.N())
	}
}

func TestAttrIndex(t *testing.T) {
	d := New(testSchema())
	if d.AttrIndex("age") != 1 {
		t.Errorf("AttrIndex(age) = %d", d.AttrIndex("age"))
	}
	if d.AttrIndex("missing") != -1 {
		t.Error("missing attribute should return -1")
	}
}

func TestTotalDomainLog2(t *testing.T) {
	d := New(testSchema()) // 3 * 16 * 2 = 96
	got := d.TotalDomainLog2()
	want := 6.584962500721156 // log2(96)
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("TotalDomainLog2 = %v, want %v", got, want)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := New(testSchema())
	fill(t, d, 25, 8)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != d.N() {
		t.Fatalf("round trip N = %d, want %d", back.N(), d.N())
	}
	for r := 0; r < d.N(); r++ {
		for c := 0; c < d.D(); c++ {
			if back.Value(r, c) != d.Value(r, c) {
				t.Fatalf("cell (%d,%d): got %d want %d", r, c, back.Value(r, c), d.Value(r, c))
			}
		}
	}
}

func TestReadCSVRejectsBadHeader(t *testing.T) {
	_, err := ReadCSV(strings.NewReader("a,b\n"), testSchema())
	if err == nil {
		t.Fatal("expected error for wrong column count")
	}
	_, err = ReadCSV(strings.NewReader("color,wrong,flag\n"), testSchema())
	if err == nil {
		t.Fatal("expected error for wrong column name")
	}
}

func TestReadCSVRejectsUnknownLabel(t *testing.T) {
	in := "color,age,flag\npurple,10,no\n"
	if _, err := ReadCSV(strings.NewReader(in), testSchema()); err == nil {
		t.Fatal("expected error for unknown label")
	}
}

func TestContinuousBinning(t *testing.T) {
	a := NewContinuous("age", 0, 80, 8)
	cases := []struct {
		v    float64
		want int
	}{
		{-5, 0}, {0, 0}, {5, 0}, {10.001, 1}, {79.9, 7}, {80, 7}, {1000, 7},
	}
	for _, c := range cases {
		if got := a.Bin(c.v); got != c.want {
			t.Errorf("Bin(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestBinCenterInvertsBin(t *testing.T) {
	a := NewContinuous("x", -10, 30, 16)
	f := func(raw float64) bool {
		v := -10 + 40*clamp01(raw)
		code := a.Bin(v)
		center := a.BinCenter(code)
		return a.Bin(center) == code
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		x = -x
	}
	x = x - float64(int(x))
	if x < 0 {
		x += 1
	}
	return x
}

func TestBitsCoverDomain(t *testing.T) {
	for size := 2; size <= 70; size++ {
		labels := make([]string, size)
		for i := range labels {
			labels[i] = strings.Repeat("x", i+1)
		}
		a := NewCategorical("a", labels)
		if 1<<a.Bits() < size {
			t.Errorf("size %d: 2^%d does not cover domain", size, a.Bits())
		}
		if a.Bits() > 1 && 1<<(a.Bits()-1) >= size {
			t.Errorf("size %d: bits %d not minimal", size, a.Bits())
		}
	}
}

func TestContinuousGetsBinaryHierarchy(t *testing.T) {
	a := NewContinuous("age", 0, 80, 16)
	if a.Hierarchy == nil {
		t.Fatal("power-of-two continuous attribute should get a hierarchy")
	}
	if a.Height() != 4 {
		t.Errorf("height = %d, want 4 (16, 8, 4, 2)", a.Height())
	}
	if a.SizeAt(3) != 2 {
		t.Errorf("SizeAt(3) = %d, want 2", a.SizeAt(3))
	}
	// Non-power-of-two bins: no hierarchy.
	b := NewContinuous("x", 0, 1, 10)
	if b.Hierarchy != nil {
		t.Error("10-bin attribute should have no automatic hierarchy")
	}
}

func TestLabelAndCode(t *testing.T) {
	a := NewCategorical("c", []string{"x", "y"})
	if a.Code("y") != 1 || a.Code("z") != -1 {
		t.Error("Code lookup wrong")
	}
	if a.Label(0) != "x" || a.Label(9) != "9" {
		t.Error("Label lookup wrong")
	}
}
