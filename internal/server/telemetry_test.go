package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"privbayes/internal/accountant"
	"privbayes/internal/core"
	"privbayes/internal/telemetry"
)

// scrape fetches GET /metrics and returns the exposition body.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMetricsEndpoint drives traffic through every instrumented layer —
// HTTP routes, a curator fit (ledger + WAL + pipeline phases), a
// synthesis stream, an exact query — then scrapes /metrics and checks
// the exposition spans them all: at least 12 families, with value-level
// spot checks per subsystem.
func TestMetricsEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	ledger, err := accountant.OpenWAL(filepath.Join(t.TempDir(), "ledger.wal"), 2.0,
		accountant.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer ledger.Close()
	_, c, _ := newTestServer(t, Config{Telemetry: reg, Ledger: ledger})
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	body, ct := fitForm(t, "survey", 0.5)
	if resp := postFit(t, c.BaseURL, "", body, ct); resp.StatusCode != http.StatusCreated {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("fit: %d %s", resp.StatusCode, raw)
	}
	seed := int64(5)
	stream, err := c.Synthesize(ctx, "fixture", SynthesizeRequest{N: 500, Seed: &seed})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, stream.Body); err != nil {
		t.Fatal(err)
	}
	stream.Close()
	if _, err := c.Query(ctx, "fixture", QueryRequest{
		Kind: "marginal", Attrs: []core.AttrRef{{Name: "color"}, {Name: "employed"}},
	}); err != nil {
		t.Fatal(err)
	}

	text := scrape(t, c.BaseURL)
	families := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			families[strings.Fields(rest)[0]] = true
		}
	}
	if len(families) < 12 {
		t.Errorf("exposition has %d families, want >= 12:\n%s", len(families), text)
	}
	// One representative family per subsystem: HTTP middleware, privacy
	// accountant, WAL, inference engine, fit pipeline, synthesis.
	for _, want := range []string{
		"privbayes_http_requests_total",
		"privbayes_http_request_duration_seconds",
		"privbayes_ledger_epsilon_spent",
		"privbayes_wal_appends_total",
		"privbayes_wal_fsync_duration_seconds",
		"privbayes_infer_factor_products_total",
		"privbayes_pipeline_phase_duration_seconds",
		"privbayes_synthesis_rows_total",
		"privbayes_worker_queue_depth",
	} {
		if !families[want] {
			t.Errorf("family %s missing from exposition", want)
		}
	}
	// Value-level spot checks, one per layer.
	for _, want := range []string{
		`privbayes_http_requests_total{route="healthz",class="2xx"} 1`,
		`privbayes_fits_total{outcome="created"} 1`,
		`privbayes_synthesis_rows_total 500`,
		`privbayes_ledger_epsilon_spent{dataset="survey"} 0.5`,
		`privbayes_queries_total{kind="marginal",outcome="ok"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The fit ran all three phases under the progress adapter.
	for _, phase := range []string{"network", "marginals", "sampling"} {
		if !strings.Contains(text, `privbayes_pipeline_phase_duration_seconds_count{phase="`+phase+`"}`) {
			t.Errorf("no %s phase observations in exposition", phase)
		}
	}
	// Engine work counters moved.
	snap := reg.Snapshot()
	if v, _ := snap["privbayes_infer_factor_products_total"].(float64); v <= 0 {
		t.Errorf("infer_factor_products_total = %v, want > 0", snap["privbayes_infer_factor_products_total"])
	}
	if v, _ := snap["privbayes_wal_appends_total"].(float64); v < 1 {
		t.Errorf("wal_appends_total = %v, want >= 1", snap["privbayes_wal_appends_total"])
	}
}

// TestShedMetricsAccounting pins the middleware's accounting of PR 7's
// load-shedding paths: a 503 from a full worker queue and a 429 from
// the per-dataset fit cap each land in privbayes_http_requests_shed_total
// under their route and code, and in the 4xx/5xx request classes.
func TestShedMetricsAccounting(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, c, _ := newTestServer(t, Config{
		Telemetry: reg, Ledger: accountant.New(10.0),
		MaxWorkers: 2, MaxQueueDepth: 1, MaxFitsPerDataset: 1,
	})
	ctx := context.Background()

	// Drain the worker budget, then park one request at the queue cap so
	// the next arrival sheds.
	_, release, err := s.workers.acquire(ctx, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	queuedErr := make(chan error, 1)
	go func() {
		resp, err := http.Get(c.BaseURL + "/models/fixture/synthesize?n=10&seed=1")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		queuedErr <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.workers.queueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never parked")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, err := http.Get(c.BaseURL + "/models/fixture/synthesize?n=10")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded synthesize: %d, want 503", resp.StatusCode)
	}

	// Occupy the dataset's only fit slot; the next fit gets 429.
	leave, ok := s.fits.enter("busy")
	if !ok {
		t.Fatal("fit gauge rejected the first entrant")
	}
	body, ct := fitForm(t, "busy", 0.5)
	if resp := postFit(t, c.BaseURL, "", body, ct); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("fit past per-dataset cap: %d, want 429", resp.StatusCode)
	}
	leave()
	release()
	if err := <-queuedErr; err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	shed, _ := snap["privbayes_http_requests_shed_total"].(map[string]any)
	if v, _ := shed["synthesize,503"].(float64); v != 1 {
		t.Errorf("shed{synthesize,503} = %v, want 1", shed["synthesize,503"])
	}
	if v, _ := shed["fit,429"].(float64); v != 1 {
		t.Errorf("shed{fit,429} = %v, want 1", shed["fit,429"])
	}
	requests, _ := snap["privbayes_http_requests_total"].(map[string]any)
	if v, _ := requests["synthesize,5xx"].(float64); v != 1 {
		t.Errorf("requests{synthesize,5xx} = %v, want 1", requests["synthesize,5xx"])
	}
	if v, _ := requests["fit,4xx"].(float64); v != 1 {
		t.Errorf("requests{fit,4xx} = %v, want 1", requests["fit,4xx"])
	}
}

// TestSynthesizeDeterministicWithTelemetry is the observability half of
// the determinism contract: with telemetry and structured logging fully
// enabled, a fixed-seed fit and a fixed-seed synthesis stream must be
// byte-identical to the same operations on an uninstrumented server.
// Metrics only read clocks and bump atomics; the moment one touches an
// RNG stream or reorders pipeline work, this test fails.
func TestSynthesizeDeterministicWithTelemetry(t *testing.T) {
	run := func(cfg Config) (stream, fitted []byte) {
		cfg.Ledger = accountant.New(2.0)
		cfg.MaxWorkers = 3
		_, c, _ := newTestServer(t, cfg)
		ctx := context.Background()

		seed := int64(42)
		st, err := c.Synthesize(ctx, "fixture", SynthesizeRequest{N: 20_000, Seed: &seed, Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		stream, err = io.ReadAll(st.Body)
		if err != nil {
			t.Fatal(err)
		}
		st.Close()

		// Fit through the full pipeline (seeded via fitForm), then stream
		// from the fitted model: identical bytes mean the instrumented fit
		// produced the identical model.
		body, ct := fitForm(t, "survey", 0.5, [2]string{"model_id", "fitted"})
		if resp := postFit(t, c.BaseURL, "", body, ct); resp.StatusCode != http.StatusCreated {
			raw, _ := io.ReadAll(resp.Body)
			t.Fatalf("fit: %d %s", resp.StatusCode, raw)
		}
		st, err = c.Synthesize(ctx, "fitted", SynthesizeRequest{N: 5_000, Seed: &seed})
		if err != nil {
			t.Fatal(err)
		}
		fitted, err = io.ReadAll(st.Body)
		if err != nil {
			t.Fatal(err)
		}
		st.Close()
		return stream, fitted
	}

	var logBuf bytes.Buffer
	logger, err := telemetry.NewLogger(&logBuf, "json", "debug")
	if err != nil {
		t.Fatal(err)
	}
	plainStream, plainFitted := run(Config{})
	instrStream, instrFitted := run(Config{Telemetry: telemetry.NewRegistry(), Logger: logger})

	if !bytes.Equal(plainStream, instrStream) {
		t.Error("fixed-seed synthesis stream differs with telemetry enabled")
	}
	if !bytes.Equal(plainFitted, instrFitted) {
		t.Error("fixed-seed fit+synthesize differs with telemetry enabled")
	}
	if logBuf.Len() == 0 {
		t.Error("instrumented server produced no log lines")
	}
}

// TestClientRetryLoggingAndAPIError pins the client's observability
// contract: every retry attempt is logged (status, backoff, Retry-After
// honored, the failing response's request ID), and non-2xx responses
// decode to *APIError so callers can extract the server's request ID
// for log correlation without parsing error strings.
func TestClientRetryLoggingAndAPIError(t *testing.T) {
	var hits int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		w.Header().Set(telemetry.RequestIDHeader, fmt.Sprintf("req-%d", hits))
		if hits < 3 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{"error": "overloaded"})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"models": []ModelMeta{}})
	}))
	defer ts.Close()

	var logBuf bytes.Buffer
	logger, err := telemetry.NewLogger(&logBuf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(ts.URL)
	c.Retry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	c.Logger = logger
	if _, err := c.Models(context.Background()); err != nil {
		t.Fatal(err)
	}
	if hits != 3 {
		t.Fatalf("server saw %d requests, want 3", hits)
	}
	var attempts []struct {
		Msg        string `json:"msg"`
		Attempt    int    `json:"attempt"`
		Status     int    `json:"status"`
		RequestID  string `json:"request_id"`
		RetryAfter string `json:"retry_after"`
	}
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var e struct {
			Msg        string `json:"msg"`
			Attempt    int    `json:"attempt"`
			Status     int    `json:"status"`
			RequestID  string `json:"request_id"`
			RetryAfter string `json:"retry_after"`
		}
		if json.Unmarshal([]byte(line), &e) == nil && e.Msg == "retrying request" {
			attempts = append(attempts, e)
		}
	}
	if len(attempts) != 2 {
		t.Fatalf("logged %d retry lines, want 2:\n%s", len(attempts), logBuf.String())
	}
	for i, a := range attempts {
		if a.Attempt != i+2 || a.Status != http.StatusServiceUnavailable ||
			a.RequestID != fmt.Sprintf("req-%d", i+1) || a.RetryAfter != "0" {
			t.Errorf("retry line %d = %+v", i, a)
		}
	}

	// A terminal failure surfaces as *APIError carrying the status, the
	// server's message, and its request ID — without changing the
	// historical error text.
	notFound := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(telemetry.RequestIDHeader, "req-404")
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "model not found"})
	}))
	defer notFound.Close()
	_, err = NewClient(notFound.URL).Model(context.Background(), "nope")
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %T %v, want *APIError", err, err)
	}
	if apiErr.StatusCode != http.StatusNotFound || apiErr.RequestID != "req-404" || apiErr.Message != "model not found" {
		t.Errorf("APIError = %+v", apiErr)
	}
	if want := "server: 404 Not Found: model not found"; apiErr.Error() != want {
		t.Errorf("APIError.Error() = %q, want %q", apiErr.Error(), want)
	}
}

// TestRequestIDPropagation pins the request-ID contract: a valid
// client-supplied ID is honored (echoed on the response and stamped on
// the request's log line); a missing or invalid one is replaced with a
// generated ID, never rejected.
func TestRequestIDPropagation(t *testing.T) {
	var logBuf bytes.Buffer
	logger, err := telemetry.NewLogger(&logBuf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	_, c, _ := newTestServer(t, Config{Logger: logger, Telemetry: telemetry.NewRegistry()})

	get := func(id string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, c.BaseURL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		if id != "" {
			req.Header.Set(telemetry.RequestIDHeader, id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Client-supplied IDs are honored verbatim.
	resp := get("trace-me-42")
	if got := resp.Header.Get(telemetry.RequestIDHeader); got != "trace-me-42" {
		t.Errorf("echoed ID = %q, want the client's trace-me-42", got)
	}
	// Absent or invalid IDs are replaced with generated, valid ones.
	resp = get("")
	generated := resp.Header.Get(telemetry.RequestIDHeader)
	if !telemetry.ValidRequestID(generated) {
		t.Errorf("generated ID %q is not valid", generated)
	}
	resp = get("bad id\twith spaces")
	if got := resp.Header.Get(telemetry.RequestIDHeader); got == "bad id\twith spaces" || !telemetry.ValidRequestID(got) {
		t.Errorf("invalid client ID echoed as %q, want a replacement", got)
	}

	// Every request logged one line carrying its request ID.
	var ids []string
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var entry struct {
			Msg       string `json:"msg"`
			RequestID string `json:"request_id"`
			Route     string `json:"route"`
		}
		if json.Unmarshal([]byte(line), &entry) == nil && entry.Msg == "request" {
			ids = append(ids, entry.RequestID)
			if entry.Route != "healthz" {
				t.Errorf("logged route = %q, want healthz", entry.Route)
			}
		}
	}
	if len(ids) != 3 {
		t.Fatalf("logged %d request lines, want 3:\n%s", len(ids), logBuf.String())
	}
	if ids[0] != "trace-me-42" {
		t.Errorf("logged ID = %q, want trace-me-42", ids[0])
	}
	if ids[1] != generated {
		t.Errorf("logged ID %q != echoed header %q", ids[1], generated)
	}
}
