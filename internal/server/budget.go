package server

import (
	"context"
	"errors"
	"sync"
)

// errOverloaded reports that the worker queue is full: the request was
// shed instead of queued. Handlers translate it to 503 + Retry-After.
var errOverloaded = errors.New("server overloaded: worker queue full")

// workerBudget is the server-wide sampling/fitting concurrency budget: a
// counting semaphore over worker slots shared by every in-flight
// request. Requests acquire slots for one compute burst at a time (one
// synthesis chunk, one fit) and release them before writing to the
// client, so a slow reader exerts back-pressure on its own response
// stream without pinning workers the rest of the fleet could use.
//
// Acquisition is all-at-once but elastic: a caller asking for `want`
// slots blocks only while the budget is empty, then takes
// min(want, available). Nothing ever holds a partial claim while
// waiting, so requests cannot deadlock against each other, and under
// load every request degrades toward 1 worker instead of queueing
// behind the largest ask.
type workerBudget struct {
	mu      sync.Mutex
	cond    *sync.Cond
	total   int
	avail   int
	waiting int // requests parked in acquire
	maxWait int // queue-depth cap; admission acquires beyond it shed
}

func newWorkerBudget(total, maxWait int) *workerBudget {
	if total < 1 {
		total = 1
	}
	if maxWait < 0 {
		maxWait = 0
	}
	b := &workerBudget{total: total, avail: total, maxWait: maxWait}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// acquire claims min(want, free) slots once at least one is free,
// blocking while the budget is empty. shed selects admission-control
// behavior: when true and the budget is empty with maxWait requests
// already parked, acquire returns errOverloaded immediately instead of
// queueing unboundedly — graceful degradation under overload. Requests
// already mid-stream pass shed=false: once admitted, they may park.
// The returned release must be called exactly once; it is nil when
// err != nil.
func (b *workerBudget) acquire(ctx context.Context, want int, shed bool) (got int, release func(), err error) {
	if want < 1 {
		want = 1
	}
	if want > b.total {
		want = b.total
	}
	// Wake waiters when the request is abandoned, so a cancelled client
	// does not sit in cond.Wait forever. The lock round-trip orders the
	// broadcast after the waiter has parked: without it a cancellation
	// firing between the waiter's ctx.Err() check and cond.Wait() would
	// be lost and the waiter would sleep until the next release.
	stop := context.AfterFunc(ctx, func() {
		b.mu.Lock()
		//lint:ignore SA2001 empty critical section orders the broadcast
		b.mu.Unlock()
		b.cond.Broadcast()
	})
	defer stop()

	// Grants come in units of at least two slots (budget permitting):
	// server-side sampling always runs the chunked parallel path, whose
	// determinism contract needs parallelism >= 2, and the floor keeps
	// the grant honest about those two goroutines. A total budget of 1
	// is the single exception — there the grant is 1 and the sampler
	// oversubscribes by one goroutine.
	floor := min(2, b.total)
	if want < floor {
		want = floor
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if shed && b.avail < floor && b.waiting >= b.maxWait {
		return 0, nil, errOverloaded
	}
	b.waiting++
	for b.avail < floor {
		if err := ctx.Err(); err != nil {
			b.waiting--
			return 0, nil, err
		}
		b.cond.Wait()
	}
	b.waiting--
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	got = min(want, b.avail)
	b.avail -= got
	var once sync.Once
	return got, func() {
		once.Do(func() {
			b.mu.Lock()
			b.avail += got
			b.mu.Unlock()
			b.cond.Broadcast()
		})
	}, nil
}

// available reports the free slots (for tests and /healthz).
func (b *workerBudget) available() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.avail
}

// queueDepth reports the parked requests (for /healthz and Retry-After
// estimates).
func (b *workerBudget) queueDepth() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.waiting
}
