package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"

	"privbayes/internal/core"
	"privbayes/internal/infer"
)

// QueryRequest is the body of POST /models/{id}/query — the wire form
// of the v2 query AST (core.Query) plus execution knobs. Kind is one of
// "marginal", "conditional", "prob" or "count".
type QueryRequest struct {
	Kind  string           `json:"kind"`
	Attrs []core.AttrRef   `json:"attrs,omitempty"`
	Where []core.Predicate `json:"where,omitempty"`
	// N scales a count answer: the expected count among N rows.
	N int `json:"n,omitempty"`
	// MaxCells bounds the intermediate inference factor; it is clamped
	// to the server's ceiling (core.DefaultInferenceCells), so clients
	// can only tighten the bound, never lift it.
	MaxCells int `json:"max_cells,omitempty"`
	// Parallelism asks for up to this many workers from the server's
	// budget; 0 accepts the server default.
	Parallelism int `json:"parallelism,omitempty"`
}

// queryKindFromWire maps a wire kind name to the AST discriminator.
func queryKindFromWire(kind string) (core.QueryKind, error) {
	switch kind {
	case "marginal":
		return core.QueryMarginal, nil
	case "conditional":
		return core.QueryConditional, nil
	case "prob":
		return core.QueryProb, nil
	case "count":
		return core.QueryCount, nil
	default:
		return 0, fmt.Errorf("unknown query kind %q (want marginal, conditional, prob or count)", kind)
	}
}

// handleQuery answers an exact query against a registered model through
// the variable-elimination engine (core.Model.Query) — no sampling, no
// privacy cost, since the model is the ε-DP release itself. Compile
// errors (unknown attributes, malformed ASTs) map to 400; queries that
// are well-formed but unanswerable — an over-cap intermediate factor,
// conditioning on zero-probability evidence — map to 422.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	model, meta, err := s.registry.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, statusFor(err), "%v", err)
		return
	}
	var req QueryRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request body: %v", err)
		return
	}
	kind, err := queryKindFromWire(req.Kind)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	q := core.Query{Kind: kind, Attrs: req.Attrs, Where: req.Where, N: req.N}
	// The cells bound is a memory guard: honor a client's tighter bound,
	// never a looser one.
	if req.MaxCells <= 0 || req.MaxCells > core.DefaultInferenceCells {
		req.MaxCells = core.DefaultInferenceCells
	}
	// Inference runs on workers from the shared budget, like synthesis,
	// and sheds under overload — a queued query only grows the client's
	// latency past its deadline anyway.
	got, release, err := s.workers.acquire(r.Context(), s.requestWorkers(req.Parallelism), true)
	if err != nil {
		if errors.Is(err, errOverloaded) {
			writeRetryAfter(w, http.StatusServiceUnavailable, s.retryAfterSeconds(),
				"server overloaded: worker queue full, retry later")
		}
		return // otherwise: client gone while waiting for workers
	}
	var stats infer.Stats
	res, err := model.Query(r.Context(), q,
		core.QueryMaxCells(req.MaxCells), core.QueryParallelism(got),
		core.QueryStats(&stats))
	release()
	s.metrics.noteQuery(req.Kind, stats, err)
	if err != nil {
		writeError(w, statusFor(err), "%v", err)
		return
	}
	w.Header().Set("X-Privbayes-Model", meta.ID)
	writeJSON(w, http.StatusOK, res)
}

// Query answers an exact query against a registered model (see
// core.Model.Query and POST /models/{id}/query).
func (c *Client) Query(ctx context.Context, id string, qr QueryRequest) (core.QueryResult, error) {
	body, err := json.Marshal(qr)
	if err != nil {
		return core.QueryResult{}, err
	}
	u := c.BaseURL + "/models/" + url.PathEscape(id) + "/query"
	resp, err := c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, strings.NewReader(string(body)))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		return core.QueryResult{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return core.QueryResult{}, apiError(resp)
	}
	defer resp.Body.Close()
	var out core.QueryResult
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}
