package server

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"

	"privbayes/internal/core"
)

// ModelMeta is the registry's public view of one model: identity plus
// the model's own introspection summary. Everything is derived from the
// ε-DP release, so listing it costs no privacy.
type ModelMeta struct {
	ID string `json:"id"`
	// Epsilon is the budget the model was fitted under (artifact
	// metadata; 0 when the artifact did not record it).
	Epsilon float64 `json:"epsilon"`
	// Source records where the model came from: "dir", "upload" or "fit".
	Source string `json:"source"`
	core.ModelInfo
}

// entry pairs the live model with its metadata.
type entry struct {
	meta  ModelMeta
	model *core.Model
}

// Registry is the concurrency-safe model store behind /models: models
// load from a directory at startup and arrive at runtime via upload or
// curator fits. Reads (serving) vastly outnumber writes, hence RWMutex.
type Registry struct {
	mu     sync.RWMutex
	models map[string]entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{models: map[string]entry{}}
}

// idPattern keeps model and dataset ids path- and URL-safe.
var idPattern = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

// ValidID reports whether s is usable as a model or dataset id.
func ValidID(s string) bool { return idPattern.MatchString(s) }

// ErrNotFound is returned for unknown model ids.
var ErrNotFound = errors.New("server: model not found")

// ErrExists is returned when an id is already registered.
var ErrExists = errors.New("server: model id already registered")

// LoadDir loads every *.json model artifact in dir (non-recursive),
// keyed by file basename, skipping any file whose absolute path is in
// exclude (the serving layer excludes its ledger file). Files that fail
// validation are skipped with their errors collected, so one corrupt
// artifact cannot keep the daemon from serving the rest.
func (r *Registry) LoadDir(dir string, exclude ...string) (loaded int, errs []error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return 0, []error{err}
	}
	sort.Strings(names)
	skip := make(map[string]bool, len(exclude))
	for _, e := range exclude {
		if e != "" {
			skip[e] = true
		}
	}
	for _, name := range names {
		if abs, err := filepath.Abs(name); err == nil && skip[abs] {
			continue
		}
		id := strings.TrimSuffix(filepath.Base(name), ".json")
		if !ValidID(id) {
			errs = append(errs, fmt.Errorf("server: %s: invalid model id %q", name, id))
			continue
		}
		f, err := os.Open(name)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		err = r.Add(id, "dir", f)
		f.Close()
		if err != nil {
			errs = append(errs, fmt.Errorf("server: %s: %w", name, err))
			continue
		}
		loaded++
	}
	return loaded, errs
}

// Add reads one SaveModel artifact and registers it. The artifact is
// fully revalidated (core.ReadModelJSON); malformed input returns an
// error wrapping core.ErrInvalidModel.
func (r *Registry) Add(id, source string, artifact io.Reader) error {
	if !ValidID(id) {
		return fmt.Errorf("server: invalid model id %q", id)
	}
	m, eps, err := core.ReadModelJSON(artifact)
	if err != nil {
		return err
	}
	return r.Put(id, source, m, eps)
}

// Put registers an already-validated model.
func (r *Registry) Put(id, source string, m *core.Model, epsilon float64) error {
	if !ValidID(id) {
		return fmt.Errorf("server: invalid model id %q", id)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.models[id]; dup {
		return fmt.Errorf("%w: %q", ErrExists, id)
	}
	r.models[id] = entry{
		meta:  ModelMeta{ID: id, Epsilon: epsilon, Source: source, ModelInfo: m.Info()},
		model: m,
	}
	return nil
}

// Get returns the model and its metadata.
func (r *Registry) Get(id string) (*core.Model, ModelMeta, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.models[id]
	if !ok {
		return nil, ModelMeta{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return e.model, e.meta, nil
}

// List returns metadata for every model, sorted by id.
func (r *Registry) List() []ModelMeta {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ModelMeta, 0, len(r.models))
	for _, e := range r.models {
		out = append(out, e.meta)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of registered models.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.models)
}
