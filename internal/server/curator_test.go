package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"privbayes/internal/accountant"
	"privbayes/internal/curator"
	"privbayes/internal/dataset"
)

// jsonlRows renders a dataset as the JSONL wire form of
// POST /datasets/{id}/rows: one object per row, keyed by attribute
// name, labels for categoricals and bin-center values for continuous.
func jsonlRows(t *testing.T, ds *dataset.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	attrs := ds.Attrs()
	obj := make(map[string]any, len(attrs))
	for i := 0; i < ds.N(); i++ {
		for c := range attrs {
			a := &attrs[c]
			if a.Kind == dataset.Continuous {
				obj[a.Name] = a.BinCenter(ds.Value(i, c))
			} else {
				obj[a.Name] = a.Label(ds.Value(i, c))
			}
		}
		b, err := json.Marshal(obj)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// wantStatus asserts err is an *APIError with the given HTTP status.
func wantStatus(t *testing.T, err error, code int) {
	t.Helper()
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("want *APIError with status %d, got %v", code, err)
	}
	if ae.StatusCode != code {
		t.Fatalf("status = %d (%s), want %d", ae.StatusCode, ae.Message, code)
	}
}

// TestCuratorEndToEnd drives the continuous-curation loop over HTTP:
// create a dataset, stream row batches in (with idempotent retries),
// watch the row trigger fire a budget-metered background refit, query
// the republished model, then append more and watch an incremental
// refit compose a second ε charge on the same ledger entry.
func TestCuratorEndToEnd(t *testing.T) {
	led := accountant.New(5)
	_, c, _ := newTestServer(t, Config{
		Ledger:              led,
		CuratorDir:          t.TempDir(),
		RefitEpsilon:        0.8,
		RefitRows:           500,
		CuratorPollInterval: 20 * time.Millisecond,
		FitChunkRows:        128,
	})
	ctx := context.Background()
	specs := SpecsFromAttrs(testSchema())

	st, err := c.CreateDataset(ctx, "stream", specs)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "stream" || st.Rows != 0 {
		t.Fatalf("created status = %+v", st)
	}
	_, err = c.CreateDataset(ctx, "stream", specs)
	wantStatus(t, err, http.StatusConflict)
	_, err = c.DatasetStatus(ctx, "nope")
	wantStatus(t, err, http.StatusNotFound)
	_, err = c.AppendRows(ctx, "nope", "", bytes.NewReader(jsonlRows(t, testData(1, 1))))
	wantStatus(t, err, http.StatusNotFound)

	// Batch b1: 300 rows, below the 500-row refit trigger.
	b1 := jsonlRows(t, testData(300, 1))
	res, err := c.AppendRows(ctx, "stream", "b1", bytes.NewReader(b1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 300 || res.Duplicate || res.TotalRows != 300 {
		t.Fatalf("append b1 = %+v", res)
	}
	// Replaying an acknowledged key is a no-op — the retry contract.
	res, err = c.AppendRows(ctx, "stream", "b1", bytes.NewReader(b1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Duplicate || res.TotalRows != 300 {
		t.Fatalf("replay b1 = %+v", res)
	}
	// Malformed rows reject whole-batch, before any acknowledgement.
	_, err = c.AppendRows(ctx, "stream", "bad",
		bytes.NewReader([]byte(`{"color":"mauve","age":30,"employed":"no"}`+"\n")))
	wantStatus(t, err, http.StatusBadRequest)
	if st, _ := c.DatasetStatus(ctx, "stream"); st.Rows != 300 {
		t.Fatalf("rows after rejected batch = %d", st.Rows)
	}

	// Batch b2 crosses the row trigger: 600 total ≥ 500.
	if _, err := c.AppendRows(ctx, "stream", "b2", bytes.NewReader(jsonlRows(t, testData(300, 2)))); err != nil {
		t.Fatal(err)
	}
	st = waitForModel(t, c, "stream", "stream-refit-600")
	if st.FitKind != "cold" || st.FitRows != 600 || st.FitEpsilon != 0.8 {
		t.Fatalf("first refit status = %+v", st)
	}
	if got := led.Get("stream").Spent; got != 0.8 {
		t.Fatalf("ε after first refit = %g, want 0.8", got)
	}

	// The republished model serves synthesis like any registered model.
	seed := int64(3)
	stream, err := c.Synthesize(ctx, "stream-refit-600", SynthesizeRequest{N: 50, Seed: &seed})
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		rows++
	}
	stream.Close()
	if rows != 51 { // header + 50 rows
		t.Fatalf("synthesized %d lines, want 51", rows)
	}

	// Another 600 rows re-arm the trigger; this refit is incremental
	// (maintained count store, no rescan) and composes ε on the ledger.
	if _, err := c.AppendRows(ctx, "stream", "b3", bytes.NewReader(jsonlRows(t, testData(600, 4)))); err != nil {
		t.Fatal(err)
	}
	st = waitForModel(t, c, "stream", "stream-refit-1200")
	if st.FitKind != "incremental" || st.FitRows != 1200 {
		t.Fatalf("second refit status = %+v", st)
	}
	if got := led.Get("stream").Spent; got != 1.6 {
		t.Fatalf("ε after second refit = %g, want 1.6", got)
	}
	if st.EpsilonSpent != 1.6 || st.EpsilonBudget != 5 {
		t.Fatalf("status ledger fields = %+v", st)
	}

	list, err := c.Datasets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != "stream" || list[0].Rows != 1200 {
		t.Fatalf("datasets list = %+v", list)
	}
}

// waitForModel polls dataset status until the given refit model is
// published and the refit worker has settled.
func waitForModel(t *testing.T, c *Client, id, modelID string) curator.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.DatasetStatus(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.ModelID == modelID && !st.Refitting {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	st, _ := c.DatasetStatus(context.Background(), id)
	t.Fatalf("timed out waiting for %s on %s; status = %+v", modelID, id, st)
	return curator.Status{}
}

// TestCuratorDisabled checks the /datasets surface degrades cleanly
// when the server runs without a curator directory.
func TestCuratorDisabled(t *testing.T) {
	_, c, _ := newTestServer(t, Config{})
	_, err := c.Datasets(context.Background())
	wantStatus(t, err, http.StatusServiceUnavailable)
	_, err = c.CreateDataset(context.Background(), "x", SpecsFromAttrs(testSchema()))
	wantStatus(t, err, http.StatusServiceUnavailable)
}

// TestFitEndToEndBoundedMemory is the serving-side acceptance bound of
// the out-of-core fit path: POST /fit spools the upload to disk and
// fits it in chunk-sized scans, so whole-process peak heap during a
// large fit stays bounded by the chunk size, not the row count. The
// watcher samples heap throughout; materializing the columns alone
// would hold n*d*2 bytes live, and the old ReadCSV path roughly
// doubled that.
func TestFitEndToEndBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("large fit in -short mode")
	}
	const n = 1_000_000
	const d = 6
	specs := make([]AttrSpec, d)
	for i := range specs {
		specs[i] = AttrSpec{Name: fmt.Sprintf("a%d", i), Kind: "categorical", Labels: []string{"0", "1"}}
	}
	path := filepath.Join(t.TempDir(), "big.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	fmt.Fprintln(w, "a0,a1,a2,a3,a4,a5")
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		a := rng.Intn(2)
		b := a
		if rng.Float64() < 0.1 {
			b = 1 - a
		}
		fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d\n", a, b, rng.Intn(2), rng.Intn(2), rng.Intn(2), rng.Intn(2))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	_, c, _ := newTestServer(t, Config{
		Ledger:       accountant.New(10),
		FitChunkRows: 8192,
	})

	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	var peak atomic.Uint64
	done := make(chan struct{})
	go func() {
		var ms runtime.MemStats
		for {
			select {
			case <-done:
				return
			default:
			}
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak.Load() {
				peak.Store(ms.HeapAlloc)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	data, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer data.Close()
	seed := int64(7)
	meta, err := c.Fit(context.Background(), FitRequest{
		DatasetID: "big",
		Epsilon:   1,
		ModelID:   "big-v1",
		Seed:      &seed,
		Schema:    specs,
		Data:      data,
	})
	close(done)
	if err != nil {
		t.Fatal(err)
	}
	if meta.ID != "big-v1" || len(meta.Network) != d {
		t.Fatalf("fit meta = %+v", meta)
	}

	const materialized = n * d * 2 // uint16 columns
	growth := int64(peak.Load()) - int64(base.HeapAlloc)
	t.Logf("heap growth during served fit: %.1f MiB (materialized would be %.1f MiB)",
		float64(growth)/(1<<20), float64(materialized)/(1<<20))
	if growth > materialized/2 {
		t.Fatalf("served fit heap growth %d exceeds %d (half the materialized dataset); out-of-core path not bounding memory",
			growth, materialized/2)
	}
}
