package server

import (
	"errors"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"privbayes"
	"privbayes/internal/infer"
	"privbayes/internal/telemetry"
)

// serverMetrics is the daemon's metric catalog. Built from
// Config.Telemetry; with a nil registry every field is a nil metric
// whose methods no-op, so the instrumented code path is identical with
// telemetry on and off — the determinism contract cannot be perturbed
// by an untested branch.
type serverMetrics struct {
	reg *telemetry.Registry

	requests      *telemetry.CounterVec   // by route and status class
	inFlight      *telemetry.Gauge        // requests currently being served
	latency       *telemetry.HistogramVec // request wall time by route
	responseBytes *telemetry.CounterVec   // response body bytes by route
	shed          *telemetry.CounterVec   // load-shedding responses by route and code

	pipelinePhase *telemetry.HistogramVec // fit/synthesis phase durations
	fits          *telemetry.CounterVec   // completed fits by outcome
	synthRows     *telemetry.Counter      // synthetic rows streamed

	queries        *telemetry.CounterVec // exact queries by kind and outcome
	queryProducts  *telemetry.Counter    // factor products across all queries
	queryPeakCells *telemetry.Histogram  // per-query peak factor size
	queryRejected  *telemetry.Counter    // queries over the cell cap
}

// newServerMetrics registers the server's metric families and the
// gauge funcs that read live server state at scrape time. A nil
// registry yields a catalog of no-op metrics.
func newServerMetrics(reg *telemetry.Registry, s *Server) *serverMetrics {
	m := &serverMetrics{
		reg: reg,
		requests: reg.CounterVec("privbayes_http_requests_total",
			"HTTP requests served, by route and status class.", "route", "class"),
		inFlight: reg.Gauge("privbayes_http_requests_in_flight",
			"Requests currently being served."),
		latency: reg.HistogramVec("privbayes_http_request_duration_seconds",
			"Request wall time by route.", nil, "route"),
		responseBytes: reg.CounterVec("privbayes_http_response_bytes_total",
			"Response body bytes written, by route.", "route"),
		shed: reg.CounterVec("privbayes_http_requests_shed_total",
			"Requests turned away by load shedding (429 per-dataset fit cap, 503 queue full), by route and status code.",
			"route", "code"),
		pipelinePhase: reg.HistogramVec("privbayes_pipeline_phase_duration_seconds",
			"Pipeline phase durations: network and marginals per fit, sampling per synthesis chunk.",
			nil, "phase"),
		fits: reg.CounterVec("privbayes_fits_total",
			"Curator fits by outcome: created, replayed (idempotent), or failed.", "outcome"),
		synthRows: reg.Counter("privbayes_synthesis_rows_total",
			"Synthetic rows streamed to clients."),
		queries: reg.CounterVec("privbayes_queries_total",
			"Exact inference queries by kind and outcome.", "kind", "outcome"),
		queryProducts: reg.Counter("privbayes_infer_factor_products_total",
			"Factor products performed by the variable-elimination engine."),
		queryPeakCells: reg.Histogram("privbayes_infer_peak_cells",
			"Per-query peak materialized factor size, in cells.",
			telemetry.ExponentialBuckets(64, 4, 12)),
		queryRejected: reg.Counter("privbayes_queries_rejected_total",
			"Queries rejected because an intermediate factor would exceed the cell cap."),
	}
	reg.GaugeFunc("privbayes_worker_queue_depth",
		"Requests waiting for worker slots; sheds past the configured cap.",
		func() float64 { return float64(s.workers.queueDepth()) })
	reg.GaugeFunc("privbayes_workers_available",
		"Worker slots currently free in the server-wide budget.",
		func() float64 { return float64(s.workers.available()) })
	reg.GaugeFunc("privbayes_workers_total",
		"Size of the server-wide worker budget.",
		func() float64 { return float64(s.workers.total) })
	reg.GaugeFunc("privbayes_models_registered",
		"Models currently in the registry.",
		func() float64 { return float64(s.registry.Len()) })
	return m
}

// enabled reports whether a real registry backs the catalog; seams that
// would otherwise pay for timers (progress adapters, clock reads on the
// synthesize hot loop) check it once per request.
func (m *serverMetrics) enabled() bool { return m.reg != nil }

// noteQuery records one exact-inference query: kind/outcome counts,
// engine work counters, and cell-cap rejections.
func (m *serverMetrics) noteQuery(kind string, stats infer.Stats, err error) {
	outcome := "ok"
	switch {
	case err == nil:
	case errors.Is(err, infer.ErrTooLarge):
		outcome = "rejected"
		m.queryRejected.Inc()
	default:
		outcome = "error"
	}
	m.queries.With(kind, outcome).Inc()
	if stats.Products > 0 {
		m.queryProducts.Add(float64(stats.Products))
	}
	if stats.PeakCells > 0 {
		m.queryPeakCells.Observe(float64(stats.PeakCells))
	}
}

// phaseTimer adapts the fit pipeline's serialized progress events into
// per-phase duration observations. Events arrive one at a time (the
// core progressSink holds a mutex across delivery), so no locking is
// needed here, and the adapter only reads the clock — it never touches
// RNG streams or reorders pipeline work.
type phaseTimer struct {
	m       *serverMetrics
	current privbayes.Phase
	started bool
	t0      time.Time
}

func (pt *phaseTimer) observe(ev privbayes.Progress) {
	if pt.started && ev.Phase != pt.current {
		pt.m.pipelinePhase.With(pt.current.String()).Observe(time.Since(pt.t0).Seconds())
		pt.started = false
	}
	if !pt.started {
		pt.current, pt.started, pt.t0 = ev.Phase, true, time.Now()
	}
	if ev.Done >= ev.Total && ev.Total > 0 {
		pt.m.pipelinePhase.With(pt.current.String()).Observe(time.Since(pt.t0).Seconds())
		pt.started = false
	}
}

// statusClass buckets an HTTP status for the requests counter.
func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// statusRecorder observes the status code and body size a handler
// produces. It forwards Flush so the synthesize stream keeps its
// chunk-by-chunk delivery, and Unwrap so http.ResponseController and
// interface probes reach the underlying writer.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// status returns the response code, defaulting to 200 for handlers
// that never wrote (a streamed response aborted before headers reports
// whatever was committed).
func (r *statusRecorder) status() int {
	if r.code == 0 {
		return http.StatusOK
	}
	return r.code
}

// instrument wraps a handler with the telemetry middleware: request-ID
// propagation (accepted from a valid client header, generated
// otherwise, echoed on the response and carried in the context for
// every log line the request produces), per-route metrics, and one
// structured log line per request. Route names are fixed strings, not
// request paths, so metric label cardinality is bounded by the route
// table.
func (s *Server) instrument(route string, h http.Handler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get(telemetry.RequestIDHeader)
		if !telemetry.ValidRequestID(reqID) {
			// Request IDs come from crypto/rand, never from any seeded
			// stream a fit or synthesis draws on.
			reqID = telemetry.NewRequestID()
		}
		w.Header().Set(telemetry.RequestIDHeader, reqID)
		r = r.WithContext(telemetry.WithRequestID(r.Context(), reqID))

		m := s.metrics
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		m.inFlight.Inc()
		h.ServeHTTP(rec, r)
		m.inFlight.Dec()
		elapsed := time.Since(start)

		status := rec.status()
		m.requests.With(route, statusClass(status)).Inc()
		m.latency.With(route).Observe(elapsed.Seconds())
		m.responseBytes.With(route).Add(float64(rec.bytes))
		if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
			m.shed.With(route, strconv.Itoa(status)).Inc()
		}

		s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("request_id", reqID),
			slog.String("method", r.Method),
			slog.String("route", route),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Int64("bytes", rec.bytes),
			slog.Duration("duration", elapsed),
		)
	}
}
