package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"privbayes/internal/accountant"
	"privbayes/internal/faultfs"
)

// fitForm builds the standard fit form for the robustness tests.
func fitForm(t *testing.T, datasetID string, epsilon float64, extra ...[2]string) (io.Reader, string) {
	t.Helper()
	schema, err := json.Marshal(SpecsFromAttrs(testSchema()))
	if err != nil {
		t.Fatal(err)
	}
	fields := [][2]string{
		{"dataset_id", datasetID},
		{"epsilon", fmt.Sprintf("%g", epsilon)},
		{"schema", string(schema)},
		{"seed", "7"},
	}
	fields = append(fields, extra...)
	fields = append(fields, [2]string{"data", string(fitCSV(t, testData(1500, 3)))})
	return multipartBody(t, fields)
}

// postFit sends one raw fit request with an optional Idempotency-Key.
func postFit(t *testing.T, base, key string, body io.Reader, contentType string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/fit", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestFitIdempotencyKey is the exactly-once contract for retried fits:
// replaying a keyed fit must spend no additional ε and return the model
// the first attempt produced; reusing the key with different parameters
// must be rejected, not silently honored.
func TestFitIdempotencyKey(t *testing.T) {
	ledger := accountant.New(1.0)
	_, c, _ := newTestServer(t, Config{Ledger: ledger})

	body, ct := fitForm(t, "survey", 0.6)
	resp := postFit(t, c.BaseURL, "retry-key-1", body, ct)
	if resp.StatusCode != http.StatusCreated {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("first keyed fit: %d %s", resp.StatusCode, raw)
	}
	var first ModelMeta
	if err := json.NewDecoder(resp.Body).Decode(&first); err != nil {
		t.Fatal(err)
	}

	// The retry — the ambiguous-failure case: the client never saw the
	// 201 and resends the identical request.
	body, ct = fitForm(t, "survey", 0.6)
	resp = postFit(t, c.BaseURL, "retry-key-1", body, ct)
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("retried keyed fit: %d %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("X-Privbayes-Idempotency-Replay") != "true" {
		t.Error("retry not marked as a replay")
	}
	var second ModelMeta
	if err := json.NewDecoder(resp.Body).Decode(&second); err != nil {
		t.Fatal(err)
	}
	if second.ID != first.ID {
		t.Errorf("retry returned model %q, first attempt made %q", second.ID, first.ID)
	}
	if spent := ledger.Get("survey").Spent; math.Abs(spent-0.6) > 1e-12 {
		t.Errorf("retried fit changed the spend: %g, want 0.6", spent)
	}

	// Same key, different ε: a client bug, not a retry.
	body, ct = fitForm(t, "survey", 0.3)
	resp = postFit(t, c.BaseURL, "retry-key-1", body, ct)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("key reuse with different ε: %d, want 409", resp.StatusCode)
	}
	if spent := ledger.Get("survey").Spent; math.Abs(spent-0.6) > 1e-12 {
		t.Errorf("rejected key reuse changed the spend: %g", spent)
	}
}

// TestFitIdempotentCompletionAfterCharge covers the crash window the
// WAL leaves open: the charge committed durably but the process died
// before the model was fitted. The retried request must find the
// recorded charge, finish the fit under the already-recorded model id,
// and spend nothing more.
func TestFitIdempotentCompletionAfterCharge(t *testing.T) {
	ledger := accountant.New(1.0)
	_, c, _ := newTestServer(t, Config{Ledger: ledger})

	// Simulate the interrupted first attempt: charge recorded, no model.
	if _, _, err := ledger.ChargeIdempotent("survey", 0.5, "crash-key", "survey-m1"); err != nil {
		t.Fatal(err)
	}

	body, ct := fitForm(t, "survey", 0.5)
	resp := postFit(t, c.BaseURL, "crash-key", body, ct)
	if resp.StatusCode != http.StatusCreated {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("completion fit: %d %s", resp.StatusCode, raw)
	}
	var meta ModelMeta
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	if meta.ID != "survey-m1" {
		t.Errorf("completed fit under id %q, want the recorded survey-m1", meta.ID)
	}
	if spent := ledger.Get("survey").Spent; math.Abs(spent-0.5) > 1e-12 {
		t.Errorf("completion charged again: spent %g, want 0.5", spent)
	}
	// And now the finished fit replays.
	body, ct = fitForm(t, "survey", 0.5)
	resp = postFit(t, c.BaseURL, "crash-key", body, ct)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("replay after completion: %d, want 200", resp.StatusCode)
	}
}

// TestFitPerDatasetCap: concurrent fits against one dataset past the
// cap are turned away with 429 + Retry-After before any ε is charged.
func TestFitPerDatasetCap(t *testing.T) {
	ledger := accountant.New(10.0)
	s, c, _ := newTestServer(t, Config{Ledger: ledger, MaxFitsPerDataset: 1})

	// Occupy the dataset's only fit slot.
	leave, ok := s.fits.enter("busy")
	if !ok {
		t.Fatal("gauge rejected the first entrant")
	}
	defer leave()

	body, ct := fitForm(t, "busy", 0.5)
	resp := postFit(t, c.BaseURL, "", body, ct)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("fit past the per-dataset cap: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if spent := ledger.Get("busy").Spent; spent != 0 {
		t.Errorf("shed fit charged the ledger: %g", spent)
	}

	// A different dataset is unaffected.
	body, ct = fitForm(t, "other", 0.5)
	resp = postFit(t, c.BaseURL, "", body, ct)
	if resp.StatusCode != http.StatusCreated {
		raw, _ := io.ReadAll(resp.Body)
		t.Errorf("fit for uncontended dataset: %d %s", resp.StatusCode, raw)
	}

	// Releasing the slot reopens the dataset.
	leave()
	body, ct = fitForm(t, "busy", 0.5)
	resp = postFit(t, c.BaseURL, "", body, ct)
	if resp.StatusCode != http.StatusCreated {
		raw, _ := io.ReadAll(resp.Body)
		t.Errorf("fit after the slot freed: %d %s", resp.StatusCode, raw)
	}
}

// TestOverloadSheds: with the worker budget drained and the wait queue
// at its cap, synthesize and query requests are shed with 503 +
// Retry-After instead of queueing, and admitted work is unaffected.
func TestOverloadSheds(t *testing.T) {
	s, c, _ := newTestServer(t, Config{MaxWorkers: 2, MaxQueueDepth: 1})
	ctx := context.Background()

	// Drain the budget, then park one request at the queue cap.
	_, release, err := s.workers.acquire(ctx, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	queuedErr := make(chan error, 1)
	go func() {
		stream, err := c.Synthesize(ctx, "fixture", SynthesizeRequest{N: 10})
		if err == nil {
			_, err = io.ReadAll(stream.Body)
			stream.Close()
		}
		queuedErr <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.workers.queueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never parked")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The next arrival is shed.
	resp, err := http.Get(c.BaseURL + "/models/fixture/synthesize?n=10")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("synthesize under overload: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}

	// Queries shed under the same pressure.
	qresp, err := http.Post(c.BaseURL+"/models/fixture/query", "application/json",
		strings.NewReader(`{"kind":"marginal","attrs":[{"name":"color"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	qresp.Body.Close()
	if qresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("query under overload: %d, want 503", qresp.StatusCode)
	}

	// Releasing the budget lets the parked request finish normally.
	release()
	if err := <-queuedErr; err != nil {
		t.Errorf("queued request failed after the budget freed: %v", err)
	}
}

// TestPersistAtomicUnderFaults sweeps a fault through every mutating
// filesystem op of the model-artifact write: after any single failure
// or crash, the artifact path holds either nothing or a complete, valid
// document — never a torn file — and no temp litter survives a restart.
func TestPersistAtomicUnderFaults(t *testing.T) {
	m := fitTestModel(t)

	// Size the sweep against a passthrough run.
	probe := faultfs.NewFault(nil)
	dir := t.TempDir()
	s := &Server{cfg: Config{ModelsDir: dir}, fs: probe}
	path := filepath.Join(dir, "m.json")
	if err := s.atomicWriteModel(path, m, 0.5); err != nil {
		t.Fatal(err)
	}
	total := probe.Ops()
	if total < 5 {
		t.Fatalf("expected >= 5 mutating ops in an atomic write, saw %d", total)
	}

	check := func(t *testing.T, dir, path string) {
		t.Helper()
		if raw, err := os.ReadFile(path); err == nil {
			// Present must mean complete: it round-trips through full
			// validation.
			r := NewRegistry()
			if err := r.Add("m", "dir", strings.NewReader(string(raw))); err != nil {
				t.Errorf("artifact present but torn: %v", err)
			}
		} else if !os.IsNotExist(err) {
			t.Fatal(err)
		}
		// Whatever temp litter the failure left, a restarting server
		// sweeps it and loads the directory cleanly.
		s2, err := New(Config{ModelsDir: dir})
		if err != nil {
			t.Fatalf("restart over faulted dir: %v", err)
		}
		_ = s2
		if stale, _ := filepath.Glob(filepath.Join(dir, "*.tmp-*")); len(stale) != 0 {
			t.Errorf("stale temp files survived restart: %v", stale)
		}
	}

	for n := int64(1); n <= total; n++ {
		t.Run(fmt.Sprintf("fail-op-%d", n), func(t *testing.T) {
			fault := faultfs.NewFault(nil)
			fault.FailAt(n, nil)
			dir := t.TempDir()
			s := &Server{cfg: Config{ModelsDir: dir}, fs: fault}
			path := filepath.Join(dir, "m.json")
			err := s.atomicWriteModel(path, m, 0.5)
			if n < total && err == nil {
				t.Fatalf("fault at op %d did not surface", n)
			}
			check(t, dir, path)
		})
		t.Run(fmt.Sprintf("crash-op-%d", n), func(t *testing.T) {
			fault := faultfs.NewFault(nil)
			fault.CrashAt(n, true)
			dir := t.TempDir()
			s := &Server{cfg: Config{ModelsDir: dir}, fs: fault}
			path := filepath.Join(dir, "m.json")
			if err := s.atomicWriteModel(path, m, 0.5); err == nil {
				t.Fatalf("crash at op %d did not surface", n)
			}
			check(t, dir, path)
		})
	}
}

// TestHealthReportsQueueDepth: /healthz exposes the load-shedding
// signal operators alert on.
func TestHealthReportsQueueDepth(t *testing.T) {
	_, c, _ := newTestServer(t, Config{})
	resp, err := http.Get(c.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if _, ok := body["queue_depth"]; !ok {
		t.Errorf("healthz missing queue_depth: %v", body)
	}
}
