package server

import (
	"context"
	"testing"

	"privbayes/internal/core"
)

// TestQueryEndpointMarginal: the v2 query endpoint agrees bit for bit
// with the v1 marginal endpoint and with in-process inference — all
// three are the same engine.
func TestQueryEndpointMarginal(t *testing.T) {
	_, c, m := newTestServer(t, Config{})
	ctx := context.Background()

	res, err := c.Query(ctx, "fixture", QueryRequest{
		Kind:  "marginal",
		Attrs: []core.AttrRef{{Name: "color"}, {Name: "employed"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "marginal" || len(res.Dims) != 2 {
		t.Fatalf("result = %+v", res)
	}
	want, err := m.InferMarginal([]int{0, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.P) != len(want.P) {
		t.Fatalf("%d cells, want %d", len(res.P), len(want.P))
	}
	for i := range want.P {
		if res.P[i] != want.P[i] {
			t.Fatalf("cell %d: query %v, InferMarginal %v", i, res.P[i], want.P[i])
		}
	}
	v1, err := c.Marginal(ctx, "fixture", []string{"color", "employed"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.P {
		if v1.P[i] != res.P[i] {
			t.Fatalf("cell %d: /marginal %v, /query %v", i, v1.P[i], res.P[i])
		}
	}
}

// TestQueryEndpointConditional: conditional, prob and count answers
// match in-process Model.Query.
func TestQueryEndpointConditional(t *testing.T) {
	_, c, m := newTestServer(t, Config{})
	ctx := context.Background()

	res, err := c.Query(ctx, "fixture", QueryRequest{
		Kind:  "conditional",
		Attrs: []core.AttrRef{{Name: "employed"}},
		Where: []core.Predicate{core.Eq("color", "red")},
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Query(ctx, core.Conditional([]string{"employed"}, core.Eq("color", "red")))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.P {
		if res.P[i] != want.P[i] {
			t.Fatalf("cell %d: server %v, local %v", i, res.P[i], want.P[i])
		}
	}

	prob, err := c.Query(ctx, "fixture", QueryRequest{
		Kind:  "prob",
		Where: []core.Predicate{core.In("color", "red", "blue"), core.Eq("employed", "yes")},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantP, err := m.Query(ctx, core.Prob(core.In("color", "red", "blue"), core.Eq("employed", "yes")))
	if err != nil {
		t.Fatal(err)
	}
	if prob.Value != wantP.Value {
		t.Fatalf("prob = %v, want %v", prob.Value, wantP.Value)
	}

	count, err := c.Query(ctx, "fixture", QueryRequest{
		Kind:  "count",
		N:     10_000,
		Where: []core.Predicate{core.Eq("employed", "yes")},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantC, err := m.Query(ctx, core.Count(10_000, core.Eq("employed", "yes")))
	if err != nil {
		t.Fatal(err)
	}
	if count.Value != wantC.Value {
		t.Fatalf("count = %v, want %v", count.Value, wantC.Value)
	}
}

// TestQueryEndpointRollup: taxonomy-level rollup works over the wire
// (age carries the automatic binary hierarchy of continuous columns).
func TestQueryEndpointRollup(t *testing.T) {
	_, c, m := newTestServer(t, Config{})
	ctx := context.Background()

	raw, err := c.Query(ctx, "fixture", QueryRequest{
		Kind:  "marginal",
		Attrs: []core.AttrRef{{Name: "age"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rolled, err := c.Query(ctx, "fixture", QueryRequest{
		Kind:  "marginal",
		Attrs: []core.AttrRef{{Name: "age", Level: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rolled.P) >= len(raw.P) || rolled.Levels[0] != 1 {
		t.Fatalf("rollup did not shrink the domain: raw %d cells, level 1 %d cells", len(raw.P), len(rolled.P))
	}
	var ai int
	for i := range m.Attrs {
		if m.Attrs[i].Name == "age" {
			ai = i
		}
	}
	want := make([]float64, len(rolled.P))
	for code, p := range raw.P {
		want[m.Attrs[ai].Generalize(1, code)] += p
	}
	for i := range want {
		if diff := rolled.P[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("level-1 cell %d: got %v, want %v", i, rolled.P[i], want[i])
		}
	}
}
