package server

import (
	"net/http"
	"strconv"
	"sync"
)

// Defaults for the overload-protection knobs.
const (
	// DefaultMaxQueueDepth is the number of requests allowed to wait
	// for worker slots before new arrivals are shed with 503.
	DefaultMaxQueueDepth = 64
	// DefaultMaxFitsPerDataset caps concurrent curator fits per dataset
	// id; excess fits are rejected with 429. Fits against one dataset
	// contend for the same ε budget, so letting them pile up mostly
	// manufactures budget-rejection races.
	DefaultMaxFitsPerDataset = 2
)

// writeRetryAfter writes an error response with a Retry-After hint —
// the contract for 429 (per-dataset pressure) and 503 (server-wide
// overload), which Client honors when backing off.
func writeRetryAfter(w http.ResponseWriter, status, seconds int, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(seconds))
	writeError(w, status, format, args...)
}

// retryAfterSeconds estimates how long a shed client should wait before
// retrying: one second plus a second per queued request ahead of it,
// capped so clients never park for minutes on a stale hint.
func (s *Server) retryAfterSeconds() int {
	const cap = 30
	sec := 1 + s.workers.queueDepth()
	if sec > cap {
		return cap
	}
	return sec
}

// inflightGauge counts concurrent operations per key (dataset id) and
// rejects new ones past a cap. It is a load-shedding guard, not a
// queue: callers that cannot enter are told to retry later.
type inflightGauge struct {
	mu  sync.Mutex
	cap int
	m   map[string]int
}

func newInflightGauge(cap int) *inflightGauge {
	if cap < 1 {
		cap = 1
	}
	return &inflightGauge{cap: cap, m: map[string]int{}}
}

// enter claims a slot for key. ok=false means the per-key cap is
// reached; on ok=true the returned leave must be called exactly once.
func (g *inflightGauge) enter(key string) (leave func(), ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m[key] >= g.cap {
		return nil, false
	}
	g.m[key]++
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			defer g.mu.Unlock()
			if g.m[key] <= 1 {
				delete(g.m, key)
			} else {
				g.m[key]--
			}
		})
	}, true
}
