package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"mime/multipart"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"privbayes/internal/accountant"
	"privbayes/internal/curator"
	"privbayes/internal/telemetry"
)

// Client talks to a privbayesd instance. It is the programmatic
// counterpart of the HTTP API: examples, the serving benchmarks, and
// downstream Go consumers use it instead of hand-rolled requests.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8131".
	BaseURL string
	// HTTP is the underlying client; nil selects http.DefaultClient.
	HTTP *http.Client
	// Retry is the backoff policy for transient failures (network
	// errors, 429/502/503/504). The zero value disables retries; see
	// DefaultRetryPolicy. Requests whose bodies cannot be replayed
	// (non-seekable uploads) are never retried regardless of policy.
	Retry RetryPolicy
	// Logger, when non-nil, receives one structured line per retry
	// attempt: the failure being retried (status or transport error),
	// the backoff chosen, and any server Retry-After hint. Nil keeps
	// the client silent.
	Logger *slog.Logger
}

// NewClient returns a client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// APIError is a decoded non-2xx server response. Error() keeps the
// historical "server: <status>[: <message>]" text; the fields expose
// what the text flattens — in particular RequestID, the server's
// X-Privbayes-Request-Id echo, which is the handle to grep the
// daemon's logs for the exact request that failed. Unwrap with
// errors.As:
//
//	var apiErr *server.APIError
//	if errors.As(err, &apiErr) { correlate(apiErr.RequestID) }
type APIError struct {
	// StatusCode is the numeric HTTP status, e.g. 429.
	StatusCode int
	// Status is the full status line, e.g. "429 Too Many Requests".
	Status string
	// Message is the server's error body, when it sent one.
	Message string
	// RequestID is the X-Privbayes-Request-Id the daemon assigned (or
	// accepted) for the failed request; empty when talking to servers
	// that predate request IDs.
	RequestID string
}

func (e *APIError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("server: %s: %s", e.Status, e.Message)
	}
	return fmt.Sprintf("server: %s", e.Status)
}

// apiError decodes a non-2xx response into an *APIError.
func apiError(resp *http.Response) error {
	defer resp.Body.Close()
	e := &APIError{
		StatusCode: resp.StatusCode,
		Status:     resp.Status,
		RequestID:  resp.Header.Get(telemetry.RequestIDHeader),
	}
	var body errorBody
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(raw, &body) == nil && body.Error != "" {
		e.Message = body.Error
	}
	return e
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	resp, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	})
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health checks liveness.
func (c *Client) Health(ctx context.Context) error {
	var out map[string]any
	return c.getJSON(ctx, "/healthz", &out)
}

// Models lists the registered models.
func (c *Client) Models(ctx context.Context) ([]ModelMeta, error) {
	var out struct {
		Models []ModelMeta `json:"models"`
	}
	err := c.getJSON(ctx, "/models", &out)
	return out.Models, err
}

// Model fetches one model's metadata.
func (c *Client) Model(ctx context.Context, id string) (ModelMeta, error) {
	var out ModelMeta
	err := c.getJSON(ctx, "/models/"+url.PathEscape(id), &out)
	return out, err
}

// Budget returns the per-dataset privacy ledger.
func (c *Client) Budget(ctx context.Context) (map[string]accountant.Entry, error) {
	var out struct {
		Datasets map[string]accountant.Entry `json:"datasets"`
	}
	err := c.getJSON(ctx, "/budget", &out)
	return out.Datasets, err
}

// Upload registers a SaveModel artifact read from r. Empty id lets the
// server assign one.
func (c *Client) Upload(ctx context.Context, id string, artifact io.Reader) (ModelMeta, error) {
	u := c.BaseURL + "/models"
	if id != "" {
		u += "?id=" + url.QueryEscape(id)
	}
	// Uploads retry only when the artifact can be replayed from the
	// start; a one-shot stream gets a single attempt.
	seeker, rewindable := artifact.(io.Seeker)
	sender := c.forBody(rewindable)
	first := true
	resp, err := sender.do(ctx, func() (*http.Request, error) {
		if !first {
			if _, err := seeker.Seek(0, io.SeekStart); err != nil {
				return nil, err
			}
		}
		first = false
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, artifact)
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		return ModelMeta{}, err
	}
	if resp.StatusCode != http.StatusCreated {
		return ModelMeta{}, apiError(resp)
	}
	defer resp.Body.Close()
	var meta ModelMeta
	err = json.NewDecoder(resp.Body).Decode(&meta)
	return meta, err
}

// SynthesizeRequest parameterizes a synthesis stream.
type SynthesizeRequest struct {
	// N is the number of rows (required).
	N int
	// Seed pins the RNG stream; nil lets the server draw one (echoed in
	// the response's Seed).
	Seed *int64
	// Format is "csv" (default) or "jsonl".
	Format string
	// Parallelism asks for up to this many workers from the server's
	// budget; 0 accepts the server default.
	Parallelism int
}

// SynthesisStream is a live streaming response: read Body incrementally
// (rows arrive in chunks as the server generates them) and Close when
// done.
type SynthesisStream struct {
	// Body streams the csv/jsonl payload.
	Body io.ReadCloser
	// Seed is the RNG seed the server used — pass it back via
	// SynthesizeRequest.Seed to reproduce the stream byte for byte.
	Seed int64
}

func (s *SynthesisStream) Close() error { return s.Body.Close() }

// Synthesize opens a synthesis stream from a registered model.
func (c *Client) Synthesize(ctx context.Context, id string, sr SynthesizeRequest) (*SynthesisStream, error) {
	q := url.Values{}
	q.Set("n", strconv.Itoa(sr.N))
	if sr.Seed != nil {
		q.Set("seed", strconv.FormatInt(*sr.Seed, 10))
	}
	if sr.Format != "" {
		q.Set("format", sr.Format)
	}
	if sr.Parallelism > 0 {
		q.Set("parallelism", strconv.Itoa(sr.Parallelism))
	}
	u := c.BaseURL + "/models/" + url.PathEscape(id) + "/synthesize?" + q.Encode()
	resp, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	})
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	seed, _ := strconv.ParseInt(resp.Header.Get("X-Privbayes-Seed"), 10, 64)
	return &SynthesisStream{Body: resp.Body, Seed: seed}, nil
}

// Marginal asks for the exact marginal distribution over the named
// attributes (see Model.InferMarginal). maxCells 0 accepts the server
// default bound.
func (c *Client) Marginal(ctx context.Context, id string, attrs []string, maxCells int) (MarginalResult, error) {
	body, err := json.Marshal(marginalRequest{Attrs: attrs, MaxCells: maxCells})
	if err != nil {
		return MarginalResult{}, err
	}
	u := c.BaseURL + "/models/" + url.PathEscape(id) + "/marginal"
	resp, err := c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, strings.NewReader(string(body)))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		return MarginalResult{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return MarginalResult{}, apiError(resp)
	}
	defer resp.Body.Close()
	var out MarginalResult
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// MarginalResult is a dense marginal distribution over the requested
// attributes, row-major with the last attribute varying fastest.
type MarginalResult struct {
	Attrs []string  `json:"attrs"`
	Dims  []int     `json:"dims"`
	P     []float64 `json:"p"`
}

// FitRequest parameterizes a curator-mode fit.
type FitRequest struct {
	// DatasetID keys the privacy ledger: every fit against the same id
	// composes sequentially toward its budget.
	DatasetID string
	// Epsilon is the total DP budget of this fit.
	Epsilon float64
	// ModelID optionally names the resulting model.
	ModelID string
	// Seed pins the fit RNG; nil lets the server draw one.
	Seed *int64
	// Parallelism asks for up to this many fit workers.
	Parallelism int
	// Schema describes the CSV columns.
	Schema []AttrSpec
	// Data streams the CSV (header row first). When it also implements
	// io.Seeker (bytes.Reader, *os.File), the upload can be replayed
	// and the fit becomes retryable under the client's RetryPolicy.
	Data io.Reader
	// IdempotencyKey makes the fit safe to retry: the server charges ε
	// exactly once per key, even across its own restarts. Empty with
	// retries enabled, the Client generates one, so an automatic retry
	// after an ambiguous network failure can never double-charge.
	IdempotencyKey string
}

// Fit uploads a dataset and fits a model under the dataset's privacy
// budget. The upload is streamed — schema and parameters first, then
// the CSV — so large datasets never buffer client-side.
func (c *Client) Fit(ctx context.Context, fr FitRequest) (ModelMeta, error) {
	seeker, rewindable := fr.Data.(io.Seeker)
	sender := c.forBody(rewindable)
	key := fr.IdempotencyKey
	if key == "" && sender.Retry.enabled() {
		key = newIdempotencyKey()
	}
	first := true
	resp, err := sender.do(ctx, func() (*http.Request, error) {
		if !first {
			if _, err := seeker.Seek(0, io.SeekStart); err != nil {
				return nil, err
			}
		}
		first = false
		pr, pw := io.Pipe()
		mw := multipart.NewWriter(pw)
		go func() {
			err := writeFitBody(mw, fr)
			if cerr := mw.Close(); err == nil {
				err = cerr
			}
			pw.CloseWithError(err)
		}()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/fit", pr)
		if err != nil {
			pr.Close()
			return nil, err
		}
		req.Header.Set("Content-Type", mw.FormDataContentType())
		if key != "" {
			req.Header.Set("Idempotency-Key", key)
		}
		return req, nil
	})
	if err != nil {
		return ModelMeta{}, err
	}
	// 201: the fit ran here. 200: an idempotent replay of a fit a
	// previous attempt already completed.
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return ModelMeta{}, apiError(resp)
	}
	defer resp.Body.Close()
	var meta ModelMeta
	err = json.NewDecoder(resp.Body).Decode(&meta)
	return meta, err
}

// writeFitBody emits the multipart fields in the order the server
// requires: every scalar and the schema before the streamed data part.
func writeFitBody(mw *multipart.Writer, fr FitRequest) error {
	if err := mw.WriteField("dataset_id", fr.DatasetID); err != nil {
		return err
	}
	if err := mw.WriteField("epsilon", strconv.FormatFloat(fr.Epsilon, 'g', -1, 64)); err != nil {
		return err
	}
	if fr.ModelID != "" {
		if err := mw.WriteField("model_id", fr.ModelID); err != nil {
			return err
		}
	}
	if fr.Seed != nil {
		if err := mw.WriteField("seed", strconv.FormatInt(*fr.Seed, 10)); err != nil {
			return err
		}
	}
	if fr.Parallelism > 0 {
		if err := mw.WriteField("parallelism", strconv.Itoa(fr.Parallelism)); err != nil {
			return err
		}
	}
	schema, err := json.Marshal(fr.Schema)
	if err != nil {
		return err
	}
	if err := mw.WriteField("schema", string(schema)); err != nil {
		return err
	}
	part, err := mw.CreateFormFile("data", "data.csv")
	if err != nil {
		return err
	}
	_, err = io.Copy(part, fr.Data)
	return err
}

// CreateDataset registers a curated dataset for continuous ingest. The
// schema is fixed at creation; every appended batch must match it.
func (c *Client) CreateDataset(ctx context.Context, id string, schema []AttrSpec) (curator.Status, error) {
	body, err := json.Marshal(schema)
	if err != nil {
		return curator.Status{}, err
	}
	resp, err := c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			c.BaseURL+"/datasets/"+url.PathEscape(id), bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		return curator.Status{}, err
	}
	if resp.StatusCode != http.StatusCreated {
		return curator.Status{}, apiError(resp)
	}
	defer resp.Body.Close()
	var st curator.Status
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

// AppendResult reports an acknowledged row append.
type AppendResult struct {
	// Rows is the number of rows the server decoded from this batch.
	Rows int `json:"rows"`
	// Duplicate reports an idempotent replay: the key was already
	// acknowledged and nothing was appended again.
	Duplicate bool `json:"duplicate"`
	// TotalRows is the dataset's row count after the append.
	TotalRows int64 `json:"total_rows"`
}

// AppendRows appends one JSONL batch (one object per line, keyed by
// attribute name) to a curated dataset. A non-empty key makes the
// append idempotent; empty with retries enabled, the Client generates
// one so an automatic retry after an ambiguous network failure can
// never double-ingest the batch. A success return means the batch is
// fsynced into the dataset's crash-safe row log.
func (c *Client) AppendRows(ctx context.Context, id, key string, rows io.Reader) (AppendResult, error) {
	seeker, rewindable := rows.(io.Seeker)
	sender := c.forBody(rewindable)
	if key == "" && sender.Retry.enabled() {
		key = newIdempotencyKey()
	}
	first := true
	resp, err := sender.do(ctx, func() (*http.Request, error) {
		if !first {
			if _, err := seeker.Seek(0, io.SeekStart); err != nil {
				return nil, err
			}
		}
		first = false
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			c.BaseURL+"/datasets/"+url.PathEscape(id)+"/rows", rows)
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/jsonl")
		if key != "" {
			req.Header.Set("Idempotency-Key", key)
		}
		return req, nil
	})
	if err != nil {
		return AppendResult{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return AppendResult{}, apiError(resp)
	}
	defer resp.Body.Close()
	var out AppendResult
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// DatasetStatus fetches a curated dataset's ingest and refit standing.
func (c *Client) DatasetStatus(ctx context.Context, id string) (curator.Status, error) {
	var st curator.Status
	err := c.getJSON(ctx, "/datasets/"+url.PathEscape(id), &st)
	return st, err
}

// Datasets lists the curated datasets.
func (c *Client) Datasets(ctx context.Context) ([]curator.Status, error) {
	var out struct {
		Datasets []curator.Status `json:"datasets"`
	}
	err := c.getJSON(ctx, "/datasets", &out)
	return out.Datasets, err
}
