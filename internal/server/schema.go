package server

import (
	"fmt"
	"math"

	"privbayes/internal/dataset"
)

// AttrSpec is the wire form of one schema attribute, carried in the
// "schema" field of a POST /fit request. Categorical attributes list
// their labels; continuous attributes give a range and a bin count.
type AttrSpec struct {
	Name string `json:"name"`
	// Kind is "categorical" or "continuous".
	Kind   string   `json:"kind"`
	Labels []string `json:"labels,omitempty"`
	Min    float64  `json:"min,omitempty"`
	Max    float64  `json:"max,omitempty"`
	Bins   int      `json:"bins,omitempty"`
}

// maxSchemaAttrs bounds an uploaded schema.
const maxSchemaAttrs = 1 << 12

// SchemaFromSpecs validates a wire schema and builds dataset attributes.
func SchemaFromSpecs(specs []AttrSpec) ([]dataset.Attribute, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("server: schema has no attributes")
	}
	if len(specs) > maxSchemaAttrs {
		return nil, fmt.Errorf("server: schema has %d attributes, limit %d", len(specs), maxSchemaAttrs)
	}
	attrs := make([]dataset.Attribute, len(specs))
	seen := make(map[string]bool, len(specs))
	for i, s := range specs {
		if s.Name == "" {
			return nil, fmt.Errorf("server: schema attribute %d has no name", i+1)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("server: duplicate schema attribute %q", s.Name)
		}
		seen[s.Name] = true
		switch s.Kind {
		case "categorical":
			if len(s.Labels) == 0 {
				return nil, fmt.Errorf("server: categorical attribute %q has no labels", s.Name)
			}
			if len(s.Labels) > 1<<16 {
				return nil, fmt.Errorf("server: attribute %q has %d labels, limit %d", s.Name, len(s.Labels), 1<<16)
			}
			labels := make(map[string]bool, len(s.Labels))
			for _, l := range s.Labels {
				if labels[l] {
					return nil, fmt.Errorf("server: attribute %q has duplicate label %q", s.Name, l)
				}
				labels[l] = true
			}
			attrs[i] = dataset.NewCategorical(s.Name, s.Labels)
		case "continuous":
			if s.Bins < 1 || s.Bins > 1<<16 {
				return nil, fmt.Errorf("server: continuous attribute %q needs bins in [1, %d], got %d", s.Name, 1<<16, s.Bins)
			}
			if math.IsNaN(s.Min) || math.IsNaN(s.Max) || math.IsInf(s.Min, 0) || math.IsInf(s.Max, 0) || s.Min >= s.Max {
				return nil, fmt.Errorf("server: continuous attribute %q has invalid range [%g, %g]", s.Name, s.Min, s.Max)
			}
			attrs[i] = dataset.NewContinuous(s.Name, s.Min, s.Max, s.Bins)
		default:
			return nil, fmt.Errorf("server: attribute %q has unknown kind %q", s.Name, s.Kind)
		}
	}
	return attrs, nil
}

// SpecsFromAttrs renders a dataset schema in wire form — the inverse of
// SchemaFromSpecs for clients that already hold a *dataset.Dataset.
// Taxonomy hierarchies are not carried (continuous attributes rebuild
// their binary tree from the bin count; categorical uploads fit without
// generalization).
func SpecsFromAttrs(attrs []dataset.Attribute) []AttrSpec {
	specs := make([]AttrSpec, len(attrs))
	for i := range attrs {
		a := &attrs[i]
		if a.Kind == dataset.Continuous {
			specs[i] = AttrSpec{Name: a.Name, Kind: "continuous", Min: a.Min, Max: a.Max, Bins: a.Size()}
		} else {
			specs[i] = AttrSpec{Name: a.Name, Kind: "categorical", Labels: append([]string(nil), a.Labels...)}
		}
	}
	return specs
}
