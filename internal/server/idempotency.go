package server

import "sync"

// inflightKeys is the single-flight guard for Idempotency-Keys: at most
// one fit per key runs at a time, so a retry racing its own original
// cannot fit the same model twice concurrently. Durable exactly-once
// accounting lives in the ledger (accountant.ChargeIdempotent); this
// guard only serializes the in-process window the ledger cannot see —
// between a charge and its registry.Put.
type inflightKeys struct {
	mu sync.Mutex
	m  map[string]struct{}
}

func newInflightKeys() *inflightKeys {
	return &inflightKeys{m: map[string]struct{}{}}
}

// begin claims key; false means another request holds it right now.
func (k *inflightKeys) begin(key string) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, busy := k.m[key]; busy {
		return false
	}
	k.m[key] = struct{}{}
	return true
}

// end releases key. Callers pair it with a successful begin.
func (k *inflightKeys) end(key string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	delete(k.m, key)
}
