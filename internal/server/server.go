// Package server is the privbayesd serving subsystem: an HTTP service
// that hosts a registry of fitted PrivBayes models and serves synthesis
// and marginal inference from them, plus a curator mode that fits new
// models under a persistent per-dataset privacy-budget ledger
// (internal/accountant).
//
// Serving never touches sensitive data: a registered model is the ε-DP
// release itself (see privbayes.SaveModel), so synthesis and inference
// requests cost no additional privacy budget. Only POST /fit — which
// reads raw data — is metered.
//
// Endpoints:
//
//	GET  /healthz                  liveness + worker budget
//	GET  /models                   list registered models
//	POST /models[?id=...]          upload a SaveModel artifact
//	GET  /models/{id}              model metadata (network, ε, schema)
//	GET  /models/{id}/synthesize   stream synthetic rows (also POST)
//	POST /models/{id}/marginal     exact marginal inference (v1 wire form)
//	POST /models/{id}/query        exact query: marginal/conditional/prob/count
//	POST /fit                      curator mode: CSV + schema + ε -> model
//	GET  /budget                   per-dataset privacy-budget ledger
package server

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"mime"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"time"

	"privbayes"
	"privbayes/internal/accountant"
	"privbayes/internal/core"
	"privbayes/internal/curator"
	"privbayes/internal/dataset"
	"privbayes/internal/faultfs"
	"privbayes/internal/infer"
	"privbayes/internal/parallel"
	"privbayes/internal/telemetry"
)

// Defaults for Config zero values.
const (
	// DefaultMaxSynthesisRows caps n per synthesize request.
	DefaultMaxSynthesisRows = 10_000_000
	// DefaultMaxUploadBytes caps model-artifact and fit-CSV uploads.
	DefaultMaxUploadBytes = 256 << 20
	// streamRows is the synthesis chunk: rows are generated and written
	// in bursts of this size, bounding per-request memory regardless of
	// n. It must be a multiple of the sampler's internal 2048-row chunk
	// so that chunked streaming draws the identical RNG streams as one
	// monolithic SampleP call (TestSynthesizeMatchesSampleP enforces
	// this).
	streamRows = 16_384
)

// Config configures a Server. The zero value serves models from memory
// only, with curator mode disabled.
type Config struct {
	// ModelsDir, when set, is scanned for *.json model artifacts at
	// startup, and receives every model uploaded or fitted later.
	ModelsDir string
	// Ledger meters curator-mode fits per dataset id. Nil disables
	// POST /fit entirely.
	Ledger *accountant.Ledger
	// MaxWorkers is the server-wide worker budget shared by all
	// requests; <= 0 selects GOMAXPROCS.
	MaxWorkers int
	// MaxRequestParallelism caps the workers any single request may
	// claim from the budget; <= 0 means up to the whole budget.
	MaxRequestParallelism int
	// MaxSynthesisRows caps n per synthesize request; <= 0 selects
	// DefaultMaxSynthesisRows.
	MaxSynthesisRows int
	// MaxUploadBytes caps request bodies (model uploads, fit CSVs);
	// <= 0 selects DefaultMaxUploadBytes.
	MaxUploadBytes int64
	// MaxQueueDepth caps how many requests may wait for worker slots
	// before new arrivals are shed with 503 + Retry-After instead of
	// queueing unboundedly; <= 0 selects DefaultMaxQueueDepth.
	MaxQueueDepth int
	// MaxFitsPerDataset caps concurrent POST /fit requests per dataset
	// id; excess fits get 429 + Retry-After. <= 0 selects
	// DefaultMaxFitsPerDataset.
	MaxFitsPerDataset int
	// CuratorDir enables the continuous curator: one crash-safe row log
	// per curated dataset lives here, and the /datasets endpoints come
	// up. Empty disables curation.
	CuratorDir string
	// RefitEpsilon is the ε charged per background refit of a curated
	// dataset; <= 0 disables refits (ingest-only curation).
	RefitEpsilon float64
	// RefitRows triggers a background refit once that many rows have
	// accumulated beyond the last fitted model; <= 0 disables the row
	// trigger.
	RefitRows int64
	// RefitStaleness triggers a background refit once unfitted rows are
	// older than this; <= 0 disables the staleness trigger.
	RefitStaleness time.Duration
	// CuratorPollInterval is the staleness check cadence; <= 0 selects
	// the curator default.
	CuratorPollInterval time.Duration
	// FitChunkRows bounds the rows materialized at a time while fitting
	// (POST /fit spools the upload and scans it; curator refits scan the
	// row log); <= 0 selects the scanner default.
	FitChunkRows int
	// FS is the filesystem seam for model-artifact persistence; nil
	// selects the real filesystem. Tests inject write/sync/rename
	// faults and crashes here (internal/faultfs).
	FS faultfs.FS
	// Logf, when set, receives operational log lines. It predates
	// Logger and wins over it for those lines when both are set.
	Logf func(format string, args ...any)
	// Logger receives structured logs: one line per request (with its
	// request ID) plus operational notes when Logf is unset. Nil
	// discards them.
	Logger *slog.Logger
	// Telemetry, when set, receives every server metric family and is
	// served at GET /metrics and GET /debug/vars. Nil disables metrics;
	// the handlers still serve (empty exposition) and request IDs still
	// flow.
	Telemetry *telemetry.Registry
}

// Server implements http.Handler over a model registry, a worker
// budget, and an optional privacy-budget ledger.
type Server struct {
	cfg        Config
	registry   *Registry
	ledger     *accountant.Ledger
	ledgerPath string // absolute path of the ledger file, "" if in-memory
	workers    *workerBudget
	fs         faultfs.FS
	fits       *inflightGauge // per-dataset concurrent-fit cap
	fitKeys    *inflightKeys  // Idempotency-Key single-flight guard
	maxRows    int
	maxBytes   int64
	maxPar     int
	mux        *http.ServeMux
	curator    *curator.Curator // nil when CuratorDir is unset
	seq        atomic.Int64     // generated-id counter

	metrics    *serverMetrics // never nil; no-op without a registry
	log        *slog.Logger   // never nil; NopLogger without a Logger
	loadErrors int            // model artifacts skipped at startup
}

// New builds a Server, loading any models already in cfg.ModelsDir.
// Corrupt artifacts in the directory are logged and skipped so one bad
// file cannot keep the daemon down.
func New(cfg Config) (*Server, error) {
	queueDepth := cfg.MaxQueueDepth
	if queueDepth <= 0 {
		queueDepth = DefaultMaxQueueDepth
	}
	fitCap := cfg.MaxFitsPerDataset
	if fitCap <= 0 {
		fitCap = DefaultMaxFitsPerDataset
	}
	s := &Server{
		cfg:      cfg,
		registry: NewRegistry(),
		ledger:   cfg.Ledger,
		workers:  newWorkerBudget(parallel.Workers(cfg.MaxWorkers), queueDepth),
		fs:       faultfs.Or(cfg.FS),
		fits:     newInflightGauge(fitCap),
		fitKeys:  newInflightKeys(),
		maxRows:  cfg.MaxSynthesisRows,
		maxBytes: cfg.MaxUploadBytes,
		maxPar:   cfg.MaxRequestParallelism,
	}
	if s.maxRows <= 0 {
		s.maxRows = DefaultMaxSynthesisRows
	}
	if s.maxBytes <= 0 {
		s.maxBytes = DefaultMaxUploadBytes
	}
	if s.maxPar <= 0 || s.maxPar > s.workers.total {
		s.maxPar = s.workers.total
	}
	s.log = cfg.Logger
	if s.log == nil {
		s.log = telemetry.NopLogger()
	}
	s.metrics = newServerMetrics(cfg.Telemetry, s)
	if cfg.Ledger != nil {
		cfg.Ledger.Instrument(accountant.NewMetrics(cfg.Telemetry))
	}
	if cfg.Ledger != nil && cfg.Ledger.Path() != "" {
		abs, err := filepath.Abs(cfg.Ledger.Path())
		if err != nil {
			return nil, fmt.Errorf("server: ledger path: %w", err)
		}
		s.ledgerPath = abs
	}
	if cfg.ModelsDir != "" {
		if err := os.MkdirAll(cfg.ModelsDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: models dir: %w", err)
		}
		// A crash between CreateTemp and Rename in persist leaves a
		// *.tmp-* file behind; sweep them so they cannot accumulate
		// across crash/restart cycles.
		if stale, _ := filepath.Glob(filepath.Join(cfg.ModelsDir, "*.tmp-*")); stale != nil {
			for _, name := range stale {
				if err := s.fs.Remove(name); err == nil {
					s.logf("removed stale temp artifact %s", name)
				}
			}
		}
		n, errs := s.registry.LoadDir(cfg.ModelsDir, s.ledgerPath)
		s.loadErrors = len(errs)
		for _, err := range errs {
			s.logf("skipping model artifact: %v", err)
		}
		s.logf("loaded %d model(s) from %s", n, cfg.ModelsDir)
	}

	if cfg.CuratorDir != "" {
		cur, err := curator.New(curator.Config{
			Dir:               cfg.CuratorDir,
			Ledger:            cfg.Ledger,
			RefitEpsilon:      cfg.RefitEpsilon,
			RefitRows:         cfg.RefitRows,
			RefitMaxStaleness: cfg.RefitStaleness,
			PollInterval:      cfg.CuratorPollInterval,
			ChunkRows:         cfg.FitChunkRows,
			Acquire: func(ctx context.Context, want int) (int, func(), error) {
				return s.workers.acquire(ctx, s.requestWorkers(want), false)
			},
			Publish: func(id string, m *privbayes.Model, epsilon float64) error {
				if err := s.registry.Put(id, "curator", m, epsilon); err != nil {
					// A republish after a crash-recovered charge may find
					// the model already registered; that is success.
					if !errors.Is(err, ErrExists) {
						return err
					}
				} else {
					s.persist(id, m, epsilon)
				}
				return nil
			},
			Lookup: func(id string) (*privbayes.Model, bool) {
				m, _, err := s.registry.Get(id)
				return m, err == nil
			},
			FS:      cfg.FS,
			Logf:    s.logf,
			Metrics: curator.NewMetrics(cfg.Telemetry),
		})
		if err != nil {
			return nil, fmt.Errorf("server: curator: %w", err)
		}
		s.curator = cur
	}

	// Every route goes through the telemetry middleware under a fixed
	// route name, so metric label cardinality is bounded by this table
	// no matter what paths clients send.
	mux := http.NewServeMux()
	handle := func(pattern, route string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(route, h))
	}
	handle("GET /healthz", "healthz", s.handleHealth)
	handle("GET /readyz", "readyz", s.handleReady)
	handle("GET /models", "models_list", s.handleList)
	handle("POST /models", "models_upload", s.handleUpload)
	handle("GET /models/{id}", "model_get", s.handleModel)
	handle("GET /models/{id}/synthesize", "synthesize", s.handleSynthesize)
	handle("POST /models/{id}/synthesize", "synthesize", s.handleSynthesize)
	handle("POST /models/{id}/marginal", "marginal", s.handleMarginal)
	handle("POST /models/{id}/query", "query", s.handleQuery)
	handle("POST /fit", "fit", s.handleFit)
	handle("GET /budget", "budget", s.handleBudget)
	handle("GET /datasets", "datasets_list", s.handleDatasetList)
	handle("POST /datasets/{id}", "dataset_create", s.handleDatasetCreate)
	handle("GET /datasets/{id}", "dataset_get", s.handleDatasetStatus)
	handle("POST /datasets/{id}/rows", "dataset_rows", s.handleDatasetRows)
	// Scrape endpoints are served outside the middleware: a scrape must
	// not inflate the request counters it reports.
	mux.Handle("GET /metrics", cfg.Telemetry.Handler())
	mux.Handle("GET /debug/vars", telemetry.ExpvarHandler(cfg.Telemetry))
	s.mux = mux
	return s, nil
}

// Registry exposes the model registry (read-mostly; used by privbayesd
// for startup reporting and by tests).
func (s *Server) Registry() *Registry { return s.registry }

// Close stops background curation (waiting for in-flight refits) and
// closes the curated row logs. Serving handlers are unaffected; callers
// stop the HTTP listener separately.
func (s *Server) Close() error {
	if s.curator != nil {
		return s.curator.Close()
	}
	return nil
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
		return
	}
	s.log.Info(fmt.Sprintf(format, args...))
}

// freshID generates "<prefix>-N", skipping ids already registered —
// the counter restarts at zero each process start, but models persisted
// by a previous run reload from ModelsDir with their old generated ids.
// The prefix is truncated so the result always satisfies ValidID's
// 128-char cap even for maximal dataset ids.
func (s *Server) freshID(prefix string) string {
	if len(prefix) > 100 {
		prefix = prefix[:100]
	}
	for {
		id := fmt.Sprintf("%s-%d", prefix, s.seq.Add(1))
		if _, _, err := s.registry.Get(id); err != nil {
			return id
		}
	}
}

// requestWorkers resolves a client's parallelism ask against the
// per-request cap: 0 means "the server default" (the full cap), any
// positive ask is clamped to it. The worker budget still decides what
// is actually granted.
func (s *Server) requestWorkers(asked int) int {
	if asked <= 0 || asked > s.maxPar {
		return s.maxPar
	}
	return asked
}

// errorBody is every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// statusFor maps a domain error to an HTTP status.
func statusFor(err error) int {
	var tooBig *http.MaxBytesError
	switch {
	case errors.As(err, &tooBig):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, accountant.ErrPersist):
		// A ledger that cannot be made durable is a server fault, not a
		// client error — surface it as 5xx so operators and retry logic
		// see it.
		return http.StatusInternalServerError
	case errors.Is(err, ErrNotFound), errors.Is(err, curator.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrExists), errors.Is(err, curator.ErrExists):
		return http.StatusConflict
	case errors.Is(err, curator.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, accountant.ErrBudgetExceeded):
		return http.StatusForbidden
	case errors.Is(err, accountant.ErrIdempotencyMismatch):
		// The key was honored — against a different request. Replaying
		// it with altered parameters is a client bug, not a retry.
		return http.StatusConflict
	case errors.Is(err, core.ErrInvalidModel):
		return http.StatusUnprocessableEntity
	case errors.Is(err, infer.ErrTooLarge), errors.Is(err, core.ErrImpossibleEvidence):
		// Well-formed but unanswerable: the query compiled, the model
		// cannot answer it (factor over the cell cap, zero-mass
		// evidence).
		return http.StatusUnprocessableEntity
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":            "ok",
		"models":            s.registry.Len(),
		"workers_total":     s.workers.total,
		"workers_available": s.workers.available(),
		"queue_depth":       s.workers.queueDepth(),
	})
}

// handleReady is the readiness probe: where /healthz answers "the
// process is up", /readyz answers "startup completed and recovery is
// accounted for" — how many artifacts loaded (and how many were
// skipped as corrupt), whether a privacy ledger is attached, and how
// many bytes WAL recovery had to truncate to repair a torn tail.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"status":            "ready",
		"models":            s.registry.Len(),
		"model_load_errors": s.loadErrors,
		"ledger":            "none",
	}
	if s.ledger != nil {
		body["ledger"] = "ok"
		body["wal_recovered_truncated_bytes"] = s.ledger.RecoveredTruncation()
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"models": s.registry.List()})
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	_, meta, err := s.registry.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, statusFor(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, meta)
}

func (s *Server) handleBudget(w http.ResponseWriter, r *http.Request) {
	if s.ledger == nil {
		writeJSON(w, http.StatusOK, map[string]any{"datasets": map[string]accountant.Entry{}})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": s.ledger.Snapshot()})
}

// handleUpload registers a SaveModel artifact posted as the request
// body. The artifact is fully revalidated; malformed documents are
// rejected with 422 and never panic (see core.ReadModelJSON).
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		id = s.freshID("upload")
	}
	if s.idCollidesWithLedger(id) {
		writeError(w, http.StatusBadRequest, "model id %q collides with the ledger file", id)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBytes)
	if err := s.registry.Add(id, "upload", body); err != nil {
		writeError(w, statusFor(err), "%v", err)
		return
	}
	model, meta, _ := s.registry.Get(id)
	s.persist(id, model, meta.Epsilon)
	writeJSON(w, http.StatusCreated, meta)
}

// idCollidesWithLedger reports whether persisting model id would land
// on the privacy ledger's file — e.g. model id "ledger" with the ledger
// at <models-dir>/ledger.json. Allowing that write would replace the
// recorded ε spend with a model artifact, so colliding ids are rejected
// at registration time.
func (s *Server) idCollidesWithLedger(id string) bool {
	if s.cfg.ModelsDir == "" || s.ledgerPath == "" {
		return false
	}
	abs, err := filepath.Abs(filepath.Join(s.cfg.ModelsDir, id+".json"))
	return err == nil && abs == s.ledgerPath
}

// persist writes a registered model to the models directory so it
// survives restarts. Best-effort: serving continues from memory if the
// write fails, and the failure is logged. The write is crash-atomic —
// temp file, fsync, rename, directory fsync — so a crash at any point
// leaves either no artifact or the complete one, never a torn JSON
// document that would be skipped (with the model silently lost) at the
// next startup.
func (s *Server) persist(id string, m *core.Model, epsilon float64) {
	if s.cfg.ModelsDir == "" {
		return
	}
	path := filepath.Join(s.cfg.ModelsDir, id+".json")
	if abs, err := filepath.Abs(path); err != nil || abs == s.ledgerPath {
		// Defense in depth behind idCollidesWithLedger.
		s.logf("persist %s: refusing to overwrite the ledger file", id)
		return
	}
	if err := s.atomicWriteModel(path, m, epsilon); err != nil {
		s.logf("persist %s: %v", id, err)
	}
}

// atomicWriteModel writes the artifact durably: the temp name does not
// match LoadDir's *.json glob, so a leftover from a crashed write can
// never register as a model (New sweeps them at startup).
func (s *Server) atomicWriteModel(path string, m *core.Model, epsilon float64) error {
	dir := filepath.Dir(path)
	f, err := s.fs.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		s.fs.Remove(tmp)
		return err
	}
	if err := m.WriteJSON(f, epsilon); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		s.fs.Remove(tmp)
		return err
	}
	if err := s.fs.Rename(tmp, path); err != nil {
		s.fs.Remove(tmp)
		return err
	}
	return s.fs.SyncDir(dir)
}

// synthesizeParams are the knobs of a synthesize request, from query
// parameters (GET/POST) or a JSON body (POST).
type synthesizeParams struct {
	N           int    `json:"n"`
	Seed        *int64 `json:"seed"`
	Format      string `json:"format"`
	Parallelism int    `json:"parallelism"`
}

func parseSynthesizeParams(r *http.Request) (synthesizeParams, error) {
	var p synthesizeParams
	q := r.URL.Query()
	mediaType, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if r.Method == http.MethodPost && mediaType == "application/json" {
		body := http.MaxBytesReader(nil, r.Body, 1<<20)
		if err := json.NewDecoder(body).Decode(&p); err != nil {
			return p, fmt.Errorf("decode request body: %v", err)
		}
	}
	if v := q.Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return p, fmt.Errorf("parameter n: %v", err)
		}
		p.N = n
	}
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return p, fmt.Errorf("parameter seed: %v", err)
		}
		p.Seed = &seed
	}
	if v := q.Get("format"); v != "" {
		p.Format = v
	}
	if v := q.Get("parallelism"); v != "" {
		par, err := strconv.Atoi(v)
		if err != nil {
			return p, fmt.Errorf("parameter parallelism: %v", err)
		}
		p.Parallelism = par
	}
	if p.Format == "" {
		p.Format = "csv"
	}
	if p.Format != "csv" && p.Format != "jsonl" {
		return p, fmt.Errorf("unknown format %q (want csv or jsonl)", p.Format)
	}
	return p, nil
}

// handleSynthesize streams n synthetic rows from a registered model.
//
// The response is generated in streamRows-row chunks: for each chunk
// the request claims workers from the server-wide budget, samples the
// chunk through Model.SampleP and the internal/parallel pool, releases
// the workers, and only then writes the chunk to the client. Workers
// are never held across a client write, so a slow reader back-pressures
// its own TCP stream while the budget serves other requests, and
// per-request memory stays bounded by the chunk size no matter how
// large n is.
//
// Determinism: for a fixed (model, n, seed) the streamed rows are
// byte-identical across requests, worker counts, and server load —
// chunk geometry and RNG streams are derived from (n, seed) only, and
// the effective parallelism passed to the sampler is kept >= 2 so the
// worker-count-independent chunked RNG scheme is always in effect (see
// core.Model.SampleP). When the caller omits seed, the server draws one
// and returns it in the X-Privbayes-Seed header, so any stream can be
// reproduced later.
func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	model, meta, err := s.registry.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, statusFor(err), "%v", err)
		return
	}
	p, err := parseSynthesizeParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if p.N < 1 || p.N > s.maxRows {
		writeError(w, http.StatusBadRequest, "n must be in [1, %d], got %d", s.maxRows, p.N)
		return
	}
	seed := rand.Int63()
	if p.Seed != nil {
		seed = *p.Seed
	}

	// Admission control happens before the first byte of the response:
	// a 503 is only expressible while headers are unsent, so the first
	// chunk's workers are acquired shed-capably here, and overload turns
	// the request away with a retry hint instead of parking it in an
	// unbounded queue. Once admitted the stream is committed — later
	// chunk acquires pass shed=false and may wait.
	ctx := r.Context()
	want := s.requestWorkers(p.Parallelism)
	got0, release0, err := s.workers.acquire(ctx, want, true)
	if err != nil {
		if errors.Is(err, errOverloaded) {
			writeRetryAfter(w, http.StatusServiceUnavailable, s.retryAfterSeconds(),
				"server overloaded: synthesis queue full, retry later")
		}
		return // otherwise: client gone while waiting for workers
	}
	defer func() {
		if release0 != nil {
			release0()
		}
	}()

	w.Header().Set("X-Privbayes-Model", meta.ID)
	w.Header().Set("X-Privbayes-Seed", strconv.FormatInt(seed, 10))
	w.Header().Set("X-Privbayes-Rows", strconv.Itoa(p.N))
	if p.Format == "csv" {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}

	flusher, _ := w.(http.Flusher)
	rng := rand.New(rand.NewSource(seed))
	var cw *csv.Writer
	var jw *dataset.JSONLWriter
	if p.Format == "csv" {
		cw = csv.NewWriter(w)
		if err := cw.Write(dataset.New(model.Attrs).CSVHeader()); err != nil {
			return
		}
	} else {
		jw = dataset.NewJSONLWriter(w, model.Attrs)
	}

	for lo := 0; lo < p.N; lo += streamRows {
		rows := min(streamRows, p.N-lo)
		// The first chunk rides on the admission grant; later chunks
		// re-acquire (non-shedding) so workers are never held across a
		// client write.
		got, release := got0, release0
		got0, release0 = 0, nil
		if release == nil {
			var err error
			got, release, err = s.workers.acquire(ctx, want, false)
			if err != nil {
				return // client gone while waiting for workers
			}
		}
		// Parallelism 1 selects the sampler's serial legacy stream,
		// which draws different tuples than the chunked scheme; pin the
		// chunked path so the response never depends on how many
		// workers the budget could spare. The request context cancels
		// generation mid-chunk (every 2048 rows), so a disconnected
		// client stops costing CPU within one sample chunk.
		// Timing one chunk is a pure side channel: the clock reads
		// bracket the sample call and touch neither rng nor the chunk
		// geometry, so the streamed bytes are identical with telemetry
		// on and off (TestSynthesizeDeterministicWithTelemetry).
		eff := max(got, 2)
		var t0 time.Time
		if s.metrics.enabled() {
			t0 = time.Now()
		}
		chunk, err := model.SampleContext(ctx, rows, rng, eff)
		if s.metrics.enabled() {
			s.metrics.pipelinePhase.With("sampling").Observe(time.Since(t0).Seconds())
		}
		release()
		if err != nil {
			return // client gone mid-generation
		}
		s.metrics.synthRows.Add(float64(rows))
		if p.Format == "csv" {
			if err := chunk.WriteCSVRows(cw, 0, rows); err != nil {
				return
			}
			cw.Flush()
			if cw.Error() != nil {
				return
			}
		} else {
			if err := jw.WriteRows(chunk, 0, rows); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// marginalRequest is the body of POST /models/{id}/marginal.
type marginalRequest struct {
	// Attrs names the queried attributes, in result order.
	Attrs []string `json:"attrs"`
	// MaxCells bounds the intermediate inference joint; it is clamped
	// to the server's ceiling (core.DefaultInferenceCells), so clients
	// can only tighten the bound, never lift it.
	MaxCells int `json:"max_cells"`
}

// handleMarginal answers a raw-level marginal by exact inference on the
// model — no sampling error, no privacy cost. It is the v1 wire form of
// the query engine: the request compiles to core.Marginal(attrs...) and
// runs through Model.Query, so its answers are byte-identical to the
// richer POST /models/{id}/query endpoint (and to the InferMarginal
// answers it historically served).
func (s *Server) handleMarginal(w http.ResponseWriter, r *http.Request) {
	model, _, err := s.registry.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, statusFor(err), "%v", err)
		return
	}
	var req marginalRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request body: %v", err)
		return
	}
	if len(req.Attrs) == 0 {
		writeError(w, http.StatusBadRequest, "attrs must name at least one attribute")
		return
	}
	// The cells bound is a memory guard: honor a client's tighter
	// bound, never a looser one.
	if req.MaxCells <= 0 || req.MaxCells > core.DefaultInferenceCells {
		req.MaxCells = core.DefaultInferenceCells
	}
	var stats infer.Stats
	res, err := model.Query(r.Context(), core.Marginal(req.Attrs...),
		core.QueryMaxCells(req.MaxCells), core.QueryParallelism(1),
		core.QueryStats(&stats))
	s.metrics.noteQuery("marginal", stats, err)
	if err != nil {
		writeError(w, statusFor(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, MarginalResult{Attrs: req.Attrs, Dims: res.Dims, P: res.P})
}

// handleFit is curator mode: a multipart upload of schema + CSV + ε
// runs privbayes.Fit and registers (and persists) the resulting model.
// Every fit is metered against the dataset's ε budget in the ledger
// BEFORE the data is touched; a fit that would overdraw is rejected
// with 403 and computes nothing. The multipart fields are dataset_id,
// epsilon, schema (JSON array of AttrSpec), and optionally model_id,
// seed and parallelism; the CSV part must be named "data" and come
// last, so the upload streams without buffering.
//
// An Idempotency-Key header makes the fit safe to retry after an
// ambiguous failure (connection cut after the request was sent): the
// key is recorded durably with the ε charge in the ledger's WAL, so a
// retried fit — even against a restarted daemon — finds the charge,
// spends nothing, and either replays the finished model (200) or
// completes the interrupted fit under the already-recorded model id.
// Reusing a key with a different dataset or ε is rejected with 409.
func (s *Server) handleFit(w http.ResponseWriter, r *http.Request) {
	if s.ledger == nil {
		writeError(w, http.StatusServiceUnavailable, "curator mode disabled: no privacy ledger configured")
		return
	}
	idemKey := r.Header.Get("Idempotency-Key")
	if idemKey != "" {
		if !ValidID(idemKey) {
			writeError(w, http.StatusBadRequest, "invalid Idempotency-Key %q (want 1-128 chars of [A-Za-z0-9._-])", idemKey)
			return
		}
		// Single flight per key: a concurrent retry while the first
		// attempt is still fitting would race it to the registry. Turn
		// the latecomer away; by its retry the first attempt has
		// finished (replay) or failed (rerun).
		if !s.fitKeys.begin(idemKey) {
			writeRetryAfter(w, http.StatusConflict, 2,
				"a fit with Idempotency-Key %q is already in flight", idemKey)
			return
		}
		defer s.fitKeys.end(idemKey)
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBytes)
	mr, err := r.MultipartReader()
	if err != nil {
		writeError(w, http.StatusBadRequest, "multipart body required: %v", err)
		return
	}

	var (
		datasetID, modelID string
		epsilon            float64
		haveEpsilon        bool
		seed               int64
		haveSeed           bool
		par                int
		specs              []AttrSpec
		attrs              []dataset.Attribute
		spool              string // temp file holding the spooled CSV
	)
	defer func() {
		if spool != "" {
			os.Remove(spool)
		}
	}()
	charged := false
	refund := func() {
		if !charged {
			return
		}
		// The idempotent refund also forgets the key, so a later retry
		// of the same request charges (and runs) afresh.
		var err error
		if idemKey != "" {
			err = s.ledger.RefundIdempotent(datasetID, epsilon, idemKey)
		} else {
			err = s.ledger.Refund(datasetID, epsilon)
		}
		if err != nil {
			s.logf("refund %s ε=%g: %v", datasetID, epsilon, err)
		}
	}

	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Only a clean end-of-form may end the loop: a malformed
			// part after the charge must reject (and refund), not be
			// silently dropped from an accepted fit.
			refund()
			writeError(w, http.StatusBadRequest, "read multipart body: %v", err)
			return
		}
		name := part.FormName()
		// The data part must be last: the ledger is charged from the
		// fields in hand when it arrives, so a field accepted afterwards
		// could change ε (or the dataset id) after metering — a
		// privacy-accounting bypass. Reject instead.
		if spool != "" {
			refund()
			writeError(w, http.StatusBadRequest, "field %q after the data part; data must come last", name)
			return
		}
		if name == "data" {
			// Everything needed to decode and meter the stream must be
			// in hand before the data part.
			if datasetID == "" || !haveEpsilon || specs == nil {
				writeError(w, http.StatusBadRequest, "dataset_id, epsilon and schema must precede the data part")
				return
			}
			attrs, err = SchemaFromSpecs(specs)
			if err != nil {
				writeError(w, http.StatusBadRequest, "%v", err)
				return
			}
			// Per-dataset concurrent-fit cap: the expensive section (CSV
			// decode + fit) starts here, and fits against one dataset all
			// contend for the same ε budget — shed the pile-up with 429
			// before any of it is spent.
			leave, ok := s.fits.enter(datasetID)
			if !ok {
				writeRetryAfter(w, http.StatusTooManyRequests, s.retryAfterSeconds(),
					"too many concurrent fits for dataset %q, retry later", datasetID)
				return
			}
			defer leave()
			// Meter before reading a single row: the budget guards data
			// access, and a rejected fit must not consume the upload.
			if idemKey == "" {
				if err := s.ledger.Charge(datasetID, epsilon); err != nil {
					writeError(w, statusFor(err), "%v", err)
					return
				}
			} else {
				// The model id is pinned before charging so it rides in
				// the WAL charge record: after a crash, the retried
				// request finds the recorded charge (duplicate) and
				// finishes the fit under the same id without spending ε
				// again.
				if modelID == "" {
					modelID = s.freshID(datasetID + "-fit")
				}
				if s.idCollidesWithLedger(modelID) {
					writeError(w, http.StatusBadRequest, "model id %q collides with the ledger file", modelID)
					return
				}
				dup, prevID, err := s.ledger.ChargeIdempotent(datasetID, epsilon, idemKey, modelID)
				if err != nil {
					writeError(w, statusFor(err), "%v", err)
					return
				}
				if dup {
					modelID = prevID
					// ChargeIdempotent has verified the retry matches the
					// recorded charge. If the fit also completed, replay
					// its result without reading the data; otherwise the
					// first attempt died after the durable charge (crash,
					// failure) — finish the work now, charging nothing.
					if _, meta, err := s.registry.Get(modelID); err == nil {
						s.metrics.fits.With("replayed").Inc()
						w.Header().Set("X-Privbayes-Idempotency-Replay", "true")
						writeJSON(w, http.StatusOK, meta)
						return
					}
				}
			}
			charged = true
			// Spool the CSV to disk instead of materializing it: the fit
			// below scans the spool file in bounded chunks, so request
			// memory stays flat no matter how many rows arrive. The 413
			// cap still applies — MaxBytesReader fails the copy.
			spool, err = s.spoolCSV(part)
			if err != nil {
				refund()
				// statusFor distinguishes an upload that blew the size
				// cap (413) from an unreadable body (400).
				writeError(w, statusFor(err), "%v", err)
				return
			}
			continue
		}
		val, err := readFormValue(part)
		if err != nil {
			writeError(w, http.StatusBadRequest, "field %s: %v", name, err)
			return
		}
		switch name {
		case "dataset_id":
			if !ValidID(val) {
				writeError(w, http.StatusBadRequest, "invalid dataset_id %q", val)
				return
			}
			datasetID = val
		case "model_id":
			if !ValidID(val) {
				writeError(w, http.StatusBadRequest, "invalid model_id %q", val)
				return
			}
			modelID = val
		case "epsilon":
			epsilon, err = strconv.ParseFloat(val, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, "field epsilon: %v", err)
				return
			}
			haveEpsilon = true
		case "seed":
			seed, err = strconv.ParseInt(val, 10, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, "field seed: %v", err)
				return
			}
			haveSeed = true
		case "parallelism":
			par, err = strconv.Atoi(val)
			if err != nil {
				writeError(w, http.StatusBadRequest, "field parallelism: %v", err)
				return
			}
		case "schema":
			if err := json.Unmarshal([]byte(val), &specs); err != nil {
				writeError(w, http.StatusBadRequest, "field schema: %v", err)
				return
			}
		default:
			writeError(w, http.StatusBadRequest, "unknown field %q", name)
			return
		}
	}
	if spool == "" {
		refund()
		writeError(w, http.StatusBadRequest, "missing data part")
		return
	}
	// Probe the spooled file before committing workers to the fit: a bad
	// header, an undecodable first row, or an empty body reject here with
	// the same diagnostics the in-memory decode used to produce.
	if err := probeCSV(spool, attrs); err != nil {
		refund()
		writeError(w, statusFor(err), "%v", err)
		return
	}
	if modelID == "" {
		modelID = s.freshID(datasetID + "-fit")
	}
	if s.idCollidesWithLedger(modelID) {
		refund()
		writeError(w, http.StatusBadRequest, "model id %q collides with the ledger file", modelID)
		return
	}
	if _, _, err := s.registry.Get(modelID); err == nil {
		refund()
		writeError(w, http.StatusConflict, "model id %q already registered", modelID)
		return
	}
	if !haveSeed {
		seed = rand.Int63()
	}

	// The fit itself runs on workers from the shared budget, like any
	// synthesis chunk. Overload sheds with 503 — the refund (which for
	// keyed fits also forgets the key) makes the retry a clean slate.
	got, release, err := s.workers.acquire(r.Context(), s.requestWorkers(par), true)
	if err != nil {
		refund()
		if errors.Is(err, errOverloaded) {
			writeRetryAfter(w, http.StatusServiceUnavailable, s.retryAfterSeconds(),
				"server overloaded: worker queue full, retry later")
		}
		return
	}
	// The request context cancels the fit: when the client disconnects
	// mid-fit, the greedy loop stops within one scoring batch instead
	// of running to completion server-side, and the error path below
	// refunds the ledger — an abandoned fit releases nothing, so it
	// must cost nothing.
	fitOpts := []privbayes.Option{
		privbayes.WithEpsilon(epsilon),
		privbayes.WithSeed(seed),
		privbayes.WithParallelism(max(got, 2)), // stay on the worker-count-independent paths
	}
	if s.metrics.enabled() {
		// The progress adapter only reads the clock on serialized
		// events; it cannot reorder pipeline work or touch the fit's
		// seeded RNG, so the fitted model is identical with telemetry
		// on and off.
		pt := &phaseTimer{m: s.metrics}
		fitOpts = append(fitOpts, privbayes.WithProgress(pt.observe))
	}
	// The fit scans the spool file in bounded chunks (one pass per greedy
	// iteration) instead of materializing the rows: peak memory is set by
	// FitChunkRows, not the upload size, and the fitted model is
	// byte-identical to the in-memory path for the same seed.
	model, err := privbayes.FitScanner(r.Context(), privbayes.CSVSource(spool, attrs, s.cfg.FitChunkRows), fitOpts...)
	release()
	if err != nil {
		// The failed (or cancelled) fit released nothing observable, so
		// the budget charge is returned (sequential composition meters
		// releases).
		refund()
		s.metrics.fits.With("failed").Inc()
		writeError(w, http.StatusBadRequest, "fit: %v", err)
		return
	}
	if err := s.registry.Put(modelID, "fit", model, epsilon); err != nil {
		refund()
		s.metrics.fits.With("failed").Inc()
		writeError(w, statusFor(err), "%v", err)
		return
	}
	s.persist(modelID, model, epsilon)
	s.metrics.fits.With("created").Inc()
	_, meta, _ := s.registry.Get(modelID)
	w.Header().Set("X-Privbayes-Seed", strconv.FormatInt(seed, 10))
	writeJSON(w, http.StatusCreated, meta)
}

// maxFieldBytes bounds one scalar multipart field (the schema JSON is
// the largest legitimate one).
const maxFieldBytes = 4 << 20

func readFormValue(part io.Reader) (string, error) {
	buf, err := io.ReadAll(io.LimitReader(part, maxFieldBytes+1))
	if err != nil {
		return "", err
	}
	if len(buf) > maxFieldBytes {
		return "", fmt.Errorf("field exceeds %d bytes", maxFieldBytes)
	}
	return string(buf), nil
}
