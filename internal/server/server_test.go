package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"privbayes"
	"privbayes/internal/accountant"
	"privbayes/internal/core"
	"privbayes/internal/dataset"
)

// testSchema is a small mixed schema: categorical, continuous (with its
// automatic binary taxonomy), categorical.
func testSchema() []dataset.Attribute {
	return []dataset.Attribute{
		dataset.NewCategorical("color", []string{"red", "green", "blue"}),
		dataset.NewContinuous("age", 0, 80, 8),
		dataset.NewCategorical("employed", []string{"no", "yes"}),
	}
}

// testData draws n correlated rows over testSchema.
func testData(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := dataset.NewWithCapacity(testSchema(), n)
	rec := make([]uint16, 3)
	for i := 0; i < n; i++ {
		color := rng.Intn(3)
		age := rng.Intn(8)
		employed := 0
		if age > 2 && rng.Float64() < 0.8 {
			employed = 1
		}
		rec[0], rec[1], rec[2] = uint16(color), uint16(age), uint16(employed)
		ds.Append(rec)
	}
	return ds
}

// fitTestModel fits one deterministic model for the fixtures.
func fitTestModel(t testing.TB) *core.Model {
	t.Helper()
	m, err := privbayes.Fit(context.Background(), testData(3000, 7),
		privbayes.WithEpsilon(1.0), privbayes.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// newTestServer stands up a Server (with the given config) behind
// httptest, pre-registering the fixture model as "fixture".
func newTestServer(t testing.TB, cfg Config) (*Server, *Client, *core.Model) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := fitTestModel(t)
	if err := s.Registry().Put("fixture", "dir", m, 1.0); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, NewClient(ts.URL), m
}

func TestHealthAndModelMetadata(t *testing.T) {
	_, c, m := newTestServer(t, Config{})
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	models, err := c.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || models[0].ID != "fixture" {
		t.Fatalf("models = %+v", models)
	}
	meta, err := c.Model(ctx, "fixture")
	if err != nil {
		t.Fatal(err)
	}
	if meta.Epsilon != 1.0 {
		t.Errorf("epsilon = %g", meta.Epsilon)
	}
	if len(meta.Attrs) != 3 || meta.Attrs[0].Name != "color" || meta.Attrs[1].Kind != "continuous" {
		t.Errorf("schema = %+v", meta.Attrs)
	}
	if len(meta.Network) != 3 {
		t.Errorf("network = %+v", meta.Network)
	}
	if meta.Degree != m.Network.Degree() {
		t.Errorf("degree = %d, want %d", meta.Degree, m.Network.Degree())
	}
	if _, err := c.Model(ctx, "nope"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown model: %v", err)
	}
}

// TestSynthesizeMatchesSampleP is the serving determinism contract: the
// streamed chunked response must be byte-identical to a monolithic
// SampleP call with the same seed — which also pins that streaming at
// any chunk boundary, worker count, or server load never changes the
// data a client receives.
func TestSynthesizeMatchesSampleP(t *testing.T) {
	_, c, m := newTestServer(t, Config{MaxWorkers: 3})
	// Crosses several streamRows chunks and ends mid-chunk.
	n := 2*streamRows + 5_000
	seed := int64(99)

	stream, err := c.Synthesize(context.Background(), "fixture", SynthesizeRequest{N: n, Seed: &seed, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	if stream.Seed != seed {
		t.Errorf("echoed seed = %d, want %d", stream.Seed, seed)
	}
	got, err := io.ReadAll(stream.Body)
	if err != nil {
		t.Fatal(err)
	}

	want := new(bytes.Buffer)
	if err := m.SampleP(n, rand.New(rand.NewSource(seed)), 4).WriteCSV(want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("streamed CSV differs from SampleP reference (%d vs %d bytes)", len(got), want.Len())
	}

	// Replaying the echoed seed reproduces the stream byte for byte.
	again, err := c.Synthesize(context.Background(), "fixture", SynthesizeRequest{N: n, Seed: &stream.Seed})
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	raw, err := io.ReadAll(again.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, got) {
		t.Error("same seed did not reproduce the stream")
	}
}

func TestSynthesizeJSONL(t *testing.T) {
	_, c, _ := newTestServer(t, Config{})
	seed := int64(5)
	stream, err := c.Synthesize(context.Background(), "fixture", SynthesizeRequest{N: 1000, Seed: &seed, Format: "jsonl"})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	sc := bufio.NewScanner(stream.Body)
	rows := 0
	for sc.Scan() {
		var row map[string]any
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("row %d: %v", rows+1, err)
		}
		if len(row) != 3 {
			t.Fatalf("row %d has %d fields", rows+1, len(row))
		}
		if _, ok := row["color"].(string); !ok {
			t.Fatalf("row %d color = %v", rows+1, row["color"])
		}
		if _, ok := row["age"].(float64); !ok {
			t.Fatalf("row %d age = %v", rows+1, row["age"])
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != 1000 {
		t.Errorf("rows = %d, want 1000", rows)
	}
}

func TestSynthesizeValidation(t *testing.T) {
	_, c, _ := newTestServer(t, Config{MaxSynthesisRows: 1000})
	ctx := context.Background()
	cases := []struct {
		name string
		req  SynthesizeRequest
		id   string
		want string
	}{
		{"missing n", SynthesizeRequest{}, "fixture", "n must be"},
		{"n too big", SynthesizeRequest{N: 5000}, "fixture", "n must be"},
		{"bad format", SynthesizeRequest{N: 10, Format: "parquet"}, "fixture", "format"},
		{"unknown model", SynthesizeRequest{N: 10}, "ghost", "404"},
	}
	for _, tc := range cases {
		if _, err := c.Synthesize(ctx, tc.id, tc.req); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestUploadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	_, c, m := newTestServer(t, Config{ModelsDir: dir})
	ctx := context.Background()

	var artifact bytes.Buffer
	if err := privbayes.SaveModel(&artifact, m, 0.7); err != nil {
		t.Fatal(err)
	}
	meta, err := c.Upload(ctx, "uploaded", bytes.NewReader(artifact.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if meta.ID != "uploaded" || meta.Epsilon != 0.7 || meta.Source != "upload" {
		t.Errorf("meta = %+v", meta)
	}
	// Persisted for restart.
	if _, err := os.Stat(filepath.Join(dir, "uploaded.json")); err != nil {
		t.Errorf("artifact not persisted: %v", err)
	}
	// Duplicate id → conflict.
	if _, err := c.Upload(ctx, "uploaded", bytes.NewReader(artifact.Bytes())); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("duplicate upload: %v", err)
	}
	// Malformed artifact → 422, typed rejection.
	if _, err := c.Upload(ctx, "bad", strings.NewReader(`{"version":1,"model":{"Attrs":[]}}`)); err == nil || !strings.Contains(err.Error(), "422") {
		t.Errorf("malformed upload: %v", err)
	}

	// A fresh server over the same directory reloads the artifact.
	s2, err := New(Config{ModelsDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, meta2, err := s2.Registry().Get("uploaded"); err != nil || meta2.Epsilon != 0.7 {
		t.Errorf("reloaded: meta=%+v err=%v", meta2, err)
	}
}

// TestGeneratedIDsSurviveRestart: the id counter restarts at zero with
// the process, but anonymous uploads must not collide with generated
// ids persisted by a previous run.
// TestLedgerFileCannotBeClobbered: with the ledger inside the models
// dir (the `make serve` default), a model registered as "ledger" must
// not overwrite the privacy ledger — and a ledger file clobbered some
// other way must fail closed at Open rather than load as empty.
func TestLedgerFileCannotBeClobbered(t *testing.T) {
	dir := t.TempDir()
	ledgerPath := filepath.Join(dir, "ledger.json")
	ledger, err := accountant.Open(ledgerPath, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ledger.Charge("d", 0.9); err != nil {
		t.Fatal(err)
	}
	_, c, m := newTestServer(t, Config{ModelsDir: dir, Ledger: ledger})

	var artifact bytes.Buffer
	if err := m.WriteJSON(&artifact, 1); err != nil {
		t.Fatal(err)
	}
	_, err = c.Upload(context.Background(), "ledger", bytes.NewReader(artifact.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "collides with the ledger") {
		t.Fatalf("upload as 'ledger': %v", err)
	}
	// The spend survives on disk.
	back, err := accountant.Open(ledgerPath, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if e := back.Get("d"); e.Spent != 0.9 {
		t.Errorf("ledger entry after attack = %+v", e)
	}

	// Fail-closed: a model artifact written over the ledger path is
	// rejected at Open, never silently loaded as an empty ledger.
	if err := os.WriteFile(ledgerPath, artifact.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := accountant.Open(ledgerPath, 1.0); err == nil {
		t.Error("clobbered ledger must fail to open")
	}
}

// TestLoadDirSkipsLedgerFile: the ledger living in the models dir must
// not produce a spurious "corrupt model" load error.
func TestLoadDirSkipsLedgerFile(t *testing.T) {
	dir := t.TempDir()
	ledger, err := accountant.Open(filepath.Join(dir, "ledger.json"), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ledger.Charge("d", 0.1); err != nil { // materialize the file
		t.Fatal(err)
	}
	var logs []string
	s, err := New(Config{ModelsDir: dir, Ledger: ledger,
		Logf: func(f string, a ...any) { logs = append(logs, fmt.Sprintf(f, a...)) }})
	if err != nil {
		t.Fatal(err)
	}
	if s.Registry().Len() != 0 {
		t.Errorf("registry = %d models", s.Registry().Len())
	}
	for _, l := range logs {
		if strings.Contains(l, "skipping") {
			t.Errorf("ledger file produced a load error: %s", l)
		}
	}
}

func TestFreshIDCapsLength(t *testing.T) {
	s, _, _ := newTestServer(t, Config{})
	id := s.freshID(strings.Repeat("d", 127) + "-fit")
	if !ValidID(id) {
		t.Errorf("generated id %q (len %d) fails ValidID", id, len(id))
	}
}

func TestGeneratedIDsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	m := fitTestModel(t)
	var artifact bytes.Buffer
	if err := m.WriteJSON(&artifact, 1); err != nil {
		t.Fatal(err)
	}
	raw := artifact.Bytes()

	s1, err := New(Config{ModelsDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)
	c1 := NewClient(ts1.URL)
	meta, err := c1.Upload(context.Background(), "", bytes.NewReader(raw))
	ts1.Close()
	if err != nil {
		t.Fatal(err)
	}
	if meta.ID != "upload-1" {
		t.Fatalf("first generated id = %q", meta.ID)
	}

	// "Restart": fresh server, same dir — upload-1 reloads from disk.
	s2, err := New(Config{ModelsDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	meta2, err := NewClient(ts2.URL).Upload(context.Background(), "", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("anonymous upload after restart: %v", err)
	}
	if meta2.ID != "upload-2" {
		t.Errorf("post-restart generated id = %q, want upload-2", meta2.ID)
	}
}

// TestUploadTooLargeGets413: blowing the size cap is a 413, not a 422
// claiming the (possibly valid) artifact is malformed.
func TestUploadTooLargeGets413(t *testing.T) {
	_, c, m := newTestServer(t, Config{MaxUploadBytes: 512})
	var artifact bytes.Buffer
	if err := m.WriteJSON(&artifact, 1); err != nil {
		t.Fatal(err)
	}
	if artifact.Len() <= 512 {
		t.Fatalf("fixture artifact unexpectedly small: %d bytes", artifact.Len())
	}
	_, err := c.Upload(context.Background(), "big", &artifact)
	if err == nil || !strings.Contains(err.Error(), "413") {
		t.Errorf("oversized upload: %v", err)
	}
}

func TestLoadDirSkipsCorruptArtifacts(t *testing.T) {
	dir := t.TempDir()
	m := fitTestModel(t)
	f, err := os.Create(filepath.Join(dir, "good.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteJSON(f, 1); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := os.WriteFile(filepath.Join(dir, "corrupt.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	var logs []string
	s, err := New(Config{ModelsDir: dir, Logf: func(f string, a ...any) { logs = append(logs, fmt.Sprintf(f, a...)) }})
	if err != nil {
		t.Fatal(err)
	}
	if s.Registry().Len() != 1 {
		t.Errorf("registry has %d models, want 1 (corrupt skipped)", s.Registry().Len())
	}
	if len(logs) < 2 { // one skip line + one loaded line
		t.Errorf("logs = %v", logs)
	}
}

func TestMarginalMatchesInference(t *testing.T) {
	_, c, m := newTestServer(t, Config{})
	res, err := c.Marginal(context.Background(), "fixture", []string{"color", "employed"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.InferMarginal([]int{0, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.P) != len(want.P) {
		t.Fatalf("got %d cells, want %d", len(res.P), len(want.P))
	}
	var sum float64
	for i := range res.P {
		if math.Abs(res.P[i]-want.P[i]) > 1e-12 {
			t.Fatalf("cell %d: %g vs %g", i, res.P[i], want.P[i])
		}
		sum += res.P[i]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("marginal sums to %g", sum)
	}
	if _, err := c.Marginal(context.Background(), "fixture", []string{"ghost"}, 0); err == nil {
		t.Error("unknown attribute must fail")
	}
	if _, err := c.Marginal(context.Background(), "fixture", nil, 0); err == nil {
		t.Error("empty attribute list must fail")
	}
}

// fitCSV renders a dataset as the CSV a curator would upload.
func fitCSV(t testing.TB, ds *dataset.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFitCuratorMode(t *testing.T) {
	dir := t.TempDir()
	ledger := accountant.New(1.0)
	_, c, _ := newTestServer(t, Config{ModelsDir: dir, Ledger: ledger})
	ctx := context.Background()
	raw := fitCSV(t, testData(2000, 21))
	seed := int64(3)

	meta, err := c.Fit(ctx, FitRequest{
		DatasetID: "survey", Epsilon: 0.6, ModelID: "survey-v1", Seed: &seed,
		Schema: SpecsFromAttrs(testSchema()), Data: bytes.NewReader(raw),
	})
	if err != nil {
		t.Fatal(err)
	}
	if meta.ID != "survey-v1" || meta.Source != "fit" || meta.Epsilon != 0.6 {
		t.Errorf("meta = %+v", meta)
	}
	// The fitted model serves immediately.
	stream, err := c.Synthesize(ctx, "survey-v1", SynthesizeRequest{N: 100, Seed: &seed})
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, stream.Body)
	stream.Close()
	// And is persisted.
	if _, err := os.Stat(filepath.Join(dir, "survey-v1.json")); err != nil {
		t.Errorf("fitted model not persisted: %v", err)
	}
	// Ledger reflects the spend.
	budget, err := c.Budget(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if e := budget["survey"]; math.Abs(e.Spent-0.6) > 1e-12 || e.Budget != 1.0 {
		t.Errorf("ledger entry = %+v", e)
	}

	// Second fit would push survey to 1.2 > 1.0 → 403, nothing spent.
	_, err = c.Fit(ctx, FitRequest{
		DatasetID: "survey", Epsilon: 0.6,
		Schema: SpecsFromAttrs(testSchema()), Data: bytes.NewReader(raw),
	})
	if err == nil || !strings.Contains(err.Error(), "403") || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("over-budget fit: %v", err)
	}
	if e := ledger.Get("survey"); math.Abs(e.Spent-0.6) > 1e-12 {
		t.Errorf("rejected fit changed the ledger: %+v", e)
	}

	// A fit that charges but fails mid-CSV refunds.
	_, err = c.Fit(ctx, FitRequest{
		DatasetID: "survey", Epsilon: 0.3,
		Schema: SpecsFromAttrs(testSchema()),
		Data:   strings.NewReader("color,age,employed\nmagenta,10,yes\n"),
	})
	if err == nil || !strings.Contains(err.Error(), "unknown label") {
		t.Fatalf("bad CSV fit: %v", err)
	}
	if e := ledger.Get("survey"); math.Abs(e.Spent-0.6) > 1e-12 {
		t.Errorf("failed fit not refunded: %+v", e)
	}
}

// TestFitCancelledClientRefundsLedger: a client that disconnects while
// its curator-mode fit is running must not be charged — the request
// context aborts the greedy loop promptly and the handler refunds the
// ε it metered up front. The fixture fit takes seconds uncancelled
// (binary d=16, n=100k selects a high degree), so the cancellation
// demonstrably lands mid-fit, and the refund poll doubles as a
// promptness check.
func TestFitCancelledClientRefundsLedger(t *testing.T) {
	ledger := accountant.New(10.0)
	_, c, _ := newTestServer(t, Config{Ledger: ledger})

	attrs := make([]dataset.Attribute, 16)
	for i := range attrs {
		attrs[i] = dataset.NewCategorical(string(rune('a'+i)), []string{"0", "1"})
	}
	ds := dataset.NewWithCapacity(attrs, 100_000)
	rec := make([]uint16, len(attrs))
	for r := 0; r < 100_000; r++ {
		for col := range rec {
			rec[col] = uint16((r*(col+3) + col*r/7 + r/11) % 2)
		}
		ds.Append(rec)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seed := int64(5)
	errc := make(chan error, 1)
	go func() {
		_, err := c.Fit(ctx, FitRequest{
			DatasetID: "cancelme", Epsilon: 0.3, Seed: &seed,
			Schema: SpecsFromAttrs(attrs), Data: bytes.NewReader(fitCSV(t, ds)),
		})
		errc <- err
	}()

	// The handler charges before touching a row; once the spend is
	// visible, give the upload time to finish parsing so the fit is
	// underway, then kill the client.
	deadline := time.Now().Add(20 * time.Second)
	for ledger.Get("cancelme").Spent == 0 {
		if time.Now().After(deadline) {
			t.Fatal("fit never charged the ledger")
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(500 * time.Millisecond)
	cancel()

	if err := <-errc; err == nil {
		t.Fatal("cancelled fit reported success to the client")
	}
	refundBy := time.Now().Add(10 * time.Second)
	for ledger.Get("cancelme").Spent != 0 {
		if time.Now().After(refundBy) {
			t.Fatalf("cancelled fit never refunded: %+v", ledger.Get("cancelme"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Nothing half-fitted may serve.
	if _, err := c.Model(context.Background(), "cancelme-fit-1"); err == nil {
		t.Error("cancelled fit registered a model")
	}
}

func TestFitDisabledWithoutLedger(t *testing.T) {
	_, c, _ := newTestServer(t, Config{})
	_, err := c.Fit(context.Background(), FitRequest{
		DatasetID: "d", Epsilon: 0.5,
		Schema: SpecsFromAttrs(testSchema()),
		Data:   bytes.NewReader(fitCSV(t, testData(100, 1))),
	})
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Errorf("fit without ledger: %v", err)
	}
}

func TestFitSeedDeterminism(t *testing.T) {
	ledger := accountant.New(10)
	_, c, _ := newTestServer(t, Config{Ledger: ledger})
	ctx := context.Background()
	raw := fitCSV(t, testData(1500, 5))
	seed := int64(77)
	sseed := int64(1)

	var outs [][]byte
	for i := 0; i < 2; i++ {
		meta, err := c.Fit(ctx, FitRequest{
			DatasetID: "det", Epsilon: 0.4, ModelID: fmt.Sprintf("det-%d", i), Seed: &seed,
			Schema: SpecsFromAttrs(testSchema()), Data: bytes.NewReader(raw),
		})
		if err != nil {
			t.Fatal(err)
		}
		stream, err := c.Synthesize(ctx, meta.ID, SynthesizeRequest{N: 500, Seed: &sseed})
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(stream.Body)
		stream.Close()
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, raw)
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Error("same fit seed + same synthesis seed must reproduce identical data")
	}
}

// TestConcurrentSynthesisSharesWorkerBudget drives several simultaneous
// streams through a 2-worker budget: all must complete, and the budget
// must return to full when the requests drain — the invariant that a
// slow or dead client cannot pin workers.
func TestConcurrentSynthesisSharesWorkerBudget(t *testing.T) {
	s, c, _ := newTestServer(t, Config{MaxWorkers: 2})
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, 6)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seed := int64(i)
			stream, err := c.Synthesize(ctx, "fixture", SynthesizeRequest{N: streamRows + 100, Seed: &seed, Parallelism: 8})
			if err != nil {
				errs[i] = err
				return
			}
			defer stream.Close()
			// Read slowly enough to interleave chunks across requests.
			buf := make([]byte, 64<<10)
			for {
				_, err := stream.Body.Read(buf)
				if err == io.EOF {
					return
				}
				if err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("stream %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.workers.available() != 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.workers.available(); got != 2 {
		t.Errorf("worker budget leaked: %d of 2 available", got)
	}
}

// TestAbandonedRequestReleasesWorkers cancels a stream mid-read and
// checks the budget recovers.
func TestAbandonedRequestReleasesWorkers(t *testing.T) {
	s, c, _ := newTestServer(t, Config{MaxWorkers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	seed := int64(1)
	stream, err := c.Synthesize(ctx, "fixture", SynthesizeRequest{N: 4 * streamRows, Seed: &seed})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	stream.Body.Read(buf)
	cancel()
	stream.Close()
	deadline := time.Now().Add(5 * time.Second)
	for s.workers.available() != 1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.workers.available(); got != 1 {
		t.Errorf("abandoned request pinned the worker budget: %d of 1 available", got)
	}
}

func TestWorkerBudgetAcquire(t *testing.T) {
	b := newWorkerBudget(4, 64)
	ctx := context.Background()

	got, release, err := b.acquire(ctx, 3, false)
	if err != nil || got != 3 {
		t.Fatalf("acquire(3) = %d, %v", got, err)
	}
	// Elastic above the floor: asks for 8 but only 1 slot free — below
	// the 2-slot determinism floor, so it blocks until a release, then
	// takes everything available.
	done := make(chan int, 1)
	go func() {
		g, rel, err := b.acquire(ctx, 8, false)
		if err == nil {
			rel()
		}
		done <- g
	}()
	select {
	case g := <-done:
		t.Fatalf("acquire below the floor returned %d immediately", g)
	case <-time.After(50 * time.Millisecond):
	}
	release()
	if g := <-done; g != 4 {
		t.Errorf("unblocked acquire got %d, want 4", g)
	}
	// Asks below the floor are raised to it.
	gotF, relF, err := b.acquire(ctx, 1, false)
	if err != nil || gotF != 2 {
		t.Fatalf("acquire(1) = %d, %v, want floor grant 2", gotF, err)
	}
	relF()
	if b.available() != 4 {
		t.Errorf("available = %d, want 4", b.available())
	}
	// A total budget of 1 has floor 1 (the documented exception).
	b1 := newWorkerBudget(1, 64)
	g1, rel1, err := b1.acquire(ctx, 4, false)
	if err != nil || g1 != 1 {
		t.Fatalf("budget-1 acquire = %d, %v", g1, err)
	}
	rel1()

	// Cancelled context aborts a blocked acquire.
	_, rel3, err := b.acquire(ctx, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	errc := make(chan error, 1)
	go func() {
		_, _, err := b.acquire(cctx, 1, false)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled acquire: %v", err)
	}
	rel3()

	// Double release is idempotent.
	g, rel, err := b.acquire(ctx, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel()
	if b.available() != 4 {
		t.Errorf("double release corrupted the budget: %d (granted %d)", b.available(), g)
	}
}

// TestFitRejectsFieldsAfterData guards the metering order: the ledger
// is charged from the fields in hand when the data part arrives, so a
// field accepted afterwards could rewrite ε after the charge. Any such
// request must be rejected outright with the charge refunded.
func TestFitRejectsFieldsAfterData(t *testing.T) {
	ledger := accountant.New(10)
	_, c, _ := newTestServer(t, Config{Ledger: ledger})

	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	mw.WriteField("dataset_id", "sneaky")
	mw.WriteField("epsilon", "0.1")
	schema, _ := json.Marshal(SpecsFromAttrs(testSchema()))
	mw.WriteField("schema", string(schema))
	fw, _ := mw.CreateFormFile("data", "data.csv")
	fw.Write(fitCSV(t, testData(500, 31)))
	mw.WriteField("epsilon", "50") // after the charge — must be refused
	mw.Close()

	req, _ := http.NewRequest(http.MethodPost, c.BaseURL+"/fit", &body)
	req.Header.Set("Content-Type", mw.FormDataContentType())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), "data must come last") {
		t.Errorf("body = %s", raw)
	}
	if e := ledger.Get("sneaky"); e.Spent != 0 {
		t.Errorf("rejected request left ε=%g charged", e.Spent)
	}
}

// TestFitRejectsMalformedTrailingPart: a part with broken MIME headers
// after the data part must reject the whole fit (with refund), not be
// silently dropped from an accepted one.
func TestFitRejectsMalformedTrailingPart(t *testing.T) {
	ledger := accountant.New(10)
	_, c, _ := newTestServer(t, Config{Ledger: ledger})
	schema, _ := json.Marshal(SpecsFromAttrs(testSchema()))
	csv := fitCSV(t, testData(300, 8))

	const b = "testboundary42"
	var body bytes.Buffer
	field := func(name, val string) {
		fmt.Fprintf(&body, "--%s\r\nContent-Disposition: form-data; name=%q\r\n\r\n%s\r\n", b, name, val)
	}
	field("dataset_id", "malformed")
	field("epsilon", "0.2")
	field("schema", string(schema))
	fmt.Fprintf(&body, "--%s\r\nContent-Disposition: form-data; name=\"data\"; filename=\"d.csv\"\r\nContent-Type: text/csv\r\n\r\n%s\r\n", b, csv)
	fmt.Fprintf(&body, "--%s\r\nHeaderWithoutColon\r\n\r\nx\r\n--%s--\r\n", b, b)

	req, _ := http.NewRequest(http.MethodPost, c.BaseURL+"/fit", &body)
	req.Header.Set("Content-Type", "multipart/form-data; boundary="+b)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, body = %s", resp.StatusCode, raw)
	}
	if e := ledger.Get("malformed"); e.Spent != 0 {
		t.Errorf("malformed request left ε=%g charged", e.Spent)
	}
}

// TestMarginalClampsMaxCells: an adversarial max_cells cannot lift the
// server's inference-memory ceiling — the request still succeeds on a
// small model because the bound is clamped, not trusted.
func TestMarginalClampsMaxCells(t *testing.T) {
	_, c, _ := newTestServer(t, Config{})
	res, err := c.Marginal(context.Background(), "fixture", []string{"color"}, 1<<60)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.P) != 3 {
		t.Fatalf("cells = %d", len(res.P))
	}
}

// TestSynthesizePOSTJSONBody covers the POST body path, including the
// charset-bearing Content-Type most HTTP libraries send.
func TestSynthesizePOSTJSONBody(t *testing.T) {
	_, c, _ := newTestServer(t, Config{})
	body := `{"n": 100, "seed": 3, "format": "csv"}`
	req, _ := http.NewRequest(http.MethodPost, c.BaseURL+"/models/fixture/synthesize", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json; charset=utf-8")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("X-Privbayes-Seed"); got != "3" {
		t.Errorf("seed header = %q", got)
	}
	sc := bufio.NewScanner(resp.Body)
	lines := 0
	for sc.Scan() {
		lines++
	}
	if lines != 101 { // header + 100 rows
		t.Errorf("lines = %d, want 101", lines)
	}
}

func TestRequestWorkersHonorsPerRequestCap(t *testing.T) {
	s, _, _ := newTestServer(t, Config{MaxWorkers: 8, MaxRequestParallelism: 3})
	cases := map[int]int{0: 3, 1: 1, 3: 3, 4: 3, 1000: 3}
	for asked, want := range cases {
		if got := s.requestWorkers(asked); got != want {
			t.Errorf("requestWorkers(%d) = %d, want %d", asked, got, want)
		}
	}
}

func TestSchemaFromSpecsValidation(t *testing.T) {
	good := SpecsFromAttrs(testSchema())
	if attrs, err := SchemaFromSpecs(good); err != nil || len(attrs) != 3 {
		t.Fatalf("round trip: %v", err)
	}
	cases := []struct {
		name string
		mod  func([]AttrSpec) []AttrSpec
	}{
		{"empty", func(s []AttrSpec) []AttrSpec { return nil }},
		{"no name", func(s []AttrSpec) []AttrSpec { s[0].Name = ""; return s }},
		{"dup name", func(s []AttrSpec) []AttrSpec { s[1].Name = s[0].Name; return s }},
		{"bad kind", func(s []AttrSpec) []AttrSpec { s[0].Kind = "ordinal"; return s }},
		{"no labels", func(s []AttrSpec) []AttrSpec { s[0].Labels = nil; return s }},
		{"dup labels", func(s []AttrSpec) []AttrSpec { s[0].Labels = []string{"a", "a"}; return s }},
		{"zero bins", func(s []AttrSpec) []AttrSpec { s[1].Bins = 0; return s }},
		{"inverted range", func(s []AttrSpec) []AttrSpec { s[1].Min, s[1].Max = 5, -5; return s }},
		{"nan min", func(s []AttrSpec) []AttrSpec { s[1].Min = math.NaN(); return s }},
	}
	for _, tc := range cases {
		specs := SpecsFromAttrs(testSchema())
		if _, err := SchemaFromSpecs(tc.mod(specs)); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}
