package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"mime/multipart"
	"net/http"
	"strings"
	"testing"

	"privbayes/internal/accountant"
)

// rawRequest sends one hand-built HTTP request and returns status and
// decoded error body (or raw body when not an error document).
func rawRequest(t *testing.T, method, url, contentType string, body io.Reader) (int, string) {
	t.Helper()
	req, err := http.NewRequestWithContext(context.Background(), method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
		return resp.StatusCode, eb.Error
	}
	return resp.StatusCode, string(raw)
}

// multipartBody assembles a fit form from ordered (name, value) pairs;
// the field named "data" is written as a file part.
func multipartBody(t *testing.T, fields [][2]string) (io.Reader, string) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for _, f := range fields {
		if f[0] == "data" {
			fw, err := mw.CreateFormFile("data", "data.csv")
			if err != nil {
				t.Fatal(err)
			}
			io.WriteString(fw, f[1])
			continue
		}
		if err := mw.WriteField(f[0], f[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	return &buf, mw.FormDataContentType()
}

// TestErrorPaths is the table-driven error-path audit of every
// endpoint: malformed query parameters, unknown ids, over-cap asks,
// bad JSON bodies and garbage uploads must map to the documented 4xx
// statuses with a JSON error body — never a 500, never a hang.
func TestErrorPaths(t *testing.T) {
	_, c, _ := newTestServer(t, Config{MaxSynthesisRows: 1000})
	base := c.BaseURL

	cases := []struct {
		name        string
		method      string
		path        string
		contentType string
		body        string
		wantStatus  int
		wantErr     string
	}{
		{"unknown model metadata", "GET", "/models/ghost", "", "", 404, "ghost"},
		{"unknown model synthesize", "GET", "/models/ghost/synthesize?n=10", "", "", 404, "ghost"},
		{"unknown model marginal", "POST", "/models/ghost/marginal", "application/json", `{"attrs":["color"]}`, 404, "ghost"},

		{"synthesize missing n", "GET", "/models/fixture/synthesize", "", "", 400, "n must be in [1, 1000]"},
		{"synthesize n zero", "GET", "/models/fixture/synthesize?n=0", "", "", 400, "n must be in"},
		{"synthesize n negative", "GET", "/models/fixture/synthesize?n=-4", "", "", 400, "n must be in"},
		{"synthesize n over cap", "GET", "/models/fixture/synthesize?n=1001", "", "", 400, "n must be in [1, 1000]"},
		{"synthesize n not a number", "GET", "/models/fixture/synthesize?n=ten", "", "", 400, "parameter n"},
		{"synthesize bad seed", "GET", "/models/fixture/synthesize?n=5&seed=0x12", "", "", 400, "parameter seed"},
		{"synthesize seed overflow", "GET", "/models/fixture/synthesize?n=5&seed=9223372036854775808", "", "", 400, "parameter seed"},
		{"synthesize bad format", "GET", "/models/fixture/synthesize?n=5&format=parquet", "", "", 400, `unknown format "parquet"`},
		{"synthesize bad parallelism", "GET", "/models/fixture/synthesize?n=5&parallelism=lots", "", "", 400, "parameter parallelism"},
		{"synthesize bad json body", "POST", "/models/fixture/synthesize", "application/json", `{"n":`, 400, "decode request body"},

		{"marginal bad json", "POST", "/models/fixture/marginal", "application/json", `{`, 400, "decode request body"},
		{"marginal no attrs", "POST", "/models/fixture/marginal", "application/json", `{"attrs":[]}`, 400, "at least one attribute"},
		{"marginal unknown attr", "POST", "/models/fixture/marginal", "application/json", `{"attrs":["height"]}`, 400, `unknown attribute "height"`},
		{"marginal over cap", "POST", "/models/fixture/marginal", "application/json", `{"attrs":["color","age"],"max_cells":2}`, 422, "cell cap"},

		{"unknown model query", "POST", "/models/ghost/query", "application/json", `{"kind":"marginal","attrs":[{"name":"color"}]}`, 404, "ghost"},
		{"query bad json", "POST", "/models/fixture/query", "application/json", `{`, 400, "decode request body"},
		{"query unknown kind", "POST", "/models/fixture/query", "application/json", `{"kind":"median"}`, 400, `unknown query kind "median"`},
		{"query no attrs", "POST", "/models/fixture/query", "application/json", `{"kind":"marginal"}`, 400, "names no attributes"},
		{"query unknown attr", "POST", "/models/fixture/query", "application/json", `{"kind":"marginal","attrs":[{"name":"height"}]}`, 400, `unknown attribute "height"`},
		{"query bad level", "POST", "/models/fixture/query", "application/json", `{"kind":"marginal","attrs":[{"name":"color","level":7}]}`, 400, "taxonomy level"},
		{"query over cap", "POST", "/models/fixture/query", "application/json", `{"kind":"marginal","attrs":[{"name":"color"},{"name":"age"}],"max_cells":2}`, 422, "cell cap"},
		{"query prob no predicates", "POST", "/models/fixture/query", "application/json", `{"kind":"prob"}`, 400, "at least one predicate"},
		{"query unknown value", "POST", "/models/fixture/query", "application/json", `{"kind":"prob","where":[{"attr":"color","values":["mauve"]}]}`, 400, `no value "mauve"`},
		{"query target is evidence", "POST", "/models/fixture/query", "application/json", `{"kind":"conditional","attrs":[{"name":"color"}],"where":[{"attr":"color","values":["red"]}]}`, 400, "both a query target and a predicate"},

		{"upload garbage", "POST", "/models", "application/json", `{"version":1,"model":{"Attrs":[]}}`, 422, "invalid model artifact"},
		{"upload empty", "POST", "/models", "application/json", ``, 422, "invalid model artifact"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body io.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			}
			status, msg := rawRequest(t, tc.method, base+tc.path, tc.contentType, body)
			if status != tc.wantStatus {
				t.Errorf("status = %d (%s), want %d", status, msg, tc.wantStatus)
			}
			if !strings.Contains(msg, tc.wantErr) {
				t.Errorf("error = %q, want substring %q", msg, tc.wantErr)
			}
		})
	}
}

// TestFitMultipartErrorPaths covers curator-mode form validation: every
// malformed upload must be rejected with 400/403 and must leave the
// privacy ledger untouched (or refunded).
func TestFitMultipartErrorPaths(t *testing.T) {
	ledger := accountant.New(1.0)
	_, c, _ := newTestServer(t, Config{Ledger: ledger})
	base := c.BaseURL

	validSchema := `[{"name":"color","kind":"categorical","labels":["red","green","blue"]},` +
		`{"name":"age","kind":"continuous","min":0,"max":80,"bins":8},` +
		`{"name":"employed","kind":"categorical","labels":["no","yes"]}]`
	validCSV := "color,age,employed\nred,10,no\ngreen,44,yes\nblue,68,yes\n"

	cases := []struct {
		name       string
		fields     [][2]string
		wantStatus int
		wantErr    string
	}{
		{"missing data part",
			[][2]string{{"dataset_id", "d1"}, {"epsilon", "1.0"}, {"schema", validSchema}},
			400, "missing data part"},
		{"data before metadata",
			[][2]string{{"data", validCSV}},
			400, "dataset_id, epsilon and schema must precede the data part"},
		{"invalid dataset id",
			[][2]string{{"dataset_id", "../evil"}, {"epsilon", "1.0"}},
			400, "invalid dataset_id"},
		{"invalid model id",
			[][2]string{{"dataset_id", "d1"}, {"model_id", "a b c"}},
			400, "invalid model_id"},
		{"bad epsilon",
			[][2]string{{"dataset_id", "d1"}, {"epsilon", "one"}},
			400, "field epsilon"},
		{"bad seed",
			[][2]string{{"dataset_id", "d1"}, {"epsilon", "1.0"}, {"seed", "s7"}},
			400, "field seed"},
		{"bad parallelism",
			[][2]string{{"dataset_id", "d1"}, {"epsilon", "1.0"}, {"parallelism", "all"}},
			400, "field parallelism"},
		{"bad schema json",
			[][2]string{{"dataset_id", "d1"}, {"epsilon", "1.0"}, {"schema", `[{]`}},
			400, "field schema"},
		{"unknown field",
			[][2]string{{"dataset_id", "d1"}, {"gamma", "2"}},
			400, `unknown field "gamma"`},
		{"csv header mismatch",
			[][2]string{{"dataset_id", "d1"}, {"epsilon", "1.0"}, {"schema", validSchema},
				{"data", "a,b,c\nred,10,no\n"}},
			400, "schema expects"},
		{"csv unknown label",
			[][2]string{{"dataset_id", "d1"}, {"epsilon", "1.0"}, {"schema", validSchema},
				{"data", "color,age,employed\nmauve,10,no\n"}},
			400, "unknown label"},
		{"csv no rows",
			[][2]string{{"dataset_id", "d1"}, {"epsilon", "1.0"}, {"schema", validSchema},
				{"data", "color,age,employed\n"}},
			400, "no rows"},
		{"over budget",
			[][2]string{{"dataset_id", "d1"}, {"epsilon", "1.5"}, {"schema", validSchema},
				{"data", validCSV}},
			403, "budget"},
		{"existing model id",
			[][2]string{{"dataset_id", "d1"}, {"model_id", "fixture"}, {"epsilon", "0.2"},
				{"schema", validSchema}, {"data", validCSV}},
			409, "already registered"},
	}
	// A non-multipart body on an enabled /fit endpoint is its own path.
	t.Run("not multipart", func(t *testing.T) {
		status, msg := rawRequest(t, "POST", base+"/fit", "application/json", strings.NewReader(`{}`))
		if status != 400 || !strings.Contains(msg, "multipart body required") {
			t.Errorf("status = %d, error = %q", status, msg)
		}
	})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body, ct := multipartBody(t, tc.fields)
			status, msg := rawRequest(t, "POST", base+"/fit", ct, body)
			if status != tc.wantStatus {
				t.Errorf("status = %d (%s), want %d", status, msg, tc.wantStatus)
			}
			if !strings.Contains(msg, tc.wantErr) {
				t.Errorf("error = %q, want substring %q", msg, tc.wantErr)
			}
		})
	}

	// Every rejection above must have left the d1 budget whole: a
	// failed fit charges nothing (or refunds what it charged).
	if spent := ledger.Snapshot()["d1"].Spent; spent != 0 {
		t.Errorf("ledger spent %g after rejected fits, want 0", spent)
	}
}
