package server

import (
	"bytes"
	"context"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"privbayes/internal/accountant"
)

// testPolicy keeps retry waits negligible in tests.
func testPolicy(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

// TestClientRetriesTransientFailures: 503s with Retry-After are
// absorbed by the policy; the request eventually succeeds.
func TestClientRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			writeError(w, http.StatusServiceUnavailable, "overloaded")
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	c.Retry = testPolicy(4)
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("health after transient 503s: %v", err)
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("server saw %d attempts, want 3", n)
	}
}

// TestClientRetryGivesUp: the policy bounds the attempts, and the last
// failure is reported.
func TestClientRetryGivesUp(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusServiceUnavailable, "still overloaded")
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	c.Retry = testPolicy(3)
	err := c.Health(context.Background())
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("exhausted retries: %v", err)
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("server saw %d attempts, want 3", n)
	}
}

// TestClientDoesNotRetryClientErrors: a 4xx is a fact, not a transient.
func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusNotFound, "no such model")
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	c.Retry = testPolicy(4)
	if err := c.Health(context.Background()); err == nil {
		t.Fatal("expected an error")
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("server saw %d attempts, want 1 (no retry on 404)", n)
	}
}

// TestFitRetryChargesOnce is the end-to-end exactly-once contract: the
// first fit attempt is fully processed server-side, but its response
// never reaches the client (ambiguous failure). The automatic retry —
// same generated Idempotency-Key, rewound body — must return the model
// the first attempt produced, with ε charged exactly once.
func TestFitRetryChargesOnce(t *testing.T) {
	ledger := accountant.New(1.0)
	s, err := New(Config{Ledger: ledger})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	lossy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/fit" && calls.Add(1) == 1 {
			// Process the fit for real, then lose the response.
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, r)
			w.Header().Set("Retry-After", "0")
			writeError(w, http.StatusBadGateway, "connection lost mid-response")
			return
		}
		s.ServeHTTP(w, r)
	}))
	defer lossy.Close()

	c := NewClient(lossy.URL)
	c.Retry = testPolicy(4)
	seed := int64(7)
	meta, err := c.Fit(context.Background(), FitRequest{
		DatasetID: "survey", Epsilon: 0.6, Seed: &seed,
		Schema: SpecsFromAttrs(testSchema()),
		Data:   bytes.NewReader(fitCSV(t, testData(1500, 3))), // io.Seeker: rewindable
	})
	if err != nil {
		t.Fatalf("fit through lossy transport: %v", err)
	}
	if meta.ID == "" || meta.Source != "fit" {
		t.Errorf("meta = %+v", meta)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("fit attempts = %d, want 2", n)
	}
	if spent := ledger.Get("survey").Spent; math.Abs(spent-0.6) > 1e-12 {
		t.Errorf("spent = %g after a retried fit, want exactly 0.6", spent)
	}
}

// TestFitNonRewindableBodyIsNotRetried: without an io.Seeker body the
// request cannot be replayed, so the policy is ignored for it.
func TestFitNonRewindableBodyIsNotRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		io.Copy(io.Discard, r.Body)
		writeError(w, http.StatusServiceUnavailable, "overloaded")
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	c.Retry = testPolicy(4)
	raw := fitCSV(t, testData(100, 1))
	_, err := c.Fit(context.Background(), FitRequest{
		DatasetID: "survey", Epsilon: 0.1,
		Schema: SpecsFromAttrs(testSchema()),
		Data:   io.MultiReader(bytes.NewReader(raw)), // hides the Seeker
	})
	if err == nil {
		t.Fatal("expected the 503 to surface")
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("server saw %d attempts, want 1", n)
	}
}

// TestBackoffHonorsRetryAfterAndCap: server hints win over the
// schedule; the cap bounds everything.
func TestBackoffHonorsRetryAfterAndCap(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	if d := p.backoff(0, "2"); d != 50*time.Millisecond {
		t.Errorf("Retry-After 2s under a 50ms cap: %v", d)
	}
	if d := p.backoff(0, "0"); d != 0 {
		t.Errorf("Retry-After 0: %v", d)
	}
	for attempt := 0; attempt < 20; attempt++ {
		d := p.backoff(attempt, "")
		if d > p.MaxDelay {
			t.Fatalf("attempt %d backoff %v exceeds cap %v", attempt, d, p.MaxDelay)
		}
		if d < p.BaseDelay/2 {
			t.Fatalf("attempt %d backoff %v below base/2", attempt, d)
		}
	}
}
