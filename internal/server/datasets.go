package server

// The /datasets endpoints: the HTTP face of the continuous curator.
//
//	POST /datasets/{id}        create a curated dataset (JSON AttrSpec schema)
//	POST /datasets/{id}/rows   append a JSONL batch (Idempotency-Key dedupes)
//	GET  /datasets/{id}        rows, staleness, last refit, ε standing
//	GET  /datasets             list curated datasets
//
// Appends are acknowledged only after the batch is fsynced into the
// dataset's row log; background refits then fit and republish models
// without any further client involvement.

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"sort"

	"privbayes/internal/curator"
	"privbayes/internal/dataset"
)

// spoolCSV streams an upload to a temporary file so fitting can scan it
// in bounded chunks. The caller removes the returned path.
func (s *Server) spoolCSV(r io.Reader) (string, error) {
	f, err := os.CreateTemp("", "privbayes-fit-*.csv")
	if err != nil {
		return "", err
	}
	path := f.Name()
	_, err = io.Copy(f, r)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return "", err
	}
	return path, nil
}

// probeCSV validates a spooled upload's header and first row without
// scanning the rest, so malformed uploads reject before any fit work.
func probeCSV(path string, attrs []dataset.Attribute) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc, err := dataset.ScanCSV(f, attrs, 1)
	if err != nil {
		return err
	}
	if _, err := sc.Next(); err != nil {
		if err == io.EOF {
			return errors.New("data part has no rows")
		}
		return err
	}
	return nil
}

// requireCurator gates the /datasets handlers.
func (s *Server) requireCurator(w http.ResponseWriter) bool {
	if s.curator == nil {
		writeError(w, http.StatusServiceUnavailable, "curation disabled: no curator directory configured")
		return false
	}
	return true
}

func (s *Server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	if !s.requireCurator(w) {
		return
	}
	ids := s.curator.List()
	sort.Strings(ids)
	out := make([]curator.Status, 0, len(ids))
	for _, id := range ids {
		if st, err := s.curator.Status(id); err == nil {
			out = append(out, st)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": out})
}

// handleDatasetCreate registers a curated dataset. The body is the JSON
// AttrSpec array also used by POST /fit's schema field.
func (s *Server) handleDatasetCreate(w http.ResponseWriter, r *http.Request) {
	if !s.requireCurator(w) {
		return
	}
	id := r.PathValue("id")
	if !ValidID(id) {
		writeError(w, http.StatusBadRequest, "invalid dataset id %q (want 1-128 chars of [A-Za-z0-9._-])", id)
		return
	}
	var specs []AttrSpec
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&specs); err != nil {
		writeError(w, http.StatusBadRequest, "schema body: %v", err)
		return
	}
	attrs, err := SchemaFromSpecs(specs)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.curator.Create(id, attrs); err != nil {
		writeError(w, statusFor(err), "%v", err)
		return
	}
	s.logf("created curated dataset %s (%d attributes)", id, len(attrs))
	st, _ := s.curator.Status(id)
	writeJSON(w, http.StatusCreated, st)
}

func (s *Server) handleDatasetStatus(w http.ResponseWriter, r *http.Request) {
	if !s.requireCurator(w) {
		return
	}
	st, err := s.curator.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, statusFor(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// appendResult is the response of POST /datasets/{id}/rows.
type appendResult struct {
	// Rows is the batch size the server decoded from the request.
	Rows int `json:"rows"`
	// Duplicate reports an idempotent replay: the batch's key was
	// already acknowledged, nothing was appended, nothing double-counts.
	Duplicate bool `json:"duplicate"`
	// TotalRows is the dataset's row count after the append.
	TotalRows int64 `json:"total_rows"`
}

// handleDatasetRows ingests one JSONL batch into a curated dataset. An
// Idempotency-Key header becomes the batch's durable key: retrying an
// acknowledged append is a no-op, so clients retry ambiguous failures
// without double-counting rows. The 200 response is written only after
// the batch is fsynced to the row log.
func (s *Server) handleDatasetRows(w http.ResponseWriter, r *http.Request) {
	if !s.requireCurator(w) {
		return
	}
	id := r.PathValue("id")
	key := r.Header.Get("Idempotency-Key")
	if key != "" && !ValidID(key) {
		writeError(w, http.StatusBadRequest, "invalid Idempotency-Key %q (want 1-128 chars of [A-Za-z0-9._-])", key)
		return
	}
	attrs, err := s.curator.Attrs(id)
	if err != nil {
		writeError(w, statusFor(err), "%v", err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBytes)
	batch := dataset.NewWithCapacity(attrs, 1024)
	sc := dataset.ScanJSONL(body, attrs, 8192)
	rec := make([]uint16, len(attrs))
	for {
		chunk, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			writeError(w, statusFor(err), "%v", err)
			return
		}
		if batch.N()+chunk.N() > curator.MaxBatchRows {
			writeError(w, http.StatusRequestEntityTooLarge,
				"batch exceeds %d rows; split the append", curator.MaxBatchRows)
			return
		}
		for i := 0; i < chunk.N(); i++ {
			for c := 0; c < chunk.D(); c++ {
				rec[c] = uint16(chunk.Value(i, c))
			}
			batch.Append(rec)
		}
	}
	if batch.N() == 0 {
		writeError(w, http.StatusBadRequest, "request body has no rows")
		return
	}
	dup, err := s.curator.Append(id, key, batch)
	if err != nil {
		writeError(w, statusFor(err), "%v", err)
		return
	}
	st, _ := s.curator.Status(id)
	writeJSON(w, http.StatusOK, appendResult{Rows: batch.N(), Duplicate: dup, TotalRows: st.Rows})
}
