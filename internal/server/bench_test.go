package server

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"sync"
	"testing"

	"privbayes/internal/core"
	"privbayes/internal/telemetry"
)

// benchModel caches one fitted fixture across all benchmark runs so
// per-iteration cost is pure serving.
var benchModel = struct {
	once sync.Once
	m    *core.Model
}{}

// BenchmarkServeSynthesize measures end-to-end streaming synthesis
// throughput over HTTP — request, chunked generation through the worker
// budget, CSV encoding, transport — at n ∈ {1e4, 1e5} × per-request
// parallelism. The rows/s metric is the serving headline captured in
// BENCH_serving.json (make bench-json).
func BenchmarkServeSynthesize(b *testing.B) {
	benchModel.once.Do(func() { benchModel.m = fitTestModel(b) })
	for _, n := range []int{10_000, 100_000} {
		for _, par := range []int{1, 4} {
			b.Run(fmt.Sprintf("n=%d/par=%d", n, par), func(b *testing.B) {
				s, err := New(Config{MaxWorkers: 4})
				if err != nil {
					b.Fatal(err)
				}
				if err := s.Registry().Put("bench", "dir", benchModel.m, 1); err != nil {
					b.Fatal(err)
				}
				ts := httptest.NewServer(s)
				defer ts.Close()
				c := NewClient(ts.URL)
				ctx := context.Background()

				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					seed := int64(i)
					stream, err := c.Synthesize(ctx, "bench", SynthesizeRequest{N: n, Seed: &seed, Parallelism: par})
					if err != nil {
						b.Fatal(err)
					}
					if _, err := io.Copy(io.Discard, stream.Body); err != nil {
						b.Fatal(err)
					}
					stream.Close()
				}
				b.StopTimer()
				b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
			})
		}
	}
}

// BenchmarkServeSynthesizeTelemetry measures the end-to-end serving
// cost of the telemetry subsystem: the same streaming-synthesis
// workload with the registry and structured logging fully enabled
// ("on", logs JSON-encoded into io.Discard) versus the nil-registry
// no-op path ("off"). benchjson pairs the off/on sub-benchmarks into
// the serve_telemetry_on_vs_off ratio in BENCH_telemetry.json; the
// acceptance bar is on/off overhead within 5%.
func BenchmarkServeSynthesizeTelemetry(b *testing.B) {
	benchModel.once.Do(func() { benchModel.m = fitTestModel(b) })
	for _, mode := range []string{"off", "on"} {
		b.Run(mode+"/n=10000/par=4", func(b *testing.B) {
			cfg := Config{MaxWorkers: 4}
			if mode == "on" {
				logger, err := telemetry.NewLogger(io.Discard, "json", "info")
				if err != nil {
					b.Fatal(err)
				}
				cfg.Telemetry = telemetry.NewRegistry()
				cfg.Logger = logger
			}
			s, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Registry().Put("bench", "dir", benchModel.m, 1); err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(s)
			defer ts.Close()
			c := NewClient(ts.URL)
			ctx := context.Background()

			const n, par = 10_000, 4
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seed := int64(i)
				stream, err := c.Synthesize(ctx, "bench", SynthesizeRequest{N: n, Seed: &seed, Parallelism: par})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := io.Copy(io.Discard, stream.Body); err != nil {
					b.Fatal(err)
				}
				stream.Close()
			}
			b.StopTimer()
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}
