package server

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"errors"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// RetryPolicy configures the Client's bounded-jitter exponential
// backoff. The zero value disables retries entirely — existing callers
// keep single-attempt semantics unless they opt in.
//
// Retries cover the failures the server's graceful-degradation contract
// expects clients to absorb: network errors, 429 (per-dataset fit
// pressure), 502/503 (overload, proxies) and 504. A Retry-After header
// on the response overrides the computed backoff for that attempt.
// POST /fit is only retried with an Idempotency-Key attached (the
// Client adds one automatically), so a retry after an ambiguous failure
// can never double-charge the privacy budget.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first;
	// values below 2 mean "no retries".
	MaxAttempts int
	// BaseDelay seeds the exponential schedule (attempt k waits roughly
	// BaseDelay·2^k, jittered); <= 0 selects 100ms.
	BaseDelay time.Duration
	// MaxDelay caps any single wait, including server Retry-After
	// hints; <= 0 selects 5s.
	MaxDelay time.Duration
}

// DefaultRetryPolicy is a sensible interactive-use policy: 4 attempts,
// 100ms base, 5s cap — at most ~6s of waiting on a saturated server.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second}
}

func (p RetryPolicy) enabled() bool { return p.MaxAttempts > 1 }

// forBody returns the client to send a body-carrying request through:
// itself when the body can be rewound for replay, a retry-disabled copy
// when it cannot — a retried attempt would otherwise send an empty or
// truncated body.
func (c *Client) forBody(rewindable bool) *Client {
	if rewindable {
		return c
	}
	cc := *c
	cc.Retry = RetryPolicy{}
	return &cc
}

// retryableStatus reports whether a response status invites a retry.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// backoff computes the wait before retry number attempt (0-based),
// honoring a Retry-After hint when the server sent one. The computed
// delay is jittered uniformly over [d/2, d): synchronized clients that
// were all shed together must not stampede back together.
func (p RetryPolicy) backoff(attempt int, retryAfter string) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 5 * time.Second
	}
	if retryAfter != "" {
		if sec, err := strconv.Atoi(retryAfter); err == nil && sec >= 0 {
			d := time.Duration(sec) * time.Second
			if d > max {
				d = max
			}
			return d
		}
	}
	d := base << attempt
	if d > max || d <= 0 { // <= 0: shift overflow
		d = max
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// do runs one logical request through the retry policy. build must
// return a fresh request (with a fresh body) on every call; a build
// error aborts immediately. Responses with non-retryable statuses are
// returned to the caller unconsumed, including the final attempt's.
func (c *Client) do(ctx context.Context, build func() (*http.Request, error)) (*http.Response, error) {
	attempts := c.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	retryAfter := ""
	for i := 0; i < attempts; i++ {
		if i > 0 {
			d := c.Retry.backoff(i-1, retryAfter)
			c.logRetry(ctx, i+1, attempts, lastErr, retryAfter, d)
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := c.http().Do(req)
		if err != nil {
			// Transport-level failure (refused, reset, timeout). The
			// request may or may not have reached the server — exactly
			// the ambiguity Idempotency-Keys exist for.
			lastErr, retryAfter = err, ""
			continue
		}
		if retryableStatus(resp.StatusCode) && i < attempts-1 {
			retryAfter = resp.Header.Get("Retry-After")
			lastErr = apiError(resp) // drains and closes the body
			continue
		}
		return resp, nil
	}
	return nil, lastErr
}

// logRetry emits one structured line per retry attempt through the
// client's optional Logger: which attempt is about to run, what failed
// (HTTP status plus the server's request ID when the failure was an
// *APIError, the transport error otherwise), the backoff about to be
// slept, and the Retry-After hint being honored, if any.
func (c *Client) logRetry(ctx context.Context, attempt, attempts int, cause error, retryAfter string, wait time.Duration) {
	if c.Logger == nil {
		return
	}
	attrs := []slog.Attr{
		slog.Int("attempt", attempt),
		slog.Int("max_attempts", attempts),
		slog.Duration("backoff", wait),
	}
	var apiErr *APIError
	switch {
	case errors.As(cause, &apiErr):
		attrs = append(attrs, slog.Int("status", apiErr.StatusCode))
		if apiErr.RequestID != "" {
			attrs = append(attrs, slog.String("request_id", apiErr.RequestID))
		}
	case cause != nil:
		attrs = append(attrs, slog.String("error", cause.Error()))
	}
	if retryAfter != "" {
		attrs = append(attrs, slog.String("retry_after", retryAfter))
	}
	c.Logger.LogAttrs(ctx, slog.LevelWarn, "retrying request", attrs...)
}

// newIdempotencyKey draws a fresh random key for a retryable fit.
func newIdempotencyKey() string {
	var b [16]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// Fall back to math/rand — uniqueness, not secrecy, is the goal.
		return "ik-" + strconv.FormatInt(rand.Int63(), 36) + strconv.FormatInt(rand.Int63(), 36)
	}
	return "ik-" + hex.EncodeToString(b[:])
}
