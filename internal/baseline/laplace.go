package baseline

import (
	"math"
	"math/rand"

	"privbayes/internal/dataset"
	"privbayes/internal/marginal"
)

// Laplace is the paper's first baseline: generate every α-way marginal
// and inject Laplace noise directly into each cell (Section 6.1). The
// budget is split evenly across the M = C(d, α) marginals; each marginal
// has sensitivity 2/n in probability space, so every cell receives
// Laplace(2M/(n·ε)) noise, followed by the consistency post-processing
// (non-negativity, then normalization).
//
// Marginals are materialized lazily and cached, so evaluating a sampled
// subset of Qα does not pay for the full query set; the noise scale
// always reflects the full M, preserving the privacy accounting.
type Laplace struct {
	ds        *dataset.Dataset
	scale     float64
	rng       *rand.Rand
	marginals map[string]*marginal.Table
}

// NewLaplace prepares the baseline under ε-DP for the query set Qα.
func NewLaplace(ds *dataset.Dataset, alpha int, epsilon float64, rng *rand.Rand) *Laplace {
	m := Binomial(ds.D(), alpha)
	return &Laplace{
		ds:        ds,
		scale:     2 * m / (float64(ds.N()) * epsilon),
		rng:       rng,
		marginals: make(map[string]*marginal.Table),
	}
}

// Marginal implements MarginalSource.
func (l *Laplace) Marginal(attrs []int) *marginal.Table {
	k := keyOf(attrs)
	if t, ok := l.marginals[k]; ok {
		return t
	}
	t := marginal.Materialize(l.ds, rawVars(attrs))
	t.AddLaplace(l.rng, l.scale)
	t.ClampNormalize()
	l.marginals[k] = t
	return t
}

// Binomial returns C(n, k) as a float64.
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return math.Round(r)
}
