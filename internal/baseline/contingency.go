package baseline

import (
	"math/rand"

	"privbayes/internal/dataset"
	"privbayes/internal/marginal"
)

// Contingency is the paper's full-domain baseline: build the complete
// contingency table over all d attributes, perturb every cell with
// Laplace(2/(n·ε)) noise (one table, sensitivity 2/n in probability
// space), clamp and normalize once, then answer marginal queries by
// projection. Memory and time are proportional to the total domain
// size, which is exactly the scalability wall the paper describes —
// usable for NLTCS (2^16) and ACS (2^23), hopeless beyond.
type Contingency struct {
	ds    *dataset.Dataset
	full  []float64
	dims  []int
	limit int
}

// MaxContingencyCells caps the full-domain table; exceeding it panics so
// a misconfigured experiment fails loudly instead of swallowing memory.
const MaxContingencyCells = 1 << 26

// NewContingency builds the noisy full-domain distribution under ε-DP.
func NewContingency(ds *dataset.Dataset, epsilon float64, rng *rand.Rand) *Contingency {
	d := ds.D()
	dims := make([]int, d)
	cells := 1
	for a := 0; a < d; a++ {
		dims[a] = ds.Attr(a).Size()
		cells *= dims[a]
		if cells > MaxContingencyCells {
			panic("baseline: contingency table exceeds cell cap; domain too large")
		}
	}
	vars := make([]marginal.Var, d)
	for a := range vars {
		vars[a] = marginal.Var{Attr: a}
	}
	t := marginal.Materialize(ds, vars)
	t.AddLaplace(rng, 2/(float64(ds.N())*epsilon))
	t.ClampNormalize()
	return &Contingency{ds: ds, full: t.P, dims: dims}
}

// Marginal projects the noisy full table onto the requested attributes.
func (c *Contingency) Marginal(attrs []int) *marginal.Table {
	out := marginal.NewTable(c.ds, rawVars(attrs))
	// Strides of each requested attribute in the full row-major table
	// (last attribute fastest).
	strides := make([]int, len(c.dims))
	s := 1
	for a := len(c.dims) - 1; a >= 0; a-- {
		strides[a] = s
		s *= c.dims[a]
	}
	outStride := make([]int, len(attrs))
	os := 1
	for i := len(attrs) - 1; i >= 0; i-- {
		outStride[i] = os
		os *= c.dims[attrs[i]]
	}
	for idx, p := range c.full {
		o := 0
		for i, a := range attrs {
			o += idx / strides[a] % c.dims[a] * outStride[i]
		}
		out.P[o] += p
	}
	return out
}
