package baseline

import (
	"math"
	"math/rand"
	"testing"

	"privbayes/internal/dataset"
	"privbayes/internal/marginal"
)

func binData(n, d int, seed int64) *dataset.Dataset {
	attrs := make([]dataset.Attribute, d)
	for i := range attrs {
		attrs[i] = dataset.NewCategorical(string(rune('a'+i)), []string{"0", "1"})
	}
	ds := dataset.New(attrs)
	rng := rand.New(rand.NewSource(seed))
	rec := make([]uint16, d)
	for i := 0; i < n; i++ {
		rec[0] = uint16(rng.Intn(2))
		for j := 1; j < d; j++ {
			rec[j] = rec[j-1]
			if rng.Float64() < 0.3 {
				rec[j] = 1 - rec[j]
			}
		}
		ds.Append(rec)
	}
	return ds
}

func avd(ds *dataset.Dataset, src MarginalSource, alpha int) float64 {
	subsets := Subsets(ds.D(), alpha)
	var sum float64
	for _, attrs := range subsets {
		vars := make([]marginal.Var, len(attrs))
		for i, a := range attrs {
			vars[i] = marginal.Var{Attr: a}
		}
		sum += marginal.TVD(marginal.Materialize(ds, vars), src.Marginal(attrs))
	}
	return sum / float64(len(subsets))
}

func TestSubsetsCount(t *testing.T) {
	if got := len(Subsets(6, 3)); got != 20 {
		t.Errorf("C(6,3) = %d, want 20", got)
	}
	if got := len(Subsets(5, 0)); got != 1 {
		t.Errorf("C(5,0) = %d, want 1", got)
	}
	// Each subset sorted and distinct.
	seen := map[string]bool{}
	for _, s := range Subsets(6, 3) {
		if len(s) != 3 {
			t.Fatal("wrong subset size")
		}
		k := keyOf(s)
		if seen[k] {
			t.Fatal("duplicate subset")
		}
		seen[k] = true
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{{6, 3, 20}, {23, 4, 8855}, {16, 4, 1820}, {5, 0, 1}, {5, 6, 0}}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("C(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestUniformBaseline(t *testing.T) {
	ds := binData(500, 4, 1)
	u := &Uniform{DS: ds}
	m := u.Marginal([]int{0, 2})
	for _, p := range m.P {
		if math.Abs(p-0.25) > 1e-12 {
			t.Fatalf("uniform marginal cell = %v", p)
		}
	}
}

func TestDatasetSourceIsExact(t *testing.T) {
	ds := binData(500, 4, 2)
	src := &Dataset{DS: ds}
	if got := avd(ds, src, 2); got > 1e-12 {
		t.Errorf("dataset source against itself: AVD = %v", got)
	}
}

func TestLaplaceBaselineConvergesWithEpsilon(t *testing.T) {
	ds := binData(2000, 5, 3)
	rng := rand.New(rand.NewSource(4))
	loose := avd(ds, NewLaplace(ds, 2, 0.05, rng), 2)
	tight := avd(ds, NewLaplace(ds, 2, 1e6, rng), 2)
	if tight > 1e-3 {
		t.Errorf("huge ε should give near-exact marginals, AVD = %v", tight)
	}
	if loose <= tight {
		t.Errorf("AVD at ε=0.05 (%v) should exceed ε=1e6 (%v)", loose, tight)
	}
}

func TestLaplaceBaselineCachesMarginals(t *testing.T) {
	ds := binData(200, 4, 5)
	l := NewLaplace(ds, 2, 1, rand.New(rand.NewSource(6)))
	a := l.Marginal([]int{0, 1})
	b := l.Marginal([]int{0, 1})
	if a != b {
		t.Error("same query must return the cached (consistent) marginal")
	}
}

func TestWHTInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := make([]float64, 16)
	for i := range p {
		p[i] = rng.Float64()
	}
	orig := append([]float64(nil), p...)
	WHT(p)
	InverseWHT(p)
	for i := range p {
		if math.Abs(p[i]-orig[i]) > 1e-12 {
			t.Fatalf("WHT round trip differs at %d: %v vs %v", i, p[i], orig[i])
		}
	}
}

func TestWHTRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WHT(make([]float64, 6))
}

func TestFourierExactAtHugeEpsilon(t *testing.T) {
	ds := binData(1000, 5, 8)
	f := NewFourier(ds, 3, 1e9, rand.New(rand.NewSource(9)))
	if got := avd(ds, f, 3); got > 1e-6 {
		t.Errorf("Fourier with negligible noise: AVD = %v", got)
	}
}

func TestFourierRejectsNonBinary(t *testing.T) {
	attrs := []dataset.Attribute{dataset.NewCategorical("a", []string{"x", "y", "z"})}
	ds := dataset.New(attrs)
	ds.Append([]uint16{0})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFourier(ds, 1, 1, rand.New(rand.NewSource(1)))
}

func TestFourierEncodedExactAtHugeEpsilon(t *testing.T) {
	attrs := []dataset.Attribute{
		dataset.NewCategorical("a", []string{"0", "1", "2"}),      // 2 bits
		dataset.NewCategorical("b", []string{"x", "y"}),           // 1 bit
		dataset.NewCategorical("c", []string{"p", "q", "r", "s"}), // 2 bits
		dataset.NewCategorical("d", []string{"0", "1", "2", "3"}), // 2 bits
	}
	ds := dataset.New(attrs)
	rng := rand.New(rand.NewSource(10))
	rec := make([]uint16, 4)
	for i := 0; i < 800; i++ {
		rec[0] = uint16(rng.Intn(3))
		rec[1] = uint16(rng.Intn(2))
		rec[2] = uint16(rng.Intn(4))
		rec[3] = rec[2] // perfectly correlated pair
		ds.Append(rec)
	}
	f := NewFourierEncoded(ds, 2, 1e9, rng)
	if got := avd(ds, f, 2); got > 1e-6 {
		t.Errorf("encoded Fourier with negligible noise: AVD = %v", got)
	}
}

func TestFourierEncodedConsistentCoefficients(t *testing.T) {
	ds := binData(300, 4, 11)
	f := NewFourierEncoded(ds, 2, 0.5, rand.New(rand.NewSource(12)))
	// The single-attribute coefficient for attribute 0 is shared by the
	// (0,1) and (0,2) marginals: their implied Pr[a0=1] must agree.
	m01 := f.Marginal([]int{0, 1})
	m02 := f.Marginal([]int{0, 2})
	p1 := m01.P[2] + m01.P[3] // a0 = 1 cells (row-major, last fastest)
	p2 := m02.P[2] + m02.P[3]
	if math.Abs(p1-p2) > 1e-9 {
		t.Errorf("shared coefficient served inconsistently: %v vs %v", p1, p2)
	}
}

func TestContingencyProjectionExactWithoutNoise(t *testing.T) {
	ds := binData(1000, 5, 13)
	c := NewContingency(ds, 1e9, rand.New(rand.NewSource(14)))
	if got := avd(ds, c, 2); got > 1e-6 {
		t.Errorf("contingency with negligible noise: AVD = %v", got)
	}
}

func TestContingencyDomainCap(t *testing.T) {
	attrs := make([]dataset.Attribute, 30)
	for i := range attrs {
		attrs[i] = dataset.NewCategorical(string(rune('a'+i%26))+"x", []string{"0", "1"})
	}
	ds := dataset.New(attrs)
	ds.Append(make([]uint16, 30))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 2^30 domain")
		}
	}()
	NewContingency(ds, 1, rand.New(rand.NewSource(1)))
}

func TestMWEMBeatsUniformAtLargeEpsilon(t *testing.T) {
	ds := binData(3000, 5, 15)
	rng := rand.New(rand.NewSource(16))
	m := NewMWEM(ds, 2, 1.6, rng)
	mwemErr := avd(ds, m, 2)
	uniErr := avd(ds, &Uniform{DS: ds}, 2)
	if mwemErr >= uniErr {
		t.Errorf("MWEM (%v) should beat Uniform (%v) at ε=1.6", mwemErr, uniErr)
	}
}

func TestMWEMDistributionIsNormalized(t *testing.T) {
	ds := binData(500, 4, 17)
	m := NewMWEM(ds, 2, 0.4, rand.New(rand.NewSource(18)))
	var sum float64
	for _, p := range m.a {
		if p < 0 {
			t.Fatal("negative mass in MWEM distribution")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("MWEM mass = %v", sum)
	}
}
