package baseline

import (
	"fmt"
	"math/rand"
	"sort"

	"privbayes/internal/dataset"
	"privbayes/internal/dp"
	"privbayes/internal/encoding"
	"privbayes/internal/marginal"
)

// FourierEncoded extends the Fourier baseline to general domains the way
// the paper's evaluation requires: the dataset is binarized (Section 5.1
// binary encoding) and Walsh–Hadamard coefficients are released for every
// bit-subset spanned by some query marginal. Answering an α-way marginal
// over original attributes needs coefficients over all bits of those
// attributes, so the released coefficient count — and with it the noise —
// grows with the attributes' bit widths. That blow-up is exactly why
// Fourier degrades sharply on Adult and BR2000 in Figures 14-15.
//
// Coefficients are noised lazily but exactly once (cached by global
// bit-set), keeping all served marginals mutually consistent.
type FourierEncoded struct {
	orig   *dataset.Dataset
	enc    *dataset.Dataset
	codec  *encoding.Codec
	bitsOf [][]int // global bit-column indices per original attribute
	scale  float64
	coeffs map[string]float64
	rng    *rand.Rand
}

// NewFourierEncoded prepares the mechanism under ε-DP for the query set
// Qα over the original attributes.
func NewFourierEncoded(ds *dataset.Dataset, alpha int, epsilon float64, rng *rand.Rand) *FourierEncoded {
	codec := encoding.NewCodec(encoding.Binary, ds.Attrs())
	enc := codec.Encode(ds)
	f := &FourierEncoded{
		orig:   ds,
		enc:    enc,
		codec:  codec,
		coeffs: make(map[string]float64),
		rng:    rng,
	}
	// Recover each attribute's global bit columns from the codec layout.
	bit := 0
	for a := 0; a < ds.D(); a++ {
		nb := ds.Attr(a).Bits()
		cols := make([]int, nb)
		for i := range cols {
			cols[i] = bit
			bit++
		}
		f.bitsOf = append(f.bitsOf, cols)
	}
	c := f.coefficientCount(alpha)
	f.scale = 2 * c / (float64(ds.N()) * epsilon)
	return f
}

// coefficientCount returns C = Σ_{U ⊆ attrs, |U| ≤ α} Π_{a∈U} (2^{b_a}−1),
// the number of distinct Walsh–Hadamard coefficients spanned by Qα, via a
// subset-size dynamic program.
func (f *FourierEncoded) coefficientCount(alpha int) float64 {
	// sums[s] = sum over attr-subsets of size s of the product.
	sums := make([]float64, alpha+1)
	sums[0] = 1
	for a := 0; a < f.orig.D(); a++ {
		w := float64(int(1)<<uint(len(f.bitsOf[a]))) - 1
		for s := alpha; s >= 1; s-- {
			sums[s] += sums[s-1] * w
		}
	}
	var total float64
	for _, v := range sums {
		total += v
	}
	return total
}

// Marginal implements MarginalSource: reconstruct the noisy binary
// marginal over the attributes' bits from (cached) noisy coefficients,
// then fold bit patterns back into original codes.
func (f *FourierEncoded) Marginal(attrs []int) *marginal.Table {
	// Collect the bit columns spanning the query, attribute by attribute
	// (MSB first within each attribute).
	var bits []int
	for _, a := range attrs {
		bits = append(bits, f.bitsOf[a]...)
	}
	b := len(bits)
	cells := 1 << uint(b)

	// Exact binary marginal over the bit columns.
	vars := make([]marginal.Var, b)
	for i, col := range bits {
		vars[i] = marginal.Var{Attr: col}
	}
	t := marginal.Materialize(f.enc, vars)

	// Forward transform, perturb each coefficient (consistently via the
	// global cache), inverse transform.
	WHT(t.P)
	key := make([]int, 0, b)
	for mask := 0; mask < cells; mask++ {
		key = key[:0]
		for i := 0; i < b; i++ {
			// Flat-index bit position p (LSB = 0) corresponds to bit
			// column vars[b-1-p]; enumerate in that order.
			if mask>>uint(i)&1 == 1 {
				key = append(key, bits[b-1-i])
			}
		}
		k := bitKey(key)
		noisy, ok := f.coeffs[k]
		if !ok {
			noisy = t.P[mask] + dp.Laplace(f.rng, f.scale)
			f.coeffs[k] = noisy
		}
		t.P[mask] = noisy
	}
	InverseWHT(t.P)

	// Fold the binary marginal into the original-domain marginal,
	// clamping out-of-domain bit patterns to the top code as the codec
	// does.
	out := marginal.NewTable(f.orig, rawVars(attrs))
	widths := make([]int, len(attrs))
	sizes := make([]int, len(attrs))
	for i, a := range attrs {
		widths[i] = len(f.bitsOf[a])
		sizes[i] = f.orig.Attr(a).Size()
	}
	for cell := 0; cell < cells; cell++ {
		o := 0
		shift := b
		for i := range attrs {
			shift -= widths[i]
			code := cell >> uint(shift) & (1<<uint(widths[i]) - 1)
			if code >= sizes[i] {
				code = sizes[i] - 1
			}
			o = o*sizes[i] + code
		}
		out.P[o] += t.P[cell]
	}
	out.ClampNormalize()
	return out
}

func bitKey(bits []int) string {
	s := append([]int(nil), bits...)
	sort.Ints(s)
	return fmt.Sprint(s)
}
