package baseline

// WHT computes the (unnormalized) Walsh–Hadamard transform of a slice
// whose length is a power of two, in place:
//
//	out[S] = Σ_t in[t] · (−1)^{|S ∧ t|}
//
// Applying the transform twice multiplies by len(p), which gives the
// inverse: x = WHT(WHT(x)) / len(x).
func WHT(p []float64) {
	n := len(p)
	if n&(n-1) != 0 {
		panic("baseline: WHT length must be a power of two")
	}
	for h := 1; h < n; h *= 2 {
		for i := 0; i < n; i += 2 * h {
			for j := i; j < i+h; j++ {
				x, y := p[j], p[j+h]
				p[j], p[j+h] = x+y, x-y
			}
		}
	}
}

// InverseWHT inverts WHT.
func InverseWHT(p []float64) {
	WHT(p)
	inv := 1 / float64(len(p))
	for i := range p {
		p[i] *= inv
	}
}
