package baseline

import (
	"math/rand"

	"privbayes/internal/dataset"
	"privbayes/internal/dp"
	"privbayes/internal/marginal"
)

// Fourier implements Barak et al. (2007): release noisy Walsh–Hadamard
// (Fourier) coefficients of the empirical distribution for every
// attribute subset S with |S| ≤ α, from which any α-way marginal of a
// binary-domain dataset can be reconstructed. Changing one tuple moves
// 1/n of mass between two cells, shifting each coefficient by at most
// 2/n; with C released coefficients the L1 sensitivity is 2C/n, so each
// coefficient gets Laplace(2C/(n·ε)) noise.
type Fourier struct {
	ds     *dataset.Dataset
	coeffs map[string]float64
}

// NewFourier computes the noisy coefficients under ε-DP. Panics on
// non-binary attributes, matching the method's domain restriction.
func NewFourier(ds *dataset.Dataset, alpha int, epsilon float64, rng *rand.Rand) *Fourier {
	d := ds.D()
	for a := 0; a < d; a++ {
		if ds.Attr(a).Size() != 2 {
			panic("baseline: Fourier requires binary attributes")
		}
	}
	var subsets [][]int
	for s := 0; s <= alpha; s++ {
		subsets = append(subsets, Subsets(d, s)...)
	}
	scale := 2 * float64(len(subsets)) / (float64(ds.N()) * epsilon)
	f := &Fourier{ds: ds, coeffs: make(map[string]float64, len(subsets))}
	n := ds.N()
	// Decode each (possibly bit-packed) column once, shared by every
	// subset's character sum.
	decoded := make([][]uint16, d)
	for a := 0; a < d; a++ {
		decoded[a] = ds.ColumnCodes(a)
	}
	for _, s := range subsets {
		// f̂(S) = (1/n) Σ_rows χ_S(row), with χ_S(x) = (−1)^{Σ_{i∈S} x_i}.
		var sum float64
		cols := make([][]uint16, len(s))
		for i, a := range s {
			cols[i] = decoded[a]
		}
		for r := 0; r < n; r++ {
			parity := 0
			for _, col := range cols {
				parity ^= int(col[r])
			}
			if parity == 0 {
				sum++
			} else {
				sum--
			}
		}
		f.coeffs[keyOf(s)] = sum/float64(n) + dp.Laplace(rng, scale)
	}
	return f
}

// Marginal reconstructs the marginal over attrs from the noisy
// coefficients of its subsets:
//
//	Pr[T = t] = 2^{−|T|} Σ_{S ⊆ T} f̂(S)·χ_S(t)
//
// followed by non-negativity and normalization.
func (f *Fourier) Marginal(attrs []int) *marginal.Table {
	t := marginal.NewTable(f.ds, rawVars(attrs))
	alpha := len(attrs)
	cells := t.Cells() // 2^alpha for binary attributes
	sub := make([]int, 0, alpha)
	for mask := 0; mask < 1<<alpha; mask++ {
		sub = sub[:0]
		for i := 0; i < alpha; i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, attrs[i])
			}
		}
		coef, ok := f.coeffs[keyOf(sub)]
		if !ok {
			panic("baseline: Fourier coefficient missing for " + keyOf(sub))
		}
		for cell := 0; cell < cells; cell++ {
			// χ_S(t): parity of the bits of t at the positions in S.
			// Cell index is row-major with the LAST attribute fastest,
			// so attribute i's bit sits at shift alpha−1−i.
			parity := 0
			for i := 0; i < alpha; i++ {
				if mask&(1<<i) != 0 && cell>>(alpha-1-i)&1 == 1 {
					parity ^= 1
				}
			}
			if parity == 0 {
				t.P[cell] += coef
			} else {
				t.P[cell] -= coef
			}
		}
	}
	t.Scale(1 / float64(cells))
	t.ClampNormalize()
	return t
}
