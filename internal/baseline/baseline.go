// Package baseline implements the count-query competitors of
// Section 6.5: Laplace (noise straight into each α-way marginal),
// Fourier (Barak et al. 2007, noisy Walsh–Hadamard coefficients),
// Contingency (noisy full-domain table projected onto marginals), MWEM
// (Hardt, Ligett, McSherry 2012) and the trivial Uniform baseline.
// Every method exposes the same MarginalSource interface the workload
// evaluator consumes. All methods apply the paper's consistency
// post-processing: non-negativity then normalization.
package baseline

import (
	"fmt"

	"privbayes/internal/dataset"
	"privbayes/internal/marginal"
)

// MarginalSource serves an estimated marginal distribution over a set of
// attribute indices.
type MarginalSource interface {
	// Marginal returns the estimated joint distribution of the given
	// attributes (raw level), normalized to total mass 1.
	Marginal(attrs []int) *marginal.Table
}

// Uniform answers every marginal query with the uniform distribution —
// the paper's sanity-check baseline.
type Uniform struct {
	DS *dataset.Dataset
}

// Marginal implements MarginalSource.
func (u *Uniform) Marginal(attrs []int) *marginal.Table {
	t := marginal.NewTable(u.DS, rawVars(attrs))
	v := 1 / float64(t.Cells())
	for i := range t.P {
		t.P[i] = v
	}
	return t
}

// Dataset adapts any dataset (typically PrivBayes' synthetic output) to
// a MarginalSource by materializing empirical marginals.
type Dataset struct {
	DS *dataset.Dataset
}

// Marginal implements MarginalSource.
func (d *Dataset) Marginal(attrs []int) *marginal.Table {
	return marginal.Materialize(d.DS, rawVars(attrs))
}

func rawVars(attrs []int) []marginal.Var {
	vars := make([]marginal.Var, len(attrs))
	for i, a := range attrs {
		vars[i] = marginal.Var{Attr: a}
	}
	return vars
}

func keyOf(attrs []int) string { return fmt.Sprint(attrs) }

// Subsets enumerates all size-alpha subsets of {0, …, d−1} — the query
// set Qα of Section 6.1.
func Subsets(d, alpha int) [][]int {
	var out [][]int
	cur := make([]int, 0, alpha)
	var rec func(start int)
	rec = func(start int) {
		if len(cur) == alpha {
			out = append(out, append([]int(nil), cur...))
			return
		}
		need := alpha - len(cur)
		for i := start; i <= d-need; i++ {
			cur = append(cur, i)
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}
