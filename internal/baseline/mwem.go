package baseline

import (
	"math"
	"math/rand"

	"privbayes/internal/dataset"
	"privbayes/internal/dp"
	"privbayes/internal/marginal"
)

// MWEM implements Hardt, Ligett and McSherry's multiplicative-weights
// exponential-mechanism mechanism over the full attribute domain, with
// the query class Qα expanded into one counting query per marginal cell.
// Following Section 6.5, the per-iteration budget is fixed at 0.05 so at
// least one improvement round happens even at small ε; iterations are
// capped to keep the harness responsive (the cap only binds at large ε,
// where MWEM is already competitive).
type MWEM struct {
	ds    *dataset.Dataset
	a     []float64 // synthetic distribution over the full domain
	dims  []int
	alpha int
}

// MWEMMaxIterations caps the improvement rounds.
const MWEMMaxIterations = 12

type mwemQuery struct {
	subset int // index into subsets
	cell   int // cell index within that marginal
}

// NewMWEM runs the mechanism under ε-DP for the query set Qα.
func NewMWEM(ds *dataset.Dataset, alpha int, epsilon float64, rng *rand.Rand) *MWEM {
	d := ds.D()
	dims := make([]int, d)
	cells := 1
	for a := 0; a < d; a++ {
		dims[a] = ds.Attr(a).Size()
		cells *= dims[a]
		if cells > MaxContingencyCells {
			panic("baseline: MWEM domain too large")
		}
	}
	m := &MWEM{ds: ds, a: make([]float64, cells), dims: dims, alpha: alpha}
	u := 1 / float64(cells)
	for i := range m.a {
		m.a[i] = u
	}

	iters := int(math.Round(epsilon / 0.05))
	if iters < 1 {
		iters = 1
	}
	if iters > MWEMMaxIterations {
		iters = MWEMMaxIterations
	}
	epsIter := epsilon / float64(iters)

	subsets := Subsets(d, alpha)
	// True counts per marginal cell.
	truth := make([][]float64, len(subsets))
	var queries []mwemQuery
	for si, attrs := range subsets {
		t := marginal.MaterializeCounts(ds, rawVars(attrs))
		truth[si] = t.P
		for c := range t.P {
			queries = append(queries, mwemQuery{subset: si, cell: c})
		}
	}
	n := float64(ds.N())

	type measurement struct {
		q mwemQuery
		m float64 // noisy count
	}
	var measured []measurement
	scores := make([]float64, len(queries))
	for it := 0; it < iters; it++ {
		// Approximate answers of every marginal under the current A.
		approx := make([][]float64, len(subsets))
		for si, attrs := range subsets {
			approx[si] = m.project(attrs)
		}
		for qi, q := range queries {
			scores[qi] = math.Abs(truth[q.subset][q.cell] - n*approx[q.subset][q.cell])
		}
		pick := queries[dp.Exponential(rng, scores, 1, epsIter/2)]
		noisy := truth[pick.subset][pick.cell] + dp.Laplace(rng, 2/epsIter)
		measured = append(measured, measurement{q: pick, m: noisy})

		// Multiplicative weights over all measurements so far.
		for _, ms := range measured {
			attrs := subsets[ms.q.subset]
			est := m.projectCell(attrs, ms.q.cell) * n
			factor := (ms.m - est) / (2 * n)
			m.updateCell(attrs, ms.q.cell, factor)
		}
	}
	return m
}

// project computes the marginal of the current distribution A over the
// attributes, returned as a flat probability slice.
func (m *MWEM) project(attrs []int) []float64 {
	outSize := 1
	for _, a := range attrs {
		outSize *= m.dims[a]
	}
	out := make([]float64, outSize)
	strides, outStride := m.strides(attrs)
	for idx, p := range m.a {
		o := 0
		for i, a := range attrs {
			o += idx / strides[a] % m.dims[a] * outStride[i]
		}
		out[o] += p
	}
	return out
}

// projectCell returns one marginal cell's mass.
func (m *MWEM) projectCell(attrs []int, cell int) float64 {
	strides, outStride := m.strides(attrs)
	var sum float64
	for idx, p := range m.a {
		o := 0
		for i, a := range attrs {
			o += idx / strides[a] % m.dims[a] * outStride[i]
		}
		if o == cell {
			sum += p
		}
	}
	return sum
}

// updateCell multiplies the full-domain cells inside the marginal cell
// by exp(factor) and renormalizes.
func (m *MWEM) updateCell(attrs []int, cell int, factor float64) {
	strides, outStride := m.strides(attrs)
	mult := math.Exp(factor)
	var total float64
	for idx := range m.a {
		o := 0
		for i, a := range attrs {
			o += idx / strides[a] % m.dims[a] * outStride[i]
		}
		if o == cell {
			m.a[idx] *= mult
		}
		total += m.a[idx]
	}
	if total > 0 {
		inv := 1 / total
		for idx := range m.a {
			m.a[idx] *= inv
		}
	}
}

func (m *MWEM) strides(attrs []int) (full []int, out []int) {
	full = make([]int, len(m.dims))
	s := 1
	for a := len(m.dims) - 1; a >= 0; a-- {
		full[a] = s
		s *= m.dims[a]
	}
	out = make([]int, len(attrs))
	os := 1
	for i := len(attrs) - 1; i >= 0; i-- {
		out[i] = os
		os *= m.dims[attrs[i]]
	}
	return full, out
}

// Marginal implements MarginalSource by projecting the learned
// distribution.
func (m *MWEM) Marginal(attrs []int) *marginal.Table {
	t := marginal.NewTable(m.ds, rawVars(attrs))
	copy(t.P, m.project(attrs))
	return t
}
