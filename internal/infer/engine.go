// Package infer is the exact query engine over fitted PrivBayes
// models: variable-elimination inference that answers marginal,
// conditional and probability queries straight from the network's
// conditional probability tables, in microseconds, without sampling a
// single synthetic row.
//
// The engine treats inference as relational algebra over conditional
// tables — every CPT is a dense relation keyed by (parents..., child)
// with a probability measure, and a query compiles to bucket
// elimination: joins (factor products), selections (evidence masks)
// and aggregating projections (sum-out). Irrelevant CPTs — those not
// ancestral to a target or evidence attribute — sum to 1 and are
// pruned; each attribute to eliminate is picked greedily by minimum
// bucket-product size, its bucket's factors are joined, and the
// attribute is aggregated away under its evidence mask. The largest
// relation ever materialized is the largest bucket product of that
// order — bounded by the induced width of the pruned network, never
// the full joint. A cell cap bounds every product and reports
// ErrTooLarge when a query would exceed it, in which case callers fall
// back to sampling.
//
// The elimination order is a deterministic function of the query and
// the network — never of the worker count or the machine — and factor
// products are elementwise writes, so results are byte-identical
// across runs and at every parallelism setting.
package infer

import (
	"context"
	"fmt"

	"privbayes/internal/dataset"
	"privbayes/internal/marginal"
	"privbayes/internal/parallel"
)

// DefaultMaxCells caps the intermediate factor when Options.MaxCells is
// unset. It equals the historical core.DefaultInferenceCells bound.
const DefaultMaxCells = 1 << 22

// Parent is one parent of a CPT, possibly at a generalized taxonomy
// level (the paper's hierarchical encoding).
type Parent struct {
	Attr  int
	Level int
}

// CPT is one conditional probability table Pr[X | Π] of the network, in
// topological order: every parent's attribute is the child of an
// earlier CPT.
type CPT struct {
	X       int
	Parents []Parent
	Cond    *marginal.Conditional
}

// Target is one result axis of a query: an attribute, optionally rolled
// up to a taxonomy level > 0.
type Target struct {
	Attr  int
	Level int
}

// Evidence restricts one attribute to a set of raw codes: Allowed[c]
// reports whether code c is in the evidence set. An equality predicate
// allows one code; set membership allows several. Evidence attributes
// are summed out under the mask, never returned as result axes.
type Evidence struct {
	Attr    int
	Allowed []bool
}

// Options bound one engine run.
type Options struct {
	// MaxCells caps every intermediate factor; <= 0 selects
	// DefaultMaxCells.
	MaxCells int
	// Parallelism bounds the workers fanning out large factor products;
	// <= 0 selects GOMAXPROCS. Any setting produces bit-identical
	// results — cell products are independent writes.
	Parallelism int
	// Stats, when non-nil, receives the work counters of the run (factor
	// products, peak cells). Purely observational: filling it cannot
	// change the answer or the elimination order.
	Stats *Stats
}

// Engine answers exact queries over one fitted model's CPTs. An Engine
// is an immutable view of the model and is safe for concurrent use.
type Engine struct {
	attrs []dataset.Attribute
	cpts  []CPT
}

// NewEngine wraps a network's CPTs (in topological order) and its
// schema. The slices are retained, not copied.
func NewEngine(attrs []dataset.Attribute, cpts []CPT) *Engine {
	return &Engine{attrs: attrs, cpts: cpts}
}

// Joint computes the exact distribution P(targets..., evidence): the
// marginal over the target attributes with every evidence attribute
// restricted to its allowed set and summed out. With no evidence the
// result sums to 1; with evidence it sums to the probability of the
// evidence, so callers obtain conditionals by normalizing and scalar
// probabilities by passing no targets (the result is then a single
// cell holding P(evidence)).
//
// ctx is checked between factor operations, so a cancelled query stops
// within one CPT product. Targets and evidence must not mention the
// same attribute; evidence attributes must be distinct.
func (e *Engine) Joint(ctx context.Context, targets []Target, evidence []Evidence, opt Options) (*marginal.Table, error) {
	maxCells := opt.MaxCells
	if maxCells <= 0 {
		maxCells = DefaultMaxCells
	}
	workers := 1
	if opt.Parallelism != 1 {
		workers = parallel.Workers(opt.Parallelism)
	}

	want := make(map[int]bool, len(targets))
	for _, t := range targets {
		if t.Attr < 0 || t.Attr >= len(e.attrs) {
			return nil, fmt.Errorf("infer: attribute %d out of range", t.Attr)
		}
		if t.Level < 0 || t.Level >= e.attrs[t.Attr].Height() {
			return nil, fmt.Errorf("infer: attribute %d has no taxonomy level %d", t.Attr, t.Level)
		}
		want[t.Attr] = true
	}
	masks := make(map[int][]bool, len(evidence))
	for _, ev := range evidence {
		if ev.Attr < 0 || ev.Attr >= len(e.attrs) {
			return nil, fmt.Errorf("infer: attribute %d out of range", ev.Attr)
		}
		if want[ev.Attr] {
			return nil, fmt.Errorf("infer: attribute %d is both a target and evidence", ev.Attr)
		}
		if _, dup := masks[ev.Attr]; dup {
			return nil, fmt.Errorf("infer: attribute %d has two evidence predicates", ev.Attr)
		}
		if len(ev.Allowed) != e.attrs[ev.Attr].Size() {
			return nil, fmt.Errorf("infer: evidence mask for attribute %d has %d entries, domain has %d",
				ev.Attr, len(ev.Allowed), e.attrs[ev.Attr].Size())
		}
		masks[ev.Attr] = ev.Allowed
	}

	// Relevance: only ancestors of the query (targets and evidence)
	// influence the answer; every other CPT sums to 1 and is skipped.
	relevant := make(map[int]bool, len(e.attrs))
	for i := len(e.cpts) - 1; i >= 0; i-- {
		c := e.cpts[i]
		if want[c.X] || masks[c.X] != nil || relevant[c.X] {
			relevant[c.X] = true
			for _, par := range c.Parents {
				relevant[par.Attr] = true
			}
		}
	}
	// One factor per relevant CPT; the slice order (network order) is
	// the deterministic tie-break for every product below.
	factors := make([]*factor, 0, len(e.cpts))
	for _, c := range e.cpts {
		if !relevant[c.X] {
			continue
		}
		f, err := cptFactor(e.attrs, c, maxCells)
		if err != nil {
			return nil, err
		}
		opt.Stats.noteFactor(f)
		factors = append(factors, f)
	}

	// Bucket elimination over every relevant non-target attribute,
	// greedy min-weight order: at each step eliminate the attribute
	// whose bucket product (the join of all factors mentioning it) is
	// smallest, ties to the lowest attribute index. The order depends
	// only on the query and the network, so results are deterministic.
	elim := make([]int, 0, len(relevant))
	for a := range e.attrs {
		if relevant[a] && !want[a] {
			elim = append(elim, a)
		}
	}
	for len(elim) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		best, bestCost := -1, 0
		for _, v := range elim {
			cost := bucketCells(factors, v)
			if best < 0 || cost < bestCost {
				best, bestCost = v, cost
			}
		}
		var err error
		if factors, err = eliminate(factors, best, masks[best], maxCells, workers, opt.Stats); err != nil {
			return nil, err
		}
		next := elim[:0]
		for _, v := range elim {
			if v != best {
				next = append(next, v)
			}
		}
		elim = next
	}

	joint := scalarFactor()
	for _, f := range factors {
		var err error
		if joint, err = joint.multiply(f, maxCells, workers); err != nil {
			return nil, err
		}
		opt.Stats.noteProduct(joint)
	}
	return joint.project(e.attrs, targets)
}

// bucketCells sizes attribute v's bucket product: the cell count of the
// join of every factor whose scope mentions v.
func bucketCells(factors []*factor, v int) int {
	seen := map[int]int{}
	for _, f := range factors {
		if f.indexOf(v) < 0 {
			continue
		}
		for i, a := range f.attrs {
			seen[a] = f.dims[i]
		}
	}
	cells := 1
	for _, d := range seen {
		cells *= d
	}
	return cells
}

// eliminate sums attribute v out of the factor list: its bucket —
// every factor mentioning v, joined in list order — is replaced by the
// bucket product with v aggregated away under mask.
func eliminate(factors []*factor, v int, mask []bool, maxCells, workers int, stats *Stats) ([]*factor, error) {
	rest := make([]*factor, 0, len(factors))
	var prod *factor
	for _, f := range factors {
		if f.indexOf(v) < 0 {
			rest = append(rest, f)
			continue
		}
		if prod == nil {
			prod = f
			continue
		}
		var err error
		if prod, err = prod.multiply(f, maxCells, workers); err != nil {
			return nil, err
		}
		stats.noteProduct(prod)
	}
	if prod == nil {
		return rest, nil
	}
	return append(rest, prod.sumOut(v, mask)), nil
}
