package infer

// Stats reports the work one Joint call performed. The engine fills a
// caller-supplied Stats (Options.Stats) with plain int writes — no
// atomics, no clock reads, no telemetry dependency — so the query
// engine itself stays observation-free and the serving layer decides
// what becomes a metric. A nil Stats costs nothing.
type Stats struct {
	// Products counts factor products (relational joins) performed,
	// including the final joint assembly.
	Products int
	// PeakCells is the cell count of the largest factor materialized —
	// the query's actual working-set high-water mark against MaxCells.
	PeakCells int
}

// noteProduct records one completed factor product.
func (s *Stats) noteProduct(f *factor) {
	if s == nil {
		return
	}
	s.Products++
	s.noteFactor(f)
}

// noteFactor tracks the peak materialized factor size.
func (s *Stats) noteFactor(f *factor) {
	if s == nil {
		return
	}
	if len(f.p) > s.PeakCells {
		s.PeakCells = len(f.p)
	}
}
