package infer

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"privbayes/internal/dataset"
	"privbayes/internal/marginal"
)

// randomEngine builds a random network over the given attribute sizes:
// each attribute picks up to maxParents random earlier attributes (at a
// random taxonomy level when the attribute has one) and a random
// normalized CPT.
func randomEngine(t *testing.T, sizes []int, maxParents int, seed int64) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	attrs := make([]dataset.Attribute, len(sizes))
	for i, s := range sizes {
		if s >= 4 && s&(s-1) == 0 && rng.Intn(2) == 0 {
			// Power-of-two continuous attributes carry a binary taxonomy
			// tree, exercising generalized parents and rollup.
			attrs[i] = dataset.NewContinuous(fmt.Sprintf("c%d", i), 0, float64(s), s)
		} else {
			labels := make([]string, s)
			for j := range labels {
				labels[j] = fmt.Sprintf("v%d", j)
			}
			attrs[i] = dataset.NewCategorical(fmt.Sprintf("a%d", i), labels)
		}
	}
	cpts := make([]CPT, len(sizes))
	for i := range sizes {
		nPar := 0
		if i > 0 {
			nPar = rng.Intn(min(maxParents, i) + 1)
		}
		perm := rng.Perm(i)
		parents := make([]Parent, nPar)
		pvars := make([]marginal.Var, nPar)
		pdims := make([]int, nPar)
		blocks := 1
		for j := 0; j < nPar; j++ {
			p := perm[j]
			level := 0
			if h := attrs[p].Height(); h > 1 && rng.Intn(2) == 0 {
				level = 1 + rng.Intn(h-1)
			}
			parents[j] = Parent{Attr: p, Level: level}
			pvars[j] = marginal.Var{Attr: p, Level: level}
			pdims[j] = attrs[p].SizeAt(level)
			blocks *= pdims[j]
		}
		xDim := attrs[i].Size()
		p := make([]float64, blocks*xDim)
		for b := 0; b < blocks; b++ {
			var sum float64
			for v := 0; v < xDim; v++ {
				p[b*xDim+v] = rng.Float64() + 0.05
				sum += p[b*xDim+v]
			}
			for v := 0; v < xDim; v++ {
				p[b*xDim+v] /= sum
			}
		}
		cpts[i] = CPT{X: i, Parents: parents, Cond: &marginal.Conditional{
			X: marginal.Var{Attr: i}, Parents: pvars, PDims: pdims, XDim: xDim, P: p,
		}}
	}
	return NewEngine(attrs, cpts)
}

// bruteForce enumerates the full joint and aggregates it onto the
// targets under the evidence masks — the O(∏ sizes) reference answer.
func bruteForce(e *Engine, targets []Target, evidence []Evidence) *marginal.Table {
	masks := map[int][]bool{}
	for _, ev := range evidence {
		masks[ev.Attr] = ev.Allowed
	}
	out := &marginal.Table{
		Vars: make([]marginal.Var, len(targets)),
		Dims: make([]int, len(targets)),
	}
	size := 1
	for i, tg := range targets {
		out.Vars[i] = marginal.Var{Attr: tg.Attr, Level: tg.Level}
		out.Dims[i] = e.attrs[tg.Attr].SizeAt(tg.Level)
		size *= out.Dims[i]
	}
	out.P = make([]float64, size)

	d := len(e.attrs)
	codes := make([]int, d)
	var walk func(int, float64)
	walk = func(i int, w float64) {
		if i == d {
			for _, ev := range evidence {
				if !ev.Allowed[codes[ev.Attr]] {
					return
				}
			}
			o := 0
			for j, tg := range targets {
				c := codes[tg.Attr]
				if tg.Level > 0 {
					c = e.attrs[tg.Attr].Generalize(tg.Level, c)
				}
				o = o*out.Dims[j] + c
			}
			out.P[o] += w
			return
		}
		c := e.cpts[i]
		parentCodes := make([]int, len(c.Parents))
		for j, par := range c.Parents {
			pc := codes[par.Attr]
			if par.Level > 0 {
				pc = e.attrs[par.Attr].Generalize(par.Level, pc)
			}
			parentCodes[j] = pc
		}
		for v := 0; v < e.attrs[i].Size(); v++ {
			codes[i] = v
			walk(i+1, w*c.Cond.Prob(parentCodes, v))
		}
	}
	walk(0, 1)
	return out
}

func tablesClose(t *testing.T, want, got *marginal.Table, tol float64) {
	t.Helper()
	if len(want.P) != len(got.P) {
		t.Fatalf("size mismatch: want %d cells, got %d", len(want.P), len(got.P))
	}
	for i := range want.P {
		if math.Abs(want.P[i]-got.P[i]) > tol {
			t.Fatalf("cell %d: want %g, got %g", i, want.P[i], got.P[i])
		}
	}
}

// TestJointMatchesBruteForce: the elimination engine must agree with
// full-joint enumeration on random networks, random target sets, random
// rollup levels and random evidence masks.
func TestJointMatchesBruteForce(t *testing.T) {
	shapes := [][]int{
		{2, 2, 2, 2, 2},
		{3, 2, 4, 2},
		{4, 4, 3, 2, 2},
		{2, 3, 2, 4, 3},
	}
	for seed, sizes := range shapes {
		e := randomEngine(t, sizes, 3, int64(seed)*17+1)
		rng := rand.New(rand.NewSource(int64(seed) * 29))
		for trial := 0; trial < 20; trial++ {
			perm := rng.Perm(len(sizes))
			nT := 1 + rng.Intn(2)
			nE := rng.Intn(min(2, len(sizes)-nT) + 1)
			targets := make([]Target, nT)
			for i := 0; i < nT; i++ {
				a := perm[i]
				level := 0
				if h := e.attrs[a].Height(); h > 1 && rng.Intn(2) == 0 {
					level = 1 + rng.Intn(h-1)
				}
				targets[i] = Target{Attr: a, Level: level}
			}
			evidence := make([]Evidence, nE)
			for i := 0; i < nE; i++ {
				a := perm[nT+i]
				mask := make([]bool, e.attrs[a].Size())
				for !anyTrue(mask) {
					for j := range mask {
						mask[j] = rng.Intn(2) == 0
					}
				}
				evidence[i] = Evidence{Attr: a, Allowed: mask}
			}
			got, err := e.Joint(context.Background(), targets, evidence, Options{})
			if err != nil {
				t.Fatalf("shape %v trial %d: %v", sizes, trial, err)
			}
			want := bruteForce(e, targets, evidence)
			tablesClose(t, want, got, 1e-12)
		}
	}
}

func anyTrue(mask []bool) bool {
	for _, b := range mask {
		if b {
			return true
		}
	}
	return false
}

// TestJointNoEvidenceSumsToOne: a pure marginal is a distribution.
func TestJointNoEvidenceSumsToOne(t *testing.T) {
	e := randomEngine(t, []int{3, 2, 4, 2, 3}, 2, 7)
	for _, targets := range [][]Target{
		{{Attr: 0}},
		{{Attr: 4}, {Attr: 1}},
		{{Attr: 2}, {Attr: 0}, {Attr: 3}},
	} {
		got, err := e.Joint(context.Background(), targets, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if s := got.Sum(); math.Abs(s-1) > 1e-12 {
			t.Errorf("targets %v: mass %g, want 1", targets, s)
		}
	}
}

// TestJointParallelismBitIdentical: factor products are independent
// writes, so every worker setting must return the same bits.
func TestJointParallelismBitIdentical(t *testing.T) {
	e := randomEngine(t, []int{4, 4, 4, 4, 4, 4, 4, 4}, 3, 11)
	targets := []Target{{Attr: 7}, {Attr: 3}}
	var base *marginal.Table
	for _, par := range []int{1, 2, 4, 8} {
		got, err := e.Joint(context.Background(), targets, nil, Options{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = got
			continue
		}
		for i := range base.P {
			if base.P[i] != got.P[i] {
				t.Fatalf("parallelism %d: cell %d = %v, want %v (bit-identity)", par, i, got.P[i], base.P[i])
			}
		}
	}
}

// TestJointCellCap: an over-cap query must fail with ErrTooLarge and
// allocate nothing.
func TestJointCellCap(t *testing.T) {
	e := randomEngine(t, []int{4, 4, 4, 4, 4, 4}, 5, 13)
	targets := make([]Target, 6)
	for i := range targets {
		targets[i] = Target{Attr: i}
	}
	_, err := e.Joint(context.Background(), targets, nil, Options{MaxCells: 16})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

// TestJointValidation: malformed requests are rejected with errors,
// never panics.
func TestJointValidation(t *testing.T) {
	e := randomEngine(t, []int{2, 2, 2}, 1, 17)
	ctx := context.Background()
	cases := []struct {
		name     string
		targets  []Target
		evidence []Evidence
	}{
		{"target out of range", []Target{{Attr: 9}}, nil},
		{"negative target", []Target{{Attr: -1}}, nil},
		{"bad level", []Target{{Attr: 0, Level: 5}}, nil},
		{"evidence out of range", []Target{{Attr: 0}}, []Evidence{{Attr: 7, Allowed: []bool{true}}}},
		{"target and evidence overlap", []Target{{Attr: 1}}, []Evidence{{Attr: 1, Allowed: []bool{true, true}}}},
		{"duplicate evidence", []Target{{Attr: 0}}, []Evidence{{Attr: 1, Allowed: []bool{true, true}}, {Attr: 1, Allowed: []bool{true, true}}}},
		{"mask size mismatch", []Target{{Attr: 0}}, []Evidence{{Attr: 1, Allowed: []bool{true}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := e.Joint(ctx, tc.targets, tc.evidence, Options{}); err == nil {
				t.Fatal("expected an error")
			}
		})
	}
}

// TestJointCancelled: a cancelled context stops the elimination.
func TestJointCancelled(t *testing.T) {
	e := randomEngine(t, []int{4, 4, 4, 4, 4, 4, 4, 4}, 3, 19)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.Joint(ctx, []Target{{Attr: 7}}, nil, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestJointStats: Options.Stats receives the run's work counters, and
// filling it changes nothing about the answer.
func TestJointStats(t *testing.T) {
	e := randomEngine(t, []int{3, 2, 4, 2, 3}, 2, 7)
	targets := []Target{{Attr: 4}, {Attr: 1}}
	plain, err := e.Joint(context.Background(), targets, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	got, err := e.Joint(context.Background(), targets, nil, Options{Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Products == 0 {
		t.Fatal("stats recorded no factor products for a multi-attribute query")
	}
	if stats.PeakCells <= 0 {
		t.Fatalf("stats.PeakCells = %d, want > 0", stats.PeakCells)
	}
	for i := range plain.P {
		if plain.P[i] != got.P[i] {
			t.Fatalf("cell %d differs with stats attached: %v vs %v", i, got.P[i], plain.P[i])
		}
	}
}
