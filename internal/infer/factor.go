package infer

import (
	"errors"
	"fmt"

	"privbayes/internal/dataset"
	"privbayes/internal/marginal"
	"privbayes/internal/parallel"
)

// ErrTooLarge tags every rejection of a query whose intermediate factor
// would exceed the cell cap. Callers branch on errors.Is(err,
// ErrTooLarge) to fall back to sampling (or to report 422 rather than
// 400, as privbayesd does).
var ErrTooLarge = errors.New("intermediate factor exceeds the cell cap")

// factor is an intermediate joint distribution over raw attribute
// codes, row-major with the last attribute varying fastest — the
// relational-algebra view of inference treats it as a dense relation
// whose columns are attributes and whose single measure is probability
// mass.
type factor struct {
	attrs []int
	dims  []int
	p     []float64
}

// scalarFactor is the multiplicative identity: a relation with no
// columns and total mass 1.
func scalarFactor() *factor {
	return &factor{attrs: nil, dims: nil, p: []float64{1}}
}

func (f *factor) indexOf(attr int) int {
	for i, a := range f.attrs {
		if a == attr {
			return i
		}
	}
	return -1
}

// multiplyChunk is the cell granularity of parallel factor products.
// Cell products are independent writes (no reduction), so fanning the
// loop out cannot change a single bit of the result — chunking exists
// purely to amortize pool overhead on large factors.
const multiplyChunk = 8192

// cptFactor materializes one CPT as a factor over raw codes: the dense
// relation with columns (parents..., X) and measure Pr[X | Π].
// Generalized parent levels are resolved here — a parent at taxonomy
// level L keeps its raw domain as the column but looks the conditional
// block up through Attribute.Generalize, so downstream products join on
// raw codes throughout.
func cptFactor(attrs []dataset.Attribute, c CPT, maxCells int) (*factor, error) {
	xDim := attrs[c.X].Size()
	scope := make([]int, 0, len(c.Parents)+1)
	dims := make([]int, 0, len(c.Parents)+1)
	size := xDim
	for _, par := range c.Parents {
		scope = append(scope, par.Attr)
		dims = append(dims, attrs[par.Attr].Size())
		size *= attrs[par.Attr].Size()
	}
	scope = append(scope, c.X)
	dims = append(dims, xDim)
	if size > maxCells {
		return nil, fmt.Errorf("infer: factor over %d cells: %w (cap %d; raise the cell bound or fall back to sampling)",
			size, ErrTooLarge, maxCells)
	}
	out := &factor{attrs: scope, dims: dims, p: make([]float64, size)}
	codes := make([]int, len(c.Parents))
	parentCodes := make([]int, len(c.Parents))
	for idx := 0; idx < size; idx += xDim {
		rem := idx / xDim
		for j := len(codes) - 1; j >= 0; j-- {
			codes[j] = rem % dims[j]
			rem /= dims[j]
		}
		for i, par := range c.Parents {
			pc := codes[i]
			if par.Level > 0 {
				pc = attrs[par.Attr].Generalize(par.Level, pc)
			}
			parentCodes[i] = pc
		}
		off := c.Cond.BlockIndex(parentCodes)
		copy(out.p[idx:idx+xDim], c.Cond.P[off:off+xDim])
	}
	return out, nil
}

// multiply joins two factors: the output scope is the column union and
// every output cell is the product of the aligned cells of f and g —
// the natural join of two relations with a multiplicative measure.
// workers > 1 fans the cell loop out; each output cell is written
// exactly once with no reduction, so the result is bit-identical at
// every worker count.
func (f *factor) multiply(g *factor, maxCells, workers int) (*factor, error) {
	outAttrs := append([]int(nil), f.attrs...)
	outDims := append([]int(nil), f.dims...)
	for i, a := range g.attrs {
		if f.indexOf(a) < 0 {
			outAttrs = append(outAttrs, a)
			outDims = append(outDims, g.dims[i])
		}
	}
	size := 1
	for _, d := range outDims {
		if size > maxCells/d {
			return nil, fmt.Errorf("infer: joint over at least %d cells: %w (cap %d; raise the cell bound or fall back to sampling)",
				size*d, ErrTooLarge, maxCells)
		}
		size *= d
	}
	// Strides of each output column into f and g (0 when absent): the
	// flat index into either operand is the stride-weighted sum of the
	// output cell's codes.
	fStride := make([]int, len(outAttrs))
	gStride := make([]int, len(outAttrs))
	for k, a := range outAttrs {
		if j := f.indexOf(a); j >= 0 {
			s := 1
			for i := j + 1; i < len(f.dims); i++ {
				s *= f.dims[i]
			}
			fStride[k] = s
		}
		if j := g.indexOf(a); j >= 0 {
			s := 1
			for i := j + 1; i < len(g.dims); i++ {
				s *= g.dims[i]
			}
			gStride[k] = s
		}
	}
	out := &factor{attrs: outAttrs, dims: outDims, p: make([]float64, size)}
	mul := func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			rem := idx
			fi, gi := 0, 0
			for j := len(outAttrs) - 1; j >= 0; j-- {
				c := rem % outDims[j]
				rem /= outDims[j]
				fi += c * fStride[j]
				gi += c * gStride[j]
			}
			out.p[idx] = f.p[fi] * g.p[gi]
		}
	}
	if workers > 1 && size > multiplyChunk {
		chunks := parallel.Chunks(size, multiplyChunk)
		parallel.For(workers, chunks, func(ci int) {
			lo := ci * multiplyChunk
			mul(lo, min(lo+multiplyChunk, size))
		})
	} else {
		mul(0, size)
	}
	return out, nil
}

// sumOut marginalizes one attribute away: the relational projection
// that drops a column, aggregating mass. allowed, when non-nil, is a
// per-code mask restricting the sum to the evidence set — entries whose
// code is masked out contribute nothing, which is how equality and
// set-membership predicates are evaluated without ever materializing a
// selection. Cells are visited in index order, so the accumulation is
// deterministic.
func (f *factor) sumOut(attr int, allowed []bool) *factor {
	pos := f.indexOf(attr)
	if pos < 0 {
		return f
	}
	outAttrs := make([]int, 0, len(f.attrs)-1)
	outDims := make([]int, 0, len(f.dims)-1)
	for i, a := range f.attrs {
		if i == pos {
			continue
		}
		outAttrs = append(outAttrs, a)
		outDims = append(outDims, f.dims[i])
	}
	size := 1
	for _, d := range outDims {
		size *= d
	}
	out := &factor{attrs: outAttrs, dims: outDims, p: make([]float64, size)}
	codes := make([]int, len(f.attrs))
	for idx, p := range f.p {
		rem := idx
		for j := len(f.attrs) - 1; j >= 0; j-- {
			codes[j] = rem % f.dims[j]
			rem /= f.dims[j]
		}
		if allowed != nil && !allowed[codes[pos]] {
			continue
		}
		o := 0
		for i := range f.attrs {
			if i == pos {
				continue
			}
			o = o*f.dims[i] + codes[i]
		}
		out.p[o] += p
	}
	return out
}

// project orders the factor's remaining mass onto the requested
// targets, applying hierarchy-level rollup: a target at level L > 0
// aggregates raw codes through the attribute's taxonomy tree
// (Attribute.Generalize), so one query answers at any granularity the
// hierarchy defines. Accumulation visits factor cells in index order —
// for level-0 targets this is exactly the legacy projection, bit for
// bit. Duplicate targets are allowed, as InferMarginal always has.
func (f *factor) project(attrs []dataset.Attribute, targets []Target) (*marginal.Table, error) {
	out := &marginal.Table{
		Vars: make([]marginal.Var, len(targets)),
		Dims: make([]int, len(targets)),
	}
	size := 1
	for i, t := range targets {
		out.Vars[i] = marginal.Var{Attr: t.Attr, Level: t.Level}
		out.Dims[i] = attrs[t.Attr].SizeAt(t.Level)
		size *= out.Dims[i]
	}
	out.P = make([]float64, size)
	pos := make([]int, len(targets))
	for i, t := range targets {
		pos[i] = f.indexOf(t.Attr)
		if pos[i] < 0 {
			return nil, fmt.Errorf("infer: attribute %d lost during elimination", t.Attr)
		}
	}
	codes := make([]int, len(f.attrs))
	for idx, p := range f.p {
		rem := idx
		for j := len(f.attrs) - 1; j >= 0; j-- {
			codes[j] = rem % f.dims[j]
			rem /= f.dims[j]
		}
		o := 0
		for i, t := range targets {
			c := codes[pos[i]]
			if t.Level > 0 {
				c = attrs[t.Attr].Generalize(t.Level, c)
			}
			o = o*out.Dims[i] + c
		}
		out.P[o] += p
	}
	return out, nil
}
