package marginal

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"privbayes/internal/dataset"
)

// hierData builds a dataset whose first attribute carries a two-level
// taxonomy, for generalization-aware index tests.
func hierData(n int, seed int64) *dataset.Dataset {
	h := dataset.NewCategorical("city", []string{"a", "b", "c", "d"})
	h.Hierarchy = dataset.NewHierarchy(4, []int{0, 0, 1, 1})
	attrs := []dataset.Attribute{
		h,
		dataset.NewCategorical("x", []string{"0", "1", "2"}),
		dataset.NewCategorical("y", []string{"0", "1"}),
	}
	ds := dataset.New(attrs)
	rng := rand.New(rand.NewSource(seed))
	rec := make([]uint16, 3)
	for r := 0; r < n; r++ {
		rec[0], rec[1], rec[2] = uint16(rng.Intn(4)), uint16(rng.Intn(3)), uint16(rng.Intn(2))
		ds.Append(rec)
	}
	return ds
}

// TestParentIndexCodes checks each row's code is the flat cell index a
// [parents...] table would assign, including at taxonomy levels > 0.
func TestParentIndexCodes(t *testing.T) {
	ds := hierData(500, 1)
	parents := []Var{{Attr: 0, Level: 1}, {Attr: 1}}
	for _, par := range []int{1, 4} {
		ix := BuildParentIndex(ds, parents, par)
		if ix.PiDim != 2*3 {
			t.Fatalf("PiDim = %d, want 6", ix.PiDim)
		}
		ref := NewTable(ds, parents)
		codes := ix.RowCodes()
		for r := 0; r < ds.N(); r++ {
			want := ref.Index([]int{
				ds.Attr(0).Generalize(1, ds.Value(r, 0)),
				ds.Value(r, 1),
			})
			if int(codes[r]) != want {
				t.Fatalf("parallelism %d row %d: code %d, want %d", par, r, codes[r], want)
			}
		}
	}
}

// TestCountChildrenMatchesMaterializeCounts checks the fused multi-child
// pass is bit-identical to per-child MaterializeCounts at every
// parallelism, including generalized children.
func TestCountChildrenMatchesMaterializeCounts(t *testing.T) {
	ds := hierData(4000, 2)
	parents := []Var{{Attr: 1}}
	children := []Var{{Attr: 0}, {Attr: 2}, {Attr: 0, Level: 1}}
	for _, par := range []int{1, 2, 8} {
		ix := BuildParentIndex(ds, parents, par)
		got := ix.CountChildren(ds, children, par)
		for j, ch := range children {
			want := MaterializeCounts(ds, append(append([]Var(nil), parents...), ch))
			if len(got[j].P) != len(want.P) {
				t.Fatalf("child %v: %d cells, want %d", ch, len(got[j].P), len(want.P))
			}
			for i := range want.P {
				if got[j].P[i] != want.P[i] {
					t.Fatalf("parallelism %d child %v cell %d: %g, want %g", par, ch, i, got[j].P[i], want.P[i])
				}
			}
		}
	}
}

// TestParentIndexPiProjection checks the Π marginal derived by
// projection from a child joint equals a direct count scan.
func TestParentIndexPiProjection(t *testing.T) {
	ds := hierData(3000, 3)
	parents := []Var{{Attr: 0, Level: 1}, {Attr: 2}}
	ix := BuildParentIndex(ds, parents, 2)
	ix.CountChildren(ds, []Var{{Attr: 1}}, 2) // seeds piCounts by projection
	want := MaterializeCounts(ds, parents)
	pi := ix.PiTable()
	for i := range want.P {
		if pi.P[i] != want.P[i] {
			t.Fatalf("Π cell %d: %g, want %g", i, pi.P[i], want.P[i])
		}
	}
	// Without a child joint the counts come from the codes directly.
	ix2 := BuildParentIndex(ds, parents, 1)
	got := ix2.PiCounts()
	for i := range want.P {
		if got[i] != want.P[i] {
			t.Fatalf("direct Π cell %d: %g, want %g", i, got[i], want.P[i])
		}
	}
}

// TestParentIndexEntropy checks H(Π) against a direct computation and
// that the empty parent set has zero entropy.
func TestParentIndexEntropy(t *testing.T) {
	ds := hierData(2000, 4)
	parents := []Var{{Attr: 0}}
	ix := BuildParentIndex(ds, parents, 1)
	counts := MaterializeCounts(ds, parents)
	var want float64
	for _, c := range counts.P {
		if c > 0 {
			p := c / float64(ds.N())
			want -= p * math.Log2(p)
		}
	}
	if got := ix.Entropy(); math.Abs(got-want) > 1e-12 {
		t.Errorf("H(Π) = %v, want %v", got, want)
	}
	if got := ix.Entropy(); math.Abs(got-want) > 1e-12 {
		t.Errorf("cached H(Π) = %v, want %v", got, want)
	}
	empty := BuildParentIndex(ds, nil, 1)
	if got := empty.Entropy(); got != 0 {
		t.Errorf("H(∅) = %v, want 0", got)
	}
}

// TestEmptyParentSetCounting checks the degenerate single-configuration
// index counts children like a plain one-variable scan.
func TestEmptyParentSetCounting(t *testing.T) {
	ds := hierData(1500, 5)
	ix := BuildParentIndex(ds, nil, 4)
	if ix.PiDim != 1 || ix.RowCodes() != nil {
		t.Fatalf("empty parent set: PiDim %d Codes %v", ix.PiDim, ix.RowCodes() != nil)
	}
	got := ix.CountChildren(ds, []Var{{Attr: 2}}, 4)[0]
	want := MaterializeCounts(ds, []Var{{Attr: 2}})
	for i := range want.P {
		if got.P[i] != want.P[i] {
			t.Fatalf("cell %d: %g, want %g", i, got.P[i], want.P[i])
		}
	}
}

// TestLadderReproducesSerialMaterialize checks the counts→probabilities
// ladder is bit-identical to the serial Materialize accumulation — the
// property that lets shared-scan scoring return byte-equal values.
func TestLadderReproducesSerialMaterialize(t *testing.T) {
	ds := randomData(9973, 4, 3, 6) // odd n, so 1/n is not exact
	vars := []Var{{Attr: 0}, {Attr: 2}, {Attr: 3}}
	counts := MaterializeCounts(ds, vars)
	lad := NewLadder(ds.N())
	lad.Apply(counts)
	want := Materialize(ds, vars)
	for i := range want.P {
		if counts.P[i] != want.P[i] {
			t.Fatalf("cell %d: ladder %v, serial %v", i, counts.P[i], want.P[i])
		}
	}
}

// TestIndexCacheLRU checks capacity bounds, hit accounting and
// order-sensitivity of the key (layout differs, so ordered lists are
// distinct cache identities).
func TestIndexCacheLRU(t *testing.T) {
	ds := hierData(300, 7)
	c := NewIndexCache(2)
	a := c.Get(ds, []Var{{Attr: 0}}, 1)
	if got := c.Get(ds, []Var{{Attr: 0}}, 1); got != a {
		t.Error("second Get should hit the cached index")
	}
	c.Get(ds, []Var{{Attr: 1}}, 1)
	c.Get(ds, []Var{{Attr: 2}}, 1) // evicts {0}, the least recently used
	if c.Len() != 2 {
		t.Fatalf("cache holds %d indexes, want 2", c.Len())
	}
	if got := c.Get(ds, []Var{{Attr: 0}}, 1); got == a {
		t.Error("evicted index should have been rebuilt")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 4 {
		t.Errorf("stats = %d hits %d misses, want 1/4", hits, misses)
	}
	// Ordered lists are distinct identities: layouts differ.
	big := NewIndexCache(8)
	x := big.Get(ds, []Var{{Attr: 0}, {Attr: 1}}, 1)
	y := big.Get(ds, []Var{{Attr: 1}, {Attr: 0}}, 1)
	if x == y {
		t.Error("parent orderings must cache separately (different layouts)")
	}
	if big.Len() != 2 {
		t.Errorf("cache holds %d indexes, want 2", big.Len())
	}
}

// TestIndexCacheConcurrent stresses concurrent Get on overlapping parent
// sets (run with -race); every goroutine must see correct indexes.
func TestIndexCacheConcurrent(t *testing.T) {
	ds := hierData(2000, 8)
	c := NewIndexCache(3)
	want := MaterializeCounts(ds, []Var{{Attr: 0}, {Attr: 1}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for trial := 0; trial < 20; trial++ {
				parents := []Var{{Attr: (g + trial) % 3}}
				ix := c.Get(ds, parents, 2)
				if ix.PiDim != parents[0].Size(ds) {
					t.Errorf("PiDim %d for %v", ix.PiDim, parents)
				}
				full := c.Get(ds, []Var{{Attr: 0}, {Attr: 1}}, 2)
				joint := full.CountChildren(ds, []Var{{Attr: 2}}, 2)[0]
				pi := projectPiCounts(joint.P, 2, full.PiDim)
				for i := range want.P {
					if pi[i] != want.P[i] {
						t.Errorf("Π cell %d: %g, want %g", i, pi[i], want.P[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestParentConfigsOverflow checks the uint32 guard trips on absurd
// configuration spaces instead of overflowing.
func TestParentConfigsOverflow(t *testing.T) {
	labels := make([]string, 1<<12)
	for i := range labels {
		labels[i] = fmt.Sprint(i)
	}
	attrs := []dataset.Attribute{
		dataset.NewCategorical("a", labels),
		dataset.NewCategorical("b", labels),
		dataset.NewCategorical("c", labels),
	}
	ds := dataset.New(attrs)
	if _, ok := ParentConfigs(ds, []Var{{Attr: 0}, {Attr: 1}}); !ok {
		t.Error("2^24 configurations should be accepted")
	}
	if _, ok := ParentConfigs(ds, []Var{{Attr: 0}, {Attr: 1}, {Attr: 2}}); ok {
		t.Error("2^36 configurations must be rejected")
	}
}
