package marginal

import (
	"math/rand"
	"testing"

	"privbayes/internal/dataset"
)

// withRowMajor runs fn with the popcount kernel disabled, so the two
// counting engines can be compared on identical inputs.
func withRowMajor(fn func()) {
	old := disablePopcount
	disablePopcount = true
	defer func() { disablePopcount = old }()
	fn()
}

// mixedData builds a dataset whose attributes span every physical
// column width: binary (1-bit), ternary/quaternary (2-bit), and a wide
// byte-coded attribute the popcount kernel must refuse.
func mixedData(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	labels := func(k int) []string {
		out := make([]string, k)
		for i := range out {
			out[i] = string(rune('a' + i))
		}
		return out
	}
	attrs := []dataset.Attribute{
		dataset.NewCategorical("b0", labels(2)),
		dataset.NewCategorical("b1", labels(2)),
		dataset.NewCategorical("t0", labels(3)),
		dataset.NewCategorical("q0", labels(4)),
		dataset.NewCategorical("wide", labels(9)),
	}
	d := dataset.NewWithCapacity(attrs, n)
	rec := make([]uint16, len(attrs))
	for r := 0; r < n; r++ {
		for c, a := range attrs {
			rec[c] = uint16(rng.Intn(a.Size()))
		}
		d.Append(rec)
	}
	return d
}

// TestPopcountCountsMatchRowMajor checks MaterializeCounts produces
// identical tables with the popcount kernel on and off, over 1–3-way
// marginals spanning eligible and ineligible variable mixes.
func TestPopcountCountsMatchRowMajor(t *testing.T) {
	// 500 rows straddles several mask words plus a partial tail word.
	ds := mixedData(500, 11)
	varSets := [][]Var{
		{{Attr: 0}},
		{{Attr: 2}},
		{{Attr: 4}}, // wide: kernel refuses, still must agree
		{{Attr: 0}, {Attr: 1}},
		{{Attr: 1}, {Attr: 2}},
		{{Attr: 3}, {Attr: 2}},
		{{Attr: 0}, {Attr: 1}, {Attr: 2}},
		{{Attr: 2}, {Attr: 3}, {Attr: 0}},
		{{Attr: 0}, {Attr: 4}, {Attr: 1}},
		{{Attr: 3}, {Attr: 3}, {Attr: 3}}, // repeated var is legal
	}
	for _, vars := range varSets {
		fast := MaterializeCounts(ds, vars)
		var ref *Table
		withRowMajor(func() { ref = MaterializeCounts(ds, vars) })
		if len(fast.P) != len(ref.P) {
			t.Fatalf("%v: table sizes differ: %d vs %d", vars, len(fast.P), len(ref.P))
		}
		for i := range ref.P {
			if fast.P[i] != ref.P[i] {
				t.Fatalf("%v cell %d: popcount %v, row-major %v", vars, i, fast.P[i], ref.P[i])
			}
		}
	}
}

// TestPopcountMaterializeBitIdentical checks the probability tables —
// popcount counts rescaled by serialScale — are bit-identical to the
// serial row walk's repeated +1/n accumulation.
func TestPopcountMaterializeBitIdentical(t *testing.T) {
	ds := mixedData(467, 12)
	varSets := [][]Var{
		{{Attr: 0}},
		{{Attr: 0}, {Attr: 3}},
		{{Attr: 1}, {Attr: 2}, {Attr: 3}},
	}
	for _, vars := range varSets {
		fast := Materialize(ds, vars)
		var ref *Table
		withRowMajor(func() { ref = Materialize(ds, vars) })
		for i := range ref.P {
			if fast.P[i] != ref.P[i] {
				t.Fatalf("%v cell %d: popcount path %.17g, serial row walk %.17g",
					vars, i, fast.P[i], ref.P[i])
			}
		}
	}
}

// TestCountChildrenPopcountMatchesRowWalk checks the fused
// CountChildren pass splits children between the popcount kernel and
// the row walk without changing any table: mixed eligible / wide /
// generalized children against the same parent index.
func TestCountChildrenPopcountMatchesRowWalk(t *testing.T) {
	ds := hierData(700, 13)
	mixed := mixedData(700, 14)
	cases := []struct {
		ds       *dataset.Dataset
		parents  []Var
		children []Var
	}{
		{mixed, nil, []Var{{Attr: 0}, {Attr: 4}}},
		{mixed, []Var{{Attr: 0}}, []Var{{Attr: 1}, {Attr: 2}, {Attr: 4}}},
		{mixed, []Var{{Attr: 0}, {Attr: 2}}, []Var{{Attr: 1}, {Attr: 3}, {Attr: 4}}},
		{mixed, []Var{{Attr: 4}}, []Var{{Attr: 0}}}, // wide parent: whole set on row walk
		// hierData has a taxonomy: generalized parent and child are
		// ineligible and must agree through the row walk.
		{ds, []Var{{Attr: 0, Level: 1}}, []Var{{Attr: 1}}},
		{ds, []Var{{Attr: 1}}, []Var{{Attr: 0, Level: 1}, {Attr: 0}}},
	}
	for _, tc := range cases {
		for _, par := range []int{1, 4} {
			fast := BuildParentIndex(tc.ds, tc.parents, par).CountChildren(tc.ds, tc.children, par)
			var ref []*Table
			withRowMajor(func() {
				ref = BuildParentIndex(tc.ds, tc.parents, par).CountChildren(tc.ds, tc.children, par)
			})
			for j := range ref {
				for i := range ref[j].P {
					if fast[j].P[i] != ref[j].P[i] {
						t.Fatalf("parents %v child %d cell %d (par %d): popcount %v, row walk %v",
							tc.parents, j, i, par, fast[j].P[i], ref[j].P[i])
					}
				}
			}
		}
	}
}

// TestPiCountsPopcountMatchesRowWalk checks the lazily derived parent
// marginal agrees between the two engines, both straight from the
// index and via child-joint projection.
func TestPiCountsPopcountMatchesRowWalk(t *testing.T) {
	ds := mixedData(600, 15)
	parentSets := [][]Var{
		nil,
		{{Attr: 0}},
		{{Attr: 0}, {Attr: 3}},
		{{Attr: 4}},
	}
	for _, parents := range parentSets {
		fast := BuildParentIndex(ds, parents, 1).PiCounts()
		var ref []float64
		withRowMajor(func() {
			ref = BuildParentIndex(ds, parents, 1).PiCounts()
		})
		for i := range ref {
			if fast[i] != ref[i] {
				t.Fatalf("parents %v config %d: popcount %v, row walk %v", parents, i, fast[i], ref[i])
			}
		}
	}
}

// TestPopcountOnSlices checks counting on zero-copy chunk views —
// including word-unaligned ones, where the mask path falls back to a
// row loop — matches the row walk. This is the shape the out-of-core
// Accumulate path feeds the kernel.
func TestPopcountOnSlices(t *testing.T) {
	ds := mixedData(400, 16)
	vars := []Var{{Attr: 0}, {Attr: 2}}
	for _, bounds := range [][2]int{{0, 400}, {0, 64}, {64, 400}, {7, 133}, {129, 258}} {
		chunk := ds.Slice(bounds[0], bounds[1])
		fast := MaterializeCounts(chunk, vars)
		var ref *Table
		withRowMajor(func() { ref = MaterializeCounts(chunk, vars) })
		for i := range ref.P {
			if fast.P[i] != ref.P[i] {
				t.Fatalf("slice %v cell %d: popcount %v, row walk %v", bounds, i, fast.P[i], ref.P[i])
			}
		}
	}
}
