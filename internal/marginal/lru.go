package marginal

// VarLRU is a bounded least-recently-used map from canonical variable
// lists to values: entries are keyed by the compact uint64 hash of the
// list (VarsKey) and verified against the stored vars on every lookup,
// so hash collisions can never return a value for the wrong identity.
// It is the shared structure behind the scorer memo and the
// parent-configuration index cache. Not concurrency-safe — callers hold
// their own lock.
type VarLRU[V any] struct {
	cap        int // <= 0 means unbounded
	m          map[uint64][]*varLRUEntry[V]
	head, tail *varLRUEntry[V]
	size       int
}

type varLRUEntry[V any] struct {
	key        uint64
	vars       []Var
	val        V
	prev, next *varLRUEntry[V]
}

// NewVarLRU creates an LRU holding at most capacity entries; capacity
// <= 0 means unbounded.
func NewVarLRU[V any](capacity int) *VarLRU[V] {
	return &VarLRU[V]{cap: capacity, m: make(map[uint64][]*varLRUEntry[V])}
}

// Get returns the value stored for the variable list and marks it most
// recently used.
func (l *VarLRU[V]) Get(key uint64, vars []Var) (V, bool) {
	for _, e := range l.m[key] {
		if varsEqual(e.vars, vars) {
			l.touch(e)
			return e.val, true
		}
	}
	var zero V
	return zero, false
}

// PutIfAbsent inserts the value unless the identity is already present,
// returning whichever value the cache now holds — so racing builders of
// a pure value converge on the first inserted instance. vars must be a
// list the cache may retain. Insertion evicts beyond capacity.
func (l *VarLRU[V]) PutIfAbsent(key uint64, vars []Var, v V) V {
	for _, e := range l.m[key] {
		if varsEqual(e.vars, vars) {
			l.touch(e)
			return e.val
		}
	}
	e := &varLRUEntry[V]{key: key, vars: vars, val: v}
	l.m[key] = append(l.m[key], e)
	l.pushFront(e)
	l.size++
	for l.cap > 0 && l.size > l.cap {
		l.evict()
	}
	return v
}

// Len reports the number of entries.
func (l *VarLRU[V]) Len() int { return l.size }

func (l *VarLRU[V]) pushFront(e *varLRUEntry[V]) {
	e.prev, e.next = nil, l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
}

func (l *VarLRU[V]) unlink(e *varLRUEntry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (l *VarLRU[V]) touch(e *varLRUEntry[V]) {
	if l.head == e {
		return
	}
	l.unlink(e)
	l.pushFront(e)
}

func (l *VarLRU[V]) evict() {
	e := l.tail
	if e == nil {
		return
	}
	l.unlink(e)
	chain := l.m[e.key]
	for i, ce := range chain {
		if ce == e {
			chain = append(chain[:i], chain[i+1:]...)
			break
		}
	}
	if len(chain) == 0 {
		delete(l.m, e.key)
	} else {
		l.m[e.key] = chain
	}
	l.size--
}

func varsEqual(a, b []Var) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
