package marginal

import (
	"math"
	"math/rand"
	"testing"
)

func TestConditionalBlocksSumToOne(t *testing.T) {
	ds := smallData(t)
	joint := Materialize(ds, []Var{{Attr: 1}, {Attr: 0}}) // Pr[b, a], X = a
	c := ConditionalFromJoint(joint)
	if c.XDim != 2 || len(c.PDims) != 1 || c.PDims[0] != 3 {
		t.Fatalf("conditional shape wrong: XDim=%d PDims=%v", c.XDim, c.PDims)
	}
	for b := 0; b < 3; b++ {
		s := c.Prob([]int{b}, 0) + c.Prob([]int{b}, 1)
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("block %d sums to %v", b, s)
		}
	}
}

func TestConditionalMatchesBayesRule(t *testing.T) {
	ds := smallData(t)
	joint := Materialize(ds, []Var{{Attr: 1}, {Attr: 0}})
	c := ConditionalFromJoint(joint)
	// Pr[a=1 | b=2] = Pr[a=1, b=2] / Pr[b=2].
	pJoint := joint.P[joint.Index([]int{2, 1})]
	pB := joint.P[joint.Index([]int{2, 0})] + pJoint
	want := pJoint / pB
	if got := c.Prob([]int{2}, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("Prob = %v, want %v", got, want)
	}
}

func TestConditionalZeroMassUniformFallback(t *testing.T) {
	joint := &Table{
		Vars: []Var{{Attr: 0}, {Attr: 1}},
		Dims: []int{2, 3},
		P:    []float64{0.5, 0.3, 0.2, 0, 0, 0}, // second parent block empty
	}
	c := ConditionalFromJoint(joint)
	for x := 0; x < 3; x++ {
		if math.Abs(c.Prob([]int{1}, x)-1.0/3) > 1e-12 {
			t.Fatalf("zero-mass block should be uniform, got %v", c.P)
		}
	}
}

func TestConditionalNoParents(t *testing.T) {
	joint := &Table{Vars: []Var{{Attr: 0}}, Dims: []int{4}, P: []float64{0.1, 0.2, 0.3, 0.4}}
	c := ConditionalFromJoint(joint)
	if len(c.Parents) != 0 {
		t.Fatal("expected no parents")
	}
	if math.Abs(c.Prob(nil, 3)-0.4) > 1e-12 {
		t.Errorf("marginal conditional wrong: %v", c.P)
	}
}

func TestSampleXDistribution(t *testing.T) {
	joint := &Table{
		Vars: []Var{{Attr: 1}, {Attr: 0}},
		Dims: []int{1, 2},
		P:    []float64{0.8, 0.2},
	}
	c := ConditionalFromJoint(joint)
	rng := rand.New(rand.NewSource(3))
	const trials = 20000
	ones := 0
	for i := 0; i < trials; i++ {
		if c.SampleX([]int{0}, rng) == 1 {
			ones++
		}
	}
	got := float64(ones) / trials
	if math.Abs(got-0.2) > 0.01 {
		t.Errorf("sampled P(X=1) = %v, want ≈ 0.2", got)
	}
}

func TestBlockIndexArityPanics(t *testing.T) {
	joint := &Table{Vars: []Var{{Attr: 1}, {Attr: 0}}, Dims: []int{2, 2}, P: []float64{1, 0, 0, 1}}
	c := ConditionalFromJoint(joint)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong parent arity")
		}
	}()
	c.Prob([]int{0, 0}, 1)
}
