package marginal

import (
	"fmt"
	"math/rand"
	"testing"

	"privbayes/internal/dataset"
)

// Paired columnar-vs-rowmajor counting benchmarks: one greedy-iteration
// shaped workload — build the parent index for a fixed 2-parent set,
// then count every remaining attribute as a child — over binary
// (NLTCS-style) attributes at d ∈ {8, 16, 32}. CountColumnar runs the
// popcount kernel; CountRowMajor forces the legacy row walk (code build
// + fused decode scan) on the same bit-packed dataset. cmd/benchjson
// pairs the matching sub-names into columnar_vs_rowmajor/* speedups in
// BENCH_scoring.json.

const benchCountRows = 1 << 16

// benchBinaryData builds an n×d all-binary dataset, the layout the
// 1-bit packing and popcount kernel are shaped around.
func benchBinaryData(n, d int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	attrs := make([]dataset.Attribute, d)
	for a := range attrs {
		attrs[a] = dataset.NewCategorical(fmt.Sprintf("a%d", a), []string{"0", "1"})
	}
	ds := dataset.NewWithCapacity(attrs, n)
	rec := make([]uint16, d)
	for r := 0; r < n; r++ {
		for c := 0; c < d; c++ {
			rec[c] = uint16(rng.Intn(2))
		}
		ds.Append(rec)
	}
	return ds
}

func benchCountChildren(b *testing.B, d int, rowMajor bool) {
	ds := benchBinaryData(benchCountRows, d, 42)
	parents := []Var{{Attr: 0}, {Attr: 1}}
	children := make([]Var, 0, d-2)
	for a := 2; a < d; a++ {
		children = append(children, Var{Attr: a})
	}
	old := disablePopcount
	disablePopcount = rowMajor
	defer func() { disablePopcount = old }()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh index per iteration, as a fresh parent set in the
		// greedy search would be: the row-major path pays its code
		// build, the columnar path its mask builds.
		ix := BuildParentIndex(ds, parents, 1)
		ix.CountChildren(ds, children, 1)
	}
}

func BenchmarkCountColumnar(b *testing.B) {
	for _, d := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("d%d", d), func(b *testing.B) { benchCountChildren(b, d, false) })
	}
}

func BenchmarkCountRowMajor(b *testing.B) {
	for _, d := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("d%d", d), func(b *testing.B) { benchCountChildren(b, d, true) })
	}
}
