package marginal

import (
	"fmt"
	"math/rand"
)

// Conditional holds a conditional distribution Pr[X | Π] derived from a
// joint table laid out as [Π..., X]. Each contiguous block of size
// |dom(X)| holds the distribution of X given one parent configuration.
type Conditional struct {
	X       Var
	Parents []Var
	PDims   []int     // parent dimensions, in Parents order
	XDim    int       // |dom(X)|
	P       []float64 // len = prod(PDims) * XDim; each block sums to 1
}

// ConditionalFromJoint derives Pr[X | Π] from a joint distribution whose
// last variable is X (Line 6 of Algorithm 1). Zero-mass parent
// configurations fall back to the uniform distribution over X, so the
// sampler never stalls.
func ConditionalFromJoint(joint *Table) *Conditional {
	k := len(joint.Vars)
	if k == 0 {
		panic("marginal: conditional from empty joint")
	}
	xDim := joint.Dims[k-1]
	c := &Conditional{
		X:       joint.Vars[k-1],
		Parents: append([]Var(nil), joint.Vars[:k-1]...),
		PDims:   append([]int(nil), joint.Dims[:k-1]...),
		XDim:    xDim,
		P:       append([]float64(nil), joint.P...),
	}
	for off := 0; off < len(c.P); off += xDim {
		block := c.P[off : off+xDim]
		var s float64
		for _, p := range block {
			s += p
		}
		if s <= 0 {
			u := 1 / float64(xDim)
			for i := range block {
				block[i] = u
			}
			continue
		}
		inv := 1 / s
		for i := range block {
			block[i] *= inv
		}
	}
	return c
}

// BlockIndex converts parent codes (in Parents order) to the offset of
// the corresponding conditional block.
func (c *Conditional) BlockIndex(parentCodes []int) int {
	if len(parentCodes) != len(c.PDims) {
		panic(fmt.Sprintf("marginal: %d parent codes for %d parents", len(parentCodes), len(c.PDims)))
	}
	idx := 0
	for i, v := range parentCodes {
		idx = idx*c.PDims[i] + v
	}
	return idx * c.XDim
}

// Prob returns Pr[X = x | Π = parentCodes].
func (c *Conditional) Prob(parentCodes []int, x int) float64 {
	return c.P[c.BlockIndex(parentCodes)+x]
}

// SampleX draws a value of X given parent codes.
func (c *Conditional) SampleX(parentCodes []int, rng *rand.Rand) int {
	off := c.BlockIndex(parentCodes)
	u := rng.Float64()
	var cum float64
	for x := 0; x < c.XDim; x++ {
		cum += c.P[off+x]
		if u < cum {
			return x
		}
	}
	return c.XDim - 1
}
