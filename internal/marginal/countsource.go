package marginal

import "context"

// CountSource supplies exact integer joint count tables without
// exposing rows. It is the seam between the fit pipeline and the
// out-of-core engine: everything PrivBayes learns from data reduces to
// the schema, the row count, and [parents..., child] count tables, so
// a source backed by chunked scans (counts.Provider) or an
// incrementally maintained store (counts.StoreSource) can drive the
// exact same greedy search and conditional materialization as
// in-memory rows.
//
// CountTables must return, for each child, the table
// ParentIndex.CountChildren would produce over the full dataset: laid
// out [parents..., child] with integer-valued float64 cells. Integer
// counts merge exactly, so any chunking or sharding of the underlying
// rows yields bit-identical tables — the foundation of the
// out-of-core fit's byte-identity contract.
type CountSource interface {
	// Rows returns the number of rows the counts are over.
	Rows() int
	// CountTables returns one exact count table per child, each laid
	// out [parents..., child]. The caller owns the returned tables and
	// may mutate them freely.
	CountTables(parents []Var, children []Var) ([]*Table, error)
}

// CountRequest names one group of joint tables over a shared parent
// set, for batched prefetching.
type CountRequest struct {
	Parents  []Var
	Children []Var
}

// BatchCountSource is implemented by count sources that can satisfy
// many requests in one pass over the data. The scoring engine and the
// conditional materialization prefetch each batch, so a scan-backed
// source pays one full scan per greedy iteration rather than one per
// parent set.
type BatchCountSource interface {
	CountSource
	// Prefetch makes subsequent CountTables calls for the requested
	// groups serve from memory.
	Prefetch(ctx context.Context, reqs []CountRequest) error
}
