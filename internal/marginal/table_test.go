package marginal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"privbayes/internal/dataset"
)

func smallData(t *testing.T) *dataset.Dataset {
	t.Helper()
	attrs := []dataset.Attribute{
		dataset.NewCategorical("a", []string{"0", "1"}),
		dataset.NewCategorical("b", []string{"x", "y", "z"}),
		dataset.NewContinuous("c", 0, 16, 4),
	}
	ds := dataset.New(attrs)
	rng := rand.New(rand.NewSource(1))
	rec := make([]uint16, 3)
	for i := 0; i < 500; i++ {
		rec[0] = uint16(rng.Intn(2))
		rec[1] = uint16(rng.Intn(3))
		rec[2] = uint16(rng.Intn(4))
		ds.Append(rec)
	}
	return ds
}

func TestMaterializeSumsToOne(t *testing.T) {
	ds := smallData(t)
	tab := Materialize(ds, []Var{{Attr: 0}, {Attr: 1}, {Attr: 2}})
	if got := tab.Sum(); math.Abs(got-1) > 1e-9 {
		t.Errorf("sum = %v, want 1", got)
	}
	if tab.Cells() != 2*3*4 {
		t.Errorf("cells = %d, want 24", tab.Cells())
	}
}

func TestMaterializeCountsMatchesN(t *testing.T) {
	ds := smallData(t)
	tab := MaterializeCounts(ds, []Var{{Attr: 1}})
	if got := tab.Sum(); math.Abs(got-float64(ds.N())) > 1e-9 {
		t.Errorf("counts sum = %v, want %d", got, ds.N())
	}
	// Counts must be non-negative integers.
	for _, c := range tab.P {
		if c < 0 || c != math.Trunc(c) {
			t.Fatalf("count %v not a non-negative integer", c)
		}
	}
}

func TestMaterializeMatchesDirectCount(t *testing.T) {
	ds := smallData(t)
	tab := Materialize(ds, []Var{{Attr: 0}, {Attr: 2}})
	// Count directly.
	direct := make([]float64, 2*4)
	for r := 0; r < ds.N(); r++ {
		direct[ds.Value(r, 0)*4+ds.Value(r, 2)] += 1 / float64(ds.N())
	}
	for i := range direct {
		if math.Abs(direct[i]-tab.P[i]) > 1e-12 {
			t.Fatalf("cell %d: %v vs %v", i, tab.P[i], direct[i])
		}
	}
}

func TestMaterializeWithGeneralization(t *testing.T) {
	ds := smallData(t)
	// Attribute c (4 bins) generalized to level 1 (2 groups).
	tab := Materialize(ds, []Var{{Attr: 2, Level: 1}})
	if tab.Cells() != 2 {
		t.Fatalf("generalized cells = %d, want 2", tab.Cells())
	}
	raw := Materialize(ds, []Var{{Attr: 2}})
	if math.Abs(tab.P[0]-(raw.P[0]+raw.P[1])) > 1e-12 {
		t.Errorf("generalized cell 0 should merge raw bins 0+1")
	}
}

func TestIndexCodesRoundTrip(t *testing.T) {
	ds := smallData(t)
	tab := NewTable(ds, []Var{{Attr: 0}, {Attr: 1}, {Attr: 2}})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		codes := []int{rng.Intn(2), rng.Intn(3), rng.Intn(4)}
		idx := tab.Index(codes)
		back := tab.Codes(idx, nil)
		for i := range codes {
			if codes[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLastVariableVariesFastest(t *testing.T) {
	ds := smallData(t)
	tab := NewTable(ds, []Var{{Attr: 1}, {Attr: 0}})
	if tab.Index([]int{0, 1})-tab.Index([]int{0, 0}) != 1 {
		t.Error("last variable must have stride 1")
	}
	if tab.Index([]int{1, 0})-tab.Index([]int{0, 0}) != 2 {
		t.Error("first variable must have stride |dom(last)|")
	}
}

func TestClampNormalize(t *testing.T) {
	tab := &Table{Dims: []int{4}, P: []float64{-0.5, 1, 3, 0}}
	tab.ClampNormalize()
	if tab.P[0] != 0 {
		t.Error("negative cell must clamp to 0")
	}
	if math.Abs(tab.Sum()-1) > 1e-12 {
		t.Errorf("sum after normalize = %v", tab.Sum())
	}
	if math.Abs(tab.P[2]-0.75) > 1e-12 {
		t.Errorf("cell 2 = %v, want 0.75", tab.P[2])
	}
}

func TestClampNormalizeAllNegativeFallsBackToUniform(t *testing.T) {
	tab := &Table{Dims: []int{4}, P: []float64{-1, -2, -3, -0.1}}
	tab.ClampNormalize()
	for _, p := range tab.P {
		if math.Abs(p-0.25) > 1e-12 {
			t.Fatalf("expected uniform fallback, got %v", tab.P)
		}
	}
}

func TestMarginalizeOntoConsistency(t *testing.T) {
	ds := smallData(t)
	joint := Materialize(ds, []Var{{Attr: 0}, {Attr: 1}, {Attr: 2}})
	sub := joint.MarginalizeOnto([]Var{{Attr: 1}, {Attr: 2}})
	direct := Materialize(ds, []Var{{Attr: 1}, {Attr: 2}})
	if L1(sub, direct) > 1e-9 {
		t.Errorf("projected marginal differs from direct: L1 = %v", L1(sub, direct))
	}
	// Reordered projection.
	swapped := joint.MarginalizeOnto([]Var{{Attr: 2}, {Attr: 0}})
	directSwapped := Materialize(ds, []Var{{Attr: 2}, {Attr: 0}})
	if L1(swapped, directSwapped) > 1e-9 {
		t.Error("reordered projection mismatch")
	}
}

func TestMarginalizeOntoUnknownVarPanics(t *testing.T) {
	ds := smallData(t)
	joint := Materialize(ds, []Var{{Attr: 0}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown variable")
		}
	}()
	joint.MarginalizeOnto([]Var{{Attr: 1}})
}

func TestTVDProperties(t *testing.T) {
	a := &Table{Dims: []int{2}, P: []float64{0.5, 0.5}}
	b := &Table{Dims: []int{2}, P: []float64{1, 0}}
	if got := TVD(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("TVD = %v, want 0.5", got)
	}
	if TVD(a, a) != 0 {
		t.Error("TVD(x,x) must be 0")
	}
	if math.Abs(TVD(a, b)-TVD(b, a)) > 1e-15 {
		t.Error("TVD must be symmetric")
	}
}

func TestAddLaplaceZeroScaleIsNoop(t *testing.T) {
	tab := &Table{Dims: []int{4}, P: []float64{0.25, 0.25, 0.25, 0.25}}
	before := append([]float64(nil), tab.P...)
	tab.AddLaplace(rand.New(rand.NewSource(1)), 0)
	for i := range before {
		if tab.P[i] != before[i] {
			t.Fatal("scale-0 noise must leave cells unchanged")
		}
	}
}

func TestAddLaplaceStats(t *testing.T) {
	const cells = 20000
	tab := &Table{Dims: []int{cells}, P: make([]float64, cells)}
	tab.AddLaplace(rand.New(rand.NewSource(2)), 0.5)
	var mean, absMean float64
	for _, p := range tab.P {
		mean += p
		absMean += math.Abs(p)
	}
	mean /= cells
	absMean /= cells
	if math.Abs(mean) > 0.02 {
		t.Errorf("Laplace mean = %v, want ≈ 0", mean)
	}
	// E|Laplace(b)| = b.
	if math.Abs(absMean-0.5) > 0.02 {
		t.Errorf("Laplace E|x| = %v, want ≈ 0.5", absMean)
	}
}

func TestMaterializeEmptyDatasetUniform(t *testing.T) {
	ds := dataset.New([]dataset.Attribute{dataset.NewCategorical("a", []string{"0", "1"})})
	tab := Materialize(ds, []Var{{Attr: 0}})
	if math.Abs(tab.P[0]-0.5) > 1e-12 || math.Abs(tab.P[1]-0.5) > 1e-12 {
		t.Errorf("empty dataset marginal = %v, want uniform", tab.P)
	}
}
