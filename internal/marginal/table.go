// Package marginal implements multi-dimensional marginal (contingency)
// tables over dataset attributes: materialization from data, Laplace
// noise injection, the clamp-and-normalize post-processing of Algorithm 1,
// conditional derivation, projection, and distribution distances.
package marginal

import (
	"fmt"
	"math"
	"math/rand"

	"privbayes/internal/dataset"
	"privbayes/internal/parallel"
)

// Var identifies an attribute at a generalization level. Level 0 is the
// raw domain; higher levels use the attribute's taxonomy tree
// (Section 5.1, hierarchical encoding).
type Var struct {
	Attr  int
	Level int
}

// Size returns the domain size of the variable within the dataset schema.
func (v Var) Size(ds *dataset.Dataset) int { return ds.Attr(v.Attr).SizeAt(v.Level) }

// String renders the variable as name(level) for diagnostics.
func (v Var) String() string {
	if v.Level == 0 {
		return fmt.Sprintf("a%d", v.Attr)
	}
	return fmt.Sprintf("a%d^%d", v.Attr, v.Level)
}

// Table is a dense joint distribution (or count table) over a list of
// variables, stored row-major with the LAST variable varying fastest.
// PrivBayes stores AP-pair joints as [parents..., child] so the cells of
// a conditional slice Pr[X | Π=π] are contiguous.
type Table struct {
	Vars []Var
	Dims []int
	P    []float64
}

// NewTable allocates a zeroed table for the given variables.
func NewTable(ds *dataset.Dataset, vars []Var) *Table {
	dims := make([]int, len(vars))
	size := 1
	for i, v := range vars {
		dims[i] = v.Size(ds)
		size *= dims[i]
	}
	return &Table{Vars: append([]Var(nil), vars...), Dims: dims, P: make([]float64, size)}
}

// Cells returns the number of cells (the paper's m for this marginal).
func (t *Table) Cells() int { return len(t.P) }

// Index converts per-variable codes into a flat cell index.
func (t *Table) Index(codes []int) int {
	idx := 0
	for i, c := range codes {
		idx = idx*t.Dims[i] + c
	}
	return idx
}

// Codes inverts Index, filling dst (allocating when short).
func (t *Table) Codes(idx int, dst []int) []int {
	if cap(dst) < len(t.Dims) {
		dst = make([]int, len(t.Dims))
	}
	dst = dst[:len(t.Dims)]
	for i := len(t.Dims) - 1; i >= 0; i-- {
		dst[i] = idx % t.Dims[i]
		idx /= t.Dims[i]
	}
	return dst
}

// Materialize computes the empirical joint distribution of the variables
// on the dataset, normalized to total mass 1 (Line 3 of Algorithm 1).
// With n = 0 rows the table is uniform.
func Materialize(ds *dataset.Dataset, vars []Var) *Table {
	n := ds.N()
	if n == 0 {
		t := NewTable(ds, vars)
		u := 1 / float64(len(t.P))
		for i := range t.P {
			t.P[i] = u
		}
		return t
	}
	if t, ok := popcountCounts(ds, vars); ok {
		// Exact integer counts rescaled by the repeated-addition rule
		// reproduce the serial +1/n row walk bit for bit (see Ladder).
		serialScale(t, n)
		return t
	}
	t := NewTable(ds, vars)
	t.countInto(ds, 1/float64(n))
	return t
}

// serialScale turns an exact count table into the probability table the
// serial countInto(ds, 1/n) accumulation would have produced, bit for
// bit: a cell hit m times holds the result of m successive additions of
// 1/n, and cells accumulate independently, so replaying each cell's
// additions reproduces the row walk exactly. Total work is Σ counts = n
// float additions — the row walk's accumulation cost without touching
// the rows.
func serialScale(t *Table, n int) {
	inv := 1 / float64(n)
	for i, p := range t.P {
		m := int(p)
		var acc float64
		for j := 0; j < m; j++ {
			acc += inv
		}
		t.P[i] = acc
	}
}

// MaterializeCounts computes raw integer counts (as float64 values). The
// F score's dynamic program relies on every cell being a multiple of 1/n;
// counts keep that exact.
func MaterializeCounts(ds *dataset.Dataset, vars []Var) *Table {
	if t, ok := popcountCounts(ds, vars); ok {
		return t
	}
	t := NewTable(ds, vars)
	t.countInto(ds, 1)
	return t
}

func (t *Table) countInto(ds *dataset.Dataset, w float64) {
	c := newCounter(t, ds)
	c.countRange(0, ds.N(), w, t.P)
	c.release()
}

// counter precomputes per-variable stride, column, and generalization
// lookups so the row loop is a handful of array reads per variable. One
// counter can drive many row ranges concurrently — countRange keeps its
// decode scratch per call — which is what the chunked parallel
// materialization fans out over.
type counter struct {
	strides []int
	cols    []*dataset.Column
	gen     [][]int // nil when level == 0
}

func newCounter(t *Table, ds *dataset.Dataset) *counter {
	k := len(t.Vars)
	c := &counter{strides: make([]int, k), cols: make([]*dataset.Column, k), gen: make([][]int, k)}
	s := 1
	for i := k - 1; i >= 0; i-- {
		c.strides[i] = s
		s *= t.Dims[i]
	}
	for i, v := range t.Vars {
		c.cols[i] = ds.Col(v.Attr)
		if v.Level > 0 {
			a := ds.Attr(v.Attr)
			m := getInts(a.Size())
			for code := range m {
				m[code] = a.Generalize(v.Level, code)
			}
			c.gen[i] = m
		}
	}
	return c
}

// release returns the counter's pooled generalization lookups. The
// counter must not be used afterwards.
func (c *counter) release() {
	for i, g := range c.gen {
		if g != nil {
			putInts(g)
			c.gen[i] = nil
		}
	}
}

// countRange accumulates w per row of [lo, hi) into dst, decoding
// columns a chunk at a time so bit-packed columns unpack word-at-a-time
// instead of per row-read. Row order is preserved, keeping the serial
// accumulation bit-identical to the pre-columnar row walk. Safe for
// concurrent calls on one counter: decode scratch is per call.
func (c *counter) countRange(lo, hi int, w float64, dst []float64) {
	k := len(c.strides)
	if k == 0 {
		for r := lo; r < hi; r++ {
			dst[0] += w
		}
		return
	}
	decoded := make([][]uint16, k)
	scratch := make([][]uint16, k)
	for i := range scratch {
		scratch[i] = getU16(materializeChunk)
	}
	for a := lo; a < hi; a += materializeChunk {
		b := min(a+materializeChunk, hi)
		for i := range decoded {
			decoded[i] = c.cols[i].DecodeRange(a, b, scratch[i])
		}
		for r := range b - a {
			idx := 0
			for i := 0; i < k; i++ {
				code := int(decoded[i][r])
				if c.gen[i] != nil {
					code = c.gen[i][code]
				}
				idx += code * c.strides[i]
			}
			dst[idx] += w
		}
	}
	for i := range scratch {
		putU16(scratch[i])
	}
}

// materializeChunk is the row-range fan-out granularity. Large enough
// that per-chunk overhead vanishes, small enough to balance load across
// workers on mid-sized datasets.
const materializeChunk = 4096

// MaterializeP is Materialize with chunked row-range fan-out across up
// to `parallelism` workers (<= 0 selects GOMAXPROCS; see
// parallel.Workers). Workers count rows into per-worker scratch tables
// and the exact integer partials are merged and scaled by 1/n, so the
// result is bit-identical at every parallelism other than 1, on any
// machine — counting is exact, so neither the worker count nor
// scheduling can shift a cell. parallelism 1 — and only 1 — takes the
// serial Materialize path, whose repeated 1/n accumulation may differ
// from the merged counts in the last ULP.
func MaterializeP(ds *dataset.Dataset, vars []Var, parallelism int) *Table {
	n := ds.N()
	if parallelism == 1 || n == 0 {
		return Materialize(ds, vars)
	}
	t := MaterializeCountsP(ds, vars, parallelism)
	t.Scale(1 / float64(n))
	return t
}

// MaterializeCountsP is MaterializeCounts with chunked row-range
// fan-out. Counts are integer-valued, so per-worker accumulation merges
// exactly: the result is bit-identical to the serial MaterializeCounts
// at any parallelism.
func MaterializeCountsP(ds *dataset.Dataset, vars []Var, parallelism int) *Table {
	n := ds.N()
	if parallelism == 1 || n == 0 {
		return MaterializeCounts(ds, vars)
	}
	// The popcount kernel already beats the fan-out on eligible
	// low-arity marginals, and its integer counts are the same exact
	// values the merged per-worker partials would hold.
	if t, ok := popcountCounts(ds, vars); ok {
		return t
	}
	workers := parallel.Workers(parallelism)
	t := NewTable(ds, vars)
	c := newCounter(t, ds)
	scratch := make([][]float64, workers)
	parallel.ForChunks(workers, n, materializeChunk, func(worker, lo, hi int) {
		if scratch[worker] == nil {
			scratch[worker] = getFloats(len(t.P))
		}
		c.countRange(lo, hi, 1, scratch[worker])
	})
	for _, part := range scratch {
		if part == nil {
			continue
		}
		for i, v := range part {
			t.P[i] += v
		}
		putFloats(part)
	}
	c.release()
	return t
}

// Sum returns the total mass.
func (t *Table) Sum() float64 {
	var s float64
	for _, p := range t.P {
		s += p
	}
	return s
}

// Scale multiplies every cell by f.
func (t *Table) Scale(f float64) {
	for i := range t.P {
		t.P[i] *= f
	}
}

// AddLaplace adds i.i.d. Laplace(scale) noise to every cell (Line 4 of
// Algorithm 1). The noise function is injected so callers can share one
// seeded source.
func (t *Table) AddLaplace(rng *rand.Rand, scale float64) {
	for i := range t.P {
		t.P[i] += laplace(rng, scale)
	}
}

// laplace draws one Laplace(0, b) variate by inverse-CDF sampling.
func laplace(rng *rand.Rand, b float64) float64 {
	u := rng.Float64() - 0.5
	if u < 0 {
		return b * math.Log1p(2*u)
	}
	return -b * math.Log1p(-2*u)
}

// ClampNormalize sets negative cells to zero and rescales to total mass 1
// (Line 5 of Algorithm 1). When everything clamps to zero the table
// becomes uniform, the least-informative valid distribution.
func (t *Table) ClampNormalize() {
	var s float64
	for i, p := range t.P {
		if p < 0 {
			t.P[i] = 0
		} else {
			s += p
		}
	}
	if s <= 0 {
		u := 1 / float64(len(t.P))
		for i := range t.P {
			t.P[i] = u
		}
		return
	}
	inv := 1 / s
	for i := range t.P {
		t.P[i] *= inv
	}
}

// Clone deep-copies the table.
func (t *Table) Clone() *Table {
	return &Table{
		Vars: append([]Var(nil), t.Vars...),
		Dims: append([]int(nil), t.Dims...),
		P:    append([]float64(nil), t.P...),
	}
}

// MarginalizeOnto sums the table down to the given subset of its
// variables (which must each appear in t.Vars), in the given order.
func (t *Table) MarginalizeOnto(vars []Var) *Table {
	pos := make([]int, len(vars))
	for i, v := range vars {
		pos[i] = -1
		for j, tv := range t.Vars {
			if tv == v {
				pos[i] = j
				break
			}
		}
		if pos[i] < 0 {
			panic(fmt.Sprintf("marginal: variable %v not in table %v", v, t.Vars))
		}
	}
	dims := make([]int, len(vars))
	size := 1
	for i := range vars {
		dims[i] = t.Dims[pos[i]]
		size *= dims[i]
	}
	out := &Table{Vars: append([]Var(nil), vars...), Dims: dims, P: make([]float64, size)}
	codes := getInts(len(t.Dims))
	for idx := range t.P {
		codes = t.Codes(idx, codes)
		o := 0
		for i := range vars {
			o = o*dims[i] + codes[pos[i]]
		}
		out.P[o] += t.P[idx]
	}
	putInts(codes)
	return out
}

// L1 returns the L1 distance between two tables of identical shape.
func L1(a, b *Table) float64 {
	if len(a.P) != len(b.P) {
		panic("marginal: L1 on tables of different size")
	}
	var s float64
	for i := range a.P {
		d := a.P[i] - b.P[i]
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}

// TVD returns the total variation distance, half the L1 distance; this is
// the paper's accuracy metric for noisy marginals (Section 6.1).
func TVD(a, b *Table) float64 { return L1(a, b) / 2 }
