package marginal

// Word-at-a-time popcount counting over bit-packed columns: the
// relational-algebra reading of marginal counting, where a parent
// configuration is a selection (bitmask intersection of per-value
// column masks) and a joint count cell is a projection (popcount of the
// intersected mask). For the 1–3-way marginals PrivBayes materializes
// over low-arity attributes this replaces the per-row scan with ~2 word
// operations per 64 rows per cell, and — because counts are exact
// integers — composes with Ladder to stay bit-identical to the serial
// row-walk at every parallelism.

import (
	"math/bits"

	"privbayes/internal/dataset"
)

// popcountMaxCells bounds the joint-table size (parent configurations ×
// child domain) the popcount kernel will take on. Beyond it the
// mask-per-cell strategy scans the rows once per cell and loses to the
// single fused row walk; 64 covers every joint of ≤3 maskable (≤2-bit)
// variables.
const popcountMaxCells = 64

// disablePopcount forces the row-major counting paths, so tests and
// benchmarks can compare the two engines on identical inputs. It is the
// single gate: every popcount entry point funnels through newPopKernel.
var disablePopcount bool

// popVarOK reports whether a variable can be counted by bitmask: raw
// domain (no taxonomy generalization) over a bit-packed column of a
// materialized dataset.
func popVarOK(ds *dataset.Dataset, v Var) bool {
	if v.Level != 0 {
		return false
	}
	c := ds.Col(v.Attr)
	return c != nil && c.Maskable()
}

// popKernel holds the per-value row bitmasks of one parent set, ready
// to count any number of children against. Masks come from the shared
// word pool; callers must release().
type popKernel struct {
	ds     *dataset.Dataset
	nw     int          // words per row mask
	dims   []int        // parent domain sizes
	piDim  int          // parent configurations
	pmasks [][][]uint64 // pmasks[i][v]: rows where parent i has code v
	tmp    []uint64     // intersection scratch (2-parent case)
}

// newPopKernel builds the parent-side masks, or reports false when the
// parent set is not popcount-eligible (more than 2 parents, any
// non-maskable parent, or the kernel globally disabled).
func newPopKernel(ds *dataset.Dataset, parents []Var) (*popKernel, bool) {
	if disablePopcount || len(parents) > 2 {
		return nil, false
	}
	for _, v := range parents {
		if !popVarOK(ds, v) {
			return nil, false
		}
	}
	k := &popKernel{ds: ds, piDim: 1}
	if len(parents) > 0 {
		k.nw = ds.Col(parents[0].Attr).MaskWords()
	}
	k.dims = make([]int, len(parents))
	k.pmasks = make([][][]uint64, len(parents))
	for i, v := range parents {
		col := ds.Col(v.Attr)
		size := col.Size()
		k.dims[i] = size
		k.piDim *= size
		vm := make([][]uint64, size)
		for val := 0; val < size; val++ {
			m := getWords(k.nw)
			col.FillValueMask(val, m)
			vm[val] = m
		}
		k.pmasks[i] = vm
	}
	if len(parents) == 2 {
		k.tmp = getWords(k.nw)
	}
	return k, true
}

// childOK reports whether a child can be counted against this kernel:
// maskable, and the joint table small enough that mask-per-cell wins.
func (k *popKernel) childOK(child Var) bool {
	return popVarOK(k.ds, child) && k.piDim*child.Size(k.ds) <= popcountMaxCells
}

// countChildren fills dsts[j] — a zeroed [parents..., child_j] count
// table laid out with the child fastest — with exact joint counts for
// every child. Iteration is configuration-major: each parent
// configuration's intersection mask is built once and amortized across
// all children and child values.
func (k *popKernel) countChildren(children []Var, dsts [][]float64) {
	if len(children) == 0 {
		return
	}
	// Per-child per-value masks.
	cmasks := make([][][]uint64, len(children))
	xdim := make([]int, len(children))
	for j, ch := range children {
		col := k.ds.Col(ch.Attr)
		// A kernel built for a 0-parent set on a virtual/empty dataset
		// has nw from the child instead.
		if k.nw == 0 {
			k.nw = col.MaskWords()
		}
		xd := col.Size()
		xdim[j] = xd
		vm := make([][]uint64, xd)
		for val := 0; val < xd; val++ {
			m := getWords(k.nw)
			col.FillValueMask(val, m)
			vm[val] = m
		}
		cmasks[j] = vm
	}
	for p := 0; p < k.piDim; p++ {
		var cfg []uint64
		switch len(k.pmasks) {
		case 0:
			cfg = nil // every row
		case 1:
			cfg = k.pmasks[0][p]
		default:
			m0 := k.pmasks[0][p/k.dims[1]]
			m1 := k.pmasks[1][p%k.dims[1]]
			for w := range k.tmp {
				k.tmp[w] = m0[w] & m1[w]
			}
			cfg = k.tmp
		}
		for j := range children {
			dst := dsts[j]
			for x, mx := range cmasks[j] {
				var c int
				if cfg == nil {
					for _, w := range mx {
						c += bits.OnesCount64(w)
					}
				} else {
					for w := range mx {
						c += bits.OnesCount64(cfg[w] & mx[w])
					}
				}
				dst[p*xdim[j]+x] = float64(c)
			}
		}
	}
	for _, vm := range cmasks {
		for _, m := range vm {
			putWords(m)
		}
	}
}

// release returns the kernel's pooled masks. The kernel must not be
// used afterwards.
func (k *popKernel) release() {
	for _, vm := range k.pmasks {
		for _, m := range vm {
			putWords(m)
		}
	}
	if k.tmp != nil {
		putWords(k.tmp)
	}
}

// popcountCounts materializes the exact count table of vars — read as
// [parents..., child] with vars' last variable as the child — via the
// popcount kernel, or reports false when the variable list is not
// eligible. The counts are identical (as integers, hence bit-identical
// as float64) to MaterializeCounts' row walk.
func popcountCounts(ds *dataset.Dataset, vars []Var) (*Table, bool) {
	if len(vars) == 0 || len(vars) > 3 {
		return nil, false
	}
	parents, child := vars[:len(vars)-1], vars[len(vars)-1]
	k, ok := newPopKernel(ds, parents)
	if !ok {
		return nil, false
	}
	defer k.release()
	if !k.childOK(child) {
		return nil, false
	}
	t := NewTable(ds, vars)
	k.countChildren([]Var{child}, [][]float64{t.P})
	return t, true
}
