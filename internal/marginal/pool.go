package marginal

// Scratch-buffer pools for the counting hot path. Every parallel
// materialization used to allocate fresh per-worker count scratch and
// per-variable lookup tables; within one Fit those allocations recur
// thousands of times with identical shapes, so they are pooled here.
// Buffers handed out by getFloats are zeroed, which is what counting
// scratch needs; getInts buffers are overwritten fully by their users.

import "sync"

var floatPool = sync.Pool{New: func() any { s := make([]float64, 0, 1024); return &s }}

// getFloats returns a zeroed float64 scratch buffer of exactly n cells.
// Too-small pooled buffers are dropped (not re-pooled), so the larger
// replacement takes their slot when putFloats returns it.
func getFloats(n int) []float64 {
	p := floatPool.Get().(*[]float64)
	s := *p
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	*p = s
	return s
}

// putFloats returns a buffer obtained from getFloats to the pool.
func putFloats(s []float64) {
	if cap(s) == 0 {
		return
	}
	floatPool.Put(&s)
}

var u16Pool = sync.Pool{New: func() any { s := make([]uint16, 0, 4096); return &s }}

// getU16 returns a uint16 scratch buffer of exactly n cells (not
// zeroed) — the per-chunk column-decode scratch of the counting loops.
func getU16(n int) []uint16 {
	p := u16Pool.Get().(*[]uint16)
	s := *p
	if cap(s) < n {
		return make([]uint16, n)
	}
	s = s[:n]
	*p = s
	return s
}

// putU16 returns a buffer obtained from getU16 to the pool.
func putU16(s []uint16) {
	if cap(s) == 0 {
		return
	}
	u16Pool.Put(&s)
}

var wordPool = sync.Pool{New: func() any { s := make([]uint64, 0, 1024); return &s }}

// getWords returns a uint64 scratch buffer of exactly n words (not
// zeroed) — row-bitmask scratch for the popcount counting kernel, whose
// users overwrite every word.
func getWords(n int) []uint64 {
	p := wordPool.Get().(*[]uint64)
	s := *p
	if cap(s) < n {
		return make([]uint64, n)
	}
	s = s[:n]
	*p = s
	return s
}

// putWords returns a buffer obtained from getWords to the pool.
func putWords(s []uint64) {
	if cap(s) == 0 {
		return
	}
	wordPool.Put(&s)
}

var intPool = sync.Pool{New: func() any { s := make([]int, 0, 256); return &s }}

// getInts returns an int scratch buffer of exactly n cells (not zeroed).
func getInts(n int) []int {
	p := intPool.Get().(*[]int)
	s := *p
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	*p = s
	return s
}

// putInts returns a buffer obtained from getInts to the pool.
func putInts(s []int) {
	if cap(s) == 0 {
		return
	}
	intPool.Put(&s)
}
