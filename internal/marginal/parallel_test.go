package marginal

import (
	"math"
	"math/rand"
	"testing"

	"privbayes/internal/dataset"
)

func randomData(n, d, domain int, seed int64) *dataset.Dataset {
	attrs := make([]dataset.Attribute, d)
	labels := make([]string, domain)
	for v := range labels {
		labels[v] = string(rune('0' + v))
	}
	for i := range attrs {
		attrs[i] = dataset.NewCategorical(string(rune('a'+i)), labels)
	}
	ds := dataset.New(attrs)
	rng := rand.New(rand.NewSource(seed))
	rec := make([]uint16, d)
	for r := 0; r < n; r++ {
		for c := range rec {
			rec[c] = uint16(rng.Intn(domain))
		}
		ds.Append(rec)
	}
	return ds
}

// TestMaterializeCountsPExact checks the chunked parallel counter is
// bit-identical to the serial one at every parallelism: counts are
// integer-valued, so per-worker accumulation merges exactly.
func TestMaterializeCountsPExact(t *testing.T) {
	ds := randomData(10000, 4, 3, 1)
	vars := []Var{{Attr: 0}, {Attr: 2}, {Attr: 3}}
	want := MaterializeCounts(ds, vars)
	for _, par := range []int{1, 2, 3, 8, 32} {
		got := MaterializeCountsP(ds, vars, par)
		for i := range want.P {
			if got.P[i] != want.P[i] {
				t.Fatalf("parallelism %d: cell %d = %g, want %g", par, i, got.P[i], want.P[i])
			}
		}
	}
}

// TestMaterializePDeterministic checks the normalized parallel
// materialization is bit-identical across worker counts >= 2 and within
// ULP noise of the serial result.
func TestMaterializePDeterministic(t *testing.T) {
	ds := randomData(9973, 5, 4, 2) // odd n: exercises the 1/n scale
	vars := []Var{{Attr: 1}, {Attr: 4}}
	serial := Materialize(ds, vars)
	base := MaterializeP(ds, vars, 2)
	for _, par := range []int{0, 3, 4, 16} {
		got := MaterializeP(ds, vars, par)
		for i := range base.P {
			if got.P[i] != base.P[i] {
				t.Fatalf("parallelism %d diverges from parallelism 2 at cell %d", par, i)
			}
		}
	}
	for i := range serial.P {
		if math.Abs(serial.P[i]-base.P[i]) > 1e-12 {
			t.Fatalf("parallel cell %d = %g, serial %g", i, base.P[i], serial.P[i])
		}
	}
	if s := base.Sum(); math.Abs(s-1) > 1e-9 {
		t.Fatalf("parallel materialization sums to %g", s)
	}
}

// TestMaterializePSerialPathIsLegacy checks parallelism 1 routes through
// the original serial accumulation byte for byte.
func TestMaterializePSerialPathIsLegacy(t *testing.T) {
	ds := randomData(5000, 3, 5, 3)
	vars := []Var{{Attr: 0}, {Attr: 1}, {Attr: 2}}
	want := Materialize(ds, vars)
	got := MaterializeP(ds, vars, 1)
	for i := range want.P {
		if got.P[i] != want.P[i] {
			t.Fatalf("cell %d = %g, want %g", i, got.P[i], want.P[i])
		}
	}
}

// TestMaterializePGeneralized checks hierarchy levels survive the
// parallel path.
func TestMaterializePGeneralized(t *testing.T) {
	h := dataset.NewCategorical("city", []string{"a", "b", "c", "d"})
	h.Hierarchy = dataset.NewHierarchy(4, []int{0, 0, 1, 1})
	attrs := []dataset.Attribute{h, dataset.NewCategorical("x", []string{"0", "1"})}
	ds := dataset.New(attrs)
	rng := rand.New(rand.NewSource(7))
	rec := make([]uint16, 2)
	for r := 0; r < 6000; r++ {
		rec[0], rec[1] = uint16(rng.Intn(4)), uint16(rng.Intn(2))
		ds.Append(rec)
	}
	vars := []Var{{Attr: 0, Level: 1}, {Attr: 1}}
	want := MaterializeCounts(ds, vars)
	got := MaterializeCountsP(ds, vars, 4)
	for i := range want.P {
		if got.P[i] != want.P[i] {
			t.Fatalf("cell %d = %g, want %g", i, got.P[i], want.P[i])
		}
	}
}
