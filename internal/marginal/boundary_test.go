package marginal

import (
	"fmt"
	"testing"

	"privbayes/internal/dataset"
)

// Boundary regression tests for the MaxParentConfigs overflow guard: a
// parent set landing exactly on the uint32 cap must be accepted, one
// configuration past it must be rejected, by both the overflow-safe
// ParentConfigs check and BuildParentIndex's panic guard. The factoring
// 2^32−1 = 65537 × 65535 needs a 65537-value attribute, which only a
// virtual (schema-only) dataset can carry — uint16 column storage tops
// out at 65536 codes — so the guard is probed on a 0-row virtual
// dataset, exactly the shape the out-of-core fit path feeds it.

func bigAttr(name string, size int) dataset.Attribute {
	labels := make([]string, size)
	for i := range labels {
		labels[i] = fmt.Sprintf("v%d", i)
	}
	return dataset.NewCategorical(name, labels)
}

func TestParentConfigsExactlyAtCap(t *testing.T) {
	// 65537 × 65535 = 2^32 − 1 = MaxParentConfigs exactly.
	ds := dataset.NewVirtual([]dataset.Attribute{
		bigAttr("a", 65537),
		bigAttr("b", 65535),
	}, 0)
	parents := []Var{{Attr: 0}, {Attr: 1}}

	size, ok := ParentConfigs(ds, parents)
	if !ok {
		t.Fatalf("ParentConfigs rejected a parent set exactly at the cap")
	}
	if int64(size) != int64(MaxParentConfigs) {
		t.Fatalf("ParentConfigs = %d, want %d", size, int64(MaxParentConfigs))
	}

	// BuildParentIndex must accept the same set without panicking.
	ix := BuildParentIndex(ds, parents, 1)
	if int64(ix.PiDim) != int64(MaxParentConfigs) {
		t.Fatalf("PiDim = %d, want %d", ix.PiDim, int64(MaxParentConfigs))
	}
	if ix.RowCodes() != nil {
		t.Fatalf("0-row index should have nil row codes")
	}
}

func TestParentConfigsOnePastCap(t *testing.T) {
	// 65536 × 65536 = 2^32 = MaxParentConfigs + 1.
	ds := dataset.NewVirtual([]dataset.Attribute{
		bigAttr("a", 65536),
		bigAttr("b", 65536),
	}, 0)
	parents := []Var{{Attr: 0}, {Attr: 1}}

	if size, ok := ParentConfigs(ds, parents); ok {
		t.Fatalf("ParentConfigs accepted %d configurations, one past the cap", size)
	}

	defer func() {
		if recover() == nil {
			t.Fatalf("BuildParentIndex accepted a parent set one past the cap")
		}
	}()
	BuildParentIndex(ds, parents, 1)
}

// TestParentConfigsOverflowWrap pins the overflow-safety of the check
// itself: a product that wraps int64 far past the cap must still be
// rejected, not wrap around to something small.
func TestParentConfigsOverflowWrap(t *testing.T) {
	attrs := make([]dataset.Attribute, 5)
	vars := make([]Var, 5)
	for i := range attrs {
		attrs[i] = bigAttr(fmt.Sprintf("a%d", i), 65536)
		vars[i] = Var{Attr: i}
	}
	ds := dataset.NewVirtual(attrs, 0)
	if size, ok := ParentConfigs(ds, vars); ok {
		t.Fatalf("ParentConfigs accepted a 2^80-configuration parent set (reported %d)", size)
	}
}
