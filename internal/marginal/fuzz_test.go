package marginal

import (
	"fmt"
	"math/rand"
	"testing"

	"privbayes/internal/dataset"
)

// FuzzColumnarCounts differentially fuzzes the two counting engines:
// for random datasets (row counts straddling mask-word boundaries,
// arities spanning every packing width) and random parent/child
// variable picks, the popcount kernel's counts must equal the legacy
// row-major walk's exactly — cell for cell, through MaterializeCounts,
// the fused CountChildren pass, and PiCounts. Wired into `make fuzz`.
func FuzzColumnarCounts(f *testing.F) {
	f.Add(int64(1), uint16(100), uint16(0x1234), uint8(2))
	f.Add(int64(2), uint16(64), uint16(0xffff), uint8(0))
	f.Add(int64(3), uint16(513), uint16(0x8001), uint8(5))
	f.Add(int64(4), uint16(1), uint16(0), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, arityBits uint16, pick uint8) {
		n := int(nRaw) % 1500
		rng := rand.New(rand.NewSource(seed))

		// 5 attributes, arity 2–5 from two bits each: spans 1-bit,
		// 2-bit, and byte-coded (arity 5) columns.
		const d = 5
		attrs := make([]dataset.Attribute, d)
		for a := 0; a < d; a++ {
			arity := 2 + int(arityBits>>(2*a))&3
			labels := make([]string, arity)
			for i := range labels {
				labels[i] = fmt.Sprintf("v%d", i)
			}
			attrs[a] = dataset.NewCategorical(fmt.Sprintf("a%d", a), labels)
		}
		ds := dataset.NewWithCapacity(attrs, n)
		rec := make([]uint16, d)
		for r := 0; r < n; r++ {
			for c := 0; c < d; c++ {
				rec[c] = uint16(rng.Intn(attrs[c].Size()))
			}
			ds.Append(rec)
		}

		// Random 1–3-way variable pick (repeats allowed).
		k := 1 + int(pick)%3
		vars := make([]Var, k)
		for i := range vars {
			vars[i] = Var{Attr: rng.Intn(d)}
		}

		fast := MaterializeCounts(ds, vars)
		var ref *Table
		withRowMajor(func() { ref = MaterializeCounts(ds, vars) })
		for i := range ref.P {
			if fast.P[i] != ref.P[i] {
				t.Fatalf("n=%d vars=%v cell %d: popcount %v, row-major %v",
					n, vars, i, fast.P[i], ref.P[i])
			}
		}

		parents, child := vars[:k-1], vars[k-1]
		fastJ := BuildParentIndex(ds, parents, 1).CountChildren(ds, []Var{child}, 1)[0]
		var refIx *ParentIndex
		var refJ *Table
		withRowMajor(func() {
			refIx = BuildParentIndex(ds, parents, 1)
			refJ = refIx.CountChildren(ds, []Var{child}, 1)[0]
		})
		for i := range refJ.P {
			if fastJ.P[i] != refJ.P[i] {
				t.Fatalf("n=%d parents=%v child=%v cell %d: popcount %v, row-major %v",
					n, parents, child, i, fastJ.P[i], refJ.P[i])
			}
		}

		fastPi := BuildParentIndex(ds, parents, 1).PiCounts()
		refPi := refIx.PiCounts()
		for i := range refPi {
			if fastPi[i] != refPi[i] {
				t.Fatalf("n=%d parents=%v config %d: popcount %v, row-major %v",
					n, parents, i, fastPi[i], refPi[i])
			}
		}
	})
}
