package marginal

// This file implements the shared-scan counting engine behind batch
// candidate scoring (Algorithm 2's dominant cost). Within one greedy
// iteration the C(|V|,k)·(d−|V|) exponential-mechanism candidates share
// only C(|V|,k) distinct parent sets, and those parent sets recur across
// iterations; materializing each candidate's joint with its own O(n·(k+1))
// row scan therefore repeats almost all of the work. A ParentIndex pays
// the O(n·k) parent-configuration scan once per parent set, after which
// every child's joint costs a single fused O(n) pass — and an IndexCache
// keyed by the parent set makes the index reusable across children,
// greedy iterations, and the final conditional materialization.

import (
	"fmt"
	"math"
	"sync"

	"privbayes/internal/dataset"
	"privbayes/internal/parallel"
)

// MaxParentConfigs bounds the flat parent-configuration space a
// ParentIndex can encode in its uint32 codes. Parent sets beyond it —
// unreachable under θ-usefulness domain caps — must fall back to
// per-candidate materialization.
const MaxParentConfigs = math.MaxUint32

// ParentIndex encodes each dataset row's parent-set configuration as a
// flat code: RowCodes()[r] is the row-major index of row r's
// (generalized) parent values, exactly the cell offset a [parents...]
// count table would use. One index drives joint counting for any number
// of child attributes via CountChildren, replacing per-candidate
// O(n·(k+1)) scans with a single fused O(n) pass per child — and when
// the parent set and child are bit-packed low-arity columns,
// CountChildren skips the row codes entirely and counts by bitmask
// intersection + popcount (see popcount.go), so the O(n·k) code build
// is lazy: it is only ever paid by parent sets that need the row path.
type ParentIndex struct {
	// Vars are the parent variables in materialization order. The order
	// is part of the index identity: joint tables are laid out
	// [Vars..., child], matching what Materialize would produce for the
	// same ordered variable list.
	Vars []Var
	// Dims are the per-parent domain sizes (at their taxonomy levels).
	Dims []int
	// PiDim is the number of parent configurations (product of Dims).
	PiDim int

	ds  *dataset.Dataset
	par int // parallelism for the lazy code build
	n   int

	codesOnce sync.Once
	codes     []uint32

	mu       sync.Mutex
	piCounts []float64 // exact per-configuration counts; derived lazily
	hpi      float64   // cached H(Π); valid once hpiSet
	hpiSet   bool
}

// BuildParentIndex validates the parent-configuration space and returns
// the index. The O(n·k) row-code scan — taxonomy generalization applied
// through the usual lookup tables — is deferred to the first RowCodes
// call, so popcount-eligible parent sets never pay it. Panics if the
// configuration space exceeds MaxParentConfigs; callers guard with
// ParentConfigs first.
func BuildParentIndex(ds *dataset.Dataset, parents []Var, parallelism int) *ParentIndex {
	ix := &ParentIndex{
		Vars: append([]Var(nil), parents...),
		Dims: make([]int, len(parents)),
		ds:   ds,
		par:  parallelism,
		n:    ds.N(),
	}
	size := 1
	for i, v := range parents {
		ix.Dims[i] = v.Size(ds)
		size *= ix.Dims[i]
		if size <= 0 || int64(size) > MaxParentConfigs {
			panic(fmt.Sprintf("marginal: parent set %v has more than %d configurations", parents, MaxParentConfigs))
		}
	}
	ix.PiDim = size
	return ix
}

// RowCodes returns the per-row parent-configuration codes, building
// them on first use. It is nil when the parent set is empty (every row
// is configuration 0) or the dataset has no rows. Row codes are written
// by row position, so the result is identical at every parallelism
// (<= 0 selects GOMAXPROCS).
func (ix *ParentIndex) RowCodes() []uint32 {
	if len(ix.Vars) == 0 || ix.n == 0 {
		return nil
	}
	ix.codesOnce.Do(ix.buildCodes)
	return ix.codes
}

func (ix *ParentIndex) buildCodes() {
	t := &Table{Vars: ix.Vars, Dims: ix.Dims}
	c := newCounter(t, ix.ds)
	ix.codes = make([]uint32, ix.n)
	workers := parallel.Workers(ix.par)
	parallel.ForChunks(workers, ix.n, materializeChunk, func(_, lo, hi int) {
		// Parent-outer accumulation: codes[r] = Σ stride_i·code_i(r).
		// Each pass is a tight two-array loop (hoisted column, stride and
		// lookup), and the chunk keeps the codes slice L1-resident.
		codes := ix.codes[lo:hi]
		buf := getU16(hi - lo)
		for i := range c.strides {
			col := c.cols[i].DecodeRange(lo, hi, buf)
			stride := uint32(c.strides[i])
			if g := c.gen[i]; g != nil {
				for r, v := range col {
					codes[r] += uint32(g[v]) * stride
				}
			} else {
				for r, v := range col {
					codes[r] += uint32(v) * stride
				}
			}
		}
		putU16(buf)
	})
	c.release()
}

// ParentConfigs returns the size of the flat configuration space for a
// parent set, or false when it exceeds MaxParentConfigs (overflow-safe).
func ParentConfigs(ds *dataset.Dataset, parents []Var) (int, bool) {
	size := int64(1)
	for _, v := range parents {
		size *= int64(v.Size(ds))
		if size <= 0 || size > MaxParentConfigs {
			return 0, false
		}
	}
	return int(size), true
}

// N returns the number of indexed rows.
func (ix *ParentIndex) N() int { return ix.n }

// CountChildren materializes the exact joint count tables over
// [ix.Vars..., child] for every child. Popcount-eligible children —
// bit-packed low-arity parents and child, small joint — are counted by
// bitmask intersection + popcount without ever building row codes; the
// rest share a single fused pass over the rows, each row contributing
// one increment per child at offset RowCodes()[r]·|dom(child)| +
// code(child). Both paths produce integer counts, so per-worker
// partials merge exactly and the result is bit-identical to
// MaterializeCounts for each child, at every parallelism.
func (ix *ParentIndex) CountChildren(ds *dataset.Dataset, children []Var, parallelism int) []*Table {
	m := len(children)
	out := make([]*Table, m)
	vars := make([][]Var, m)
	for j, ch := range children {
		vars[j] = append(append([]Var(nil), ix.Vars...), ch)
		out[j] = NewTable(ds, vars[j])
	}
	if m == 0 {
		return out
	}
	xdim := make([]int, m)
	for j, ch := range children {
		xdim[j] = ch.Size(ds)
	}
	if ix.n == 0 {
		return out
	}

	// Popcount fast path for eligible children; the rest fall through
	// to the fused row walk.
	rest := make([]int, 0, m)
	if pk, ok := newPopKernel(ds, ix.Vars); ok {
		popChildren := make([]Var, 0, m)
		popDsts := make([][]float64, 0, m)
		for j, ch := range children {
			if pk.childOK(ch) {
				popChildren = append(popChildren, ch)
				popDsts = append(popDsts, out[j].P)
			} else {
				rest = append(rest, j)
			}
		}
		pk.countChildren(popChildren, popDsts)
		pk.release()
	} else {
		for j := range children {
			rest = append(rest, j)
		}
	}

	if len(rest) > 0 {
		ix.countChildrenRows(ds, children, rest, xdim, out, parallelism)
	}

	// Derive the Π marginal by projection from the first child joint —
	// integer sums are exact, so any child (from either path) yields the
	// same counts and no extra row scan is ever needed.
	ix.mu.Lock()
	if ix.piCounts == nil {
		ix.piCounts = projectPiCounts(out[0].P, xdim[0], ix.PiDim)
	}
	ix.mu.Unlock()
	return out
}

// countChildrenRows runs the fused row walk for the children out[j],
// j ∈ rest, that the popcount kernel did not take.
func (ix *ParentIndex) countChildrenRows(ds *dataset.Dataset, children []Var, rest []int, xdim []int, out []*Table, parallelism int) {
	// Per-child column, generalization lookup and domain size for the
	// fused inner loop.
	mr := len(rest)
	cols := make([]*dataset.Column, mr)
	gens := make([][]int, mr)
	rxd := make([]int, mr)
	outP := make([][]float64, mr)
	for i, j := range rest {
		ch := children[j]
		cols[i] = ds.Col(ch.Attr)
		rxd[i] = xdim[j]
		outP[i] = out[j].P
		if ch.Level > 0 {
			a := ds.Attr(ch.Attr)
			g := getInts(a.Size())
			for code := range g {
				g[code] = a.Generalize(ch.Level, code)
			}
			gens[i] = g
		}
	}
	defer func() {
		for _, g := range gens {
			if g != nil {
				putInts(g)
			}
		}
	}()

	codes := ix.RowCodes()
	workers := parallel.Workers(parallelism)
	nc := parallel.Chunks(ix.n, materializeChunk)
	if workers <= 1 || nc <= 1 {
		// Chunked even when serial: each chunk's parent codes stay
		// L1-resident across the per-child passes.
		for lo := 0; lo < ix.n; lo += materializeChunk {
			hi := min(lo+materializeChunk, ix.n)
			countChildrenRange(lo, hi, codes, cols, gens, rxd, outP)
		}
	} else {
		scratch := make([][][]float64, workers)
		parallel.ForChunks(workers, ix.n, materializeChunk, func(worker, lo, hi int) {
			if scratch[worker] == nil {
				s := make([][]float64, mr)
				for i := range s {
					s[i] = getFloats(len(outP[i]))
				}
				scratch[worker] = s
			}
			countChildrenRange(lo, hi, codes, cols, gens, rxd, scratch[worker])
		})
		for _, s := range scratch {
			if s == nil {
				continue
			}
			for i := range s {
				dst := outP[i]
				for c, v := range s[i] {
					dst[c] += v
				}
				putFloats(s[i])
			}
		}
	}
}

// countChildrenRange is the fused counting kernel: within one row chunk
// the parent codes stay L1-resident while each child is counted by a
// tight two-array loop with hoisted column, lookup and destination — one
// increment per (row, child), never re-reading the parent columns.
// Decode scratch is per call, so concurrent chunk calls are race-free.
func countChildrenRange(lo, hi int, allCodes []uint32, cols []*dataset.Column, gens [][]int, xdim []int, dst [][]float64) {
	var codes []uint32
	if allCodes != nil {
		codes = allCodes[lo:hi]
	}
	buf := getU16(hi - lo)
	for j := range cols {
		col := cols[j].DecodeRange(lo, hi, buf)
		d := dst[j]
		xd := xdim[j]
		switch {
		case codes == nil && gens[j] == nil:
			for _, v := range col {
				d[v]++
			}
		case codes == nil:
			g := gens[j]
			for _, v := range col {
				d[g[v]]++
			}
		case gens[j] == nil:
			for r, v := range col {
				d[int(codes[r])*xd+int(v)]++
			}
		default:
			g := gens[j]
			for r, v := range col {
				d[int(codes[r])*xd+g[v]]++
			}
		}
	}
	putU16(buf)
}

// projectPiCounts sums a [Π..., X] count table over its child dimension.
func projectPiCounts(joint []float64, xdim, piDim int) []float64 {
	pi := make([]float64, piDim)
	for p := 0; p < piDim; p++ {
		var s float64
		for x := 0; x < xdim; x++ {
			s += joint[p*xdim+x]
		}
		pi[p] = s
	}
	return pi
}

// PiCounts returns the exact per-configuration counts of the parent
// marginal when no child joint has provided them by projection yet —
// via the popcount kernel when the parent set is eligible, else from
// the row codes. The caller must not mutate the result.
func (ix *ParentIndex) PiCounts() []float64 {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.piCounts == nil {
		counts := make([]float64, ix.PiDim)
		if len(ix.Vars) == 0 || ix.n == 0 {
			counts[0] = float64(ix.n)
		} else if t, ok := popcountCounts(ix.ds, ix.Vars); ok {
			copy(counts, t.P)
		} else {
			for _, c := range ix.RowCodes() {
				counts[c]++
			}
		}
		ix.piCounts = counts
	}
	return ix.piCounts
}

// PiTable returns the parent-set count marginal as a Table (a copy).
func (ix *ParentIndex) PiTable() *Table {
	return &Table{
		Vars: append([]Var(nil), ix.Vars...),
		Dims: append([]int(nil), ix.Dims...),
		P:    append([]float64(nil), ix.PiCounts()...),
	}
}

// Entropy returns H(Π) in bits, computed from the exact parent counts
// and cached on the index — so the per-parent-set entropy is paid once
// across all children and greedy iterations that share the parent set.
// Note the bit-identity contract of batch scoring prevents substituting
// this shared value inside MI/R score evaluation (each candidate's
// per-joint float accumulation order must be preserved); it serves
// entropy consumers such as diagnostics and model-quality measures.
func (ix *ParentIndex) Entropy() float64 {
	counts := ix.PiCounts()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if !ix.hpiSet {
		var h float64
		n := float64(ix.n)
		if n > 0 {
			for _, c := range counts {
				if c > 0 {
					p := c / n
					h -= p * math.Log2(p)
				}
			}
		}
		ix.hpi, ix.hpiSet = h, true
	}
	return ix.hpi
}

// Ladder reproduces, from exact integer counts, the cell values the
// serial Materialize produces by repeatedly accumulating +1/n: cum[m] is
// the float64 result of m successive additions of 1/n starting from 0,
// which is exactly the partial-sum sequence of a cell hit m times. It is
// the piece that lets the shared-scan engine return bit-identical
// probabilities to the legacy per-candidate scans without re-walking the
// rows. Growth is lazy and synchronized; slices returned by UpTo are
// safe for concurrent reads (entries are written once, before exposure).
type Ladder struct {
	mu  sync.Mutex
	inv float64
	cum []float64
}

// NewLadder creates a ladder for datasets of n rows (n > 0).
func NewLadder(n int) *Ladder {
	if n <= 0 {
		panic("marginal: Ladder requires n > 0")
	}
	return &Ladder{inv: 1 / float64(n), cum: make([]float64, 1, 64)}
}

// UpTo returns the cumulative table grown to at least m+1 entries, so
// result[c] is valid for any count c <= m.
func (l *Ladder) UpTo(m int) []float64 {
	l.mu.Lock()
	for len(l.cum) <= m {
		l.cum = append(l.cum, l.cum[len(l.cum)-1]+l.inv)
	}
	c := l.cum
	l.mu.Unlock()
	return c
}

// Apply rescales an exact count table into the probability table the
// serial Materialize would have produced, bit for bit.
func (l *Ladder) Apply(t *Table) {
	maxC := 0
	for _, p := range t.P {
		if int(p) > maxC {
			maxC = int(p)
		}
	}
	cum := l.UpTo(maxC)
	for i, p := range t.P {
		t.P[i] = cum[int(p)]
	}
}

// IndexCache is a bounded, concurrency-safe LRU of ParentIndex values
// keyed by the ordered parent-variable list. Greedy network learning
// hits it across children within an iteration and across iterations
// (candidate parent sets recur as V grows), and the final conditional
// materialization reuses the indexes of the chosen pairs. Entries are
// pure functions of the dataset, so cache hits can never change results
// — eviction only costs a rebuild.
type IndexCache struct {
	mu     sync.Mutex
	lru    *VarLRU[*ParentIndex]
	ladder *Ladder
	hits   int64
	misses int64
}

// DefaultIndexCacheCap bounds an IndexCache when the caller does not
// choose a capacity. Each cached index costs ~4 bytes per dataset row.
const DefaultIndexCacheCap = 64

// NewIndexCache creates a cache holding at most capacity indexes
// (capacity <= 0 selects DefaultIndexCacheCap).
func NewIndexCache(capacity int) *IndexCache {
	if capacity <= 0 {
		capacity = DefaultIndexCacheCap
	}
	return &IndexCache{lru: NewVarLRU[*ParentIndex](capacity)}
}

// VarsKey hashes an ordered variable list into the compact uint64 keys
// the scoring memo and index cache use (FNV-1a over attr/level words).
// Callers must verify equality on the stored vars — the cache structures
// here do — since 64-bit hashes can in principle collide.
func VarsKey(vars []Var) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, v := range vars {
		h ^= uint64(uint32(v.Attr))
		h *= prime
		h ^= uint64(uint32(v.Level))
		h *= prime
	}
	return h
}

// Get returns the index for the ordered parent list, building it with
// the given parallelism on a miss. Concurrent misses for the same key
// may build twice; the indexes are identical, and the first inserted
// entry wins, so results are unaffected.
func (c *IndexCache) Get(ds *dataset.Dataset, parents []Var, parallelism int) *ParentIndex {
	key := VarsKey(parents)
	c.mu.Lock()
	if ix, ok := c.lru.Get(key, parents); ok {
		c.hits++
		c.mu.Unlock()
		return ix
	}
	c.misses++
	c.mu.Unlock()

	ix := BuildParentIndex(ds, parents, parallelism)

	c.mu.Lock()
	defer c.mu.Unlock()
	// A raced builder may have inserted first; share its (identical) index.
	return c.lru.PutIfAbsent(key, append([]Var(nil), parents...), ix)
}

// Ladder returns the cache's shared repeated-addition ladder for n-row
// datasets, creating it on first use. All users of one cache normalize
// against one ladder, so its lazily grown prefix is shared too.
func (c *IndexCache) Ladder(n int) *Ladder {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ladder == nil {
		c.ladder = NewLadder(n)
	}
	return c.ladder
}

// Len reports the number of cached indexes.
func (c *IndexCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats reports cache hits and misses since creation.
func (c *IndexCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
