package accountant

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"privbayes/internal/faultfs"
	"privbayes/internal/wal"
)

// walRecord is one ledger mutation (or checkpoint) as persisted in the
// write-ahead log. Mutation records carry the dataset's POST-state
// (Spent/Budget after the mutation), so replay is a pure assignment —
// insensitive to default-budget flag changes between runs and immune to
// clamping/rounding drift.
type walRecord struct {
	Op      string  `json:"op"`
	Dataset string  `json:"dataset,omitempty"`
	Eps     float64 `json:"eps,omitempty"`
	Key     string  `json:"key,omitempty"`
	ModelID string  `json:"model_id,omitempty"`
	Spent   float64 `json:"spent,omitempty"`
	Budget  float64 `json:"budget,omitempty"`

	// Checkpoint payload: the whole ledger state.
	Version  int                `json:"version,omitempty"`
	Datasets map[string]Entry   `json:"datasets,omitempty"`
	Keys     map[string]KeyInfo `json:"keys,omitempty"`
}

const (
	opCharge     = "charge"
	opRefund     = "refund"
	opBudget     = "budget"
	opCheckpoint = "checkpoint"
)

// walVersion guards the checkpoint format inside WAL records.
const walVersion = 2

// DefaultCompactEvery is the record count that triggers automatic log
// compaction into a checkpoint.
const DefaultCompactEvery = 1024

// Options configures OpenWAL.
type Options struct {
	// FS is the filesystem seam; nil selects the real filesystem.
	FS faultfs.FS
	// Fsck truncates the ledger at the first corrupt record instead of
	// refusing to open — operator-driven repair (privbayesd
	// -ledger-fsck). Records from the damage onward are lost.
	Fsck bool
	// CompactEvery overrides DefaultCompactEvery; <= 0 selects it.
	CompactEvery int
	// Logf, when set, receives operational notes (recovery truncation,
	// compaction failures).
	Logf func(format string, args ...any)
}

// OpenWAL opens (or creates) a WAL-backed ledger at path. Existing
// legacy JSON ledgers are migrated in place atomically, so pointing a
// new daemon at an old ledger file keeps every recorded ε spend. A
// corrupt log fails with a *CorruptError matching ErrLedgerCorrupt
// unless opts.Fsck sanctions truncating at the damage.
func OpenWAL(path string, defaultBudget float64, opts Options) (*Ledger, error) {
	if !(defaultBudget > 0) {
		return nil, fmt.Errorf("accountant: default budget must be positive, got %g", defaultBudget)
	}
	fs := faultfs.Or(opts.FS)
	l := &Ledger{
		path:          path,
		fs:            fs,
		defaultBudget: defaultBudget,
		datasets:      map[string]Entry{},
		keys:          map[string]KeyInfo{},
		compactEvery:  opts.CompactEvery,
		logf:          opts.Logf,
	}
	if l.compactEvery <= 0 {
		l.compactEvery = DefaultCompactEvery
	}

	if raw, err := fs.ReadFile(path); err == nil && looksLegacyJSON(raw) {
		if err := migrateLegacy(fs, path, raw, defaultBudget); err != nil {
			return nil, err
		}
		l.notef("migrated legacy JSON ledger %s to WAL format", path)
	}

	log, err := wal.Open(path, wal.Options{FS: fs, Fsck: opts.Fsck}, l.applyRecord)
	if err != nil {
		var ce *wal.CorruptError
		if errors.As(err, &ce) {
			return nil, &CorruptError{Path: ce.Path, Offset: ce.Offset, Reason: ce.Reason}
		}
		return nil, err
	}
	if n := log.Truncated(); n > 0 {
		l.notef("ledger %s: dropped %d torn/corrupt byte(s) during recovery", path, n)
	}
	l.log = log
	l.maybeCompactLocked() // a long log from a previous run compacts now
	return l, nil
}

// notef logs when a logger was configured.
func (l *Ledger) notef(format string, args ...any) {
	if l.logf != nil {
		l.logf(format, args...)
	}
}

// looksLegacyJSON reports whether raw is (the start of) a legacy JSON
// ledger document rather than a WAL.
func looksLegacyJSON(raw []byte) bool {
	for _, b := range raw {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		case '{':
			return true
		default:
			return false
		}
	}
	return false
}

// migrateLegacy converts a legacy JSON ledger into a fresh WAL holding
// one checkpoint record, atomically: the new log is built beside the
// old file and renamed over it, so a crash at any point leaves either
// the intact legacy file (migration simply reruns) or the complete WAL.
func migrateLegacy(fs faultfs.FS, path string, raw []byte, defaultBudget float64) error {
	entries, err := parseLegacy(path, raw)
	if err != nil {
		return err
	}
	tmp := path + ".migrate"
	// A previous crashed migration may have left a partial temp log.
	if err := fs.Remove(tmp); err != nil && !isNotExist(err) {
		return fmt.Errorf("accountant: clear stale migration file: %w", err)
	}
	log, err := wal.Open(tmp, wal.Options{FS: fs}, func(int64, []byte) error {
		return errors.New("accountant: fresh migration log is not empty")
	})
	if err != nil {
		return fmt.Errorf("accountant: migrate ledger: %w", err)
	}
	payload, err := json.Marshal(walRecord{Op: opCheckpoint, Version: walVersion,
		Datasets: entries, Keys: map[string]KeyInfo{}})
	if err != nil {
		log.Close()
		return fmt.Errorf("accountant: migrate ledger: %w", err)
	}
	if err := log.Append(payload); err != nil {
		log.Close()
		return fmt.Errorf("accountant: migrate ledger: %w", err)
	}
	if err := log.Close(); err != nil {
		return fmt.Errorf("accountant: migrate ledger: %w", err)
	}
	if err := fs.Rename(tmp, path); err != nil {
		return fmt.Errorf("accountant: migrate ledger: %w", err)
	}
	if err := fs.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("accountant: migrate ledger: %w", err)
	}
	return nil
}

func isNotExist(err error) bool { return errors.Is(err, os.ErrNotExist) }

// applyRecord replays one WAL record into the in-memory state. Any
// undecodable or semantically invalid record is corruption: its bytes
// passed the checksum, so the writer and reader disagree — fail closed.
func (l *Ledger) applyRecord(offset int64, payload []byte) error {
	var rec walRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return &CorruptError{Path: l.path, Offset: offset,
			Reason: fmt.Sprintf("undecodable record: %v", err)}
	}
	bad := func(reason string) error {
		return &CorruptError{Path: l.path, Offset: offset, Reason: reason}
	}
	switch rec.Op {
	case opCharge, opRefund, opBudget:
		if rec.Dataset == "" {
			return bad(rec.Op + " record without dataset")
		}
		if rec.Spent < 0 || math.IsNaN(rec.Spent) || !(rec.Budget > 0) || math.IsInf(rec.Budget, 1) {
			return bad(fmt.Sprintf("%s record with invalid state (spent %g, budget %g)", rec.Op, rec.Spent, rec.Budget))
		}
		l.datasets[rec.Dataset] = Entry{Spent: rec.Spent, Budget: rec.Budget}
		if rec.Key != "" {
			switch rec.Op {
			case opCharge:
				l.addKeyLocked(rec.Key, KeyInfo{Dataset: rec.Dataset, Eps: rec.Eps, ModelID: rec.ModelID})
			case opRefund:
				l.dropKeyLocked(rec.Key)
			}
		}
	case opCheckpoint:
		if rec.Version != walVersion {
			return bad(fmt.Sprintf("checkpoint version %d (want %d)", rec.Version, walVersion))
		}
		l.datasets = map[string]Entry{}
		l.keys = map[string]KeyInfo{}
		l.keyOrder = l.keyOrder[:0]
		for id, e := range rec.Datasets {
			if e.Spent < 0 || !(e.Budget > 0) || math.IsNaN(e.Spent) {
				return bad(fmt.Sprintf("checkpoint dataset %q has invalid entry (spent %g, budget %g)", id, e.Spent, e.Budget))
			}
			l.datasets[id] = e
		}
		for k, info := range rec.Keys {
			l.addKeyLocked(k, info)
		}
	default:
		return bad(fmt.Sprintf("unknown record op %q", rec.Op))
	}
	return nil
}

// maybeCompactLocked folds the log into one checkpoint record once it
// holds compactEvery records. Failure is logged, never fatal: the
// triggering mutation is already durable in the uncompacted log, and
// compaction retries at the next threshold crossing. Callers hold l.mu
// (or are inside OpenWAL before the ledger is shared).
func (l *Ledger) maybeCompactLocked() {
	if l.log == nil || l.log.Records() < l.compactEvery {
		return
	}
	payload, err := json.Marshal(walRecord{Op: opCheckpoint, Version: walVersion,
		Datasets: l.datasets, Keys: l.keys})
	if err != nil {
		l.notef("ledger compaction: encode checkpoint: %v", err)
		return
	}
	if err := l.log.Compact(payload); err != nil {
		l.notef("ledger compaction: %v", err)
	}
}
