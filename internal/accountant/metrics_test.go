package accountant

import (
	"errors"
	"path/filepath"
	"testing"

	"privbayes/internal/telemetry"
)

// TestLedgerMetrics drives every instrumented ledger path against a
// WAL-backed ledger and checks the registry reflects it: ε gauges and
// charge/refund counters per dataset, replay and rejection counters,
// and the WAL append/fsync families.
func TestLedgerMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	path := filepath.Join(t.TempDir(), "ledger.wal")
	l, err := OpenWAL(path, 1.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Instrument(m)

	if err := l.Charge("ds", 0.25); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.ChargeIdempotent("ds", 0.25, "k1", "model-a"); err != nil {
		t.Fatal(err)
	}
	// Replay: same key, no new spend.
	if dup, _, err := l.ChargeIdempotent("ds", 0.25, "k1", "model-a"); err != nil || !dup {
		t.Fatalf("replay = (%v, %v), want duplicate", dup, err)
	}
	// Rejection: over budget.
	if err := l.Charge("ds", 0.9); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("overcharge err = %v, want ErrBudgetExceeded", err)
	}
	if err := l.Refund("ds", 0.25); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	dsOf := func(name string) float64 {
		children, ok := snap[name].(map[string]any)
		if !ok {
			t.Fatalf("metric %s missing or unlabeled: %#v", name, snap[name])
		}
		v, _ := children["ds"].(float64)
		return v
	}
	if got := dsOf("privbayes_ledger_epsilon_spent"); got != 0.25 {
		t.Fatalf("epsilon_spent = %g, want 0.25", got)
	}
	if got := dsOf("privbayes_ledger_epsilon_budget"); got != 1.0 {
		t.Fatalf("epsilon_budget = %g, want 1", got)
	}
	if got := dsOf("privbayes_ledger_epsilon_charged_total"); got != 0.5 {
		t.Fatalf("epsilon_charged_total = %g, want 0.5", got)
	}
	if got := dsOf("privbayes_ledger_epsilon_refunded_total"); got != 0.25 {
		t.Fatalf("epsilon_refunded_total = %g, want 0.25", got)
	}
	if got := snap["privbayes_ledger_idempotent_replays_total"]; got != 1.0 {
		t.Fatalf("replays = %v, want 1", got)
	}
	if got := snap["privbayes_ledger_charges_rejected_total"]; got != 1.0 {
		t.Fatalf("rejected = %v, want 1", got)
	}
	// Three committed mutations (charge, idempotent charge, refund) each
	// appended one fsync'd WAL record.
	if got := snap["privbayes_wal_appends_total"]; got != 3.0 {
		t.Fatalf("wal_appends_total = %v, want 3", got)
	}
	if got, _ := snap["privbayes_wal_size_bytes"].(float64); got <= 0 {
		t.Fatalf("wal_size_bytes = %v, want > 0", got)
	}
	fsync, ok := snap["privbayes_wal_fsync_duration_seconds"].(map[string]any)
	if !ok || fsync["count"].(uint64) != 3 {
		t.Fatalf("wal_fsync_duration_seconds = %#v, want count 3", snap["privbayes_wal_fsync_duration_seconds"])
	}
}

// TestInstrumentSeedsRecoveredState proves gauges are seeded from state
// replayed out of the WAL, so a scrape right after restart reports the
// spend recorded before the crash.
func TestInstrumentSeedsRecoveredState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.wal")
	l, err := OpenWAL(path, 2.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Charge("ds", 0.75); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenWAL(path, 2.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	reg := telemetry.NewRegistry()
	l2.Instrument(NewMetrics(reg))
	snap := reg.Snapshot()
	children := snap["privbayes_ledger_epsilon_spent"].(map[string]any)
	if got := children["ds"]; got != 0.75 {
		t.Fatalf("recovered epsilon_spent = %v, want 0.75", got)
	}
	if got := l2.RecoveredTruncation(); got != 0 {
		t.Fatalf("RecoveredTruncation after clean open = %d, want 0", got)
	}
}

// TestNilMetricsSafe pins that an uninstrumented ledger (nil Metrics)
// takes every path without panicking.
func TestNilMetricsSafe(t *testing.T) {
	l := New(1.0)
	l.Instrument(nil)
	if err := l.Charge("ds", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := l.Charge("ds", 0.9); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v", err)
	}
	if err := l.Refund("ds", 0.5); err != nil {
		t.Fatal(err)
	}
	if NewMetrics(nil) != nil {
		t.Fatal("NewMetrics(nil) should return nil")
	}
}
