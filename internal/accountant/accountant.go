// Package accountant tracks cumulative differential-privacy spending
// per dataset across fits. Where internal/dp's Accountant budgets one
// PrivBayes run (ε = ε₁ + ε₂ inside a single Fit), this ledger budgets
// a *dataset* across its lifetime: every model the curator fits against
// dataset D composes sequentially, so the serving daemon must refuse a
// fit whose ε would push D's cumulative spend past its budget.
//
// Durability comes in two grades. OpenWAL (the serving default) commits
// every mutation through an append-only, checksummed, fsync'd
// write-ahead log (internal/wal) before acknowledging it, so a crash at
// any instant — kill -9 mid-append included — can never lose an
// acknowledged charge nor double-spend ε on recovery; the log compacts
// itself into checkpoints as it grows, and charges may carry an
// idempotency key so a retried fit after an ambiguous failure charges
// exactly once even across a crash and restart. Open (legacy) persists
// the whole ledger as a JSON document via atomic rename with file and
// directory fsync; OpenWAL migrates such files in place.
package accountant

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"sync"

	"privbayes/internal/faultfs"
	"privbayes/internal/wal"
)

// ErrBudgetExceeded tags every charge rejected by a ledger; match with
// errors.Is. The concrete error is a *BudgetError carrying the numbers.
var ErrBudgetExceeded = errors.New("accountant: privacy budget exceeded")

// ErrPersist tags failures to make a ledger mutation durable (disk
// full, permissions). These are server-side faults, not caller errors.
var ErrPersist = errors.New("accountant: ledger persistence failed")

// ErrLedgerCorrupt tags recovery failures where the ledger file exists
// but cannot be trusted; match with errors.Is. The concrete error is a
// *CorruptError carrying the byte offset of the damage. The daemon must
// refuse to serve on this error — guessing at ε spend fails open.
var ErrLedgerCorrupt = errors.New("accountant: ledger corrupt")

// ErrIdempotencyMismatch is returned when an idempotency key is reused
// with a different dataset or ε than the charge it originally named.
var ErrIdempotencyMismatch = errors.New("accountant: idempotency key reused with different parameters")

// CorruptError reports ledger damage recovery refused to repair
// silently. Opening with Options.Fsck truncates the log at Offset
// instead, sacrificing records from the damage onward.
type CorruptError struct {
	Path   string
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("accountant: ledger %s corrupt at byte %d: %s", e.Path, e.Offset, e.Reason)
}

// Is makes errors.Is(err, ErrLedgerCorrupt) match.
func (e *CorruptError) Is(target error) bool { return target == ErrLedgerCorrupt }

// BudgetError reports a rejected charge.
type BudgetError struct {
	Dataset   string
	Requested float64
	Spent     float64
	Budget    float64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("accountant: dataset %q: spending ε=%g would exceed budget (spent %g of %g)",
		e.Dataset, e.Requested, e.Spent, e.Budget)
}

// Is makes errors.Is(err, ErrBudgetExceeded) match.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExceeded }

// Entry is one dataset's standing in the ledger.
type Entry struct {
	// Spent is the cumulative ε of every fit acknowledged so far.
	Spent float64 `json:"spent"`
	// Budget is the dataset's total ε allowance.
	Budget float64 `json:"budget"`
}

// Remaining returns the unused budget, never negative.
func (e Entry) Remaining() float64 {
	if r := e.Budget - e.Spent; r > 0 {
		return r
	}
	return 0
}

// ledgerVersion guards the persisted format.
const ledgerVersion = 1

// ledgerJSON is the on-disk document.
type ledgerJSON struct {
	Version       int              `json:"version"`
	DefaultBudget float64          `json:"default_budget"`
	Datasets      map[string]Entry `json:"datasets"`
}

// Ledger is a concurrency-safe sequential-composition ledger of ε per
// dataset id. All mutations are serialized and — when the ledger is
// file-backed — durably persisted before they are acknowledged, so a
// crash can lose an unacknowledged charge (conservative: the budget is
// never under-counted) but never an acknowledged one.
type Ledger struct {
	mu            sync.Mutex
	path          string // "" = in-memory only
	fs            faultfs.FS
	defaultBudget float64
	datasets      map[string]Entry

	// WAL mode (OpenWAL): every mutation appends one fsync'd record.
	log          *wal.Log
	compactEvery int
	logf         func(format string, args ...any)

	// keys maps idempotency keys to their recorded charge, surviving
	// compaction (checkpointed) and restarts (replayed). keyOrder is
	// FIFO so the map stays bounded at maxIdemKeys.
	keys     map[string]KeyInfo
	keyOrder []string

	// m instruments mutations; nil means uninstrumented (see Instrument).
	m *Metrics
}

// KeyInfo records the charge an idempotency key committed.
type KeyInfo struct {
	Dataset string  `json:"dataset"`
	Eps     float64 `json:"eps"`
	// ModelID is the model the charged fit was going to register, so a
	// post-crash retry can find (or recreate) it without re-charging.
	ModelID string `json:"model_id,omitempty"`
}

// maxIdemKeys bounds the idempotency-key history; the oldest keys are
// forgotten first, after which a very stale retry would charge again.
const maxIdemKeys = 4096

// New creates an in-memory ledger. Datasets not configured via
// SetBudget get defaultBudget, which must be positive.
func New(defaultBudget float64) *Ledger {
	if !(defaultBudget > 0) {
		panic(fmt.Sprintf("accountant: default budget must be positive, got %g", defaultBudget))
	}
	return &Ledger{defaultBudget: defaultBudget, fs: faultfs.OS,
		datasets: map[string]Entry{}, keys: map[string]KeyInfo{}}
}

// Open creates a legacy JSON file-backed ledger at path, loading
// existing state if the file exists. The file's recorded per-dataset
// budgets win over defaultBudget; defaultBudget applies to datasets
// first seen later. New deployments should prefer OpenWAL, which
// survives crashes mid-write; Open remains for the rewrite-everything
// JSON format.
func Open(path string, defaultBudget float64) (*Ledger, error) {
	if !(defaultBudget > 0) {
		return nil, fmt.Errorf("accountant: default budget must be positive, got %g", defaultBudget)
	}
	l := &Ledger{path: path, fs: faultfs.OS, defaultBudget: defaultBudget,
		datasets: map[string]Entry{}, keys: map[string]KeyInfo{}}
	raw, err := l.fs.ReadFile(path)
	if isNotExist(err) {
		return l, nil
	}
	if err != nil {
		return nil, fmt.Errorf("accountant: read ledger: %w", err)
	}
	entries, err := parseLegacy(path, raw)
	if err != nil {
		return nil, err
	}
	l.datasets = entries
	return l, nil
}

// parseLegacy decodes and validates the rewrite-everything JSON format.
func parseLegacy(path string, raw []byte) (map[string]Entry, error) {
	// DisallowUnknownFields makes a clobbered ledger fail closed: if
	// some other JSON document (say, a persisted model artifact) lands
	// on this path, refusing to start beats silently loading an empty
	// ledger and erasing every recorded ε spend.
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var doc ledgerJSON
	if err := dec.Decode(&doc); err != nil {
		return nil, &CorruptError{Path: path, Offset: dec.InputOffset(),
			Reason: fmt.Sprintf("parse legacy ledger: %v", err)}
	}
	if doc.Version != ledgerVersion {
		return nil, fmt.Errorf("accountant: ledger %s has unsupported version %d", path, doc.Version)
	}
	out := make(map[string]Entry, len(doc.Datasets))
	for id, e := range doc.Datasets {
		if e.Spent < 0 || !(e.Budget > 0) || math.IsNaN(e.Spent) {
			return nil, fmt.Errorf("accountant: ledger %s: dataset %q has invalid entry (spent %g, budget %g)", path, id, e.Spent, e.Budget)
		}
		out[id] = e
	}
	return out, nil
}

// entryLocked returns the dataset's entry, materializing the default
// budget for first contact. Callers hold l.mu.
func (l *Ledger) entryLocked(dataset string) Entry {
	if e, ok := l.datasets[dataset]; ok {
		return e
	}
	return Entry{Budget: l.defaultBudget}
}

// chargeTol absorbs floating-point dust when a budget is consumed in
// many equal shares (matches internal/dp's Accountant tolerance).
const chargeTol = 1e-9

// Charge atomically spends eps from the dataset's budget: the check,
// the ledger update, and the persistence to disk happen under one lock,
// so concurrent fits racing on one dataset can never jointly overspend.
// A rejected charge leaves the ledger untouched and returns a
// *BudgetError matching ErrBudgetExceeded.
func (l *Ledger) Charge(dataset string, eps float64) error {
	_, _, err := l.charge(dataset, eps, "", "")
	return err
}

// ChargeIdempotent is Charge with exactly-once semantics under retries:
// the first charge under key commits durably along with key and
// modelID; any later charge under the same key (same dataset and ε) is
// a no-op returning duplicate=true and the originally recorded model
// id — across process restarts too, because the key rides in the WAL
// record and every checkpoint. Reusing a key with different parameters
// fails with ErrIdempotencyMismatch.
func (l *Ledger) ChargeIdempotent(dataset string, eps float64, key, modelID string) (duplicate bool, prevModelID string, err error) {
	if key == "" {
		return false, "", errors.New("accountant: empty idempotency key")
	}
	return l.charge(dataset, eps, key, modelID)
}

func (l *Ledger) charge(dataset string, eps float64, key, modelID string) (duplicate bool, prevModelID string, err error) {
	if dataset == "" {
		return false, "", errors.New("accountant: empty dataset id")
	}
	if !(eps > 0) || math.IsInf(eps, 1) {
		return false, "", fmt.Errorf("accountant: charge must be positive and finite, got %g", eps)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if key != "" {
		if info, ok := l.keys[key]; ok {
			if info.Dataset != dataset || math.Abs(info.Eps-eps) > chargeTol {
				return false, "", fmt.Errorf("%w: key %q charged dataset %q ε=%g, retried with dataset %q ε=%g",
					ErrIdempotencyMismatch, key, info.Dataset, info.Eps, dataset, eps)
			}
			l.m.replayHit()
			return true, info.ModelID, nil
		}
	}
	e := l.entryLocked(dataset)
	if e.Spent+eps > e.Budget*(1+chargeTol) {
		l.m.chargeRejected()
		return false, "", &BudgetError{Dataset: dataset, Requested: eps, Spent: e.Spent, Budget: e.Budget}
	}
	e.Spent += eps
	l.datasets[dataset] = e
	if key != "" {
		l.addKeyLocked(key, KeyInfo{Dataset: dataset, Eps: eps, ModelID: modelID})
	}
	rec := walRecord{Op: opCharge, Dataset: dataset, Eps: eps, Key: key, ModelID: modelID,
		Spent: e.Spent, Budget: e.Budget}
	if err := l.commitLocked(rec); err != nil {
		// Roll back: a charge that cannot be made durable is not
		// acknowledged, so the caller must not release the fit.
		e.Spent -= eps
		l.datasets[dataset] = e
		if key != "" {
			l.dropKeyLocked(key)
		}
		return false, "", err
	}
	l.m.chargeCommitted(dataset, eps, e)
	return false, modelID, nil
}

// Refund returns eps to the dataset after a fit that failed before
// releasing anything observable (sequential composition only charges
// for released outputs). Refunding more than was spent clamps to zero.
func (l *Ledger) Refund(dataset string, eps float64) error {
	return l.refund(dataset, eps, "")
}

// RefundIdempotent is Refund for a charge made under an idempotency
// key: alongside the refund it forgets the key, so a later retry with
// the same key charges afresh instead of riding a refunded charge.
func (l *Ledger) RefundIdempotent(dataset string, eps float64, key string) error {
	return l.refund(dataset, eps, key)
}

func (l *Ledger) refund(dataset string, eps float64, key string) error {
	if !(eps > 0) || math.IsInf(eps, 1) {
		return fmt.Errorf("accountant: refund must be positive and finite, got %g", eps)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.datasets[dataset]
	if !ok {
		return nil
	}
	prev := e.Spent
	prevKey, hadKey := l.keys[key]
	e.Spent -= eps
	if e.Spent < 0 {
		e.Spent = 0
	}
	l.datasets[dataset] = e
	if key != "" {
		l.dropKeyLocked(key)
	}
	rec := walRecord{Op: opRefund, Dataset: dataset, Eps: eps, Key: key,
		Spent: e.Spent, Budget: e.Budget}
	if err := l.commitLocked(rec); err != nil {
		e.Spent = prev
		l.datasets[dataset] = e
		if key != "" && hadKey {
			l.addKeyLocked(key, prevKey)
		}
		return err
	}
	l.m.refundCommitted(dataset, eps, e)
	return nil
}

// SetBudget configures a dataset's total allowance, keeping any spend
// already recorded. Lowering the budget below the recorded spend is
// allowed — further charges simply fail.
func (l *Ledger) SetBudget(dataset string, budget float64) error {
	if dataset == "" {
		return errors.New("accountant: empty dataset id")
	}
	if !(budget > 0) || math.IsInf(budget, 1) {
		return fmt.Errorf("accountant: budget must be positive and finite, got %g", budget)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.entryLocked(dataset)
	prev, had := l.datasets[dataset]
	e.Budget = budget
	l.datasets[dataset] = e
	rec := walRecord{Op: opBudget, Dataset: dataset, Spent: e.Spent, Budget: e.Budget}
	if err := l.commitLocked(rec); err != nil {
		if had {
			l.datasets[dataset] = prev
		} else {
			delete(l.datasets, dataset)
		}
		return err
	}
	l.m.setState(dataset, e)
	return nil
}

// ChargedKey reports the charge recorded under an idempotency key, if
// any — the post-crash path for deciding whether a retried fit already
// paid.
func (l *Ledger) ChargedKey(key string) (KeyInfo, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	info, ok := l.keys[key]
	return info, ok
}

// addKeyLocked records key, evicting the oldest when over cap.
func (l *Ledger) addKeyLocked(key string, info KeyInfo) {
	if _, ok := l.keys[key]; !ok {
		l.keyOrder = append(l.keyOrder, key)
	}
	l.keys[key] = info
	for len(l.keyOrder) > maxIdemKeys {
		old := l.keyOrder[0]
		l.keyOrder = l.keyOrder[1:]
		delete(l.keys, old)
	}
}

// dropKeyLocked forgets key (rollbacks and refunds).
func (l *Ledger) dropKeyLocked(key string) {
	if _, ok := l.keys[key]; !ok {
		return
	}
	delete(l.keys, key)
	for i, k := range l.keyOrder {
		if k == key {
			l.keyOrder = append(l.keyOrder[:i], l.keyOrder[i+1:]...)
			break
		}
	}
}

// Get returns the dataset's standing; unseen datasets report zero spend
// against the default budget.
func (l *Ledger) Get(dataset string) Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.entryLocked(dataset)
}

// Snapshot returns a copy of every recorded dataset entry.
func (l *Ledger) Snapshot() map[string]Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]Entry, len(l.datasets))
	for id, e := range l.datasets {
		out[id] = e
	}
	return out
}

// Datasets returns the recorded dataset ids in sorted order.
func (l *Ledger) Datasets() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	ids := make([]string, 0, len(l.datasets))
	for id := range l.datasets {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Path returns the backing file, or "" for an in-memory ledger. Serving
// layers use it to keep other writers (model persistence) off the file.
func (l *Ledger) Path() string { return l.path }

// commitLocked makes one mutation durable before it is acknowledged:
// in WAL mode it appends a single fsync'd record (and opportunistically
// compacts the log), in legacy mode it rewrites the whole JSON document
// atomically. In-memory ledgers commit trivially. Callers hold l.mu.
func (l *Ledger) commitLocked(rec walRecord) error {
	if err := l.commitRawLocked(rec); err != nil {
		l.m.persistFailed()
		return err
	}
	return nil
}

func (l *Ledger) commitRawLocked(rec walRecord) error {
	if l.log != nil {
		payload, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("%w: encode record: %v", ErrPersist, err)
		}
		if err := l.log.Append(payload); err != nil {
			return fmt.Errorf("%w: %v", ErrPersist, err)
		}
		l.maybeCompactLocked()
		return nil
	}
	return l.persistLocked()
}

// persistLocked writes the ledger durably in the legacy JSON format:
// temp file in the same directory, file fsync, atomic rename, then
// directory fsync so the rename itself survives a crash. Callers hold
// l.mu. Failures wrap ErrPersist.
func (l *Ledger) persistLocked() error {
	if l.path == "" {
		return nil
	}
	doc := ledgerJSON{Version: ledgerVersion, DefaultBudget: l.defaultBudget, Datasets: l.datasets}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("%w: encode: %v", ErrPersist, err)
	}
	dir := filepath.Dir(l.path)
	tmp, err := l.fs.CreateTemp(dir, ".ledger-*.json")
	if err != nil {
		return fmt.Errorf("%w: %v", ErrPersist, err)
	}
	_, werr := tmp.Write(append(raw, '\n'))
	// fsync before rename: otherwise the rename can land while the data
	// has not, and a crash leaves a durable name on torn content.
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		l.fs.Remove(tmp.Name())
		return fmt.Errorf("%w: write %v, sync %v, close %v", ErrPersist, werr, serr, cerr)
	}
	if err := l.fs.Rename(tmp.Name(), l.path); err != nil {
		l.fs.Remove(tmp.Name())
		return fmt.Errorf("%w: %v", ErrPersist, err)
	}
	if err := l.fs.SyncDir(dir); err != nil {
		// The rename happened but is not yet guaranteed durable, so the
		// mutation cannot be acknowledged; the caller rolls back and the
		// next successful persist rewrites the file either way.
		return fmt.Errorf("%w: sync dir: %v", ErrPersist, err)
	}
	return nil
}

// Close releases the WAL append handle (no-op for legacy and in-memory
// ledgers). Every acknowledged mutation is already durable.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.log == nil {
		return nil
	}
	err := l.log.Close()
	l.log = nil
	return err
}
