// Package accountant tracks cumulative differential-privacy spending
// per dataset across fits. Where internal/dp's Accountant budgets one
// PrivBayes run (ε = ε₁ + ε₂ inside a single Fit), this ledger budgets
// a *dataset* across its lifetime: every model the curator fits against
// dataset D composes sequentially, so the serving daemon must refuse a
// fit whose ε would push D's cumulative spend past its budget. The
// ledger persists as JSON so restarts — and multiple daemon runs over
// the same data directory — cannot silently reset the budget.
package accountant

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ErrBudgetExceeded tags every charge rejected by a ledger; match with
// errors.Is. The concrete error is a *BudgetError carrying the numbers.
var ErrBudgetExceeded = errors.New("accountant: privacy budget exceeded")

// ErrPersist tags failures to make a ledger mutation durable (disk
// full, permissions). These are server-side faults, not caller errors.
var ErrPersist = errors.New("accountant: ledger persistence failed")

// BudgetError reports a rejected charge.
type BudgetError struct {
	Dataset   string
	Requested float64
	Spent     float64
	Budget    float64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("accountant: dataset %q: spending ε=%g would exceed budget (spent %g of %g)",
		e.Dataset, e.Requested, e.Spent, e.Budget)
}

// Is makes errors.Is(err, ErrBudgetExceeded) match.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExceeded }

// Entry is one dataset's standing in the ledger.
type Entry struct {
	// Spent is the cumulative ε of every fit acknowledged so far.
	Spent float64 `json:"spent"`
	// Budget is the dataset's total ε allowance.
	Budget float64 `json:"budget"`
}

// Remaining returns the unused budget, never negative.
func (e Entry) Remaining() float64 {
	if r := e.Budget - e.Spent; r > 0 {
		return r
	}
	return 0
}

// ledgerVersion guards the persisted format.
const ledgerVersion = 1

// ledgerJSON is the on-disk document.
type ledgerJSON struct {
	Version       int              `json:"version"`
	DefaultBudget float64          `json:"default_budget"`
	Datasets      map[string]Entry `json:"datasets"`
}

// Ledger is a concurrency-safe sequential-composition ledger of ε per
// dataset id. All mutations are serialized and — when the ledger is
// file-backed — durably persisted before they are acknowledged, so a
// crash can lose an unacknowledged charge (conservative: the budget is
// never under-counted) but never an acknowledged one.
type Ledger struct {
	mu            sync.Mutex
	path          string // "" = in-memory only
	defaultBudget float64
	datasets      map[string]Entry
}

// New creates an in-memory ledger. Datasets not configured via
// SetBudget get defaultBudget, which must be positive.
func New(defaultBudget float64) *Ledger {
	if !(defaultBudget > 0) {
		panic(fmt.Sprintf("accountant: default budget must be positive, got %g", defaultBudget))
	}
	return &Ledger{defaultBudget: defaultBudget, datasets: map[string]Entry{}}
}

// Open creates a file-backed ledger at path, loading existing state if
// the file exists. The file's recorded per-dataset budgets win over
// defaultBudget; defaultBudget applies to datasets first seen later.
func Open(path string, defaultBudget float64) (*Ledger, error) {
	if !(defaultBudget > 0) {
		return nil, fmt.Errorf("accountant: default budget must be positive, got %g", defaultBudget)
	}
	l := &Ledger{path: path, defaultBudget: defaultBudget, datasets: map[string]Entry{}}
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return l, nil
	}
	if err != nil {
		return nil, fmt.Errorf("accountant: read ledger: %w", err)
	}
	// DisallowUnknownFields makes a clobbered ledger fail closed: if
	// some other JSON document (say, a persisted model artifact) lands
	// on this path, refusing to start beats silently loading an empty
	// ledger and erasing every recorded ε spend.
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var doc ledgerJSON
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("accountant: parse ledger %s: %w", path, err)
	}
	if doc.Version != ledgerVersion {
		return nil, fmt.Errorf("accountant: ledger %s has unsupported version %d", path, doc.Version)
	}
	for id, e := range doc.Datasets {
		if e.Spent < 0 || !(e.Budget > 0) || math.IsNaN(e.Spent) {
			return nil, fmt.Errorf("accountant: ledger %s: dataset %q has invalid entry (spent %g, budget %g)", path, id, e.Spent, e.Budget)
		}
		l.datasets[id] = e
	}
	return l, nil
}

// entryLocked returns the dataset's entry, materializing the default
// budget for first contact. Callers hold l.mu.
func (l *Ledger) entryLocked(dataset string) Entry {
	if e, ok := l.datasets[dataset]; ok {
		return e
	}
	return Entry{Budget: l.defaultBudget}
}

// chargeTol absorbs floating-point dust when a budget is consumed in
// many equal shares (matches internal/dp's Accountant tolerance).
const chargeTol = 1e-9

// Charge atomically spends eps from the dataset's budget: the check,
// the ledger update, and the persistence to disk happen under one lock,
// so concurrent fits racing on one dataset can never jointly overspend.
// A rejected charge leaves the ledger untouched and returns a
// *BudgetError matching ErrBudgetExceeded.
func (l *Ledger) Charge(dataset string, eps float64) error {
	if dataset == "" {
		return errors.New("accountant: empty dataset id")
	}
	if !(eps > 0) || math.IsInf(eps, 1) {
		return fmt.Errorf("accountant: charge must be positive and finite, got %g", eps)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.entryLocked(dataset)
	if e.Spent+eps > e.Budget*(1+chargeTol) {
		return &BudgetError{Dataset: dataset, Requested: eps, Spent: e.Spent, Budget: e.Budget}
	}
	e.Spent += eps
	l.datasets[dataset] = e
	if err := l.persistLocked(); err != nil {
		// Roll back: a charge that cannot be made durable is not
		// acknowledged, so the caller must not release the fit.
		e.Spent -= eps
		l.datasets[dataset] = e
		return err
	}
	return nil
}

// Refund returns eps to the dataset after a fit that failed before
// releasing anything observable (sequential composition only charges
// for released outputs). Refunding more than was spent clamps to zero.
func (l *Ledger) Refund(dataset string, eps float64) error {
	if !(eps > 0) || math.IsInf(eps, 1) {
		return fmt.Errorf("accountant: refund must be positive and finite, got %g", eps)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.datasets[dataset]
	if !ok {
		return nil
	}
	prev := e.Spent
	e.Spent -= eps
	if e.Spent < 0 {
		e.Spent = 0
	}
	l.datasets[dataset] = e
	if err := l.persistLocked(); err != nil {
		e.Spent = prev
		l.datasets[dataset] = e
		return err
	}
	return nil
}

// SetBudget configures a dataset's total allowance, keeping any spend
// already recorded. Lowering the budget below the recorded spend is
// allowed — further charges simply fail.
func (l *Ledger) SetBudget(dataset string, budget float64) error {
	if dataset == "" {
		return errors.New("accountant: empty dataset id")
	}
	if !(budget > 0) || math.IsInf(budget, 1) {
		return fmt.Errorf("accountant: budget must be positive and finite, got %g", budget)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.entryLocked(dataset)
	prev, had := l.datasets[dataset]
	e.Budget = budget
	l.datasets[dataset] = e
	if err := l.persistLocked(); err != nil {
		if had {
			l.datasets[dataset] = prev
		} else {
			delete(l.datasets, dataset)
		}
		return err
	}
	return nil
}

// Get returns the dataset's standing; unseen datasets report zero spend
// against the default budget.
func (l *Ledger) Get(dataset string) Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.entryLocked(dataset)
}

// Snapshot returns a copy of every recorded dataset entry.
func (l *Ledger) Snapshot() map[string]Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]Entry, len(l.datasets))
	for id, e := range l.datasets {
		out[id] = e
	}
	return out
}

// Datasets returns the recorded dataset ids in sorted order.
func (l *Ledger) Datasets() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	ids := make([]string, 0, len(l.datasets))
	for id := range l.datasets {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Path returns the backing file, or "" for an in-memory ledger. Serving
// layers use it to keep other writers (model persistence) off the file.
func (l *Ledger) Path() string { return l.path }

// persistLocked writes the ledger durably (temp file + rename) when
// file-backed. Callers hold l.mu. Failures wrap ErrPersist.
func (l *Ledger) persistLocked() error {
	if l.path == "" {
		return nil
	}
	doc := ledgerJSON{Version: ledgerVersion, DefaultBudget: l.defaultBudget, Datasets: l.datasets}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("%w: encode: %v", ErrPersist, err)
	}
	dir := filepath.Dir(l.path)
	tmp, err := os.CreateTemp(dir, ".ledger-*.json")
	if err != nil {
		return fmt.Errorf("%w: %v", ErrPersist, err)
	}
	_, werr := tmp.Write(append(raw, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("%w: write %v, close %v", ErrPersist, werr, cerr)
	}
	if err := os.Rename(tmp.Name(), l.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("%w: %v", ErrPersist, err)
	}
	return nil
}
