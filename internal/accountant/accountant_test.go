package accountant

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestChargeAndExhaustion(t *testing.T) {
	l := New(1.0)
	if err := l.Charge("adult", 0.6); err != nil {
		t.Fatal(err)
	}
	err := l.Charge("adult", 0.6)
	if err == nil {
		t.Fatal("overdraw must fail")
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("error %v does not match ErrBudgetExceeded", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error %v is not a *BudgetError", err)
	}
	if be.Dataset != "adult" || be.Spent != 0.6 || be.Budget != 1.0 {
		t.Errorf("BudgetError = %+v", be)
	}
	// Rejected charge leaves the ledger untouched.
	if got := l.Get("adult").Spent; got != 0.6 {
		t.Errorf("spent after rejection = %g, want 0.6", got)
	}
	// The remaining 0.4 is still spendable.
	if err := l.Charge("adult", 0.4); err != nil {
		t.Errorf("charging exactly the remainder: %v", err)
	}
	if rem := l.Get("adult").Remaining(); rem != 0 {
		t.Errorf("remaining = %g, want 0", rem)
	}
	// Other datasets are independent.
	if err := l.Charge("acs", 1.0); err != nil {
		t.Errorf("independent dataset: %v", err)
	}
}

func TestChargeRejectsInvalidInput(t *testing.T) {
	l := New(1)
	for _, eps := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if err := l.Charge("d", eps); err == nil {
			t.Errorf("Charge(%g) must fail", eps)
		}
	}
	if err := l.Charge("", 0.1); err == nil {
		t.Error("empty dataset id must fail")
	}
	if got := l.Get("d").Spent; got != 0 {
		t.Errorf("invalid charges must not spend, got %g", got)
	}
}

func TestManyEqualSharesTolerance(t *testing.T) {
	// 10 × 0.1 must fit in a budget of 1.0 despite float dust.
	l := New(1.0)
	for i := 0; i < 10; i++ {
		if err := l.Charge("d", 0.1); err != nil {
			t.Fatalf("share %d: %v", i, err)
		}
	}
	if err := l.Charge("d", 0.1); err == nil {
		t.Error("11th share must fail")
	}
}

func TestRefund(t *testing.T) {
	l := New(1.0)
	if err := l.Charge("d", 0.8); err != nil {
		t.Fatal(err)
	}
	if err := l.Refund("d", 0.8); err != nil {
		t.Fatal(err)
	}
	if got := l.Get("d").Spent; got != 0 {
		t.Errorf("spent after refund = %g", got)
	}
	// Over-refund clamps at zero.
	if err := l.Charge("d", 0.2); err != nil {
		t.Fatal(err)
	}
	if err := l.Refund("d", 5); err != nil {
		t.Fatal(err)
	}
	if got := l.Get("d").Spent; got != 0 {
		t.Errorf("spent after over-refund = %g", got)
	}
}

func TestSetBudget(t *testing.T) {
	l := New(1.0)
	if err := l.SetBudget("d", 3.0); err != nil {
		t.Fatal(err)
	}
	if err := l.Charge("d", 2.5); err != nil {
		t.Errorf("raised budget: %v", err)
	}
	// Lowering below spend is allowed; further charges fail.
	if err := l.SetBudget("d", 2.0); err != nil {
		t.Fatal(err)
	}
	if err := l.Charge("d", 0.1); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("charge past lowered budget: %v", err)
	}
	if err := l.SetBudget("d", 0); err == nil {
		t.Error("zero budget must be rejected")
	}
}

// TestConcurrentCharges races many goroutines on one ledger entry: with
// a budget of 1.0 and charges of 0.1, exactly 10 must succeed no matter
// how the goroutines interleave. Run under -race in CI.
func TestConcurrentCharges(t *testing.T) {
	l := New(1.0)
	const workers = 50
	var wg sync.WaitGroup
	results := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = l.Charge("shared", 0.1)
		}(i)
	}
	wg.Wait()
	ok := 0
	for _, err := range results {
		if err == nil {
			ok++
		} else if !errors.Is(err, ErrBudgetExceeded) {
			t.Errorf("unexpected error: %v", err)
		}
	}
	if ok != 10 {
		t.Errorf("%d charges succeeded, want exactly 10", ok)
	}
	if spent := l.Get("shared").Spent; math.Abs(spent-1.0) > 1e-9 {
		t.Errorf("total spent = %g, want 1.0", spent)
	}
}

// TestConcurrentMixedOps hammers all mutating entry points together so
// the race detector sees every lock interaction.
func TestConcurrentMixedOps(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(filepath.Join(dir, "ledger.json"), 100)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := []string{"a", "b"}[i%2]
			for j := 0; j < 20; j++ {
				_ = l.Charge(id, 0.05)
				_ = l.Get(id)
				_ = l.Snapshot()
				if j%5 == 0 {
					_ = l.Refund(id, 0.01)
				}
			}
		}(i)
	}
	wg.Wait()
	if len(l.Datasets()) != 2 {
		t.Errorf("datasets = %v", l.Datasets())
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ledger.json")
	l, err := Open(path, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Charge("adult", 0.7); err != nil {
		t.Fatal(err)
	}
	if err := l.SetBudget("acs", 5.0); err != nil {
		t.Fatal(err)
	}
	if err := l.Charge("acs", 4.0); err != nil {
		t.Fatal(err)
	}

	// A fresh process opens the same file: spend and budgets survive,
	// and the budget keeps binding across restarts.
	back, err := Open(path, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if e := back.Get("adult"); e.Spent != 0.7 || e.Budget != 2.0 {
		t.Errorf("adult entry = %+v", e)
	}
	if e := back.Get("acs"); e.Spent != 4.0 || e.Budget != 5.0 {
		t.Errorf("acs entry = %+v", e)
	}
	if err := back.Charge("adult", 1.4); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("reloaded ledger must still enforce the budget, got %v", err)
	}
}

func TestOpenRejectsCorruptLedger(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ledger.json")
	cases := map[string]string{
		"garbage":        "not json",
		"wrong version":  `{"version":99,"datasets":{}}`,
		"negative spend": `{"version":1,"datasets":{"d":{"spent":-1,"budget":1}}}`,
		"zero budget":    `{"version":1,"datasets":{"d":{"spent":0,"budget":0}}}`,
	}
	for name, raw := range cases {
		if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(path, 1); err == nil {
			t.Errorf("%s: Open must fail", name)
		}
	}
}

func TestOpenMissingFileStartsEmpty(t *testing.T) {
	l, err := Open(filepath.Join(t.TempDir(), "fresh.json"), 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if e := l.Get("x"); e.Spent != 0 || e.Budget != 1.5 {
		t.Errorf("fresh entry = %+v", e)
	}
	if _, err := Open(filepath.Join(t.TempDir(), "x.json"), 0); err == nil {
		t.Error("non-positive default budget must be rejected")
	}
}
