package accountant

import (
	"privbayes/internal/telemetry"
	"privbayes/internal/wal"
)

// Metrics is the ledger's instrumentation surface. A nil *Metrics
// disables instrumentation; the ledger never changes what it commits
// based on whether it is observed.
type Metrics struct {
	// WAL instruments the ledger's write-ahead log (fsync latency,
	// compactions, recovery truncation).
	WAL *wal.Metrics

	spent           *telemetry.GaugeVec
	budget          *telemetry.GaugeVec
	charged         *telemetry.CounterVec
	refunded        *telemetry.CounterVec
	rejected        *telemetry.Counter
	replays         *telemetry.Counter
	persistFailures *telemetry.Counter
}

// NewMetrics registers the ledger and WAL metric families on r.
// Returns nil for a nil registry — the "telemetry off" mode.
func NewMetrics(r *telemetry.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		WAL: wal.NewMetrics(r),
		spent: r.GaugeVec("privbayes_ledger_epsilon_spent",
			"Cumulative ε spent per dataset (post-state of the last acknowledged mutation).", "dataset"),
		budget: r.GaugeVec("privbayes_ledger_epsilon_budget",
			"Total ε allowance per dataset.", "dataset"),
		charged: r.CounterVec("privbayes_ledger_epsilon_charged_total",
			"ε charged per dataset by acknowledged charges.", "dataset"),
		refunded: r.CounterVec("privbayes_ledger_epsilon_refunded_total",
			"ε returned per dataset by acknowledged refunds.", "dataset"),
		rejected: r.Counter("privbayes_ledger_charges_rejected_total",
			"Charges refused because they would exceed the dataset's budget."),
		replays: r.Counter("privbayes_ledger_idempotent_replays_total",
			"Charges answered from a recorded idempotency key instead of spending again."),
		persistFailures: r.Counter("privbayes_ledger_persist_failures_total",
			"Mutations rolled back because they could not be made durable."),
	}
}

// Instrument attaches metrics to the ledger and seeds the per-dataset
// gauges from its recovered state, so a scrape right after startup
// already reflects every ε spend replayed from the WAL. Call once,
// before the ledger serves; a nil m turns instrumentation off.
func (l *Ledger) Instrument(m *Metrics) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.m = m
	if m == nil {
		return
	}
	if l.log != nil {
		l.log.Instrument(m.WAL)
	}
	for id, e := range l.datasets {
		m.spent.With(id).Set(e.Spent)
		m.budget.With(id).Set(e.Budget)
	}
}

// setState mirrors a dataset's post-mutation standing into the gauges.
func (m *Metrics) setState(dataset string, e Entry) {
	if m == nil {
		return
	}
	m.spent.With(dataset).Set(e.Spent)
	m.budget.With(dataset).Set(e.Budget)
}

func (m *Metrics) chargeCommitted(dataset string, eps float64, e Entry) {
	if m == nil {
		return
	}
	m.charged.With(dataset).Add(eps)
	m.setState(dataset, e)
}

func (m *Metrics) refundCommitted(dataset string, eps float64, e Entry) {
	if m == nil {
		return
	}
	m.refunded.With(dataset).Add(eps)
	m.setState(dataset, e)
}

func (m *Metrics) chargeRejected() {
	if m == nil {
		return
	}
	m.rejected.Inc()
}

func (m *Metrics) replayHit() {
	if m == nil {
		return
	}
	m.replays.Inc()
}

func (m *Metrics) persistFailed() {
	if m == nil {
		return
	}
	m.persistFailures.Inc()
}

// RecoveredTruncation returns the bytes the WAL dropped while
// recovering this ledger (a torn tail after a crash, or a corrupt
// suffix under fsck); 0 after a clean open or for non-WAL ledgers.
// /readyz reports it so operators see that recovery repaired damage.
func (l *Ledger) RecoveredTruncation() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.log == nil {
		return 0
	}
	return l.log.Truncated()
}
