package accountant

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"privbayes/internal/faultfs"
)

func TestOpenWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger")
	l, err := OpenWAL(path, 2.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Charge("a", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := l.SetBudget("b", 5.0); err != nil {
		t.Fatal(err)
	}
	if err := l.Charge("b", 3.0); err != nil {
		t.Fatal(err)
	}
	if err := l.Refund("a", 0.2); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, err := OpenWAL(path, 2.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if e := l2.Get("a"); math.Abs(e.Spent-0.3) > 1e-12 || e.Budget != 2.0 {
		t.Errorf("a = %+v", e)
	}
	if e := l2.Get("b"); e.Spent != 3.0 || e.Budget != 5.0 {
		t.Errorf("b = %+v", e)
	}
	// The recovered ledger still enforces the budget.
	if err := l2.Charge("b", 2.5); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("overdraw after recovery: %v", err)
	}
}

func TestOpenWALMigratesLegacyJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.json")
	legacy, err := Open(path, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := legacy.Charge("survey", 0.7); err != nil {
		t.Fatal(err)
	}
	if err := legacy.SetBudget("other", 9.0); err != nil {
		t.Fatal(err)
	}

	l, err := OpenWAL(path, 2.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e := l.Get("survey"); e.Spent != 0.7 || e.Budget != 2.0 {
		t.Errorf("survey after migration = %+v", e)
	}
	if e := l.Get("other"); e.Budget != 9.0 {
		t.Errorf("other after migration = %+v", e)
	}
	if err := l.Charge("survey", 1.0); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// The file is now a WAL — and keeps working across another cycle.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(raw), "PBWAL") {
		t.Fatalf("migrated file does not start with WAL magic: %q", raw[:8])
	}
	l2, err := OpenWAL(path, 2.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if e := l2.Get("survey"); math.Abs(e.Spent-1.7) > 1e-12 {
		t.Errorf("survey after second open = %+v", e)
	}
	if stray, _ := filepath.Glob(path + ".migrate"); len(stray) != 0 {
		t.Errorf("leftover migration file: %v", stray)
	}
}

func TestChargeIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger")
	l, err := OpenWAL(path, 2.0, Options{CompactEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	dup, modelID, err := l.ChargeIdempotent("d", 0.5, "key-1", "d-v1")
	if err != nil || dup || modelID != "d-v1" {
		t.Fatalf("first keyed charge: dup=%v model=%q err=%v", dup, modelID, err)
	}
	// Same key, same parameters: no second spend, original model id.
	dup, modelID, err = l.ChargeIdempotent("d", 0.5, "key-1", "d-v2")
	if err != nil || !dup || modelID != "d-v1" {
		t.Fatalf("duplicate keyed charge: dup=%v model=%q err=%v", dup, modelID, err)
	}
	if e := l.Get("d"); e.Spent != 0.5 {
		t.Fatalf("spent after duplicate = %g, want 0.5", e.Spent)
	}
	// Same key, different parameters: typed rejection.
	if _, _, err := l.ChargeIdempotent("d", 0.9, "key-1", ""); !errors.Is(err, ErrIdempotencyMismatch) {
		t.Fatalf("mismatched key reuse: %v", err)
	}
	// Force several compactions; the key must survive checkpoints.
	for i := 0; i < 6; i++ {
		if err := l.Charge("filler", 0.1); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	l2, err := OpenWAL(path, 2.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	dup, modelID, err = l2.ChargeIdempotent("d", 0.5, "key-1", "d-v3")
	if err != nil || !dup || modelID != "d-v1" {
		t.Fatalf("keyed charge after restart: dup=%v model=%q err=%v", dup, modelID, err)
	}
	if e := l2.Get("d"); e.Spent != 0.5 {
		t.Fatalf("spent after restart retry = %g, want 0.5", e.Spent)
	}
	info, ok := l2.ChargedKey("key-1")
	if !ok || info.ModelID != "d-v1" || info.Eps != 0.5 {
		t.Fatalf("ChargedKey = %+v, %v", info, ok)
	}
	// Refunding under the key forgets it: the next keyed charge pays.
	if err := l2.RefundIdempotent("d", 0.5, "key-1"); err != nil {
		t.Fatal(err)
	}
	dup, _, err = l2.ChargeIdempotent("d", 0.5, "key-1", "d-v4")
	if err != nil || dup {
		t.Fatalf("keyed charge after refund: dup=%v err=%v", dup, err)
	}
	if e := l2.Get("d"); e.Spent != 0.5 {
		t.Fatalf("spent after refund+recharge = %g, want 0.5", e.Spent)
	}
}

func TestWALCompactionBoundsFileSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger")
	l, err := OpenWAL(path, 1e9, Options{CompactEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := l.Charge("hot", 0.001); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// 500 records ≈ 60+ KiB uncompacted; the checkpointed log stays
	// within a couple of records of the threshold.
	if fi.Size() > 4096 {
		t.Fatalf("log size %d bytes — compaction not bounding growth", fi.Size())
	}
	l2, err := OpenWAL(path, 1e9, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if e := l2.Get("hot"); math.Abs(e.Spent-0.5) > 1e-9 {
		t.Errorf("spent after compacted recovery = %g, want 0.5", e.Spent)
	}
}

func TestCorruptLedgerRefusedThenFsck(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger")
	l, err := OpenWAL(path, 2.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range []string{"a", "b", "c"} {
		if err := l.Charge(ds, 0.25); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Flip a byte inside the SECOND record's payload (mid-file).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mid := len(raw) / 2
	raw[mid] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = OpenWAL(path, 2.0, Options{})
	if !errors.Is(err, ErrLedgerCorrupt) {
		t.Fatalf("corrupt ledger open: %v, want ErrLedgerCorrupt", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Offset <= 0 {
		t.Fatalf("err = %#v, want *CorruptError with positive offset", err)
	}

	// Fsck: open succeeds, keeping everything before the damage.
	l2, err := OpenWAL(path, 2.0, Options{Fsck: true})
	if err != nil {
		t.Fatalf("fsck open: %v", err)
	}
	defer l2.Close()
	if e := l2.Get("a"); e.Spent != 0.25 {
		t.Errorf("a after fsck = %+v", e)
	}
}

// ledgerModel is the pure in-memory reference the crash sweep compares
// recovered state against.
type ledgerModel struct {
	def      float64
	datasets map[string]Entry
}

func newModel(def float64) *ledgerModel {
	return &ledgerModel{def: def, datasets: map[string]Entry{}}
}

func (m *ledgerModel) entry(ds string) Entry {
	if e, ok := m.datasets[ds]; ok {
		return e
	}
	return Entry{Budget: m.def}
}

// op is one scripted ledger mutation.
type op struct {
	kind    string // "charge", "refund", "budget", "idem"
	dataset string
	eps     float64
	key     string
}

func (m *ledgerModel) apply(o op) {
	e := m.entry(o.dataset)
	switch o.kind {
	case "charge", "idem":
		e.Spent += o.eps
	case "refund":
		if _, ok := m.datasets[o.dataset]; !ok {
			return
		}
		e.Spent -= o.eps
		if e.Spent < 0 {
			e.Spent = 0
		}
	case "budget":
		e.Budget = o.eps
	}
	m.datasets[o.dataset] = e
}

func (m *ledgerModel) equal(snap map[string]Entry) bool {
	if len(m.datasets) != len(snap) {
		return false
	}
	for ds, e := range m.datasets {
		g, ok := snap[ds]
		if !ok || math.Abs(g.Spent-e.Spent) > 1e-12 || g.Budget != e.Budget {
			return false
		}
	}
	return true
}

// crashScript is the workload the sweep replays: enough mutations to
// cross the compaction threshold twice, plus an idempotent charge on
// its own dataset.
var crashScript = []op{
	{kind: "charge", dataset: "a", eps: 0.3},
	{kind: "budget", dataset: "b", eps: 4.0},
	{kind: "charge", dataset: "b", eps: 1.5},
	{kind: "idem", dataset: "idem-ds", eps: 0.7, key: "fit-key-1"},
	{kind: "refund", dataset: "a", eps: 0.1},
	{kind: "charge", dataset: "a", eps: 0.4},
	{kind: "charge", dataset: "b", eps: 0.5},
	{kind: "refund", dataset: "b", eps: 0.25},
	{kind: "charge", dataset: "c", eps: 1.0},
	{kind: "budget", dataset: "c", eps: 3.0},
}

// runScript executes the script against a ledger opened on fs,
// returning how many ops were acknowledged and the first
// persistence-failure op index (-1 if none).
func runScript(fs faultfs.FS, path string) (committed int, inflight int) {
	inflight = -1
	l, err := OpenWAL(path, 2.0, Options{FS: fs, CompactEvery: 4})
	if err != nil {
		return 0, -1 // crash during open/recovery: nothing committed this run
	}
	defer l.Close()
	for i, o := range crashScript {
		var err error
		switch o.kind {
		case "charge":
			err = l.Charge(o.dataset, o.eps)
		case "idem":
			_, _, err = l.ChargeIdempotent(o.dataset, o.eps, o.key, "m-"+o.dataset)
		case "refund":
			err = l.Refund(o.dataset, o.eps)
		case "budget":
			err = l.SetBudget(o.dataset, o.eps)
		}
		if err != nil {
			if errors.Is(err, ErrPersist) && inflight == -1 {
				inflight = i
			}
			return committed, inflight
		}
		committed = i + 1
	}
	return committed, inflight
}

// TestCrashSweepLedger is the fault-injection crash harness over the
// whole ledger stack: for every mutating filesystem operation in the
// workload (append, sync, compaction temp/rename/dir-sync, close), with
// and without torn final writes, crash there, recover with the real
// filesystem, and assert the recovered ledger equals replaying exactly
// the acknowledged ops — or those plus the single in-flight op (durable
// but unacknowledged is the allowed, conservative direction). Then
// retry the idempotent charge and assert it never double-spends.
func TestCrashSweepLedger(t *testing.T) {
	probe := faultfs.NewFault(nil)
	dir := t.TempDir()
	if c, _ := runScript(probe, filepath.Join(dir, "probe-ledger")); c != len(crashScript) {
		t.Fatalf("probe run committed %d of %d ops", c, len(crashScript))
	}
	total := probe.Ops()
	if total < 20 {
		t.Fatalf("workload has only %d crash points, want >= 20", total)
	}
	t.Logf("sweeping %d crash points × {clean, torn}", total)

	for _, torn := range []bool{false, true} {
		for n := int64(1); n <= total; n++ {
			path := filepath.Join(t.TempDir(), "ledger")
			fault := faultfs.NewFault(nil)
			fault.CrashAt(n, torn)
			committed, inflight := runScript(fault, path)
			if !fault.Crashed() {
				t.Fatalf("crash point %d never reached", n)
			}

			rec, err := OpenWAL(path, 2.0, Options{})
			if err != nil {
				t.Fatalf("torn=%v crash at op %d: recovery failed: %v", torn, n, err)
			}
			snap := rec.Snapshot()

			want := newModel(2.0)
			for i := 0; i < committed; i++ {
				want.apply(crashScript[i])
			}
			ok := want.equal(snap)
			if !ok && inflight >= 0 {
				// The in-flight mutation reached disk before the crash:
				// allowed (never under-counts a charge the caller was
				// not told about — it was never acknowledged either).
				want.apply(crashScript[inflight])
				ok = want.equal(snap)
			}
			if !ok {
				t.Fatalf("torn=%v crash at fs-op %d: recovered %+v inconsistent with committed prefix %d (inflight %d)",
					torn, n, snap, committed, inflight)
			}

			// Exactly-once under retry: re-issue the idempotent charge.
			// Whether or not the original survived, idem-ds ends at
			// exactly one charge's worth of spend.
			if _, _, err := rec.ChargeIdempotent("idem-ds", 0.7, "fit-key-1", "m-idem-ds"); err != nil {
				t.Fatalf("torn=%v crash at op %d: idempotent retry: %v", torn, n, err)
			}
			if e := rec.Get("idem-ds"); math.Abs(e.Spent-0.7) > 1e-12 {
				t.Fatalf("torn=%v crash at op %d: idem-ds spent %g after retry, want exactly 0.7", torn, n, e.Spent)
			}
			rec.Close()
		}
	}
}

// TestCrashSweepLegacyMigration crashes at every point of the
// legacy-JSON → WAL migration: recovery must always yield either the
// legacy state (migration reruns) — never a torn in-between.
func TestCrashSweepLegacyMigration(t *testing.T) {
	makeLegacy := func(t *testing.T) string {
		path := filepath.Join(t.TempDir(), "ledger.json")
		l, err := Open(path, 2.0)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Charge("x", 0.9); err != nil {
			t.Fatal(err)
		}
		if err := l.SetBudget("y", 7.0); err != nil {
			t.Fatal(err)
		}
		return path
	}

	probePath := makeLegacy(t)
	probe := faultfs.NewFault(nil)
	if l, err := OpenWAL(probePath, 2.0, Options{FS: probe}); err != nil {
		t.Fatal(err)
	} else {
		l.Close()
	}
	total := probe.Ops()

	for n := int64(1); n <= total; n++ {
		path := makeLegacy(t)
		fault := faultfs.NewFault(nil)
		fault.CrashAt(n, true)
		if l, err := OpenWAL(path, 2.0, Options{FS: fault}); err == nil {
			l.Close()
		}
		// Recover for real.
		l, err := OpenWAL(path, 2.0, Options{})
		if err != nil {
			t.Fatalf("crash at op %d: post-crash open: %v", n, err)
		}
		if e := l.Get("x"); e.Spent != 0.9 {
			t.Fatalf("crash at op %d: x = %+v", n, e)
		}
		if e := l.Get("y"); e.Budget != 7.0 {
			t.Fatalf("crash at op %d: y = %+v", n, e)
		}
		l.Close()
	}
}

// TestConcurrentChargesDuringCompaction hammers a WAL ledger with
// racing charges while a tiny compaction threshold keeps checkpointing
// concurrently (run under -race via make race). The total must come out
// exact and survive recovery.
func TestConcurrentChargesDuringCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger")
	l, err := OpenWAL(path, 1e9, Options{CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 16, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ds := []string{"alpha", "beta", "gamma"}[w%3]
			for i := 0; i < perWorker; i++ {
				if err := l.Charge(ds, 0.01); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var sum float64
	for _, e := range l.Snapshot() {
		sum += e.Spent
	}
	if want := workers * perWorker * 0.01; math.Abs(sum-want) > 1e-9 {
		t.Fatalf("total spent %g, want %g", sum, want)
	}
	snap := l.Snapshot()
	l.Close()

	l2, err := OpenWAL(path, 1e9, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	for ds, e := range snap {
		if g := l2.Get(ds); math.Abs(g.Spent-e.Spent) > 1e-12 {
			t.Errorf("recovered %s = %+v, want %+v", ds, g, e)
		}
	}
}

// TestLegacyPersistFaultRollsBack injects a failure into the legacy
// JSON path's fsync: the charge must report ErrPersist and leave the
// in-memory ledger unchanged.
func TestLegacyPersistFaultRollsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.json")
	l, err := Open(path, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Charge("d", 0.5); err != nil {
		t.Fatal(err)
	}
	fault := faultfs.NewFault(nil)
	l.fs = fault
	// Ops per legacy persist: createtemp, write, sync, close, rename,
	// syncdir. Fail each in turn; every failure must roll back.
	for i := int64(1); i <= 6; i++ {
		fault.FailAt(fault.Ops()+i, nil)
		err := l.Charge("d", 0.1)
		if !errors.Is(err, ErrPersist) {
			t.Fatalf("fault op +%d: err = %v, want ErrPersist", i, err)
		}
		if e := l.Get("d"); e.Spent != 0.5 {
			t.Fatalf("fault op +%d: spent = %g, want rollback to 0.5", i, e.Spent)
		}
	}
	// And with the fault cleared the charge lands.
	if err := l.Charge("d", 0.1); err != nil {
		t.Fatal(err)
	}
	if e := l.Get("d"); math.Abs(e.Spent-0.6) > 1e-12 {
		t.Fatalf("spent = %g, want 0.6", e.Spent)
	}
}
