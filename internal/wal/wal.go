// Package wal is an append-only, checksummed, fsync'd write-ahead log.
// It is the durability primitive under the privacy-budget ledger
// (internal/accountant): a record handed to Append is on stable storage
// when Append returns, so a crash at any instant — torn final write
// included — loses at most the record that was never acknowledged.
//
// On-disk format:
//
//	[8-byte magic "PBWAL\x00\x01\n"]
//	repeated records: [4-byte LE payload length][4-byte LE CRC32C(payload)][payload]
//
// Payload bytes are opaque to this package; the caller owns their
// encoding. Recovery scans the file front to back verifying every
// checksum. An invalid record that reaches end-of-file is a torn tail
// from a crash mid-append and is silently truncated; an invalid record
// with valid-looking data after it is real corruption and fails Open
// with a *CorruptError carrying the byte offset (Options.Fsck downgrades
// that to truncation, for explicit operator-driven repair).
//
// Compact atomically replaces the log with a single checkpoint record
// (temp file + fsync + rename + directory fsync), bounding recovery time
// and file size. All filesystem access goes through internal/faultfs so
// crash sweeps can drive every one of these paths deterministically.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"privbayes/internal/faultfs"
)

// magic identifies (and versions) a WAL file.
const magic = "PBWAL\x00\x01\n"

// headerLen is the per-record header: 4-byte length + 4-byte CRC32C.
const headerLen = 8

// MaxRecordLen caps one record's payload. A length field above the cap
// cannot come from a torn append (appends write the valid length first),
// so it is diagnosed as corruption, not a torn tail.
const MaxRecordLen = 16 << 20

// castagnoli is the CRC32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt tags unrecoverable log damage; match with errors.Is. The
// concrete error is a *CorruptError carrying the byte offset.
var ErrCorrupt = errors.New("wal: log corrupt")

// CorruptError reports damage recovery refused to repair silently.
type CorruptError struct {
	Path   string
	Offset int64  // byte offset of the first invalid record
	Reason string // human-readable diagnosis
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: %s: corrupt at byte %d: %s", e.Path, e.Offset, e.Reason)
}

// Is makes errors.Is(err, ErrCorrupt) match.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// Options configures Open.
type Options struct {
	// FS is the filesystem seam; nil selects the real filesystem.
	FS faultfs.FS
	// Fsck truncates the log at the first corrupt record instead of
	// failing Open — explicit operator-driven repair (-ledger-fsck).
	Fsck bool
}

// Log is an open write-ahead log. Append is not concurrency-safe; the
// owning layer serializes (the accountant already holds its ledger lock
// across every mutation).
type Log struct {
	path    string
	fs      faultfs.FS
	f       faultfs.File
	size    int64 // current file size incl. magic
	records int   // records in the file (replayed + appended)
	// truncated reports bytes dropped during recovery: a torn tail
	// (normal after a crash) or, under Fsck, a corrupt suffix.
	truncated int64
	// m instruments appends and compactions; nil means uninstrumented.
	m *Metrics
}

// Open recovers the log at path, calling replay for every intact record
// in order (offset is the record's position, for diagnostics), then
// leaves the log open for appends. A missing file is created empty. If
// replay returns an error, Open fails with it.
func Open(path string, opts Options, replay func(offset int64, payload []byte) error) (*Log, error) {
	fs := faultfs.Or(opts.FS)
	l := &Log{path: path, fs: fs}

	data, err := fs.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return l, l.create()
	}
	if err != nil {
		return nil, fmt.Errorf("wal: read %s: %w", path, err)
	}
	if len(data) < len(magic) {
		if isPrefixOf(data, magic) {
			// A crash tore the very first write; nothing was committed.
			return l, l.recreate()
		}
		return nil, &CorruptError{Path: path, Offset: 0, Reason: "file shorter than the WAL magic and not a prefix of it"}
	}
	if string(data[:len(magic)]) != magic {
		return nil, &CorruptError{Path: path, Offset: 0, Reason: "bad magic (not a WAL file)"}
	}

	end, records, err := scan(data, func(off int64, payload []byte) error {
		return replay(off, payload)
	})
	if err != nil {
		ce, ok := err.(*CorruptError)
		if !ok || !opts.Fsck {
			if ok {
				ce.Path = path
			}
			return nil, err
		}
		// Operator-sanctioned repair: drop everything from the damage on.
		end = ce.Offset
	}
	l.records = records
	if end < int64(len(data)) {
		l.truncated = int64(len(data)) - end
		if err := fs.Truncate(path, end); err != nil {
			return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
		}
	}
	l.size = end
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s for append: %w", path, err)
	}
	l.f = f
	if l.truncated > 0 {
		// Make the repair itself durable before acknowledging recovery.
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: sync repaired %s: %w", path, err)
		}
	}
	return l, nil
}

// isPrefixOf reports whether data is a strict prefix of s.
func isPrefixOf(data []byte, s string) bool {
	return len(data) < len(s) && string(data) == s[:len(data)]
}

// scan walks records, calling emit for each valid one, and returns the
// offset of the first byte past the last valid record plus the record
// count. A torn tail ends the scan silently; mid-file damage returns a
// *CorruptError (Path filled by the caller).
func scan(data []byte, emit func(offset int64, payload []byte) error) (end int64, records int, err error) {
	off := int64(len(magic))
	n := int64(len(data))
	for off < n {
		rem := n - off
		if rem < headerLen {
			return off, records, nil // torn header
		}
		length := int64(binary.LittleEndian.Uint32(data[off:]))
		if length == 0 || length > MaxRecordLen {
			return off, records, &CorruptError{Offset: off, Reason: fmt.Sprintf("implausible record length %d", length)}
		}
		recEnd := off + headerLen + length
		if recEnd > n {
			return off, records, nil // torn payload
		}
		wantCRC := binary.LittleEndian.Uint32(data[off+4:])
		payload := data[off+headerLen : recEnd]
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			if recEnd == n {
				return off, records, nil // torn final record
			}
			return off, records, &CorruptError{Offset: off, Reason: "checksum mismatch with further data after the record"}
		}
		if err := emit(off, payload); err != nil {
			return off, records, err
		}
		records++
		off = recEnd
	}
	return off, records, nil
}

// create initializes a brand-new log file durably: magic, file fsync,
// then directory fsync so the name itself survives.
func (l *Log) create() error {
	f, err := l.fs.OpenFile(l.path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create %s: %w", l.path, err)
	}
	if err := writeAndSyncAll(f, []byte(magic)); err != nil {
		f.Close()
		return fmt.Errorf("wal: init %s: %w", l.path, err)
	}
	if err := l.fs.SyncDir(filepath.Dir(l.path)); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync dir of %s: %w", l.path, err)
	}
	l.f = f
	l.size = int64(len(magic))
	return nil
}

// recreate replaces a file holding a torn initial write.
func (l *Log) recreate() error {
	if err := l.fs.Remove(l.path); err != nil {
		return fmt.Errorf("wal: remove torn %s: %w", l.path, err)
	}
	return l.create()
}

func writeAndSyncAll(f faultfs.File, b []byte) error {
	if _, err := f.Write(b); err != nil {
		return err
	}
	return f.Sync()
}

// Append commits one record: a single write of header+payload followed
// by fsync. When Append returns nil the record survives any crash; when
// it returns an error the record must be treated as not committed (it
// may or may not survive — recovery decides).
func (l *Log) Append(payload []byte) error {
	if l.f == nil {
		return errors.New("wal: log is closed")
	}
	if len(payload) == 0 {
		return errors.New("wal: empty payload")
	}
	if len(payload) > MaxRecordLen {
		return fmt.Errorf("wal: payload %d bytes exceeds cap %d", len(payload), MaxRecordLen)
	}
	buf := make([]byte, headerLen+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, castagnoli))
	copy(buf[headerLen:], payload)
	var start time.Time
	if l.m != nil {
		start = time.Now()
	}
	if err := writeAndSyncAll(l.f, buf); err != nil {
		return fmt.Errorf("wal: append to %s: %w", l.path, err)
	}
	l.size += int64(len(buf))
	l.records++
	if l.m != nil {
		l.m.fsyncSeconds.Observe(time.Since(start).Seconds())
		l.m.appends.Inc()
		l.m.appendBytes.Add(float64(len(buf)))
		l.m.sizeBytes.Set(float64(l.size))
	}
	return nil
}

// Compact atomically replaces the whole log with a single checkpoint
// record: temp file in the same directory, file fsync, rename over the
// log, directory fsync. On any error the old log remains the durable
// truth and stays open for appends.
func (l *Log) Compact(checkpoint []byte) error {
	if l.f == nil {
		return errors.New("wal: log is closed")
	}
	if len(checkpoint) == 0 || len(checkpoint) > MaxRecordLen {
		return fmt.Errorf("wal: invalid checkpoint size %d", len(checkpoint))
	}
	var start time.Time
	if l.m != nil {
		start = time.Now()
	}
	dir := filepath.Dir(l.path)
	tmp, err := l.fs.CreateTemp(dir, ".wal-compact-*")
	if err != nil {
		return fmt.Errorf("wal: compact %s: %w", l.path, err)
	}
	cleanup := func() { tmp.Close(); l.fs.Remove(tmp.Name()) }
	buf := make([]byte, len(magic)+headerLen+len(checkpoint))
	copy(buf, magic)
	binary.LittleEndian.PutUint32(buf[len(magic):], uint32(len(checkpoint)))
	binary.LittleEndian.PutUint32(buf[len(magic)+4:], crc32.Checksum(checkpoint, castagnoli))
	copy(buf[len(magic)+headerLen:], checkpoint)
	if err := writeAndSyncAll(tmp, buf); err != nil {
		cleanup()
		return fmt.Errorf("wal: compact %s: %w", l.path, err)
	}
	if err := tmp.Close(); err != nil {
		l.fs.Remove(tmp.Name())
		return fmt.Errorf("wal: compact %s: close: %w", l.path, err)
	}
	if err := l.fs.Rename(tmp.Name(), l.path); err != nil {
		l.fs.Remove(tmp.Name())
		return fmt.Errorf("wal: compact %s: rename: %w", l.path, err)
	}
	if err := l.fs.SyncDir(dir); err != nil {
		return fmt.Errorf("wal: compact %s: sync dir: %w", l.path, err)
	}
	// The old append handle now points at the unlinked pre-compaction
	// inode; swap it for the fresh file.
	old := l.f
	f, err := l.fs.OpenFile(l.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		l.f = nil
		old.Close()
		return fmt.Errorf("wal: reopen %s after compaction: %w", l.path, err)
	}
	old.Close()
	l.f = f
	l.size = int64(len(buf))
	l.records = 1
	if l.m != nil {
		l.m.compactSeconds.Observe(time.Since(start).Seconds())
		l.m.compactions.Inc()
		l.m.sizeBytes.Set(float64(l.size))
	}
	return nil
}

// Records returns the number of records currently in the log.
func (l *Log) Records() int { return l.records }

// Size returns the log's size in bytes, including the magic header.
func (l *Log) Size() int64 { return l.size }

// Truncated returns the bytes dropped during recovery (torn tail, or
// corrupt suffix under Fsck); 0 after a clean open.
func (l *Log) Truncated() int64 { return l.truncated }

// Path returns the log file's path.
func (l *Log) Path() string { return l.path }

// Close releases the append handle. The log's contents are already
// durable; Close exists for tests and orderly shutdown.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
