package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"privbayes/internal/faultfs"
)

// openCollect opens the log and returns the replayed payloads.
func openCollect(t *testing.T, path string, opts Options) (*Log, [][]byte) {
	t.Helper()
	var got [][]byte
	l, err := Open(path, opts, func(_ int64, p []byte) error {
		got = append(got, bytes.Clone(p))
		return nil
	})
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return l, got
}

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("record-%03d|%s", i, string(bytes.Repeat([]byte{'x'}, i%7))))
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, got := openCollect(t, path, Options{})
	if len(got) != 0 {
		t.Fatalf("fresh log replayed %d records", len(got))
	}
	want := payloads(25)
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if l.Records() != 25 {
		t.Fatalf("Records = %d", l.Records())
	}
	l.Close()

	l2, got := openCollect(t, path, Options{})
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	// Recovered log accepts further appends.
	if err := l2.Append([]byte("after-recovery")); err != nil {
		t.Fatal(err)
	}
}

// TestEveryPrefixRecoversCommittedRecords is the crash-consistency
// property test: for EVERY byte-level truncation of the log — modeling a
// crash that persisted an arbitrary prefix of the final append —
// recovery must yield exactly the records whose append completed within
// the surviving bytes, and never error (a torn tail is normal, not
// corruption).
func TestEveryPrefixRecoversCommittedRecords(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "wal")
	l, _ := openCollect(t, full, Options{})
	want := payloads(12)
	// ends[i] = file size after record i committed.
	var ends []int64
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, l.Size())
	}
	l.Close()
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	for cut := len(magic); cut <= len(data); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("cut-%04d", cut))
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		committed := 0
		for _, e := range ends {
			if e <= int64(cut) {
				committed++
			}
		}
		l, got := openCollect(t, path, Options{})
		if len(got) != committed {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), committed)
		}
		for i := 0; i < committed; i++ {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("cut %d: record %d = %q, want %q", cut, i, got[i], want[i])
			}
		}
		// The torn tail (if any) was truncated away durably.
		if wantTrunc := int64(cut) - func() int64 {
			if committed == 0 {
				return int64(len(magic))
			}
			return ends[committed-1]
		}(); l.Truncated() != wantTrunc {
			t.Fatalf("cut %d: truncated %d bytes, want %d", cut, l.Truncated(), wantTrunc)
		}
		// And the repaired log keeps working.
		if err := l.Append([]byte("post-repair")); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		l.Close()
		os.Remove(path)
	}
}

// TestTornMagicPrefix covers a crash during the very first write of a
// brand-new log: a strict prefix of the magic recovers to an empty log.
func TestTornMagicPrefix(t *testing.T) {
	for cut := 0; cut < len(magic); cut++ {
		path := filepath.Join(t.TempDir(), "wal")
		if err := os.WriteFile(path, []byte(magic[:cut]), 0o644); err != nil {
			t.Fatal(err)
		}
		l, got := openCollect(t, path, Options{})
		if len(got) != 0 {
			t.Fatalf("cut %d: replayed %d records from torn magic", cut, len(got))
		}
		if err := l.Append([]byte("ok")); err != nil {
			t.Fatal(err)
		}
		l.Close()
	}
}

func TestMidFileCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := openCollect(t, path, Options{})
	want := payloads(8)
	var ends []int64
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, l.Size())
	}
	l.Close()

	// Flip one payload byte of record 3 — mid-file, so recovery must
	// refuse, naming record 3's offset.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recStart := ends[2]
	data[recStart+headerLen+2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(path, Options{}, func(int64, []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err %T is not *CorruptError", err)
	}
	if ce.Offset != recStart {
		t.Errorf("corrupt offset = %d, want %d", ce.Offset, recStart)
	}
	if ce.Path != path {
		t.Errorf("corrupt path = %q, want %q", ce.Path, path)
	}

	// Fsck repairs by truncating at the damage: records 0-2 survive.
	l2, got := openCollect(t, path, Options{Fsck: true})
	defer l2.Close()
	if len(got) != 3 {
		t.Fatalf("fsck recovered %d records, want 3", len(got))
	}
	if l2.Truncated() == 0 {
		t.Error("fsck reported no truncation")
	}
}

func TestNotAWALFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	if err := os.WriteFile(path, []byte(`{"version":1,"datasets":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(path, Options{}, func(int64, []byte) error { return nil })
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Offset != 0 {
		t.Fatalf("err = %v, want *CorruptError at offset 0", err)
	}
}

func TestCompactReplacesLogAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := openCollect(t, path, Options{})
	for _, p := range payloads(10) {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	big := l.Size()
	if err := l.Compact([]byte("checkpoint-state")); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 1 || l.Size() >= big {
		t.Fatalf("after compact: records=%d size=%d (was %d)", l.Records(), l.Size(), big)
	}
	// Appends continue on the compacted file.
	if err := l.Append([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	_, got := openCollect(t, path, Options{})
	if len(got) != 2 || string(got[0]) != "checkpoint-state" || string(got[1]) != "tail" {
		t.Fatalf("replay after compact = %q", got)
	}
	// No stray temp files.
	stray, _ := filepath.Glob(filepath.Join(filepath.Dir(path), ".wal-compact-*"))
	if len(stray) != 0 {
		t.Errorf("leftover compaction temps: %v", stray)
	}
}

// TestCrashSweepWAL drives append+compact workloads through faultfs,
// crashing at every mutating filesystem op (with and without torn
// writes), then asserts recovery never errors and yields a prefix of
// the intended records — optionally including the in-flight one, never
// a reordering or a gap.
func TestCrashSweepWAL(t *testing.T) {
	want := payloads(6)
	// workload appends 6 records with a compaction after the 4th.
	workload := func(fs faultfs.FS, path string) (committed int, _ error) {
		l, err := Open(path, Options{FS: fs}, func(int64, []byte) error { return nil })
		if err != nil {
			return 0, err
		}
		defer l.Close() // double-Close is a no-op; this covers error paths
		for i, p := range want {
			if err := l.Append(p); err != nil {
				return committed, err
			}
			committed = i + 1
			if i == 3 {
				if err := l.Compact(bytes.Join(want[:4], nil)); err != nil {
					return committed, err
				}
			}
		}
		return committed, l.Close()
	}

	// Size the sweep.
	probeDir := t.TempDir()
	probe := faultfs.NewFault(nil)
	if _, err := workload(probe, filepath.Join(probeDir, "wal")); err != nil {
		t.Fatal(err)
	}
	total := probe.Ops()
	if total < 20 {
		t.Fatalf("workload has only %d crash points, want >= 20 for a meaningful sweep", total)
	}

	for _, torn := range []bool{false, true} {
		for n := int64(1); n <= total; n++ {
			dir := t.TempDir()
			path := filepath.Join(dir, "wal")
			fault := faultfs.NewFault(nil)
			fault.CrashAt(n, torn)
			committed, err := workload(fault, path)
			if err == nil {
				t.Fatalf("crash at op %d did not surface", n)
			}

			// Recover with the real filesystem (the "next process").
			var got [][]byte
			l, err := Open(path, Options{}, func(_ int64, p []byte) error {
				got = append(got, bytes.Clone(p))
				return nil
			})
			if err != nil {
				t.Fatalf("torn=%v crash at op %d: recovery failed: %v", torn, n, err)
			}
			l.Close()
			// Flatten: a checkpoint record holds the concatenation of the
			// first 4 payloads; expand it for comparison.
			var flat [][]byte
			for _, p := range got {
				if bytes.Equal(p, bytes.Join(want[:4], nil)) {
					flat = append(flat, want[:4]...)
					continue
				}
				flat = append(flat, p)
			}
			// Invariant: recovered = exactly the committed prefix, or the
			// committed prefix plus the one in-flight record.
			if len(flat) != committed && len(flat) != committed+1 {
				t.Fatalf("torn=%v crash at op %d: recovered %d records, committed %d", torn, n, len(flat), committed)
			}
			for i, p := range flat {
				if !bytes.Equal(p, want[i]) {
					t.Fatalf("torn=%v crash at op %d: record %d = %q, want %q", torn, n, i, p, want[i])
				}
			}
		}
	}
}

func TestAppendValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := openCollect(t, path, Options{})
	defer l.Close()
	if err := l.Append(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if err := l.Append(make([]byte, MaxRecordLen+1)); err == nil {
		t.Error("oversized payload accepted")
	}
}
