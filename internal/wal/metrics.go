package wal

import (
	"privbayes/internal/telemetry"
)

// Metrics is the WAL's instrumentation surface. A nil *Metrics (and
// any metrics built from a nil registry) disables instrumentation with
// no behavioral difference: the log never changes what it writes, syncs
// or recovers based on whether it is observed.
type Metrics struct {
	appends        *telemetry.Counter
	appendBytes    *telemetry.Counter
	fsyncSeconds   *telemetry.Histogram
	compactions    *telemetry.Counter
	compactSeconds *telemetry.Histogram
	sizeBytes      *telemetry.Gauge
	recoveries     *telemetry.Counter
	recoveredBytes *telemetry.Counter
}

// NewMetrics registers the WAL metric families on r. Returns nil for a
// nil registry — the "telemetry off" mode.
func NewMetrics(r *telemetry.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		appends: r.Counter("privbayes_wal_appends_total",
			"WAL records appended; each one is fsync'd before being acknowledged."),
		appendBytes: r.Counter("privbayes_wal_append_bytes_total",
			"Bytes appended to the WAL, record headers included."),
		fsyncSeconds: r.Histogram("privbayes_wal_fsync_duration_seconds",
			"Latency of one durable append (write plus fsync).", nil),
		compactions: r.Counter("privbayes_wal_compactions_total",
			"WAL compactions into a single checkpoint record."),
		compactSeconds: r.Histogram("privbayes_wal_compaction_duration_seconds",
			"Latency of one WAL compaction (write, fsync, rename, dir fsync).", nil),
		sizeBytes: r.Gauge("privbayes_wal_size_bytes",
			"Current WAL file size in bytes, magic header included."),
		recoveries: r.Counter("privbayes_wal_torn_tail_recoveries_total",
			"Recoveries that truncated a torn tail or (under fsck) a corrupt suffix."),
		recoveredBytes: r.Counter("privbayes_wal_recovery_truncated_bytes_total",
			"Bytes dropped by recovery truncation."),
	}
}

// Instrument attaches metrics to the log and records the recovery
// outcome of the Open that produced it. Call once, before the log is
// shared; a nil m turns instrumentation off. Append is serialized by
// the owning layer, so the field needs no lock.
func (l *Log) Instrument(m *Metrics) {
	l.m = m
	if m == nil {
		return
	}
	m.sizeBytes.Set(float64(l.size))
	if l.truncated > 0 {
		m.recoveries.Inc()
		m.recoveredBytes.Add(float64(l.truncated))
	}
}
