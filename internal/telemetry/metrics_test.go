package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // dropped: counters only go up
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %g, want 3.5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %g, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "a histogram", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	cum, count, sum := h.snapshot()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if sum != 106 {
		t.Fatalf("sum = %g, want 106", sum)
	}
	// le=1: {0.5, 1}; le=2: +{1.5}; le=4: +{3}; +Inf child holds {100}.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want[:3] {
		if cum[i] != w {
			t.Fatalf("cum[%d] = %d, want %d", i, cum[i], w)
		}
	}
}

// TestNilRegistryNoops pins the "telemetry off" contract: a nil
// registry hands out nil metrics and every operation on them — and on
// the registry itself — is a safe no-op. Server code relies on this to
// run the identical instrumented code path with telemetry disabled.
func TestNilRegistryNoops(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	c.Inc()
	c.Add(1)
	_ = c.Value()
	g := r.Gauge("x", "")
	g.Set(1)
	g.Add(1)
	h := r.Histogram("x", "", nil)
	h.Observe(1)
	r.GaugeFunc("x", "", func() float64 { return 1 })
	cv := r.CounterVec("x", "", "l")
	cv.With("v").Inc()
	gv := r.GaugeVec("x", "", "l")
	gv.With("v").Set(1)
	hv := r.HistogramVec("x", "", nil, "l")
	hv.With("v").Observe(1)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry WriteText = (%q, %v), want empty", buf.String(), err)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("second registration of dup_total did not panic")
		}
	}()
	r.Counter("dup_total", "")
}

// TestConcurrentHammering drives counters, gauges, vec children and
// histograms from many goroutines; run under -race it proves the hot
// paths are data-race-free, and the totals prove no increment is lost.
func TestConcurrentHammering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "")
	g := r.Gauge("hammer_gauge", "")
	h := r.Histogram("hammer_hist", "", []float64{0.25, 0.5, 0.75})
	cv := r.CounterVec("hammer_vec_total", "", "worker")
	const workers, perWorker = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w%4))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 100)
				cv.With(lbl).Inc()
			}
		}(w)
	}
	wg.Wait()
	const total = workers * perWorker
	if got := c.Value(); got != total {
		t.Fatalf("counter = %g, want %d", got, total)
	}
	if got := g.Value(); got != total {
		t.Fatalf("gauge = %g, want %d", got, total)
	}
	if got := h.Count(); got != total {
		t.Fatalf("histogram count = %d, want %d", got, total)
	}
	var vecTotal float64
	for _, lbl := range []string{"a", "b", "c", "d"} {
		vecTotal += cv.With(lbl).Value()
	}
	if vecTotal != total {
		t.Fatalf("vec total = %g, want %d", vecTotal, total)
	}
}

// TestWriteTextGolden pins the Prometheus text exposition byte for
// byte: family ordering, label rendering, histogram bucket cumulation,
// gauge funcs.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("privbayes_requests_total", "HTTP requests.", "route", "class")
	c.With("synthesize", "2xx").Add(3)
	c.With("fit", "4xx").Inc()
	g := r.Gauge("privbayes_in_flight", "In-flight requests.")
	g.Set(2)
	r.GaugeFunc("privbayes_queue_depth", "Queued requests.", func() float64 { return 7 })
	h := r.Histogram("privbayes_latency_seconds", "Request latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(30)

	const want = `# HELP privbayes_in_flight In-flight requests.
# TYPE privbayes_in_flight gauge
privbayes_in_flight 2
# HELP privbayes_latency_seconds Request latency.
# TYPE privbayes_latency_seconds histogram
privbayes_latency_seconds_bucket{le="0.1"} 1
privbayes_latency_seconds_bucket{le="1"} 2
privbayes_latency_seconds_bucket{le="+Inf"} 3
privbayes_latency_seconds_sum 30.55
privbayes_latency_seconds_count 3
# HELP privbayes_queue_depth Queued requests.
# TYPE privbayes_queue_depth gauge
privbayes_queue_depth 7
# HELP privbayes_requests_total HTTP requests.
# TYPE privbayes_requests_total counter
privbayes_requests_total{route="fit",class="4xx"} 1
privbayes_requests_total{route="synthesize",class="2xx"} 3
`
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHandlerAndExpvarBridge(t *testing.T) {
	r := NewRegistry()
	r.Counter("bridge_total", "x").Add(4)
	r.Histogram("bridge_hist", "", []float64{1}).Observe(0.5)

	rw := httptest.NewRecorder()
	r.Handler().ServeHTTP(rw, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rw.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rw.Body.String(), "bridge_total 4") {
		t.Fatalf("exposition missing counter:\n%s", rw.Body.String())
	}

	rw = httptest.NewRecorder()
	ExpvarHandler(r).ServeHTTP(rw, httptest.NewRequest("GET", "/debug/vars", nil))
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(rw.Body.Bytes(), &doc); err != nil {
		t.Fatalf("expvar bridge is not valid JSON: %v\n%s", err, rw.Body.String())
	}
	if _, ok := doc["memstats"]; !ok {
		t.Fatal("expvar bridge lost the standard memstats var")
	}
	var metrics map[string]any
	if err := json.Unmarshal(doc["privbayes_metrics"], &metrics); err != nil {
		t.Fatalf("privbayes_metrics: %v", err)
	}
	if got := metrics["bridge_total"]; got != 4.0 {
		t.Fatalf("bridge_total via expvar = %v, want 4", got)
	}
}

func TestRequestIDs(t *testing.T) {
	id := NewRequestID()
	if !ValidRequestID(id) {
		t.Fatalf("generated request ID %q is not valid by our own rule", id)
	}
	if id2 := NewRequestID(); id2 == id {
		t.Fatalf("two generated request IDs collide: %q", id)
	}
	for _, bad := range []string{"", "has space", strings.Repeat("x", 65), "semi;colon"} {
		if ValidRequestID(bad) {
			t.Fatalf("ValidRequestID(%q) = true", bad)
		}
	}
	ctx := WithRequestID(context.Background(), id)
	if got := RequestID(ctx); got != id {
		t.Fatalf("RequestID round-trip = %q, want %q", got, id)
	}
	if got := RequestID(context.Background()); got != "" {
		t.Fatalf("RequestID on bare context = %q, want empty", got)
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("dropped")
	log.Warn("kept", "k", "v")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log output is not one JSON record: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "kept" || rec["k"] != "v" {
		t.Fatalf("unexpected record: %v", rec)
	}
	if _, err := NewLogger(&buf, "xml", "info"); err == nil {
		t.Fatal("bad format accepted")
	}
	if _, err := NewLogger(&buf, "text", "loud"); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}
