// Package telemetry is the zero-dependency observability core shared
// by every layer of the system: a metrics registry (atomic counters,
// gauges and fixed-bucket histograms, with labeled families) exposed in
// Prometheus text format and over an expvar bridge, structured logging
// on log/slog, and per-request IDs propagated through context.
//
// Design constraints, in order:
//
//   - Hot paths are lock-free. Counter.Add, Gauge.Set and
//     Histogram.Observe are a handful of atomic operations; the only
//     mutex in the package guards metric *registration*, which happens
//     once at startup. Vec lookups hit a sync.Map fast path.
//   - Instrumentation must be safely absent. Every method on every
//     metric type is a no-op on a nil receiver, and a nil *Registry
//     hands out nil metrics, so "telemetry off" is the nil registry —
//     call sites carry no conditionals and the fixed-seed determinism
//     contract cannot be perturbed by an if-branch nobody tests.
//   - Metrics never touch RNG streams, goroutine scheduling or work
//     order: observing a value is a side channel, full stop.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// A Counter accumulates a monotonically non-decreasing value. Add is a
// lock-free CAS loop so fractional amounts (seconds, ε) compose with
// plain event counts in one type.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v, which must be >= 0 (negative deltas are silently
// dropped — a counter only goes up).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 || math.IsNaN(v) {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current total.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// A Gauge holds a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value (a single atomic store).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the value by v (CAS loop; v may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// A Histogram counts observations into fixed buckets. Buckets are
// cumulative at exposition time only; the hot path is one atomic add
// into the matching bucket plus a CAS on the running sum.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// Bucket search is linear: latency histograms have ~15 bounds and
	// observations cluster in the low buckets, so this beats binary
	// search in practice and keeps the path branch-predictable.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	if i < len(h.counts) {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot returns (cumulative bucket counts aligned with bounds
// + the +Inf bucket, total count, sum).
func (h *Histogram) snapshot() ([]uint64, uint64, float64) {
	cum := make([]uint64, len(h.bounds)+1)
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return cum, h.count.Load(), h.Sum()
}

// ExponentialBuckets returns n upper bounds starting at start and
// multiplying by factor — the standard shape for latency and size
// histograms. start must be > 0 and factor > 1.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExponentialBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// DefLatencyBuckets covers 500µs to ~4 minutes — request handling,
// pipeline phases, fsyncs all fit.
func DefLatencyBuckets() []float64 {
	return []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
		0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 240}
}

// metricKind discriminates exposition rendering.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// labelSep joins label values into child-map keys. It cannot appear in
// metric label values (it is stripped on the way in).
const labelSep = "\xff"

// family is one named metric with zero or more label dimensions.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string
	bounds []float64      // histograms only
	fn     func() float64 // gauge funcs only

	children sync.Map // labelSep-joined values -> metric pointer
	mu       sync.Mutex
}

// child returns the metric for the given label values, creating it on
// first use.
func (f *family) child(values []string) any {
	key := strings.Join(values, labelSep)
	if m, ok := f.children.Load(key); ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children.Load(key); ok {
		return m
	}
	var m any
	switch f.kind {
	case kindCounter:
		m = &Counter{}
	case kindGauge:
		m = &Gauge{}
	case kindHistogram:
		m = &Histogram{bounds: f.bounds, counts: make([]atomic.Uint64, len(f.bounds)+1)}
	}
	f.children.Store(key, m)
	return m
}

// Registry holds metric families and renders them for scraping. The
// zero value is not usable; call NewRegistry. A nil *Registry is the
// "telemetry off" mode: every constructor returns a nil metric whose
// methods no-op.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// register adds a family, panicking on a duplicate name — two callers
// claiming one name is a programming error that would silently split
// or shadow a time series.
func (r *Registry) register(f *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic(fmt.Sprintf("telemetry: metric %q registered twice", f.name))
	}
	r.byName[f.name] = f
	return f
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.register(&family{name: name, help: help, kind: kindCounter})
	return f.child(nil).(*Counter)
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.register(&family{name: name, help: help, kind: kindGauge})
	return f.child(nil).(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// for values another layer already maintains (queue depth, registry
// size). fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&family{name: name, help: help, kind: kindGaugeFunc, fn: fn})
}

// Histogram registers an unlabeled histogram with the given ascending
// bucket upper bounds (nil selects DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefLatencyBuckets()
	}
	f := r.register(&family{name: name, help: help, kind: kindHistogram, bounds: bounds})
	return f.child(nil).(*Histogram)
}

// CounterVec is a counter family with label dimensions.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.register(&family{name: name, help: help, kind: kindCounter, labels: labels})}
}

// With returns the counter for the given label values (one per label
// dimension, in registration order).
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(clean(values)).(*Counter)
}

// GaugeVec is a gauge family with label dimensions.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.register(&family{name: name, help: help, kind: kindGauge, labels: labels})}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.child(clean(values)).(*Gauge)
}

// HistogramVec is a histogram family with label dimensions.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family (nil bounds select
// DefLatencyBuckets).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefLatencyBuckets()
	}
	return &HistogramVec{f: r.register(&family{name: name, help: help, kind: kindHistogram, bounds: bounds, labels: labels})}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.child(clean(values)).(*Histogram)
}

// clean strips the internal separator from label values so a hostile
// value cannot forge another child's key.
func clean(values []string) []string {
	for i, v := range values {
		if strings.Contains(v, labelSep) {
			values[i] = strings.ReplaceAll(v, labelSep, "")
		}
	}
	return values
}

// families returns the registered families sorted by name.
func (r *Registry) families() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.byName))
	for _, f := range r.byName {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
