package telemetry

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"regexp"
)

// NewLogger builds the system's structured logger: format is "text" or
// "json" (the -log-format flag), level one of "debug", "info", "warn",
// "error" (the -log-level flag). Every daemon log line flows through a
// logger built here, so tests inject a buffer for w and assert on the
// output.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("telemetry: unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want text or json)", format)
	}
}

// NopLogger returns a logger that discards everything — the default
// when no logger is configured, so call sites never nil-check.
func NopLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }

// RequestIDHeader is the wire name of the per-request correlation ID:
// accepted from clients, echoed on every response, attached to every
// log line the request produces.
const RequestIDHeader = "X-Privbayes-Request-Id"

// requestIDKey is the context key for the request ID.
type requestIDKey struct{}

// requestIDPattern bounds what the server accepts from clients: IDs are
// logged and echoed verbatim, so they must be short and shell-safe.
var requestIDPattern = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// ValidRequestID reports whether a client-supplied request ID is
// acceptable; invalid ones are replaced, never rejected — correlation
// is best-effort.
func ValidRequestID(id string) bool { return requestIDPattern.MatchString(id) }

// WithRequestID returns ctx carrying the request ID, so every layer a
// request flows through — handlers, the fit pipeline, refund paths —
// can stamp its logs with the same correlation ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the request ID carried by ctx, or "" when the
// context is not part of an HTTP request.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// NewRequestID draws a fresh 16-hex-char request ID. It reads
// crypto/rand, never math/rand: request IDs must not perturb any seeded
// RNG stream (the determinism contract) and need no reproducibility.
func NewRequestID() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// Out of entropy is not a reason to fail a request; a fixed
		// fallback still logs, it just stops correlating.
		return "req-unknown"
	}
	return hex.EncodeToString(b[:])
}
