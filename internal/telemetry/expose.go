package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WriteText renders every registered family in Prometheus text
// exposition format (version 0.0.4): families sorted by name, children
// sorted by label values, histograms as cumulative le-bucket series
// plus _sum and _count. Deterministic for deterministic metric values,
// which the golden test relies on.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, f := range r.families() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		if f.kind == kindGaugeFunc {
			if _, err := fmt.Fprintf(w, "%s %s\n", f.name, formatValue(f.fn())); err != nil {
				return err
			}
			continue
		}
		for _, key := range f.childKeys() {
			m, _ := f.children.Load(key)
			labels := labelString(f.labels, key)
			switch f.kind {
			case kindCounter:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labels, formatValue(m.(*Counter).Value())); err != nil {
					return err
				}
			case kindGauge:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labels, formatValue(m.(*Gauge).Value())); err != nil {
					return err
				}
			case kindHistogram:
				if err := writeHistogram(w, f, key, m.(*Histogram)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// childKeys returns the family's child keys sorted, so exposition order
// is stable across scrapes.
func (f *family) childKeys() []string {
	var keys []string
	f.children.Range(func(k, _ any) bool {
		keys = append(keys, k.(string))
		return true
	})
	sort.Strings(keys)
	return keys
}

func writeHistogram(w io.Writer, f *family, key string, h *Histogram) error {
	cum, count, sum := h.snapshot()
	values := splitKey(key)
	for i, bound := range f.bounds {
		labels := labelString(append(f.labels, "le"), strings.Join(append(values, formatValue(bound)), labelSep))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labels, cum[i]); err != nil {
			return err
		}
	}
	labels := labelString(append(f.labels, "le"), strings.Join(append(values, "+Inf"), labelSep))
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labels, count); err != nil {
		return err
	}
	base := labelString(f.labels, key)
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, base, formatValue(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, base, count)
	return err
}

// splitKey recovers the label values from a child key; an unlabeled
// child ("" key with no labels) yields nil.
func splitKey(key string) []string {
	if key == "" {
		return nil
	}
	return strings.Split(key, labelSep)
}

// labelString renders {name="value",...}; empty when there are no
// labels.
func labelString(names []string, key string) string {
	if len(names) == 0 {
		return ""
	}
	values := splitKey(key)
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus expects:
// shortest round-trip representation, integers without a decimal point.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry in Prometheus text format — mount it at
// GET /metrics. A nil registry serves an empty (valid) exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

// Snapshot returns the registry as a nested map — family name to value
// (scalar), label-set string to value (labeled families), or histogram
// summary — the expvar-bridge view of the metrics.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	if r == nil {
		return out
	}
	for _, f := range r.families() {
		if f.kind == kindGaugeFunc {
			out[f.name] = f.fn()
			continue
		}
		children := map[string]any{}
		for _, key := range f.childKeys() {
			m, _ := f.children.Load(key)
			label := strings.Join(splitKey(key), ",")
			switch f.kind {
			case kindCounter:
				children[label] = m.(*Counter).Value()
			case kindGauge:
				children[label] = m.(*Gauge).Value()
			case kindHistogram:
				h := m.(*Histogram)
				children[label] = map[string]any{"count": h.Count(), "sum": h.Sum()}
			}
		}
		if len(f.labels) == 0 {
			// Unlabeled family: flatten the single child.
			out[f.name] = children[""]
		} else {
			out[f.name] = children
		}
	}
	return out
}

// ExpvarHandler serves the standard expvar JSON document (every
// variable published in the process: memstats, cmdline, ...) with the
// registry's Snapshot merged in under "privbayes_metrics". It exists so
// the daemon can expose expvar without expvar.Publish — Publish panics
// on duplicate names, which would make the server unconstructable twice
// in one test process.
func ExpvarHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\n")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			first = false
			fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
		})
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		fmt.Fprintf(w, "%q: ", "privbayes_metrics")
		writeJSONValue(w, r.Snapshot())
		fmt.Fprintf(w, "\n}\n")
	})
}

// writeJSONValue marshals v with sorted keys (maps marshal with sorted
// keys by encoding/json's spec).
func writeJSONValue(w io.Writer, v any) {
	enc, err := json.Marshal(v)
	if err != nil {
		io.WriteString(w, "null")
		return
	}
	w.Write(enc)
}
