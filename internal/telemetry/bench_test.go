package telemetry

import "testing"

// BenchmarkTelemetryOverhead measures the instrumented ("on") vs no-op
// ("off", nil metrics) cost of the hot-path operations server code
// performs per request. cmd/benchjson pairs the off/ and on/ prefixes
// into BENCH_telemetry.json so the overhead factor is tracked in CI.
func BenchmarkTelemetryOverhead(b *testing.B) {
	run := func(name string, c *Counter, h *Histogram) {
		b.Run(name+"/counter", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.Inc()
			}
		})
		b.Run(name+"/histogram", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h.Observe(0.012)
			}
		})
		b.Run(name+"/counter_histogram", func(b *testing.B) {
			// One request's worth of hot-path telemetry: a count and a
			// latency observation.
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.Inc()
				h.Observe(0.012)
			}
		})
	}

	r := NewRegistry()
	run("on", r.Counter("bench_total", ""), r.Histogram("bench_seconds", "", nil))
	var nilReg *Registry
	run("off", nilReg.Counter("bench_total", ""), nilReg.Histogram("bench_seconds", "", nil))
}

// BenchmarkVecLookup measures the labeled fast path: sync.Map load on
// an existing child.
func BenchmarkVecLookup(b *testing.B) {
	r := NewRegistry()
	v := r.CounterVec("bench_vec_total", "", "route", "class")
	v.With("synthesize", "2xx").Inc() // pre-create
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.With("synthesize", "2xx").Inc()
	}
}
