// Package profiling wires the -cpuprofile/-memprofile CLI flags to
// runtime/pprof, shared by cmd/privbayes and cmd/experiments so
// hot-path regressions are diagnosable in the field without code edits.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpu is non-empty and returns a stop
// function that flushes the CPU profile and, when mem is non-empty,
// writes a heap profile (after a GC). Callers must invoke stop on every
// exit path — including failures, which are exactly when profiles are
// wanted — before os.Exit. errPrefix labels stderr diagnostics.
func Start(cpu, mem, errPrefix string) (stop func(), err error) {
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: memprofile: %v\n", errPrefix, err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "%s: memprofile: %v\n", errPrefix, err)
			}
			f.Close()
		}
	}, nil
}
